package streach

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"streach/internal/roadnet"
)

// TestConcurrentReach hammers one System with concurrent forward,
// exhaustive, and reverse queries (run under -race in CI): results must
// match the serial answers exactly.
func TestConcurrentReach(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)

	serial, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	serialES, err := s.ReachES(q)
	if err != nil {
		t.Fatal(err)
	}
	serialRev, err := s.ReverseReach(q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var (
					got  *Region
					want *Region
					err  error
				)
				switch (g + i) % 3 {
				case 0:
					got, err = s.Reach(q)
					want = serial
				case 1:
					got, err = s.ReachES(q)
					want = serialES
				default:
					got, err = s.ReverseReach(q)
					want = serialRev
				}
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.SegmentIDs, want.SegmentIDs) {
					t.Errorf("goroutine %d: concurrent result has %d segments, serial %d",
						g, len(got.SegmentIDs), len(want.SegmentIDs))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestCacheMetricsSurfaced checks the decoded time-list cache counters
// reach the public Metrics: a repeated query must report hits.
func TestCacheMetricsSurfaced(t *testing.T) {
	s := smallSystem(t)
	q := testQuery(s)
	if _, err := s.Reach(q); err != nil {
		t.Fatal(err)
	}
	warm, err := s.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metrics.TLCacheHits == 0 {
		t.Fatalf("repeat query should hit the decoded cache, metrics: %+v", warm.Metrics)
	}
}

// TestWarmCrossingMidnight regression-tests the end-of-day cap: warming a
// window that runs past midnight must not precompute wrapped slots. With
// the cap, 23:55+30min warms exactly one slot (the last of the day), so
// the lists-per-slot ratio of the Con-Index must stay finite and small.
func TestWarmCrossingMidnight(t *testing.T) {
	// A private system: the shared one would pollute slot counts.
	city := CityConfig{
		OriginLat: 22.50, OriginLng: 114.00,
		Rows: 4, Cols: 4,
		SpacingMeters:   900,
		LocalFraction:   0,
		ResegmentMeters: 450,
		Seed:            9,
	}
	sys, err := NewSystem(city, FleetConfig{Taxis: 10, Days: 2, Seed: 5}, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	before := sys.con.CachedLists()
	sys.Warm(23*time.Hour+55*time.Minute, 30*time.Minute)
	after := sys.con.CachedLists()
	// One slot (the day's last) => exactly 2*NumSegments lists. Without
	// the cap the wrapped early-morning slots warm too, tripling this.
	want := 2 * sys.Network().NumSegments()
	if after-before != want {
		t.Fatalf("midnight-crossing Warm materialised %d lists, want %d (one slot)", after-before, want)
	}
	// Entirely past the end of the day: a no-op, not a wrap-around.
	sys.Warm(24*time.Hour-time.Nanosecond, time.Hour)
	if sys.con.CachedLists() != after {
		t.Fatal("Warm past midnight should be a no-op")
	}
}

// TestOpenSystemHonorsFastPathOptions checks the reopened system carries
// TimeListCache and VerifyWorkers through (regression: OpenSystem used to
// drop both, silently reverting to defaults).
func TestOpenSystemHonorsFastPathOptions(t *testing.T) {
	s := smallSystem(t)
	dir := t.TempDir()
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSystem(dir, IndexConfig{TimeListCache: -1, VerifyWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	q := testQuery(s)
	r, err := reopened.Reach(q)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := r.Metrics.TLCacheHits, r.Metrics.TLCacheMisses; hits != 0 || misses != 0 {
		t.Fatalf("decoded cache should be disabled on the reopened system, got %d hits %d misses", hits, misses)
	}
}

// TestBusiestLocationMatchesNestedMapScan pins the flat-bitmask rewrite
// against a straightforward nested-map reference implementation.
func TestBusiestLocationMatchesNestedMapScan(t *testing.T) {
	s := smallSystem(t)
	tod := 11 * time.Hour
	lo, hi := tod, tod+5*time.Minute
	type segDay struct {
		seg int32
		day int16
	}
	seen := map[segDay]bool{}
	counts := map[int32]int{}
	for i := range s.ds.Matched {
		mt := &s.ds.Matched[i]
		for _, v := range mt.Visits {
			enter := time.Duration(v.EnterMs) * time.Millisecond
			if enter >= lo && enter < hi {
				k := segDay{int32(v.Segment), int16(mt.Day)}
				if !seen[k] {
					seen[k] = true
					counts[k.seg]++
				}
			}
		}
	}
	bestSeg, bestN := int32(0), -1
	for seg, n := range counts {
		if n > bestN || (n == bestN && seg < bestSeg) {
			bestSeg, bestN = seg, n
		}
	}
	wantMid := s.net.Segment(roadnet.SegmentID(bestSeg)).Midpoint()
	got := s.BusiestLocation(tod)
	if got.Lat != wantMid.Lat || got.Lng != wantMid.Lng {
		t.Fatalf("BusiestLocation = %+v, reference scan says %+v (seg %d, %d days)",
			got, wantMid, bestSeg, bestN)
	}
}
