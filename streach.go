// Package streach is a data-driven spatio-temporal reachability query
// system over massive trajectory data, reproducing Ding's ICDE'17 design
// (see DESIGN.md): given a location S, a start time-of-day T, a duration
// L, and a probability Prob, it returns every road segment that historical
// trajectories reached from S within [T, T+L] on at least a Prob fraction
// of days.
//
// The package is a facade over the internal subsystems:
//
//   - a synthetic metropolis generator and taxi-fleet simulator (the
//     stand-in for the paper's Shenzhen network and 194 GB GPS corpus);
//   - the ST-Index (temporal B+tree → shared R-tree → on-disk time lists
//     behind an LRU buffer pool) and the Con-Index (per-slot Near/Far
//     connection tables);
//   - the query algorithms: SQMB+TBS for single-location queries, MQMB
//     for multi-location queries, and the exhaustive-search baseline.
//
// Every query flows through the context-first entry point System.Do: a
// Request names the query kind (reach / reverse / multi / route) and
// functional options override engine defaults per call. The context's
// cancellation and deadline propagate into every layer — bounding
// rounds, Con-Index Dijkstras, the verification worker pool — so an
// abandoned caller stops paying for its query almost immediately.
// DoBatch answers many requests on a bounded worker pool, and the
// `streach serve` command exposes the same API over HTTP.
//
// Quick start:
//
//	sys, err := streach.NewSystem(streach.DefaultCityConfig(), streach.DefaultFleetConfig(), streach.DefaultIndexConfig())
//	...
//	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
//	defer cancel()
//	region, err := sys.Do(ctx, streach.ReachRequest(
//		streach.Location{Lat: 22.53, Lng: 114.05},
//		11*time.Hour,   // start time of day T
//		10*time.Minute, // duration L
//		0.2,            // probability threshold
//	), streach.WithVerifyWorkers(4))
package streach

import (
	"context"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/conindex"
	"streach/internal/core"
	"streach/internal/geo"
	"streach/internal/ingest"
	"streach/internal/roadnet"
	"streach/internal/shard"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/traj"
)

// CityConfig controls the synthetic road network.
type CityConfig struct {
	// OriginLat/OriginLng is the south-west corner.
	OriginLat, OriginLng float64
	// Rows and Cols set the arterial grid size.
	Rows, Cols int
	// SpacingMeters is the arterial block size.
	SpacingMeters float64
	// LocalFraction in [0,1] adds local streets.
	LocalFraction float64
	// ResegmentMeters is the pre-processing granularity (thesis §3.1);
	// 0 skips re-segmentation.
	ResegmentMeters float64
	// Seed drives generation.
	Seed int64
}

// DefaultCityConfig is a mid-sized metropolis: ~12x12 km arterial grid
// re-segmented at 500 m.
func DefaultCityConfig() CityConfig {
	return CityConfig{
		OriginLat: 22.45, OriginLng: 113.90,
		Rows: 12, Cols: 12,
		SpacingMeters:   1000,
		LocalFraction:   0.4,
		ResegmentMeters: 500,
		Seed:            1,
	}
}

// FleetConfig controls the simulated taxi fleet.
type FleetConfig struct {
	Taxis int
	Days  int
	// Seed drives the simulation.
	Seed int64
	// DaySpeedJitter sets day-to-day traffic variation. The zero value
	// keeps the default of 0.15; a negative value requests no jitter at
	// all (the explicit "off" switch, consistent with how FlatTraffic
	// disables the congestion profile).
	DaySpeedJitter float64
	// FlatTraffic disables the rush-hour congestion profile.
	FlatTraffic bool
}

// DefaultFleetConfig simulates 250 taxis over 30 days, mirroring the
// paper's one-month window.
func DefaultFleetConfig() FleetConfig {
	return FleetConfig{Taxis: 250, Days: 30, Seed: 2, DaySpeedJitter: 0.15}
}

// IndexConfig controls index construction.
type IndexConfig struct {
	// SlotSeconds is the Δt granularity (default 300 s).
	SlotSeconds int
	// PoolPages is the buffer pool capacity (default 1024 pages).
	PoolPages int
	// TimeListCache is the decoded time-list LRU capacity in entries
	// (default 8192, negative disables). Hits skip the buffer pool and
	// blob decoding entirely; see Metrics.TLCacheHits.
	TimeListCache int
	// VerifyWorkers bounds the per-query verification worker pool
	// (0 = GOMAXPROCS, 1 = serial).
	VerifyWorkers int
	// PageFile, when set, backs the time lists with a real file instead
	// of memory.
	PageFile string
	// Shards partitions query execution: a value above 1 builds a
	// spatial grid partition of the road network into that many shards,
	// one engine per shard over shard-local Con-Index/ST-Index slices,
	// and answers reach/reverse/multi queries by scatter-gather (plan on
	// the cluster planner, verify per shard, merge partial regions).
	// Results are bit-identical to unsharded execution. 0 or 1 keeps the
	// single engine. Route queries always run unsharded.
	Shards int
	// SlotShards adds the temporal sharding dimension: a value above 1
	// cuts the day's slot axis into that many contiguous ranges balanced
	// by observation density, one shard row per range, and routes each
	// query to the row serving its window's start slot — so hot-hours
	// traffic spreads across rows instead of all landing on one working
	// set. Composes with Shards into a grid × slots hybrid (Shards ×
	// SlotShards total shards). Windows outgrowing a row's held range
	// fall back to unsharded execution (counted, never wrong); results
	// stay bit-identical either way. 0 or 1 disables the temporal
	// dimension.
	SlotShards int
	// PlanCache is the cross-batch shared-plan LRU capacity in plans:
	// recently built plans are kept (keyed by the batch group key) so
	// steady-state duplicate traffic skips bounding and verification
	// entirely. 0 means the default (32); negative disables. The cache
	// is invalidated by Close and re-sharding.
	PlanCache int
	// ShardBudget bounds each shard's per-query scatter/gather work on a
	// sharded system: a shard that has not finished inside the budget is
	// treated as failed (fail-fast by default, skipped under
	// WithPartialResults) instead of stalling the query. Zero means no
	// bound; WithShardBudget overrides per call.
	ShardBudget time.Duration
	// Breaker configures per-shard circuit breakers on a sharded
	// system: a shard whose recent calls keep failing is short-circuited
	// instead of paying its budget on every query. Default off. See
	// BreakerConfig.
	Breaker BreakerConfig
	// Hedge configures hedged scatter verification on a sharded system:
	// a slow shard's verify slice is raced by a hedge attempt, first
	// success wins, answers stay bit-identical. Default off. See
	// HedgeConfig.
	Hedge HedgeConfig
	// StoreFaults, when non-empty, wraps the page store in a
	// storage.FaultStore armed with this scenario spec (see
	// storage.ParseScenario; e.g. "read:error@100" or "read:corrupt").
	// The development hook behind `serve -chaos store=...` — never set
	// it in production.
	StoreFaults string
	// VerifyAll switches trace back search to full verification (see
	// core.Options).
	VerifyAll bool
	// EarlyStop enables the thesis's literal Algorithm 2 queue variant
	// (fastest, over-approximates on sparse data).
	EarlyStop bool
	// NoVisitedSet disables TBS visited-set deduplication (ablation).
	NoVisitedSet bool
	// NoOverlapFilter disables MQMB overlap elimination (ablation).
	NoOverlapFilter bool
}

// DefaultIndexConfig uses the paper's 5-minute granularity.
func DefaultIndexConfig() IndexConfig {
	return IndexConfig{SlotSeconds: 300, PoolPages: 1024}
}

// Query is a single-location reachability query.
type Query struct {
	// Lat, Lng locate the start S.
	Lat, Lng float64
	// Start is the time of day T.
	Start time.Duration
	// Duration is the horizon L.
	Duration time.Duration
	// Prob is the required reachability probability in (0, 1].
	Prob float64
}

// Location is a query start point.
type Location struct{ Lat, Lng float64 }

// Metrics describes what a query cost.
type Metrics struct {
	Elapsed time.Duration
	// Bound and Verify split Elapsed into the bounding-region search
	// (Con-Index row unions) and the verification phase (TBS probing).
	// Zero for the exhaustive baseline, which has no bounding phase.
	Bound, Verify time.Duration
	Evaluated     int   // segments verified against on-disk time lists
	PageReads     int64 // physical page reads
	PageHits      int64 // buffer pool hits
	TLCacheHits   int64 // decoded time-list cache hits (skip pool + decode)
	TLCacheMisses int64 // decoded time-list cache misses
	// ConHits and ConMaterialised count Con-Index adjacency rows served
	// from cache vs. materialised by a query-time Dijkstra (the cost a
	// persisted conindex.adj eliminates on cold starts).
	ConHits         int64
	ConMaterialised int64
	MaxRegion       int
	MinRegion       int
	RoadSegments    int
	RoadKm          float64
}

// Region is a query answer: the Prob-reachable road segments.
type Region struct {
	// SegmentIDs are the reachable segments, ascending.
	SegmentIDs []int32
	// Probabilities is parallel to SegmentIDs: the verified reachability
	// probability of each segment, or -1 for segments admitted without
	// verification (the minimum bounding region).
	Probabilities []float32
	// RoadKm is the total reachable road length.
	RoadKm float64
	// Metrics reports processing cost.
	Metrics Metrics
	// Route is set only for KindRoute answers: the planned journey, whose
	// path SegmentIDs mirrors.
	Route *RouteResult
	// Degraded is set only when a sharded query ran with
	// WithPartialResults and lost shards: the answer covers the
	// surviving shards only. Nil for complete answers.
	Degraded *Degraded

	sys *System
}

// System is a built reachability query system.
type System struct {
	net    *roadnet.Network
	ds     *traj.Dataset
	st     *stindex.Index
	con    *conindex.Index
	engine *core.Engine
	// cluster, when non-nil, answers reach/reverse/multi queries by
	// scatter-gather over partitioned engines (IndexConfig.Shards > 1).
	// An atomic pointer so Shard can re-partition while queries are in
	// flight: each query snapshots one cluster (or nil) and runs against
	// it — both layouts answer bit-identically over the same indexes.
	cluster atomic.Pointer[shard.Cluster]
	// plans is the cross-batch shared-plan LRU (nil when disabled).
	plans *planCache
	// sharing accumulates the batch executor's cross-query work-sharing
	// counters (see SharingStats).
	sharing sharingCounters
	// shardBudget is IndexConfig.ShardBudget, applied to every cluster
	// the system shards into.
	shardBudget time.Duration
	// breakerCfg and hedgeCfg are the overload self-protection knobs
	// (IndexConfig.Breaker/Hedge), applied to every cluster the system
	// shards into.
	breakerCfg BreakerConfig
	hedgeCfg   HedgeConfig
	// dir is the save directory backing the system (set by OpenSystem
	// and Save); empty for purely in-memory systems. pagesInDir reports
	// that the page store IS dir/pages.db (the OpenSystem case), so
	// persisting a compaction only needs a pool flush, not a page copy.
	dir        string
	pagesInDir bool
	// ingestMu guards the live-ingest machinery (see ingest.go);
	// compactMu serialises whole CompactIngest cycles.
	ingestMu  sync.Mutex
	compactMu sync.Mutex
	ingestW   *ingest.Writer
	wal       *ingest.SegmentedLog
	// Background incremental compaction loop (see compactLoop).
	compactStop   chan struct{}
	compactDone   chan struct{}
	bgCompacts    atomic.Int64
	bgCompactErrs atomic.Int64
	// Warm-plan pipeline (see warmplans.go): shapes records recent
	// plan-cache-miss query shapes; warmN > 0 re-plans the top shapes in
	// the background after opens and compaction epoch swaps.
	shapes     *shapeRecorder
	warmN      atomic.Int32
	warmBusy   atomic.Bool
	warmWG     sync.WaitGroup
	warmCtx    context.Context
	warmCancel context.CancelFunc
}

// sharingCounters are the live batch-sharing counters; snapshot with
// SharingStats.
type sharingCounters struct {
	groups      atomic.Int64
	coalesced   atomic.Int64
	probeSets   atomic.Int64
	rowsShared  atomic.Int64
	planHits    atomic.Int64
	planMisses  atomic.Int64
	plansWarmed atomic.Int64
}

// SharingStats counts the cross-query work sharing DoBatch's group-and-
// plan scheduler has performed since the system was built.
type SharingStats struct {
	// BatchGroups counts groups of two or more requests that shared one
	// plan.
	BatchGroups int64
	// QueriesCoalesced counts requests beyond the first in each group —
	// queries that did not pay for their own bounding/probe/verification.
	QueriesCoalesced int64
	// ProbeSetsShared counts probe start-set materialisations avoided by
	// sharing (reachability groups only; routes have no probe).
	ProbeSetsShared int64
	// ConRowsShared counts Con-Index adjacency-row resolutions avoided:
	// pin-local re-reads plus one working-set fetch per coalesced query.
	ConRowsShared int64
	// PlanCacheHits and PlanCacheMisses count cross-batch plan-cache
	// activity: a hit answered a query (or a whole batch group) from a
	// plan built by an earlier batch, skipping bounding, probing, and
	// verification entirely.
	PlanCacheHits   int64
	PlanCacheMisses int64
	// PlansWarmed counts plans built proactively by the warm-plan
	// pipeline (WarmPlans / EnableWarmPlanning) rather than by a query
	// paying the cold-planning cost. Warm passes touch neither hit nor
	// miss counters.
	PlansWarmed int64
}

// SharingStats snapshots the batch-sharing counters.
func (s *System) SharingStats() SharingStats {
	return SharingStats{
		BatchGroups:      s.sharing.groups.Load(),
		QueriesCoalesced: s.sharing.coalesced.Load(),
		ProbeSetsShared:  s.sharing.probeSets.Load(),
		ConRowsShared:    s.sharing.rowsShared.Load(),
		PlanCacheHits:    s.sharing.planHits.Load(),
		PlanCacheMisses:  s.sharing.planMisses.Load(),
		PlansWarmed:      s.sharing.plansWarmed.Load(),
	}
}

// cloneRegion deep-copies a query answer so group members sharing one
// computation each own their slices.
func cloneRegion(r *Region) *Region {
	if r == nil {
		return nil
	}
	cp := *r
	cp.SegmentIDs = append([]int32(nil), r.SegmentIDs...)
	cp.Probabilities = append([]float32(nil), r.Probabilities...)
	cp.Degraded = cloneDegraded(r.Degraded)
	if r.Route != nil {
		rt := *r.Route
		rt.SegmentIDs = append([]int32(nil), r.Route.SegmentIDs...)
		cp.Route = &rt
	}
	return &cp
}

// NewSystem generates a city, simulates a fleet over it, builds both
// indexes, and returns a ready query engine.
func NewSystem(city CityConfig, fleet FleetConfig, idx IndexConfig) (*System, error) {
	net, err := BuildCity(city)
	if err != nil {
		return nil, err
	}
	profile := traj.DefaultSpeedProfile()
	if fleet.FlatTraffic {
		profile = traj.FlatSpeedProfile()
	}
	jitter := fleet.DaySpeedJitter
	switch {
	case jitter == 0:
		jitter = 0.15 // zero value: the documented default
	case jitter < 0:
		jitter = 0 // negative: explicitly no day-to-day jitter
	}
	ds, err := traj.Simulate(net, traj.SimConfig{
		Taxis:          fleet.Taxis,
		Days:           fleet.Days,
		Profile:        profile,
		Seed:           fleet.Seed,
		DaySpeedJitter: jitter,
	})
	if err != nil {
		return nil, fmt.Errorf("streach: simulate fleet: %w", err)
	}
	return NewSystemFromData(net, ds, idx)
}

// BuildCity generates (and optionally re-segments) a synthetic network.
func BuildCity(city CityConfig) (*roadnet.Network, error) {
	net, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin:        geo.Point{Lat: city.OriginLat, Lng: city.OriginLng},
		Rows:          city.Rows,
		Cols:          city.Cols,
		SpacingMeters: city.SpacingMeters,
		LocalFraction: city.LocalFraction,
		Seed:          city.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("streach: generate city: %w", err)
	}
	if city.ResegmentMeters > 0 {
		net, err = roadnet.Resegment(net, city.ResegmentMeters)
		if err != nil {
			return nil, fmt.Errorf("streach: resegment: %w", err)
		}
	}
	return net, nil
}

// NewSystemFromData builds the indexes over an existing network and
// matched trajectory dataset (e.g. decoded with traj.ReadDataset or
// produced by the map-matching stage).
func NewSystemFromData(net *roadnet.Network, ds *traj.Dataset, idx IndexConfig) (*System, error) {
	if idx.SlotSeconds == 0 {
		idx.SlotSeconds = 300
	}
	if idx.PoolPages == 0 {
		idx.PoolPages = 1024
	}
	var store storage.Store
	if idx.PageFile != "" {
		fs, err := storage.OpenFileStore(idx.PageFile)
		if err != nil {
			return nil, fmt.Errorf("streach: open page file: %w", err)
		}
		store = fs
	}
	if idx.StoreFaults != "" {
		sc, err := storage.ParseScenario(idx.StoreFaults)
		if err != nil {
			return nil, fmt.Errorf("streach: store-fault scenario: %w", err)
		}
		if store == nil {
			store = storage.NewMemStore()
		}
		store = storage.NewFaultStore(store, sc)
	}
	st, err := stindex.Build(net, ds, stindex.Config{
		SlotSeconds:   idx.SlotSeconds,
		PoolPages:     idx.PoolPages,
		TimeListCache: idx.TimeListCache,
		Store:         store,
	})
	if err != nil {
		return nil, fmt.Errorf("streach: build ST-Index: %w", err)
	}
	con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: idx.SlotSeconds})
	if err != nil {
		return nil, fmt.Errorf("streach: build Con-Index: %w", err)
	}
	return assembleSystem(net, ds, st, con, idx)
}

// assembleSystem wires built (or reopened) indexes into a System: the
// engine with the configured policy options, the cross-batch plan
// cache, and — when IndexConfig.Shards asks for it — the sharded
// execution layer. Shared by NewSystemFromData and OpenSystem so both
// construction paths honour the whole IndexConfig.
func assembleSystem(net *roadnet.Network, ds *traj.Dataset, st *stindex.Index, con *conindex.Index, idx IndexConfig) (*System, error) {
	engine, err := core.NewEngine(st, con, core.Options{
		VerifyAll:       idx.VerifyAll,
		EarlyStop:       idx.EarlyStop,
		NoVisitedSet:    idx.NoVisitedSet,
		NoOverlapFilter: idx.NoOverlapFilter,
		VerifyWorkers:   idx.VerifyWorkers,
	})
	if err != nil {
		return nil, err
	}
	planCap := idx.PlanCache
	if planCap == 0 {
		planCap = 32
	}
	s := &System{net: net, ds: ds, st: st, con: con, engine: engine, plans: newPlanCache(planCap),
		shardBudget: idx.ShardBudget, breakerCfg: idx.Breaker, hedgeCfg: idx.Hedge,
		shapes: newShapeRecorder()}
	s.warmCtx, s.warmCancel = context.WithCancel(context.Background())
	if idx.Shards > 1 || idx.SlotShards > 1 {
		gridK := idx.Shards
		if gridK < 1 {
			gridK = 1
		}
		if err := s.ShardSlots(gridK, idx.SlotShards); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Shard switches the system to sharded execution with k shards: the road
// network is grid-partitioned, one engine per shard owns shard-local
// Con-Index/ST-Index slices, and reach/reverse/multi queries run
// scatter-gather with answers bit-identical to unsharded execution
// (route queries always run on the single engine). k <= 1 restores
// single-engine execution. Safe to call while queries are in flight:
// in-flight queries finish on the layout they started with (both
// layouts answer identically over the same indexes), new queries see
// the new one. The shared-plan cache is flushed — cached plans belong
// to the previous execution layout; a straggler parking a plan after
// the flush is harmless, as its answers stay bit-identical.
func (s *System) Shard(k int) error {
	return s.ShardSlots(k, 1)
}

// ShardSlots switches the system to hybrid grid × slots sharded
// execution: gridK spatial shards (as Shard) times slotK temporal shard
// rows, each row serving the queries whose window starts in its
// density-balanced slice of the day's slot axis (see
// IndexConfig.SlotShards). gridK <= 1 with slotK > 1 is pure temporal
// sharding; both <= 1 restores single-engine execution. Everything else
// behaves exactly as Shard: safe while queries are in flight, plan
// cache flushed, answers bit-identical.
func (s *System) ShardSlots(gridK, slotK int) error {
	if gridK <= 1 && slotK <= 1 {
		s.cluster.Store(nil)
		s.plans.clear()
		return nil
	}
	cluster, err := shard.NewClusterSlots(s.st, s.con, s.engine.Options(), gridK, slotK, -1)
	if err != nil {
		return err
	}
	if s.shardBudget > 0 {
		cluster = cluster.WithShardBudget(s.shardBudget)
	}
	if s.breakerCfg.Enabled {
		cluster.ConfigureBreakers(s.breakerCfg.internal())
	}
	if s.hedgeCfg.Enabled {
		cluster.SetHedging(s.hedgeCfg.internal())
	}
	s.cluster.Store(cluster)
	s.plans.clear()
	return nil
}

// Shards reports how many shards the system executes across (1 =
// unsharded).
func (s *System) Shards() int {
	if c := s.cluster.Load(); c != nil {
		return c.Shards()
	}
	return 1
}

// SlotShards reports how many temporal shard rows the system executes
// across (1 = no temporal dimension).
func (s *System) SlotShards() int {
	if c := s.cluster.Load(); c != nil {
		return c.SlotShards()
	}
	return 1
}

// PlansSlotFallback counts sharded queries whose window outgrew its
// serving row's held slot range and ran unsharded instead (still
// bit-identical; a persistently high rate suggests a larger overhang or
// fewer slot shards).
func (s *System) PlansSlotFallback() int64 {
	if c := s.cluster.Load(); c != nil {
		return c.PlansSlotFallback()
	}
	return 0
}

// ShardStat describes one shard of a sharded system: its slice of the
// partition and the work routed to it.
type ShardStat struct {
	// Shard is the shard ordinal.
	Shard int
	// Segments is how many road segments the shard owns;
	// BoundarySegments how many of them border another shard (the
	// replicated boundary metadata).
	Segments, BoundarySegments int
	// RowsFetched counts Con-Index adjacency rows the bounding phase
	// routed through the shard's slice.
	RowsFetched int64
	// CandidatesVerified counts candidates scatter-verified on the
	// shard's ST-Index slice, and Verify the wall-clock spent doing it.
	CandidatesVerified int64
	Verify             time.Duration
	// SlotLo and SlotHi are the inclusive slot range the shard's row
	// serves under temporal sharding; [0, numSlots-1] (the whole day)
	// when the system has no temporal dimension.
	SlotLo, SlotHi int
}

// ShardStats snapshots per-shard activity; nil when the system is
// unsharded.
func (s *System) ShardStats() []ShardStat {
	c := s.cluster.Load()
	if c == nil {
		return nil
	}
	stats := c.Stats()
	out := make([]ShardStat, len(stats))
	for i, st := range stats {
		out[i] = ShardStat{
			Shard:              st.Shard,
			Segments:           st.Segments,
			BoundarySegments:   st.BoundarySegments,
			RowsFetched:        st.RowsFetched,
			CandidatesVerified: st.CandidatesVerified,
			Verify:             time.Duration(st.VerifyNS),
			SlotLo:             st.SlotLo,
			SlotHi:             st.SlotHi,
		}
	}
	return out
}

// Warm precomputes the Con-Index Near/Far tables for every time slot
// touched by queries starting in [start, start+dur], fanning the
// travel-time Dijkstras out over a GOMAXPROCS-wide worker pool. The
// thesis builds these tables offline during index construction; calling
// Warm moves that cost out of the first query's measured time, and Save
// persists the materialised rows so reopened systems skip it entirely.
// Idempotent.
func (s *System) Warm(start, dur time.Duration) {
	_ = s.WarmCtx(context.Background(), start, dur)
}

// WarmCtx is Warm under a context: a cancelled or expired ctx stops the
// precompute workers early and returns ctx's error. Rows warmed before
// the cancellation stay warm, so an interrupted warm resumes cheaply.
func (s *System) WarmCtx(ctx context.Context, start, dur time.Duration) error {
	slotSec := s.con.SlotSeconds()
	lo := int(start.Seconds()) / slotSec
	hi := int((start + dur).Seconds()) / slotSec
	// Cap at the end of the day exactly as Engine.slotWindow does:
	// queries never touch slots past midnight, so warming a window that
	// crosses it must not precompute (wrapped) out-of-range slots.
	if maxSlot := s.con.NumSlots() - 1; hi > maxSlot {
		hi = maxSlot
	}
	if lo > hi {
		return nil
	}
	return s.con.PrecomputeSlotsCtx(ctx, lo, hi, 0)
}

// SetShardBudget sets the default per-shard deadline budget (see
// IndexConfig.ShardBudget): a shard that has not finished its share of
// a query inside d counts as failed. Applied to the current cluster (if
// sharded) and to every later Shard call; WithShardBudget overrides it
// per query. Zero removes the budget for subsequent Shard calls only.
func (s *System) SetShardBudget(d time.Duration) {
	s.shardBudget = d
	if d > 0 {
		if c := s.cluster.Load(); c != nil {
			s.cluster.Store(c.WithShardBudget(d))
		}
	}
}

// Close stops the live-ingest writer (draining its queue), closes the
// WAL, flushes the shared-plan cache, and releases index storage.
func (s *System) Close() error {
	if s.warmCancel != nil {
		s.warmCancel()
		s.warmWG.Wait()
	}
	err := s.stopIngest()
	s.plans.clear()
	if cerr := s.st.Close(); err == nil {
		err = cerr
	}
	return err
}

// Network exposes the underlying road network (in-module callers).
func (s *System) Network() *roadnet.Network { return s.net }

// Dataset exposes the underlying trajectory dataset (in-module callers).
func (s *System) Dataset() *traj.Dataset { return s.ds }

// Engine exposes the query engine (in-module callers, benchmarks).
func (s *System) Engine() *core.Engine { return s.engine }

// request converts a legacy Query to the unified Request form.
func (q Query) request(kind Kind) Request {
	return Request{
		Kind:      kind,
		Locations: []Location{{Lat: q.Lat, Lng: q.Lng}},
		Start:     q.Start,
		Duration:  q.Duration,
		Prob:      q.Prob,
	}
}

// Reach answers a single-location query with SQMB+TBS (the paper's
// algorithm).
//
// Deprecated: use Do with a KindReach Request; it adds context
// cancellation, deadlines, and per-query options.
func (s *System) Reach(q Query) (*Region, error) {
	return s.Do(context.Background(), q.request(KindReach))
}

// ReachES answers the same query with the exhaustive-search baseline.
//
// Deprecated: use Do with WithAlgorithm(AlgoExhaustive).
func (s *System) ReachES(q Query) (*Region, error) {
	return s.Do(context.Background(), q.request(KindReach), WithAlgorithm(AlgoExhaustive))
}

// ReverseReach answers the mirror query: from which road segments can
// the location be reached within [T, T+L] on at least Prob of the days?
// This is the catchment-area direction used by the advertising scenario.
//
// Deprecated: use Do with a KindReverse Request.
func (s *System) ReverseReach(q Query) (*Region, error) {
	return s.Do(context.Background(), q.request(KindReverse))
}

// ReverseReachES answers the reverse query with the exhaustive baseline.
//
// Deprecated: use Do with a KindReverse Request and
// WithAlgorithm(AlgoExhaustive).
func (s *System) ReverseReachES(q Query) (*Region, error) {
	return s.Do(context.Background(), q.request(KindReverse), WithAlgorithm(AlgoExhaustive))
}

// ReachMulti answers a multi-location query with MQMB+TBS.
//
// Deprecated: use Do with a KindMulti Request.
func (s *System) ReachMulti(locs []Location, start, duration time.Duration, prob float64) (*Region, error) {
	return s.Do(context.Background(), MultiRequest(locs, start, duration, prob))
}

// ReachMultiSequential answers a multi-location query by running the
// single-location pipeline per location and unioning (the m-query
// baseline of §4.3).
//
// Deprecated: use Do with a KindMulti Request and
// WithAlgorithm(AlgoSequential).
func (s *System) ReachMultiSequential(locs []Location, start, duration time.Duration, prob float64) (*Region, error) {
	return s.Do(context.Background(), MultiRequest(locs, start, duration, prob), WithAlgorithm(AlgoSequential))
}

func toPoints(locs []Location) []geo.Point {
	out := make([]geo.Point, len(locs))
	for i, l := range locs {
		out[i] = geo.Point{Lat: l.Lat, Lng: l.Lng}
	}
	return out
}

func (s *System) region(res *core.Result) *Region {
	ids := make([]int32, len(res.Segments))
	probs := make([]float32, len(res.Segments))
	for i, seg := range res.Segments {
		ids[i] = int32(seg)
		if p, ok := res.Probability[seg]; ok {
			probs[i] = float32(p)
		} else {
			probs[i] = -1
		}
	}
	return &Region{
		SegmentIDs:    ids,
		Probabilities: probs,
		RoadKm:        res.Metrics.RoadKm,
		Metrics: Metrics{
			Elapsed:         res.Metrics.Elapsed,
			Bound:           time.Duration(res.Metrics.BoundNS),
			Verify:          time.Duration(res.Metrics.VerifyNS),
			Evaluated:       res.Metrics.Evaluated,
			PageReads:       res.Metrics.IO.Reads,
			PageHits:        res.Metrics.IO.Hits,
			TLCacheHits:     res.Metrics.TLCacheHits,
			TLCacheMisses:   res.Metrics.TLCacheMisses,
			ConHits:         res.Metrics.ConHits,
			ConMaterialised: res.Metrics.ConMaterialised,
			MaxRegion:       res.Metrics.MaxRegion,
			MinRegion:       res.Metrics.MinRegion,
			RoadSegments:    res.Metrics.ResultSegments,
			RoadKm:          res.Metrics.RoadKm,
		},
		sys: s,
	}
}

// RouteResult is a planned journey between two locations.
type RouteResult struct {
	// SegmentIDs is the path, origin and destination inclusive.
	SegmentIDs []int32
	// TravelTime is the predicted door-to-door travel time.
	TravelTime time.Duration
	// DistanceKm is the route length.
	DistanceKm float64
}

// Route plans the fastest route between two locations departing at the
// given time of day, using per-slot mean speeds learned from the
// trajectories (the time-dependent route query of thesis §5.2). Use
// RouteFreeFlow for the static baseline.
//
// Deprecated: use Do with a KindRoute Request; the answer's Route field
// carries the journey.
func (s *System) Route(from, to Location, departAt time.Duration) (*RouteResult, error) {
	region, err := s.Do(context.Background(), RouteRequest(from, to, departAt))
	if err != nil {
		return nil, err
	}
	return region.Route, nil
}

// RouteFreeFlow plans the static free-flow route (time-invariant).
//
// Deprecated: use Do with a KindRoute Request and
// WithAlgorithm(AlgoFreeFlow).
func (s *System) RouteFreeFlow(from, to Location) (*RouteResult, error) {
	region, err := s.Do(context.Background(), RouteRequest(from, to, 0), WithAlgorithm(AlgoFreeFlow))
	if err != nil {
		return nil, err
	}
	return region.Route, nil
}

// Stats describes the built system, Table 4.1-style.
type Stats struct {
	Segments     int
	Vertices     int
	RoadKm       float64
	Taxis        int
	Days         int
	Trajectories int
	Visits       int
	SlotSeconds  int
}

// Stats summarises the system.
func (s *System) Stats() Stats {
	ns := s.net.Stats()
	ts := s.ds.Stats()
	return Stats{
		Segments:     ns.Segments,
		Vertices:     ns.Vertices,
		RoadKm:       ns.TotalKm,
		Taxis:        ts.Taxis,
		Days:         ts.Days,
		Trajectories: ts.Trajectories,
		Visits:       ts.Visits,
		SlotSeconds:  s.st.SlotSeconds(),
	}
}

// BusiestLocation returns the midpoint of the segment with traffic on the
// most distinct days during the 5-minute window starting at tod. Useful
// for picking realistic query origins, mirroring the paper's downtown
// query location.
func (s *System) BusiestLocation(tod time.Duration) Location {
	lo, hi := tod, tod+5*time.Minute
	// One flat pass: a [segment]-indexed slice of day bitmasks instead of
	// nested maps — no per-segment allocations on what is a full scan of
	// every visit in the dataset.
	words := (s.ds.Days + 63) / 64
	masks := make([]uint64, s.net.NumSegments()*words)
	for i := range s.ds.Matched {
		mt := &s.ds.Matched[i]
		if int(mt.Day) >= s.ds.Days {
			continue
		}
		for _, v := range mt.Visits {
			enter := time.Duration(v.EnterMs) * time.Millisecond
			if enter >= lo && enter < hi {
				masks[int(v.Segment)*words+int(mt.Day)>>6] |= 1 << (uint(mt.Day) & 63)
			}
		}
	}
	best := roadnet.SegmentID(0)
	bestN := -1
	for seg := 0; seg < s.net.NumSegments(); seg++ {
		n := 0
		for w := 0; w < words; w++ {
			n += bits.OnesCount64(masks[seg*words+w])
		}
		if n > bestN {
			best, bestN = roadnet.SegmentID(seg), n
		}
	}
	p := s.net.Segment(best).Midpoint()
	return Location{Lat: p.Lat, Lng: p.Lng}
}
