// Package btree implements the B+tree used as the temporal level of the
// ST-Index (thesis §3.2.1): one day is divided into fixed Δt time slots and
// the tree maps each slot's start offset to the identifier of the spatial
// partition for that slot. Keys are int64 (seconds since midnight, or any
// monotone slot key) and values are int64 handles.
//
// The tree supports point lookup, insertion (replacing on duplicate key),
// range scans over [lo, hi], and floor/ceiling queries used to snap an
// arbitrary query timestamp onto its enclosing slot.
package btree

import "sort"

const (
	// order is the maximum number of children of an internal node.
	order      = 32
	maxKeys    = order - 1
	minKeys    = maxKeys / 2
	maxLeafLen = order
	minLeafLen = maxLeafLen / 2
)

// Tree is a B+tree from int64 keys to int64 values. The zero value is not
// usable; call New.
type Tree struct {
	root  treeNode
	size  int
	first *leafNode // head of the leaf linked list for range scans
}

type treeNode interface {
	// isLeaf distinguishes the two node kinds without reflection.
	isLeaf() bool
}

type leafNode struct {
	keys   []int64
	values []int64
	next   *leafNode
}

type innerNode struct {
	// keys[i] is the smallest key in children[i+1]'s subtree.
	keys     []int64
	children []treeNode
}

func (*leafNode) isLeaf() bool  { return true }
func (*innerNode) isLeaf() bool { return false }

// New returns an empty tree.
func New() *Tree {
	leaf := &leafNode{}
	return &Tree{root: leaf, first: leaf}
}

// Len returns the number of key/value pairs stored.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored at key and whether it was present.
func (t *Tree) Get(key int64) (int64, bool) {
	leaf := t.findLeaf(key)
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
	if i < len(leaf.keys) && leaf.keys[i] == key {
		return leaf.values[i], true
	}
	return 0, false
}

// Floor returns the largest key <= key and its value. ok is false when no
// such key exists.
func (t *Tree) Floor(key int64) (k, v int64, ok bool) {
	var bestK, bestV int64
	found := false
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
		n = in.children[i]
	}
	leaf := n.(*leafNode)
	i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] > key })
	if i > 0 {
		return leaf.keys[i-1], leaf.values[i-1], true
	}
	// The floor may live in an earlier leaf; walk the leaf list from the
	// start (leaves are small and this path is cold: it only triggers for
	// keys before the first key of their leaf, i.e. keys smaller than any
	// stored key or at leaf boundaries).
	for l := t.first; l != nil; l = l.next {
		for j, lk := range l.keys {
			if lk > key {
				if found {
					return bestK, bestV, true
				}
				return 0, 0, false
			}
			bestK, bestV, found = lk, l.values[j], true
		}
		if l == leaf {
			break
		}
	}
	if found {
		return bestK, bestV, true
	}
	return 0, 0, false
}

// Ceiling returns the smallest key >= key and its value. ok is false when
// no such key exists.
func (t *Tree) Ceiling(key int64) (k, v int64, ok bool) {
	leaf := t.findLeaf(key)
	for l := leaf; l != nil; l = l.next {
		i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
		if i < len(l.keys) {
			return l.keys[i], l.values[i], true
		}
	}
	return 0, 0, false
}

// Put inserts or replaces the value at key.
func (t *Tree) Put(key, value int64) {
	splitKey, sibling := t.insert(t.root, key, value)
	if sibling != nil {
		newRoot := &innerNode{
			keys:     []int64{splitKey},
			children: []treeNode{t.root, sibling},
		}
		t.root = newRoot
	}
}

func (t *Tree) findLeaf(key int64) *leafNode {
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
		n = in.children[i]
	}
	return n.(*leafNode)
}

// insert adds key/value under n. When n splits, it returns the separator
// key and the new right sibling.
func (t *Tree) insert(n treeNode, key, value int64) (int64, treeNode) {
	if leaf, ok := n.(*leafNode); ok {
		i := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= key })
		if i < len(leaf.keys) && leaf.keys[i] == key {
			leaf.values[i] = value // replace
			return 0, nil
		}
		leaf.keys = append(leaf.keys, 0)
		leaf.values = append(leaf.values, 0)
		copy(leaf.keys[i+1:], leaf.keys[i:])
		copy(leaf.values[i+1:], leaf.values[i:])
		leaf.keys[i] = key
		leaf.values[i] = value
		t.size++
		if len(leaf.keys) > maxLeafLen {
			mid := len(leaf.keys) / 2
			sib := &leafNode{
				keys:   append([]int64(nil), leaf.keys[mid:]...),
				values: append([]int64(nil), leaf.values[mid:]...),
				next:   leaf.next,
			}
			leaf.keys = leaf.keys[:mid]
			leaf.values = leaf.values[:mid]
			leaf.next = sib
			return sib.keys[0], sib
		}
		return 0, nil
	}

	in := n.(*innerNode)
	i := sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
	splitKey, sibling := t.insert(in.children[i], key, value)
	if sibling == nil {
		return 0, nil
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[i+1:], in.keys[i:])
	in.keys[i] = splitKey
	in.children = append(in.children, nil)
	copy(in.children[i+2:], in.children[i+1:])
	in.children[i+1] = sibling
	if len(in.keys) > maxKeys {
		mid := len(in.keys) / 2
		upKey := in.keys[mid]
		sib := &innerNode{
			keys:     append([]int64(nil), in.keys[mid+1:]...),
			children: append([]treeNode(nil), in.children[mid+1:]...),
		}
		in.keys = in.keys[:mid]
		in.children = in.children[:mid+1]
		return upKey, sib
	}
	return 0, nil
}

// Range calls fn for each key/value with lo <= key <= hi in ascending key
// order; fn returning false stops the scan early.
func (t *Tree) Range(lo, hi int64, fn func(key, value int64) bool) {
	leaf := t.findLeaf(lo)
	for l := leaf; l != nil; l = l.next {
		i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= lo })
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return
			}
			if !fn(l.keys[i], l.values[i]) {
				return
			}
		}
	}
}

// Keys returns all keys in ascending order. Intended for tests and tools.
func (t *Tree) Keys() []int64 {
	out := make([]int64, 0, t.size)
	for l := t.first; l != nil; l = l.next {
		out = append(out, l.keys...)
	}
	return out
}

// Min returns the smallest key and its value; ok is false when empty.
func (t *Tree) Min() (k, v int64, ok bool) {
	for l := t.first; l != nil; l = l.next {
		if len(l.keys) > 0 {
			return l.keys[0], l.values[0], true
		}
	}
	return 0, 0, false
}

// Max returns the largest key and its value; ok is false when empty.
func (t *Tree) Max() (k, v int64, ok bool) {
	n := t.root
	for !n.isLeaf() {
		in := n.(*innerNode)
		n = in.children[len(in.children)-1]
	}
	leaf := n.(*leafNode)
	if len(leaf.keys) == 0 {
		return 0, 0, false
	}
	last := len(leaf.keys) - 1
	return leaf.keys[last], leaf.values[last], true
}
