package btree

import (
	"math/rand"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	keys := make([]int64, 100000)
	for i := range keys {
		keys[i] = rng.Int63n(1 << 40)
	}
	b.ReportAllocs()
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i%len(keys)], int64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Put(i*7, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(int64(i%100000) * 7)
	}
}

func BenchmarkFloor(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Put(i*7, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Floor(int64(i%700000) + 3)
	}
}

func BenchmarkRangeScan(b *testing.B) {
	tr := New()
	for i := int64(0); i < 100000; i++ {
		tr.Put(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i % 90000)
		n := 0
		tr.Range(lo, lo+1000, func(k, v int64) bool { n++; return true })
	}
}
