package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree should be empty")
	}
	if _, ok := tr.Get(5); ok {
		t.Fatal("Get on empty tree should miss")
	}
	if _, _, ok := tr.Floor(5); ok {
		t.Fatal("Floor on empty tree should miss")
	}
	if _, _, ok := tr.Ceiling(5); ok {
		t.Fatal("Ceiling on empty tree should miss")
	}
	if _, _, ok := tr.Min(); ok {
		t.Fatal("Min on empty tree should miss")
	}
	if _, _, ok := tr.Max(); ok {
		t.Fatal("Max on empty tree should miss")
	}
}

func TestPutGetSequential(t *testing.T) {
	tr := New()
	const n = 10000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i*10)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := int64(0); i < n; i++ {
		v, ok := tr.Get(i)
		if !ok || v != i*10 {
			t.Fatalf("Get(%d) = %d,%v, want %d,true", i, v, ok, i*10)
		}
	}
	if _, ok := tr.Get(n); ok {
		t.Fatal("Get past max should miss")
	}
	if _, ok := tr.Get(-1); ok {
		t.Fatal("Get below min should miss")
	}
}

func TestPutGetRandomOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(5000)
	for _, k := range keys {
		tr.Put(int64(k), int64(k)+1)
	}
	for _, k := range keys {
		v, ok := tr.Get(int64(k))
		if !ok || v != int64(k)+1 {
			t.Fatalf("Get(%d) = %d,%v", k, v, ok)
		}
	}
	got := tr.Keys()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("Keys() not sorted")
	}
	if len(got) != 5000 {
		t.Fatalf("Keys() has %d entries, want 5000", len(got))
	}
}

func TestReplaceOnDuplicate(t *testing.T) {
	tr := New()
	tr.Put(42, 1)
	tr.Put(42, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after duplicate put, want 1", tr.Len())
	}
	if v, _ := tr.Get(42); v != 2 {
		t.Fatalf("Get(42) = %d, want 2", v)
	}
}

func TestRangeScan(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Put(i*5, i) // keys 0,5,10,...495
	}
	var keys []int64
	tr.Range(12, 37, func(k, v int64) bool {
		keys = append(keys, k)
		return true
	})
	want := []int64{15, 20, 25, 30, 35}
	if len(keys) != len(want) {
		t.Fatalf("Range returned %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Range returned %v, want %v", keys, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := New()
	for i := int64(0); i < 100; i++ {
		tr.Put(i, i)
	}
	count := 0
	tr.Range(0, 99, func(k, v int64) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestRangeFullAndEmpty(t *testing.T) {
	tr := New()
	for i := int64(10); i <= 20; i++ {
		tr.Put(i, i)
	}
	var n int
	tr.Range(-100, 100, func(k, v int64) bool { n++; return true })
	if n != 11 {
		t.Fatalf("full range visited %d, want 11", n)
	}
	n = 0
	tr.Range(21, 100, func(k, v int64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty range visited %d", n)
	}
	n = 0
	tr.Range(0, 9, func(k, v int64) bool { n++; return true })
	if n != 0 {
		t.Fatalf("below-range visited %d", n)
	}
}

func TestFloorCeiling(t *testing.T) {
	tr := New()
	for _, k := range []int64{10, 20, 30, 40} {
		tr.Put(k, k*2)
	}
	cases := []struct {
		q       int64
		floorK  int64
		floorOK bool
		ceilK   int64
		ceilOK  bool
	}{
		{5, 0, false, 10, true},
		{10, 10, true, 10, true},
		{15, 10, true, 20, true},
		{25, 20, true, 30, true},
		{40, 40, true, 40, true},
		{45, 40, true, 0, false},
	}
	for _, c := range cases {
		k, v, ok := tr.Floor(c.q)
		if ok != c.floorOK || (ok && k != c.floorK) {
			t.Fatalf("Floor(%d) = %d,%v, want %d,%v", c.q, k, ok, c.floorK, c.floorOK)
		}
		if ok && v != k*2 {
			t.Fatalf("Floor(%d) value = %d, want %d", c.q, v, k*2)
		}
		k, v, ok = tr.Ceiling(c.q)
		if ok != c.ceilOK || (ok && k != c.ceilK) {
			t.Fatalf("Ceiling(%d) = %d,%v, want %d,%v", c.q, k, ok, c.ceilK, c.ceilOK)
		}
		if ok && v != k*2 {
			t.Fatalf("Ceiling(%d) value = %d, want %d", c.q, v, k*2)
		}
	}
}

func TestFloorAcrossManyLeaves(t *testing.T) {
	// Dense keys force many leaf splits; Floor must be right at leaf
	// boundaries.
	tr := New()
	for i := int64(0); i < 2000; i += 2 {
		tr.Put(i, i)
	}
	for i := int64(1); i < 1999; i += 2 {
		k, _, ok := tr.Floor(i)
		if !ok || k != i-1 {
			t.Fatalf("Floor(%d) = %d,%v, want %d", i, k, ok, i-1)
		}
	}
}

func TestMinMax(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(4))
	var lo, hi int64 = 1 << 62, -(1 << 62)
	for i := 0; i < 1000; i++ {
		k := int64(rng.Intn(100000))
		tr.Put(k, k)
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	if k, _, ok := tr.Min(); !ok || k != lo {
		t.Fatalf("Min = %d,%v, want %d", k, ok, lo)
	}
	if k, _, ok := tr.Max(); !ok || k != hi {
		t.Fatalf("Max = %d,%v, want %d", k, ok, hi)
	}
}

func TestQuickCheckAgainstMap(t *testing.T) {
	f := func(keys []int64) bool {
		tr := New()
		oracle := map[int64]int64{}
		for i, k := range keys {
			tr.Put(k, int64(i))
			oracle[k] = int64(i)
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for k, want := range oracle {
			got, ok := tr.Get(k)
			if !ok || got != want {
				return false
			}
		}
		// Range over everything must visit exactly the oracle keys in order.
		var visited []int64
		tr.Range(-(1<<63 - 1), 1<<63-1, func(k, v int64) bool {
			visited = append(visited, k)
			return true
		})
		if len(visited) != len(oracle) {
			return false
		}
		for i := 1; i < len(visited); i++ {
			if visited[i-1] >= visited[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New()
	for i := int64(-500); i <= 500; i++ {
		tr.Put(i, -i)
	}
	for i := int64(-500); i <= 500; i++ {
		v, ok := tr.Get(i)
		if !ok || v != -i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	if k, _, _ := tr.Min(); k != -500 {
		t.Fatalf("Min = %d, want -500", k)
	}
}
