// Package xerr carries error classification across the internal
// packages. The public taxonomy lives in the root streach package
// (streach.Error with its ErrorCode enum), but internal packages cannot
// import the root package, so they mark errors with a Kind here and the
// facade translates Kind to ErrorCode at the API boundary.
package xerr

import (
	"errors"
	"fmt"
)

// Kind classifies an error for the facade's taxonomy. The zero value
// KindUnknown means "not classified" — the facade falls back to its own
// heuristics (context errors, validation strings).
type Kind int

const (
	KindUnknown Kind = iota
	// KindInvalid: the request itself is malformed (bad probability,
	// empty window, no road segment near the query point, ...).
	KindInvalid
	// KindTimeout: a deadline - the caller's or a per-shard budget -
	// expired before the work finished.
	KindTimeout
	// KindOverloaded: the system shed the request (admission control).
	KindOverloaded
	// KindShardFailure: one or more shards of a scatter-gather query
	// failed (error, panic, or injected fault).
	KindShardFailure
	// KindCorrupt: persisted state failed validation (checksum mismatch,
	// truncated or malformed blob).
	KindCorrupt
	// KindInternal: an invariant was violated (recovered panic, bug).
	KindInternal
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case KindInvalid:
		return "invalid"
	case KindTimeout:
		return "timeout"
	case KindOverloaded:
		return "overloaded"
	case KindShardFailure:
		return "shard_failure"
	case KindCorrupt:
		return "corrupt"
	case KindInternal:
		return "internal"
	}
	return "unknown"
}

// kindError attaches a Kind to an error without changing its message.
type kindError struct {
	kind Kind
	err  error
}

func (e *kindError) Error() string { return e.err.Error() }
func (e *kindError) Unwrap() error { return e.err }

// Mark wraps err with kind. A nil err returns nil. Re-marking an
// already-kinded error overrides the inner kind (the outermost mark
// wins in KindOf, since errors.As finds it first).
func Mark(kind Kind, err error) error {
	if err == nil {
		return nil
	}
	return &kindError{kind: kind, err: err}
}

// Markf is Mark over a formatted error; %w verbs work as with
// fmt.Errorf.
func Markf(kind Kind, format string, args ...any) error {
	return &kindError{kind: kind, err: fmt.Errorf(format, args...)}
}

// KindOf reports the Kind attached to err, or KindUnknown if none. The
// outermost mark in the chain wins.
func KindOf(err error) Kind {
	var ke *kindError
	if errors.As(err, &ke) {
		return ke.kind
	}
	return KindUnknown
}
