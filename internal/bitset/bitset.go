// Package bitset holds the word-level bit-vector helpers shared by the
// ST-Index time-list encoding (per-day taxi bitsets) and the Con-Index /
// query-core bounding phase (per-slot segment bitsets). Everything
// operates on raw []uint64 so callers can embed the words in their own
// cache entries and on-disk blobs without conversion.
package bitset

import "math/bits"

// Words returns how many uint64 words hold n bits.
func Words(n int) int { return (n + 63) / 64 }

// Set is a fixed-capacity dense bitset: bit i lives in word i/64.
type Set []uint64

// New returns a zeroed Set with capacity for n bits.
func New(n int) Set { return make(Set, Words(n)) }

// Has reports whether bit i is set.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Add sets bit i.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Count returns the number of set bits.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clear zeroes every word.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Or folds src into dst word-by-word. src must not be longer than dst.
func Or(dst Set, src []uint64) {
	for i, w := range src {
		dst[i] |= w
	}
}

// OrGrow folds src into dst, growing dst as needed, and returns dst.
// Used where the two operands are sized independently (per-day taxi
// bitsets trimmed to their highest ID).
func OrGrow(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, w := range src {
		dst[i] |= w
	}
	return dst
}

// AndCount returns the number of bits set in both a and b. Words beyond
// the shorter operand are implicitly zero.
func AndCount(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// Intersects reports whether two bitsets share a set bit. Words beyond
// the shorter operand are implicitly zero.
func Intersects(a, b []uint64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn with the index of every set bit, ascending.
func ForEach(words []uint64, fn func(i int)) {
	for wi, w := range words {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ForEachDiff calls fn with every bit set in a but not in b, ascending.
// b may be shorter than a; its missing words are implicitly zero.
func ForEachDiff(a, b []uint64, fn func(i int)) {
	for wi, w := range a {
		if wi < len(b) {
			w &^= b[wi]
		}
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

