package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestAddHasCount(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 63, 64, 127, 128, 199} {
		if s.Has(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Clear()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Clear = %d, want 0", got)
	}
}

func TestOrAndIntersects(t *testing.T) {
	a, b := New(130), New(130)
	a.Add(1)
	a.Add(129)
	b.Add(64)
	if Intersects(a, b) {
		t.Fatal("disjoint sets should not intersect")
	}
	Or(a, b)
	if !a.Has(64) || !a.Has(1) || !a.Has(129) {
		t.Fatal("Or lost bits")
	}
	if !Intersects(a, b) {
		t.Fatal("subset should intersect")
	}
	// Shorter operand: missing words are implicitly zero.
	short := []uint64{0}
	if Intersects(a, short) {
		t.Fatal("zero word should not intersect")
	}
	short[0] = 2 // bit 1
	if !Intersects(a, short) {
		t.Fatal("shared low bit should intersect")
	}
}

func TestOrGrow(t *testing.T) {
	var dst []uint64
	src := []uint64{1, 0, 1 << 5}
	dst = OrGrow(dst, src)
	if len(dst) != 3 || dst[0] != 1 || dst[2] != 1<<5 {
		t.Fatalf("OrGrow = %v", dst)
	}
	dst = OrGrow(dst, []uint64{2})
	if dst[0] != 3 {
		t.Fatalf("OrGrow merge = %v", dst)
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(300)
	want := []int{3, 64, 65, 190, 299}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	ForEach(s, func(i int) { got = append(got, i) })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
}

func TestDiffMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
			}
		}
		var want []int
		for i := 0; i < n; i++ {
			if a.Has(i) && !b.Has(i) {
				want = append(want, i)
			}
		}
		var got []int
		ForEachDiff(a, b, func(i int) { got = append(got, i) })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ForEachDiff = %v, want %v", trial, got, want)
		}
		// Shorter b operand.
		got = got[:0]
		ForEachDiff(a, b[:len(b)/2], func(i int) { got = append(got, i) })
		var want2 []int
		for i := 0; i < n; i++ {
			inB := i < len(b[:len(b)/2])*64 && b.Has(i)
			if a.Has(i) && !inB {
				want2 = append(want2, i)
			}
		}
		if !reflect.DeepEqual(got, want2) {
			t.Fatalf("trial %d short-b: got %v, want %v", trial, got, want2)
		}
	}
}
