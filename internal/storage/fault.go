package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the sentinel wrapped by every error a FaultStore
// injects, so tests and callers can errors.Is() for it.
var ErrInjected = errors.New("storage: injected fault")

// FaultOp selects which Store operation a FaultRule applies to.
type FaultOp int

const (
	OpRead FaultOp = iota
	OpWrite
	OpAlloc
)

// String names the op (scenario-spec keyword).
func (o FaultOp) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAlloc:
		return "alloc"
	}
	return "?"
}

// FaultMode selects what an armed FaultRule does to a matching op.
type FaultMode int

const (
	// ModeError fails the op with an ErrInjected-wrapped error.
	ModeError FaultMode = iota
	// ModeLatency delays the op by Latency, then performs it normally.
	ModeLatency
	// ModeCorrupt performs the op, then flips one deterministically
	// chosen bit in the buffer (reads corrupt what the caller sees;
	// writes corrupt what lands in the store).
	ModeCorrupt
)

// String names the mode (scenario-spec keyword).
func (m FaultMode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModeCorrupt:
		return "corrupt"
	}
	return "?"
}

// FaultRule describes one deterministic fault: after After matching
// operations pass through untouched, the next Count matching operations
// (all of them when Count <= 0) are affected according to Mode.
type FaultRule struct {
	Op      FaultOp
	Mode    FaultMode
	After   int           // ops to let through before arming
	Count   int           // ops to affect once armed; <= 0 = unlimited
	Latency time.Duration // delay for ModeLatency
}

// Scenario is a seedable set of fault rules, the unit a chaos flag or a
// test configures a FaultStore with. Seed drives corruption-bit choice
// so a scenario replays identically.
type Scenario struct {
	Seed  int64
	Rules []FaultRule
}

// ParseScenario parses a compact comma-separated spec into a Scenario,
// the grammar behind `serve -chaos store=...`:
//
//	rule     := op ":" mode [ "@" after ] [ "x" count ] [ "=" latency ]
//	op       := "read" | "write" | "alloc"
//	mode     := "error" | "latency" | "corrupt"
//	seedrule := "seed" "=" int64
//
// Examples: "read:error@100" (fail every read after the first 100),
// "read:error@10x3" (fail reads 11-13, then recover),
// "write:latency=5ms", "read:corrupt,seed=42".
func ParseScenario(spec string) (Scenario, error) {
	var sc Scenario
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(part, "seed="); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return Scenario{}, fmt.Errorf("storage: bad scenario seed %q", rest)
			}
			sc.Seed = seed
			continue
		}
		opStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return Scenario{}, fmt.Errorf("storage: bad scenario rule %q (want op:mode)", part)
		}
		var r FaultRule
		switch opStr {
		case "read":
			r.Op = OpRead
		case "write":
			r.Op = OpWrite
		case "alloc":
			r.Op = OpAlloc
		default:
			return Scenario{}, fmt.Errorf("storage: unknown fault op %q", opStr)
		}
		if mode, lat, ok := strings.Cut(rest, "="); ok {
			d, err := time.ParseDuration(lat)
			if err != nil {
				return Scenario{}, fmt.Errorf("storage: bad latency %q: %v", lat, err)
			}
			r.Latency = d
			rest = mode
		}
		if mode, cnt, ok := strings.Cut(rest, "x"); ok {
			n, err := strconv.Atoi(cnt)
			if err != nil {
				return Scenario{}, fmt.Errorf("storage: bad count %q", cnt)
			}
			r.Count = n
			rest = mode
		}
		if mode, after, ok := strings.Cut(rest, "@"); ok {
			n, err := strconv.Atoi(after)
			if err != nil {
				return Scenario{}, fmt.Errorf("storage: bad arming offset %q", after)
			}
			r.After = n
			rest = mode
		}
		switch rest {
		case "error":
			r.Mode = ModeError
		case "latency":
			r.Mode = ModeLatency
			if r.Latency == 0 {
				return Scenario{}, fmt.Errorf("storage: latency rule %q needs =duration", part)
			}
		case "corrupt":
			r.Mode = ModeCorrupt
		default:
			return Scenario{}, fmt.Errorf("storage: unknown fault mode %q", rest)
		}
		sc.Rules = append(sc.Rules, r)
	}
	return sc, nil
}

// armedRule is a FaultRule plus its live op counter.
type armedRule struct {
	FaultRule
	seen  int // matching ops observed so far
	fired int // ops affected so far
}

// FaultStore wraps a Store with deterministic fault injection. It is
// the chaos harness shared by the storage, stindex, conindex, and shard
// tests and by the `serve -chaos` dev flag. Safe for concurrent use;
// rule evaluation is serialized, injected latency is not.
type FaultStore struct {
	inner    Store
	mu       sync.Mutex
	rules    []*armedRule
	rng      *rand.Rand
	injected atomic.Int64
}

// NewFaultStore wraps inner with the scenario's rules.
func NewFaultStore(inner Store, sc Scenario) *FaultStore {
	f := &FaultStore{inner: inner, rng: rand.New(rand.NewSource(sc.Seed))}
	f.Arm(sc.Rules...)
	return f
}

// Arm appends rules to the live set. Counters start fresh, so a rule
// armed mid-test begins counting matching ops from now.
func (f *FaultStore) Arm(rules ...FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range rules {
		f.rules = append(f.rules, &armedRule{FaultRule: r})
	}
}

// Clear removes every rule; subsequent operations pass through
// untouched (the "transient fault healed" transition).
func (f *FaultStore) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Injected reports how many operations have been affected so far.
func (f *FaultStore) Injected() int64 { return f.injected.Load() }

// Inner returns the wrapped store.
func (f *FaultStore) Inner() Store { return f.inner }

// decide consumes one op against the rule set and returns the action to
// apply: whether to fail it, a latency to sleep, and whether to flip a
// bit in the buffer.
func (f *FaultStore) decide(op FaultOp) (fail bool, sleep time.Duration, corrupt bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != op {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		f.injected.Add(1)
		switch r.Mode {
		case ModeError:
			fail = true
		case ModeLatency:
			sleep += r.Latency
		case ModeCorrupt:
			corrupt = true
		}
	}
	return fail, sleep, corrupt
}

// flipBit flips one rng-chosen bit in buf.
func (f *FaultStore) flipBit(buf []byte) {
	if len(buf) == 0 {
		return
	}
	f.mu.Lock()
	bit := f.rng.Intn(len(buf) * 8)
	f.mu.Unlock()
	buf[bit/8] ^= 1 << (bit % 8)
}

// NumPages implements Store.
func (f *FaultStore) NumPages() int64 { return f.inner.NumPages() }

// Allocate implements Store.
func (f *FaultStore) Allocate() (PageID, error) {
	fail, sleep, _ := f.decide(OpAlloc)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return 0, fmt.Errorf("allocate: %w", ErrInjected)
	}
	return f.inner.Allocate()
}

// ReadPage implements Store.
func (f *FaultStore) ReadPage(id PageID, buf []byte) error {
	fail, sleep, corrupt := f.decide(OpRead)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return fmt.Errorf("read page %d: %w", id, ErrInjected)
	}
	if err := f.inner.ReadPage(id, buf); err != nil {
		return err
	}
	if corrupt {
		f.flipBit(buf[:min(len(buf), PageSize)])
	}
	return nil
}

// WritePage implements Store.
func (f *FaultStore) WritePage(id PageID, buf []byte) error {
	fail, sleep, corrupt := f.decide(OpWrite)
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fail {
		return fmt.Errorf("write page %d: %w", id, ErrInjected)
	}
	if corrupt {
		tmp := make([]byte, len(buf))
		copy(tmp, buf)
		f.flipBit(tmp[:min(len(tmp), PageSize)])
		return f.inner.WritePage(id, tmp)
	}
	return f.inner.WritePage(id, buf)
}

// Close implements Store.
func (f *FaultStore) Close() error { return f.inner.Close() }

// Sync forwards to the inner store's durability boundary when it has
// one, so a fault-wrapped FileStore still persists like one.
func (f *FaultStore) Sync() error {
	if s, ok := f.inner.(Syncer); ok {
		return s.Sync()
	}
	return nil
}
