package storage

import (
	"os"
	"sync/atomic"
)

// Crash-point injection (DESIGN.md §14). Every durability boundary in
// the persistence spine — WAL segment creation, batch append, fsync,
// seal, retire, atomic-install write/sync/rename, directory sync, page
// flush — announces itself through CrashPoint before performing the
// operation. The default hook is nil (zero overhead beyond one atomic
// load); the crash-recovery harness installs a hook that panics at a
// chosen point, simulating a power cut between the previous boundary
// and this one: everything before the point is on disk exactly as a
// real crash would leave it, nothing after it runs.
//
// The hook is process-global because the boundaries span packages
// (internal/ingest, the streach facade, this package); tests that
// install one must not run in parallel with other persistence tests.

var crashHook atomic.Pointer[func(string)]

// SetCrashHook installs fn as the crash-point hook (nil to clear). The
// hook runs on the goroutine performing the guarded operation; a hook
// that panics aborts the operation sequence mid-flight, which is the
// intended "power cut" semantics.
func SetCrashHook(fn func(string)) {
	if fn == nil {
		crashHook.Store(nil)
		return
	}
	crashHook.Store(&fn)
}

// CrashPoint announces one named durability boundary. No-op unless a
// hook is installed.
func CrashPoint(name string) {
	if p := crashHook.Load(); p != nil {
		(*p)(name)
	}
}

// SyncDir fsyncs a directory, making preceding renames, creations, and
// removals inside it durable on filesystems (ext4 and friends) where a
// file rename is not persisted until its parent directory is synced.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
