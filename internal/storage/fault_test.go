package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// faultStore wraps a Store and fails operations once armed, exercising
// the error paths of the buffer pool and blob file.
type faultStore struct {
	inner      Store
	mu         sync.Mutex
	failReads  bool
	failWrites bool
	failAllocs bool
	opsUntil   int // ops remaining before failures arm; <0 = armed now
}

var errInjected = errors.New("injected fault")

func (f *faultStore) tick() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opsUntil--
	return f.opsUntil < 0
}

func (f *faultStore) NumPages() int64 { return f.inner.NumPages() }

func (f *faultStore) Allocate() (PageID, error) {
	if f.failAllocs && f.tick() {
		return 0, fmt.Errorf("allocate: %w", errInjected)
	}
	return f.inner.Allocate()
}

func (f *faultStore) ReadPage(id PageID, buf []byte) error {
	if f.failReads && f.tick() {
		return fmt.Errorf("read %d: %w", id, errInjected)
	}
	return f.inner.ReadPage(id, buf)
}

func (f *faultStore) WritePage(id PageID, buf []byte) error {
	if f.failWrites && f.tick() {
		return fmt.Errorf("write %d: %w", id, errInjected)
	}
	return f.inner.WritePage(id, buf)
}

func (f *faultStore) Close() error { return f.inner.Close() }

func TestBufferPoolPropagatesReadFault(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failReads: true, opsUntil: 0}
	bp, _ := NewBufferPool(fs, 4)
	id, _ := bp.Allocate()
	if _, err := bp.GetPage(id); !errors.Is(err, errInjected) {
		t.Fatalf("GetPage error = %v, want injected fault", err)
	}
	// The failed page must not be cached.
	if bp.Len() != 0 {
		t.Fatal("failed read should not leave a cached frame")
	}
}

func TestBufferPoolPropagatesEvictionWriteFault(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failWrites: true, opsUntil: 0}
	bp, _ := NewBufferPool(fs, 1)
	a, _ := bp.Allocate()
	b, _ := bp.Allocate()
	if err := bp.WritePage(a, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	// Touching b forces eviction of dirty a, whose write-back fails.
	_, err := bp.GetPage(b)
	if !errors.Is(err, errInjected) {
		t.Fatalf("eviction error = %v, want injected fault", err)
	}
}

func TestBufferPoolPropagatesFlushFault(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failWrites: true, opsUntil: 0}
	bp, _ := NewBufferPool(fs, 8)
	id, _ := bp.Allocate()
	if err := bp.WritePage(id, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); !errors.Is(err, errInjected) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
}

func TestBlobFilePropagatesAllocFault(t *testing.T) {
	fs := &faultStore{inner: NewMemStore(), failAllocs: true, opsUntil: 0}
	bp, _ := NewBufferPool(fs, 4)
	f := NewBlobFile(bp)
	if _, err := f.Append([]byte("payload")); !errors.Is(err, errInjected) {
		t.Fatalf("Append error = %v, want injected fault", err)
	}
}

func TestBlobFileRecoversAfterTransientFault(t *testing.T) {
	// Arm a read fault after the blobs are written, verify it surfaces,
	// then clear it and confirm the same handles read back intact.
	fs := &faultStore{inner: NewMemStore()}
	bp, _ := NewBufferPool(fs, 1) // capacity 1 forces physical reads
	f := NewBlobFile(bp)
	h1, err := f.Append([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := f.Append(make([]byte, PageSize)) // spills to a second page
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Invalidate(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	fs.failReads = true
	fs.opsUntil = 0 // next physical read faults
	fs.mu.Unlock()
	if _, err := f.Read(h1); !errors.Is(err, errInjected) {
		t.Fatalf("Read error = %v, want injected fault", err)
	}
	// Fault cleared: everything reads again, nothing was corrupted.
	fs.mu.Lock()
	fs.failReads = false
	fs.mu.Unlock()
	got, err := f.Read(h1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaa" {
		t.Fatalf("recovered read = %q", got)
	}
	big, err := f.Read(h2)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != PageSize {
		t.Fatalf("recovered big blob length = %d", len(big))
	}
}

func TestConcurrentPoolAccess(t *testing.T) {
	bp, _ := NewBufferPool(NewMemStore(), 8)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 200; i++ {
				id := ids[(g*7+i)%len(ids)]
				if i%3 == 0 {
					buf[0] = byte(g)
					if err := bp.WritePage(id, buf); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := bp.GetPage(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
}
