package storage

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBufferPoolPropagatesReadFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), Scenario{Rules: []FaultRule{{Op: OpRead, Mode: ModeError}}})
	bp, _ := NewBufferPool(fs, 4)
	id, _ := bp.Allocate()
	if _, err := bp.GetPage(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("GetPage error = %v, want injected fault", err)
	}
	// The failed page must not be cached.
	if bp.Len() != 0 {
		t.Fatal("failed read should not leave a cached frame")
	}
}

func TestBufferPoolPropagatesEvictionWriteFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), Scenario{Rules: []FaultRule{{Op: OpWrite, Mode: ModeError}}})
	bp, _ := NewBufferPool(fs, 1)
	a, _ := bp.Allocate()
	b, _ := bp.Allocate()
	if err := bp.WritePage(a, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	// Touching b forces eviction of dirty a, whose write-back fails.
	_, err := bp.GetPage(b)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("eviction error = %v, want injected fault", err)
	}
}

func TestBufferPoolPropagatesFlushFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), Scenario{Rules: []FaultRule{{Op: OpWrite, Mode: ModeError}}})
	bp, _ := NewBufferPool(fs, 8)
	id, _ := bp.Allocate()
	if err := bp.WritePage(id, make([]byte, PageSize)); err != nil {
		t.Fatal(err)
	}
	if err := bp.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
}

func TestBlobFilePropagatesAllocFault(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), Scenario{Rules: []FaultRule{{Op: OpAlloc, Mode: ModeError}}})
	bp, _ := NewBufferPool(fs, 4)
	f := NewBlobFile(bp)
	if _, err := f.Append([]byte("payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append error = %v, want injected fault", err)
	}
}

func TestBlobFileRecoversAfterTransientFault(t *testing.T) {
	// Arm a read fault after the blobs are written, verify it surfaces,
	// then clear it and confirm the same handles read back intact.
	fs := NewFaultStore(NewMemStore(), Scenario{})
	bp, _ := NewBufferPool(fs, 1) // capacity 1 forces physical reads
	f := NewBlobFile(bp)
	h1, err := f.Append([]byte("aaaa"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := f.Append(make([]byte, PageSize)) // spills to a second page
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Invalidate(); err != nil {
		t.Fatal(err)
	}
	fs.Arm(FaultRule{Op: OpRead, Mode: ModeError}) // next physical read faults
	if _, err := f.Read(h1); !errors.Is(err, ErrInjected) {
		t.Fatalf("Read error = %v, want injected fault", err)
	}
	if fs.Injected() == 0 {
		t.Fatal("Injected() should count the faulted read")
	}
	// Fault cleared: everything reads again, nothing was corrupted.
	fs.Clear()
	got, err := f.Read(h1)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aaaa" {
		t.Fatalf("recovered read = %q", got)
	}
	big, err := f.Read(h2)
	if err != nil {
		t.Fatal(err)
	}
	if len(big) != PageSize {
		t.Fatalf("recovered big blob length = %d", len(big))
	}
}

func TestFaultStoreArmingAndCount(t *testing.T) {
	// read:error@2x1 — reads 1-2 pass, read 3 fails, reads 4+ pass.
	fs := NewFaultStore(NewMemStore(), Scenario{Rules: []FaultRule{
		{Op: OpRead, Mode: ModeError, After: 2, Count: 1},
	}})
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	for i, wantErr := range []bool{false, false, true, false, false} {
		err := fs.ReadPage(id, buf)
		if gotErr := errors.Is(err, ErrInjected); gotErr != wantErr {
			t.Fatalf("read %d: err = %v, want injected=%v", i+1, err, wantErr)
		}
	}
	if n := fs.Injected(); n != 1 {
		t.Fatalf("Injected() = %d, want 1", n)
	}
}

func TestFaultStoreCorruptionIsDeterministic(t *testing.T) {
	payload := make([]byte, PageSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	readBack := func(seed int64) []byte {
		inner := NewMemStore()
		id, _ := inner.Allocate()
		if err := inner.WritePage(id, payload); err != nil {
			t.Fatal(err)
		}
		fs := NewFaultStore(inner, Scenario{Seed: seed, Rules: []FaultRule{
			{Op: OpRead, Mode: ModeCorrupt, Count: 1},
		}})
		buf := make([]byte, PageSize)
		if err := fs.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := readBack(7), readBack(7)
	if bytes.Equal(a, payload) {
		t.Fatal("corrupt read returned pristine data")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed should corrupt the same bit")
	}
	// Exactly one bit differs.
	diff := 0
	for i := range a {
		x := a[i] ^ payload[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want 1", diff)
	}
}

func TestFaultStoreLatency(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), Scenario{Rules: []FaultRule{
		{Op: OpRead, Mode: ModeLatency, Latency: 20 * time.Millisecond, Count: 1},
	}})
	id, _ := fs.Allocate()
	buf := make([]byte, PageSize)
	start := time.Now()
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delayed read took %v, want >= 20ms", d)
	}
	// Rule exhausted: second read is fast-path (no assertion on time,
	// just that it succeeds).
	if err := fs.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
}

func TestParseScenario(t *testing.T) {
	sc, err := ParseScenario("read:error@10x3,write:latency=5ms,alloc:corrupt,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 42 || len(sc.Rules) != 3 {
		t.Fatalf("scenario = %+v", sc)
	}
	want := []FaultRule{
		{Op: OpRead, Mode: ModeError, After: 10, Count: 3},
		{Op: OpWrite, Mode: ModeLatency, Latency: 5 * time.Millisecond},
		{Op: OpAlloc, Mode: ModeCorrupt},
	}
	for i, r := range sc.Rules {
		if r != want[i] {
			t.Fatalf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}
	for _, bad := range []string{"read", "spin:error", "read:explode", "read:latency", "read:error@x", "seed=abc"} {
		if _, err := ParseScenario(bad); err == nil {
			t.Fatalf("ParseScenario(%q) should fail", bad)
		}
	}
}

func TestConcurrentPoolAccess(t *testing.T) {
	bp, _ := NewBufferPool(NewMemStore(), 8)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, err := bp.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, PageSize)
			for i := 0; i < 200; i++ {
				id := ids[(g*7+i)%len(ids)]
				if i%3 == 0 {
					buf[0] = byte(g)
					if err := bp.WritePage(id, buf); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := bp.GetPage(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
}
