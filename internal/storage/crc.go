package storage

import (
	"hash"
	"hash/crc32"
)

// Checksums for persisted blobs. All streach on-disk formats share one
// polynomial (Castagnoli, hardware-accelerated on amd64/arm64) so a
// checksum computed by one layer can be verified by another — e.g. the
// ST-Index meta records the checksum of the page store's contents.
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// NewChecksum returns a running CRC-32C hash.
func NewChecksum() hash.Hash32 { return crc32.New(castagnoliTable) }

// Checksum returns the CRC-32C of data.
func Checksum(data []byte) uint32 { return crc32.Checksum(data, castagnoliTable) }
