// Package storage provides the disk layer under the ST-Index time lists.
//
// The paper's central systems claim is that the Con-Index saves *disk
// reads of trajectory time lists* during query processing. To make that
// claim measurable, this package provides an explicit page-based store
// with an LRU buffer pool and I/O counters: every time-list access goes
// through GetPage, and the pool's statistics expose exactly how many page
// reads a query strategy cost. Two backends are provided — an in-memory
// backend for tests and a file backend that performs real I/O.
package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page within a Store.
type PageID int64

// ErrPageOutOfRange is returned when reading a page that was never
// allocated.
var ErrPageOutOfRange = errors.New("storage: page out of range")

// Store is the raw page backend beneath a BufferPool.
type Store interface {
	// NumPages returns the number of allocated pages.
	NumPages() int64
	// Allocate appends a zeroed page and returns its ID.
	Allocate() (PageID, error)
	// ReadPage fills buf (len PageSize) with the page contents.
	ReadPage(id PageID, buf []byte) error
	// WritePage persists buf (len PageSize) as the page contents.
	WritePage(id PageID, buf []byte) error
	// Close releases backend resources.
	Close() error
}

// MemStore is an in-memory Store. It is safe for concurrent use.
type MemStore struct {
	mu    sync.RWMutex
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// NumPages implements Store.
func (m *MemStore) NumPages() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.pages))
}

// Allocate implements Store.
func (m *MemStore) Allocate() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// ReadPage implements Store.
func (m *MemStore) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if id < 0 || int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Store.
func (m *MemStore) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id < 0 || int(id) >= len(m.pages) {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

// FileStore is a Store backed by a single file of consecutive pages.
type FileStore struct {
	mu   sync.Mutex
	f    *os.File
	n    int64 // allocated pages
	path string
}

// OpenFileStore creates or opens the page file at path. An existing file
// must be a whole number of pages.
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the %d-byte page size", path, st.Size(), PageSize)
	}
	return &FileStore{f: f, n: st.Size() / PageSize, path: path}, nil
}

// NumPages implements Store.
func (s *FileStore) NumPages() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Allocate implements Store.
func (s *FileStore) Allocate() (PageID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero [PageSize]byte
	if _, err := s.f.WriteAt(zero[:], s.n*PageSize); err != nil {
		return 0, fmt.Errorf("storage: allocate page %d: %w", s.n, err)
	}
	id := PageID(s.n)
	s.n++
	return id, nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(id PageID, buf []byte) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	if id < 0 || int64(id) >= n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, n)
	}
	if _, err := s.f.ReadAt(buf[:PageSize], int64(id)*PageSize); err != nil && err != io.EOF {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	return nil
}

// WritePage implements Store.
func (s *FileStore) WritePage(id PageID, buf []byte) error {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	if id < 0 || int64(id) >= n {
		return fmt.Errorf("%w: %d of %d", ErrPageOutOfRange, id, n)
	}
	if _, err := s.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

// Sync fsyncs the backing file: pages written (flushed) before the call
// are durable when it returns. Part of the optional Syncer contract the
// persistence layer probes for.
func (s *FileStore) Sync() error {
	CrashPoint("pages.sync")
	return s.f.Sync()
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

// Syncer is the optional Store extension for backends with a durability
// boundary (FileStore). Memory-backed stores simply don't implement it.
type Syncer interface {
	Sync() error
}
