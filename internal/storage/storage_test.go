package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func fillPage(b byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	if s.NumPages() != 0 {
		t.Fatal("fresh store should have no pages")
	}
	id, err := s.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(id, fillPage(7)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := s.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fillPage(7)) {
		t.Fatal("page contents corrupted")
	}
}

func TestMemStoreOutOfRange(t *testing.T) {
	s := NewMemStore()
	buf := make([]byte, PageSize)
	if err := s.ReadPage(0, buf); err == nil {
		t.Fatal("read of unallocated page should fail")
	}
	if err := s.WritePage(5, buf); err == nil {
		t.Fatal("write of unallocated page should fail")
	}
	if err := s.ReadPage(-1, buf); err == nil {
		t.Fatal("negative page should fail")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var ids []PageID
	for i := 0; i < 10; i++ {
		id, err := s.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := s.WritePage(id, fillPage(byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		buf := make([]byte, PageSize)
		if err := s.ReadPage(id, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) || buf[PageSize-1] != byte(i) {
			t.Fatalf("page %d corrupted", id)
		}
	}
}

func TestFileStoreReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := s.Allocate()
	if err := s.WritePage(id, fillPage(42)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.NumPages() != 1 {
		t.Fatalf("reopened store has %d pages, want 1", s2.NumPages())
	}
	buf := make([]byte, PageSize)
	if err := s2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[100] != 42 {
		t.Fatal("page lost across reopen")
	}
}

func TestBufferPoolHitMiss(t *testing.T) {
	s := NewMemStore()
	bp, err := NewBufferPool(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := bp.Allocate()
	if _, err := bp.GetPage(id); err != nil {
		t.Fatal(err)
	}
	if _, err := bp.GetPage(id); err != nil {
		t.Fatal(err)
	}
	st := bp.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Reads != 1 {
		t.Fatalf("stats = %v, want 1 miss, 1 hit, 1 read", st)
	}
}

func TestBufferPoolEvictionLRU(t *testing.T) {
	s := NewMemStore()
	bp, _ := NewBufferPool(s, 2)
	var ids []PageID
	for i := 0; i < 3; i++ {
		id, _ := bp.Allocate()
		ids = append(ids, id)
	}
	_, _ = bp.GetPage(ids[0])
	_, _ = bp.GetPage(ids[1])
	_, _ = bp.GetPage(ids[0]) // refresh 0; 1 is now LRU
	_, _ = bp.GetPage(ids[2]) // evicts 1
	bp.ResetStats()
	_, _ = bp.GetPage(ids[0]) // should still be cached
	_, _ = bp.GetPage(ids[2]) // should still be cached
	if st := bp.Stats(); st.Misses != 0 {
		t.Fatalf("expected pages 0 and 2 cached, stats %v", st)
	}
	_, _ = bp.GetPage(ids[1]) // evicted earlier -> miss
	if st := bp.Stats(); st.Misses != 1 {
		t.Fatalf("expected page 1 to be a miss, stats %v", st)
	}
}

func TestBufferPoolWriteBack(t *testing.T) {
	s := NewMemStore()
	bp, _ := NewBufferPool(s, 1)
	a, _ := bp.Allocate()
	b, _ := bp.Allocate()
	if err := bp.WritePage(a, fillPage(9)); err != nil {
		t.Fatal(err)
	}
	// Touching b evicts the dirty a, forcing a physical write.
	if _, err := bp.GetPage(b); err != nil {
		t.Fatal(err)
	}
	if st := bp.Stats(); st.Writes != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %v, want 1 write, 1 eviction", st)
	}
	raw := make([]byte, PageSize)
	if err := s.ReadPage(a, raw); err != nil {
		t.Fatal(err)
	}
	if raw[0] != 9 {
		t.Fatal("dirty page was not written back on eviction")
	}
}

func TestBufferPoolFlush(t *testing.T) {
	s := NewMemStore()
	bp, _ := NewBufferPool(s, 8)
	id, _ := bp.Allocate()
	if err := bp.WritePage(id, fillPage(3)); err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, PageSize)
	_ = s.ReadPage(id, raw)
	if raw[0] == 3 {
		t.Fatal("write-back pool should not have written yet")
	}
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = s.ReadPage(id, raw)
	if raw[0] != 3 {
		t.Fatal("flush should persist dirty pages")
	}
	// Second flush writes nothing new.
	before := bp.Stats().Writes
	if err := bp.Flush(); err != nil {
		t.Fatal(err)
	}
	if bp.Stats().Writes != before {
		t.Fatal("second flush should be a no-op")
	}
}

func TestBufferPoolInvalidate(t *testing.T) {
	s := NewMemStore()
	bp, _ := NewBufferPool(s, 8)
	id, _ := bp.Allocate()
	if err := bp.WritePage(id, fillPage(5)); err != nil {
		t.Fatal(err)
	}
	if err := bp.Invalidate(); err != nil {
		t.Fatal(err)
	}
	if bp.Len() != 0 {
		t.Fatal("invalidate should empty the cache")
	}
	page, err := bp.GetPage(id)
	if err != nil {
		t.Fatal(err)
	}
	if page[0] != 5 {
		t.Fatal("invalidate lost dirty data")
	}
}

func TestBufferPoolRejectsBadCapacity(t *testing.T) {
	if _, err := NewBufferPool(NewMemStore(), 0); err == nil {
		t.Fatal("capacity 0 should error")
	}
}

func TestBufferPoolGetReturnsCopy(t *testing.T) {
	s := NewMemStore()
	bp, _ := NewBufferPool(s, 4)
	id, _ := bp.Allocate()
	page, _ := bp.GetPage(id)
	page[0] = 0xFF // mutate the returned slice
	again, _ := bp.GetPage(id)
	if again[0] == 0xFF {
		t.Fatal("GetPage must return a copy, not the cached frame")
	}
}

func TestBlobFileRoundTrip(t *testing.T) {
	bp, _ := NewBufferPool(NewMemStore(), 16)
	f := NewBlobFile(bp)
	var handles []BlobHandle
	var blobs [][]byte
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		n := rng.Intn(3 * PageSize)
		blob := make([]byte, n)
		rng.Read(blob)
		h, err := f.Append(blob)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		blobs = append(blobs, blob)
	}
	for i, h := range handles {
		got, err := f.Read(h)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, blobs[i]) {
			t.Fatalf("blob %d corrupted (len %d vs %d)", i, len(got), len(blobs[i]))
		}
	}
}

func TestBlobFileEmptyBlob(t *testing.T) {
	bp, _ := NewBufferPool(NewMemStore(), 4)
	f := NewBlobFile(bp)
	h, err := f.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty blob should read back empty")
	}
}

func TestBlobHandleZeroMeansAbsent(t *testing.T) {
	var h BlobHandle
	if !h.IsZero() {
		t.Fatal("zero handle should be IsZero")
	}
	bp, _ := NewBufferPool(NewMemStore(), 4)
	f := NewBlobFile(bp)
	h2, _ := f.Append([]byte("x"))
	if h2.IsZero() {
		t.Fatal("real handle should not be IsZero (offset 0 is reserved)")
	}
}

func TestBlobFileSpansPages(t *testing.T) {
	bp, _ := NewBufferPool(NewMemStore(), 16)
	f := NewBlobFile(bp)
	big := make([]byte, PageSize*2+123)
	for i := range big {
		big[i] = byte(i % 251)
	}
	h, err := f.Append(big)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(h)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("multi-page blob corrupted")
	}
	if bp.NumPages() < 2 {
		t.Fatalf("expected multiple pages, got %d", bp.NumPages())
	}
}

func TestBlobFileReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blobs.db")
	s, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	bp, _ := NewBufferPool(s, 8)
	f := NewBlobFile(bp)
	h1, _ := f.Append([]byte("hello"))
	h2, _ := f.Append([]byte("world"))
	tail := f.Tail()
	if err := bp.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	bp2, _ := NewBufferPool(s2, 8)
	defer bp2.Close()
	f2 := ReopenBlobFile(bp2, tail)
	for _, tc := range []struct {
		h    BlobHandle
		want string
	}{{h1, "hello"}, {h2, "world"}} {
		got, err := f2.Read(tc.h)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != tc.want {
			t.Fatalf("reopened blob = %q, want %q", got, tc.want)
		}
	}
	h3, _ := f2.Append([]byte("again"))
	got, _ := f2.Read(h3)
	if string(got) != "again" {
		t.Fatal("append after reopen broken")
	}
	// The new blob must not overlap the old ones.
	if h3.Offset < h2.Offset+int64(h2.Length) {
		t.Fatal("reopened file overwrote existing blobs")
	}
}

func TestBlobFileQuickRoundTrip(t *testing.T) {
	bp, _ := NewBufferPool(NewMemStore(), 4) // tiny pool forces evictions
	f := NewBlobFile(bp)
	fn := func(data []byte) bool {
		h, err := f.Append(data)
		if err != nil {
			return false
		}
		got, err := f.Read(h)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIOStatsSub(t *testing.T) {
	a := IOStats{Reads: 10, Writes: 5, Hits: 20, Misses: 10, Evictions: 2}
	b := IOStats{Reads: 4, Writes: 1, Hits: 8, Misses: 4, Evictions: 1}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 4 || d.Hits != 12 || d.Misses != 6 || d.Evictions != 1 {
		t.Fatalf("Sub = %v", d)
	}
	if d.String() == "" {
		t.Fatal("String should format")
	}
}
