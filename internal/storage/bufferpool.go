package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// IOStats counts page-level activity through a BufferPool. Reads are the
// physical reads the paper's evaluation charges queries for; Hits are
// requests served from memory.
type IOStats struct {
	Reads     int64 // physical page reads from the backend
	Writes    int64 // physical page writes to the backend
	Hits      int64 // GetPage served from the pool
	Misses    int64 // GetPage that had to read from the backend
	Evictions int64 // pages dropped (after flush when dirty)
}

// Sub returns the delta s - o, used to attribute I/O to one query.
func (s IOStats) Sub(o IOStats) IOStats {
	return IOStats{
		Reads:     s.Reads - o.Reads,
		Writes:    s.Writes - o.Writes,
		Hits:      s.Hits - o.Hits,
		Misses:    s.Misses - o.Misses,
		Evictions: s.Evictions - o.Evictions,
	}
}

// String implements fmt.Stringer.
func (s IOStats) String() string {
	return fmt.Sprintf("reads=%d writes=%d hits=%d misses=%d evictions=%d",
		s.Reads, s.Writes, s.Hits, s.Misses, s.Evictions)
}

type frame struct {
	id    PageID
	data  []byte
	dirty bool
}

// BufferPool is an LRU page cache over a Store. It is safe for concurrent
// use. Capacity is in pages.
type BufferPool struct {
	mu       sync.Mutex
	store    Store
	capacity int
	lru      *list.List               // of *frame, front = most recent
	frames   map[PageID]*list.Element // page -> lru element
	stats    IOStats
}

// NewBufferPool wraps store with an LRU pool of the given page capacity.
func NewBufferPool(store Store, capacity int) (*BufferPool, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("storage: buffer pool capacity must be >= 1, got %d", capacity)
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		lru:      list.New(),
		frames:   map[PageID]*list.Element{},
	}, nil
}

// Allocate creates a new zeroed page in the backend.
func (bp *BufferPool) Allocate() (PageID, error) { return bp.store.Allocate() }

// NumPages reports the backend's allocated page count.
func (bp *BufferPool) NumPages() int64 { return bp.store.NumPages() }

// Stats returns a snapshot of the pool's I/O counters.
func (bp *BufferPool) Stats() IOStats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the I/O counters (pool contents are untouched).
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = IOStats{}
}

// GetPage returns the contents of the page, reading through the cache.
// The returned slice is a copy; mutate it via WritePage.
func (bp *BufferPool) GetPage(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	data, err := bp.frameData(id)
	if err != nil {
		return nil, err
	}
	out := make([]byte, PageSize)
	copy(out, data)
	return out, nil
}

// ViewPage returns the pooled frame's bytes without copying, reading
// through the cache on a miss. The view is read-only and aliases pool
// memory: callers must not modify it, and must not use it after a
// subsequent WritePage to the same page (the frame mutates in place).
// Intended for read-mostly stores — e.g. the append-only time-list blob
// file, whose pages never change once written — where GetPage's
// page-sized allocation and copy per access would dominate cold reads.
func (bp *BufferPool) ViewPage(id PageID) ([]byte, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.frameData(id)
}

// frameData returns the resident frame's bytes, reading through the
// cache on a miss. Caller holds bp.mu; the slice aliases the frame.
func (bp *BufferPool) frameData(id PageID) ([]byte, error) {
	if el, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		bp.lru.MoveToFront(el)
		return el.Value.(*frame).data, nil
	}
	bp.stats.Misses++
	bp.stats.Reads++
	data := make([]byte, PageSize)
	if err := bp.store.ReadPage(id, data); err != nil {
		return nil, err
	}
	if err := bp.admit(&frame{id: id, data: data}); err != nil {
		return nil, err
	}
	return data, nil
}

// WritePage stores new contents for the page through the cache
// (write-back: the backend is updated on eviction or Flush).
func (bp *BufferPool) WritePage(id PageID, data []byte) error {
	if len(data) != PageSize {
		return fmt.Errorf("storage: WritePage needs exactly %d bytes, got %d", PageSize, len(data))
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if el, ok := bp.frames[id]; ok {
		fr := el.Value.(*frame)
		copy(fr.data, data)
		fr.dirty = true
		bp.lru.MoveToFront(el)
		return nil
	}
	buf := make([]byte, PageSize)
	copy(buf, data)
	return bp.admit(&frame{id: id, data: buf, dirty: true})
}

// admit inserts fr, evicting the LRU frame when over capacity.
// Caller holds bp.mu.
func (bp *BufferPool) admit(fr *frame) error {
	bp.frames[fr.id] = bp.lru.PushFront(fr)
	for bp.lru.Len() > bp.capacity {
		tail := bp.lru.Back()
		victim := tail.Value.(*frame)
		if victim.dirty {
			bp.stats.Writes++
			if err := bp.store.WritePage(victim.id, victim.data); err != nil {
				return fmt.Errorf("storage: evict page %d: %w", victim.id, err)
			}
		}
		bp.stats.Evictions++
		bp.lru.Remove(tail)
		delete(bp.frames, victim.id)
	}
	return nil
}

// Flush writes every dirty page back to the backend, keeping the cache.
func (bp *BufferPool) Flush() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for el := bp.lru.Front(); el != nil; el = el.Next() {
		fr := el.Value.(*frame)
		if !fr.dirty {
			continue
		}
		bp.stats.Writes++
		if err := bp.store.WritePage(fr.id, fr.data); err != nil {
			return fmt.Errorf("storage: flush page %d: %w", fr.id, err)
		}
		fr.dirty = false
	}
	return nil
}

// Sync flushes every dirty page and then fsyncs the backing store (when
// it has a durability boundary): the persistence point a durable
// compaction needs before installing a meta that references the pages.
func (bp *BufferPool) Sync() error {
	if err := bp.Flush(); err != nil {
		return err
	}
	if s, ok := bp.store.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Invalidate drops every cached page (flushing dirty ones first). Used by
// experiments to measure cold-cache behaviour.
func (bp *BufferPool) Invalidate() error {
	if err := bp.Flush(); err != nil {
		return err
	}
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.lru.Init()
	bp.frames = map[PageID]*list.Element{}
	return nil
}

// Len returns the number of cached pages.
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.lru.Len()
}

// Capacity returns the pool capacity in pages.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Close flushes and closes the backend store.
func (bp *BufferPool) Close() error {
	if err := bp.Flush(); err != nil {
		return err
	}
	return bp.store.Close()
}
