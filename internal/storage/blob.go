package storage

import (
	"fmt"
)

// BlobHandle locates a variable-length record inside the page space of a
// store: a byte offset from page 0 and a length. Blobs may span pages.
type BlobHandle struct {
	Offset int64
	Length int32
}

// IsZero reports whether the handle is the zero value (no blob).
func (h BlobHandle) IsZero() bool { return h.Offset == 0 && h.Length == 0 }

// BlobFile lays variable-length records sequentially across the pages of a
// buffer pool. Writers append; readers fetch by handle. This is how the
// ST-Index persists its per-(segment, slot) time lists: each list is one
// blob, and reading it costs ceil(len/PageSize) buffered page reads — the
// unit of I/O the evaluation counts.
type BlobFile struct {
	pool *BufferPool
	// tail is the next free byte offset.
	tail int64
}

// NewBlobFile wraps the pool. Offset 0 is reserved so that the zero
// BlobHandle can mean "absent"; a fresh file starts writing at byte 1.
func NewBlobFile(pool *BufferPool) *BlobFile {
	return &BlobFile{pool: pool, tail: 1}
}

// ReopenBlobFile wraps a pool whose pages already hold blobs, resuming
// appends at the given tail offset (as returned by Tail).
func ReopenBlobFile(pool *BufferPool, tail int64) *BlobFile {
	if tail < 1 {
		tail = 1
	}
	return &BlobFile{pool: pool, tail: tail}
}

// Tail returns the next free byte offset; persist it alongside the data to
// reopen the file later.
func (f *BlobFile) Tail() int64 { return f.tail }

// Pool exposes the underlying buffer pool (for stats).
func (f *BlobFile) Pool() *BufferPool { return f.pool }

// Append writes data as a new blob and returns its handle.
func (f *BlobFile) Append(data []byte) (BlobHandle, error) {
	h := BlobHandle{Offset: f.tail, Length: int32(len(data))}
	if len(data) == 0 {
		return h, nil
	}
	if err := f.writeAt(f.tail, data); err != nil {
		return BlobHandle{}, err
	}
	f.tail += int64(len(data))
	return h, nil
}

// Read returns the blob's contents.
func (f *BlobFile) Read(h BlobHandle) ([]byte, error) {
	return readBlob(h, f.pool.GetPage)
}

// readBlob gathers a blob's bytes through any page source: the buffer
// pool directly, or a BlobReader's per-batch page memo.
func readBlob(h BlobHandle, getPage func(PageID) ([]byte, error)) ([]byte, error) {
	if h.Length < 0 {
		return nil, fmt.Errorf("storage: negative blob length %d", h.Length)
	}
	if h.Length == 0 {
		return nil, nil
	}
	out := make([]byte, h.Length)
	off := h.Offset
	buf := out
	for len(buf) > 0 {
		pid := PageID(off / PageSize)
		inPage := int(off % PageSize)
		n := PageSize - inPage
		if n > len(buf) {
			n = len(buf)
		}
		page, err := getPage(pid)
		if err != nil {
			return nil, err
		}
		copy(buf[:n], page[inPage:inPage+n])
		off += int64(n)
		buf = buf[n:]
	}
	return out, nil
}

func (f *BlobFile) writeAt(off int64, data []byte) error {
	for len(data) > 0 {
		pid := PageID(off / PageSize)
		inPage := int(off % PageSize)
		n := PageSize - inPage
		if n > len(data) {
			n = len(data)
		}
		for pid >= PageID(f.pool.NumPages()) {
			if _, err := f.pool.Allocate(); err != nil {
				return err
			}
		}
		page, err := f.pool.GetPage(pid)
		if err != nil {
			return err
		}
		copy(page[inPage:inPage+n], data[:n])
		if err := f.pool.WritePage(pid, page); err != nil {
			return err
		}
		off += int64(n)
		data = data[n:]
	}
	return nil
}

// BlobReader reads blobs through a per-batch page memo: each page touched
// by the batch is fetched from the buffer pool exactly once, no matter how
// many blobs share it. Small neighbouring blobs (the common case for
// per-(segment, slot) time lists, which pack many lists per page) then
// cost one pool access per page instead of one per list. A BlobReader is
// cheap to create, not safe for concurrent use, and must not outlive
// writes to the underlying file.
type BlobReader struct {
	f     *BlobFile
	pages map[PageID][]byte
}

// NewReader returns a batch reader over the file.
func (f *BlobFile) NewReader() *BlobReader {
	return &BlobReader{f: f, pages: make(map[PageID][]byte, 8)}
}

// Read returns the blob's contents, memoizing every page it touches.
// The returned slice may alias pooled page memory: treat it as read-only
// and decode it before the underlying file is written again (the blob
// file is append-only, so existing blobs never change — the only hazard
// is page eviction racing a concurrent writer, which the time-list read
// path never has).
func (r *BlobReader) Read(h BlobHandle) ([]byte, error) {
	if h.Length <= 0 || h.Offset < 0 {
		return readBlob(h, r.getPage)
	}
	pid := PageID(h.Offset / PageSize)
	inPage := int(h.Offset % PageSize)
	if inPage+int(h.Length) <= PageSize {
		// Single-page blob (the common case: many small time lists per
		// page): zero-copy view into the memoized page.
		page, err := r.getPage(pid)
		if err != nil {
			return nil, err
		}
		return page[inPage : inPage+int(h.Length) : inPage+int(h.Length)], nil
	}
	return readBlob(h, r.getPage)
}

func (r *BlobReader) getPage(pid PageID) ([]byte, error) {
	if page, ok := r.pages[pid]; ok {
		return page, nil
	}
	page, err := r.f.pool.ViewPage(pid)
	if err != nil {
		return nil, err
	}
	r.pages[pid] = page
	return page, nil
}
