package storage

import (
	"math/rand"
	"testing"
)

func BenchmarkBufferPoolHit(b *testing.B) {
	bp, _ := NewBufferPool(NewMemStore(), 64)
	var ids []PageID
	for i := 0; i < 32; i++ {
		id, _ := bp.Allocate()
		ids = append(ids, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.GetPage(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBufferPoolMissEvict(b *testing.B) {
	bp, _ := NewBufferPool(NewMemStore(), 16)
	var ids []PageID
	for i := 0; i < 256; i++ { // 16x the pool: every access misses
		id, _ := bp.Allocate()
		ids = append(ids, id)
	}
	rng := rand.New(rand.NewSource(41))
	order := rng.Perm(len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bp.GetPage(ids[order[i%len(order)]]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlobAppendRead(b *testing.B) {
	bp, _ := NewBufferPool(NewMemStore(), 256)
	f := NewBlobFile(bp)
	blob := make([]byte, 600) // a typical time list
	rand.New(rand.NewSource(42)).Read(blob)
	var handles []BlobHandle
	for i := 0; i < 1024; i++ {
		h, err := f.Append(blob)
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Read(handles[i%len(handles)]); err != nil {
			b.Fatal(err)
		}
	}
}
