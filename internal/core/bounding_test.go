package core

import (
	"testing"
	"time"

	"streach/internal/roadnet"
)

// referenceRegion is the pre-bitset slice-based bounding region search
// (the exact code the vectorized boundingRegion replaced). It pins the
// word-level implementation to the original element-wise semantics:
// identical members AND identical round tags.
func referenceRegion(e *Engine, starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) (round map[roadnet.SegmentID]int16, order []roadnet.SegmentID) {
	round = map[roadnet.SegmentID]int16{}
	add := func(s roadnet.SegmentID, r int) {
		if _, ok := round[s]; ok {
			return
		}
		round[s] = int16(r)
		order = append(order, s)
	}
	for _, r := range starts {
		add(r, 0)
	}
	slot0 := int(startOfDay.Seconds())
	slotSec := e.st.SlotSeconds()
	k := e.rounds(dur)
	for i := 0; i < k; i++ {
		if len(order) == e.net.NumSegments() {
			break
		}
		slot := (slot0 + i*slotSec) / slotSec
		snapshot := len(order)
		for j := 0; j < snapshot; j++ {
			var list []roadnet.SegmentID
			if far {
				list = e.con.Far(order[j], slot)
			} else {
				list = e.con.Near(order[j], slot)
			}
			for _, s := range list {
				add(s, i+1)
			}
		}
	}
	return round, order
}

func checkRegionAgainstReference(t *testing.T, name string, reg *region, wantRound map[roadnet.SegmentID]int16) {
	t.Helper()
	if reg.size() != len(wantRound) {
		t.Fatalf("%s: bitset region has %d members, reference %d", name, reg.size(), len(wantRound))
	}
	for s, r := range wantRound {
		if !reg.has(s) {
			t.Fatalf("%s: reference member %d missing from bitset region", name, s)
		}
		if reg.round[s] != r {
			t.Fatalf("%s: member %d tagged round %d, reference %d", name, s, reg.round[s], r)
		}
		if !reg.bits.Has(int(s)) {
			t.Fatalf("%s: member %d missing from region bitset", name, s)
		}
	}
	if got := reg.bits.Count(); got != len(wantRound) {
		t.Fatalf("%s: region bitset has %d bits, want %d", name, got, len(wantRound))
	}
}

// TestBoundingRegionMatchesSliceReference asserts the word-OR bounding
// phase reproduces the element-wise expansion exactly — members and
// round tags — for SQMB and the reverse pipeline, across durations that
// exercise one and several rounds.
func TestBoundingRegionMatchesSliceReference(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	r0, ok := e.st.SnapLocation(f.center)
	if !ok {
		t.Fatal("snap failed")
	}
	for _, dur := range []time.Duration{4 * time.Minute, 10 * time.Minute, 25 * time.Minute} {
		for _, far := range []bool{true, false} {
			starts := []roadnet.SegmentID{r0}
			reg, err := e.boundingRegion(bg, starts, 11*time.Hour, dur, far)
			if err != nil {
				t.Fatal(err)
			}
			want, _ := referenceRegion(e, starts, 11*time.Hour, dur, far)
			checkRegionAgainstReference(t, "forward", reg, want)
		}
	}
	// Reverse tables: the same growth loop over mirrored rows.
	rev, err := e.reverseBoundingRegionPin(bg, e.con.NewPin(), r0, 11*time.Hour, 10*time.Minute, true)
	if err != nil {
		t.Fatal(err)
	}
	wantRev := map[roadnet.SegmentID]int16{}
	orderRev := []roadnet.SegmentID{r0}
	wantRev[r0] = 0
	slotSec := e.st.SlotSeconds()
	for i := 0; i < e.rounds(10*time.Minute); i++ {
		slot := (int((11 * time.Hour).Seconds()) + i*slotSec) / slotSec
		snapshot := len(orderRev)
		for j := 0; j < snapshot; j++ {
			for _, s := range e.con.FarReverse(orderRev[j], slot) {
				if _, ok := wantRev[s]; !ok {
					wantRev[s] = int16(i + 1)
					orderRev = append(orderRev, s)
				}
			}
		}
	}
	checkRegionAgainstReference(t, "reverse", rev, wantRev)
}

// TestUnifiedRegionMatchesSliceReference pins the vectorized MQMB
// Algorithm 3 (candidate set = row union diff, overlap rule via row
// membership) to the original producers-map implementation.
func TestUnifiedRegionMatchesSliceReference(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	starts := multiStarts(t, e, f, 3)

	for _, far := range []bool{true, false} {
		reg, err := e.unifiedRegionPin(bg, e.con.NewPin(), starts, 11*time.Hour, 10*time.Minute, far)
		if err != nil {
			t.Fatal(err)
		}
		want := referenceUnified(e, starts, 11*time.Hour, 10*time.Minute, far)
		checkRegionAgainstReference(t, "unified", reg, want)
	}
}

// referenceUnified is the original element-wise Algorithm 3.
func referenceUnified(e *Engine, starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) map[roadnet.SegmentID]int16 {
	round := map[roadnet.SegmentID]int16{}
	var order []roadnet.SegmentID
	add := func(s roadnet.SegmentID, r int) {
		if _, ok := round[s]; ok {
			return
		}
		round[s] = int16(r)
		order = append(order, s)
	}
	for _, r := range starts {
		add(r, 0)
	}
	k := e.rounds(dur)
	slotSec := e.st.SlotSeconds()
	listOf := func(r roadnet.SegmentID, slot int) []roadnet.SegmentID {
		if far {
			return e.con.Far(r, slot)
		}
		return e.con.Near(r, slot)
	}
	for i := 0; i < k; i++ {
		if len(order) == e.net.NumSegments() {
			break
		}
		slot := (int(startOfDay.Seconds()) + i*slotSec) / slotSec
		snapshot := append([]roadnet.SegmentID(nil), order...)
		producers := map[roadnet.SegmentID][]roadnet.SegmentID{}
		for _, r := range snapshot {
			for _, b := range listOf(r, slot) {
				if _, in := round[b]; in {
					continue
				}
				producers[b] = append(producers[b], r)
			}
		}
		if len(producers) == 0 {
			continue
		}
		cands := make([]roadnet.SegmentID, 0, len(producers))
		for b := range producers {
			cands = append(cands, b)
		}
		nearest := e.nearestAttribution(snapshot, cands)
		for b, prods := range producers {
			rs, ok := nearest[b]
			if !ok {
				continue
			}
			for _, p := range prods {
				if p == rs {
					add(b, i+1)
					break
				}
			}
		}
	}
	return round
}

// multiStarts snaps n busy, mutually distant locations.
func multiStarts(t *testing.T, e *Engine, f *fixture, n int) []roadnet.SegmentID {
	t.Helper()
	r0, ok := e.st.SnapLocation(f.center)
	if !ok {
		t.Fatal("snap failed")
	}
	starts := []roadnet.SegmentID{r0}
	for seg := 0; len(starts) < n && seg < e.net.NumSegments(); seg += e.net.NumSegments() / (n + 1) {
		id := roadnet.SegmentID(seg)
		dup := false
		for _, s := range starts {
			if s == id {
				dup = true
			}
		}
		if !dup {
			starts = append(starts, id)
		}
	}
	return starts
}

// TestPhaseMetrics asserts the per-phase split and adjacency counters
// are populated and consistent.
func TestPhaseMetrics(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	res, err := e.SQMB(bg, baseQuery(f))
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.BoundNS <= 0 || m.VerifyNS <= 0 {
		t.Fatalf("phase timings should be positive: bound=%d verify=%d", m.BoundNS, m.VerifyNS)
	}
	if m.BoundNS+m.VerifyNS > m.Elapsed.Nanoseconds() {
		t.Fatalf("phase split %d+%d exceeds elapsed %d", m.BoundNS, m.VerifyNS, m.Elapsed.Nanoseconds())
	}
	if m.ConHits+m.ConMaterialised == 0 {
		t.Fatal("bounding phase should touch the Con-Index adjacency")
	}
	// A repeat query hits only materialised rows.
	res2, err := e.SQMB(bg, baseQuery(f))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Metrics.ConMaterialised != 0 {
		t.Fatalf("warm repeat materialised %d rows, want 0", res2.Metrics.ConMaterialised)
	}
	if res2.Metrics.ConHits == 0 {
		t.Fatal("warm repeat should report adjacency hits")
	}
}
