package core

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"testing"
	"time"
)

// sharedProbs are the thresholds one plan answers in the equivalence
// tests: a shared plan must reproduce each of them bit-identically.
var sharedProbs = []float64{0.05, 0.2, 0.5, 0.9}

// sameResult asserts two Results agree on everything the caller can
// observe deterministically: segments, probabilities, starts, and the
// verification count.
func sameResult(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Segments, want.Segments) {
		t.Fatalf("%s: segments differ (%d vs %d)", name, len(got.Segments), len(want.Segments))
	}
	if !reflect.DeepEqual(got.Starts, want.Starts) {
		t.Fatalf("%s: starts differ", name)
	}
	if len(got.Probability) != len(want.Probability) {
		t.Fatalf("%s: probability map sizes differ (%d vs %d)",
			name, len(got.Probability), len(want.Probability))
	}
	for s, p := range want.Probability {
		if gp, ok := got.Probability[s]; !ok || gp != p {
			t.Fatalf("%s: probability of %d = %v, want %v", name, s, got.Probability[s], p)
		}
	}
	if got.Metrics.Evaluated != want.Metrics.Evaluated {
		t.Fatalf("%s: evaluated %d, want %d", name, got.Metrics.Evaluated, want.Metrics.Evaluated)
	}
}

// TestSharedPlanMatchesIndependent: one plan answering several
// probability thresholds must be bit-identical to a fresh independent
// execution per threshold, across every algorithm and trace-back policy.
func TestSharedPlanMatchesIndependent(t *testing.T) {
	f := getFixture(t)
	q := baseQuery(f)
	multi := MultiQuery{Start: q.Start, Duration: q.Duration}
	e0 := newEngine(t, Options{})
	starts := multiStarts(t, e0, f, 3)
	for _, s := range starts {
		multi.Locations = append(multi.Locations, e0.net.Segment(s).Midpoint())
	}

	type algo struct {
		name string
		opts Options
		plan func(e *Engine) (*SharedPlan, error)
		ref  func(e *Engine, prob float64) (*Result, error)
	}
	algos := []algo{
		{"sqmb", Options{},
			func(e *Engine) (*SharedPlan, error) { return e.PlanReach(bg, q) },
			func(e *Engine, prob float64) (*Result, error) {
				qq := q
				qq.Prob = prob
				return e.SQMB(bg, qq)
			}},
		{"sqmb-verifyall", Options{VerifyAll: true},
			func(e *Engine) (*SharedPlan, error) { return e.PlanReach(bg, q) },
			func(e *Engine, prob float64) (*Result, error) {
				qq := q
				qq.Prob = prob
				return e.SQMB(bg, qq)
			}},
		{"sqmb-earlystop", Options{EarlyStop: true},
			func(e *Engine) (*SharedPlan, error) { return e.PlanReach(bg, q) },
			func(e *Engine, prob float64) (*Result, error) {
				qq := q
				qq.Prob = prob
				return e.SQMB(bg, qq)
			}},
		{"reverse", Options{},
			func(e *Engine) (*SharedPlan, error) { return e.PlanReverse(bg, q) },
			func(e *Engine, prob float64) (*Result, error) {
				qq := q
				qq.Prob = prob
				return e.ReverseSQMB(bg, qq)
			}},
		{"es", Options{},
			func(e *Engine) (*SharedPlan, error) { return e.PlanReachES(bg, q) },
			func(e *Engine, prob float64) (*Result, error) {
				qq := q
				qq.Prob = prob
				return e.ES(bg, qq)
			}},
		{"reverse-es", Options{},
			func(e *Engine) (*SharedPlan, error) { return e.PlanReverseES(bg, q) },
			func(e *Engine, prob float64) (*Result, error) {
				qq := q
				qq.Prob = prob
				return e.ReverseES(bg, qq)
			}},
		{"mqmb", Options{},
			func(e *Engine) (*SharedPlan, error) { return e.PlanMulti(bg, multi) },
			func(e *Engine, prob float64) (*Result, error) {
				m := multi
				m.Prob = prob
				return e.MQMB(bg, m)
			}},
		{"sequential", Options{},
			func(e *Engine) (*SharedPlan, error) { return e.PlanMultiSequential(bg, multi) },
			func(e *Engine, prob float64) (*Result, error) {
				m := multi
				m.Prob = prob
				return e.SQuerySequential(bg, m)
			}},
	}

	for _, a := range algos {
		t.Run(a.name, func(t *testing.T) {
			e := newEngine(t, a.opts)
			plan, err := a.plan(e)
			if err != nil {
				t.Fatal(err)
			}
			defer plan.Close()
			for _, prob := range sharedProbs {
				shared, err := plan.ResultAt(bg, prob)
				if err != nil {
					t.Fatalf("ResultAt(%v): %v", prob, err)
				}
				independent, err := a.ref(e, prob)
				if err != nil {
					t.Fatalf("independent(%v): %v", prob, err)
				}
				sameResult(t, a.name, shared, independent)
			}
		})
	}
}

// TestSharedPlanThresholdMonotonic: sanity that the shared probability
// map actually discriminates thresholds — a stricter prob can only shrink
// the result.
func TestSharedPlanThresholdMonotonic(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	plan, err := e.PlanReach(bg, baseQuery(f))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	probs := append([]float64(nil), sharedProbs...)
	sort.Float64s(probs)
	prev := -1
	for i := len(probs) - 1; i >= 0; i-- {
		res, err := plan.ResultAt(bg, probs[i])
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && len(res.Segments) < prev {
			t.Fatalf("loosening prob to %v shrank the region: %d -> %d",
				probs[i], prev, len(res.Segments))
		}
		prev = len(res.Segments)
	}
}

// TestSharedPlanValidation: bad thresholds and closed plans are rejected
// with the same error surface as independent execution.
func TestSharedPlanValidation(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	plan, err := e.PlanReach(bg, baseQuery(f))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.ResultAt(bg, 0); err == nil {
		t.Fatal("ResultAt accepted prob=0")
	}
	if _, err := plan.ResultAt(bg, 1.5); err == nil {
		t.Fatal("ResultAt accepted prob=1.5")
	}
	plan.Close()
	if _, err := plan.ResultAt(bg, 0.2); err == nil {
		t.Fatal("ResultAt succeeded on a closed plan")
	}
	// Bad windows fail at plan time with validate's wording.
	if _, err := e.PlanReach(bg, Query{Location: f.center, Start: 11 * time.Hour, Duration: -time.Minute}); err == nil {
		t.Fatal("PlanReach accepted a negative duration")
	}
}

// TestSharedPlanCancellation: a cancelled context aborts plan
// construction and lazy ResultAt waves.
func TestSharedPlanCancellation(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	cancelled, cancel := context.WithCancel(bg)
	cancel()
	if _, err := e.PlanReach(cancelled, baseQuery(f)); !errors.Is(err, context.Canceled) {
		t.Fatalf("PlanReach under cancelled ctx = %v, want Canceled", err)
	}

	plan, err := e.PlanReach(bg, baseQuery(f))
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Close()
	if _, err := plan.ResultAt(cancelled, 0.2); !errors.Is(err, context.Canceled) {
		t.Fatalf("ResultAt under cancelled ctx = %v, want Canceled", err)
	}
}
