package core

import (
	"context"
	"sync"
	"testing"
	"time"

	"streach/internal/conindex"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
)

// bg is the background context used by tests that don't exercise
// cancellation.
var bg = context.Background()

// fixture is the shared test world: a mid-sized city with a dense-enough
// fleet that central segments see traffic in most 5-minute slots.
type fixture struct {
	net    *roadnet.Network
	ds     *traj.Dataset
	st     *stindex.Index
	con    *conindex.Index
	center geo.Point
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		raw, err := roadnet.Generate(roadnet.GenerateConfig{
			Origin:        geo.Point{Lat: 22.50, Lng: 114.00},
			Rows:          12,
			Cols:          12,
			SpacingMeters: 1000,
			LocalFraction: 0.4,
			Seed:          11,
		})
		if err != nil {
			fixErr = err
			return
		}
		net, err := roadnet.Resegment(raw, 500)
		if err != nil {
			fixErr = err
			return
		}
		ds, err := traj.Simulate(net, traj.SimConfig{
			Taxis: 180, Days: 8, Profile: traj.DefaultSpeedProfile(), Seed: 12,
			DaySpeedJitter: 0.12,
		})
		if err != nil {
			fixErr = err
			return
		}
		st, err := stindex.Build(net, ds, stindex.Config{SlotSeconds: 300, PoolPages: 512})
		if err != nil {
			fixErr = err
			return
		}
		con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: 300})
		if err != nil {
			fixErr = err
			return
		}
		fix = &fixture{
			net: net, ds: ds, st: st, con: con,
			center: busiestLocation(net, ds, 11*time.Hour),
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// busiestLocation returns the midpoint of the segment seen on the most
// distinct days during the 5-minute slot starting at tod — the kind of
// busy downtown location the paper's evaluation queries from.
func busiestLocation(net *roadnet.Network, ds *traj.Dataset, tod time.Duration) geo.Point {
	lo := tod
	hi := tod + 5*time.Minute
	days := map[roadnet.SegmentID]map[traj.Day]bool{}
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		for _, v := range mt.Visits {
			enter := time.Duration(v.EnterMs) * time.Millisecond
			if enter >= lo && enter < hi {
				if days[v.Segment] == nil {
					days[v.Segment] = map[traj.Day]bool{}
				}
				days[v.Segment][mt.Day] = true
			}
		}
	}
	best := roadnet.SegmentID(0)
	bestN := -1
	for seg, d := range days {
		if len(d) > bestN {
			best, bestN = seg, len(d)
		}
	}
	return net.Segment(best).Midpoint()
}

func newEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	f := getFixture(t)
	e, err := NewEngine(f.st, f.con, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func baseQuery(f *fixture) Query {
	return Query{
		Location: f.center,
		Start:    11 * time.Hour,
		Duration: 10 * time.Minute,
		Prob:     0.2,
	}
}

func toSet(ids []roadnet.SegmentID) map[roadnet.SegmentID]bool {
	m := make(map[roadnet.SegmentID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func jaccard(a, b map[roadnet.SegmentID]bool) float64 {
	inter := 0
	for s := range a {
		if b[s] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func TestNewEngineValidations(t *testing.T) {
	f := getFixture(t)
	if _, err := NewEngine(nil, f.con, Options{}); err == nil {
		t.Fatal("nil ST-Index should error")
	}
	if _, err := NewEngine(f.st, nil, Options{}); err == nil {
		t.Fatal("nil Con-Index should error")
	}
	// Granularity mismatch.
	con2, err := conindex.Build(f.net, f.ds, conindex.Config{SlotSeconds: 600})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(f.st, con2, Options{}); err == nil {
		t.Fatal("granularity mismatch should error")
	}
}

func TestQueryValidation(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	bad := []Query{
		{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0},
		{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 1.5},
		{Location: f.center, Start: 11 * time.Hour, Duration: 0, Prob: 0.2},
		{Location: f.center, Start: -time.Hour, Duration: 10 * time.Minute, Prob: 0.2},
		{Location: f.center, Start: 25 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2},
	}
	for i, q := range bad {
		if _, err := e.SQMB(bg, q); err == nil {
			t.Fatalf("query %d should fail validation", i)
		}
		if _, err := e.ES(bg, q); err == nil {
			t.Fatalf("ES query %d should fail validation", i)
		}
	}
	// Location far from any road.
	far := Query{Location: geo.Point{Lat: 0, Lng: 0}, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	if _, err := e.SQMB(bg, far); err != nil {
		// Snap still finds the nearest segment even from far away; both
		// behaviours (snap or error) are acceptable, but must not panic.
		t.Logf("far snap errored: %v", err)
	}
}

func TestSQMBReturnsNonEmptyRegion(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	res, err := e.SQMB(bg, baseQuery(f))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("central 11:00 query should find a reachable region")
	}
	if len(res.Starts) != 1 {
		t.Fatalf("Starts = %v", res.Starts)
	}
	if res.Metrics.MaxRegion == 0 || res.Metrics.MaxRegion < len(res.Segments) {
		t.Fatalf("max region %d should cover result %d", res.Metrics.MaxRegion, len(res.Segments))
	}
	if res.Metrics.RoadKm <= 0 {
		t.Fatal("result should have positive road length")
	}
	if res.Metrics.Elapsed <= 0 {
		t.Fatal("elapsed should be positive")
	}
}

func TestResultWithinMaxBoundingRegion(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	q := baseQuery(f)
	res, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	maxReg, err := e.MaxBoundingRegion(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	maxSet := toSet(maxReg)
	for _, s := range res.Segments {
		if !maxSet[s] {
			t.Fatalf("result segment %d outside the maximum bounding region", s)
		}
	}
}

func TestMinRegionSubsetOfMaxRegion(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	q := baseQuery(f)
	maxReg, err := e.MaxBoundingRegion(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	minReg, err := e.MinBoundingRegion(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	maxSet := toSet(maxReg)
	for _, s := range minReg {
		if !maxSet[s] {
			t.Fatalf("min-region segment %d not in max region", s)
		}
	}
	if len(minReg) >= len(maxReg) {
		t.Fatalf("min region (%d) should be smaller than max region (%d)", len(minReg), len(maxReg))
	}
}

func TestESAgreesWithVerifyAllTBS(t *testing.T) {
	f := getFixture(t)
	exact := newEngine(t, Options{VerifyAll: true})
	q := baseQuery(f)
	esRes, err := exact.ES(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	tbsRes, err := exact.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(esRes.Segments) == 0 {
		t.Fatal("ES found nothing; fixture too sparse for this test")
	}
	esSet := toSet(esRes.Segments)
	tbsSet := toSet(tbsRes.Segments)
	// ES verifies everything within the worst-case radius, so it finds
	// every qualifier the bounded verify-all TBS finds (TBS ⊆ ES, up to
	// the rare segment whose observed max speed beats the ES free-flow
	// bound).
	missing := 0
	for s := range tbsSet {
		if !esSet[s] {
			missing++
		}
	}
	if frac := float64(missing) / float64(len(tbsSet)); frac > 0.05 {
		t.Fatalf("%.0f%% of verify-all SQMB+TBS result missing from ES (missing %d of %d)",
			frac*100, missing, len(tbsSet))
	}
}

func TestPaperModeSupersetOfVerifyAll(t *testing.T) {
	f := getFixture(t)
	q := baseQuery(f)
	paper := newEngine(t, Options{})
	exact := newEngine(t, Options{VerifyAll: true})
	pres, err := paper.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := exact.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// In paper mode every region segment is either verified (qualifiers
	// included) or admitted unverified, so the exact qualifier set must
	// be contained in the paper-mode result; and the paper-mode result
	// must stay inside the maximum bounding region.
	paperSet := toSet(pres.Segments)
	for _, s := range eres.Segments {
		if !paperSet[s] {
			t.Fatalf("exact qualifier %d missing from paper-mode result", s)
		}
	}
	maxReg, err := paper.MaxBoundingRegion(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	maxSet := toSet(maxReg)
	for _, s := range pres.Segments {
		if !maxSet[s] {
			t.Fatalf("paper-mode segment %d outside the max bounding region", s)
		}
	}
}

func TestSQMBCheaperThanES(t *testing.T) {
	f := getFixture(t)
	q := baseQuery(f)
	e := newEngine(t, Options{})
	esRes, err := e.ES(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	sqRes, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if sqRes.Metrics.Evaluated >= esRes.Metrics.Evaluated {
		t.Fatalf("SQMB+TBS evaluated %d segments, ES %d: index should reduce verification",
			sqRes.Metrics.Evaluated, esRes.Metrics.Evaluated)
	}
}

func TestRegionMonotoneInDuration(t *testing.T) {
	f := getFixture(t)
	exact := newEngine(t, Options{VerifyAll: true})
	q := baseQuery(f)
	q.Duration = 5 * time.Minute
	small, err := exact.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	q.Duration = 15 * time.Minute
	large, err := exact.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	largeSet := toSet(large.Segments)
	missing := 0
	for _, s := range small.Segments {
		if !largeSet[s] {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d segments reachable in 5 min but not 15 min", missing)
	}
	if large.Metrics.RoadKm < small.Metrics.RoadKm {
		t.Fatal("road length should grow with duration")
	}
}

func TestRegionMonotoneInProb(t *testing.T) {
	f := getFixture(t)
	exact := newEngine(t, Options{VerifyAll: true})
	q := baseQuery(f)
	q.Prob = 0.2
	loose, err := exact.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	q.Prob = 0.8
	strict, err := exact.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	looseSet := toSet(loose.Segments)
	for _, s := range strict.Segments {
		if !looseSet[s] {
			t.Fatalf("segment %d reachable at 80%% but not 20%%", s)
		}
	}
	if strict.Metrics.RoadKm > loose.Metrics.RoadKm {
		t.Fatal("road length should shrink as Prob rises")
	}
}

func TestIOAccountedPerQuery(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	res, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// Time-list reads are served by the decoded cache first and the
	// buffer pool beneath it; a query must register on at least one tier.
	total := res.Metrics.IO.Hits + res.Metrics.IO.Misses +
		res.Metrics.TLCacheHits + res.Metrics.TLCacheMisses
	if total == 0 {
		t.Fatal("query should touch the time-list storage tiers")
	}
	if res.Metrics.Evaluated == 0 {
		t.Fatal("query should verify some segments")
	}
}

func TestMQMBMatchesSequentialUnion(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	locs := []geo.Point{
		f.center,
		geo.Offset(f.center, 1800, 0),
		geo.Offset(f.center, 0, 1800),
	}
	mq := MultiQuery{Locations: locs, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	mres, err := e.MQMB(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := e.SQuerySequential(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	if len(mres.Segments) == 0 || len(sres.Segments) == 0 {
		t.Fatal("m-query should find reachable regions")
	}
	j := jaccard(toSet(mres.Segments), toSet(sres.Segments))
	if j < 0.6 {
		t.Fatalf("MQMB vs sequential union Jaccard %.2f (m=%d s=%d)", j, len(mres.Segments), len(sres.Segments))
	}
}

func TestMQMBCheaperThanSequential(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	locs := []geo.Point{
		f.center,
		geo.Offset(f.center, 1200, 600),
		geo.Offset(f.center, -900, 900),
	}
	mq := MultiQuery{Locations: locs, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	mres, err := e.MQMB(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := e.SQuerySequential(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	if mres.Metrics.Evaluated >= sres.Metrics.Evaluated {
		t.Fatalf("MQMB evaluated %d vs sequential %d: overlap elimination should help with clustered locations",
			mres.Metrics.Evaluated, sres.Metrics.Evaluated)
	}
}

func TestMQMBSingleLocationMatchesSQMB(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	sres, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := e.MQMB(bg, MultiQuery{Locations: []geo.Point{q.Location}, Start: q.Start, Duration: q.Duration, Prob: q.Prob})
	if err != nil {
		t.Fatal(err)
	}
	// MQMB's overlap filter can trim a few frontier segments even with a
	// single location (the paper notes it is slightly different/slower),
	// so require close but not exact agreement.
	if j := jaccard(toSet(sres.Segments), toSet(mres.Segments)); j < 0.85 {
		t.Fatalf("single-location m-query should match s-query, Jaccard %.2f", j)
	}
}

func TestMQMBValidation(t *testing.T) {
	e := newEngine(t, Options{})
	if _, err := e.MQMB(bg, MultiQuery{Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}); err == nil {
		t.Fatal("m-query with no locations should error")
	}
	if _, err := e.SQuerySequential(bg, MultiQuery{Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}); err == nil {
		t.Fatal("sequential with no locations should error")
	}
}

func TestMQMBDeduplicatesStarts(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	mq := MultiQuery{
		Locations: []geo.Point{f.center, f.center, f.center},
		Start:     11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2,
	}
	res, err := e.MQMB(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Starts) != 1 {
		t.Fatalf("duplicate locations should collapse to one start, got %d", len(res.Starts))
	}
}

func TestNoOverlapFilterAblation(t *testing.T) {
	f := getFixture(t)
	on := newEngine(t, Options{})
	off := newEngine(t, Options{NoOverlapFilter: true})
	locs := []geo.Point{f.center, geo.Offset(f.center, 1000, 0)}
	mq := MultiQuery{Locations: locs, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2}
	a, err := on.MQMB(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.MQMB(bg, mq)
	if err != nil {
		t.Fatal(err)
	}
	// Without the filter the unified region can only be equal or larger.
	if b.Metrics.MaxRegion < a.Metrics.MaxRegion {
		t.Fatalf("unfiltered region (%d) smaller than filtered (%d)", b.Metrics.MaxRegion, a.Metrics.MaxRegion)
	}
}

func TestNoVisitedSetTerminates(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{EarlyStop: true, NoVisitedSet: true})
	q := baseQuery(f)
	done := make(chan error, 1)
	go func() {
		_, err := e.SQMB(bg, q)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("NoVisitedSet TBS did not terminate within budget")
	}
}

func TestResultContains(t *testing.T) {
	r := &Result{Segments: []roadnet.SegmentID{2, 5, 9}}
	for _, s := range []roadnet.SegmentID{2, 5, 9} {
		if !r.Contains(s) {
			t.Fatalf("Contains(%d) = false", s)
		}
	}
	for _, s := range []roadnet.SegmentID{0, 3, 10} {
		if r.Contains(s) {
			t.Fatalf("Contains(%d) = true", s)
		}
	}
}

// The probe's taxi intersection is now a bitset word-AND; see
// stindex.BitsIntersect and its tests in internal/stindex/bits_test.go.

func TestRushHourShrinksMaxRegion(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	qNight := baseQuery(f)
	qNight.Start = 3 * time.Hour
	qRush := baseQuery(f)
	qRush.Start = 18 * time.Hour
	night, err := e.MaxBoundingRegion(bg, qNight)
	if err != nil {
		t.Fatal(err)
	}
	rush, err := e.MaxBoundingRegion(bg, qRush)
	if err != nil {
		t.Fatal(err)
	}
	if len(rush) >= len(night) {
		t.Fatalf("rush-hour max region (%d) should be smaller than night (%d)", len(rush), len(night))
	}
}
