package core

import (
	"context"
	"sync/atomic"
	"time"

	"streach/internal/conindex"
	"streach/internal/roadnet"
	"streach/internal/stindex"
)

// Reverse reachability queries answer the mirror question: from which
// road segments can the query location be reached within [T, T+L] on at
// least Prob of the days? This is the natural direction for the
// location-based advertising scenario (thesis Fig 1.2): the coupon-drop
// area is where customers can reach the mall from, not where the mall's
// own traffic disperses to.
//
// A day d supports segment r when some trajectory appears at r during
// [T, T+Δt] and at the destination during [T, T+L] on day d — Eq 3.1
// with the roles of the endpoints swapped.

// reverseProbe verifies reverse reachability probabilities. The
// destination's per-day taxi bitsets over the whole window are OR-folded
// once; each candidate then costs a single start-slot time list read and
// a word-AND loop per shared day. After construction the probe is
// read-only, so prob is safe to call from any number of goroutines.
type reverseProbe struct {
	e *Engine
	// targets[d] is the bitset of taxis seen at the destination during
	// the window on day d (nil when the day has none).
	targets   [][]uint64
	startSlot int
	days      int
	evaluated atomic.Int64
}

func (e *Engine) newReverseProbe(ctx context.Context, dst roadnet.SegmentID, startSlot, loSlot, hiSlot int) (*reverseProbe, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	lists, err := e.st.TimeListsRange(dst, loSlot, hiSlot, nil)
	if err != nil {
		return nil, err
	}
	p := &reverseProbe{e: e, startSlot: startSlot, days: e.st.Days()}
	p.targets = make([][]uint64, p.days)
	for _, bits := range lists {
		for j, d := range bits.Days {
			if int(d) >= p.days {
				continue
			}
			p.targets[d] = stindex.OrBits(p.targets[d], bits.Bits[j])
		}
	}
	return p, nil
}

// prob returns the fraction of days on which some trajectory appears at
// seg in the start window and at the destination within the full window.
func (p *reverseProbe) prob(seg roadnet.SegmentID) (float64, error) {
	return p.probOn(p.e.st, seg)
}

// probOn is prob with the candidate's time list read from st — a shard's
// ST-Index slice during scatter verification; the destination's folded
// target bitsets are shared either way.
func (p *reverseProbe) probOn(st *stindex.Index, seg roadnet.SegmentID) (float64, error) {
	p.evaluated.Add(1)
	bits, err := st.TimeListBitsAt(seg, p.startSlot)
	if err != nil {
		return 0, err
	}
	matched := 0
	for i, d := range bits.Days {
		if int(d) >= p.days {
			continue
		}
		if stindex.BitsIntersect(p.targets[d], bits.Bits[i]) {
			matched++
		}
	}
	return float64(matched) / float64(p.days), nil
}

// ReverseES answers a reverse reachability query by exhaustive reverse
// network expansion out to the worst-case radius, verifying every
// candidate (see PlanReverseES).
func (e *Engine) ReverseES(ctx context.Context, q Query) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	p, err := e.PlanReverseES(ctx, q)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ResultAt(ctx, q.Prob)
}

// expandReverseDistance walks the reverse graph from dst in increasing
// cumulative length order up to budget metres.
func (e *Engine) expandReverseDistance(dst roadnet.SegmentID, budget float64, visit func(roadnet.SegmentID) bool) {
	type item struct {
		seg  roadnet.SegmentID
		cost float64
	}
	dist := map[roadnet.SegmentID]float64{dst: 0}
	queue := []item{{dst, 0}}
	for len(queue) > 0 {
		// Simple Dijkstra-by-scan: queue sizes here are modest and the
		// per-pop verification dominates anyway.
		best := 0
		for i := 1; i < len(queue); i++ {
			if queue[i].cost < queue[best].cost {
				best = i
			}
		}
		it := queue[best]
		queue[best] = queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if d, ok := dist[it.seg]; !ok || it.cost > d {
			continue
		}
		if !visit(it.seg) {
			return
		}
		pred := e.net.Incoming(it.seg)
		rev := e.net.Segment(it.seg).Reverse
		for _, prev := range pred {
			if prev == rev && len(pred) > 1 {
				continue
			}
			c := it.cost + e.net.Segment(prev).Length
			if c > budget {
				continue
			}
			if d, ok := dist[prev]; !ok || c < d {
				dist[prev] = c
				queue = append(queue, item{prev, c})
			}
		}
	}
}

// reverseBoundingRegionPin mirrors SQMB over the reverse connection
// tables, with the same word-level row unions as the forward bounding
// phase; adjacency rows resolve through the plan's RowSource (a
// conindex.Pin by default, a shard router on a cluster's planner). The
// returned region is pooled; callers release it with putRegion.
func (e *Engine) reverseBoundingRegionPin(ctx context.Context, rows RowSource, dst roadnet.SegmentID, startOfDay, dur time.Duration, far bool) (*region, error) {
	reg := e.getRegion()
	reg.add(dst, 0)
	err := e.growRegion(ctx, reg, startOfDay, dur, func(r roadnet.SegmentID, slot int) (conindex.Row, error) {
		if far {
			return rows.FarReverseRow(ctx, r, slot)
		}
		return rows.NearReverseRow(ctx, r, slot)
	})
	if err != nil {
		e.putRegion(reg)
		return nil, err
	}
	return reg, nil
}

// ReverseSQMB answers a reverse reachability query with the bounded
// pipeline: reverse maximum/minimum bounding regions from the reverse
// connection tables, then a trace back verification between them. Like
// SQMB it is a single-use shared plan (see SharedPlan).
func (e *Engine) ReverseSQMB(ctx context.Context, q Query) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	p, err := e.PlanReverse(ctx, q)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ResultAt(ctx, q.Prob)
}
