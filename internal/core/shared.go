package core

import (
	"context"
	"sort"
	"time"

	"streach/internal/conindex"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/xerr"
)

// SharedPlan is the probability-threshold-independent part of one query
// execution: the snapped start set, the bounding regions, the materialised
// probe start-sets, and the empirical reachability probability of every
// verification candidate. Everything a query computes except the final
// threshold comparison depends only on (start segments, start slot,
// window, algorithm) — the probability of a segment is a property of the
// historical data, not of the query's Prob — so a batch of queries that
// differ only in Prob can share one plan and resolve their thresholds
// from the shared per-candidate probability map.
//
// ResultAt(prob) assembles the same Result the corresponding single-query
// method would return: the single-query methods (SQMB, ReverseSQMB, MQMB,
// SQuerySequential, ES, ReverseES) are themselves implemented as
// plan-then-ResultAt, so shared and independent execution are bit-identical
// by construction rather than by parallel maintenance of two pipelines.
//
// A SharedPlan is owned by one goroutine: Close releases its pooled
// bounding regions, and neither ResultAt nor Close is safe to call
// concurrently. (The expensive phases inside plan construction still
// parallelise internally via the verification worker pool.)
type SharedPlan struct {
	e    *Engine
	kind planKind

	// Cost-attribution snapshots from plan-construction time. Every
	// ResultAt diffs against these, so under sharing each member query
	// reports the group's cumulative IO/cache activity — the same
	// "approximate under concurrency" semantics the counters already have.
	began time.Time
	io0   storage.IOStats
	tl0   stindex.CacheStats
	con0  conindex.Stats

	// rows resolves the bounding phase's Con-Index adjacency rows: a
	// batch-scoped pin by default, a shard-routing source on a cluster's
	// planner engine.
	rows   RowSource
	starts []roadnet.SegmentID

	// slotLo, slotHi is the query window's slot range, recorded at plan
	// time for the temporal sharding layer: a slot-sharded cluster
	// scatters only to the shard row whose slot range covers the window
	// and falls back to eager execution when no row holds it whole.
	slotLo, slotHi int

	maxReg, minReg *region
	// keep is Bmax ∩ Bmin: admitted without verification under the
	// default trace-back policy.
	keep []roadnet.SegmentID
	// order holds the verification candidates in trace-back order, and
	// probs their empirical probabilities (eager modes: default,
	// VerifyAll, exhaustive).
	order []roadnet.SegmentID
	probs []float64

	// EarlyStop support: which segments the wave probes depends on the
	// threshold, so verification is lazy — memoised per segment, which is
	// exact because probabilities are threshold-independent.
	lazy bool
	memo map[roadnet.SegmentID]float64
	wave *probeWorker

	pr  *probe
	rpr *reverseProbe

	boundNS, verifyNS int64
	maxSize, minSize  int
	evalFixed         int

	// children are the per-location plans of the sequential m-query
	// baseline.
	children []*SharedPlan

	// deferred marks a plan built with DeferVerification: candidates are
	// ordered but unverified until VerifyOn calls cover every position
	// and FinishVerification seals the plan. verified flips when sealing.
	deferred bool
	verified bool

	closed bool
}

// PlanOption tunes plan construction.
type PlanOption func(*planConfig)

type planConfig struct {
	deferVerify bool
}

// DeferVerification builds the plan without verifying its candidates:
// the bounding regions, probe start-sets, and candidate order are
// computed as usual, but the per-candidate probabilities stay zero until
// VerifyOn fills them in — the scatter step of sharded execution, where
// each shard verifies the candidates it owns on its own index slice.
// ResultAt refuses a deferred plan until FinishVerification seals it.
// Plans under the EarlyStop policy verify lazily per threshold and
// ignore this option.
func DeferVerification() PlanOption {
	return func(c *planConfig) { c.deferVerify = true }
}

func resolvePlanConfig(opts []PlanOption) planConfig {
	var c planConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// planKind selects the execution shape of a SharedPlan.
type planKind int

const (
	// planBounded is the two-phase pipeline: bounding regions + trace
	// back verification (SQMB, reverse SQMB, MQMB).
	planBounded planKind = iota
	// planExhaustive is the worst-case-radius expansion baseline (ES,
	// reverse ES); every expanded segment is pre-verified.
	planExhaustive
	// planSequential unions one child plan per location (the m-query
	// baseline of §4.3).
	planSequential
)

func (e *Engine) newSharedPlan(kind planKind) *SharedPlan {
	return &SharedPlan{
		e:     e,
		kind:  kind,
		began: now(),
		io0:   e.st.Pool().Stats(),
		tl0:   e.st.CacheStats(),
		con0:  e.con.Stats(),
		rows:  e.newRowSource(),
	}
}

// PlanReach runs the threshold-independent part of an s-query (SQMB
// bounding + candidate verification). q.Prob is ignored; pass it to
// ResultAt.
func (e *Engine) PlanReach(ctx context.Context, q Query, opts ...PlanOption) (*SharedPlan, error) {
	if err := validateWindow(q.Start, q.Duration); err != nil {
		return nil, err
	}
	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", q.Location)
	}
	p := e.newSharedPlan(planBounded)
	p.starts = []roadnet.SegmentID{r0}
	if err := p.boundForward(ctx, q.Start, q.Duration, false, resolvePlanConfig(opts)); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// PlanMulti runs the threshold-independent part of an m-query (MQMB
// unified bounding + candidate verification).
func (e *Engine) PlanMulti(ctx context.Context, q MultiQuery, opts ...PlanOption) (*SharedPlan, error) {
	if err := validateWindow(q.Start, q.Duration); err != nil {
		return nil, err
	}
	if len(q.Locations) == 0 {
		return nil, xerr.Markf(xerr.KindInvalid, "core: m-query needs at least one location")
	}
	starts := make([]roadnet.SegmentID, 0, len(q.Locations))
	seen := map[roadnet.SegmentID]bool{}
	for _, loc := range q.Locations {
		r0, ok := e.st.SnapLocation(loc)
		if !ok {
			return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", loc)
		}
		if !seen[r0] {
			seen[r0] = true
			starts = append(starts, r0)
		}
	}
	p := e.newSharedPlan(planBounded)
	p.starts = starts
	if err := p.boundForward(ctx, q.Start, q.Duration, true, resolvePlanConfig(opts)); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// PlanMultiSequential builds one PlanReach per location (duplicates
// included, matching the sequential baseline exactly).
func (e *Engine) PlanMultiSequential(ctx context.Context, q MultiQuery, opts ...PlanOption) (*SharedPlan, error) {
	if err := validateWindow(q.Start, q.Duration); err != nil {
		return nil, err
	}
	if len(q.Locations) == 0 {
		return nil, xerr.Markf(xerr.KindInvalid, "core: m-query needs at least one location")
	}
	cfg := resolvePlanConfig(opts)
	p := e.newSharedPlan(planSequential)
	p.deferred = cfg.deferVerify
	p.slotLo, p.slotHi = e.slotWindow(q.Start, q.Duration)
	for _, loc := range q.Locations {
		child, err := e.PlanReach(ctx, Query{Location: loc, Start: q.Start, Duration: q.Duration}, opts...)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.children = append(p.children, child)
	}
	// A sequential plan is deferred only while some child still is (an
	// EarlyStop child verifies lazily and ignores the deferral).
	if p.deferred {
		p.deferred = false
		for _, c := range p.children {
			if c.deferred {
				p.deferred = true
			}
		}
	}
	return p, nil
}

// PlanReverse runs the threshold-independent part of a reverse s-query
// (reverse bounding regions + candidate verification).
func (e *Engine) PlanReverse(ctx context.Context, q Query, opts ...PlanOption) (*SharedPlan, error) {
	if err := validateWindow(q.Start, q.Duration); err != nil {
		return nil, err
	}
	dst, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", q.Location)
	}
	cfg := resolvePlanConfig(opts)
	p := e.newSharedPlan(planBounded)
	p.starts = []roadnet.SegmentID{dst}

	tBound := now()
	maxReg, err := e.reverseBoundingRegionPin(ctx, p.rows, dst, q.Start, q.Duration, true)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.maxReg = maxReg
	minReg, err := e.reverseBoundingRegionPin(ctx, p.rows, dst, q.Start, q.Duration, false)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.minReg = minReg
	p.boundNS = now().Sub(tBound).Nanoseconds()
	p.maxSize, p.minSize = maxReg.size(), minReg.size()

	tVerify := now()
	lo, hi := e.slotWindow(q.Start, q.Duration)
	p.slotLo, p.slotHi = lo, hi
	p.rpr, err = e.newReverseProbe(ctx, dst, lo, lo, hi)
	if err != nil {
		p.Close()
		return nil, err
	}
	// The reverse pipeline has no EarlyStop wave: candidates are either
	// Bmax \ Bmin (default) or all of Bmax (VerifyAll), verified on the
	// shared read-only probe.
	if e.opts.VerifyAll {
		p.order = append([]roadnet.SegmentID(nil), maxReg.segs...)
	} else {
		p.order = make([]roadnet.SegmentID, 0, maxReg.size())
		p.keep = make([]roadnet.SegmentID, 0, minReg.size())
		maxReg.splitAgainst(minReg,
			func(s roadnet.SegmentID) { p.keep = append(p.keep, s) },
			func(s roadnet.SegmentID) { p.order = append(p.order, s) })
	}
	p.evalFixed = len(p.order)
	if cfg.deferVerify {
		p.deferred = true
		p.probs = make([]float64, len(p.order))
		p.verifyNS = now().Sub(tVerify).Nanoseconds()
		return p, nil
	}
	p.probs, err = e.verifyMany(ctx, p.order, func() func(roadnet.SegmentID) (float64, error) {
		return p.rpr.prob
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	p.verifyNS = now().Sub(tVerify).Nanoseconds()
	return p, nil
}

// PlanReachES runs the exhaustive-search baseline's threshold-independent
// part: the worst-case-radius expansion verifies every expanded segment.
func (e *Engine) PlanReachES(ctx context.Context, q Query, opts ...PlanOption) (*SharedPlan, error) {
	if err := validateWindow(q.Start, q.Duration); err != nil {
		return nil, err
	}
	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", q.Location)
	}
	cfg := resolvePlanConfig(opts)
	p := e.newSharedPlan(planExhaustive)
	p.starts = []roadnet.SegmentID{r0}
	lo, hi := e.slotWindow(q.Start, q.Duration)
	p.slotLo, p.slotHi = lo, hi
	pr, err := e.newProbe(ctx, p.starts, lo, lo, hi)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.pr = pr
	w := pr.worker()
	budget := q.Duration.Seconds() * roadnet.Highway.FreeFlowSpeed()
	var expandErr error
	e.net.Expand(r0, budget, e.net.DistanceWeight(), func(r roadnet.SegmentID, _ float64) bool {
		if expandErr != nil {
			return false
		}
		if err := ctx.Err(); err != nil {
			expandErr = err
			return false
		}
		// The expansion is probability-independent (it is bounded by the
		// worst-case radius alone), so a deferred plan collects the
		// candidate order here and verifies later on the shard engines.
		if !cfg.deferVerify {
			pv, err := w.prob(r)
			if err != nil {
				expandErr = err
				return false
			}
			p.probs = append(p.probs, pv)
		}
		p.order = append(p.order, r)
		return true
	})
	if expandErr != nil {
		p.Close()
		return nil, expandErr
	}
	p.evalFixed = len(p.order)
	if cfg.deferVerify {
		p.deferred = true
		p.probs = make([]float64, len(p.order))
	}
	return p, nil
}

// PlanReverseES is PlanReachES over the reverse expansion and probe.
func (e *Engine) PlanReverseES(ctx context.Context, q Query, opts ...PlanOption) (*SharedPlan, error) {
	if err := validateWindow(q.Start, q.Duration); err != nil {
		return nil, err
	}
	dst, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", q.Location)
	}
	cfg := resolvePlanConfig(opts)
	p := e.newSharedPlan(planExhaustive)
	p.starts = []roadnet.SegmentID{dst}
	lo, hi := e.slotWindow(q.Start, q.Duration)
	p.slotLo, p.slotHi = lo, hi
	rpr, err := e.newReverseProbe(ctx, dst, lo, lo, hi)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.rpr = rpr
	budget := q.Duration.Seconds() * roadnet.Highway.FreeFlowSpeed()
	var expandErr error
	e.expandReverseDistance(dst, budget, func(r roadnet.SegmentID) bool {
		if err := ctx.Err(); err != nil {
			expandErr = err
			return false
		}
		if !cfg.deferVerify {
			pv, err := rpr.prob(r)
			if err != nil {
				expandErr = err
				return false
			}
			p.probs = append(p.probs, pv)
		}
		p.order = append(p.order, r)
		return true
	})
	if expandErr != nil {
		p.Close()
		return nil, expandErr
	}
	p.evalFixed = len(p.order)
	if cfg.deferVerify {
		p.deferred = true
		p.probs = make([]float64, len(p.order))
	}
	return p, nil
}

// boundForward grows the forward bounding regions (SQMB or, with
// unified=true, MQMB's Algorithm 3), builds the probe start-sets, and —
// except under EarlyStop or a deferred plan — verifies every trace-back
// candidate once.
func (p *SharedPlan) boundForward(ctx context.Context, start, dur time.Duration, unified bool, cfg planConfig) error {
	e := p.e
	grow := func(far bool) (*region, error) {
		if unified {
			return e.unifiedRegionPin(ctx, p.rows, p.starts, start, dur, far)
		}
		return e.boundingRegionPin(ctx, p.rows, p.starts, start, dur, far)
	}
	tBound := now()
	maxReg, err := grow(true)
	if err != nil {
		return err
	}
	p.maxReg = maxReg
	minReg, err := grow(false)
	if err != nil {
		return err
	}
	p.minReg = minReg
	p.boundNS = now().Sub(tBound).Nanoseconds()
	p.maxSize, p.minSize = maxReg.size(), minReg.size()

	tVerify := now()
	lo, hi := e.slotWindow(start, dur)
	p.slotLo, p.slotHi = lo, hi
	p.pr, err = e.newProbe(ctx, p.starts, lo, lo, hi)
	if err != nil {
		return err
	}
	if e.opts.EarlyStop {
		// Lazy: the wave runs per ResultAt with memoised probabilities.
		p.lazy = true
		p.memo = map[roadnet.SegmentID]float64{}
		p.wave = p.pr.worker()
		p.verifyNS = now().Sub(tVerify).Nanoseconds()
		return nil
	}
	if e.opts.VerifyAll {
		p.order = append([]roadnet.SegmentID(nil), maxReg.segs...)
	} else {
		// Verify Bmax \ Bmin outer-to-inner (descending expansion round,
		// the trace back order), admit Bmax ∩ Bmin unverified. Both sets
		// come from word-level bitset ops on the regions.
		p.order = make([]roadnet.SegmentID, 0, maxReg.size())
		p.keep = make([]roadnet.SegmentID, 0, minReg.size())
		maxReg.splitAgainst(minReg,
			func(s roadnet.SegmentID) { p.keep = append(p.keep, s) },
			func(s roadnet.SegmentID) { p.order = append(p.order, s) })
		sort.Slice(p.order, func(i, j int) bool {
			ri, rj := maxReg.round[p.order[i]], maxReg.round[p.order[j]]
			if ri != rj {
				return ri > rj // outer rounds first
			}
			return p.order[i] < p.order[j]
		})
	}
	p.evalFixed = len(p.order)
	if cfg.deferVerify {
		p.deferred = true
		p.probs = make([]float64, len(p.order))
		p.verifyNS = now().Sub(tVerify).Nanoseconds()
		return nil
	}
	p.probs, err = e.verifyMany(ctx, p.order, func() func(roadnet.SegmentID) (float64, error) {
		return p.pr.worker().prob
	})
	if err != nil {
		return err
	}
	p.verifyNS = now().Sub(tVerify).Nanoseconds()
	return nil
}

// ResultAt assembles the Result for one probability threshold. For eager
// plans this is a threshold scan over the shared per-candidate
// probability map; for EarlyStop plans it runs the wave with memoised
// probabilities. The Result is independent of how many other thresholds
// the plan has answered.
func (p *SharedPlan) ResultAt(ctx context.Context, prob float64) (*Result, error) {
	if err := validateProb(prob); err != nil {
		return nil, err
	}
	if p.closed {
		return nil, xerr.Markf(xerr.KindInternal, "core: ResultAt on a closed plan")
	}
	if p.deferred && !p.verified {
		return nil, xerr.Markf(xerr.KindInternal, "core: ResultAt on a deferred plan before FinishVerification")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := p.e
	switch p.kind {
	case planSequential:
		// One full child answer per location, merged exactly as the
		// sequential baseline defines: segments unioned (boundary
		// duplicates counted once), starts concatenated, probabilities
		// dropped.
		parts := make([]*Result, len(p.children))
		for i, child := range p.children {
			one, err := child.ResultAt(ctx, prob)
			if err != nil {
				return nil, err
			}
			parts[i] = one
		}
		res := MergeRegions(false, parts...)
		// The scatter step charges a sharded sequential plan's whole
		// verification to the parent; fold it in (zero when unsharded, so
		// the merged child timings stand alone as before).
		res.Metrics.VerifyNS += p.verifyNS
		e.finish(res, p.began, p.io0, p.tl0, p.con0)
		return res, nil

	case planExhaustive:
		res := &Result{
			Starts:      append([]roadnet.SegmentID(nil), p.starts...),
			Probability: map[roadnet.SegmentID]float64{},
		}
		for i, s := range p.order {
			if p.probs[i] >= prob {
				res.Segments = append(res.Segments, s)
				res.Probability[s] = p.probs[i]
			}
		}
		res.Metrics.Evaluated = p.evalFixed
		e.finish(res, p.began, p.io0, p.tl0, p.con0)
		return res, nil

	default: // planBounded
		res := &Result{
			Starts:      append([]roadnet.SegmentID(nil), p.starts...),
			Probability: map[roadnet.SegmentID]float64{},
		}
		include := make(map[roadnet.SegmentID]bool, p.maxReg.size())
		evaluated := p.evalFixed
		verifyNS := p.verifyNS
		if p.lazy {
			tWave := now()
			calls := 0
			probFn := func(s roadnet.SegmentID) (float64, error) {
				calls++
				if v, ok := p.memo[s]; ok {
					return v, nil
				}
				v, err := p.wave.prob(s)
				if err != nil {
					return 0, err
				}
				p.memo[s] = v
				return v, nil
			}
			if err := e.earlyStopWave(ctx, p.maxReg, p.minReg, probFn, prob, include, res.Probability); err != nil {
				return nil, err
			}
			evaluated = calls
			verifyNS += now().Sub(tWave).Nanoseconds()
		} else {
			for _, s := range p.keep {
				include[s] = true
			}
			for i, s := range p.order {
				if p.probs[i] >= prob {
					include[s] = true
					res.Probability[s] = p.probs[i]
				}
			}
		}
		for s := range include {
			res.Segments = append(res.Segments, s)
		}
		res.Metrics.Evaluated = evaluated
		res.Metrics.BoundNS = p.boundNS
		res.Metrics.VerifyNS = verifyNS
		res.Metrics.MaxRegion = p.maxSize
		res.Metrics.MinRegion = p.minSize
		e.finish(res, p.began, p.io0, p.tl0, p.con0)
		return res, nil
	}
}

// RowStats reports the plan's Con-Index row-source activity (including
// child plans): rows each member query of a sharing group did not have to
// re-resolve through the shared tables.
func (p *SharedPlan) RowStats() conindex.PinStats {
	st := p.rows.Stats()
	for _, c := range p.children {
		cs := c.RowStats()
		st.Hits += cs.Hits
		st.Fetched += cs.Fetched
	}
	return st
}

// Close releases the plan's pooled bounding regions. The plan must not be
// used afterwards. Idempotent; safe on a nil plan.
func (p *SharedPlan) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	p.e.putRegion(p.maxReg)
	p.e.putRegion(p.minReg)
	p.maxReg, p.minReg = nil, nil
	for _, c := range p.children {
		c.Close()
	}
}
