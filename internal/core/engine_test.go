package core

import (
	"testing"
	"time"

	"streach/internal/roadnet"
)

func TestRounds(t *testing.T) {
	e := newEngine(t, Options{}) // Δt = 300 s
	cases := []struct {
		dur  time.Duration
		want int
	}{
		{1 * time.Second, 1},
		{5 * time.Minute, 1},
		{5*time.Minute + time.Second, 2},
		{10 * time.Minute, 2},
		{35 * time.Minute, 7},
	}
	for _, c := range cases {
		if got := e.rounds(c.dur); got != c.want {
			t.Fatalf("rounds(%v) = %d, want %d", c.dur, got, c.want)
		}
	}
}

func TestSlotWindow(t *testing.T) {
	e := newEngine(t, Options{}) // Δt = 300 s, 288 slots
	cases := []struct {
		start  time.Duration
		dur    time.Duration
		lo, hi int
	}{
		{0, 5 * time.Minute, 0, 1},
		{11 * time.Hour, 10 * time.Minute, 132, 134},
		{23*time.Hour + 55*time.Minute, 10 * time.Minute, 287, 287}, // capped at end of day
	}
	for _, c := range cases {
		lo, hi := e.slotWindow(c.start, c.dur)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("slotWindow(%v, %v) = [%d, %d], want [%d, %d]", c.start, c.dur, lo, hi, c.lo, c.hi)
		}
	}
}

func TestRegionHelpers(t *testing.T) {
	r := newRegion(10)
	if r.size() != 0 {
		t.Fatal("fresh region should be empty")
	}
	r.add(3, 0)
	r.add(7, 1)
	r.add(3, 2) // duplicate: round must not change
	if r.size() != 2 {
		t.Fatalf("size = %d, want 2", r.size())
	}
	if !r.has(3) || !r.has(7) || r.has(5) {
		t.Fatal("membership wrong")
	}
	if r.round[3] != 0 {
		t.Fatalf("duplicate add changed round to %d", r.round[3])
	}
}

func TestProbeReusedAcrossCalls(t *testing.T) {
	// The probe's scratch buffers are reused; two consecutive calls on
	// different segments must not leak state between them.
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	lo, hi := e.slotWindow(q.Start, q.Duration)
	r0, _ := e.st.SnapLocation(q.Location)
	pr, err := e.newProbe(bg, []roadnet.SegmentID{r0}, lo, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	w := pr.worker()
	a1, err := w.prob(r0)
	if err != nil {
		t.Fatal(err)
	}
	// A far-away segment should have a (likely) different, valid prob.
	far := roadnet.SegmentID(e.net.NumSegments() - 1)
	if _, err := w.prob(far); err != nil {
		t.Fatal(err)
	}
	a2, err := w.prob(r0)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("prob(r0) changed between calls: %v vs %v", a1, a2)
	}
	if pr.evaluated.Load() != 3 {
		t.Fatalf("evaluated = %d, want 3", pr.evaluated.Load())
	}
}
