package core

import (
	"context"
)

// ES answers an s-query with the exhaustive search baseline (§4.1).
//
// Without the Con-Index, the baseline has no data-driven bound on how far
// traffic can travel in L, so it falls back to the conservative network
// expansion of [21]: expand the road network from the start segment out
// to the worst-case radius (free-flow speed of the fastest road class
// times L), and verify the reachability probability of every expanded
// segment against the on-disk time lists. The search "terminates until
// Prob-reachable road segments at all possible branches" — i.e. it is
// exhaustive within the worst-case reach, which is what makes it pay
// 2–10x the disk reads of SQMB+TBS.
func (e *Engine) ES(ctx context.Context, q Query) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	p, err := e.PlanReachES(ctx, q)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ResultAt(ctx, q.Prob)
}
