package core

import (
	"context"
	"fmt"

	"streach/internal/roadnet"
)

// ES answers an s-query with the exhaustive search baseline (§4.1).
//
// Without the Con-Index, the baseline has no data-driven bound on how far
// traffic can travel in L, so it falls back to the conservative network
// expansion of [21]: expand the road network from the start segment out
// to the worst-case radius (free-flow speed of the fastest road class
// times L), and verify the reachability probability of every expanded
// segment against the on-disk time lists. The search "terminates until
// Prob-reachable road segments at all possible branches" — i.e. it is
// exhaustive within the worst-case reach, which is what makes it pay
// 2–10x the disk reads of SQMB+TBS.
func (e *Engine) ES(ctx context.Context, q Query) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	began := now()
	io0 := e.st.Pool().Stats()
	tl0 := e.st.CacheStats()
	con0 := e.con.Stats()

	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, fmt.Errorf("core: no road segment near %v", q.Location)
	}
	lo, hi := e.slotWindow(q.Start, q.Duration)
	pr, err := e.newProbe(ctx, []roadnet.SegmentID{r0}, lo, lo, hi)
	if err != nil {
		return nil, err
	}
	w := pr.worker()

	// Worst-case travel budget in metres.
	budget := q.Duration.Seconds() * roadnet.Highway.FreeFlowSpeed()

	res := &Result{Starts: []roadnet.SegmentID{r0}, Probability: map[roadnet.SegmentID]float64{}}
	var expandErr error
	// The expansion verifies one segment per pop, so the ctx check aborts
	// the exhaustive scan within one time-list probe of cancellation.
	e.net.Expand(r0, budget, e.net.DistanceWeight(), func(r roadnet.SegmentID, _ float64) bool {
		if expandErr != nil {
			return false
		}
		if err := ctx.Err(); err != nil {
			expandErr = err
			return false
		}
		p, err := w.prob(r)
		if err != nil {
			expandErr = err
			return false
		}
		if p >= q.Prob {
			res.Segments = append(res.Segments, r)
			res.Probability[r] = p
		}
		return true
	})
	if expandErr != nil {
		return nil, expandErr
	}
	res.Metrics.Evaluated = int(pr.evaluated.Load())
	e.finish(res, began, io0, tl0, con0)
	return res, nil
}
