package core

import (
	"testing"
	"time"
)

func TestReverseSQMBBasics(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	res, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("reverse region from the busiest segment should be non-empty")
	}
	if res.Metrics.MaxRegion < len(res.Segments) {
		t.Fatalf("reverse max region %d < result %d", res.Metrics.MaxRegion, len(res.Segments))
	}
	if res.Metrics.Evaluated == 0 {
		t.Fatal("reverse query should verify candidates")
	}
}

func TestReverseESMatchesReverseVerifyAll(t *testing.T) {
	f := getFixture(t)
	exact := newEngine(t, Options{VerifyAll: true})
	q := baseQuery(f)
	es, err := exact.ReverseES(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := exact.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(es.Segments) == 0 {
		t.Fatal("reverse ES found nothing")
	}
	esSet := toSet(es.Segments)
	missing := 0
	for _, s := range sq.Segments {
		if !esSet[s] {
			missing++
		}
	}
	if frac := float64(missing) / float64(max(1, len(sq.Segments))); frac > 0.05 {
		t.Fatalf("%.0f%% of reverse SQMB result missing from reverse ES", frac*100)
	}
}

func TestReverseCheaperPerCandidate(t *testing.T) {
	// Reverse candidates cost one time-list read each, so the probe's
	// per-candidate time-list touches (decoded-cache hits + misses,
	// counted regardless of which tier serves them) should be far below
	// the forward probe's, which reads every slot of the window.
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	fwd, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	fwdPerEval := float64(fwd.Metrics.TLCacheHits+fwd.Metrics.TLCacheMisses) / float64(max(1, fwd.Metrics.Evaluated))
	revPerEval := float64(rev.Metrics.TLCacheHits+rev.Metrics.TLCacheMisses) / float64(max(1, rev.Metrics.Evaluated))
	if revPerEval >= fwdPerEval {
		t.Fatalf("reverse per-candidate list touches (%.1f) should be below forward (%.1f)", revPerEval, fwdPerEval)
	}
}

func TestReverseRegionDirectionality(t *testing.T) {
	// On a one-way ring... our generated city is mostly two-way, so test
	// the weaker directional property: the reverse region of a segment
	// at T is not identical to the forward region unless the city is
	// fully symmetric. Just assert both run and are plausibly sized.
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	fwd, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Metrics.MaxRegion == 0 || fwd.Metrics.MaxRegion == 0 {
		t.Fatal("both directions should produce bounding regions")
	}
}

func TestReverseValidation(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	q := baseQuery(f)
	q.Prob = -1
	if _, err := e.ReverseSQMB(bg, q); err == nil {
		t.Fatal("invalid Prob should error")
	}
	if _, err := e.ReverseES(bg, q); err == nil {
		t.Fatal("invalid Prob should error for ES too")
	}
}

func TestReverseMonotoneInProb(t *testing.T) {
	f := getFixture(t)
	exact := newEngine(t, Options{VerifyAll: true})
	q := baseQuery(f)
	q.Prob = 0.2
	loose, err := exact.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	q.Prob = 0.8
	strict, err := exact.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	looseSet := toSet(loose.Segments)
	for _, s := range strict.Segments {
		if !looseSet[s] {
			t.Fatalf("segment %d reverse-reachable at 80%% but not 20%%", s)
		}
	}
}

func TestReverseDurationGrowsRegion(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	q.Duration = 5 * time.Minute
	small, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	q.Duration = 20 * time.Minute
	large, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if large.Metrics.MaxRegion < small.Metrics.MaxRegion {
		t.Fatalf("reverse max region should grow with duration: %d -> %d",
			small.Metrics.MaxRegion, large.Metrics.MaxRegion)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
