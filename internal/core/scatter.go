package core

import (
	"context"
	"time"

	"streach/internal/bitset"
	"streach/internal/roadnet"
	"streach/internal/xerr"
)

// This file is the SharedPlan's scatter-gather surface: the hooks a
// shard cluster uses to ship one plan across partitioned engines.
//
// A sharded query runs in three steps. The cluster's planner engine
// builds the plan with DeferVerification — bounding regions (whose
// Con-Index rows already route through the shard slices via the
// planner's RowSource), probe start-sets, and the candidate order, but
// no probabilities. The scatter step ships the plan to every shard:
// VerifyOn verifies the candidate positions a shard owns on that shard's
// engine, reading time lists from its ST-Index slice, and
// FinishVerification seals the plan. The gather step assembles one
// mergeable partial Result per shard with PartialAt, folds them with
// MergeRegions, and stamps cost attribution with Finalize — bit-identical
// to ResultAt on an unsharded engine because every per-candidate
// probability is a property of the data, not of where it was computed,
// and the merge is an exact union.

// Deferred reports whether the plan was built with DeferVerification and
// still awaits FinishVerification.
func (p *SharedPlan) Deferred() bool { return p.deferred && !p.verified }

// Lazy reports whether the plan verifies lazily per threshold (the
// EarlyStop policy), which a scatter step cannot split across shards.
func (p *SharedPlan) Lazy() bool { return p.lazy }

// Candidates returns the plan's verification candidates in trace-back
// order. The slice is the plan's own: read it, don't mutate it, and drop
// it before Close.
func (p *SharedPlan) Candidates() []roadnet.SegmentID { return p.order }

// SlotWindow returns the inclusive slot range [lo, hi] of the plan's
// query window, recorded at plan time. The temporal sharding layer
// scatters only to the shard row whose held slot range covers it.
func (p *SharedPlan) SlotWindow() (lo, hi int) { return p.slotLo, p.slotHi }

// Children returns the per-location child plans of a sequential m-query
// plan (nil otherwise). A scatter step verifies each child separately.
func (p *SharedPlan) Children() []*SharedPlan { return p.children }

// Starts returns a copy of the plan's snapped start set; for sequential
// plans, the concatenation of the children's starts in location order
// (duplicates included), matching the merged result's Starts contract.
func (p *SharedPlan) Starts() []roadnet.SegmentID {
	if p.kind == planSequential {
		var out []roadnet.SegmentID
		for _, c := range p.children {
			out = append(out, c.Starts()...)
		}
		return out
	}
	return append([]roadnet.SegmentID(nil), p.starts...)
}

// VerifyOn verifies the candidates at the given positions (indexes into
// Candidates()) on eng — a shard engine whose ST-Index slice owns those
// segments — writing their empirical probabilities into the plan. Only
// valid on a deferred plan before FinishVerification; sequential plans
// verify their Children individually. Concurrent VerifyOn calls are the
// scatter step and are safe exactly when their position sets are
// disjoint (each position is written once).
func (p *SharedPlan) VerifyOn(ctx context.Context, eng *Engine, positions []int) error {
	out, err := p.VerifyPositions(ctx, eng, positions)
	if err != nil {
		return err
	}
	p.CommitVerified(positions, out)
	return nil
}

// VerifyPositions computes the empirical probabilities of the candidates
// at the given positions on eng without committing them into the plan:
// the racing half of a hedged scatter, where a primary and a hedge
// attempt verify the same positions concurrently into private buffers
// and only the first finisher's values are committed. Probabilities are
// a property of the data, so both attempts compute identical values;
// keeping the buffers private is what makes the race benign.
func (p *SharedPlan) VerifyPositions(ctx context.Context, eng *Engine, positions []int) ([]float64, error) {
	if p.closed {
		return nil, xerr.Markf(xerr.KindInternal, "core: VerifyPositions on a closed plan")
	}
	if !p.deferred || p.verified {
		return nil, xerr.Markf(xerr.KindInternal, "core: VerifyPositions needs a deferred, unsealed plan")
	}
	if p.kind == planSequential {
		return nil, xerr.Markf(xerr.KindInternal, "core: VerifyPositions on a sequential plan; verify its children")
	}
	if len(positions) == 0 {
		return nil, nil
	}
	segs := make([]roadnet.SegmentID, len(positions))
	for j, i := range positions {
		segs[j] = p.order[i]
	}
	var newWorker func() func(roadnet.SegmentID) (float64, error)
	if p.pr != nil {
		pr, st := p.pr, eng.st
		newWorker = func() func(roadnet.SegmentID) (float64, error) {
			return pr.workerFor(st).prob
		}
	} else {
		rpr, st := p.rpr, eng.st
		newWorker = func() func(roadnet.SegmentID) (float64, error) {
			return func(seg roadnet.SegmentID) (float64, error) {
				return rpr.probOn(st, seg)
			}
		}
	}
	return eng.verifyMany(ctx, segs, newWorker)
}

// CommitVerified writes vals (from VerifyPositions over the same
// positions) into the plan. The caller owns the once-per-position
// guarantee: under hedging exactly one of the racing attempts commits,
// and concurrent commits are safe exactly when their position sets are
// disjoint — the same contract as VerifyOn.
func (p *SharedPlan) CommitVerified(positions []int, vals []float64) {
	for j, i := range positions {
		p.probs[i] = vals[j]
	}
}

// FinishVerification seals a deferred plan (and its children) after the
// scatter step has covered every candidate position, charging d — the
// wall-clock cost of the whole scatter — to the plan's verification
// phase. ResultAt, PartialAt, and GatherAt work from here on.
func (p *SharedPlan) FinishVerification(d time.Duration) {
	for _, c := range p.children {
		c.FinishVerification(0)
	}
	if p.deferred && !p.verified {
		p.verified = true
		p.verifyNS += d.Nanoseconds()
	}
}

// PartialAt assembles the mergeable partial answer restricted to the
// owned segment subset at one probability threshold: the segments the
// trace-back policy admits unverified plus the qualifying verified
// candidates, both intersected with owned. Partial metrics (Evaluated,
// MaxRegion, MinRegion) count only owned members, so the partials of a
// partition sum exactly to the unsharded totals, and MergeRegions over
// them reproduces ResultAt bit-identically. Segments may be unsorted;
// the merge sorts. EarlyStop plans verify lazily and have no partial
// form.
func (p *SharedPlan) PartialAt(ctx context.Context, prob float64, owned bitset.Set) (*Result, error) {
	if err := validateProb(prob); err != nil {
		return nil, err
	}
	if p.closed {
		return nil, xerr.Markf(xerr.KindInternal, "core: PartialAt on a closed plan")
	}
	if p.deferred && !p.verified {
		return nil, xerr.Markf(xerr.KindInternal, "core: PartialAt on a deferred plan before FinishVerification")
	}
	if p.lazy {
		return nil, xerr.Markf(xerr.KindInternal, "core: PartialAt on an EarlyStop plan (lazy verification has no partial form)")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.kind == planSequential {
		parts := make([]*Result, len(p.children))
		for i, child := range p.children {
			one, err := child.PartialAt(ctx, prob, owned)
			if err != nil {
				return nil, err
			}
			parts[i] = one
		}
		// The sequential baseline drops probabilities at its merge; so do
		// its partials, keeping the sharded union's contract identical.
		res := MergeRegions(false, parts...)
		res.Starts = nil // starts belong to the final gather, not a shard
		return res, nil
	}

	res := &Result{Probability: map[roadnet.SegmentID]float64{}}
	for _, s := range p.keep {
		if owned.Has(int(s)) {
			res.Segments = append(res.Segments, s)
		}
	}
	evaluated := 0
	for i, s := range p.order {
		if !owned.Has(int(s)) {
			continue
		}
		evaluated++
		if p.probs[i] >= prob {
			res.Segments = append(res.Segments, s)
			res.Probability[s] = p.probs[i]
		}
	}
	res.Metrics.Evaluated = evaluated
	if p.kind == planBounded {
		res.Metrics.MaxRegion = bitset.AndCount(p.maxReg.bits, owned)
		res.Metrics.MinRegion = bitset.AndCount(p.minReg.bits, owned)
	}
	return res, nil
}

// Finalize stamps a merged result with the plan's cost attribution —
// phase timings, start set, sort order, road length, IO and cache deltas
// — exactly as ResultAt would, completing a gather: the result of
// MergeRegions over every shard's PartialAt plus Finalize is
// bit-identical to ResultAt.
func (p *SharedPlan) Finalize(res *Result) {
	res.Starts = p.Starts()
	switch p.kind {
	case planBounded:
		res.Metrics.BoundNS = p.boundNS
		res.Metrics.VerifyNS = p.verifyNS
	case planSequential:
		res.Metrics.BoundNS, res.Metrics.VerifyNS = 0, 0
		for _, c := range p.children {
			res.Metrics.BoundNS += c.boundNS
			res.Metrics.VerifyNS += c.verifyNS
		}
		// A sharded sequential plan's verification cost lands on the
		// parent (FinishVerification charges the whole scatter there, the
		// deferred children carry only their deferral stamp); unsharded
		// parents have zero, so this is exact either way.
		res.Metrics.VerifyNS += p.verifyNS
	}
	p.e.finish(res, p.began, p.io0, p.tl0, p.con0)
}

// Rebase resets the plan's cost-attribution snapshots to now, so a plan
// reused from the cross-batch cache charges its next caller only for the
// work done since reuse (threshold scans, IO it actually triggers)
// rather than the original construction's whole history.
func (p *SharedPlan) Rebase() {
	p.began = now()
	p.io0 = p.e.st.Pool().Stats()
	p.tl0 = p.e.st.CacheStats()
	p.con0 = p.e.con.Stats()
	for _, c := range p.children {
		c.Rebase()
	}
}
