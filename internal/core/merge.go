package core

import (
	"sort"

	"streach/internal/roadnet"
)

// MergeRegions folds partial query answers into one Result — the shared
// merge step behind both the sequential m-query baseline (one partial
// answer per start location) and a shard cluster's gather (one partial
// answer per shard). Semantics:
//
//   - Starts concatenate in part order (the sequential baseline keeps
//     duplicate starts, so no deduplication happens here);
//   - Segments union ascending, with segments reported by several parts
//     — shard-boundary segments, overlapping per-start regions —
//     counted exactly once;
//   - Probability maps union when mergeProbs is true and at least one
//     part carries one (shard partials are disjoint, so entries never
//     conflict; on artificial overlap the last part wins). With
//     mergeProbs false the merged result has no probability map, which
//     is the sequential baseline's contract;
//   - the countable metrics (Evaluated, MaxRegion, MinRegion, BoundNS,
//     VerifyNS) sum, so per-shard partial metrics add up to exactly the
//     unsharded totals.
//
// Derived fields — ResultSegments, RoadKm, IO and cache attribution,
// Elapsed — are left zero: the owning plan's Finalize (or the engine's
// finish step) fills them so merged and unmerged execution attribute
// cost identically. Empty partials (a shard owning no result segments)
// merge as no-ops.
func MergeRegions(mergeProbs bool, parts ...*Result) *Result {
	res := &Result{}
	total := 0
	for _, part := range parts {
		total += len(part.Segments)
	}
	res.Segments = make([]roadnet.SegmentID, 0, total)
	for _, part := range parts {
		res.Starts = append(res.Starts, part.Starts...)
		res.Segments = append(res.Segments, part.Segments...)
		res.Metrics.Evaluated += part.Metrics.Evaluated
		res.Metrics.MaxRegion += part.Metrics.MaxRegion
		res.Metrics.MinRegion += part.Metrics.MinRegion
		res.Metrics.BoundNS += part.Metrics.BoundNS
		res.Metrics.VerifyNS += part.Metrics.VerifyNS
		if mergeProbs && part.Probability != nil {
			if res.Probability == nil {
				res.Probability = make(map[roadnet.SegmentID]float64, len(part.Probability))
			}
			for s, pv := range part.Probability {
				res.Probability[s] = pv
			}
		}
	}
	sort.Slice(res.Segments, func(i, j int) bool { return res.Segments[i] < res.Segments[j] })
	// Count boundary duplicates exactly once.
	dedup := res.Segments[:0]
	for i, s := range res.Segments {
		if i == 0 || s != res.Segments[i-1] {
			dedup = append(dedup, s)
		}
	}
	res.Segments = dedup
	if len(res.Segments) == 0 {
		res.Segments = nil // match the unmerged paths' empty representation
	}
	return res
}
