package core

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentQueries runs a mix of query types from several goroutines
// over shared indexes: the buffer pool, the Con-Index caches, and the
// probe must be race-free and every result must match the serial answer.
func TestConcurrentQueries(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)

	serial, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	serialES, err := e.ES(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	serialRev, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (g + i) % 3 {
				case 0:
					res, err := e.SQMB(bg, q)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Segments) != len(serial.Segments) {
						t.Errorf("concurrent SQMB returned %d segments, serial %d",
							len(res.Segments), len(serial.Segments))
						return
					}
				case 1:
					res, err := e.ES(bg, q)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Segments) != len(serialES.Segments) {
						t.Errorf("concurrent ES returned %d segments, serial %d",
							len(res.Segments), len(serialES.Segments))
						return
					}
				default:
					res, err := e.ReverseSQMB(bg, q)
					if err != nil {
						errs <- err
						return
					}
					if len(res.Segments) != len(serialRev.Segments) {
						t.Errorf("concurrent reverse returned %d segments, serial %d",
							len(res.Segments), len(serialRev.Segments))
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentMixedStartTimes exercises the Con-Index lazy
// materialisation under concurrent cache misses for different slots.
func TestConcurrentMixedStartTimes(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := baseQuery(f)
			q.Start = time.Duration(6+g*2) * time.Hour
			if _, err := e.SQMB(bg, q); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
}
