// Package core implements the spatio-temporal reachability query
// processing of the thesis (§3.3): the exhaustive-search baseline (ES),
// the single-location maximum/minimum bounding region search (SQMB,
// Algorithm 1), the trace back search (TBS, Algorithm 2), and the
// multi-location bounding region search (MQMB, Algorithm 3).
//
// A query q = (S, T, L, Prob) asks for every road segment reachable from
// location S within [T, T+L] on at least a Prob fraction of the dataset's
// days, where reachability is witnessed by historical trajectories: a day
// d supports segment r when some trajectory visited the start segment
// during [T, T+Δt] on day d and also visited r during [T, T+L] on day d
// (thesis §3.3.1, Eq. 3.1).
package core

import (
	"fmt"
	"sort"
	"time"

	"streach/internal/conindex"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/traj"
)

// Query is a single-location ST reachability query (s-query).
type Query struct {
	// Location is the start location S.
	Location geo.Point
	// Start is the time of day T (offset from midnight).
	Start time.Duration
	// Duration is the prediction length L.
	Duration time.Duration
	// Prob is the required reachability probability in (0, 1].
	Prob float64
}

// MultiQuery is a multi-location ST reachability query (m-query).
type MultiQuery struct {
	Locations []geo.Point
	Start     time.Duration
	Duration  time.Duration
	Prob      float64
}

// Metrics reports the cost of answering one query.
type Metrics struct {
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
	// Evaluated counts segments whose reachability probability was
	// verified against the on-disk time lists.
	Evaluated int
	// IO is the buffer-pool activity attributed to the query.
	IO storage.IOStats
	// MaxRegion and MinRegion are the bounding-region sizes (SQMB/MQMB
	// only; zero for ES).
	MaxRegion, MinRegion int
	// ResultSegments is the size of the Prob-reachable region.
	ResultSegments int
	// RoadKm is the total length of the result's road segments.
	RoadKm float64
}

// Result is the answer to a reachability query.
type Result struct {
	// Starts holds the snapped start segment(s).
	Starts []roadnet.SegmentID
	// Segments is the Prob-reachable region, ascending by ID.
	Segments []roadnet.SegmentID
	// Probability holds the verified reachability probability of result
	// segments. Segments admitted without verification (the minimum
	// bounding region, EarlyStop interior) have no entry.
	Probability map[roadnet.SegmentID]float64
	// Metrics is the query cost breakdown.
	Metrics Metrics
}

// Contains reports whether the result region includes seg.
func (r *Result) Contains(seg roadnet.SegmentID) bool {
	i := sort.Search(len(r.Segments), func(i int) bool { return r.Segments[i] >= seg })
	return i < len(r.Segments) && r.Segments[i] == seg
}

// Options tune the engine; the zero value is the default configuration
// (verify between the bounding regions, admit the minimum region
// unverified).
type Options struct {
	// VerifyAll makes TBS verify every segment in the maximum bounding
	// region, including the minimum region. Slower, but the result is
	// exactly {r in Bmax : probability(r, r0) >= Prob}. Used by
	// ablations and correctness tests.
	VerifyAll bool
	// EarlyStop enables the thesis's literal Algorithm 2 queue: branches
	// stop at qualifying segments and the interior the failing wave never
	// reaches is admitted unverified. Fastest, over-approximates on
	// sparse data.
	EarlyStop bool
	// NoVisitedSet disables the TBS visited-set deduplication (thesis
	// §3.3.1's r* example); applies to the EarlyStop wave. Ablation
	// only: the search is then bounded by a pop budget to guarantee
	// termination.
	NoVisitedSet bool
	// NoOverlapFilter disables MQMB's overlap elimination (Algorithm 3
	// lines 7–10). Ablation only.
	NoOverlapFilter bool
}

// Engine answers reachability queries over one indexed dataset.
type Engine struct {
	net  *roadnet.Network
	st   *stindex.Index
	con  *conindex.Index
	opts Options
}

// NewEngine wires the indexes together. The ST-Index and Con-Index must
// have been built over the same network and with the same Δt.
func NewEngine(st *stindex.Index, con *conindex.Index, opts Options) (*Engine, error) {
	if st == nil || con == nil {
		return nil, fmt.Errorf("core: both indexes are required")
	}
	if st.SlotSeconds() != con.SlotSeconds() {
		return nil, fmt.Errorf("core: index granularity mismatch: ST-Index %ds, Con-Index %ds",
			st.SlotSeconds(), con.SlotSeconds())
	}
	return &Engine{net: st.Network(), st: st, con: con, opts: opts}, nil
}

// Network returns the engine's road network.
func (e *Engine) Network() *roadnet.Network { return e.net }

// STIndex returns the engine's spatio-temporal index.
func (e *Engine) STIndex() *stindex.Index { return e.st }

// ConIndex returns the engine's connection index.
func (e *Engine) ConIndex() *conindex.Index { return e.con }

func (e *Engine) validate(start, dur time.Duration, prob float64) error {
	if prob <= 0 || prob > 1 {
		return fmt.Errorf("core: Prob must be in (0, 1], got %v", prob)
	}
	if dur <= 0 {
		return fmt.Errorf("core: duration must be positive, got %v", dur)
	}
	if start < 0 || start >= 24*time.Hour {
		return fmt.Errorf("core: start must be a time of day, got %v", start)
	}
	return nil
}

// slotWindow returns the slot range [lo, hi] covering [T, T+L], capped at
// the end of the day.
func (e *Engine) slotWindow(start, dur time.Duration) (lo, hi int) {
	slotSec := e.st.SlotSeconds()
	lo = int(start.Seconds()) / slotSec
	hi = int((start + dur).Seconds()) / slotSec
	if hi >= e.st.NumSlots() {
		hi = e.st.NumSlots() - 1
	}
	return lo, hi
}

// finish fills the derived metrics fields and sorts the result.
func (e *Engine) finish(res *Result, began time.Time, io0 storage.IOStats) {
	sort.Slice(res.Segments, func(i, j int) bool { return res.Segments[i] < res.Segments[j] })
	var km float64
	for _, s := range res.Segments {
		km += e.net.Segment(s).Length / 1000
	}
	res.Metrics.RoadKm = km
	res.Metrics.ResultSegments = len(res.Segments)
	res.Metrics.IO = e.st.Pool().Stats().Sub(io0)
	res.Metrics.Elapsed = time.Since(began)
}

// probe verifies reachability probabilities against the ST-Index time
// lists. It caches the per-day start sets of each query source.
type probe struct {
	e *Engine
	// starts[i][d] is the sorted taxi list seen at source i's segment
	// during the start slot on day d.
	starts    []map[traj.Day][]traj.TaxiID
	loSlot    int
	hiSlot    int
	days      int
	evaluated int
	// matched is per-call scratch: matched[source][day].
	matched [][]bool
}

// newProbe reads each source's start-slot time list once.
func (e *Engine) newProbe(sources []roadnet.SegmentID, startSlot, loSlot, hiSlot int) (*probe, error) {
	p := &probe{
		e:      e,
		starts: make([]map[traj.Day][]traj.TaxiID, len(sources)),
		loSlot: loSlot,
		hiSlot: hiSlot,
		days:   e.st.Days(),
	}
	for i, src := range sources {
		tl, err := e.st.TimeListAt(src, startSlot)
		if err != nil {
			return nil, err
		}
		m := make(map[traj.Day][]traj.TaxiID, len(tl.Days))
		for j, d := range tl.Days {
			m[d] = tl.Taxis[j] // already sorted by the index encoder
		}
		p.starts[i] = m
	}
	p.matched = make([][]bool, len(sources))
	for i := range p.matched {
		p.matched[i] = make([]bool, p.days)
	}
	return p, nil
}

// prob returns max over sources of probability(seg, source): the fraction
// of days on which some trajectory appears both in the source's start
// window and at seg within the query window (Eq. 3.1).
func (p *probe) prob(seg roadnet.SegmentID) (float64, error) {
	p.evaluated++
	nsrc := len(p.starts)
	matched := p.matched
	for i := range matched {
		for d := range matched[i] {
			matched[i][d] = false
		}
	}
	for slot := p.loSlot; slot <= p.hiSlot; slot++ {
		tl, err := p.e.st.TimeListAt(seg, slot)
		if err != nil {
			return 0, err
		}
		for j, d := range tl.Days {
			if int(d) >= p.days {
				continue
			}
			for i := 0; i < nsrc; i++ {
				if matched[i][d] {
					continue
				}
				if intersectSorted(p.starts[i][d], tl.Taxis[j]) {
					matched[i][d] = true
				}
			}
		}
	}
	best := 0.0
	for i := 0; i < nsrc; i++ {
		n := 0
		for _, ok := range matched[i] {
			if ok {
				n++
			}
		}
		if pr := float64(n) / float64(p.days); pr > best {
			best = pr
		}
	}
	return best, nil
}

// intersectSorted reports whether two ascending TaxiID slices share an
// element.
func intersectSorted(a, b []traj.TaxiID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
