// Package core implements the spatio-temporal reachability query
// processing of the thesis (§3.3): the exhaustive-search baseline (ES),
// the single-location maximum/minimum bounding region search (SQMB,
// Algorithm 1), the trace back search (TBS, Algorithm 2), and the
// multi-location bounding region search (MQMB, Algorithm 3).
//
// A query q = (S, T, L, Prob) asks for every road segment reachable from
// location S within [T, T+L] on at least a Prob fraction of the dataset's
// days, where reachability is witnessed by historical trajectories: a day
// d supports segment r when some trajectory visited the start segment
// during [T, T+Δt] on day d and also visited r during [T, T+L] on day d
// (thesis §3.3.1, Eq. 3.1).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/bitset"
	"streach/internal/conindex"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/xerr"
)

// Every query method takes a context.Context as its first argument and
// checks it at tight checkpoints — between bounding rounds, on every
// Con-Index row materialisation, per verified candidate inside the
// verifyMany worker pool, and per pop of the ES/TBS expansion loops — so
// a cancelled or deadline-expired context aborts an in-flight query
// within one checkpoint interval and returns ctx.Err().

// Query is a single-location ST reachability query (s-query).
type Query struct {
	// Location is the start location S.
	Location geo.Point
	// Start is the time of day T (offset from midnight).
	Start time.Duration
	// Duration is the prediction length L.
	Duration time.Duration
	// Prob is the required reachability probability in (0, 1].
	Prob float64
}

// MultiQuery is a multi-location ST reachability query (m-query).
type MultiQuery struct {
	Locations []geo.Point
	Start     time.Duration
	Duration  time.Duration
	Prob      float64
}

// Metrics reports the cost of answering one query.
type Metrics struct {
	// Elapsed is the wall-clock processing time.
	Elapsed time.Duration
	// Evaluated counts segments whose reachability probability was
	// verified against the on-disk time lists.
	Evaluated int
	// IO is the buffer-pool activity attributed to the query.
	IO storage.IOStats
	// TLCacheHits and TLCacheMisses count decoded time-list cache
	// activity attributed to the query: hits skipped the buffer pool and
	// blob decoding entirely. Under concurrent queries the counters are
	// shared, so per-query attribution is approximate (same as IO).
	TLCacheHits, TLCacheMisses int64
	// BoundNS and VerifyNS split Elapsed into the two query phases:
	// bounding-region search (Con-Index row unions) and verification
	// (TBS probing of the time lists). Zero for ES, which has no
	// bounding phase.
	BoundNS, VerifyNS int64
	// ConHits and ConMaterialised count Con-Index adjacency-row activity
	// attributed to the query: hits were served from materialised rows,
	// materialised rows ran a travel-time Dijkstra at query time (the
	// cold-start cost the persisted adjacency blob eliminates). Shared
	// counters; per-query attribution is approximate under concurrency.
	ConHits, ConMaterialised int64
	// MaxRegion and MinRegion are the bounding-region sizes (SQMB/MQMB
	// only; zero for ES).
	MaxRegion, MinRegion int
	// ResultSegments is the size of the Prob-reachable region.
	ResultSegments int
	// RoadKm is the total length of the result's road segments.
	RoadKm float64
}

// Result is the answer to a reachability query.
type Result struct {
	// Starts holds the snapped start segment(s).
	Starts []roadnet.SegmentID
	// Segments is the Prob-reachable region, ascending by ID.
	Segments []roadnet.SegmentID
	// Probability holds the verified reachability probability of result
	// segments. Segments admitted without verification (the minimum
	// bounding region, EarlyStop interior) have no entry.
	Probability map[roadnet.SegmentID]float64
	// Metrics is the query cost breakdown.
	Metrics Metrics
}

// Contains reports whether the result region includes seg.
func (r *Result) Contains(seg roadnet.SegmentID) bool {
	i := sort.Search(len(r.Segments), func(i int) bool { return r.Segments[i] >= seg })
	return i < len(r.Segments) && r.Segments[i] == seg
}

// Options tune the engine; the zero value is the default configuration
// (verify between the bounding regions, admit the minimum region
// unverified).
type Options struct {
	// VerifyAll makes TBS verify every segment in the maximum bounding
	// region, including the minimum region. Slower, but the result is
	// exactly {r in Bmax : probability(r, r0) >= Prob}. Used by
	// ablations and correctness tests.
	VerifyAll bool
	// EarlyStop enables the thesis's literal Algorithm 2 queue: branches
	// stop at qualifying segments and the interior the failing wave never
	// reaches is admitted unverified. Fastest, over-approximates on
	// sparse data.
	EarlyStop bool
	// NoVisitedSet disables the TBS visited-set deduplication (thesis
	// §3.3.1's r* example); applies to the EarlyStop wave. Ablation
	// only: the search is then bounded by a pop budget to guarantee
	// termination.
	NoVisitedSet bool
	// NoOverlapFilter disables MQMB's overlap elimination (Algorithm 3
	// lines 7–10). Ablation only.
	NoOverlapFilter bool
	// VerifyWorkers bounds the worker pool that verifies candidate
	// segments in parallel during TBS (probes are read-only once the
	// start sets are materialized). 0 uses GOMAXPROCS; 1 forces the
	// serial path.
	VerifyWorkers int
}

// RowSource supplies Con-Index adjacency rows to a plan's bounding
// phase. The default source is a batch-scoped pin over the engine's own
// Con-Index (conindex.Pin implements the interface); a sharded cluster
// installs a routing source that resolves each segment's row through the
// slice of the shard owning it, which is how one logical bounding-region
// search scatters across partitioned Con-Index slices without the
// algorithms knowing.
type RowSource interface {
	FarRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error)
	NearRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error)
	FarReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error)
	NearReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error)
	Stats() conindex.PinStats
}

// Engine answers reachability queries over one indexed dataset.
type Engine struct {
	net  *roadnet.Network
	st   *stindex.Index
	con  *conindex.Index
	opts Options
	// rows, when set, overrides the per-plan RowSource factory (the
	// default is a fresh conindex.Pin per plan). Installed by the shard
	// cluster's planner view.
	rows func() RowSource
	// scratch pools bounding-region and bitset working state so batch
	// execution stops allocating two network-sized regions per query. A
	// pointer, so the cheap WithOptions views share one pool.
	scratch *engineScratch
}

// engineScratch holds the pooled per-query working state. All pooled
// values are sized for the engine's network. The get/put counters exist
// for leak accounting: outside an in-flight query every get must have
// been matched by a put, including on error, panic-recovery, and
// cancellation paths — ScratchStats exposes the balance to tests.
type engineScratch struct {
	regions sync.Pool // *region
	bitsets sync.Pool // *bitsetBox

	regionGets atomic.Int64
	regionPuts atomic.Int64
	bitsetGets atomic.Int64
	bitsetPuts atomic.Int64
}

// ScratchStats is a point-in-time snapshot of the scratch pool's get/put
// counters. With no query in flight, an imbalance means a pooled region
// or bitset leaked on some exit path.
type ScratchStats struct {
	RegionGets, RegionPuts int64
	BitsetGets, BitsetPuts int64
}

// Balanced reports whether every checkout has been returned.
func (s ScratchStats) Balanced() bool {
	return s.RegionGets == s.RegionPuts && s.BitsetGets == s.BitsetPuts
}

// ScratchStats snapshots the engine's scratch-pool counters. Engines
// derived via WithOptions/WithRowSource share one pool and therefore one
// set of counters.
func (e *Engine) ScratchStats() ScratchStats {
	return ScratchStats{
		RegionGets: e.scratch.regionGets.Load(),
		RegionPuts: e.scratch.regionPuts.Load(),
		BitsetGets: e.scratch.bitsetGets.Load(),
		BitsetPuts: e.scratch.bitsetPuts.Load(),
	}
}

// bitsetBox wraps a pooled bitset behind a pointer so Put does not box a
// slice header into an interface allocation on every release.
type bitsetBox struct {
	bits bitset.Set
}

// NewEngine wires the indexes together. The ST-Index and Con-Index must
// have been built over the same network and with the same Δt.
func NewEngine(st *stindex.Index, con *conindex.Index, opts Options) (*Engine, error) {
	if st == nil || con == nil {
		return nil, fmt.Errorf("core: both indexes are required")
	}
	if st.SlotSeconds() != con.SlotSeconds() {
		return nil, fmt.Errorf("core: index granularity mismatch: ST-Index %ds, Con-Index %ds",
			st.SlotSeconds(), con.SlotSeconds())
	}
	return &Engine{net: st.Network(), st: st, con: con, opts: opts, scratch: &engineScratch{}}, nil
}

// getRegion checks a reset region out of the pool.
func (e *Engine) getRegion() *region {
	e.scratch.regionGets.Add(1)
	if v := e.scratch.regions.Get(); v != nil {
		r := v.(*region)
		if len(r.round) == e.net.NumSegments() {
			r.reset()
			return r
		}
	}
	return newRegion(e.net.NumSegments())
}

// putRegion returns a region to the pool. The caller must not retain the
// region or any view of its segs slice.
func (e *Engine) putRegion(r *region) {
	if r != nil {
		e.scratch.regionPuts.Add(1)
		e.scratch.regions.Put(r)
	}
}

// getBitset checks a zeroed full-network bitset out of the pool.
func (e *Engine) getBitset() *bitsetBox {
	e.scratch.bitsetGets.Add(1)
	if v := e.scratch.bitsets.Get(); v != nil {
		b := v.(*bitsetBox)
		if len(b.bits)*64 >= e.net.NumSegments() {
			clear(b.bits)
			return b
		}
	}
	return &bitsetBox{bits: bitset.New(e.net.NumSegments())}
}

func (e *Engine) putBitset(b *bitsetBox) {
	if b != nil {
		e.scratch.bitsetPuts.Add(1)
		e.scratch.bitsets.Put(b)
	}
}

// Network returns the engine's road network.
func (e *Engine) Network() *roadnet.Network { return e.net }

// Options returns the engine's build-time options.
func (e *Engine) Options() Options { return e.opts }

// IndexEpoch reports the ST-Index epoch the engine reads from, bumped
// once per delta compaction. Reads are epoch-pinned without any engine
// cooperation: every query snapshots one immutable handle table and the
// blob file is append-only, so a compaction installing a new epoch never
// blocks — or is blocked by — an in-flight query, which simply finishes
// on the epoch it started with.
func (e *Engine) IndexEpoch() uint64 { return e.st.Epoch() }

// IndexDataVersion reports the ST-Index data version, bumped on every
// live delta append and every compaction. Anything caching query results
// across requests must fold it into its key.
func (e *Engine) IndexDataVersion() uint64 { return e.st.DataVersion() }

// WithOptions returns an engine view over the same indexes with opts in
// place of the build-time options. The copy is cheap (the indexes and
// their caches are shared), which is how the facade applies per-query
// option overrides without rebuilding anything.
func (e *Engine) WithOptions(opts Options) *Engine {
	ne := *e
	ne.opts = opts
	return &ne
}

// WithRowSource returns an engine view whose plans resolve Con-Index
// adjacency rows through sources built by factory instead of a plain pin
// — the hook a shard cluster uses to scatter the bounding phase across
// shard-local Con-Index slices.
func (e *Engine) WithRowSource(factory func() RowSource) *Engine {
	ne := *e
	ne.rows = factory
	return &ne
}

// newRowSource builds the per-plan row source.
func (e *Engine) newRowSource() RowSource {
	if e.rows != nil {
		return e.rows()
	}
	return e.con.NewPin()
}

// STIndex returns the engine's spatio-temporal index.
func (e *Engine) STIndex() *stindex.Index { return e.st }

// ConIndex returns the engine's connection index.
func (e *Engine) ConIndex() *conindex.Index { return e.con }

func (e *Engine) validate(start, dur time.Duration, prob float64) error {
	if err := validateProb(prob); err != nil {
		return err
	}
	return validateWindow(start, dur)
}

func validateProb(prob float64) error {
	if prob <= 0 || prob > 1 {
		return xerr.Markf(xerr.KindInvalid, "core: Prob must be in (0, 1], got %v", prob)
	}
	return nil
}

// ValidateProb reports whether prob is a legal reachability threshold,
// with the same error the query methods return — callers that separate
// plan construction from threshold resolution use it to keep validation
// order (probability before window) identical to the one-shot methods.
func ValidateProb(prob float64) error { return validateProb(prob) }

func validateWindow(start, dur time.Duration) error {
	if dur <= 0 {
		return xerr.Markf(xerr.KindInvalid, "core: duration must be positive, got %v", dur)
	}
	if start < 0 || start >= 24*time.Hour {
		return xerr.Markf(xerr.KindInvalid, "core: start must be a time of day, got %v", start)
	}
	return nil
}

// slotWindow returns the slot range [lo, hi] covering [T, T+L], capped at
// the end of the day.
func (e *Engine) slotWindow(start, dur time.Duration) (lo, hi int) {
	slotSec := e.st.SlotSeconds()
	lo = int(start.Seconds()) / slotSec
	hi = int((start + dur).Seconds()) / slotSec
	if hi >= e.st.NumSlots() {
		hi = e.st.NumSlots() - 1
	}
	return lo, hi
}

// finish fills the derived metrics fields and sorts the result.
func (e *Engine) finish(res *Result, began time.Time, io0 storage.IOStats, tl0 stindex.CacheStats, con0 conindex.Stats) {
	sort.Slice(res.Segments, func(i, j int) bool { return res.Segments[i] < res.Segments[j] })
	var km float64
	for _, s := range res.Segments {
		km += e.net.Segment(s).Length / 1000
	}
	res.Metrics.RoadKm = km
	res.Metrics.ResultSegments = len(res.Segments)
	res.Metrics.IO = e.st.Pool().Stats().Sub(io0)
	tl := e.st.CacheStats().Sub(tl0)
	res.Metrics.TLCacheHits = tl.Hits
	res.Metrics.TLCacheMisses = tl.Misses
	con := e.con.Stats().Sub(con0)
	res.Metrics.ConHits = con.Hits
	res.Metrics.ConMaterialised = con.Materialised
	res.Metrics.Elapsed = time.Since(began)
}

// probe verifies reachability probabilities against the ST-Index time
// lists. The per-day start sets of each query source are materialized
// once as taxi bitsets; after that every prob call is read-only, so any
// number of workers may verify candidate segments concurrently, each with
// its own scratch (worker()).
type probe struct {
	e *Engine
	// starts[i][d] is the taxi bitset seen at source i's segment during
	// the start slot on day d (nil when the day has no traffic).
	starts    [][][]uint64
	loSlot    int
	hiSlot    int
	days      int
	evaluated atomic.Int64
}

// newProbe reads each source's start-slot time list once.
func (e *Engine) newProbe(ctx context.Context, sources []roadnet.SegmentID, startSlot, loSlot, hiSlot int) (*probe, error) {
	p := &probe{
		e:      e,
		starts: make([][][]uint64, len(sources)),
		loSlot: loSlot,
		hiSlot: hiSlot,
		days:   e.st.Days(),
	}
	for i, src := range sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bits, err := e.st.TimeListBitsAt(src, startSlot)
		if err != nil {
			return nil, err
		}
		byDay := make([][]uint64, p.days)
		for j, d := range bits.Days {
			if int(d) < p.days {
				byDay[d] = bits.Bits[j]
			}
		}
		p.starts[i] = byDay
	}
	return p, nil
}

// probeWorker carries one verifier's scratch. Workers are cheap; create
// one per goroutine that calls prob.
type probeWorker struct {
	p *probe
	// st is the index the worker reads candidate time lists from: the
	// planning engine's by default, a shard's slice when the worker
	// verifies that shard's subset of the candidates.
	st *stindex.Index
	// matched[source][day] is per-call scratch.
	matched [][]bool
	// lists is the reusable time-list fetch buffer.
	lists []*stindex.TimeListBits
}

// worker returns a fresh verifier over the probe's shared start sets.
func (p *probe) worker() *probeWorker {
	return p.workerFor(p.e.st)
}

// workerFor returns a verifier that reads candidate time lists from st —
// a shard's ST-Index slice during scatter verification. The probe's
// materialised start sets are shared either way, which is the replicated
// boundary metadata a shard needs to verify without owning the start
// segments.
func (p *probe) workerFor(st *stindex.Index) *probeWorker {
	w := &probeWorker{p: p, st: st, matched: make([][]bool, len(p.starts))}
	for i := range w.matched {
		w.matched[i] = make([]bool, p.days)
	}
	return w
}

// prob returns max over sources of probability(seg, source): the fraction
// of days on which some trajectory appears both in the source's start
// window and at seg within the query window (Eq. 3.1). The per-day taxi
// intersections are word-AND loops over bitsets, and the window's time
// lists are fetched in one batch.
func (w *probeWorker) prob(seg roadnet.SegmentID) (float64, error) {
	p := w.p
	p.evaluated.Add(1)
	nsrc := len(p.starts)
	for i := range w.matched {
		for d := range w.matched[i] {
			w.matched[i][d] = false
		}
	}
	lists, err := w.st.TimeListsRange(seg, p.loSlot, p.hiSlot, w.lists[:0])
	if err != nil {
		return 0, err
	}
	w.lists = lists[:0]
	for _, bits := range lists {
		for j, d := range bits.Days {
			if int(d) >= p.days {
				continue
			}
			for i := 0; i < nsrc; i++ {
				if w.matched[i][d] {
					continue
				}
				if stindex.BitsIntersect(p.starts[i][d], bits.Bits[j]) {
					w.matched[i][d] = true
				}
			}
		}
	}
	best := 0.0
	for i := 0; i < nsrc; i++ {
		n := 0
		for _, ok := range w.matched[i] {
			if ok {
				n++
			}
		}
		if pr := float64(n) / float64(p.days); pr > best {
			best = pr
		}
	}
	return best, nil
}

// verifyWorkers resolves the configured verification parallelism.
func (e *Engine) verifyWorkers() int {
	if e.opts.VerifyWorkers > 0 {
		return e.opts.VerifyWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelVerifyThreshold is the candidate count below which spawning
// workers costs more than it saves.
const parallelVerifyThreshold = 16

// verifyMany evaluates prob for every segment with a bounded worker pool
// and returns the probabilities aligned with segs. newWorker must return
// an independent prob function per goroutine (workers share only
// read-only state). Results are deterministic: out[i] depends only on
// segs[i]. Both the serial path and every pool worker check ctx before
// each candidate, so cancellation aborts the verification phase within
// one probe.
func (e *Engine) verifyMany(ctx context.Context, segs []roadnet.SegmentID, newWorker func() func(roadnet.SegmentID) (float64, error)) ([]float64, error) {
	out := make([]float64, len(segs))
	if len(segs) == 0 {
		return out, nil
	}
	workers := e.verifyWorkers()
	if workers > len(segs) {
		workers = len(segs)
	}
	if workers <= 1 || len(segs) < parallelVerifyThreshold {
		prob := newWorker()
		for i, s := range segs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			p, err := prob(s)
			if err != nil {
				return nil, err
			}
			out[i] = p
		}
		return out, nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		errOnce sync.Once
		firstEr error
		wg      sync.WaitGroup
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prob := newWorker()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(segs) || failed.Load() {
					return
				}
				err := ctx.Err()
				var p float64
				if err == nil {
					p, err = prob(segs[i])
				}
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
				out[i] = p
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil, firstEr
	}
	return out, nil
}
