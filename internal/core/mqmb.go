package core

import (
	"context"
	"time"

	"streach/internal/bitset"
	"streach/internal/conindex"
	"streach/internal/roadnet"
)

// MQMB answers a multi-location ST reachability query (m-query) with the
// m-query maximum bounding region search (Algorithm 3) followed by one
// trace back search over the unified region. Compared with running SQMB
// once per location, segments in overlapping bounding regions are
// attributed to their nearest start location and expanded only once.
// Like SQMB it is a single-use shared plan (see SharedPlan).
func (e *Engine) MQMB(ctx context.Context, q MultiQuery) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	p, err := e.PlanMulti(ctx, q)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ResultAt(ctx, q.Prob)
}

// SQuerySequential answers an m-query the naive way (§3.3.2): one SQMB+TBS
// run per location, results unioned. It is the baseline MQMB is compared
// against in Fig 4.8.
func (e *Engine) SQuerySequential(ctx context.Context, q MultiQuery) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	p, err := e.PlanMultiSequential(ctx, q)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ResultAt(ctx, q.Prob)
}

// unifiedRegionPin grows the m-query bounding region (Algorithm 3). Each
// round ORs the Con-Index rows of every region segment into a scratch
// bitset, diffs out the existing region to get the candidate set B, then
// filters candidates through the overlap rule: a candidate b survives
// only when it appears in the row of its nearest region segment rs
// (line 8's rs = argmin dis(r', b)), so duplicated influence inside
// overlapping regions is eliminated. Adjacency rows resolve through a
// batch-scoped pin: the overlap rule re-reads the row of a candidate's
// nearest region segment, so the pin's local memo saves one shared-table
// round-trip per candidate even for a single query.
func (e *Engine) unifiedRegionPin(ctx context.Context, rows RowSource, starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) (*region, error) {
	n := e.net.NumSegments()
	reg := e.getRegion()
	grown := false
	defer func() {
		if !grown {
			e.putRegion(reg)
		}
	}()
	for _, r := range starts {
		reg.add(r, 0)
	}
	k := e.rounds(dur)
	slotSec := e.st.SlotSeconds()
	rowOf := func(r roadnet.SegmentID, slot int) (conindex.Row, error) {
		if far {
			return rows.FarRow(ctx, r, slot)
		}
		return rows.NearRow(ctx, r, slot)
	}
	nb := e.getBitset()
	defer e.putBitset(nb)
	next := nb.bits
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if reg.size() == n {
			break
		}
		slot := (int(startOfDay.Seconds()) + i*slotSec) / slotSec
		snapshot := append([]roadnet.SegmentID(nil), reg.segs...)
		copy(next, reg.bits)
		for _, r := range snapshot {
			row, err := rowOf(r, slot)
			if err != nil {
				return nil, err
			}
			row.OrInto(next)
		}
		if e.opts.NoOverlapFilter {
			reg.adopt(next, i+1)
			continue
		}
		// Candidate set B = next \ region (word diff).
		var cands []roadnet.SegmentID
		bitset.ForEachDiff(next, reg.bits, func(b int) {
			cands = append(cands, roadnet.SegmentID(b))
		})
		if len(cands) == 0 {
			continue
		}
		// Overlap elimination: nearest region segment per candidate via
		// one multi-source expansion, then the membership test b ∈ F(rs).
		nearest := e.nearestAttribution(snapshot, cands)
		for _, b := range cands {
			rs, ok := nearest[b]
			if !ok {
				continue // not reached by the bounded expansion: drop
			}
			row, err := rowOf(rs, slot)
			if err != nil {
				return nil, err
			}
			if row.Has(b) {
				reg.add(b, i+1)
			}
		}
	}
	grown = true
	return reg, nil
}

// nearestAttribution finds, for every candidate, the nearest source
// segment by network distance (thesis: "employing shortest path
// techniques"). One multi-source Dijkstra covers all candidates.
func (e *Engine) nearestAttribution(sources, candidates []roadnet.SegmentID) map[roadnet.SegmentID]roadnet.SegmentID {
	cb := e.getBitset()
	defer e.putBitset(cb)
	isCand := cb.bits
	for _, b := range candidates {
		isCand.Add(int(b))
	}
	// Bound the expansion by the furthest plausible candidate distance:
	// one Δt at a generous speed, plus slack.
	budget := float64(e.st.SlotSeconds())*35 + 3000
	out := make(map[roadnet.SegmentID]roadnet.SegmentID, len(candidates))
	remaining := len(candidates)
	e.net.ExpandMulti(sources, budget, e.net.DistanceWeight(), func(id roadnet.SegmentID, cost float64, srcIdx int) bool {
		if isCand.Has(int(id)) {
			if _, done := out[id]; !done {
				out[id] = sources[srcIdx]
				remaining--
			}
		}
		return remaining > 0
	})
	return out
}
