package core

import (
	"context"
	"fmt"
	"time"

	"streach/internal/bitset"
	"streach/internal/conindex"
	"streach/internal/roadnet"
)

// MQMB answers a multi-location ST reachability query (m-query) with the
// m-query maximum bounding region search (Algorithm 3) followed by one
// trace back search over the unified region. Compared with running SQMB
// once per location, segments in overlapping bounding regions are
// attributed to their nearest start location and expanded only once.
func (e *Engine) MQMB(ctx context.Context, q MultiQuery) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	if len(q.Locations) == 0 {
		return nil, fmt.Errorf("core: m-query needs at least one location")
	}
	began := now()
	io0 := e.st.Pool().Stats()
	tl0 := e.st.CacheStats()
	con0 := e.con.Stats()

	starts := make([]roadnet.SegmentID, 0, len(q.Locations))
	seen := map[roadnet.SegmentID]bool{}
	for _, loc := range q.Locations {
		r0, ok := e.st.SnapLocation(loc)
		if !ok {
			return nil, fmt.Errorf("core: no road segment near %v", loc)
		}
		if !seen[r0] {
			seen[r0] = true
			starts = append(starts, r0)
		}
	}

	tBound := now()
	maxReg, err := e.unifiedRegion(ctx, starts, q.Start, q.Duration, true)
	if err != nil {
		return nil, err
	}
	minReg, err := e.unifiedRegion(ctx, starts, q.Start, q.Duration, false)
	if err != nil {
		return nil, err
	}
	boundNS := now().Sub(tBound).Nanoseconds()

	tVerify := now()
	res, err := e.traceBack(ctx, starts, maxReg, minReg, q.Start, q.Duration, q.Prob)
	if err != nil {
		return nil, err
	}
	res.Metrics.VerifyNS = now().Sub(tVerify).Nanoseconds()
	res.Metrics.BoundNS = boundNS
	res.Metrics.MaxRegion = maxReg.size()
	res.Metrics.MinRegion = minReg.size()
	e.finish(res, began, io0, tl0, con0)
	return res, nil
}

// SQuerySequential answers an m-query the naive way (§3.3.2): one SQMB+TBS
// run per location, results unioned. It is the baseline MQMB is compared
// against in Fig 4.8.
func (e *Engine) SQuerySequential(ctx context.Context, q MultiQuery) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	if len(q.Locations) == 0 {
		return nil, fmt.Errorf("core: m-query needs at least one location")
	}
	began := now()
	io0 := e.st.Pool().Stats()
	tl0 := e.st.CacheStats()
	con0 := e.con.Stats()

	union := map[roadnet.SegmentID]bool{}
	res := &Result{}
	for _, loc := range q.Locations {
		one, err := e.SQMB(ctx, Query{Location: loc, Start: q.Start, Duration: q.Duration, Prob: q.Prob})
		if err != nil {
			return nil, err
		}
		res.Starts = append(res.Starts, one.Starts...)
		res.Metrics.Evaluated += one.Metrics.Evaluated
		res.Metrics.MaxRegion += one.Metrics.MaxRegion
		res.Metrics.MinRegion += one.Metrics.MinRegion
		res.Metrics.BoundNS += one.Metrics.BoundNS
		res.Metrics.VerifyNS += one.Metrics.VerifyNS
		for _, s := range one.Segments {
			union[s] = true
		}
	}
	for s := range union {
		res.Segments = append(res.Segments, s)
	}
	e.finish(res, began, io0, tl0, con0)
	return res, nil
}

// unifiedRegion grows the m-query bounding region (Algorithm 3). Each
// round ORs the Con-Index rows of every region segment into a scratch
// bitset, diffs out the existing region to get the candidate set B, then
// filters candidates through the overlap rule: a candidate b survives
// only when it appears in the row of its nearest region segment rs
// (line 8's rs = argmin dis(r', b)), so duplicated influence inside
// overlapping regions is eliminated.
func (e *Engine) unifiedRegion(ctx context.Context, starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) (*region, error) {
	n := e.net.NumSegments()
	reg := newRegion(n)
	for _, r := range starts {
		reg.add(r, 0)
	}
	k := e.rounds(dur)
	slotSec := e.st.SlotSeconds()
	rowOf := func(r roadnet.SegmentID, slot int) (conindex.Row, error) {
		if far {
			return e.con.FarRowCtx(ctx, r, slot)
		}
		return e.con.NearRowCtx(ctx, r, slot)
	}
	next := bitset.New(n)
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if reg.size() == n {
			break
		}
		slot := (int(startOfDay.Seconds()) + i*slotSec) / slotSec
		snapshot := append([]roadnet.SegmentID(nil), reg.segs...)
		copy(next, reg.bits)
		for _, r := range snapshot {
			row, err := rowOf(r, slot)
			if err != nil {
				return nil, err
			}
			row.OrInto(next)
		}
		if e.opts.NoOverlapFilter {
			reg.adopt(next, i+1)
			continue
		}
		// Candidate set B = next \ region (word diff).
		var cands []roadnet.SegmentID
		bitset.ForEachDiff(next, reg.bits, func(b int) {
			cands = append(cands, roadnet.SegmentID(b))
		})
		if len(cands) == 0 {
			continue
		}
		// Overlap elimination: nearest region segment per candidate via
		// one multi-source expansion, then the membership test b ∈ F(rs).
		nearest := e.nearestAttribution(snapshot, cands)
		for _, b := range cands {
			rs, ok := nearest[b]
			if !ok {
				continue // not reached by the bounded expansion: drop
			}
			row, err := rowOf(rs, slot)
			if err != nil {
				return nil, err
			}
			if row.Has(b) {
				reg.add(b, i+1)
			}
		}
	}
	return reg, nil
}

// nearestAttribution finds, for every candidate, the nearest source
// segment by network distance (thesis: "employing shortest path
// techniques"). One multi-source Dijkstra covers all candidates.
func (e *Engine) nearestAttribution(sources, candidates []roadnet.SegmentID) map[roadnet.SegmentID]roadnet.SegmentID {
	isCand := bitset.New(e.net.NumSegments())
	for _, b := range candidates {
		isCand.Add(int(b))
	}
	// Bound the expansion by the furthest plausible candidate distance:
	// one Δt at a generous speed, plus slack.
	budget := float64(e.st.SlotSeconds())*35 + 3000
	out := make(map[roadnet.SegmentID]roadnet.SegmentID, len(candidates))
	remaining := len(candidates)
	e.net.ExpandMulti(sources, budget, e.net.DistanceWeight(), func(id roadnet.SegmentID, cost float64, srcIdx int) bool {
		if isCand.Has(int(id)) {
			if _, done := out[id]; !done {
				out[id] = sources[srcIdx]
				remaining--
			}
		}
		return remaining > 0
	})
	return out
}
