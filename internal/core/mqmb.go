package core

import (
	"fmt"
	"time"

	"streach/internal/roadnet"
)

// MQMB answers a multi-location ST reachability query (m-query) with the
// m-query maximum bounding region search (Algorithm 3) followed by one
// trace back search over the unified region. Compared with running SQMB
// once per location, segments in overlapping bounding regions are
// attributed to their nearest start location and expanded only once.
func (e *Engine) MQMB(q MultiQuery) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	if len(q.Locations) == 0 {
		return nil, fmt.Errorf("core: m-query needs at least one location")
	}
	began := now()
	io0 := e.st.Pool().Stats()
	tl0 := e.st.CacheStats()

	starts := make([]roadnet.SegmentID, 0, len(q.Locations))
	seen := map[roadnet.SegmentID]bool{}
	for _, loc := range q.Locations {
		r0, ok := e.st.SnapLocation(loc)
		if !ok {
			return nil, fmt.Errorf("core: no road segment near %v", loc)
		}
		if !seen[r0] {
			seen[r0] = true
			starts = append(starts, r0)
		}
	}

	maxReg := e.unifiedRegion(starts, q.Start, q.Duration, true)
	minReg := e.unifiedRegion(starts, q.Start, q.Duration, false)

	res, err := e.traceBack(starts, maxReg, minReg, q.Start, q.Duration, q.Prob)
	if err != nil {
		return nil, err
	}
	res.Metrics.MaxRegion = maxReg.size()
	res.Metrics.MinRegion = minReg.size()
	e.finish(res, began, io0, tl0)
	return res, nil
}

// SQuerySequential answers an m-query the naive way (§3.3.2): one SQMB+TBS
// run per location, results unioned. It is the baseline MQMB is compared
// against in Fig 4.8.
func (e *Engine) SQuerySequential(q MultiQuery) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	if len(q.Locations) == 0 {
		return nil, fmt.Errorf("core: m-query needs at least one location")
	}
	began := now()
	io0 := e.st.Pool().Stats()
	tl0 := e.st.CacheStats()

	union := map[roadnet.SegmentID]bool{}
	res := &Result{}
	for _, loc := range q.Locations {
		one, err := e.SQMB(Query{Location: loc, Start: q.Start, Duration: q.Duration, Prob: q.Prob})
		if err != nil {
			return nil, err
		}
		res.Starts = append(res.Starts, one.Starts...)
		res.Metrics.Evaluated += one.Metrics.Evaluated
		res.Metrics.MaxRegion += one.Metrics.MaxRegion
		res.Metrics.MinRegion += one.Metrics.MinRegion
		for _, s := range one.Segments {
			union[s] = true
		}
	}
	for s := range union {
		res.Segments = append(res.Segments, s)
	}
	e.finish(res, began, io0, tl0)
	return res, nil
}

// unifiedRegion grows the m-query bounding region (Algorithm 3). Each
// round unions the Con-Index lists of every region segment, then filters
// candidates through the overlap rule: a candidate b survives only when
// it appears in the list of its nearest region segment rs (line 8's
// rs = argmin dis(r', b)), so duplicated influence inside overlapping
// regions is eliminated.
func (e *Engine) unifiedRegion(starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) *region {
	reg := newRegion(e.net.NumSegments())
	for _, r := range starts {
		reg.add(r, 0)
	}
	k := e.rounds(dur)
	slotSec := e.st.SlotSeconds()
	listOf := func(r roadnet.SegmentID, slot int) []roadnet.SegmentID {
		if far {
			return e.con.Far(r, slot)
		}
		return e.con.Near(r, slot)
	}
	for i := 0; i < k; i++ {
		if reg.size() == e.net.NumSegments() {
			break
		}
		slot := (int(startOfDay.Seconds()) + i*slotSec) / slotSec
		snapshot := append([]roadnet.SegmentID(nil), reg.segs...)
		// Candidate set B: union of the lists of every region segment,
		// remembering which region segments produced each candidate.
		producers := map[roadnet.SegmentID][]roadnet.SegmentID{}
		for _, r := range snapshot {
			for _, b := range listOf(r, slot) {
				if reg.has(b) {
					continue
				}
				producers[b] = append(producers[b], r)
			}
		}
		if len(producers) == 0 {
			continue
		}
		if e.opts.NoOverlapFilter {
			for b := range producers {
				reg.add(b, i+1)
			}
			continue
		}
		// Overlap elimination: nearest region segment per candidate via
		// one multi-source expansion, then the membership test b ∈ F(rs).
		nearest := e.nearestAttribution(snapshot, producers)
		for b, prods := range producers {
			rs, ok := nearest[b]
			if !ok {
				continue // not reached by the bounded expansion: drop
			}
			for _, p := range prods {
				if p == rs {
					reg.add(b, i+1)
					break
				}
			}
		}
	}
	return reg
}

// nearestAttribution finds, for every candidate, the nearest source
// segment by network distance (thesis: "employing shortest path
// techniques"). One multi-source Dijkstra covers all candidates.
func (e *Engine) nearestAttribution(sources []roadnet.SegmentID, candidates map[roadnet.SegmentID][]roadnet.SegmentID) map[roadnet.SegmentID]roadnet.SegmentID {
	// Bound the expansion by the furthest plausible candidate distance:
	// one Δt at a generous speed, plus slack.
	budget := float64(e.st.SlotSeconds())*35 + 3000
	out := make(map[roadnet.SegmentID]roadnet.SegmentID, len(candidates))
	remaining := len(candidates)
	e.net.ExpandMulti(sources, budget, e.net.DistanceWeight(), func(id roadnet.SegmentID, cost float64, srcIdx int) bool {
		if _, isCand := candidates[id]; isCand {
			if _, done := out[id]; !done {
				out[id] = sources[srcIdx]
				remaining--
			}
		}
		return remaining > 0
	})
	return out
}
