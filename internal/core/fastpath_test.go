package core

import (
	"reflect"
	"sort"
	"testing"

	"streach/internal/roadnet"
)

// TestResultsStableUnderCache runs each query twice: the first run
// populates the decoded time-list cache, the second is served from it.
// Results must be bit-identical either way, and the warm run must
// actually register cache hits.
func TestResultsStableUnderCache(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{VerifyAll: true})
	q := baseQuery(f)

	sqCold, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	sqWarm, err := e.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sqCold.Segments, sqWarm.Segments) {
		t.Fatalf("SQMB result changed under the cache: %d vs %d segments",
			len(sqCold.Segments), len(sqWarm.Segments))
	}
	if !reflect.DeepEqual(sqCold.Probability, sqWarm.Probability) {
		t.Fatal("SQMB probabilities changed under the cache")
	}
	if sqWarm.Metrics.TLCacheHits == 0 {
		t.Fatal("warm SQMB run should hit the decoded cache")
	}

	esCold, err := e.ES(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	esWarm, err := e.ES(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(esCold.Segments, esWarm.Segments) {
		t.Fatal("ES result changed under the cache")
	}
	// SQMB-vs-ES equality under the cache: every verify-all SQMB result
	// within the ES worst-case radius must carry the same verified
	// probability in both (both probe the same time lists).
	esSet := map[int32]float64{}
	for s, p := range esWarm.Probability {
		esSet[int32(s)] = p
	}
	for s, p := range sqWarm.Probability {
		if ep, ok := esSet[int32(s)]; ok && ep != p {
			t.Fatalf("segment %d: SQMB probability %v != ES probability %v", s, p, ep)
		}
	}
}

// TestParallelVerifyMatchesSerial pins the parallel TBS worker pool
// against the serial path: identical segments and probabilities.
func TestParallelVerifyMatchesSerial(t *testing.T) {
	f := getFixture(t)
	q := baseQuery(f)
	for _, opts := range []Options{{}, {VerifyAll: true}} {
		serialOpts, parOpts := opts, opts
		serialOpts.VerifyWorkers = 1
		parOpts.VerifyWorkers = 8
		serial := newEngine(t, serialOpts)
		par := newEngine(t, parOpts)

		sres, err := serial.SQMB(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := par.SQMB(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sres.Segments, pres.Segments) {
			t.Fatalf("VerifyAll=%v: parallel SQMB %d segments, serial %d",
				opts.VerifyAll, len(pres.Segments), len(sres.Segments))
		}
		if !reflect.DeepEqual(sres.Probability, pres.Probability) {
			t.Fatalf("VerifyAll=%v: parallel probabilities differ from serial", opts.VerifyAll)
		}
		if sres.Metrics.Evaluated != pres.Metrics.Evaluated {
			t.Fatalf("VerifyAll=%v: parallel evaluated %d, serial %d",
				opts.VerifyAll, pres.Metrics.Evaluated, sres.Metrics.Evaluated)
		}

		srev, err := serial.ReverseSQMB(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		prev, err := par.ReverseSQMB(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(srev.Segments, prev.Segments) {
			t.Fatalf("VerifyAll=%v: parallel reverse differs from serial", opts.VerifyAll)
		}
	}
}

// TestProbeWorkersIndependent verifies two workers over one probe do not
// share scratch: interleaved calls return the same values as isolated
// calls.
func TestProbeWorkersIndependent(t *testing.T) {
	f := getFixture(t)
	e := newEngine(t, Options{})
	q := baseQuery(f)
	lo, hi := e.slotWindow(q.Start, q.Duration)
	r0, _ := e.st.SnapLocation(q.Location)
	pr, err := e.newProbe(bg, []roadnet.SegmentID{r0}, lo, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := e.MaxBoundingRegion(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(reg, func(i, j int) bool { return reg[i] < reg[j] })
	if len(reg) > 24 {
		reg = reg[:24]
	}
	w1, w2 := pr.worker(), pr.worker()
	for _, s := range reg {
		a, err := w1.prob(s)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave a different segment on the second worker.
		if _, err := w2.prob(r0); err != nil {
			t.Fatal(err)
		}
		b, err := w2.prob(s)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("segment %d: worker probs differ (%v vs %v)", s, a, b)
		}
	}
}
