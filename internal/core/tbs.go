package core

import (
	"context"
	"sort"
	"time"

	"streach/internal/roadnet"
)

// traceBack implements the Trace Back Search (TBS, Algorithm 2): starting
// from the outer boundary of the maximum bounding region and moving
// inwards, verify each segment's reachability probability against the
// on-disk time lists; the minimum bounding region is admitted to the
// result without verification — the "skip the nearby region of the
// starting location" saving the thesis credits for most of the speedup
// (§4.2.1/§4.2.2).
//
// Three verification policies are supported (Options):
//
//   - default: every segment between the bounding regions is verified,
//     visited exactly once, in outer-to-inner order; the result is the
//     qualifying set plus the unverified minimum region.
//   - EarlyStop: the thesis's aggressive variant — qualifying segments
//     stop their branch, and anything the failing wave never reached is
//     admitted unverified. Fastest, but over-approximates on sparse data.
//   - VerifyAll: everything in the maximum region is verified, including
//     the minimum region. The result is exactly
//     {r in Bmax : probability(r, r0) >= Prob}.
func (e *Engine) traceBack(ctx context.Context, starts []roadnet.SegmentID, maxReg, minReg *region, startOfDay, dur time.Duration, prob float64) (*Result, error) {
	lo, hi := e.slotWindow(startOfDay, dur)
	pr, err := e.newProbe(ctx, starts, lo, lo, hi)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Starts:      append([]roadnet.SegmentID(nil), starts...),
		Probability: map[roadnet.SegmentID]float64{},
	}
	include := make(map[roadnet.SegmentID]bool, maxReg.size())

	// verify runs the bounded worker pool over an ordered candidate list
	// and folds qualifiers into the result (order-independent: each
	// segment's probability depends only on the segment).
	verify := func(order []roadnet.SegmentID) error {
		probs, err := e.verifyMany(ctx, order, func() func(roadnet.SegmentID) (float64, error) {
			return pr.worker().prob
		})
		if err != nil {
			return err
		}
		for i, s := range order {
			if probs[i] >= prob {
				include[s] = true
				res.Probability[s] = probs[i]
			}
		}
		return nil
	}

	switch {
	case e.opts.VerifyAll:
		if err := verify(maxReg.segs); err != nil {
			return nil, err
		}

	case e.opts.EarlyStop:
		if err := e.earlyStopWave(ctx, maxReg, minReg, pr, prob, include, res.Probability); err != nil {
			return nil, err
		}

	default:
		// Verify Bmax \ Bmin outer-to-inner (descending expansion round,
		// the trace back order), admit Bmax ∩ Bmin unverified. Both sets
		// come from word-level bitset ops on the regions.
		order := make([]roadnet.SegmentID, 0, maxReg.size())
		maxReg.splitAgainst(minReg,
			func(s roadnet.SegmentID) { include[s] = true },
			func(s roadnet.SegmentID) { order = append(order, s) })
		sort.Slice(order, func(i, j int) bool {
			ri, rj := maxReg.round[order[i]], maxReg.round[order[j]]
			if ri != rj {
				return ri > rj // outer rounds first
			}
			return order[i] < order[j]
		})
		if err := verify(order); err != nil {
			return nil, err
		}
	}

	for s := range include {
		res.Segments = append(res.Segments, s)
	}
	res.Metrics.Evaluated = int(pr.evaluated.Load())
	return res, nil
}

// earlyStopWave runs the thesis's literal Algorithm 2 queue mechanics:
// seed with the outer boundary, stop branches at qualifying segments,
// expand through failing ones, and admit everything the wave never
// reached (the minimum region and the shielded interior) unverified.
// The wave is inherently sequential — whether a segment is probed depends
// on its neighbours' outcomes — so it runs on a single worker, checking
// ctx before every probe.
func (e *Engine) earlyStopWave(ctx context.Context, maxReg, minReg *region, pr *probe, prob float64, include map[roadnet.SegmentID]bool, probs map[roadnet.SegmentID]float64) error {
	w := pr.worker()
	visited := make(map[roadnet.SegmentID]bool, maxReg.size())
	var queue []roadnet.SegmentID
	for _, s := range maxReg.segs {
		for _, nb := range e.net.Neighbors(s) {
			if !maxReg.has(nb) {
				queue = append(queue, s)
				visited[s] = true
				break
			}
		}
	}
	if len(queue) == 0 {
		// The max region swallowed the whole network: fall back to the
		// last expansion round as the outer boundary.
		maxRound := int16(0)
		for _, s := range maxReg.segs {
			if maxReg.round[s] > maxRound {
				maxRound = maxReg.round[s]
			}
		}
		for _, s := range maxReg.segs {
			if maxReg.round[s] == maxRound {
				queue = append(queue, s)
				visited[s] = true
			}
		}
	}
	// Safety budget for the NoVisitedSet ablation, which could otherwise
	// loop forever.
	budget := 10 * maxReg.size()
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := queue[0]
		queue = queue[1:]
		if e.opts.NoVisitedSet {
			if budget <= 0 {
				break
			}
			budget--
		}
		p, err := w.prob(r)
		if err != nil {
			return err
		}
		if p >= prob {
			include[r] = true
			probs[r] = p
			continue
		}
		for _, nb := range e.net.Neighbors(r) {
			if !maxReg.has(nb) || minReg.has(nb) {
				continue
			}
			if !e.opts.NoVisitedSet {
				if visited[nb] {
					continue
				}
				visited[nb] = true
			}
			queue = append(queue, nb)
		}
	}
	for _, s := range maxReg.segs {
		if !visited[s] {
			include[s] = true
		}
	}
	return nil
}
