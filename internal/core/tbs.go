package core

import (
	"context"

	"streach/internal/roadnet"
)

// The Trace Back Search (TBS, Algorithm 2) starts from the outer boundary
// of the maximum bounding region and moves inwards, verifying each
// segment's reachability probability against the on-disk time lists; the
// minimum bounding region is admitted to the result without verification
// — the "skip the nearby region of the starting location" saving the
// thesis credits for most of the speedup (§4.2.1/§4.2.2).
//
// Three verification policies are supported (Options):
//
//   - default: every segment between the bounding regions is verified,
//     visited exactly once, in outer-to-inner order; the result is the
//     qualifying set plus the unverified minimum region.
//   - EarlyStop: the thesis's literal Algorithm 2 queue (below) — branches
//     stop at qualifying segments and the interior the failing wave never
//     reaches is admitted unverified. Fastest, over-approximates on
//     sparse data.
//   - VerifyAll: everything in the maximum region is verified, including
//     the minimum region. The result is exactly
//     {r in Bmax : probability(r, r0) >= Prob}.
//
// The default and VerifyAll policies are threshold-independent up to the
// final comparison, so they live in SharedPlan (shared.go): candidates
// are ordered and verified once per plan, and each query's threshold is
// a scan over the shared probability slice. Only the EarlyStop wave below
// depends on the threshold — it runs per ResultAt, over memoised
// probabilities.

// earlyStopWave runs the thesis's literal Algorithm 2 queue mechanics:
// seed with the outer boundary, stop branches at qualifying segments,
// expand through failing ones, and admit everything the wave never
// reached (the minimum region and the shielded interior) unverified.
// The wave is inherently sequential — whether a segment is probed depends
// on its neighbours' outcomes — so it runs on a single worker, checking
// ctx before every probe. probFn supplies the per-segment probability
// (a probe worker directly, or a plan's memoised view of one).
func (e *Engine) earlyStopWave(ctx context.Context, maxReg, minReg *region, probFn func(roadnet.SegmentID) (float64, error), prob float64, include map[roadnet.SegmentID]bool, probs map[roadnet.SegmentID]float64) error {
	visited := make(map[roadnet.SegmentID]bool, maxReg.size())
	var queue []roadnet.SegmentID
	for _, s := range maxReg.segs {
		for _, nb := range e.net.Neighbors(s) {
			if !maxReg.has(nb) {
				queue = append(queue, s)
				visited[s] = true
				break
			}
		}
	}
	if len(queue) == 0 {
		// The max region swallowed the whole network: fall back to the
		// last expansion round as the outer boundary.
		maxRound := int16(0)
		for _, s := range maxReg.segs {
			if maxReg.round[s] > maxRound {
				maxRound = maxReg.round[s]
			}
		}
		for _, s := range maxReg.segs {
			if maxReg.round[s] == maxRound {
				queue = append(queue, s)
				visited[s] = true
			}
		}
	}
	// Safety budget for the NoVisitedSet ablation, which could otherwise
	// loop forever.
	budget := 10 * maxReg.size()
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		r := queue[0]
		queue = queue[1:]
		if e.opts.NoVisitedSet {
			if budget <= 0 {
				break
			}
			budget--
		}
		p, err := probFn(r)
		if err != nil {
			return err
		}
		if p >= prob {
			include[r] = true
			probs[r] = p
			continue
		}
		for _, nb := range e.net.Neighbors(r) {
			if !maxReg.has(nb) || minReg.has(nb) {
				continue
			}
			if !e.opts.NoVisitedSet {
				if visited[nb] {
					continue
				}
				visited[nb] = true
			}
			queue = append(queue, nb)
		}
	}
	for _, s := range maxReg.segs {
		if !visited[s] {
			include[s] = true
		}
	}
	return nil
}
