package core

import (
	"testing"
	"time"

	"streach/internal/conindex"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
)

// chainWorld hand-builds the smallest world where every reachability
// probability can be computed by hand: a one-way chain A -> B -> C of
// 500 m segments (IDs 0, 1, 2) and four days of hand-written visits.
//
// Start window: T = 10:00, Δt = 5 min (slot 120), L = 10 min.
//
//	day 0: taxi 1 drives A (10:00:30), B (10:01:30), C (10:02:30)
//	day 1: taxi 1 drives A (10:00:30), B (10:01:30)
//	day 2: taxi 2 touches A (10:00:10) only
//	day 3: taxi 3 is at B (10:01:00) but never at A
//
// Per Eq 3.1 (m = 4): probability(A) = 3/4, probability(B) = 2/4,
// probability(C) = 1/4.
func chainWorld(t *testing.T) (*roadnet.Network, *traj.Dataset) {
	t.Helper()
	b := roadnet.NewBuilder()
	o := geo.Point{Lat: 22.5, Lng: 114.0}
	for i := 0; i < 3; i++ {
		from := geo.Offset(o, float64(i)*500, 0)
		to := geo.Offset(o, float64(i+1)*500, 0)
		if _, err := b.AddRoad(geo.Polyline{from, to}, roadnet.Primary, true); err != nil {
			t.Fatal(err)
		}
	}
	net := b.Build()

	ms := func(h, m, s int) int32 { return int32(((h*60+m)*60 + s) * 1000) }
	visit := func(seg roadnet.SegmentID, h, m, s int) traj.Visit {
		return traj.Visit{Segment: seg, EnterMs: ms(h, m, s), ExitMs: ms(h, m, s) + 50_000, Speed: 10}
	}
	ds := &traj.Dataset{
		BaseDate: time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC),
		Days:     4,
		Matched: []traj.MatchedTrajectory{
			{Taxi: 1, Day: 0, Visits: []traj.Visit{
				visit(0, 10, 0, 30), visit(1, 10, 1, 30), visit(2, 10, 2, 30),
			}},
			{Taxi: 1, Day: 1, Visits: []traj.Visit{
				visit(0, 10, 0, 30), visit(1, 10, 1, 30),
			}},
			{Taxi: 2, Day: 2, Visits: []traj.Visit{
				visit(0, 10, 0, 10),
			}},
			{Taxi: 3, Day: 3, Visits: []traj.Visit{
				visit(1, 10, 1, 0),
			}},
		},
	}
	return net, ds
}

func chainEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	net, ds := chainWorld(t)
	st, err := stindex.Build(net, ds, stindex.Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(st, con, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func chainQuery(prob float64) Query {
	return Query{
		Location: geo.Point{Lat: 22.5, Lng: 114.0022}, // on segment A
		Start:    10 * time.Hour,
		Duration: 10 * time.Minute,
		Prob:     prob,
	}
}

func TestHandComputedProbabilities(t *testing.T) {
	e := chainEngine(t, Options{VerifyAll: true})
	lo, hi := e.slotWindow(10*time.Hour, 10*time.Minute)
	pr, err := e.newProbe(bg, []roadnet.SegmentID{0}, lo, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	w := pr.worker()
	want := map[roadnet.SegmentID]float64{0: 0.75, 1: 0.5, 2: 0.25}
	for seg, expected := range want {
		got, err := w.prob(seg)
		if err != nil {
			t.Fatal(err)
		}
		if got != expected {
			t.Fatalf("probability(%d) = %v, want %v", seg, got, expected)
		}
	}
}

func TestHandComputedRegions(t *testing.T) {
	e := chainEngine(t, Options{VerifyAll: true})
	cases := []struct {
		prob float64
		want []roadnet.SegmentID
	}{
		{0.20, []roadnet.SegmentID{0, 1, 2}},
		{0.25, []roadnet.SegmentID{0, 1, 2}},
		{0.30, []roadnet.SegmentID{0, 1}},
		{0.50, []roadnet.SegmentID{0, 1}},
		{0.60, []roadnet.SegmentID{0}},
		{0.75, []roadnet.SegmentID{0}},
		{0.80, nil},
	}
	for _, c := range cases {
		res, err := e.SQMB(bg, chainQuery(c.prob))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Segments) != len(c.want) {
			t.Fatalf("Prob=%v: region %v, want %v", c.prob, res.Segments, c.want)
		}
		for i := range c.want {
			if res.Segments[i] != c.want[i] {
				t.Fatalf("Prob=%v: region %v, want %v", c.prob, res.Segments, c.want)
			}
		}
	}
}

func TestHandComputedESAgrees(t *testing.T) {
	e := chainEngine(t, Options{VerifyAll: true})
	for _, prob := range []float64{0.2, 0.5, 0.75} {
		es, err := e.ES(bg, chainQuery(prob))
		if err != nil {
			t.Fatal(err)
		}
		sq, err := e.SQMB(bg, chainQuery(prob))
		if err != nil {
			t.Fatal(err)
		}
		if len(es.Segments) != len(sq.Segments) {
			t.Fatalf("Prob=%v: ES %v vs SQMB %v", prob, es.Segments, sq.Segments)
		}
		for i := range es.Segments {
			if es.Segments[i] != sq.Segments[i] {
				t.Fatalf("Prob=%v: ES %v vs SQMB %v", prob, es.Segments, sq.Segments)
			}
		}
	}
}

func TestHandComputedReverse(t *testing.T) {
	// Reverse question from C: from where can C be reached?
	// Start window at each candidate r: [10:00, 10:05]; target window at
	// C: [10:00, 10:10].
	//  prob(A -> C): day 0 only (taxi 1 at A in window and at C) = 1/4.
	//  prob(B -> C): day 0 (taxi 1 at B 10:01:30, within start slot... the
	//  start slot is [10:00, 10:05], so yes) = 1/4.
	//  prob(C -> C): day 0 = 1/4.
	e := chainEngine(t, Options{VerifyAll: true})
	q := Query{
		Location: geo.Point{Lat: 22.5, Lng: 114.0122}, // on segment C
		Start:    10 * time.Hour,
		Duration: 10 * time.Minute,
		Prob:     0.25,
	}
	res, err := e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	want := []roadnet.SegmentID{0, 1, 2}
	if len(res.Segments) != len(want) {
		t.Fatalf("reverse region = %v, want %v", res.Segments, want)
	}
	q.Prob = 0.3
	res, err = e.ReverseSQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) != 0 {
		t.Fatalf("reverse region at Prob=0.3 should be empty, got %v", res.Segments)
	}
}

func TestHandComputedRoadLength(t *testing.T) {
	e := chainEngine(t, Options{VerifyAll: true})
	res, err := e.SQMB(bg, chainQuery(0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Segments A and B, 500 m each.
	if res.Metrics.RoadKm < 0.99 || res.Metrics.RoadKm > 1.01 {
		t.Fatalf("RoadKm = %v, want ~1.0", res.Metrics.RoadKm)
	}
}
