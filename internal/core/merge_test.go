package core

import (
	"reflect"
	"testing"

	"streach/internal/roadnet"
)

func segs(ids ...int) []roadnet.SegmentID {
	out := make([]roadnet.SegmentID, len(ids))
	for i, id := range ids {
		out[i] = roadnet.SegmentID(id)
	}
	return out
}

// TestMergeRegionsBoundaryOnce: a segment reported by several partials —
// a shard-boundary segment, or overlap between per-start regions — must
// appear exactly once in the merged answer.
func TestMergeRegionsBoundaryOnce(t *testing.T) {
	a := &Result{Segments: segs(5, 1, 9), Probability: map[roadnet.SegmentID]float64{1: 0.4}}
	b := &Result{Segments: segs(9, 2, 5), Probability: map[roadnet.SegmentID]float64{2: 0.7}}
	got := MergeRegions(true, a, b)
	if want := segs(1, 2, 5, 9); !reflect.DeepEqual(got.Segments, want) {
		t.Fatalf("segments = %v, want %v", got.Segments, want)
	}
	if len(got.Probability) != 2 || got.Probability[1] != 0.4 || got.Probability[2] != 0.7 {
		t.Fatalf("probability = %v", got.Probability)
	}
}

// TestMergeRegionsEmptyParts: empty partials (a shard that owns no
// result segments) merge as no-ops, and an all-empty merge matches the
// unmerged paths' nil-segments representation.
func TestMergeRegionsEmptyParts(t *testing.T) {
	empty := &Result{Probability: map[roadnet.SegmentID]float64{}}
	full := &Result{Segments: segs(3, 7), Probability: map[roadnet.SegmentID]float64{3: 0.5}}
	got := MergeRegions(true, empty, full, empty)
	if want := segs(3, 7); !reflect.DeepEqual(got.Segments, want) {
		t.Fatalf("segments = %v, want %v", got.Segments, want)
	}
	if got.Probability == nil || got.Probability[3] != 0.5 {
		t.Fatalf("probability = %v", got.Probability)
	}
	allEmpty := MergeRegions(true, empty, empty)
	if allEmpty.Segments != nil {
		t.Fatalf("all-empty merge segments = %#v, want nil", allEmpty.Segments)
	}
	if allEmpty.Probability == nil {
		t.Fatal("all-empty merge should keep the (empty) probability map when parts carry one")
	}
	none := MergeRegions(true)
	if none.Segments != nil || none.Probability != nil {
		t.Fatalf("zero-part merge = %#v", none)
	}
}

// TestMergeRegionsSequentialContract: with mergeProbs false the merged
// answer drops probabilities (the sequential baseline's contract) but
// still concatenates starts and sums the countable metrics.
func TestMergeRegionsSequentialContract(t *testing.T) {
	a := &Result{
		Starts:      segs(10),
		Segments:    segs(1, 2),
		Probability: map[roadnet.SegmentID]float64{1: 0.9},
	}
	a.Metrics.Evaluated, a.Metrics.MaxRegion, a.Metrics.MinRegion = 3, 20, 5
	a.Metrics.BoundNS, a.Metrics.VerifyNS = 100, 200
	b := &Result{
		Starts:      segs(11, 10),
		Segments:    segs(2, 4),
		Probability: map[roadnet.SegmentID]float64{4: 0.8},
	}
	b.Metrics.Evaluated, b.Metrics.MaxRegion, b.Metrics.MinRegion = 4, 30, 7
	b.Metrics.BoundNS, b.Metrics.VerifyNS = 1000, 2000

	got := MergeRegions(false, a, b)
	if got.Probability != nil {
		t.Fatalf("mergeProbs=false kept probabilities: %v", got.Probability)
	}
	if want := segs(10, 11, 10); !reflect.DeepEqual(got.Starts, want) {
		t.Fatalf("starts = %v, want %v (duplicates preserved, in part order)", got.Starts, want)
	}
	if want := segs(1, 2, 4); !reflect.DeepEqual(got.Segments, want) {
		t.Fatalf("segments = %v, want %v", got.Segments, want)
	}
	m := got.Metrics
	if m.Evaluated != 7 || m.MaxRegion != 50 || m.MinRegion != 12 || m.BoundNS != 1100 || m.VerifyNS != 2200 {
		t.Fatalf("metrics sums wrong: %+v", m)
	}
}
