package core

import (
	"context"
	"math/bits"
	"time"

	"streach/internal/bitset"
	"streach/internal/conindex"
	"streach/internal/roadnet"
	"streach/internal/xerr"
)

// region is a bounding region over a fixed-size network, held in two
// parallel forms: a dense membership bitset (the form the bounding
// rounds union whole Con-Index rows into, word by word) and, for each
// member segment, the expansion round (0 = start) in which it first
// appeared. Rounds order segments outer-to-inner for the trace back
// search.
type region struct {
	round []int16 // -1 = not a member
	segs  []roadnet.SegmentID
	bits  bitset.Set
}

func newRegion(numSegments int) *region {
	r := &region{
		round: make([]int16, numSegments),
		bits:  bitset.New(numSegments),
	}
	for i := range r.round {
		r.round[i] = -1
	}
	return r
}

// reset clears the region for pooled reuse: only the entries its members
// touched are rewritten, plus one word-level clear of the membership
// bitset.
func (r *region) reset() {
	for _, s := range r.segs {
		r.round[s] = -1
	}
	r.segs = r.segs[:0]
	clear(r.bits)
}

func (r *region) add(s roadnet.SegmentID, round int) {
	if r.round[s] >= 0 {
		return
	}
	r.round[s] = int16(round)
	r.segs = append(r.segs, s)
	r.bits.Add(int(s))
}

// adopt folds every member of next that the region lacks into the
// region, tagged with round. next must cover the same segment space.
// New members join in ascending ID order (round tags, not insertion
// order, drive the trace-back ordering).
func (r *region) adopt(next bitset.Set, round int) {
	for w, nw := range next {
		diff := nw &^ r.bits[w]
		for diff != 0 {
			s := roadnet.SegmentID(w<<6 + bits.TrailingZeros64(diff))
			diff &= diff - 1
			r.round[s] = int16(round)
			r.segs = append(r.segs, s)
		}
		r.bits[w] |= nw
	}
}

func (r *region) has(s roadnet.SegmentID) bool { return r.round[s] >= 0 }

func (r *region) size() int { return len(r.segs) }

// splitAgainst partitions the region against an inner region with
// word-level bit ops: members shared with inner go to keep (the set TBS
// admits unverified), members exclusive to the region go to cand (the
// verification candidates, r AND NOT inner). Both callbacks see
// ascending IDs.
func (r *region) splitAgainst(inner *region, keep, cand func(roadnet.SegmentID)) {
	for w, rw := range r.bits {
		for both := rw & inner.bits[w]; both != 0; both &= both - 1 {
			keep(roadnet.SegmentID(w<<6 + bits.TrailingZeros64(both)))
		}
		for diff := rw &^ inner.bits[w]; diff != 0; diff &= diff - 1 {
			cand(roadnet.SegmentID(w<<6 + bits.TrailingZeros64(diff)))
		}
	}
}

// rounds returns how many Δt expansion steps cover the duration: k such
// that k*Δt >= L (Algorithm 1 keeps searching until the duration is met).
func (e *Engine) rounds(dur time.Duration) int {
	slot := time.Duration(e.st.SlotSeconds()) * time.Second
	k := int((dur + slot - 1) / slot)
	if k < 1 {
		k = 1
	}
	return k
}

// boundingRegion implements the s-query maximum bounding region search
// (SQMB, Algorithm 1): starting from r0, repeatedly union the Con-Index
// Far rows of every region segment, stepping the time slot by Δt each
// round, until the duration is covered. With far=false it computes the
// minimum bounding region from the Near rows instead (the thesis notes
// SQMB applies "naturally" to the minimum region). Each round ORs whole
// adjacency rows into a scratch bitset word-by-word, then adopts the
// newly covered segments with the round tag (see region.adopt).
//
// The returned region comes from the engine's scratch pool; callers
// release it with putRegion when done.
func (e *Engine) boundingRegion(ctx context.Context, starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) (*region, error) {
	return e.boundingRegionPin(ctx, e.con.NewPin(), starts, startOfDay, dur, far)
}

// boundingRegionPin is boundingRegion with adjacency rows resolved
// through a batch-scoped RowSource (a conindex.Pin by default, a shard
// router on a cluster's planner), so a plan that grows several regions
// over the same working set fetches each row once.
func (e *Engine) boundingRegionPin(ctx context.Context, rows RowSource, starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) (*region, error) {
	reg := e.getRegion()
	for _, r := range starts {
		reg.add(r, 0)
	}
	err := e.growRegion(ctx, reg, startOfDay, dur, func(r roadnet.SegmentID, slot int) (conindex.Row, error) {
		if far {
			return rows.FarRow(ctx, r, slot)
		}
		return rows.NearRow(ctx, r, slot)
	})
	if err != nil {
		e.putRegion(reg)
		return nil, err
	}
	return reg, nil
}

// growRegion runs Algorithm 1's expansion rounds with word-level row
// unions. rowOf supplies the per-(segment, slot) adjacency row (forward
// or reverse, Near or Far); cancellation surfaces through rowOf (cold
// rows abort their Dijkstra) and through the per-round ctx check, so even
// an all-warm bounding phase stops between rounds.
func (e *Engine) growRegion(ctx context.Context, reg *region, startOfDay, dur time.Duration, rowOf func(roadnet.SegmentID, int) (conindex.Row, error)) error {
	k := e.rounds(dur)
	slotSec := e.st.SlotSeconds()
	n := e.net.NumSegments()
	nb := e.getBitset()
	defer e.putBitset(nb)
	next := nb.bits
	for i := 0; i < k; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if reg.size() == n {
			break // the region saturated the network; no round can add more
		}
		slot := (int(startOfDay.Seconds()) + i*slotSec) / slotSec
		// Expand a snapshot of the whole accumulated region (Algorithm 1
		// line 8 sets R = B each round).
		copy(next, reg.bits)
		snapshot := len(reg.segs)
		for j := 0; j < snapshot; j++ {
			row, err := rowOf(reg.segs[j], slot)
			if err != nil {
				return err
			}
			row.OrInto(next)
		}
		reg.adopt(next, i+1)
	}
	return nil
}

// SQMB answers an s-query with the paper's two-step pipeline: maximum/
// minimum bounding region search via the Con-Index, then trace back
// search (TBS) to refine the Prob-reachable region. It is a single-use
// shared plan: PlanReach does everything that is independent of the
// probability threshold, ResultAt applies the threshold — so one query
// and a batch group sharing a plan produce bit-identical results by
// construction.
func (e *Engine) SQMB(ctx context.Context, q Query) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	p, err := e.PlanReach(ctx, q)
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ResultAt(ctx, q.Prob)
}

// MaxBoundingRegion exposes the SQMB maximum bounding region for tests,
// tools, and visualisation.
func (e *Engine) MaxBoundingRegion(ctx context.Context, q Query) ([]roadnet.SegmentID, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", q.Location)
	}
	reg, err := e.boundingRegion(ctx, []roadnet.SegmentID{r0}, q.Start, q.Duration, true)
	if err != nil {
		return nil, err
	}
	segs := append([]roadnet.SegmentID(nil), reg.segs...)
	e.putRegion(reg)
	return segs, nil
}

// MinBoundingRegion exposes the SQMB minimum bounding region.
func (e *Engine) MinBoundingRegion(ctx context.Context, q Query) ([]roadnet.SegmentID, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, xerr.Markf(xerr.KindInvalid, "core: no road segment near %v", q.Location)
	}
	reg, err := e.boundingRegion(ctx, []roadnet.SegmentID{r0}, q.Start, q.Duration, false)
	if err != nil {
		return nil, err
	}
	segs := append([]roadnet.SegmentID(nil), reg.segs...)
	e.putRegion(reg)
	return segs, nil
}

// now is indirected for tests.
var now = time.Now
