package core

import (
	"fmt"
	"time"

	"streach/internal/roadnet"
)

// region is a bounding region over a fixed-size network: for each member
// segment it records the expansion round (0 = start) in which it first
// appeared. Rounds order segments outer-to-inner for the trace back
// search. Slice-backed: membership tests and inserts are O(1) without
// map overhead on the query hot path.
type region struct {
	round []int16 // -1 = not a member
	segs  []roadnet.SegmentID
}

func newRegion(numSegments int) *region {
	r := &region{round: make([]int16, numSegments)}
	for i := range r.round {
		r.round[i] = -1
	}
	return r
}

func (r *region) add(s roadnet.SegmentID, round int) {
	if r.round[s] >= 0 {
		return
	}
	r.round[s] = int16(round)
	r.segs = append(r.segs, s)
}

func (r *region) has(s roadnet.SegmentID) bool { return r.round[s] >= 0 }

func (r *region) size() int { return len(r.segs) }

// rounds returns how many Δt expansion steps cover the duration: k such
// that k*Δt >= L (Algorithm 1 keeps searching until the duration is met).
func (e *Engine) rounds(dur time.Duration) int {
	slot := time.Duration(e.st.SlotSeconds()) * time.Second
	k := int((dur + slot - 1) / slot)
	if k < 1 {
		k = 1
	}
	return k
}

// maxBoundingRegion implements the s-query maximum bounding region search
// (SQMB, Algorithm 1): starting from r0, repeatedly union the Con-Index
// Far lists of every region segment, stepping the time slot by Δt each
// round, until the duration is covered. With far=false it computes the
// minimum bounding region from the Near lists instead (the thesis notes
// SQMB applies "naturally" to the minimum region).
func (e *Engine) boundingRegion(starts []roadnet.SegmentID, startOfDay, dur time.Duration, far bool) *region {
	reg := newRegion(e.net.NumSegments())
	for _, r := range starts {
		reg.add(r, 0)
	}
	k := e.rounds(dur)
	slotSec := e.st.SlotSeconds()
	for i := 0; i < k; i++ {
		if reg.size() == e.net.NumSegments() {
			break // the region saturated the network; no round can add more
		}
		slot := (int(startOfDay.Seconds()) + i*slotSec) / slotSec
		// Expand a snapshot of the whole accumulated region (Algorithm 1
		// line 8 sets R = B each round).
		snapshot := len(reg.segs)
		for j := 0; j < snapshot; j++ {
			r := reg.segs[j]
			var list []roadnet.SegmentID
			if far {
				list = e.con.Far(r, slot)
			} else {
				list = e.con.Near(r, slot)
			}
			for _, s := range list {
				reg.add(s, i+1)
			}
		}
	}
	return reg
}

// SQMB answers an s-query with the paper's two-step pipeline: maximum/
// minimum bounding region search via the Con-Index, then trace back
// search (TBS) to refine the Prob-reachable region.
func (e *Engine) SQMB(q Query) (*Result, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	began := now()
	io0 := e.st.Pool().Stats()
	tl0 := e.st.CacheStats()

	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, fmt.Errorf("core: no road segment near %v", q.Location)
	}
	starts := []roadnet.SegmentID{r0}
	maxReg := e.boundingRegion(starts, q.Start, q.Duration, true)
	minReg := e.boundingRegion(starts, q.Start, q.Duration, false)

	res, err := e.traceBack(starts, maxReg, minReg, q.Start, q.Duration, q.Prob)
	if err != nil {
		return nil, err
	}
	res.Metrics.MaxRegion = maxReg.size()
	res.Metrics.MinRegion = minReg.size()
	e.finish(res, began, io0, tl0)
	return res, nil
}

// MaxBoundingRegion exposes the SQMB maximum bounding region for tests,
// tools, and visualisation.
func (e *Engine) MaxBoundingRegion(q Query) ([]roadnet.SegmentID, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, fmt.Errorf("core: no road segment near %v", q.Location)
	}
	reg := e.boundingRegion([]roadnet.SegmentID{r0}, q.Start, q.Duration, true)
	return append([]roadnet.SegmentID(nil), reg.segs...), nil
}

// MinBoundingRegion exposes the SQMB minimum bounding region.
func (e *Engine) MinBoundingRegion(q Query) ([]roadnet.SegmentID, error) {
	if err := e.validate(q.Start, q.Duration, q.Prob); err != nil {
		return nil, err
	}
	r0, ok := e.st.SnapLocation(q.Location)
	if !ok {
		return nil, fmt.Errorf("core: no road segment near %v", q.Location)
	}
	reg := e.boundingRegion([]roadnet.SegmentID{r0}, q.Start, q.Duration, false)
	return append([]roadnet.SegmentID(nil), reg.segs...), nil
}

// now is indirected for tests.
var now = time.Now
