package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
)

// cancelAfter is a context that reports Canceled after its Err method has
// been consulted n times: a deterministic way to cancel "mid-query" at
// exactly the n-th checkpoint, with no timing dependence. Done() is never
// closed — the engine's checkpoints poll Err directly.
type cancelAfter struct {
	context.Context
	remaining atomic.Int64
}

func cancelAfterN(n int) *cancelAfter {
	c := &cancelAfter{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *cancelAfter) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestQueriesHonourPreCancelledContext: every query method must notice a
// context that is already cancelled and return its error without
// answering.
func TestQueriesHonourPreCancelledContext(t *testing.T) {
	e := newEngine(t, Options{})
	f := getFixture(t)
	q := baseQuery(f)
	mq := MultiQuery{Locations: []geo.Point{q.Location}, Start: q.Start, Duration: q.Duration, Prob: q.Prob}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, run := range map[string]func() error{
		"SQMB":             func() error { _, err := e.SQMB(ctx, q); return err },
		"ES":               func() error { _, err := e.ES(ctx, q); return err },
		"ReverseSQMB":      func() error { _, err := e.ReverseSQMB(ctx, q); return err },
		"ReverseES":        func() error { _, err := e.ReverseES(ctx, q); return err },
		"MQMB":             func() error { _, err := e.MQMB(ctx, mq); return err },
		"SQuerySequential": func() error { _, err := e.SQuerySequential(ctx, mq); return err },
	} {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled ctx = %v, want context.Canceled", name, err)
		}
	}
}

// TestCancelMidQuery cancels at progressively later checkpoints: wherever
// the n-th Err poll lands — inside a Con-Index Dijkstra, between bounding
// rounds, or in the verify pool — the query must surface Canceled, never
// a partial answer.
func TestCancelMidQuery(t *testing.T) {
	f := getFixture(t)
	q := baseQuery(f)
	q.Duration = 20 * time.Minute
	for _, workers := range []int{1, 4} {
		e := newEngine(t, Options{VerifyWorkers: workers})
		// Budgets stay below the checkpoint-poll total of a warm query
		// (bounding rounds + one per verified candidate — several hundred
		// on the fixture world) so the cancel always lands mid-query.
		for _, n := range []int{1, 10, 100} {
			if _, err := e.SQMB(cancelAfterN(n), q); !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d n=%d: err = %v, want context.Canceled", workers, n, err)
			}
		}
	}
}

// TestCancelInsideVerifyPool drives verifyMany directly with a context
// that expires after the pool has started claiming candidates: the pool
// must stop early and return Canceled (this exercises the per-claim ctx
// check inside the workers, not the serial path).
func TestCancelInsideVerifyPool(t *testing.T) {
	e := newEngine(t, Options{VerifyWorkers: 4})
	segs := make([]roadnet.SegmentID, 256)
	for i := range segs {
		segs[i] = roadnet.SegmentID(i)
	}
	var probed atomic.Int64
	newWorker := func() func(roadnet.SegmentID) (float64, error) {
		return func(roadnet.SegmentID) (float64, error) {
			probed.Add(1)
			return 0.5, nil
		}
	}
	// The budget covers the first few claims only.
	_, err := e.verifyMany(cancelAfterN(8), segs, newWorker)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("verifyMany = %v, want context.Canceled", err)
	}
	if n := probed.Load(); n >= int64(len(segs)) {
		t.Fatalf("verify pool probed all %d candidates despite cancellation", n)
	}
}

// TestWithOptionsOverridesPerQuery: WithOptions must produce an engine
// view with the new options while leaving the original untouched, and
// both views must answer over the same shared indexes.
func TestWithOptionsOverridesPerQuery(t *testing.T) {
	base := newEngine(t, Options{})
	f := getFixture(t)
	q := baseQuery(f)

	all := base.WithOptions(Options{VerifyAll: true})
	if base.Options().VerifyAll {
		t.Fatal("WithOptions mutated the base engine")
	}
	if !all.Options().VerifyAll {
		t.Fatal("WithOptions did not apply")
	}

	defRes, err := base.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	allRes, err := all.SQMB(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	// VerifyAll probes the minimum region too, so it must evaluate
	// strictly more segments than the default policy on the same query.
	if defRes.Metrics.MinRegion > 0 && allRes.Metrics.Evaluated <= defRes.Metrics.Evaluated {
		t.Fatalf("VerifyAll evaluated %d segments, default %d — override had no effect",
			allRes.Metrics.Evaluated, defRes.Metrics.Evaluated)
	}
}
