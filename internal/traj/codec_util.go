package traj

import (
	"math"

	"streach/internal/roadnet"
)

func floatBits(f float64) uint32       { return math.Float32bits(float32(f)) }
func bitsFloat(b uint32) float64       { return float64(math.Float32frombits(b)) }
func segID(v uint32) roadnet.SegmentID { return roadnet.SegmentID(int32(v)) }
