// Package traj defines the trajectory data model and the synthetic
// taxi-fleet simulator that stands in for the paper's 194 GB Shenzhen GPS
// dataset (DESIGN.md §2).
//
// Terminology follows the thesis: a GPS record carries (trajectory ID,
// longitude, latitude, speed, time); one moving object produces one
// trajectory per day, and the same taxi on different dates counts as
// different trajectories when computing reachability probabilities.
package traj

import (
	"fmt"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
)

// TaxiID identifies a vehicle across days.
type TaxiID int32

// Day is a zero-based day index within the dataset.
type Day int16

// GPSPoint is one raw GPS record.
type GPSPoint struct {
	Pos   geo.Point
	Time  time.Time
	Speed float64 // instantaneous speed, m/s
}

// Trajectory is one taxi's raw GPS sequence for one day, ordered by time.
type Trajectory struct {
	Taxi   TaxiID
	Day    Day
	Points []GPSPoint
}

// Validate checks ordering and coordinate sanity.
func (tr *Trajectory) Validate() error {
	for i, p := range tr.Points {
		if !p.Pos.Valid() {
			return fmt.Errorf("traj: taxi %d day %d point %d has invalid position %v", tr.Taxi, tr.Day, i, p.Pos)
		}
		if i > 0 && p.Time.Before(tr.Points[i-1].Time) {
			return fmt.Errorf("traj: taxi %d day %d point %d goes back in time", tr.Taxi, tr.Day, i)
		}
	}
	return nil
}

// Visit is one map-matched traversal: the taxi occupied Segment from
// EnterMs to ExitMs (milliseconds since the trajectory's day midnight)
// travelling at Speed m/s on average. The compact 16-byte layout matters:
// datasets hold tens of millions of visits.
type Visit struct {
	Segment roadnet.SegmentID
	EnterMs int32
	ExitMs  int32
	Speed   float32
}

// Enter returns the absolute entry time given the day's midnight.
func (v Visit) Enter(dayStart time.Time) time.Time {
	return dayStart.Add(time.Duration(v.EnterMs) * time.Millisecond)
}

// Exit returns the absolute exit time given the day's midnight.
func (v Visit) Exit(dayStart time.Time) time.Time {
	return dayStart.Add(time.Duration(v.ExitMs) * time.Millisecond)
}

// EnterSec returns the entry time in seconds since the day's midnight.
func (v Visit) EnterSec() float64 { return float64(v.EnterMs) / 1000 }

// ExitSec returns the exit time in seconds since the day's midnight.
func (v Visit) ExitSec() float64 { return float64(v.ExitMs) / 1000 }

// MatchedTrajectory is a trajectory projected onto the road network: an
// ordered, connected sequence of segment visits. This is the form the
// index builders consume.
type MatchedTrajectory struct {
	Taxi   TaxiID
	Day    Day
	Visits []Visit
}

// Validate checks temporal ordering of visits.
func (mt *MatchedTrajectory) Validate() error {
	for i, v := range mt.Visits {
		if v.ExitMs < v.EnterMs {
			return fmt.Errorf("traj: taxi %d day %d visit %d exits before entering", mt.Taxi, mt.Day, i)
		}
		if i > 0 && v.EnterMs < mt.Visits[i-1].EnterMs {
			return fmt.Errorf("traj: taxi %d day %d visit %d out of order", mt.Taxi, mt.Day, i)
		}
	}
	return nil
}

// Dataset bundles the matched trajectories of a fleet over several days,
// as produced by the simulator or the map-matching stage.
type Dataset struct {
	// BaseDate is midnight of day 0 (all days are consecutive).
	BaseDate time.Time
	// Days is the number of days covered.
	Days int
	// Matched holds every matched taxi-day trajectory.
	Matched []MatchedTrajectory
}

// Stats summarises a dataset for Table 4.1-style reporting.
type DatasetStats struct {
	Taxis        int
	Days         int
	Trajectories int
	Visits       int
	GPSEquiv     int // visits are the matched form; raw points ~= visits * (segment time / sampling)
}

// Stats computes dataset statistics.
func (d *Dataset) Stats() DatasetStats {
	taxis := map[TaxiID]bool{}
	visits := 0
	for i := range d.Matched {
		taxis[d.Matched[i].Taxi] = true
		visits += len(d.Matched[i].Visits)
	}
	return DatasetStats{
		Taxis:        len(taxis),
		Days:         d.Days,
		Trajectories: len(d.Matched),
		Visits:       visits,
	}
}

// DayStart returns midnight of day d.
func (d *Dataset) DayStart(day Day) time.Time {
	return d.BaseDate.AddDate(0, 0, int(day))
}

// SecondsOfDay returns t's offset from its day's midnight in seconds,
// relative to base.
func SecondsOfDay(base, t time.Time) int {
	return int(t.Sub(base).Seconds()) % 86400
}
