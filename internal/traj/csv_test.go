package traj

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestGPSCSVRoundTrip(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	base := ds.BaseDate
	// Synthesize raw streams for three taxi-days.
	var raws []Trajectory
	for i := 0; i < 3 && i < len(ds.Matched); i++ {
		mt := &ds.Matched[i]
		raw := RawFromMatched(n, mt, ds.DayStart(mt.Day), 30*time.Second, 10, int64(i))
		raws = append(raws, *raw)
	}
	var buf bytes.Buffer
	if err := WriteGPSCSV(&buf, raws); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGPSCSV(&buf, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(raws) {
		t.Fatalf("round trip returned %d trajectories, want %d", len(got), len(raws))
	}
	// Match by (taxi, day).
	byKey := map[[2]int]*Trajectory{}
	for i := range got {
		byKey[[2]int{int(got[i].Taxi), int(got[i].Day)}] = &got[i]
	}
	for i := range raws {
		want := &raws[i]
		g := byKey[[2]int{int(want.Taxi), int(want.Day)}]
		if g == nil {
			t.Fatalf("trajectory taxi=%d day=%d missing after round trip", want.Taxi, want.Day)
		}
		if len(g.Points) != len(want.Points) {
			t.Fatalf("taxi=%d day=%d: %d points, want %d", want.Taxi, want.Day, len(g.Points), len(want.Points))
		}
		for j := range want.Points {
			a, b := want.Points[j], g.Points[j]
			if math.Abs(a.Pos.Lat-b.Pos.Lat) > 1e-5 || math.Abs(a.Pos.Lng-b.Pos.Lng) > 1e-5 {
				t.Fatalf("point %d position drifted", j)
			}
			if a.Time.Unix() != b.Time.Unix() {
				t.Fatalf("point %d time drifted: %v vs %v", j, a.Time, b.Time)
			}
			if math.Abs(a.Speed-b.Speed) > 0.05 {
				t.Fatalf("point %d speed drifted", j)
			}
		}
	}
}

func TestGPSCSVGroupsOutOfOrderRows(t *testing.T) {
	base := time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC)
	csv := `taxi_id,timestamp,lat,lng,speed
7,2014-11-02T10:05:00Z,22.500000,114.000000,5.00
7,2014-11-01T09:00:00Z,22.500000,114.000000,5.00
7,2014-11-02T10:00:00Z,22.501000,114.000000,6.00
8,2014-11-01T09:00:00Z,22.502000,114.000000,7.00
`
	trs, err := ReadGPSCSV(strings.NewReader(csv), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 3 { // taxi7-day0, taxi7-day1, taxi8-day0
		t.Fatalf("got %d trajectories, want 3", len(trs))
	}
	// taxi 7 day 1 must be time-sorted despite reversed input.
	var t7d1 *Trajectory
	for i := range trs {
		if trs[i].Taxi == 7 && trs[i].Day == 1 {
			t7d1 = &trs[i]
		}
	}
	if t7d1 == nil || len(t7d1.Points) != 2 {
		t.Fatalf("taxi7/day1 grouping wrong: %+v", trs)
	}
	if !t7d1.Points[0].Time.Before(t7d1.Points[1].Time) {
		t.Fatal("points not sorted by time")
	}
	if err := t7d1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGPSCSVRejectsBadInput(t *testing.T) {
	base := time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		name string
		csv  string
	}{
		{"bad header", "nope,b,c,d,e\n"},
		{"bad taxi", "taxi_id,timestamp,lat,lng,speed\nX,2014-11-01T00:00:00Z,22,114,5\n"},
		{"bad time", "taxi_id,timestamp,lat,lng,speed\n1,yesterday,22,114,5\n"},
		{"bad lat", "taxi_id,timestamp,lat,lng,speed\n1,2014-11-01T00:00:00Z,heaps,114,5\n"},
		{"invalid position", "taxi_id,timestamp,lat,lng,speed\n1,2014-11-01T00:00:00Z,99,114,5\n"},
		{"before base", "taxi_id,timestamp,lat,lng,speed\n1,2013-01-01T00:00:00Z,22,114,5\n"},
		{"wrong fields", "taxi_id,timestamp,lat,lng,speed\n1,2014-11-01T00:00:00Z,22,114\n"},
	}
	for _, c := range cases {
		if _, err := ReadGPSCSV(strings.NewReader(c.csv), base); err == nil {
			t.Fatalf("%s should error", c.name)
		}
	}
}

func TestGPSCSVThroughMapMatcherShape(t *testing.T) {
	// End-to-end raw pipeline shape check: CSV rows in, trajectories
	// grouped per day, ready for the matcher (the matcher itself is
	// exercised in internal/mapmatch).
	base := time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC)
	var b strings.Builder
	b.WriteString("taxi_id,timestamp,lat,lng,speed\n")
	for i := 0; i < 10; i++ {
		b.WriteString("3,2014-11-01T08:00:")
		if i < 10 {
			b.WriteString("0")
		}
		b.WriteString(string(rune('0'+i)) + "Z,22.500000,114.000000,4.00\n")
	}
	trs, err := ReadGPSCSV(strings.NewReader(b.String()), base)
	if err != nil {
		t.Fatal(err)
	}
	if len(trs) != 1 || len(trs[0].Points) != 10 {
		t.Fatalf("pipeline grouping wrong: %d trajectories", len(trs))
	}
}
