package traj

import "math"

// SpeedProfile maps a time of day to a congestion multiplier in (0, 1].
// The reachability results in the paper's Fig 4.5/4.6 depend on traffic
// slowing down in rush hours; the default profile reproduces that shape
// with morning (~07:30) and evening (~18:00) congestion troughs.
type SpeedProfile struct {
	// Troughs are the congested periods.
	Troughs []Trough
	// NightBoost adds free-flow headroom in the small hours.
	NightBoost float64
}

// Trough is one congestion dip: at CenterSec the multiplier drops by
// Depth, decaying as a Gaussian with the given width.
type Trough struct {
	CenterSec float64 // seconds since midnight
	Depth     float64 // in (0,1): 0.55 means speeds drop to 45% at the centre
	WidthSec  float64 // Gaussian sigma
}

// DefaultSpeedProfile models a metropolis with two rush hours.
func DefaultSpeedProfile() SpeedProfile {
	return SpeedProfile{
		Troughs: []Trough{
			{CenterSec: 7.5 * 3600, Depth: 0.55, WidthSec: 4500},
			{CenterSec: 18 * 3600, Depth: 0.60, WidthSec: 5400},
		},
		NightBoost: 0.10,
	}
}

// FlatSpeedProfile always returns 1.0; used by tests that need
// time-invariant behaviour.
func FlatSpeedProfile() SpeedProfile { return SpeedProfile{} }

// Factor returns the congestion multiplier at secOfDay seconds after
// midnight. The result is clamped to [0.05, 1+NightBoost].
func (p SpeedProfile) Factor(secOfDay float64) float64 {
	secOfDay = math.Mod(secOfDay, 86400)
	if secOfDay < 0 {
		secOfDay += 86400
	}
	f := 1.0
	for _, tr := range p.Troughs {
		// Evaluate the trough and its day-wrapped copies so a trough near
		// midnight affects both ends of the day.
		for _, c := range []float64{tr.CenterSec - 86400, tr.CenterSec, tr.CenterSec + 86400} {
			d := secOfDay - c
			f -= tr.Depth * math.Exp(-d*d/(2*tr.WidthSec*tr.WidthSec))
		}
	}
	if p.NightBoost > 0 {
		// Peak boost at 03:00, fading over ~3 hours.
		for _, c := range []float64{3*3600 - 86400, 3 * 3600, 3*3600 + 86400} {
			d := secOfDay - c
			f += p.NightBoost * math.Exp(-d*d/(2*10800.0*10800.0))
		}
	}
	if f < 0.05 {
		f = 0.05
	}
	if max := 1 + p.NightBoost; f > max {
		f = max
	}
	return f
}
