package traj

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Binary dataset format (little endian):
//
//	magic "STRJ" | version u16 | baseDate unix s i64 | days u32 | ntraj u32
//	per trajectory: taxi i32 | day i16 | nvisits u32
//	per visit: segment i32 | enter day-ms u32 | exit day-ms u32 | speed f32
const (
	codecMagic   = "STRJ"
	codecVersion = 2
)

// WriteDataset encodes ds to w.
func WriteDataset(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(codecMagic); err != nil {
		return fmt.Errorf("traj: write magic: %w", err)
	}
	var scratch [8]byte
	writeU16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(scratch[:2], v)
		_, err := bw.Write(scratch[:2])
		return err
	}
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		_, err := bw.Write(scratch[:8])
		return err
	}
	if err := writeU16(codecVersion); err != nil {
		return fmt.Errorf("traj: write version: %w", err)
	}
	if err := writeU64(uint64(ds.BaseDate.Unix())); err != nil {
		return fmt.Errorf("traj: write base date: %w", err)
	}
	if err := writeU32(uint32(ds.Days)); err != nil {
		return fmt.Errorf("traj: write days: %w", err)
	}
	if err := writeU32(uint32(len(ds.Matched))); err != nil {
		return fmt.Errorf("traj: write count: %w", err)
	}
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		if err := writeU32(uint32(mt.Taxi)); err != nil {
			return err
		}
		if err := writeU16(uint16(mt.Day)); err != nil {
			return err
		}
		if err := writeU32(uint32(len(mt.Visits))); err != nil {
			return err
		}
		for _, v := range mt.Visits {
			if err := writeU32(uint32(v.Segment)); err != nil {
				return err
			}
			if err := writeU32(uint32(v.EnterMs)); err != nil {
				return err
			}
			if err := writeU32(uint32(v.ExitMs)); err != nil {
				return err
			}
			if err := writeU32(floatBits(float64(v.Speed))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDataset decodes a dataset from r.
func ReadDataset(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("traj: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("traj: bad magic %q", magic)
	}
	var scratch [8]byte
	readU16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, scratch[:2]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(scratch[:2]), nil
	}
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	ver, err := readU16()
	if err != nil {
		return nil, fmt.Errorf("traj: read version: %w", err)
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("traj: unsupported version %d", ver)
	}
	baseUnix, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("traj: read base date: %w", err)
	}
	days, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("traj: read days: %w", err)
	}
	count, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("traj: read count: %w", err)
	}
	ds := &Dataset{
		BaseDate: time.Unix(int64(baseUnix), 0).UTC(),
		Days:     int(days),
		Matched:  make([]MatchedTrajectory, 0, count),
	}
	for i := uint32(0); i < count; i++ {
		taxi, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
		day, err := readU16()
		if err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
		nv, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("traj: trajectory %d: %w", i, err)
		}
		mt := MatchedTrajectory{
			Taxi:   TaxiID(taxi),
			Day:    Day(day),
			Visits: make([]Visit, nv),
		}
		for j := uint32(0); j < nv; j++ {
			seg, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("traj: trajectory %d visit %d: %w", i, j, err)
			}
			enter, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("traj: trajectory %d visit %d: %w", i, j, err)
			}
			exit, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("traj: trajectory %d visit %d: %w", i, j, err)
			}
			spd, err := readU32()
			if err != nil {
				return nil, fmt.Errorf("traj: trajectory %d visit %d: %w", i, j, err)
			}
			mt.Visits[j] = Visit{
				Segment: segID(seg),
				EnterMs: int32(enter),
				ExitMs:  int32(exit),
				Speed:   float32(bitsFloat(spd)),
			}
		}
		ds.Matched = append(ds.Matched, mt)
	}
	return ds, nil
}
