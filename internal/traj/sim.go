package traj

import (
	"fmt"
	"math/rand"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
)

// SimConfig controls the synthetic taxi-fleet simulator.
type SimConfig struct {
	// Taxis is the fleet size.
	Taxis int
	// Days is how many consecutive days to simulate.
	Days int
	// BaseDate is midnight of day 0. Zero means 2014-11-01 UTC, matching
	// the paper's November 2014 collection window.
	BaseDate time.Time
	// Profile is the time-of-day congestion model.
	Profile SpeedProfile
	// Seed drives all randomness.
	Seed int64
	// MeanTripMinutes is the average trip duration (exponential).
	MeanTripMinutes float64
	// MeanIdleMinutes is the average idle gap between trips (exponential).
	MeanIdleMinutes float64
	// ActiveStartSec/ActiveEndSec bound each taxi's shift within the day.
	// Zero values mean the full day.
	ActiveStartSec, ActiveEndSec int
	// DaySpeedJitter scales each day's overall speed by U(1-j, 1+j),
	// creating the day-to-day variation that Prob-reachability measures.
	DaySpeedJitter float64
	// CenterAttraction in [0, ~2] biases route choice towards the city
	// centre, concentrating traffic downtown the way real fleets do
	// (default 0.6). Zero disables the bias.
	CenterAttraction float64
}

// DefaultSimConfig returns a laptop-scale stand-in for the Shenzhen fleet.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Taxis:            250,
		Days:             30,
		Profile:          DefaultSpeedProfile(),
		Seed:             1,
		MeanTripMinutes:  18,
		MeanIdleMinutes:  6,
		DaySpeedJitter:   0.15,
		CenterAttraction: 0.6,
	}
}

func (c SimConfig) withDefaults() SimConfig {
	if c.BaseDate.IsZero() {
		c.BaseDate = time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.MeanTripMinutes <= 0 {
		c.MeanTripMinutes = 18
	}
	if c.MeanIdleMinutes <= 0 {
		c.MeanIdleMinutes = 6
	}
	if c.ActiveEndSec <= c.ActiveStartSec {
		c.ActiveStartSec, c.ActiveEndSec = 0, 86400
	}
	if c.CenterAttraction == 0 {
		c.CenterAttraction = 0.6
	}
	if c.CenterAttraction < 0 {
		c.CenterAttraction = 0
	}
	return c
}

// Simulate drives a fleet of taxis over the network and returns their
// map-matched trajectories. Taxis perform trips as speed-biased random
// walks (highways preferred on through-travel), with per-segment speeds
// set by road class, the time-of-day congestion profile, a per-day
// multiplier, and per-taxi noise. The output is deterministic for a given
// config.
func Simulate(n *roadnet.Network, cfg SimConfig) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Taxis <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("traj: need positive Taxis and Days, got %d and %d", cfg.Taxis, cfg.Days)
	}
	if n.NumSegments() == 0 {
		return nil, fmt.Errorf("traj: cannot simulate on an empty network")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Per-day speed multipliers.
	dayFactor := make([]float64, cfg.Days)
	for d := range dayFactor {
		dayFactor[d] = 1 + (rng.Float64()*2-1)*cfg.DaySpeedJitter
	}

	// Precompute each segment's distance to the city centre for the
	// route-choice attraction bias.
	center := n.Bounds().Center()
	centerDist := make([]float64, n.NumSegments())
	for i := 0; i < n.NumSegments(); i++ {
		centerDist[i] = geo.Distance(n.Segment(roadnet.SegmentID(i)).Midpoint(), center)
	}

	ds := &Dataset{BaseDate: cfg.BaseDate, Days: cfg.Days}
	for taxi := 0; taxi < cfg.Taxis; taxi++ {
		taxiJitter := 0.9 + rng.Float64()*0.2
		for day := 0; day < cfg.Days; day++ {
			mt := simulateTaxiDay(n, cfg, rng, centerDist, TaxiID(taxi), Day(day), dayFactor[day]*taxiJitter)
			if len(mt.Visits) > 0 {
				ds.Matched = append(ds.Matched, mt)
			}
		}
	}
	return ds, nil
}

// segmentSpeed returns the instantaneous speed on seg at secOfDay.
func segmentSpeed(n *roadnet.Network, profile SpeedProfile, seg roadnet.SegmentID, secOfDay, mult float64) float64 {
	base := n.Segment(seg).Class.FreeFlowSpeed()
	v := base * profile.Factor(secOfDay) * mult
	if v < 0.5 {
		v = 0.5
	}
	return v
}

func simulateTaxiDay(n *roadnet.Network, cfg SimConfig, rng *rand.Rand, centerDist []float64, taxi TaxiID, day Day, mult float64) MatchedTrajectory {
	mt := MatchedTrajectory{Taxi: taxi, Day: day}
	// Shift start spreads taxis across the first hour of the window.
	sec := float64(cfg.ActiveStartSec) + rng.Float64()*3600
	end := float64(cfg.ActiveEndSec)
	cur := roadnet.SegmentID(rng.Intn(n.NumSegments()))

	for sec < end {
		tripDur := rng.ExpFloat64() * cfg.MeanTripMinutes * 60
		if tripDur < 120 {
			tripDur = 120
		}
		tripEnd := sec + tripDur
		for sec < tripEnd && sec < end {
			// Per-visit noise models lights, stops and micro-congestion:
			// most visits near nominal speed, occasional crawls.
			noise := 0.6 + rng.Float64()*0.65 // U(0.6, 1.25)
			if rng.Float64() < 0.06 {
				noise *= 0.35 // stuck behind a light or pickup
			}
			speed := segmentSpeed(n, cfg.Profile, cur, sec, mult) * noise
			dt := n.Segment(cur).Length / speed
			mt.Visits = append(mt.Visits, Visit{
				Segment: cur,
				EnterMs: int32(sec * 1000),
				ExitMs:  int32((sec + dt) * 1000),
				Speed:   float32(speed),
			})
			sec += dt
			next, ok := pickNext(n, rng, cfg, centerDist, cur)
			if !ok {
				break
			}
			cur = next
		}
		// Idle between trips; next trip starts wherever this one ended.
		sec += rng.ExpFloat64() * cfg.MeanIdleMinutes * 60
	}
	return mt
}

// pickNext chooses the next segment from cur's successors, weighted by
// free-flow speed so highways carry through-traffic, and by the centre
// attraction so the fleet concentrates downtown. U-turns onto the twin
// are only taken at dead ends.
func pickNext(n *roadnet.Network, rng *rand.Rand, cfg SimConfig, centerDist []float64, cur roadnet.SegmentID) (roadnet.SegmentID, bool) {
	out := n.Outgoing(cur)
	if len(out) == 0 {
		return 0, false
	}
	rev := n.Segment(cur).Reverse
	var total float64
	weights := make([]float64, len(out))
	for i, s := range out {
		if s == rev && len(out) > 1 {
			continue
		}
		w := n.Segment(s).Class.FreeFlowSpeed()
		if centerDist[s] < centerDist[cur] {
			w *= 1 + cfg.CenterAttraction
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return out[0], true
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if w == 0 {
			continue
		}
		if r < w {
			return out[i], true
		}
		r -= w
	}
	return out[len(out)-1], true
}

// RawFromMatched synthesizes the raw GPS record stream a taxi's device
// would have produced for a matched trajectory: samples every interval
// along the segment shapes, with isotropic Gaussian position noise of the
// given sigma in metres. Used to exercise the map-matching stage.
// RawFromMatched needs absolute timestamps, so the caller supplies the
// day's midnight (e.g. Dataset.DayStart(mt.Day)).
func RawFromMatched(n *roadnet.Network, mt *MatchedTrajectory, dayStart time.Time, interval time.Duration, noiseMeters float64, seed int64) *Trajectory {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trajectory{Taxi: mt.Taxi, Day: mt.Day}
	if len(mt.Visits) == 0 {
		return tr
	}
	next := mt.Visits[0].Enter(dayStart)
	for _, v := range mt.Visits {
		seg := n.Segment(v.Segment)
		enter, exit := v.Enter(dayStart), v.Exit(dayStart)
		dur := exit.Sub(enter)
		if dur <= 0 {
			continue
		}
		for !next.After(exit) {
			if next.Before(enter) {
				next = enter
			}
			frac := float64(next.Sub(enter)) / float64(dur)
			pos := seg.Shape.PointAt(frac * seg.Length)
			pos = geo.Offset(pos, rng.NormFloat64()*noiseMeters, rng.NormFloat64()*noiseMeters)
			tr.Points = append(tr.Points, GPSPoint{Pos: pos, Time: next, Speed: float64(v.Speed)})
			next = next.Add(interval)
		}
	}
	return tr
}
