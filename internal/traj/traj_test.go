package traj

import (
	"bytes"
	"math"
	"testing"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
)

func testNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
		Rows:          6,
		Cols:          6,
		SpacingMeters: 800,
		LocalFraction: 0.4,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func smallSim(t *testing.T, n *roadnet.Network) *Dataset {
	t.Helper()
	ds, err := Simulate(n, SimConfig{
		Taxis:          10,
		Days:           5,
		Profile:        DefaultSpeedProfile(),
		Seed:           3,
		ActiveStartSec: 8 * 3600,
		ActiveEndSec:   12 * 3600,
		DaySpeedJitter: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestSimulateProducesValidTrajectories(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	if len(ds.Matched) == 0 {
		t.Fatal("no trajectories simulated")
	}
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		if err := mt.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, v := range mt.Visits {
			if v.Segment < 0 || int(v.Segment) >= n.NumSegments() {
				t.Fatalf("visit references segment %d outside network", v.Segment)
			}
			if v.Speed <= 0 {
				t.Fatalf("non-positive speed %v", v.Speed)
			}
		}
	}
}

func TestSimulateVisitsAreConnected(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		for j := 1; j < len(mt.Visits); j++ {
			prev, cur := mt.Visits[j-1], mt.Visits[j]
			// Either consecutive on the network or a new trip after idling.
			gap := cur.EnterMs - prev.ExitMs
			if gap > 1 {
				continue // idle gap between trips
			}
			connected := false
			for _, s := range n.Outgoing(prev.Segment) {
				if s == cur.Segment {
					connected = true
					break
				}
			}
			if !connected {
				t.Fatalf("taxi %d day %d: visit %d jumps from segment %d to non-adjacent %d",
					mt.Taxi, mt.Day, j, prev.Segment, cur.Segment)
			}
		}
	}
}

func TestSimulateRespectsActiveWindow(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		for _, v := range mt.Visits {
			sec := v.EnterSec()
			if sec < 8*3600-1 {
				t.Fatalf("visit entered at %v s, before the active window", sec)
			}
			// A trip may run a little past the window end but not wildly.
			if sec > 13*3600 {
				t.Fatalf("visit entered at %v s, far past the active window", sec)
			}
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	n := testNetwork(t)
	a := smallSim(t, n)
	b := smallSim(t, n)
	if len(a.Matched) != len(b.Matched) {
		t.Fatal("same seed should give identical datasets")
	}
	for i := range a.Matched {
		if len(a.Matched[i].Visits) != len(b.Matched[i].Visits) {
			t.Fatalf("trajectory %d differs", i)
		}
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	n := testNetwork(t)
	if _, err := Simulate(n, SimConfig{Taxis: 0, Days: 5}); err == nil {
		t.Fatal("zero taxis should error")
	}
	if _, err := Simulate(n, SimConfig{Taxis: 5, Days: 0}); err == nil {
		t.Fatal("zero days should error")
	}
	empty := roadnet.NewBuilder().Build()
	if _, err := Simulate(empty, SimConfig{Taxis: 1, Days: 1}); err == nil {
		t.Fatal("empty network should error")
	}
}

func TestRushHourSlowdown(t *testing.T) {
	p := DefaultSpeedProfile()
	rush := p.Factor(7.5 * 3600)
	evening := p.Factor(18 * 3600)
	night := p.Factor(3 * 3600)
	noon := p.Factor(12.5 * 3600)
	if rush >= noon || evening >= noon {
		t.Fatalf("rush hours should be slower than midday: rush=%v evening=%v noon=%v", rush, evening, noon)
	}
	if night <= noon {
		t.Fatalf("night should be at least as fast as midday: night=%v noon=%v", night, noon)
	}
	if rush < 0.05 || rush > 1 {
		t.Fatalf("rush factor out of range: %v", rush)
	}
}

func TestSpeedProfileWrapsMidnight(t *testing.T) {
	p := DefaultSpeedProfile()
	if math.Abs(p.Factor(0)-p.Factor(86400)) > 1e-9 {
		t.Fatal("profile should be periodic over the day")
	}
	if math.Abs(p.Factor(-3600)-p.Factor(82800)) > 1e-9 {
		t.Fatal("negative offsets should wrap")
	}
}

func TestFlatProfileIsOne(t *testing.T) {
	p := FlatSpeedProfile()
	for _, s := range []float64{0, 3600, 7.5 * 3600, 43200, 86399} {
		if p.Factor(s) != 1 {
			t.Fatalf("flat profile at %v = %v, want 1", s, p.Factor(s))
		}
	}
}

func TestSimulatedSpeedsFollowProfile(t *testing.T) {
	n := testNetwork(t)
	// Full-day sim with a strong rush-hour dip and no day jitter.
	ds, err := Simulate(n, SimConfig{
		Taxis: 30, Days: 2, Profile: DefaultSpeedProfile(), Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mean speed of primary-class visits at rush hour vs midday.
	avg := func(fromSec, toSec float64) float64 {
		var sum float64
		var cnt int
		for i := range ds.Matched {
			mt := &ds.Matched[i]
			for _, v := range mt.Visits {
				if n.Segment(v.Segment).Class != roadnet.Primary {
					continue
				}
				sec := v.EnterSec()
				if sec >= fromSec && sec < toSec {
					sum += float64(v.Speed)
					cnt++
				}
			}
		}
		if cnt == 0 {
			t.Fatalf("no visits between %v and %v", fromSec, toSec)
		}
		return sum / float64(cnt)
	}
	rush := avg(7*3600, 8*3600)
	midday := avg(12*3600, 13*3600)
	if rush >= midday*0.85 {
		t.Fatalf("rush-hour speeds (%v) should be well below midday (%v)", rush, midday)
	}
}

func TestCenterAttractionConcentratesTraffic(t *testing.T) {
	n := testNetwork(t)
	center := n.Bounds().Center()
	visitsNearCenter := func(attraction float64) int {
		ds, err := Simulate(n, SimConfig{
			Taxis: 20, Days: 2, Profile: FlatSpeedProfile(), Seed: 77,
			CenterAttraction: attraction,
		})
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for i := range ds.Matched {
			for _, v := range ds.Matched[i].Visits {
				if geo.Distance(n.Segment(v.Segment).Midpoint(), center) < 1200 {
					count++
				}
			}
		}
		return count
	}
	weak := visitsNearCenter(0.01) // effectively off (0 would default to 0.6)
	strong := visitsNearCenter(1.5)
	if strong <= weak {
		t.Fatalf("attraction should concentrate traffic downtown: weak=%d strong=%d", weak, strong)
	}
}

func TestRawFromMatched(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	mt := &ds.Matched[0]
	raw := RawFromMatched(n, mt, ds.DayStart(mt.Day), 30*time.Second, 15, 99)
	if err := raw.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(raw.Points) < 5 {
		t.Fatalf("raw trajectory has only %d points", len(raw.Points))
	}
	// Every raw point should be near its source segment (noise sigma 15 m).
	for _, p := range raw.Points {
		_, d, _, ok := n.SnapPoint(p.Pos)
		if !ok {
			t.Fatal("snap failed")
		}
		if d > 120 {
			t.Fatalf("raw point %v is %v m from any road", p.Pos, d)
		}
	}
	// Sampling interval should be respected.
	for i := 1; i < len(raw.Points); i++ {
		dt := raw.Points[i].Time.Sub(raw.Points[i-1].Time)
		if dt < 0 {
			t.Fatal("raw points out of order")
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Days != ds.Days || !got.BaseDate.Equal(ds.BaseDate) {
		t.Fatalf("header mismatch: %v/%v vs %v/%v", got.Days, got.BaseDate, ds.Days, ds.BaseDate)
	}
	if len(got.Matched) != len(ds.Matched) {
		t.Fatalf("trajectory count %d, want %d", len(got.Matched), len(ds.Matched))
	}
	for i := range ds.Matched {
		a, b := &ds.Matched[i], &got.Matched[i]
		if a.Taxi != b.Taxi || a.Day != b.Day || len(a.Visits) != len(b.Visits) {
			t.Fatalf("trajectory %d header mismatch", i)
		}
		for j := range a.Visits {
			va, vb := a.Visits[j], b.Visits[j]
			if va.Segment != vb.Segment {
				t.Fatalf("traj %d visit %d segment mismatch", i, j)
			}
			if va.EnterMs != vb.EnterMs || va.ExitMs != vb.ExitMs {
				t.Fatalf("traj %d visit %d time mismatch", i, j)
			}
			if math.Abs(float64(va.Speed)-float64(vb.Speed)) > 0.01 {
				t.Fatalf("traj %d visit %d speed mismatch: %v vs %v", i, j, va.Speed, vb.Speed)
			}
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadDataset(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadDataset(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should error")
	}
	// Truncated valid stream.
	n := testNetwork(t)
	ds := smallSim(t, n)
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadDataset(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input should error")
	}
}

func TestDatasetStats(t *testing.T) {
	n := testNetwork(t)
	ds := smallSim(t, n)
	st := ds.Stats()
	if st.Taxis != 10 {
		t.Fatalf("Taxis = %d, want 10", st.Taxis)
	}
	if st.Days != 5 {
		t.Fatalf("Days = %d, want 5", st.Days)
	}
	if st.Trajectories == 0 || st.Visits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTrajectoryValidateCatchesDisorder(t *testing.T) {
	now := time.Now()
	tr := &Trajectory{Points: []GPSPoint{
		{Pos: geo.Point{Lat: 22, Lng: 114}, Time: now},
		{Pos: geo.Point{Lat: 22, Lng: 114}, Time: now.Add(-time.Minute)},
	}}
	if err := tr.Validate(); err == nil {
		t.Fatal("out-of-order trajectory should fail validation")
	}
	bad := &Trajectory{Points: []GPSPoint{{Pos: geo.Point{Lat: 999, Lng: 0}, Time: now}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid position should fail validation")
	}
}

func TestSecondsOfDay(t *testing.T) {
	base := time.Date(2014, 11, 1, 0, 0, 0, 0, time.UTC)
	at := base.Add(26*time.Hour + 30*time.Minute) // day 1, 02:30
	if got := SecondsOfDay(base, at); got != 2*3600+1800 {
		t.Fatalf("SecondsOfDay = %d, want %d", got, 2*3600+1800)
	}
}
