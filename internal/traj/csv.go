package traj

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"streach/internal/geo"
)

// CSV interchange for raw GPS records, the practical equivalent of the
// thesis's "reads the massive trajectory data from a database". Columns
// match the paper's five core attributes:
//
//	taxi_id,timestamp,lat,lng,speed
//
// with timestamp in RFC 3339 and speed in m/s. Records may arrive in any
// order; ReadGPSCSV groups them into per-taxi-per-day trajectories
// (thesis §3.1: "one moving object only has one trajectory per day") and
// sorts each by time.

// WriteGPSCSV encodes raw trajectories, one GPS record per row.
func WriteGPSCSV(w io.Writer, trs []Trajectory) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"taxi_id", "timestamp", "lat", "lng", "speed"}); err != nil {
		return fmt.Errorf("traj: write csv header: %w", err)
	}
	for i := range trs {
		tr := &trs[i]
		for _, p := range tr.Points {
			rec := []string{
				strconv.FormatInt(int64(tr.Taxi), 10),
				p.Time.UTC().Format(time.RFC3339),
				strconv.FormatFloat(p.Pos.Lat, 'f', 6, 64),
				strconv.FormatFloat(p.Pos.Lng, 'f', 6, 64),
				strconv.FormatFloat(p.Speed, 'f', 2, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("traj: write csv record: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadGPSCSV decodes raw GPS rows and groups them into trajectories.
// baseDate fixes day 0 (records before it are rejected); rows are grouped
// by (taxi, calendar day since baseDate) and time-sorted within a group.
func ReadGPSCSV(r io.Reader, baseDate time.Time) ([]Trajectory, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("traj: read csv header: %w", err)
	}
	if header[0] != "taxi_id" {
		return nil, fmt.Errorf("traj: unexpected csv header %v", header)
	}
	baseDate = baseDate.UTC().Truncate(24 * time.Hour)

	type key struct {
		taxi TaxiID
		day  Day
	}
	groups := map[key][]GPSPoint{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d: %w", line, err)
		}
		taxi, err := strconv.ParseInt(rec[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d taxi_id: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339, rec[1])
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d timestamp: %w", line, err)
		}
		lat, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d lat: %w", line, err)
		}
		lng, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d lng: %w", line, err)
		}
		speed, err := strconv.ParseFloat(rec[4], 64)
		if err != nil {
			return nil, fmt.Errorf("traj: csv line %d speed: %w", line, err)
		}
		p := geo.Point{Lat: lat, Lng: lng}
		if !p.Valid() {
			return nil, fmt.Errorf("traj: csv line %d: invalid position %v", line, p)
		}
		day := int(ts.UTC().Sub(baseDate).Hours()) / 24
		if day < 0 {
			return nil, fmt.Errorf("traj: csv line %d: timestamp %v before base date %v", line, ts, baseDate)
		}
		k := key{TaxiID(taxi), Day(day)}
		groups[k] = append(groups[k], GPSPoint{Pos: p, Time: ts.UTC(), Speed: speed})
	}

	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].taxi != keys[j].taxi {
			return keys[i].taxi < keys[j].taxi
		}
		return keys[i].day < keys[j].day
	})
	out := make([]Trajectory, 0, len(keys))
	for _, k := range keys {
		pts := groups[k]
		sort.Slice(pts, func(i, j int) bool { return pts[i].Time.Before(pts[j].Time) })
		out = append(out, Trajectory{Taxi: k.taxi, Day: k.day, Points: pts})
	}
	return out, nil
}
