package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/traj"
	"streach/internal/xerr"
)

// Segmented write-ahead log (DESIGN.md §14).
//
// The single-file WAL of the first live-ingest cut had two scale
// problems: replay on open was serial in total write volume, and the
// only way to reclaim space was a whole-file truncate gated on a full
// compaction — a compaction stall grew the log without bound. The
// segmented log replaces it: appends route to per-shard active
// segments (parallel fsyncs, parallel replay), segments rotate by size
// and age, and a durable compaction retires exactly the segments it
// covered while newer ones live on.
//
// Layout: dir/seg-<epoch>-<seq>.log, seq globally monotonic (the
// retirement cursor), epoch informational. Segment format (little
// endian):
//
//	header: magic "IDSG" | version u16 | shard u16 | seq u64 | epoch u64
//	frame:  kind u8 | count u32 | count x record | crc u32
//
// kind 0 frames hold 20-byte Update records (the legacy WAL record),
// kind 1 frames hold 12-byte DeltaObs records — the "carry" a durable
// budgeted compaction writes for delta entries it rolled over, so
// retiring their original segments never sheds acknowledged data. The
// CRC-32C covers kind, count, and the records.
//
// Failure discipline: an append retries with doubling backoff, sealing
// the possibly-torn active segment before each retry so the fresh
// attempt starts a clean file (a torn frame mid-segment would end that
// segment's replay and silently drop every frame behind it). When the
// retries are exhausted the log flips to an explicit degraded state —
// updates stay live in memory, durability is honestly reported lost —
// and the next successful append clears it.
const (
	segMagic      = "IDSG"
	segVersion    = 1
	segHeaderSize = 4 + 2 + 2 + 8 + 8

	frameUpdates = 0
	frameObs     = 1

	obsRecordSize = 12
)

// SegmentedConfig controls a SegmentedLog. The zero value is usable.
type SegmentedConfig struct {
	// SegmentBytes rotates an active segment once it grows past this
	// (default 4 MiB).
	SegmentBytes int64
	// SegmentAge rotates an active segment older than this (default 1m):
	// age-bounded segments keep the retirement granularity fine even at
	// low write rates.
	SegmentAge time.Duration
	// Shards is the number of independent append streams (default 1).
	Shards int
	// Retries is how many times an append retries after the first
	// failure (default 3).
	Retries int
	// Backoff is the first retry's sleep; it doubles per attempt
	// (default 2ms).
	Backoff time.Duration
	// Epoch stamps new segment names (informational; see SetEpoch).
	Epoch uint64
	// Log receives rotation/degradation diagnostics (default
	// log.Default()).
	Log *log.Logger
}

func (c SegmentedConfig) withDefaults() SegmentedConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 4 << 20
	}
	if c.SegmentAge <= 0 {
		c.SegmentAge = time.Minute
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 2 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// sealedSegment is a closed segment awaiting retirement.
type sealedSegment struct {
	seq  uint64
	path string
}

// activeSegment is one shard's open append stream.
type activeSegment struct {
	mu    sync.Mutex
	shard int
	f     *os.File
	path  string
	seq   uint64
	size  int64
	born  time.Time
}

// SegmentedLog is the sharded, rotating ingest WAL.
type SegmentedLog struct {
	dir string
	cfg SegmentedConfig

	epoch atomic.Uint64

	mu      sync.Mutex // seq allocation + sealed list
	nextSeq uint64
	sealed  []sealedSegment

	active []activeSegment

	degraded  atomic.Bool
	errCount  atomic.Int64
	rotations atomic.Int64
	retired   atomic.Int64
	lastErrMu sync.Mutex
	lastErr   string

	fault  atomic.Pointer[func() error]
	closed atomic.Bool
}

// OpenSegmented opens (or creates) the segmented WAL directory. Existing
// segments — a previous process's log, already replayed by the caller —
// are adopted as sealed: they retire with the next covering durable
// compaction, and new appends go to fresh segments numbered after them.
func OpenSegmented(dir string, cfg SegmentedConfig) (*SegmentedLog, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create wal dir: %w", err)
	}
	l := &SegmentedLog{dir: dir, cfg: cfg, nextSeq: 1}
	l.epoch.Store(cfg.Epoch)
	l.active = make([]activeSegment, cfg.Shards)
	for i := range l.active {
		l.active[i].shard = i
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ingest: scan wal dir: %w", err)
	}
	for _, e := range entries {
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		l.sealed = append(l.sealed, sealedSegment{seq: seq, path: filepath.Join(dir, e.Name())})
		if seq >= l.nextSeq {
			l.nextSeq = seq + 1
		}
	}
	sort.Slice(l.sealed, func(i, j int) bool { return l.sealed[i].seq < l.sealed[j].seq })
	return l, nil
}

// parseSegmentName extracts the sequence number from seg-<epoch>-<seq>.log.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var epoch, seq uint64
	if _, err := fmt.Sscanf(name, "seg-%d-%d.log", &epoch, &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// SetEpoch updates the epoch stamped into subsequently created segment
// names. Informational — retirement keys on seq — but it makes ls(1) of
// the wal directory tell the compaction story.
func (l *SegmentedLog) SetEpoch(e uint64) { l.epoch.Store(e) }

// SetFault installs a write-fault hook (tests only): fn is consulted
// before each frame write and a non-nil error fails that attempt.
func (l *SegmentedLog) SetFault(fn func() error) {
	if fn == nil {
		l.fault.Store(nil)
		return
	}
	l.fault.Store(&fn)
}

// Degraded reports whether the last append exhausted its retries: the
// system is live but accepting updates it cannot promise to recover
// after a crash. The next successful append clears it.
func (l *SegmentedLog) Degraded() bool { return l.degraded.Load() }

// LastError returns the most recent append failure ("" when none).
func (l *SegmentedLog) LastError() string {
	l.lastErrMu.Lock()
	defer l.lastErrMu.Unlock()
	return l.lastErr
}

// SegStats snapshots the log.
type SegStats struct {
	Segments     int   // segment files alive (sealed + active)
	Sealed       int   // sealed, awaiting retirement
	Rotations    int64 // segments created
	Retired      int64 // segments removed by Retire
	AppendErrors int64 // appends that exhausted their retries
	Degraded     bool
	LastError    string
}

// Stats snapshots the log's counters.
func (l *SegmentedLog) Stats() SegStats {
	l.mu.Lock()
	sealed := len(l.sealed)
	l.mu.Unlock()
	activeN := 0
	for i := range l.active {
		a := &l.active[i]
		a.mu.Lock()
		if a.f != nil {
			activeN++
		}
		a.mu.Unlock()
	}
	return SegStats{
		Segments:     sealed + activeN,
		Sealed:       sealed,
		Rotations:    l.rotations.Load(),
		Retired:      l.retired.Load(),
		AppendErrors: l.errCount.Load(),
		Degraded:     l.degraded.Load(),
		LastError:    l.LastError(),
	}
}

// AppendUpdates durably appends one batch to the shard's stream.
func (l *SegmentedLog) AppendUpdates(shard int, batch []Update) error {
	if len(batch) == 0 {
		return nil
	}
	return l.appendFrame(shard, encodeFrame(frameUpdates, len(batch), encodeUpdateRecords(batch)))
}

// AppendObs durably appends one carry batch of raw delta observations.
func (l *SegmentedLog) AppendObs(shard int, obs []stindex.DeltaObs) error {
	if len(obs) == 0 {
		return nil
	}
	return l.appendFrame(shard, encodeFrame(frameObs, len(obs), encodeObsRecords(obs)))
}

func (l *SegmentedLog) appendFrame(shard int, frame []byte) error {
	if l.closed.Load() {
		return errors.New("ingest: wal is closed")
	}
	a := &l.active[shard%len(l.active)]
	a.mu.Lock()
	defer a.mu.Unlock()
	var err error
	backoff := l.cfg.Backoff
	for attempt := 0; attempt <= l.cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		var torn bool
		if torn, err = l.writeFrameLocked(a, frame); err == nil {
			if l.degraded.CompareAndSwap(true, false) {
				l.cfg.Log.Printf("ingest: wal append recovered on shard %d; durability restored", a.shard)
			}
			return nil
		}
		if torn {
			// The failure may have left a torn frame at the tail; seal the
			// segment so the retry starts a fresh file instead of burying
			// good frames behind a tear that ends replay.
			l.sealLocked(a)
		}
	}
	l.errCount.Add(1)
	l.setLastErr(err)
	if l.degraded.CompareAndSwap(false, true) {
		l.cfg.Log.Printf("ingest: wal append failed after %d attempts (%v); durability degraded, updates stay live", l.cfg.Retries+1, err)
	}
	return err
}

// writeFrameLocked writes one frame to the shard's active segment,
// rotating first when the segment is absent, full, or stale. torn
// reports whether the failure could have left partial bytes in the
// file (write/sync), as opposed to failing cleanly before any write.
func (l *SegmentedLog) writeFrameLocked(a *activeSegment, frame []byte) (torn bool, err error) {
	if a.f == nil || a.size >= l.cfg.SegmentBytes || time.Since(a.born) >= l.cfg.SegmentAge {
		if err := l.rotateLocked(a); err != nil {
			return false, err
		}
	}
	if fault := l.fault.Load(); fault != nil {
		if err := (*fault)(); err != nil {
			return false, err
		}
	}
	storage.CrashPoint("wal.append")
	if _, err := a.f.Write(frame); err != nil {
		return true, fmt.Errorf("ingest: append wal segment %s: %w", filepath.Base(a.path), err)
	}
	a.size += int64(len(frame))
	storage.CrashPoint("wal.sync")
	if err := a.f.Sync(); err != nil {
		return true, fmt.Errorf("ingest: sync wal segment %s: %w", filepath.Base(a.path), err)
	}
	return false, nil
}

// rotateLocked seals the shard's current segment (if any) and opens a
// fresh one: header written and synced, creation made durable with a
// directory sync before any frame can land in it.
func (l *SegmentedLog) rotateLocked(a *activeSegment) error {
	l.sealLocked(a)
	l.mu.Lock()
	seq := l.nextSeq
	l.nextSeq++
	l.mu.Unlock()
	name := fmt.Sprintf("seg-%06d-%08d.log", l.epoch.Load(), seq)
	path := filepath.Join(l.dir, name)
	storage.CrashPoint("wal.create")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("ingest: create wal segment: %w", err)
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr[:4], segMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], segVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], uint16(a.shard))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	binary.LittleEndian.PutUint64(hdr[16:24], l.epoch.Load())
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("ingest: write wal segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("ingest: sync wal segment header: %w", err)
	}
	if err := storage.SyncDir(l.dir); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("ingest: sync wal dir: %w", err)
	}
	a.f, a.path, a.seq, a.size, a.born = f, path, seq, segHeaderSize, time.Now()
	l.rotations.Add(1)
	return nil
}

// sealLocked closes the shard's active segment and queues it for
// retirement. Caller holds a.mu.
func (l *SegmentedLog) sealLocked(a *activeSegment) {
	if a.f == nil {
		return
	}
	storage.CrashPoint("wal.seal")
	a.f.Sync()
	a.f.Close()
	l.mu.Lock()
	l.sealed = append(l.sealed, sealedSegment{seq: a.seq, path: a.path})
	l.mu.Unlock()
	a.f = nil
}

// Seal closes every active segment and returns the retirement cut: the
// highest sequence number allocated so far. A durable compaction calls
// Seal before snapshotting the delta layer — every record in a segment
// at or below the cut is in that snapshot (folded or carried) — and
// passes the cut to Retire once the fold has persisted. Appends after
// Seal open fresh segments above the cut.
func (l *SegmentedLog) Seal() uint64 {
	l.mu.Lock()
	cut := l.nextSeq - 1
	l.mu.Unlock()
	for i := range l.active {
		a := &l.active[i]
		a.mu.Lock()
		l.sealLocked(a)
		a.mu.Unlock()
	}
	return cut
}

// Retire removes every sealed segment at or below the cut — they are
// covered by a durably persisted compaction epoch — and syncs the
// directory. A failed removal is logged and the segment left behind:
// replay is idempotent, so an undead segment costs reopen time, never
// correctness.
func (l *SegmentedLog) Retire(cut uint64) error {
	l.mu.Lock()
	var gone []sealedSegment
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.seq <= cut {
			gone = append(gone, s)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	if len(gone) == 0 {
		return nil
	}
	var firstErr error
	for _, s := range gone {
		storage.CrashPoint("wal.retire")
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			l.cfg.Log.Printf("ingest: retire wal segment %s: %v (left for replay)", filepath.Base(s.path), err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		l.retired.Add(1)
	}
	if err := storage.SyncDir(l.dir); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Close seals every active segment. Sealed segments stay on disk for
// the next open's replay.
func (l *SegmentedLog) Close() error {
	if !l.closed.CompareAndSwap(false, true) {
		return nil
	}
	l.Seal()
	return nil
}

func (l *SegmentedLog) setLastErr(err error) {
	l.lastErrMu.Lock()
	l.lastErr = err.Error()
	l.lastErrMu.Unlock()
}

// encodeFrame frames a record payload: kind, count, payload, CRC.
func encodeFrame(kind byte, count int, payload []byte) []byte {
	buf := make([]byte, 1+4+len(payload)+4)
	buf[0] = kind
	binary.LittleEndian.PutUint32(buf[1:5], uint32(count))
	copy(buf[5:], payload)
	h := storage.NewChecksum()
	h.Write(buf[:5+len(payload)])
	binary.LittleEndian.PutUint32(buf[5+len(payload):], h.Sum32())
	return buf
}

func encodeObsRecords(obs []stindex.DeltaObs) []byte {
	buf := make([]byte, obsRecordSize*len(obs))
	off := 0
	for _, o := range obs {
		binary.LittleEndian.PutUint32(buf[off:], uint32(o.Seg))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(o.Slot))
		binary.LittleEndian.PutUint16(buf[off+8:], uint16(o.Day))
		binary.LittleEndian.PutUint16(buf[off+10:], uint16(o.Taxi))
		off += obsRecordSize
	}
	return buf
}

// ReplayStats reports one ReplaySegments pass.
type ReplayStats struct {
	Segments        int   // segment files replayed (fully or partially)
	CorruptSegments int   // segments with a damaged header or frame
	Updates         int   // kind-0 records delivered
	Obs             int   // kind-1 (carry) records delivered
	TruncatedBytes  int64 // corrupt suffix bytes cut off in place
}

// ReplaySegments replays every segment under dir: segments group by the
// shard recorded in their headers, shards replay in parallel (up to
// workers goroutines), and segments within a shard replay in sequence
// order. The apply callbacks must be safe for concurrent use.
//
// Damage containment is per segment: a frame that fails its CRC (or a
// truncated tail) ends that segment's replay, the file is truncated in
// place to its intact prefix — so the prefix stays durable for the
// next open without re-replaying a corrupt tail forever — and later
// segments replay normally. A segment with an unreadable header is
// removed entirely. A missing dir replays nothing.
func ReplaySegments(dir string, workers int, applyUpdates func([]Update) error, applyObs func([]stindex.DeltaObs) error) (ReplayStats, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return ReplayStats{}, nil
		}
		return ReplayStats{}, fmt.Errorf("ingest: scan wal dir: %w", err)
	}
	type segFile struct {
		seq  uint64
		path string
	}
	var stats ReplayStats
	var statsMu sync.Mutex
	groups := make(map[int][]segFile)
	for _, e := range entries {
		seq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		path := filepath.Join(dir, e.Name())
		shard, err := readSegmentHeader(path)
		if err != nil {
			log.Printf("ingest: wal segment %s header unreadable (%v): dropped", e.Name(), err)
			os.Remove(path)
			statsMu.Lock()
			stats.CorruptSegments++
			statsMu.Unlock()
			continue
		}
		groups[shard] = append(groups[shard], segFile{seq: seq, path: path})
	}
	if len(groups) == 0 {
		if stats.CorruptSegments > 0 {
			storage.SyncDir(dir)
		}
		return stats, nil
	}
	if workers <= 0 {
		workers = 1
	}
	shardCh := make(chan []segFile, len(groups))
	for _, segs := range groups {
		sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
		shardCh <- segs
	}
	close(shardCh)
	if workers > len(groups) {
		workers = len(groups)
	}
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for segs := range shardCh {
				for _, sf := range segs {
					st, err := replaySegment(sf.path, applyUpdates, applyObs)
					statsMu.Lock()
					stats.Segments++
					stats.Updates += st.Updates
					stats.Obs += st.Obs
					stats.TruncatedBytes += st.TruncatedBytes
					stats.CorruptSegments += st.CorruptSegments
					statsMu.Unlock()
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	storage.SyncDir(dir)
	return stats, firstErr
}

// readSegmentHeader validates a segment's header and returns its shard.
func readSegmentHeader(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return 0, xerr.Markf(xerr.KindCorrupt, "truncated header: %v", err)
	}
	if string(hdr[:4]) != segMagic {
		return 0, xerr.Markf(xerr.KindCorrupt, "bad magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != segVersion {
		return 0, xerr.Markf(xerr.KindCorrupt, "unsupported version %d", v)
	}
	return int(binary.LittleEndian.Uint16(hdr[6:8])), nil
}

// replaySegment streams one segment's intact frames to the callbacks.
// Corruption truncates the file to the intact prefix and stops this
// segment only; the error return is reserved for apply failures.
func replaySegment(path string, applyUpdates func([]Update) error, applyObs func([]stindex.DeltaObs) error) (ReplayStats, error) {
	var stats ReplayStats
	f, err := os.Open(path)
	if err != nil {
		return stats, nil // raced a retire; nothing to replay
	}
	br := bufio.NewReader(f)
	if _, err := br.Discard(segHeaderSize); err != nil {
		f.Close()
		return stats, nil
	}
	good := int64(segHeaderSize)
	var hdr [5]byte
	corrupt := ""
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				corrupt = fmt.Sprintf("truncated frame header: %v", err)
			}
			break
		}
		kind := hdr[0]
		n := int(binary.LittleEndian.Uint32(hdr[1:5]))
		recSize := 0
		switch kind {
		case frameUpdates:
			recSize = recordSize
		case frameObs:
			recSize = obsRecordSize
		default:
			corrupt = fmt.Sprintf("unknown frame kind %d", kind)
		}
		if corrupt == "" && (n <= 0 || n > 1<<20) {
			corrupt = fmt.Sprintf("implausible frame count %d", n)
		}
		if corrupt != "" {
			break
		}
		payload := make([]byte, recSize*n+4)
		if _, err := io.ReadFull(br, payload); err != nil {
			corrupt = fmt.Sprintf("truncated frame: %v", err)
			break
		}
		h := storage.NewChecksum()
		h.Write(hdr[:])
		h.Write(payload[:recSize*n])
		if got, want := h.Sum32(), binary.LittleEndian.Uint32(payload[recSize*n:]); got != want {
			corrupt = fmt.Sprintf("frame checksum mismatch (stored %08x, computed %08x)", want, got)
			break
		}
		switch kind {
		case frameUpdates:
			batch := decodeUpdateRecords(payload[:recSize*n], n)
			if err := applyUpdates(batch); err != nil {
				f.Close()
				return stats, err
			}
			stats.Updates += n
		case frameObs:
			obs := decodeObsRecords(payload[:recSize*n], n)
			if err := applyObs(obs); err != nil {
				f.Close()
				return stats, err
			}
			stats.Obs += n
		}
		good += int64(5 + recSize*n + 4)
	}
	f.Close()
	if corrupt != "" {
		stats.CorruptSegments++
		if fi, err := os.Stat(path); err == nil && fi.Size() > good {
			stats.TruncatedBytes = fi.Size() - good
			log.Printf("ingest: wal segment %s corrupt after %d bytes (%s): truncating %d-byte suffix, later segments unaffected",
				filepath.Base(path), good, corrupt, stats.TruncatedBytes)
			storage.CrashPoint("wal.truncate")
			if w, err := os.OpenFile(path, os.O_WRONLY, 0); err == nil {
				if err := w.Truncate(good); err == nil {
					w.Sync()
				} else {
					log.Printf("ingest: truncate corrupt wal segment %s: %v", filepath.Base(path), err)
				}
				w.Close()
			} else {
				log.Printf("ingest: open corrupt wal segment %s for repair: %v", filepath.Base(path), err)
			}
		}
	}
	return stats, nil
}

func decodeObsRecords(payload []byte, n int) []stindex.DeltaObs {
	obs := make([]stindex.DeltaObs, n)
	off := 0
	for i := range obs {
		obs[i] = stindex.DeltaObs{
			Seg:  roadnet.SegmentID(binary.LittleEndian.Uint32(payload[off:])),
			Slot: int(binary.LittleEndian.Uint32(payload[off+4:])),
			Day:  traj.Day(binary.LittleEndian.Uint16(payload[off+8:])),
			Taxi: traj.TaxiID(binary.LittleEndian.Uint16(payload[off+10:])),
		}
		off += obsRecordSize
	}
	return obs
}
