package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"streach/internal/conindex"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
	"streach/internal/xerr"
)

func testIndexes(t *testing.T) (*stindex.Index, *conindex.Index) {
	t.Helper()
	n, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin: geo.Point{Lat: 22.5, Lng: 114.0},
		Rows:   5, Cols: 5, SpacingMeters: 700, LocalFraction: 0.3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := traj.Simulate(n, traj.SimConfig{
		Taxis: 10, Days: 3, Profile: traj.DefaultSpeedProfile(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stindex.Build(n, ds, stindex.Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	con, err := conindex.Build(n, ds, conindex.Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	return st, con
}

func testUpdates(n int) []Update {
	out := make([]Update, 0, n)
	for i := 0; i < n; i++ {
		enter := int32((100 + i%180) * 300 * 1000)
		out = append(out, Update{
			Taxi: traj.TaxiID(100 + i%20), Day: traj.Day(i % 3),
			Seg: roadnet.SegmentID(i % 40), EnterMs: enter, ExitMs: enter + 30_000,
			Speed: 8,
		})
	}
	return out
}

func TestWriterAppliesAndCounts(t *testing.T) {
	st, con := testIndexes(t)
	w := NewWriter(st, con, Config{FlushInterval: 5 * time.Millisecond})
	defer w.Close()

	updates := testUpdates(100)
	// Two invalid updates: bad segment, inverted interval.
	updates = append(updates,
		Update{Taxi: 1, Day: 0, Seg: 9999, EnterMs: 0, ExitMs: 1000, Speed: 5},
		Update{Taxi: 1, Day: 0, Seg: 1, EnterMs: 5000, ExitMs: 1000, Speed: 5},
	)
	if err := w.Add(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Accepted != 102 || s.Applied != 100 || s.Dropped != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if len(s.PerShard) != 1 || s.PerShard[0] != 100 {
		t.Fatalf("per-shard counts = %v", s.PerShard)
	}
	if ds := st.DeltaStats(); ds.PendingObs == 0 || ds.DataVersion == 0 {
		t.Fatalf("delta layer untouched: %+v", ds)
	}
	if con.InvalidationGen() == 0 {
		t.Fatal("con-index bounds untouched")
	}
}

func TestTryAddBackpressureAndClose(t *testing.T) {
	st, con := testIndexes(t)
	wal, err := OpenLog(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	// Slow the workers to a crawl via the WAL fault hook so the tiny
	// queue fills deterministically.
	wal.SetFault(func() error { time.Sleep(20 * time.Millisecond); return nil })
	w := NewWriter(st, con, Config{
		Workers: 1, QueueDepth: 4, BatchSize: 1, FlushInterval: time.Millisecond, WAL: wal,
	})
	updates := testUpdates(256)
	admitted := 0
	var lastErr error
	for off := 0; off < len(updates); off += 16 {
		n, err := w.TryAdd(updates[off : off+16])
		admitted += n
		if err != nil {
			lastErr = err
		}
	}
	if !errors.Is(lastErr, ErrBackpressure) {
		t.Fatalf("flooding a 4-deep queue never hit backpressure (admitted %d)", admitted)
	}
	if admitted == len(updates) {
		t.Fatal("every update admitted despite backpressure error")
	}
	if s := w.Stats(); s.Rejected == 0 {
		t.Fatalf("rejected counter not bumped: %+v", s)
	}

	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drains: everything admitted must be applied.
	if s := w.Stats(); s.Applied+s.Dropped != int64(admitted) {
		t.Fatalf("close did not drain: %+v (admitted %d)", s, admitted)
	}
	if _, err := w.TryAdd(updates[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("TryAdd after close = %v", err)
	}
	if err := w.Add(context.Background(), updates[:1]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after close = %v", err)
	}
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	b1 := testUpdates(7)
	b2 := testUpdates(3)
	for i := range b2 {
		b2[i].Taxi += 1000
	}
	if err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]Update
	n, err := ReplayLog(path, func(b []Update) error {
		got = append(got, append([]Update(nil), b...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || len(got) != 2 {
		t.Fatalf("replayed %d updates in %d batches", n, len(got))
	}
	if !reflect.DeepEqual(got[0], b1) || !reflect.DeepEqual(got[1], b2) {
		t.Fatal("replayed batches differ from appended")
	}
}

func TestWALReplayMissingFile(t *testing.T) {
	n, err := ReplayLog(filepath.Join(t.TempDir(), "absent"), func([]Update) error {
		t.Fatal("callback on missing file")
		return nil
	})
	if n != 0 || err != nil {
		t.Fatalf("missing wal: n=%d err=%v", n, err)
	}
}

// TestWALCorruptionFuzz: flip a single bit anywhere in the log. The
// replay must either still succeed (the flip landed in the pre-corrupt
// prefix CRC's own batch, impossible — every byte is covered) or stop
// with a KindCorrupt error after delivering only intact prefix batches.
// Never a panic, never a silently wrong record.
func TestWALCorruptionFuzz(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	b1, b2 := testUpdates(5), testUpdates(4)
	if err := l.Append(b1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(b2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for bit := 0; bit < len(data)*8; bit += 13 {
		mut := append([]byte(nil), data...)
		mut[bit/8] ^= 1 << (bit % 8)
		p := filepath.Join(dir, "mut")
		if err := os.WriteFile(p, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var batches [][]Update
		n, err := ReplayLog(p, func(b []Update) error {
			batches = append(batches, append([]Update(nil), b...))
			return nil
		})
		if err == nil {
			t.Fatalf("bit %d: corruption went undetected (replayed %d)", bit, n)
		}
		if xerr.KindOf(err) != xerr.KindCorrupt {
			t.Fatalf("bit %d: error not marked corrupt: %v", bit, err)
		}
		// Only intact prefix batches may have been delivered, verbatim.
		for i, b := range batches {
			var want []Update
			if i == 0 {
				want = b1
			} else {
				want = b2
			}
			if !reflect.DeepEqual(b, want) {
				t.Fatalf("bit %d: delivered batch %d differs from appended", bit, i)
			}
		}
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testUpdates(9)); err != nil {
		t.Fatal(err)
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testUpdates(2)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ReplayLog(path, func([]Update) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("replay after truncate = %d updates, want 2", n)
	}
}

// TestWriterDegradedWAL: WAL append failures keep the updates live (the
// indexes got them) and are counted, never silently swallowed and never
// fatal to the writer.
func TestWriterDegradedWAL(t *testing.T) {
	st, con := testIndexes(t)
	wal, err := OpenLog(filepath.Join(t.TempDir(), "wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	wal.SetFault(func() error { return errors.New("disk gone") })
	w := NewWriter(st, con, Config{FlushInterval: time.Millisecond, WAL: wal})
	defer w.Close()

	if err := w.Add(context.Background(), testUpdates(50)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := w.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Applied != 50 {
		t.Fatalf("updates lost on WAL failure: %+v", s)
	}
	if s.WALErrors == 0 {
		t.Fatalf("WAL failures not counted: %+v", s)
	}
}

// TestApplyBatchReplayIdempotent pins the replay contract: applying the
// same WAL batch twice leaves the ST-Index delta unchanged (set union)
// and the Con-Index min/max bounds unchanged; only mean-speed
// accumulators may move.
func TestApplyBatchReplayIdempotent(t *testing.T) {
	st, con := testIndexes(t)
	batch := testUpdates(40)

	applied, dropped := ApplyBatch(st, con, batch)
	if applied != 40 || dropped != 0 {
		t.Fatalf("first apply: applied=%d dropped=%d", applied, dropped)
	}
	ds1 := st.DeltaStats()
	gen1 := con.InvalidationGen()

	applied, dropped = ApplyBatch(st, con, batch)
	if applied != 40 || dropped != 0 {
		t.Fatalf("second apply: applied=%d dropped=%d", applied, dropped)
	}
	ds2 := st.DeltaStats()
	if ds2.PendingObs != ds1.PendingObs || ds2.DirtyKeys != ds1.DirtyKeys {
		t.Fatalf("replay double-counted delta observations: %+v -> %+v", ds1, ds2)
	}
	if con.InvalidationGen() != gen1 {
		t.Fatal("replaying identical speeds moved a min/max bound")
	}
	// The caller's batch must not be clobbered by in-place expansion.
	if batch[0].Taxi != 100 {
		t.Fatalf("ApplyBatch mutated the caller's batch: %+v", batch[0])
	}
}
