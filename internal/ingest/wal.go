// Package ingest turns the read-only streach indexes into a live
// system: a batching, worker-pooled Writer applies streaming position
// updates to the ST-Index delta layer and the Con-Index speed
// statistics, an append-only write-ahead log makes accepted updates
// crash-durable between compactions, and a background trigger folds the
// delta layer into the persisted blobs (a new index epoch) off the hot
// path. See DESIGN.md §13.
package ingest

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sync"

	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/traj"
	"streach/internal/xerr"
)

// Update is one accepted position report, resolved to a road segment:
// taxi traversed seg on day between EnterMs and ExitMs (milliseconds
// since the day's midnight) at the given speed.
type Update struct {
	Taxi    traj.TaxiID
	Day     traj.Day
	Seg     roadnet.SegmentID
	EnterMs int32
	ExitMs  int32
	Speed   float32
}

// WAL format (little endian):
//
//	magic "IDLT" | version u16
//	then per batch: u32 count | count x record | crc u32
//	record: seg u32 | day u16 | taxi u16 | enterMs u32 | exitMs u32 |
//	        speed f32 (20 bytes)
//
// The CRC-32C covers the count and the records. A batch that fails its
// CRC — or a truncated tail batch from a crash mid-append — ends the
// replay: everything before it is applied, the file is reported
// corrupt, and the caller drops it (cold re-ingest is the recovery
// path). A corrupt batch is never partially applied.
const (
	walMagic   = "IDLT"
	walVersion = 1
	recordSize = 20
)

// Log is the ingest write-ahead log. Appends are serialised and synced
// per batch; Replay streams a log back.
type Log struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// fault, when set, is called before every append; a non-nil return
	// is treated as the write failing (test hook for degraded-WAL
	// behaviour).
	fault func() error
}

// OpenLog opens (or creates) the WAL at path for appending. A new file
// gets the header; an existing file is appended to as-is (the caller is
// expected to have replayed it first).
func OpenLog(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: open wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: stat wal: %w", err)
	}
	if st.Size() == 0 {
		var hdr [6]byte
		copy(hdr[:4], walMagic)
		binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("ingest: write wal header: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("ingest: seek wal: %w", err)
	}
	return &Log{f: f, path: path}, nil
}

// SetFault installs a write-fault hook (tests only): fn is consulted
// before each append and a non-nil error fails the append.
func (l *Log) SetFault(fn func() error) {
	l.mu.Lock()
	l.fault = fn
	l.mu.Unlock()
}

// Append writes one batch record and syncs it.
func (l *Log) Append(batch []Update) error {
	if len(batch) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("ingest: wal is closed")
	}
	if l.fault != nil {
		if err := l.fault(); err != nil {
			return err
		}
	}
	buf := encodeBatch(batch)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("ingest: append wal: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("ingest: sync wal: %w", err)
	}
	return nil
}

func encodeBatch(batch []Update) []byte {
	buf := make([]byte, 4+recordSize*len(batch)+4)
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(batch)))
	off := 4 + copy(buf[4:], encodeUpdateRecords(batch))
	h := storage.NewChecksum()
	h.Write(buf[:off])
	binary.LittleEndian.PutUint32(buf[off:], h.Sum32())
	return buf
}

// encodeUpdateRecords serialises a batch as bare 20-byte records — the
// shared record codec of the legacy single-file WAL and the segmented
// WAL's kind-0 frames.
func encodeUpdateRecords(batch []Update) []byte {
	buf := make([]byte, recordSize*len(batch))
	off := 0
	for _, u := range batch {
		binary.LittleEndian.PutUint32(buf[off:], uint32(u.Seg))
		binary.LittleEndian.PutUint16(buf[off+4:], uint16(u.Day))
		binary.LittleEndian.PutUint16(buf[off+6:], uint16(u.Taxi))
		binary.LittleEndian.PutUint32(buf[off+8:], uint32(u.EnterMs))
		binary.LittleEndian.PutUint32(buf[off+12:], uint32(u.ExitMs))
		binary.LittleEndian.PutUint32(buf[off+16:], math.Float32bits(u.Speed))
		off += recordSize
	}
	return buf
}

// decodeUpdateRecords is encodeUpdateRecords' inverse over a validated
// payload of n records.
func decodeUpdateRecords(payload []byte, n int) []Update {
	batch := make([]Update, n)
	off := 0
	for i := range batch {
		batch[i] = Update{
			Seg:     roadnet.SegmentID(binary.LittleEndian.Uint32(payload[off:])),
			Day:     traj.Day(binary.LittleEndian.Uint16(payload[off+4:])),
			Taxi:    traj.TaxiID(binary.LittleEndian.Uint16(payload[off+6:])),
			EnterMs: int32(binary.LittleEndian.Uint32(payload[off+8:])),
			ExitMs:  int32(binary.LittleEndian.Uint32(payload[off+12:])),
			Speed:   math.Float32frombits(binary.LittleEndian.Uint32(payload[off+16:])),
		}
		off += recordSize
	}
	return batch
}

// Truncate discards the log's contents, leaving a fresh header. Called
// after a durable compaction: the folded observations are now in the
// page store and meta, so replaying them would double-apply the speed
// statistics.
func (l *Log) Truncate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("ingest: wal is closed")
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("ingest: truncate wal: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var hdr [6]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	if _, err := l.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("ingest: rewrite wal header: %w", err)
	}
	return l.f.Sync()
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// ReplayLog streams every intact batch of the WAL at path to fn, in
// order. A missing file replays nothing. A bad header, a CRC mismatch,
// or a truncated batch stops the replay and returns a KindCorrupt
// error; batches before the damage have already been delivered (they
// were individually checksummed), so the caller can keep them and drop
// the file.
func ReplayLog(path string, fn func([]Update) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("ingest: open wal: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdr := make([]byte, 6)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return 0, xerr.Markf(xerr.KindCorrupt, "ingest: wal header: %v", err)
	}
	if string(hdr[:4]) != walMagic {
		return 0, xerr.Markf(xerr.KindCorrupt, "ingest: bad wal magic %q", hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != walVersion {
		return 0, xerr.Markf(xerr.KindCorrupt, "ingest: unsupported wal version %d", v)
	}
	total := 0
	var cnt [4]byte
	for {
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			if err == io.EOF {
				return total, nil
			}
			return total, xerr.Markf(xerr.KindCorrupt, "ingest: truncated wal batch header: %v", err)
		}
		n := int(binary.LittleEndian.Uint32(cnt[:]))
		if n <= 0 || n > 1<<20 {
			return total, xerr.Markf(xerr.KindCorrupt, "ingest: implausible wal batch count %d", n)
		}
		payload := make([]byte, recordSize*n+4)
		if _, err := io.ReadFull(br, payload); err != nil {
			return total, xerr.Markf(xerr.KindCorrupt, "ingest: truncated wal batch: %v", err)
		}
		h := storage.NewChecksum()
		h.Write(cnt[:])
		h.Write(payload[:recordSize*n])
		want := binary.LittleEndian.Uint32(payload[recordSize*n:])
		if got := h.Sum32(); got != want {
			return total, xerr.Markf(xerr.KindCorrupt, "ingest: wal batch checksum mismatch (stored %08x, computed %08x)", want, got)
		}
		batch := make([]Update, n)
		off := 0
		for i := range batch {
			batch[i] = Update{
				Seg:     roadnet.SegmentID(binary.LittleEndian.Uint32(payload[off:])),
				Day:     traj.Day(binary.LittleEndian.Uint16(payload[off+4:])),
				Taxi:    traj.TaxiID(binary.LittleEndian.Uint16(payload[off+6:])),
				EnterMs: int32(binary.LittleEndian.Uint32(payload[off+8:])),
				ExitMs:  int32(binary.LittleEndian.Uint32(payload[off+12:])),
				Speed:   math.Float32frombits(binary.LittleEndian.Uint32(payload[off+16:])),
			}
			off += recordSize
		}
		if err := fn(batch); err != nil {
			return total, err
		}
		total += n
	}
}
