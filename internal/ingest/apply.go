package ingest

import (
	"streach/internal/conindex"
	"streach/internal/stindex"
)

// expandBatch validates a batch against the index bounds and expands
// each surviving update into per-slot ST-Index delta observations (the
// same slot math Build applies to a visit: every slot the [enter, exit]
// interval overlaps, with slots past midnight dropped). It returns the
// good updates, their observations, and the rejected updates so the
// caller can account for (and diagnose) each drop.
func expandBatch(st *stindex.Index, batch []Update) (good []Update, obs []stindex.DeltaObs, rejected []Update) {
	numSeg := st.Network().NumSegments()
	slotSec := st.SlotSeconds()
	numSlots := st.NumSlots()
	days := st.Days()
	good = batch[:0]
	for _, u := range batch {
		if u.Seg < 0 || int(u.Seg) >= numSeg ||
			u.Day < 0 || int(u.Day) >= days ||
			u.Taxi < 0 || u.Taxi >= 1<<15 ||
			u.ExitMs < u.EnterMs {
			rejected = append(rejected, u)
			continue
		}
		s0 := int(u.EnterMs) / 1000 / slotSec
		s1 := int(u.ExitMs) / 1000 / slotSec
		inRange := false
		for s := s0; s <= s1; s++ {
			if s < 0 || s >= numSlots {
				continue // ran past midnight, same as Build
			}
			obs = append(obs, stindex.DeltaObs{Seg: u.Seg, Slot: s, Day: u.Day, Taxi: u.Taxi})
			inRange = true
		}
		if !inRange {
			rejected = append(rejected, u)
			continue
		}
		good = append(good, u)
	}
	return good, obs, rejected
}

// speedSamples converts a batch of updates into Con-Index speed
// samples, one per update spanning every slot it overlaps. Feeding the
// whole batch to ObserveSpeedBatch (instead of per-update ObserveSpeed
// calls) merges the row-invalidation scans, which is what keeps the
// Con-Index tables readable while ingest runs at full rate.
func speedSamples(slotSec int, good []Update) []conindex.SpeedSample {
	samples := make([]conindex.SpeedSample, len(good))
	for i, u := range good {
		samples[i] = conindex.SpeedSample{
			Seg:   u.Seg,
			Slot0: int(u.EnterMs) / 1000 / slotSec,
			Slot1: int(u.ExitMs) / 1000 / slotSec,
			Speed: float64(u.Speed),
		}
	}
	return samples
}

// ApplyBatch folds one batch of updates into the live indexes
// synchronously. This is the WAL replay path: the batch was durable, so
// it is applied on the caller's goroutine with no queue, no WAL append,
// and no per-update diagnostics — just counts. Replay is idempotent for
// the ST-Index delta (set union) and for the Con-Index min/max bounds;
// only the route-query mean-speed accumulators can double-count a
// replayed sample, which is why the WAL is truncated strictly after a
// durable compaction.
func ApplyBatch(st *stindex.Index, con *conindex.Index, batch []Update) (applied, dropped int) {
	// Copy: expandBatch compacts in place, and replay batches may be
	// retained by the caller.
	good, obs, rejected := expandBatch(st, append([]Update(nil), batch...))
	if len(good) == 0 {
		return 0, len(rejected)
	}
	if err := st.AppendDelta(obs); err != nil {
		return 0, len(rejected) + len(good)
	}
	con.ObserveSpeedBatch(speedSamples(st.SlotSeconds(), good))
	return len(good), len(rejected)
}

// ApplyObs folds replayed carry observations into the ST-Index delta
// layer. Carry records are raw per-slot observations a budgeted
// compaction rolled over — their speed statistics were already durable
// in the persisted Con-Index when the carry was written, so replay
// deliberately touches only the trajectory delta: synthesising speed
// samples here would push fabricated values into the min/max bounds.
// Out-of-range observations (a corrupted record that still passed its
// frame CRC, or a world mismatch) are dropped and counted.
func ApplyObs(st *stindex.Index, obs []stindex.DeltaObs) (applied, dropped int) {
	numSeg := st.Network().NumSegments()
	numSlots := st.NumSlots()
	days := st.Days()
	good := obs[:0]
	for _, o := range obs {
		if o.Seg < 0 || int(o.Seg) >= numSeg ||
			o.Slot < 0 || o.Slot >= numSlots ||
			o.Day < 0 || int(o.Day) >= days ||
			o.Taxi < 0 || o.Taxi >= 1<<15 {
			dropped++
			continue
		}
		good = append(good, o)
	}
	if len(good) == 0 {
		return 0, dropped
	}
	if err := st.AppendDelta(good); err != nil {
		return 0, dropped + len(good)
	}
	return len(good), dropped
}
