package ingest

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/storage"
	"streach/internal/traj"
)

// segTestConfig is a small-segment config so a handful of appends
// exercises rotation, sealing, and retirement.
func segTestConfig(shards int) SegmentedConfig {
	return SegmentedConfig{
		SegmentBytes: 512,
		SegmentAge:   time.Hour, // size-driven rotation only, deterministic
		Shards:       shards,
		Retries:      1,
		Backoff:      time.Microsecond,
	}
}

// mkUpdates builds n distinguishable updates; base separates batches so
// a replay collector can verify exactly which batches came back.
func mkUpdates(base, n int) []Update {
	batch := make([]Update, n)
	for i := range batch {
		v := base + i
		batch[i] = Update{
			Taxi:    traj.TaxiID(v % 1000),
			Day:     traj.Day(v % 7),
			Seg:     roadnet.SegmentID(v),
			EnterMs: int32(v * 1000),
			ExitMs:  int32(v*1000 + 500),
			Speed:   float32(v%30) + 1,
		}
	}
	return batch
}

// collectReplay replays dir and returns every update (keyed by Seg) and
// carry observation delivered, via concurrency-safe collectors.
func collectReplay(t *testing.T, dir string, workers int) (map[roadnet.SegmentID]Update, []stindex.DeltaObs, ReplayStats) {
	t.Helper()
	var mu sync.Mutex
	got := make(map[roadnet.SegmentID]Update)
	var obs []stindex.DeltaObs
	stats, err := ReplaySegments(dir, workers,
		func(batch []Update) error {
			mu.Lock()
			defer mu.Unlock()
			for _, u := range batch {
				got[u.Seg] = u
			}
			return nil
		},
		func(o []stindex.DeltaObs) error {
			mu.Lock()
			defer mu.Unlock()
			obs = append(obs, o...)
			return nil
		})
	if err != nil {
		t.Fatalf("ReplaySegments: %v", err)
	}
	return got, obs, stats
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		t.Fatalf("read wal dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseSegmentName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}

// TestSegmentRoundtrip writes update and carry frames across two shards
// and checks a parallel replay returns every record intact.
func TestSegmentRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmented(dir, segTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[roadnet.SegmentID]Update)
	for b := 0; b < 8; b++ {
		batch := mkUpdates(b*100, 10)
		if err := l.AppendUpdates(b%2, batch); err != nil {
			t.Fatalf("AppendUpdates: %v", err)
		}
		for _, u := range batch {
			want[u.Seg] = u
		}
	}
	carry := []stindex.DeltaObs{
		{Seg: 5, Slot: 17, Day: 2, Taxi: 44},
		{Seg: 9, Slot: 3, Day: 0, Taxi: 7},
	}
	if err := l.AppendObs(0, carry); err != nil {
		t.Fatalf("AppendObs: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, gotObs, stats := collectReplay(t, dir, 4)
	if len(got) != len(want) {
		t.Fatalf("replayed %d distinct updates, want %d", len(got), len(want))
	}
	for seg, u := range want {
		if got[seg] != u {
			t.Fatalf("update for seg %d: got %+v want %+v", seg, got[seg], u)
		}
	}
	if len(gotObs) != len(carry) {
		t.Fatalf("replayed %d carry obs, want %d", len(gotObs), len(carry))
	}
	sort.Slice(gotObs, func(i, j int) bool { return gotObs[i].Seg < gotObs[j].Seg })
	for i, o := range carry {
		if gotObs[i] != o {
			t.Fatalf("carry obs %d: got %+v want %+v", i, gotObs[i], o)
		}
	}
	if stats.CorruptSegments != 0 || stats.TruncatedBytes != 0 {
		t.Fatalf("clean log reported corruption: %+v", stats)
	}
	if stats.Updates != 80 || stats.Obs != 2 {
		t.Fatalf("stats = %+v, want 80 updates / 2 obs", stats)
	}
}

// TestSegmentRotationSealRetire checks the seal/cut/retire contract:
// size-driven rotation produces multiple segments, Seal's cut covers
// everything appended before it, appends after Seal land in fresh
// segments above the cut, and Retire(cut) removes exactly the covered
// files.
func TestSegmentRotationSealRetire(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmented(dir, segTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 10; b++ {
		if err := l.AppendUpdates(0, mkUpdates(b*100, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotations < 3 {
		t.Fatalf("expected >= 3 rotations from 10 x 10-update batches at 512-byte segments, got %d", st.Rotations)
	}

	cut := l.Seal()
	// Appends racing (here: following) the seal open segments above the cut.
	post := mkUpdates(5000, 10)
	if err := l.AppendUpdates(0, post); err != nil {
		t.Fatal(err)
	}
	before := segFiles(t, dir)
	if err := l.Retire(cut); err != nil {
		t.Fatalf("Retire: %v", err)
	}
	after := segFiles(t, dir)
	if len(after) >= len(before) {
		t.Fatalf("retire removed nothing: %d files before, %d after", len(before), len(after))
	}
	for _, name := range after {
		seq, _ := parseSegmentName(name)
		if seq <= cut {
			t.Fatalf("segment %s survived retire at cut %d", name, cut)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the post-seal batch replays.
	got, _, _ := collectReplay(t, dir, 2)
	if len(got) != len(post) {
		t.Fatalf("replay after retire returned %d updates, want %d", len(got), len(post))
	}
	for _, u := range post {
		if got[u.Seg] != u {
			t.Fatalf("post-seal update lost: %+v", u)
		}
	}
}

// TestSegmentAdoptExisting checks OpenSegmented adopts a previous
// process's segments as sealed and numbers new segments after them.
func TestSegmentAdoptExisting(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmented(dir, segTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	first := mkUpdates(0, 10)
	if err := l.AppendUpdates(0, first); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, err := OpenSegmented(dir, segTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	// The adopted cut: every segment the previous process left behind.
	cut := uint64(0)
	for _, name := range segFiles(t, dir) {
		seq, _ := parseSegmentName(name)
		if seq > cut {
			cut = seq
		}
	}
	second := mkUpdates(1000, 10)
	if err := l2.AppendUpdates(0, second); err != nil {
		t.Fatal(err)
	}
	got, _, _ := collectReplay(t, dir, 1)
	if len(got) != len(first)+len(second) {
		t.Fatalf("replay before retire returned %d updates, want %d", len(got), len(first)+len(second))
	}
	// Retiring at the adopted cut removes the previous process's
	// segments; the new append (numbered above the cut) survives.
	if err := l2.Retire(cut); err != nil {
		t.Fatalf("Retire adopted segments: %v", err)
	}
	l2.Close()
	got, _, _ = collectReplay(t, dir, 1)
	if len(got) != len(second) {
		t.Fatalf("replay after retire returned %d updates, want %d", len(got), len(second))
	}
	for _, u := range second {
		if got[u.Seg] != u {
			t.Fatalf("post-adoption update lost: %+v", u)
		}
	}
}

// TestSegmentDegradedAndRecovery drives the append retry path into
// exhaustion with an injected fault, checks the log reports an honest
// degraded state, and checks the next successful append clears it.
func TestSegmentDegradedAndRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmented(dir, segTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	if err := l.AppendUpdates(0, mkUpdates(0, 5)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	l.SetFault(func() error { return boom })
	if err := l.AppendUpdates(0, mkUpdates(100, 5)); !errors.Is(err, boom) {
		t.Fatalf("append under fault: err = %v, want %v", err, boom)
	}
	st := l.Stats()
	if !st.Degraded || st.AppendErrors != 1 || st.LastError == "" {
		t.Fatalf("after exhausted retries: %+v, want degraded with 1 append error", st)
	}

	// Transient fault: fails once, then the retry inside the same append
	// succeeds — no degradation.
	calls := 0
	l.SetFault(func() error {
		calls++
		if calls == 1 {
			return boom
		}
		return nil
	})
	if err := l.AppendUpdates(0, mkUpdates(200, 5)); err != nil {
		t.Fatalf("append with transient fault: %v", err)
	}
	if l.Degraded() {
		t.Fatal("successful append did not clear the degraded state")
	}

	l.SetFault(nil)
	if err := l.AppendUpdates(0, mkUpdates(300, 5)); err != nil {
		t.Fatal(err)
	}
	// Every acknowledged batch replays; the failed batch (100..) does not.
	l.Close()
	got, _, _ := collectReplay(t, dir, 1)
	for _, base := range []int{0, 200, 300} {
		for _, u := range mkUpdates(base, 5) {
			if got[u.Seg] != u {
				t.Fatalf("acknowledged update from batch %d lost: %+v", base, u)
			}
		}
	}
	for _, u := range mkUpdates(100, 5) {
		if _, ok := got[u.Seg]; ok {
			t.Fatalf("failed (unacknowledged) update replayed: %+v", u)
		}
	}
}

// TestSegmentBoundaryBitFlips flips bits at and around segment
// boundaries — the header's first bytes, the first frame byte, the last
// byte — and checks damage containment: the corrupt segment loses only
// its own suffix (or, for a header hit, itself), every other segment
// replays byte-identically, and the repair truncation persists.
func TestSegmentBoundaryBitFlips(t *testing.T) {
	build := func(t *testing.T) (string, map[roadnet.SegmentID]Update) {
		dir := t.TempDir()
		l, err := OpenSegmented(dir, segTestConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[roadnet.SegmentID]Update)
		for b := 0; b < 10; b++ {
			batch := mkUpdates(b*100, 10)
			if err := l.AppendUpdates(0, batch); err != nil {
				t.Fatal(err)
			}
			for _, u := range batch {
				want[u.Seg] = u
			}
		}
		l.Close()
		if len(segFiles(t, dir)) < 3 {
			t.Fatalf("need >= 3 segments, got %d", len(segFiles(t, dir)))
		}
		return dir, want
	}

	// Each case flips one bit in the middle segment at an offset keyed to
	// the segment layout.
	cases := []struct {
		name   string
		offset func(size int64) int64 // byte to corrupt
	}{
		{"header-magic", func(int64) int64 { return 0 }},
		{"header-version", func(int64) int64 { return 4 }},
		{"first-frame-kind", func(int64) int64 { return segHeaderSize }},
		{"frame-payload", func(size int64) int64 { return segHeaderSize + (size-segHeaderSize)/2 }},
		{"last-byte-crc", func(size int64) int64 { return size - 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, want := build(t)
			names := segFiles(t, dir)
			victim := filepath.Join(dir, names[len(names)/2])
			blob, err := os.ReadFile(victim)
			if err != nil {
				t.Fatal(err)
			}
			off := tc.offset(int64(len(blob)))
			blob[off] ^= 0x10
			if err := os.WriteFile(victim, blob, 0o644); err != nil {
				t.Fatal(err)
			}

			got, _, stats := collectReplay(t, dir, 2)
			if stats.CorruptSegments != 1 {
				t.Fatalf("stats.CorruptSegments = %d, want 1", stats.CorruptSegments)
			}
			// Containment: everything in the other segments replays. The
			// victim contributes its intact prefix only, so the replayed set
			// is a subset of want that includes all non-victim records.
			headerHit := off < segHeaderSize
			var lost int
			for seg, u := range want {
				g, ok := got[seg]
				if ok && g != u {
					t.Fatalf("replayed update for seg %d mutated: got %+v want %+v", seg, g, u)
				}
				if !ok {
					lost++
				}
			}
			// A single corrupt segment can lose at most its own records:
			// 10 batches over >= 3 segments means well under half the total.
			if lost == 0 && !headerHit {
				t.Log("bit flip landed on slack bytes; replay lost nothing (still contained)")
			}
			if lost > 60 {
				t.Fatalf("lost %d of %d updates; corruption not contained to one segment", lost, len(want))
			}
			if headerHit {
				if _, err := os.Stat(victim); !os.IsNotExist(err) {
					t.Fatalf("header-corrupt segment not removed: %v", err)
				}
			} else {
				fi, err := os.Stat(victim)
				if err != nil {
					t.Fatalf("frame-corrupt segment should be truncated in place, not removed: %v", err)
				}
				if fi.Size() > int64(len(blob)) {
					t.Fatalf("victim grew during repair: %d > %d", fi.Size(), len(blob))
				}
				// Repair is idempotent: a second replay sees a clean prefix.
				got2, _, stats2 := collectReplay(t, dir, 2)
				if stats2.CorruptSegments != 0 || stats2.TruncatedBytes != 0 {
					t.Fatalf("second replay still sees corruption: %+v", stats2)
				}
				if len(got2) != len(got) {
					t.Fatalf("second replay returned %d updates, first %d", len(got2), len(got))
				}
			}
		})
	}
}

// TestSegmentCrashPoints runs the log-level crash matrix: for each WAL
// durability boundary, a hook panics there mid-workload ("power cut"),
// the crashed log is abandoned, and a fresh open + replay must deliver
// every acknowledged batch — no more than the attempted set, never an
// error.
func TestSegmentCrashPoints(t *testing.T) {
	points := []string{"wal.append", "wal.sync", "wal.create", "wal.seal", "wal.retire"}
	for _, point := range points {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			l, err := OpenSegmented(dir, segTestConfig(1))
			if err != nil {
				t.Fatal(err)
			}
			// Acknowledged before the hook arms: must survive any crash.
			acked := make(map[roadnet.SegmentID]Update)
			for b := 0; b < 4; b++ {
				batch := mkUpdates(b*100, 10)
				if err := l.AppendUpdates(0, batch); err != nil {
					t.Fatal(err)
				}
				for _, u := range batch {
					acked[u.Seg] = u
				}
			}

			attempted := make(map[roadnet.SegmentID]Update)
			for seg, u := range acked {
				attempted[seg] = u
			}
			crashed := false
			storage.SetCrashHook(func(name string) {
				if name == point {
					panic(fmt.Sprintf("power cut at %s", name))
				}
			})
			func() {
				defer func() {
					if r := recover(); r != nil {
						crashed = true
					}
				}()
				// Drive every boundary: more appends (append/sync/create via
				// rotation), then a seal + retire cycle.
				for b := 4; b < 8; b++ {
					batch := mkUpdates(b*100, 10)
					for _, u := range batch {
						attempted[u.Seg] = u
					}
					if err := l.AppendUpdates(0, batch); err != nil {
						t.Errorf("append: %v", err)
					}
					for _, u := range batch {
						acked[u.Seg] = u
					}
				}
				cut := l.Seal()
				l.Retire(cut)
				// Retired segments are durably compacted in the real flow;
				// here retirement just removes them, so drop them from the
				// expectation the same way the caller's fold would cover them.
				for seg := range acked {
					delete(acked, seg)
					delete(attempted, seg)
				}
			}()
			storage.SetCrashHook(nil)
			if !crashed {
				t.Fatalf("crash point %s never fired", point)
			}
			// The crashed instance is abandoned (a real power cut kills the
			// process); reopen the directory fresh.
			got, _, stats := collectReplay(t, dir, 2)
			_ = stats
			for seg, u := range acked {
				g, ok := got[seg]
				if !ok {
					t.Fatalf("acknowledged update for seg %d lost after crash at %s", seg, point)
				}
				if g != u {
					t.Fatalf("update for seg %d torn after crash at %s: got %+v want %+v", seg, point, g, u)
				}
			}
			for seg, g := range got {
				if u, ok := attempted[seg]; !ok {
					t.Fatalf("replay invented update for seg %d after crash at %s: %+v", seg, point, g)
				} else if g != u {
					t.Fatalf("attempted update for seg %d torn after crash at %s", seg, point)
				}
			}

			// The directory must stay usable: a fresh log appends and
			// replays normally on top of whatever the crash left.
			l2, err := OpenSegmented(dir, segTestConfig(1))
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", point, err)
			}
			if err := l2.AppendUpdates(0, mkUpdates(9000, 5)); err != nil {
				t.Fatalf("append after crash at %s: %v", point, err)
			}
			l2.Close()
		})
	}
}

// TestSegmentCrashPointTruncate covers the wal.truncate boundary: a
// power cut during the corrupt-suffix repair leaves the file exactly as
// it was (the crash point precedes the truncate), the intact prefix
// still replays, and the next replay completes the repair — pre- or
// post-crash state, never torn.
func TestSegmentCrashPointTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenSegmented(dir, segTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 4; b++ {
		if err := l.AppendUpdates(0, mkUpdates(b*100, 10)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	names := segFiles(t, dir)
	victim := filepath.Join(dir, names[0])
	blob, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the second frame's first byte: frame 1 stays intact.
	frameLen := int64(5 + 10*recordSize + 4)
	blob[segHeaderSize+frameLen] ^= 0xff
	if err := os.WriteFile(victim, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	// The collector map outlives the panic: records delivered before the
	// power cut stay visible for the equivalence check.
	collect := func(got map[roadnet.SegmentID]Update) {
		_, err := replaySegment(victim, func(batch []Update) error {
			for _, u := range batch {
				got[u.Seg] = u
			}
			return nil
		}, func([]stindex.DeltaObs) error { return nil })
		if err != nil {
			t.Fatalf("replaySegment: %v", err)
		}
	}

	storage.SetCrashHook(func(name string) {
		if name == "wal.truncate" {
			panic("power cut at wal.truncate")
		}
	})
	preCrash := make(map[roadnet.SegmentID]Update)
	crashed := false
	func() {
		defer func() {
			if recover() != nil {
				crashed = true
			}
		}()
		collect(preCrash)
	}()
	storage.SetCrashHook(nil)
	if !crashed {
		t.Fatal("wal.truncate crash point never fired")
	}
	// Pre-crash state: the file is untouched (repair never ran)...
	fi, err := os.Stat(victim)
	if err != nil || fi.Size() != int64(len(blob)) {
		t.Fatalf("crash before truncate mutated the file: size %d want %d (err %v)", fi.Size(), len(blob), err)
	}
	// ...and the intact prefix was already delivered before the cut.
	if len(preCrash) != 10 {
		t.Fatalf("intact prefix delivered %d updates before the crash, want 10", len(preCrash))
	}

	// The next replay repairs and delivers the identical prefix.
	postCrash := make(map[roadnet.SegmentID]Update)
	collect(postCrash)
	if len(postCrash) != len(preCrash) {
		t.Fatalf("post-crash replay delivered %d updates, pre-crash %d", len(postCrash), len(preCrash))
	}
	for seg, u := range preCrash {
		if postCrash[seg] != u {
			t.Fatalf("update for seg %d differs across the crash", seg)
		}
	}
	fi, err = os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != int64(segHeaderSize)+frameLen {
		t.Fatalf("repair truncated to %d bytes, want %d", fi.Size(), int64(segHeaderSize)+frameLen)
	}
}
