package ingest

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/conindex"
	"streach/internal/stindex"
)

// ErrClosed is returned by Add/TryAdd after Close.
var ErrClosed = errors.New("ingest: writer is closed")

// ErrBackpressure is returned by TryAdd when the queue is full: the
// caller should shed or retry later (the serve layer maps it to a typed
// 429).
var ErrBackpressure = errors.New("ingest: queue full")

// Config controls a Writer.
type Config struct {
	// Workers is the apply worker-pool size (default 2).
	Workers int
	// QueueDepth bounds the pending-update queue (default 4096 updates);
	// TryAdd rejects beyond it rather than letting ingest latency leak
	// into query latency.
	QueueDepth int
	// BatchSize is how many updates a worker folds into one index append
	// and one WAL record (default 256).
	BatchSize int
	// FlushInterval bounds how long a worker sits on a partial batch
	// (default 50ms).
	FlushInterval time.Duration
	// WAL, when non-nil, receives every applied batch before it is
	// acknowledged: a *SegmentedLog in production, the legacy *Log in
	// older tests. WAL write failures do not fail the apply — the
	// update is live in memory, just not crash-durable — but they are
	// counted, logged, and surfaced as a degraded-durability state until
	// an append succeeds again.
	WAL WALog
	// Owner, when non-nil, maps a segment to its owning shard; per-shard
	// accepted counts are kept so the scatter layout of ingest traffic
	// is observable. Shards sizes the counter vector.
	Owner  func(seg int) int
	Shards int
	// SpeedBuffer caps how many Con-Index speed samples accumulate
	// before being folded into the min/max bounds (default 65536).
	// Trajectory observations go live in the ST-Index delta on every
	// batch, but the speed statistics — pruning bounds, not answer data
	// — are buffered and folded at Flush/Close or when this cap fills,
	// because every bound move invalidates materialised adjacency rows
	// and per-batch folding at full ingest rate turns the query bounding
	// phase into a Dijkstra storm. The cap bounds both memory and bound
	// staleness: at r updates/s the bounds lag live by at most
	// SpeedBuffer/r seconds between flushes.
	SpeedBuffer int
	// Log receives drop/corruption diagnostics (default log.Default()).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 50 * time.Millisecond
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.SpeedBuffer <= 0 {
		c.SpeedBuffer = 65536
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// WALog is the write-ahead log a Writer appends applied batches to.
// The shard is the batch's owning shard (always 0 without an Owner
// hook); the segmented log keeps one append stream per shard.
type WALog interface {
	AppendUpdates(shard int, batch []Update) error
}

// AppendUpdates adapts the legacy single-file Log to the WALog
// interface; the shard is ignored, every stream shares the one file.
func (l *Log) AppendUpdates(_ int, batch []Update) error { return l.Append(batch) }

// Stats snapshots a Writer's counters.
type Stats struct {
	Accepted  int64 // updates admitted to the queue
	Applied   int64 // updates folded into the indexes
	Dropped   int64 // updates rejected during apply (bad segment/day/taxi/time)
	Rejected  int64 // updates refused at TryAdd (backpressure)
	Batches   int64 // index append batches
	WALErrors int64 // WAL append failures (updates stayed live, not durable)
	QueueLen  int   // updates currently queued
	// DurabilityDegraded is set while the most recent WAL append failed:
	// the system keeps serving and accepting, but acknowledged updates
	// since the failure are not crash-durable. The next successful
	// append clears it.
	DurabilityDegraded bool
	// WALLastError is the most recent WAL append failure ("" when none).
	WALLastError string
	// PendingSpeeds counts buffered Con-Index speed samples awaiting the
	// next fold (Flush, Close, or the SpeedBuffer cap).
	PendingSpeeds int
	PerShard      []int64
}

// Writer applies streaming updates to the live indexes through a
// bounded queue and a small worker pool. All index mutation happens on
// the workers; producers only pay a channel send.
type Writer struct {
	st  *stindex.Index
	con *conindex.Index
	cfg Config

	in     chan Update
	closed atomic.Bool
	wg     sync.WaitGroup

	accepted  atomic.Int64
	applied   atomic.Int64
	dropped   atomic.Int64
	rejected  atomic.Int64
	batches   atomic.Int64
	walErrors atomic.Int64
	perShard  []atomic.Int64

	walDegraded atomic.Bool
	walErrMu    sync.Mutex
	walLastErr  string

	// sampleMu guards the buffered Con-Index speed samples (see
	// Config.SpeedBuffer and FoldSpeeds).
	sampleMu sync.Mutex
	samples  []conindex.SpeedSample
}

// NewWriter starts the worker pool over the given live indexes.
func NewWriter(st *stindex.Index, con *conindex.Index, cfg Config) *Writer {
	cfg = cfg.withDefaults()
	w := &Writer{
		st:       st,
		con:      con,
		cfg:      cfg,
		in:       make(chan Update, cfg.QueueDepth),
		perShard: make([]atomic.Int64, cfg.Shards),
	}
	for i := 0; i < cfg.Workers; i++ {
		w.wg.Add(1)
		go w.worker()
	}
	return w
}

// Add enqueues updates, blocking while the queue is full until ctx
// expires. Updates accepted before an error are still applied.
func (w *Writer) Add(ctx context.Context, updates []Update) error {
	for i, u := range updates {
		if w.closed.Load() {
			return fmt.Errorf("%w (%d of %d enqueued)", ErrClosed, i, len(updates))
		}
		select {
		case w.in <- u:
			w.accepted.Add(1)
		case <-ctx.Done():
			return fmt.Errorf("ingest: %w (%d of %d enqueued)", ctx.Err(), i, len(updates))
		}
	}
	return nil
}

// TryAdd enqueues updates without blocking; it returns how many were
// admitted and ErrBackpressure (or ErrClosed) for the remainder.
func (w *Writer) TryAdd(updates []Update) (int, error) {
	for i, u := range updates {
		if w.closed.Load() {
			return i, ErrClosed
		}
		select {
		case w.in <- u:
			w.accepted.Add(1)
		default:
			w.rejected.Add(int64(len(updates) - i))
			return i, ErrBackpressure
		}
	}
	return len(updates), nil
}

// Flush blocks until every update accepted so far has been applied (or
// ctx expires), then folds the buffered speed samples so the Con-Index
// bounds match an offline build over everything applied.
func (w *Writer) Flush(ctx context.Context) error {
	target := w.accepted.Load()
	for w.applied.Load()+w.dropped.Load() < target {
		if err := ctx.Err(); err != nil {
			return err
		}
		time.Sleep(2 * time.Millisecond)
	}
	w.FoldSpeeds()
	return nil
}

// FoldSpeeds drains the buffered speed samples into the Con-Index
// bounds (one merged invalidation pass per touched slot) and returns
// how many samples were folded. Called by Flush and Close; callers that
// never flush get an automatic fold when the buffer hits its cap.
func (w *Writer) FoldSpeeds() int {
	w.sampleMu.Lock()
	drain := w.samples
	w.samples = nil
	w.sampleMu.Unlock()
	if len(drain) > 0 {
		w.con.ObserveSpeedBatch(drain)
	}
	return len(drain)
}

// bufferSpeeds queues one applied batch's speed samples for the next
// fold, folding inline when the buffer reaches its cap.
func (w *Writer) bufferSpeeds(samples []conindex.SpeedSample) {
	var drain []conindex.SpeedSample
	w.sampleMu.Lock()
	w.samples = append(w.samples, samples...)
	if len(w.samples) >= w.cfg.SpeedBuffer {
		drain = w.samples
		w.samples = nil
	}
	w.sampleMu.Unlock()
	if drain != nil {
		w.con.ObserveSpeedBatch(drain)
	}
}

// Close drains the queue, applies everything pending (including the
// speed-sample fold), and stops the workers. Add/TryAdd fail
// afterwards.
func (w *Writer) Close() error {
	if !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(w.in)
	w.wg.Wait()
	w.FoldSpeeds()
	return nil
}

// Stats snapshots the counters.
func (w *Writer) Stats() Stats {
	s := Stats{
		Accepted:  w.accepted.Load(),
		Applied:   w.applied.Load(),
		Dropped:   w.dropped.Load(),
		Rejected:  w.rejected.Load(),
		Batches:   w.batches.Load(),
		WALErrors: w.walErrors.Load(),
		QueueLen:  len(w.in),
		PerShard:  make([]int64, len(w.perShard)),

		DurabilityDegraded: w.walDegraded.Load(),
	}
	w.walErrMu.Lock()
	s.WALLastError = w.walLastErr
	w.walErrMu.Unlock()
	w.sampleMu.Lock()
	s.PendingSpeeds = len(w.samples)
	w.sampleMu.Unlock()
	for i := range w.perShard {
		s.PerShard[i] = w.perShard[i].Load()
	}
	return s
}

// worker batches the queue and applies. A partial batch is applied when
// FlushInterval elapses with no new updates.
func (w *Writer) worker() {
	defer w.wg.Done()
	batch := make([]Update, 0, w.cfg.BatchSize)
	timer := time.NewTimer(w.cfg.FlushInterval)
	defer timer.Stop()
	for {
		timer.Reset(w.cfg.FlushInterval)
		select {
		case u, ok := <-w.in:
			if !ok {
				w.apply(batch)
				return
			}
			batch = append(batch, u)
			if len(batch) < w.cfg.BatchSize {
				continue
			}
		case <-timer.C:
		}
		if len(batch) > 0 {
			w.apply(batch)
			batch = batch[:0]
		}
	}
}

// apply folds one batch: validate, expand to per-slot ST-Index delta
// observations, append, buffer the speed samples for the next Con-Index
// fold, then log to the WAL. Invalid updates are dropped individually
// (with a diagnostic) so one bad report cannot poison a batch.
func (w *Writer) apply(batch []Update) {
	if len(batch) == 0 {
		return
	}
	good, obs, rejected := expandBatch(w.st, batch)
	for _, u := range rejected {
		w.dropped.Add(1)
		w.cfg.Log.Printf("ingest: dropped update taxi=%d day=%d seg=%d [%d,%d]ms: out of range",
			u.Taxi, u.Day, u.Seg, u.EnterMs, u.ExitMs)
	}
	if len(good) == 0 {
		return
	}
	if err := w.st.AppendDelta(obs); err != nil {
		// Bounds were pre-checked, so this is unexpected; count the
		// whole batch dropped rather than half-applying.
		w.dropped.Add(int64(len(good)))
		w.cfg.Log.Printf("ingest: append delta failed, dropped %d updates: %v", len(good), err)
		return
	}
	w.bufferSpeeds(speedSamples(w.st.SlotSeconds(), good))
	// Split the batch by owning shard: the per-shard counters feed the
	// scatter-layout stats, and the segmented WAL keeps one append
	// stream (and one fsync pipeline) per shard.
	var byShard map[int][]Update
	if w.cfg.Owner != nil {
		byShard = make(map[int][]Update)
		for _, u := range good {
			sh := w.cfg.Owner(int(u.Seg))
			if sh < 0 || sh >= w.cfg.Shards {
				sh = 0
			}
			byShard[sh] = append(byShard[sh], u)
			if sh < len(w.perShard) {
				w.perShard[sh].Add(1)
			}
		}
	} else {
		byShard = map[int][]Update{0: good}
		if len(w.perShard) == 1 {
			w.perShard[0].Add(int64(len(good)))
		}
	}
	if w.cfg.WAL != nil {
		failed := false
		for sh, part := range byShard {
			if err := w.cfg.WAL.AppendUpdates(sh, part); err != nil {
				failed = true
				w.walErrors.Add(1)
				w.walErrMu.Lock()
				w.walLastErr = err.Error()
				w.walErrMu.Unlock()
				w.cfg.Log.Printf("ingest: wal append failed (%d updates live but not durable): %v", len(part), err)
			}
		}
		if failed {
			w.walDegraded.Store(true)
		} else if w.walDegraded.CompareAndSwap(true, false) {
			w.cfg.Log.Printf("ingest: wal append succeeded; durability restored")
		}
	}
	w.batches.Add(1)
	w.applied.Add(int64(len(good)))
}
