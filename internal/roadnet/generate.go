package roadnet

import (
	"fmt"
	"math/rand"

	"streach/internal/geo"
)

// GenerateConfig controls the synthetic metropolis generator that stands
// in for the Shenzhen road network (DESIGN.md §2). The generated city is a
// jittered arterial grid with one-way ring/cross highways and denser local
// streets near the centre.
type GenerateConfig struct {
	// Origin is the south-west corner of the city.
	Origin geo.Point
	// Rows and Cols set the arterial grid dimensions (intersections).
	Rows, Cols int
	// SpacingMeters is the arterial block edge length.
	SpacingMeters float64
	// LocalFraction in [0,1] sets how many blocks get extra local streets.
	LocalFraction float64
	// Seed drives all generator randomness.
	Seed int64
}

// DefaultGenerateConfig mirrors the paper's evaluation city scale:
// roughly 400 square miles (~32 km x 32 km) of urban area.
func DefaultGenerateConfig() GenerateConfig {
	return GenerateConfig{
		Origin:        geo.Point{Lat: 22.45, Lng: 113.90}, // Shenzhen-ish
		Rows:          24,
		Cols:          24,
		SpacingMeters: 1400,
		LocalFraction: 0.35,
		Seed:          1,
	}
}

// Generate builds a synthetic city network. The result is strongly
// connected (every segment can reach every other), which Generate
// verifies; it returns an error if the construction ever breaks that
// invariant.
func Generate(cfg GenerateConfig) (*Network, error) {
	if cfg.Rows < 2 || cfg.Cols < 2 {
		return nil, fmt.Errorf("roadnet: grid must be at least 2x2, got %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.SpacingMeters <= 0 {
		return nil, fmt.Errorf("roadnet: spacing must be positive, got %v", cfg.SpacingMeters)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := NewBuilder()

	// Jittered grid of intersections.
	pts := make([][]geo.Point, cfg.Rows)
	for r := 0; r < cfg.Rows; r++ {
		pts[r] = make([]geo.Point, cfg.Cols)
		for c := 0; c < cfg.Cols; c++ {
			jx := (rng.Float64() - 0.5) * cfg.SpacingMeters * 0.25
			jy := (rng.Float64() - 0.5) * cfg.SpacingMeters * 0.25
			pts[r][c] = geo.Offset(cfg.Origin,
				float64(c)*cfg.SpacingMeters+jx,
				float64(r)*cfg.SpacingMeters+jy)
		}
	}

	addRoad := func(shape geo.Polyline, class RoadClass, oneWay bool) error {
		_, err := b.AddRoad(shape, class, oneWay)
		return err
	}

	// Arterial grid: two-way primary roads along rows and columns.
	for r := 0; r < cfg.Rows; r++ {
		for c := 0; c < cfg.Cols; c++ {
			if c+1 < cfg.Cols {
				if err := addRoad(geo.Polyline{pts[r][c], pts[r][c+1]}, Primary, false); err != nil {
					return nil, err
				}
			}
			if r+1 < cfg.Rows {
				if err := addRoad(geo.Polyline{pts[r][c], pts[r+1][c]}, Primary, false); err != nil {
					return nil, err
				}
			}
		}
	}

	// Highways: two cross expressways through the middle row/column plus a
	// ring at ~2/3 radius. Two-way so they never strand traffic.
	midR, midC := cfg.Rows/2, cfg.Cols/2
	var acrossRow geo.Polyline
	for c := 0; c < cfg.Cols; c++ {
		acrossRow = append(acrossRow, geo.Offset(pts[midR][c], 0, cfg.SpacingMeters*0.35))
	}
	// Split each highway at its ramp connection points so the ramps attach
	// at real vertices rather than mid-polyline.
	if err := addRoad(acrossRow[:midC+1], Highway, false); err != nil {
		return nil, err
	}
	if err := addRoad(acrossRow[midC:], Highway, false); err != nil {
		return nil, err
	}
	var acrossCol geo.Polyline
	for r := 0; r < cfg.Rows; r++ {
		acrossCol = append(acrossCol, geo.Offset(pts[r][midC], cfg.SpacingMeters*0.35, 0))
	}
	if err := addRoad(acrossCol[:midR+1], Highway, false); err != nil {
		return nil, err
	}
	if err := addRoad(acrossCol[midR:], Highway, false); err != nil {
		return nil, err
	}
	// Connect highway endpoints/midpoints to the grid with short ramps so
	// the highways participate in the network.
	ramp := func(a, bp geo.Point) error {
		return addRoad(geo.Polyline{a, bp}, Secondary, false)
	}
	for _, c := range []int{0, midC, cfg.Cols - 1} {
		if err := ramp(pts[midR][c], acrossRow[c]); err != nil {
			return nil, err
		}
	}
	for _, r := range []int{0, midR, cfg.Rows - 1} {
		if err := ramp(pts[r][midC], acrossCol[r]); err != nil {
			return nil, err
		}
	}

	// Local streets: diagonal shortcuts inside a fraction of blocks, denser
	// towards the centre. Mix of one-way and two-way.
	for r := 0; r+1 < cfg.Rows; r++ {
		for c := 0; c+1 < cfg.Cols; c++ {
			centreBias := 1.0 - (abs(r-midR)+abs(c-midC))/float64(cfg.Rows+cfg.Cols)
			if rng.Float64() > cfg.LocalFraction*centreBias*2 {
				continue
			}
			mid := geo.Lerp(pts[r][c], pts[r+1][c+1], 0.5)
			mid = geo.Offset(mid, (rng.Float64()-0.5)*200, (rng.Float64()-0.5)*200)
			// One-way local loops are built as a pair of opposing one-way
			// diagonals so connectivity is preserved.
			if rng.Float64() < 0.3 {
				if err := addRoad(geo.Polyline{pts[r][c], mid, pts[r+1][c+1]}, Secondary, true); err != nil {
					return nil, err
				}
				if err := addRoad(geo.Polyline{pts[r+1][c+1], mid, pts[r][c]}, Secondary, true); err != nil {
					return nil, err
				}
			} else {
				if err := addRoad(geo.Polyline{pts[r][c], mid, pts[r+1][c+1]}, Secondary, false); err != nil {
					return nil, err
				}
			}
		}
	}

	n := b.Build()
	if err := verifyConnected(n); err != nil {
		return nil, err
	}
	return n, nil
}

func abs(x int) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}

// verifyConnected checks the strong-connectivity invariant the queries
// rely on (any snapped start segment can reach the whole city).
func verifyConnected(n *Network) error {
	if n.NumSegments() == 0 {
		return fmt.Errorf("roadnet: generated empty network")
	}
	reached := n.StronglyConnectedFrom(0)
	if len(reached) != n.NumSegments() {
		return fmt.Errorf("roadnet: generated network not strongly connected: %d of %d segments reachable from segment 0",
			len(reached), n.NumSegments())
	}
	return nil
}
