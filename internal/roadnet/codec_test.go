package roadnet

import (
	"bytes"
	"math"
	"testing"

	"streach/internal/geo"
)

func TestNetworkCodecRoundTrip(t *testing.T) {
	orig, err := Generate(GenerateConfig{
		Origin: o, Rows: 7, Cols: 7, SpacingMeters: 850, LocalFraction: 0.4, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != orig.NumSegments() {
		t.Fatalf("segments %d, want %d", got.NumSegments(), orig.NumSegments())
	}
	if got.NumVertices() != orig.NumVertices() {
		t.Fatalf("vertices %d, want %d", got.NumVertices(), orig.NumVertices())
	}
	for i := 0; i < orig.NumSegments(); i++ {
		a, b := orig.Segment(SegmentID(i)), got.Segment(SegmentID(i))
		if a.Class != b.Class || a.OneWay != b.OneWay {
			t.Fatalf("segment %d attributes differ", i)
		}
		if math.Abs(a.Length-b.Length) > 1e-6 {
			t.Fatalf("segment %d length %v != %v", i, a.Length, b.Length)
		}
		if a.Reverse != b.Reverse {
			t.Fatalf("segment %d twin %d != %d", i, a.Reverse, b.Reverse)
		}
		if len(a.Shape) != len(b.Shape) {
			t.Fatalf("segment %d shape length differs", i)
		}
		for j := range a.Shape {
			if a.Shape[j] != b.Shape[j] {
				t.Fatalf("segment %d point %d differs", i, j)
			}
		}
	}
	// Adjacency must be identical (same build order, same snapping).
	for i := 0; i < orig.NumSegments(); i++ {
		ao, bo := orig.Outgoing(SegmentID(i)), got.Outgoing(SegmentID(i))
		if len(ao) != len(bo) {
			t.Fatalf("segment %d outgoing count differs", i)
		}
		for j := range ao {
			if ao[j] != bo[j] {
				t.Fatalf("segment %d outgoing[%d] differs", i, j)
			}
		}
	}
}

func TestNetworkCodecResegmented(t *testing.T) {
	orig, err := Generate(GenerateConfig{
		Origin: o, Rows: 5, Cols: 5, SpacingMeters: 1200, LocalFraction: 0.3, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resegment(orig, 400)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, res); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != res.NumSegments() {
		t.Fatalf("resegmented round trip: %d segments, want %d", got.NumSegments(), res.NumSegments())
	}
	if math.Abs(got.TotalLength()-res.TotalLength()) > 1 {
		t.Fatal("total length changed through codec")
	}
}

func TestNetworkCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadNetwork(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := ReadNetwork(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should error")
	}
	// Truncated stream.
	orig, err := Generate(GenerateConfig{Origin: o, Rows: 3, Cols: 3, SpacingMeters: 700, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, orig); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadNetwork(bytes.NewReader(buf.Bytes()[:buf.Len()/3])); err == nil {
		t.Fatal("truncated input should error")
	}
}

func TestNetworkCodecOneWayRoads(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddRoad(geo.Polyline{o, geo.Offset(o, 400, 0)}, Secondary, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRoad(geo.Polyline{geo.Offset(o, 400, 0), o}, Secondary, true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRoad(geo.Polyline{o, geo.Offset(o, 0, 400)}, Primary, false); err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	var buf bytes.Buffer
	if err := WriteNetwork(&buf, n); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != 4 { // 2 one-way + 1 two-way pair
		t.Fatalf("segments = %d, want 4", got.NumSegments())
	}
	oneWays := 0
	for i := 0; i < got.NumSegments(); i++ {
		if got.Segment(SegmentID(i)).Reverse == NoSegment {
			oneWays++
		}
	}
	if oneWays != 2 {
		t.Fatalf("one-way segments = %d, want 2", oneWays)
	}
}
