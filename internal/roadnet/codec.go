package roadnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"streach/internal/geo"
)

// Binary network format (little endian):
//
//	magic "STRN" | version u16 | numRoads u32
//	per road: class u8 | oneway u8 | npoints u16 | npoints x (lat f64, lng f64)
//
// Only the underlying roads are stored; vertices, adjacency, MBRs and the
// spatial index are rebuilt on load, and two-way roads re-create their
// twins, so a round trip reproduces the same segment IDs as the original
// build order.
const (
	netMagic   = "STRN"
	netVersion = 1
)

// WriteNetwork encodes n to w.
func WriteNetwork(w io.Writer, n *Network) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(netMagic); err != nil {
		return fmt.Errorf("roadnet: write magic: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint16(buf[:2], netVersion)
	if _, err := bw.Write(buf[:2]); err != nil {
		return err
	}
	// Count roads: every one-way segment and one member of each two-way
	// pair (the one with the lower ID, which was built first).
	var roads []*Segment
	for i := range n.segments {
		s := &n.segments[i]
		if s.Reverse == NoSegment || s.ID < s.Reverse {
			roads = append(roads, s)
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(roads)))
	if _, err := bw.Write(buf[:4]); err != nil {
		return err
	}
	for _, s := range roads {
		if len(s.Shape) > math.MaxUint16 {
			return fmt.Errorf("roadnet: segment %d has %d shape points, max %d", s.ID, len(s.Shape), math.MaxUint16)
		}
		if err := bw.WriteByte(byte(s.Class)); err != nil {
			return err
		}
		oneway := byte(0)
		if s.OneWay {
			oneway = 1
		}
		if err := bw.WriteByte(oneway); err != nil {
			return err
		}
		binary.LittleEndian.PutUint16(buf[:2], uint16(len(s.Shape)))
		if _, err := bw.Write(buf[:2]); err != nil {
			return err
		}
		for _, p := range s.Shape {
			binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(p.Lat))
			if _, err := bw.Write(buf[:8]); err != nil {
				return err
			}
			binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(p.Lng))
			if _, err := bw.Write(buf[:8]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadNetwork decodes a network from r, rebuilding adjacency and the
// spatial index.
func ReadNetwork(r io.Reader) (*Network, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("roadnet: read magic: %w", err)
	}
	if string(magic) != netMagic {
		return nil, fmt.Errorf("roadnet: bad magic %q", magic)
	}
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:2]); err != nil {
		return nil, fmt.Errorf("roadnet: read version: %w", err)
	}
	if v := binary.LittleEndian.Uint16(buf[:2]); v != netVersion {
		return nil, fmt.Errorf("roadnet: unsupported version %d", v)
	}
	if _, err := io.ReadFull(br, buf[:4]); err != nil {
		return nil, fmt.Errorf("roadnet: read road count: %w", err)
	}
	numRoads := binary.LittleEndian.Uint32(buf[:4])
	b := NewBuilder()
	for i := uint32(0); i < numRoads; i++ {
		class, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("roadnet: road %d class: %w", i, err)
		}
		oneway, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("roadnet: road %d oneway: %w", i, err)
		}
		if _, err := io.ReadFull(br, buf[:2]); err != nil {
			return nil, fmt.Errorf("roadnet: road %d npoints: %w", i, err)
		}
		np := binary.LittleEndian.Uint16(buf[:2])
		shape := make(geo.Polyline, np)
		for j := range shape {
			if _, err := io.ReadFull(br, buf[:8]); err != nil {
				return nil, fmt.Errorf("roadnet: road %d point %d: %w", i, j, err)
			}
			shape[j].Lat = math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
			if _, err := io.ReadFull(br, buf[:8]); err != nil {
				return nil, fmt.Errorf("roadnet: road %d point %d: %w", i, j, err)
			}
			shape[j].Lng = math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		}
		if _, err := b.AddRoad(shape, RoadClass(class), oneway == 1); err != nil {
			return nil, fmt.Errorf("roadnet: road %d: %w", i, err)
		}
	}
	return b.Build(), nil
}
