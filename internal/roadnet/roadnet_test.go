package roadnet

import (
	"math"
	"testing"

	"streach/internal/geo"
)

var o = geo.Point{Lat: 22.5, Lng: 114.0}

// lineNet builds a simple two-way chain of 4 roads: A-B-C-D-E, each 1 km.
func lineNet(t *testing.T) *Network {
	t.Helper()
	b := NewBuilder()
	prev := o
	for i := 0; i < 4; i++ {
		next := geo.Offset(o, float64(i+1)*1000, 0)
		if _, err := b.AddRoad(geo.Polyline{prev, next}, Primary, false); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	n := lineNet(t)
	if n.NumSegments() != 8 { // 4 roads x 2 directions
		t.Fatalf("NumSegments = %d, want 8", n.NumSegments())
	}
	if n.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", n.NumVertices())
	}
	s0 := n.Segment(0)
	if math.Abs(s0.Length-1000) > 10 {
		t.Fatalf("segment length = %v, want ~1000", s0.Length)
	}
	if s0.Reverse != 1 || n.Segment(1).Reverse != 0 {
		t.Fatal("two-way road should link twins")
	}
	if n.Segment(1).Start() != s0.End() || n.Segment(1).End() != s0.Start() {
		t.Fatal("twin should be the exact reverse")
	}
}

func TestBuilderRejectsDegenerateRoads(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddRoad(geo.Polyline{o}, Primary, false); err == nil {
		t.Fatal("single-point road should fail")
	}
	if _, err := b.AddRoad(geo.Polyline{o, o}, Primary, false); err == nil {
		t.Fatal("zero-length road should fail")
	}
}

func TestVertexDeduplication(t *testing.T) {
	b := NewBuilder()
	mid := geo.Offset(o, 1000, 0)
	end := geo.Offset(o, 2000, 0)
	if _, err := b.AddRoad(geo.Polyline{o, mid}, Primary, false); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddRoad(geo.Polyline{mid, end}, Primary, false); err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	if n.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3 (shared midpoint)", n.NumVertices())
	}
	// Forward chain must be connected: seg 0 (o->mid) connects to seg 2 (mid->end).
	out := n.Outgoing(0)
	found := false
	for _, s := range out {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Outgoing(0) = %v should include segment 2", out)
	}
}

func TestOneWayHasNoTwin(t *testing.T) {
	b := NewBuilder()
	id, err := b.AddRoad(geo.Polyline{o, geo.Offset(o, 500, 0)}, Secondary, true)
	if err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	if n.NumSegments() != 1 {
		t.Fatalf("one-way road should be 1 segment, got %d", n.NumSegments())
	}
	if n.Segment(id).Reverse != NoSegment {
		t.Fatal("one-way segment should have no twin")
	}
}

func TestNeighborsIncludesAllAdjacent(t *testing.T) {
	n := lineNet(t)
	// Middle segment 2 (B->C): neighbors should include 0 (A->B twin... ),
	// its twin 3, forward continuation 4, and backward segments at B.
	nb := n.Neighbors(2)
	set := map[SegmentID]bool{}
	for _, s := range nb {
		if s == 2 {
			t.Fatal("Neighbors must not include the segment itself")
		}
		if set[s] {
			t.Fatalf("duplicate neighbor %d", s)
		}
		set[s] = true
	}
	for _, want := range []SegmentID{0, 1, 3, 4, 5} {
		if !set[want] {
			t.Fatalf("Neighbors(2) = %v missing %d", nb, want)
		}
	}
}

func TestSnapPoint(t *testing.T) {
	n := lineNet(t)
	// 300m along the first road, 50m north of it.
	p := geo.Offset(o, 300, 50)
	id, dist, along, ok := n.SnapPoint(p)
	if !ok {
		t.Fatal("SnapPoint failed")
	}
	seg := n.Segment(id)
	if seg.ID != 0 && seg.ID != 1 {
		t.Fatalf("snapped to segment %d, want the first road", id)
	}
	if math.Abs(dist-50) > 10 {
		t.Fatalf("snap distance = %v, want ~50", dist)
	}
	if seg.ID == 0 && math.Abs(along-300) > 15 {
		t.Fatalf("snap along = %v, want ~300", along)
	}
}

func TestSnapPointEmptyNetwork(t *testing.T) {
	n := NewBuilder().Build()
	if _, _, _, ok := n.SnapPoint(o); ok {
		t.Fatal("SnapPoint on empty network should fail")
	}
}

func TestExpandRespectsBudget(t *testing.T) {
	n := lineNet(t)
	w := n.DistanceWeight()
	var visited []SegmentID
	// Budget 2500 m from segment 0: cost(0)=1000, then 2 (B->C) at 2000;
	// 4 would be 3000 > budget.
	n.Expand(0, 2500, w, func(id SegmentID, cost float64) bool {
		visited = append(visited, id)
		return true
	})
	set := map[SegmentID]bool{}
	for _, id := range visited {
		set[id] = true
	}
	if !set[0] || !set[2] {
		t.Fatalf("Expand missed near segments: %v", visited)
	}
	if set[4] {
		t.Fatalf("Expand exceeded budget: %v", visited)
	}
}

func TestExpandNoUTurn(t *testing.T) {
	n := lineNet(t)
	var visited []SegmentID
	n.Expand(0, 1999, n.DistanceWeight(), func(id SegmentID, cost float64) bool {
		visited = append(visited, id)
		return true
	})
	for _, id := range visited {
		if id == 1 {
			t.Fatal("Expand should not immediately U-turn onto the twin")
		}
	}
}

func TestExpandVisitOrderIsMonotone(t *testing.T) {
	n, err := Generate(GenerateConfig{Origin: o, Rows: 6, Cols: 6, SpacingMeters: 800, LocalFraction: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	n.Expand(0, 10000, n.DistanceWeight(), func(id SegmentID, cost float64) bool {
		if cost < last {
			t.Fatalf("expansion cost went backwards: %v after %v", cost, last)
		}
		last = cost
		return true
	})
}

func TestExpandPruning(t *testing.T) {
	n := lineNet(t)
	var visited []SegmentID
	n.Expand(0, 1e9, n.DistanceWeight(), func(id SegmentID, cost float64) bool {
		visited = append(visited, id)
		return id != 2 // prune at B->C
	})
	for _, id := range visited {
		if id == 4 {
			t.Fatal("pruned expansion should not reach beyond segment 2 on the forward chain")
		}
	}
}

func TestShortestPath(t *testing.T) {
	n := lineNet(t)
	path, cost, ok := n.ShortestPath(0, 6, n.DistanceWeight())
	if !ok {
		t.Fatal("path not found")
	}
	want := []SegmentID{0, 2, 4, 6}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if math.Abs(cost-4000) > 40 {
		t.Fatalf("cost = %v, want ~4000", cost)
	}
}

func TestShortestPathSelf(t *testing.T) {
	n := lineNet(t)
	path, cost, ok := n.ShortestPath(2, 2, n.DistanceWeight())
	if !ok || len(path) != 1 || path[0] != 2 {
		t.Fatalf("self path = %v,%v,%v", path, cost, ok)
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	// Two disconnected one-way roads.
	b := NewBuilder()
	if _, err := b.AddRoad(geo.Polyline{o, geo.Offset(o, 500, 0)}, Secondary, true); err != nil {
		t.Fatal(err)
	}
	far := geo.Offset(o, 50000, 50000)
	if _, err := b.AddRoad(geo.Polyline{far, geo.Offset(far, 500, 0)}, Secondary, true); err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	if _, _, ok := n.ShortestPath(0, 1, n.DistanceWeight()); ok {
		t.Fatal("disconnected segments should have no path")
	}
	if !math.IsInf(n.NetworkDistance(0, 1), 1) {
		t.Fatal("NetworkDistance should be +Inf when unreachable")
	}
}

func TestTravelTimeWeightInfiniteOnZeroSpeed(t *testing.T) {
	n := lineNet(t)
	w := n.TravelTimeWeight(func(id SegmentID) float64 {
		if id == 2 {
			return 0
		}
		return 10
	})
	if !math.IsInf(w(2), 1) {
		t.Fatal("zero speed should be infinite cost")
	}
	if math.Abs(w(0)-100) > 2 {
		t.Fatalf("w(0) = %v, want ~100 s", w(0))
	}
	// Path avoiding nothing: segment 2 is the only way forward, so dst 4
	// becomes unreachable under this weight.
	if _, _, ok := n.ShortestPath(0, 4, w); ok {
		t.Fatal("path through infinite-cost segment should not exist")
	}
}

func TestExpandMultiAttributesNearestSource(t *testing.T) {
	n := lineNet(t)
	// Sources at both ends of the chain; middle segments attribute to the
	// closer end.
	srcIdxOf := map[SegmentID]int{}
	n.ExpandMulti([]SegmentID{0, 7}, 1e9, n.DistanceWeight(), func(id SegmentID, cost float64, src int) bool {
		srcIdxOf[id] = src
		return true
	})
	if srcIdxOf[0] != 0 {
		t.Fatalf("segment 0 attributed to source %d, want 0", srcIdxOf[0])
	}
	if srcIdxOf[7] != 1 {
		t.Fatalf("segment 7 attributed to source %d, want 1", srcIdxOf[7])
	}
	if srcIdxOf[2] != 0 { // B->C is nearer the left source
		t.Fatalf("segment 2 attributed to source %d, want 0", srcIdxOf[2])
	}
}

func TestResegmentPreservesLengthAndConnectivity(t *testing.T) {
	n, err := Generate(GenerateConfig{Origin: o, Rows: 5, Cols: 5, SpacingMeters: 1500, LocalFraction: 0.3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resegment(n, 500)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSegments() <= n.NumSegments() {
		t.Fatalf("resegment should increase segment count: %d -> %d", n.NumSegments(), res.NumSegments())
	}
	origLen := n.TotalLength()
	newLen := res.TotalLength()
	if math.Abs(origLen-newLen) > origLen*0.005 {
		t.Fatalf("resegment changed total length: %v -> %v", origLen, newLen)
	}
	// No piece longer than granularity (with slack for split arithmetic).
	for i := 0; i < res.NumSegments(); i++ {
		if l := res.Segment(SegmentID(i)).Length; l > 510 {
			t.Fatalf("segment %d is %v m, exceeds 500 m granularity", i, l)
		}
	}
	reached := res.StronglyConnectedFrom(0)
	if len(reached) != res.NumSegments() {
		t.Fatalf("resegmented network lost connectivity: %d of %d reachable", len(reached), res.NumSegments())
	}
}

func TestResegmentKeepsTwinsAligned(t *testing.T) {
	b := NewBuilder()
	if _, err := b.AddRoad(geo.Polyline{o, geo.Offset(o, 3000, 0)}, Highway, false); err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	res, err := Resegment(n, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSegments() != 6 { // 3 pieces x 2 directions
		t.Fatalf("NumSegments = %d, want 6", res.NumSegments())
	}
	for i := 0; i < res.NumSegments(); i++ {
		s := res.Segment(SegmentID(i))
		if s.Reverse == NoSegment {
			t.Fatalf("piece %d of two-way road lost its twin", i)
		}
		tw := res.Segment(s.Reverse)
		if tw.Reverse != s.ID {
			t.Fatalf("twin linkage broken at piece %d", i)
		}
	}
}

func TestResegmentRejectsNonPositiveGranularity(t *testing.T) {
	n := lineNet(t)
	if _, err := Resegment(n, 0); err == nil {
		t.Fatal("granularity 0 should error")
	}
	if _, err := Resegment(n, -5); err == nil {
		t.Fatal("negative granularity should error")
	}
}

func TestGenerateConnectivityAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		n, err := Generate(GenerateConfig{Origin: o, Rows: 8, Cols: 8, SpacingMeters: 1000, LocalFraction: 0.5, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n.NumSegments() < 8*7*2*2 {
			t.Fatalf("seed %d: suspiciously small network (%d segments)", seed, n.NumSegments())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenerateConfig{Origin: o, Rows: 6, Cols: 6, SpacingMeters: 900, LocalFraction: 0.4, Seed: 77}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSegments() != b.NumSegments() || a.NumVertices() != b.NumVertices() {
		t.Fatal("same seed should generate identical networks")
	}
	for i := 0; i < a.NumSegments(); i++ {
		if a.Segment(SegmentID(i)).Length != b.Segment(SegmentID(i)).Length {
			t.Fatalf("segment %d differs between runs", i)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(GenerateConfig{Rows: 1, Cols: 5, SpacingMeters: 100}); err == nil {
		t.Fatal("1-row grid should error")
	}
	if _, err := Generate(GenerateConfig{Rows: 5, Cols: 5, SpacingMeters: 0}); err == nil {
		t.Fatal("zero spacing should error")
	}
}

func TestGenerateHasAllRoadClasses(t *testing.T) {
	n, err := Generate(DefaultGenerateConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	for _, c := range []RoadClass{Highway, Primary, Secondary} {
		if st.ByClass[c] == 0 {
			t.Fatalf("generated city has no %v roads", c)
		}
	}
	if st.TotalKm < 100 {
		t.Fatalf("default city only %v km of roads", st.TotalKm)
	}
}

func TestSegmentsWithin(t *testing.T) {
	n := lineNet(t)
	box := geo.NewMBR(geo.Offset(o, -100, -100), geo.Offset(o, 1100, 100))
	ids := n.SegmentsWithin(box, nil)
	// First road (both directions) entirely inside; second road's MBR
	// touches at x=1000.
	if len(ids) < 2 {
		t.Fatalf("SegmentsWithin found %d, want >= 2", len(ids))
	}
	set := map[SegmentID]bool{}
	for _, id := range ids {
		set[id] = true
	}
	if !set[0] || !set[1] {
		t.Fatalf("SegmentsWithin missing first road: %v", ids)
	}
}

func TestStatsConsistency(t *testing.T) {
	n := lineNet(t)
	st := n.Stats()
	if st.Segments != 8 || st.Vertices != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.TotalKm-8) > 0.1 {
		t.Fatalf("TotalKm = %v, want ~8", st.TotalKm)
	}
	if math.Abs(st.MeanLengthM-1000) > 15 {
		t.Fatalf("MeanLengthM = %v, want ~1000", st.MeanLengthM)
	}
}

func TestRoadClassStrings(t *testing.T) {
	if Highway.String() != "highway" || Primary.String() != "primary" || Secondary.String() != "secondary" {
		t.Fatal("RoadClass String() broken")
	}
	if RoadClass(9).String() == "" {
		t.Fatal("unknown class should still format")
	}
	if Highway.FreeFlowSpeed() <= Primary.FreeFlowSpeed() || Primary.FreeFlowSpeed() <= Secondary.FreeFlowSpeed() {
		t.Fatal("free-flow speeds should be ordered by class")
	}
}
