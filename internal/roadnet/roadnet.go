// Package roadnet models the directed road network G(V,E) that the
// reachability system operates on (thesis §2.1): road segments carry a
// unique ID, an adjacency list, a shape polyline, a length, a direction
// indicator, a road class, and an MBR. The package also provides the
// pre-processing road re-segmentation step (§3.1), Dijkstra shortest
// paths, the incremental network expansion used to build the connection
// index, and a synthetic metropolis generator standing in for the Shenzhen
// network (see DESIGN.md §2).
package roadnet

import (
	"fmt"
	"sort"

	"streach/internal/geo"
	"streach/internal/rtree"
)

// SegmentID identifies a road segment within a Network.
type SegmentID int32

// NoSegment is the invalid segment sentinel.
const NoSegment SegmentID = -1

// RoadClass describes the level of a road (thesis §2.1 "type value").
type RoadClass uint8

const (
	// Highway is a limited-access high speed road.
	Highway RoadClass = iota
	// Primary is a main arterial road.
	Primary
	// Secondary is a local low-speed road.
	Secondary
)

// String implements fmt.Stringer.
func (c RoadClass) String() string {
	switch c {
	case Highway:
		return "highway"
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// FreeFlowSpeed returns the nominal uncongested speed for the class in m/s.
func (c RoadClass) FreeFlowSpeed() float64 {
	switch c {
	case Highway:
		return 27.8 // ~100 km/h
	case Primary:
		return 13.9 // ~50 km/h
	default:
		return 8.3 // ~30 km/h
	}
}

// Segment is one directed road segment.
type Segment struct {
	ID      SegmentID
	Shape   geo.Polyline // intermediate points, >= 2 (terminals at ends)
	Length  float64      // metres, cached Shape.Length()
	Class   RoadClass
	OneWay  bool
	Box     geo.MBR
	From    int32     // vertex index of the entry intersection
	To      int32     // vertex index of the exit intersection
	Reverse SegmentID // the opposite-direction twin, or NoSegment for one-way roads
}

// Start returns the segment's entry terminal point.
func (s *Segment) Start() geo.Point { return s.Shape[0] }

// End returns the segment's exit terminal point.
func (s *Segment) End() geo.Point { return s.Shape[len(s.Shape)-1] }

// Midpoint returns the point halfway along the segment.
func (s *Segment) Midpoint() geo.Point { return s.Shape.PointAt(s.Length / 2) }

// Network is an immutable directed road network. Build one with a Builder
// or Generate, then optionally Resegment it.
type Network struct {
	segments []Segment
	// out[v] lists segment IDs leaving vertex v; in[v] lists those arriving.
	out   [][]SegmentID
	in    [][]SegmentID
	verts []geo.Point
	// spatial is an R-tree over segment MBRs for location snapping.
	spatial *rtree.Tree
	bounds  geo.MBR
}

// NumSegments returns the number of directed segments.
func (n *Network) NumSegments() int { return len(n.segments) }

// NumVertices returns the number of intersections.
func (n *Network) NumVertices() int { return len(n.verts) }

// Segment returns the segment with the given ID. It panics on an invalid
// ID, mirroring slice indexing; callers hold IDs produced by this network.
func (n *Network) Segment(id SegmentID) *Segment { return &n.segments[id] }

// Vertex returns the location of intersection v.
func (n *Network) Vertex(v int32) geo.Point { return n.verts[v] }

// Bounds returns the MBR of the whole network.
func (n *Network) Bounds() geo.MBR { return n.bounds }

// Outgoing returns the segments leaving segment id's exit intersection:
// the "adjacent list of the connected road segments" from the thesis.
func (n *Network) Outgoing(id SegmentID) []SegmentID {
	return n.out[n.segments[id].To]
}

// Incoming returns the segments arriving at segment id's entry intersection.
func (n *Network) Incoming(id SegmentID) []SegmentID {
	return n.in[n.segments[id].From]
}

// OutgoingFrom returns the segments leaving vertex v.
func (n *Network) OutgoingFrom(v int32) []SegmentID { return n.out[v] }

// Neighbors returns all segments adjacent to id in either travel
// direction: successors, predecessors, and the reverse twin. This is the
// neighbor(r) set used by the trace back search (Algorithm 2).
func (n *Network) Neighbors(id SegmentID) []SegmentID {
	s := &n.segments[id]
	var out []SegmentID
	seen := map[SegmentID]bool{id: true}
	add := func(x SegmentID) {
		if x >= 0 && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for _, x := range n.out[s.To] {
		add(x)
	}
	for _, x := range n.in[s.From] {
		add(x)
	}
	for _, x := range n.out[s.From] {
		add(x)
	}
	for _, x := range n.in[s.To] {
		add(x)
	}
	add(s.Reverse)
	return out
}

// SnapPoint returns the segment nearest to p together with the projection
// distance in metres and the arc-length offset along the segment. ok is
// false when the network is empty.
func (n *Network) SnapPoint(p geo.Point) (id SegmentID, distMeters, alongMeters float64, ok bool) {
	if n.spatial == nil || n.spatial.Len() == 0 {
		return NoSegment, 0, 0, false
	}
	// Take a generous candidate set by MBR distance, then refine with the
	// exact polyline projection: an MBR can be near while the polyline is
	// not.
	cands := n.spatial.Nearest(p, 8)
	best := SegmentID(-1)
	bestDist := 1e18
	bestAlong := 0.0
	for _, c := range cands {
		seg := &n.segments[c.ID]
		_, d, along := seg.Shape.Project(p)
		if d < bestDist {
			best, bestDist, bestAlong = seg.ID, d, along
		}
	}
	if best < 0 {
		return NoSegment, 0, 0, false
	}
	return best, bestDist, bestAlong, true
}

// SegmentsWithin appends to dst the IDs of segments whose MBRs intersect
// the query box.
func (n *Network) SegmentsWithin(box geo.MBR, dst []SegmentID) []SegmentID {
	ids := n.spatial.Search(box, nil)
	for _, id := range ids {
		dst = append(dst, SegmentID(id))
	}
	return dst
}

// CandidatesNear returns up to limit segments whose MBRs are within radius
// metres of p, nearest first. Used by the map matcher.
func (n *Network) CandidatesNear(p geo.Point, radius float64, limit int) []SegmentID {
	items := n.spatial.NearestWithin(p, radius, limit)
	out := make([]SegmentID, len(items))
	for i, it := range items {
		out[i] = SegmentID(it.ID)
	}
	return out
}

// TotalLength returns the sum of all segment lengths in metres. Twin
// directions of two-way roads are counted separately, matching how the
// evaluation reports "total length of covered road segments".
func (n *Network) TotalLength() float64 {
	var total float64
	for i := range n.segments {
		total += n.segments[i].Length
	}
	return total
}

// Stats summarises the network for Table 4.1-style reporting.
type Stats struct {
	Segments    int
	Vertices    int
	TotalKm     float64
	ByClass     map[RoadClass]int
	MeanLengthM float64
	MaxLengthM  float64
}

// Stats computes summary statistics.
func (n *Network) Stats() Stats {
	st := Stats{
		Segments: len(n.segments),
		Vertices: len(n.verts),
		ByClass:  map[RoadClass]int{},
	}
	var total, max float64
	for i := range n.segments {
		l := n.segments[i].Length
		total += l
		if l > max {
			max = l
		}
		st.ByClass[n.segments[i].Class]++
	}
	st.TotalKm = total / 1000
	if len(n.segments) > 0 {
		st.MeanLengthM = total / float64(len(n.segments))
	}
	st.MaxLengthM = max
	return st
}

// finalize computes derived structures after segments and vertices are set.
func (n *Network) finalize() {
	n.out = make([][]SegmentID, len(n.verts))
	n.in = make([][]SegmentID, len(n.verts))
	items := make([]rtree.Item, len(n.segments))
	for i := range n.segments {
		s := &n.segments[i]
		s.Length = s.Shape.Length()
		s.Box = s.Shape.MBR()
		n.out[s.From] = append(n.out[s.From], s.ID)
		n.in[s.To] = append(n.in[s.To], s.ID)
		items[i] = rtree.Item{ID: int64(s.ID), Box: s.Box}
		n.bounds.ExpandMBR(s.Box)
	}
	for v := range n.out {
		sortSegs(n.out[v])
		sortSegs(n.in[v])
	}
	n.spatial = rtree.BulkLoad(items)
}

func sortSegs(s []SegmentID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
