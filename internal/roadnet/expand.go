package roadnet

import (
	"container/heap"
	"math"
)

// pqItem is a priority-queue entry for Dijkstra-style searches over
// segments. cost is travel time in seconds or distance in metres depending
// on the caller's weight function.
type pqItem struct {
	seg  SegmentID
	cost float64
}

type segPQ []pqItem

func (q segPQ) Len() int            { return len(q) }
func (q segPQ) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q segPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *segPQ) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *segPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// WeightFunc returns the cost of traversing a segment. Costs must be
// positive. Typical weights: travel time (length/speed) or plain length.
type WeightFunc func(id SegmentID) float64

// DistanceWeight weights each segment by its length in metres.
func (n *Network) DistanceWeight() WeightFunc {
	return func(id SegmentID) float64 { return n.segments[id].Length }
}

// TravelTimeWeight weights each segment by length divided by speed(id)
// (m/s). Speeds of zero or below yield an effectively unreachable segment.
func (n *Network) TravelTimeWeight(speed func(id SegmentID) float64) WeightFunc {
	return func(id SegmentID) float64 {
		v := speed(id)
		if v <= 0 {
			return math.Inf(1)
		}
		return n.segments[id].Length / v
	}
}

// Expand performs incremental network expansion (Papadias et al. [21], as
// modified in thesis §3.2.2): starting from src, it explores successor
// segments in increasing cumulative cost order and calls visit for every
// segment whose total cost (cost to finish traversing it, including the
// source segment itself at cost w(src)) is at most budget. visit returning
// false prunes expansion beyond that segment. The source segment is
// visited first.
func (n *Network) Expand(src SegmentID, budget float64, w WeightFunc, visit func(id SegmentID, cost float64) bool) {
	if src < 0 || int(src) >= len(n.segments) {
		return
	}
	dist := map[SegmentID]float64{}
	pq := &segPQ{}
	start := w(src)
	if start > budget {
		return
	}
	dist[src] = start
	heap.Push(pq, pqItem{src, start})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if d, ok := dist[it.seg]; !ok || it.cost > d {
			continue // stale entry
		}
		if !visit(it.seg, it.cost) {
			continue
		}
		out := n.Outgoing(it.seg)
		for _, next := range out {
			if next == n.segments[it.seg].Reverse && len(out) > 1 {
				continue // no immediate U-turns except at dead ends
			}
			c := it.cost + w(next)
			if c > budget || math.IsInf(c, 1) {
				continue
			}
			if d, ok := dist[next]; !ok || c < d {
				dist[next] = c
				heap.Push(pq, pqItem{next, c})
			}
		}
	}
}

// ExpandMulti runs Expand from several sources simultaneously, reporting
// for each reached segment the minimum cost and the source index that
// achieved it. Used by the m-query bounding-region search to attribute
// segments to their nearest start location (Algorithm 3, line 8).
func (n *Network) ExpandMulti(srcs []SegmentID, budget float64, w WeightFunc, visit func(id SegmentID, cost float64, srcIdx int) bool) {
	type state struct {
		cost float64
		src  int
	}
	dist := map[SegmentID]state{}
	pq := &multiPQ{}
	for i, s := range srcs {
		if s < 0 || int(s) >= len(n.segments) {
			continue
		}
		c := w(s)
		if c > budget {
			continue
		}
		if cur, ok := dist[s]; !ok || c < cur.cost {
			dist[s] = state{c, i}
			heap.Push(pq, multiItem{s, c, i})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(multiItem)
		if cur, ok := dist[it.seg]; !ok || it.cost > cur.cost || cur.src != it.src {
			continue
		}
		if !visit(it.seg, it.cost, it.src) {
			continue
		}
		out := n.Outgoing(it.seg)
		for _, next := range out {
			if next == n.segments[it.seg].Reverse && len(out) > 1 {
				continue
			}
			c := it.cost + w(next)
			if c > budget || math.IsInf(c, 1) {
				continue
			}
			if cur, ok := dist[next]; !ok || c < cur.cost {
				dist[next] = state{c, it.src}
				heap.Push(pq, multiItem{next, c, it.src})
			}
		}
	}
}

type multiItem struct {
	seg  SegmentID
	cost float64
	src  int
}

type multiPQ []multiItem

func (q multiPQ) Len() int            { return len(q) }
func (q multiPQ) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q multiPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *multiPQ) Push(x interface{}) { *q = append(*q, x.(multiItem)) }
func (q *multiPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath returns the minimum-cost segment sequence from src to dst
// (both inclusive) under w, and the total cost. found is false when dst is
// unreachable. src == dst returns the single-segment path.
func (n *Network) ShortestPath(src, dst SegmentID, w WeightFunc) (path []SegmentID, cost float64, found bool) {
	if src < 0 || dst < 0 || int(src) >= len(n.segments) || int(dst) >= len(n.segments) {
		return nil, 0, false
	}
	dist := map[SegmentID]float64{src: w(src)}
	prev := map[SegmentID]SegmentID{}
	pq := &segPQ{{src, dist[src]}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if d, ok := dist[it.seg]; !ok || it.cost > d {
			continue
		}
		if it.seg == dst {
			// Reconstruct.
			var rev []SegmentID
			for at := dst; ; {
				rev = append(rev, at)
				p, ok := prev[at]
				if !ok {
					break
				}
				at = p
			}
			path = make([]SegmentID, len(rev))
			for i, s := range rev {
				path[len(rev)-1-i] = s
			}
			return path, it.cost, true
		}
		out := n.Outgoing(it.seg)
		for _, next := range out {
			if next == n.segments[it.seg].Reverse && len(out) > 1 {
				continue
			}
			c := it.cost + w(next)
			if math.IsInf(c, 1) {
				continue
			}
			if d, ok := dist[next]; !ok || c < d {
				dist[next] = c
				prev[next] = it.seg
				heap.Push(pq, pqItem{next, c})
			}
		}
	}
	return nil, 0, false
}

// NetworkDistance returns the shortest travel distance in metres from the
// start of src to the end of dst, or +Inf when unreachable.
func (n *Network) NetworkDistance(src, dst SegmentID) float64 {
	_, cost, ok := n.ShortestPath(src, dst, n.DistanceWeight())
	if !ok {
		return math.Inf(1)
	}
	return cost
}

// StronglyConnectedFrom returns the set of segments reachable from src
// with unbounded budget — used by tests and the generator to verify
// connectivity.
func (n *Network) StronglyConnectedFrom(src SegmentID) map[SegmentID]bool {
	seen := map[SegmentID]bool{}
	n.Expand(src, math.Inf(1), func(SegmentID) float64 { return 1 }, func(id SegmentID, _ float64) bool {
		seen[id] = true
		return true
	})
	return seen
}
