package roadnet

import (
	"fmt"
	"math"

	"streach/internal/geo"
)

// Builder assembles a Network from raw roads. Vertices are deduplicated by
// snapping coordinates to a fine grid (~1 m), so roads that share an
// endpoint connect automatically.
type Builder struct {
	verts    []geo.Point
	vertIdx  map[[2]int64]int32
	segments []Segment
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{vertIdx: map[[2]int64]int32{}}
}

const vertexSnap = 1e-5 // ~1.1 m in latitude

func (b *Builder) vertex(p geo.Point) int32 {
	key := [2]int64{int64(math.Round(p.Lat / vertexSnap)), int64(math.Round(p.Lng / vertexSnap))}
	if v, ok := b.vertIdx[key]; ok {
		return v
	}
	v := int32(len(b.verts))
	b.verts = append(b.verts, p)
	b.vertIdx[key] = v
	return v
}

// AddRoad adds a road with the given shape. Two-way roads produce a pair
// of twin directed segments. It returns the forward segment's ID.
func (b *Builder) AddRoad(shape geo.Polyline, class RoadClass, oneWay bool) (SegmentID, error) {
	if len(shape) < 2 {
		return NoSegment, fmt.Errorf("roadnet: road shape needs >= 2 points, got %d", len(shape))
	}
	if shape.Length() <= 0 {
		return NoSegment, fmt.Errorf("roadnet: zero-length road at %v", shape[0])
	}
	fwd := SegmentID(len(b.segments))
	from := b.vertex(shape[0])
	to := b.vertex(shape[len(shape)-1])
	b.segments = append(b.segments, Segment{
		ID:      fwd,
		Shape:   shape,
		Class:   class,
		OneWay:  oneWay,
		From:    from,
		To:      to,
		Reverse: NoSegment,
	})
	if !oneWay {
		rev := SegmentID(len(b.segments))
		b.segments = append(b.segments, Segment{
			ID:      rev,
			Shape:   shape.Reverse(),
			Class:   class,
			OneWay:  false,
			From:    to,
			To:      from,
			Reverse: fwd,
		})
		b.segments[fwd].Reverse = rev
	}
	return fwd, nil
}

// Build finalizes the network. The builder must not be reused afterwards.
func (b *Builder) Build() *Network {
	n := &Network{segments: b.segments, verts: b.verts}
	n.finalize()
	return n
}

// Resegment implements the pre-processing road re-segmentation step
// (thesis §3.1): every segment longer than granularity metres is chopped
// into pieces of at most granularity metres by inserting new intersection
// points, so that long roads (e.g. highways) do not blur the reachability
// result. Twin pairs are re-linked piecewise. The original network is not
// modified.
func Resegment(n *Network, granularity float64) (*Network, error) {
	if granularity <= 0 {
		return nil, fmt.Errorf("roadnet: granularity must be positive, got %v", granularity)
	}
	b := NewBuilder()

	// Chop each road once: two-way pairs are processed via their forward
	// member, and AddRoad re-creates the twin pieces, so twin pieces stay
	// aligned piecewise.
	done := make([]bool, len(n.segments))
	for i := range n.segments {
		s := &n.segments[i]
		if done[s.ID] {
			continue
		}
		done[s.ID] = true
		if s.Reverse >= 0 {
			done[s.Reverse] = true
		}
		pieces := chop(s.Shape, granularity)
		for _, p := range pieces {
			if _, err := b.AddRoad(p, s.Class, s.OneWay); err != nil {
				return nil, fmt.Errorf("roadnet: resegment %d: %w", s.ID, err)
			}
		}
	}
	return b.Build(), nil
}

// chop splits shape into consecutive polylines each of length at most g,
// using ceil(len/g) equal pieces so no sliver pieces appear.
func chop(shape geo.Polyline, g float64) []geo.Polyline {
	total := shape.Length()
	if total <= g {
		return []geo.Polyline{shape}
	}
	// The 1e-9 slack keeps float roundoff from bumping an exact multiple
	// of g into an extra sliver piece.
	k := int(math.Ceil(total/g - 1e-9))
	pieceLen := total / float64(k)
	out := make([]geo.Polyline, 0, k)
	rest := shape
	for i := 0; i < k-1; i++ {
		var head geo.Polyline
		head, rest = rest.SplitAt(pieceLen)
		out = append(out, head)
	}
	out = append(out, rest)
	return out
}
