// Package trajquery implements the conventional trajectory queries the
// thesis builds on (§5.2): spatio-temporal range queries, trajectory
// aggregate (count) queries, and K-nearest-trajectory queries. All of
// them run over the same ST-Index as the reachability queries, which is
// the point — the index serves the classic workloads too.
package trajquery

import (
	"fmt"
	"sort"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
)

// TrajRef identifies one trajectory (a taxi-day) matched by a query,
// together with the segment that witnessed the match and its distance to
// the query geometry (metres; zero for range queries).
type TrajRef struct {
	Taxi    traj.TaxiID
	Day     traj.Day
	Segment roadnet.SegmentID
	Dist    float64
}

// Window is a time-of-day interval in seconds since midnight, with an
// optional day restriction (Day = -1 matches every day).
type Window struct {
	FromSec, ToSec int
	Day            traj.Day
}

// AllDays marks a window as unrestricted by date.
const AllDays = traj.Day(-1)

// trajKey identifies a trajectory: one taxi on one day.
type trajKey struct {
	taxi traj.TaxiID
	day  traj.Day
}

// Validate checks the window bounds.
func (w Window) Validate() error {
	if w.FromSec < 0 || w.ToSec > 86400 || w.FromSec > w.ToSec {
		return fmt.Errorf("trajquery: bad window [%d, %d]", w.FromSec, w.ToSec)
	}
	return nil
}

// Range returns the trajectories that traversed any road segment
// intersecting box during the window, deduplicated by (taxi, day) and
// sorted by taxi then day. This is the classic spatio-temporal range
// query ("which trajectories passed this area between 9:00 and 9:30?").
func Range(st *stindex.Index, box geo.MBR, w Window) ([]TrajRef, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	net := st.Network()
	segs := net.SegmentsWithin(box, nil)
	slotSec := st.SlotSeconds()
	loSlot, hiSlot := w.FromSec/slotSec, (w.ToSec-1)/slotSec
	if w.ToSec == w.FromSec {
		hiSlot = loSlot
	}

	found := map[trajKey]roadnet.SegmentID{}
	for _, seg := range segs {
		for slot := loSlot; slot <= hiSlot; slot++ {
			tl, err := st.TimeListAt(seg, slot)
			if err != nil {
				return nil, err
			}
			for i, d := range tl.Days {
				if w.Day != AllDays && d != w.Day {
					continue
				}
				for _, taxi := range tl.Taxis[i] {
					k := trajKey{taxi, d}
					if _, ok := found[k]; !ok {
						found[k] = seg
					}
				}
			}
		}
	}
	out := make([]TrajRef, 0, len(found))
	for k, seg := range found {
		out = append(out, TrajRef{Taxi: k.taxi, Day: k.day, Segment: seg})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Taxi != out[j].Taxi {
			return out[i].Taxi < out[j].Taxi
		}
		return out[i].Day < out[j].Day
	})
	return out, nil
}

// Count is the trajectory aggregate query of Li et al. [20]: the number
// of distinct trajectories in the spatio-temporal region.
func Count(st *stindex.Index, box geo.MBR, w Window) (int, error) {
	refs, err := Range(st, box, w)
	if err != nil {
		return 0, err
	}
	return len(refs), nil
}

// KNN returns the k trajectories nearest to p that were active during
// the window, ordered by the distance from p to the first segment each
// trajectory was observed on. Distance is segment-MBR distance refined by
// polyline projection — the standard "searching trajectories by
// locations" formulation [11].
func KNN(st *stindex.Index, p geo.Point, k int, w Window) ([]TrajRef, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("trajquery: k must be positive, got %d", k)
	}
	net := st.Network()
	slotSec := st.SlotSeconds()
	loSlot, hiSlot := w.FromSec/slotSec, (w.ToSec-1)/slotSec
	if w.ToSec == w.FromSec {
		hiSlot = loSlot
	}

	best := map[trajKey]TrajRef{}

	// Expanding-ring search: examine segments in increasing distance
	// bands; once k trajectories are found, segments further than the
	// current k-th distance cannot improve the result.
	radius := 500.0
	maxRadius := 2 * geo.Distance(
		geo.Point{Lat: net.Bounds().MinLat, Lng: net.Bounds().MinLng},
		geo.Point{Lat: net.Bounds().MaxLat, Lng: net.Bounds().MaxLng},
	)
	if maxRadius < 1000 {
		maxRadius = 1000
	}
	seen := map[roadnet.SegmentID]bool{}
	for {
		for _, item := range net.CandidatesNear(p, radius, 0) {
			if seen[item] {
				continue
			}
			seen[item] = true
			seg := net.Segment(item)
			_, dist, _ := seg.Shape.Project(p)
			for slot := loSlot; slot <= hiSlot; slot++ {
				tl, err := st.TimeListAt(item, slot)
				if err != nil {
					return nil, err
				}
				for i, d := range tl.Days {
					if w.Day != AllDays && d != w.Day {
						continue
					}
					for _, taxi := range tl.Taxis[i] {
						kk := trajKey{taxi, d}
						if cur, ok := best[kk]; !ok || dist < cur.Dist {
							best[kk] = TrajRef{Taxi: taxi, Day: d, Segment: item, Dist: dist}
						}
					}
				}
			}
		}
		if len(best) >= k || radius >= maxRadius {
			// With k candidates whose distances are all below the ring
			// radius, no unseen segment (all further than radius) can
			// displace them.
			refs := rank(best)
			if len(refs) >= k && refs[k-1].Dist <= radius {
				return refs[:k], nil
			}
			if radius >= maxRadius {
				if len(refs) > k {
					refs = refs[:k]
				}
				return refs, nil
			}
		}
		radius *= 2
	}
}

func rank(best map[trajKey]TrajRef) []TrajRef {
	out := make([]TrajRef, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		if out[i].Taxi != out[j].Taxi {
			return out[i].Taxi < out[j].Taxi
		}
		return out[i].Day < out[j].Day
	})
	return out
}
