package trajquery

import (
	"sync"
	"testing"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
)

type world struct {
	net *roadnet.Network
	ds  *traj.Dataset
	st  *stindex.Index
}

var (
	wOnce sync.Once
	w     *world
	wErr  error
)

func getWorld(t *testing.T) *world {
	t.Helper()
	wOnce.Do(func() {
		net, err := roadnet.Generate(roadnet.GenerateConfig{
			Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
			Rows:          7,
			Cols:          7,
			SpacingMeters: 800,
			LocalFraction: 0.3,
			Seed:          13,
		})
		if err != nil {
			wErr = err
			return
		}
		ds, err := traj.Simulate(net, traj.SimConfig{
			Taxis: 25, Days: 5, Profile: traj.FlatSpeedProfile(), Seed: 14,
			ActiveStartSec: 8 * 3600, ActiveEndSec: 12 * 3600,
		})
		if err != nil {
			wErr = err
			return
		}
		st, err := stindex.Build(net, ds, stindex.Config{SlotSeconds: 300})
		if err != nil {
			wErr = err
			return
		}
		w = &world{net: net, ds: ds, st: st}
	})
	if wErr != nil {
		t.Fatal(wErr)
	}
	return w
}

// oracleRange recomputes a range query straight from the dataset.
func oracleRange(w *world, box geo.MBR, win Window) map[trajKey]bool {
	out := map[trajKey]bool{}
	for i := range w.ds.Matched {
		mt := &w.ds.Matched[i]
		if win.Day != AllDays && mt.Day != win.Day {
			continue
		}
		for _, v := range mt.Visits {
			fromSec := int(v.EnterSec())
			toSec := int(v.ExitSec())
			if toSec < win.FromSec || fromSec > win.ToSec {
				continue
			}
			if !w.net.Segment(v.Segment).Box.Intersects(box) {
				continue
			}
			out[trajKey{mt.Taxi, mt.Day}] = true
		}
	}
	return out
}

func TestRangeFindsKnownTraffic(t *testing.T) {
	w := getWorld(t)
	// Window around a known visit.
	mt := &w.ds.Matched[0]
	v := mt.Visits[len(mt.Visits)/2]
	sec := int(v.EnterSec())
	box := w.net.Segment(v.Segment).Box.Buffer(50)
	win := Window{FromSec: sec - 300, ToSec: sec + 300, Day: mt.Day}
	refs, err := Range(w.st, box, win)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range refs {
		if r.Taxi == mt.Taxi && r.Day == mt.Day {
			found = true
		}
	}
	if !found {
		t.Fatal("range query missed the witness trajectory")
	}
}

func TestRangeSupersetOfOracle(t *testing.T) {
	// The index stores slot-granular membership, so the range result is
	// a superset of the exact-second oracle (it may include trajectories
	// that touched the box in the same slot but outside the window) and
	// must include everything the oracle finds.
	w := getWorld(t)
	center := w.net.Bounds().Center()
	box := geo.NewMBR(geo.Offset(center, -1500, -1500), geo.Offset(center, 1500, 1500))
	win := Window{FromSec: 9 * 3600, ToSec: 10 * 3600, Day: AllDays}
	refs, err := Range(w.st, box, win)
	if err != nil {
		t.Fatal(err)
	}
	got := map[trajKey]bool{}
	for _, r := range refs {
		got[trajKey{r.Taxi, r.Day}] = true
	}
	want := oracleRange(w, box, win)
	if len(want) == 0 {
		t.Fatal("oracle found nothing; test is vacuous")
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("range query missed trajectory %v", k)
		}
	}
}

func TestRangeEmptyOutsideActiveHours(t *testing.T) {
	w := getWorld(t)
	box := w.net.Bounds()
	box.Expand(geo.Point{Lat: box.MinLat, Lng: box.MinLng})
	refs, err := Range(w.st, w.net.Bounds(), Window{FromSec: 2 * 3600, ToSec: 3 * 3600, Day: AllDays})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 0 {
		t.Fatalf("no taxis are active at 02:00, got %d refs", len(refs))
	}
}

func TestRangeDayFilter(t *testing.T) {
	w := getWorld(t)
	box := w.net.Bounds()
	all, err := Range(w.st, box, Window{FromSec: 9 * 3600, ToSec: 10 * 3600, Day: AllDays})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Range(w.st, box, Window{FromSec: 9 * 3600, ToSec: 10 * 3600, Day: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) == 0 || len(one) >= len(all) {
		t.Fatalf("day filter: %d of %d", len(one), len(all))
	}
	for _, r := range one {
		if r.Day != 2 {
			t.Fatalf("day filter leaked day %d", r.Day)
		}
	}
}

func TestRangeValidation(t *testing.T) {
	w := getWorld(t)
	if _, err := Range(w.st, w.net.Bounds(), Window{FromSec: -1, ToSec: 100}); err == nil {
		t.Fatal("negative FromSec should error")
	}
	if _, err := Range(w.st, w.net.Bounds(), Window{FromSec: 200, ToSec: 100}); err == nil {
		t.Fatal("inverted window should error")
	}
	if _, err := Range(w.st, w.net.Bounds(), Window{FromSec: 0, ToSec: 90000}); err == nil {
		t.Fatal("window past midnight should error")
	}
}

func TestCountMatchesRange(t *testing.T) {
	w := getWorld(t)
	box := w.net.Bounds()
	win := Window{FromSec: 9 * 3600, ToSec: 10 * 3600, Day: AllDays}
	refs, err := Range(w.st, box, win)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Count(w.st, box, win)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(refs) {
		t.Fatalf("Count = %d, Range found %d", n, len(refs))
	}
}

func TestKNNOrderedByDistance(t *testing.T) {
	w := getWorld(t)
	p := w.net.Bounds().Center()
	refs, err := KNN(w.st, p, 5, Window{FromSec: 9 * 3600, ToSec: 10 * 3600, Day: AllDays})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) == 0 {
		t.Fatal("KNN found nothing in a busy window")
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1].Dist > refs[i].Dist {
			t.Fatalf("KNN results out of order at %d: %v > %v", i, refs[i-1].Dist, refs[i].Dist)
		}
	}
	// No duplicate trajectories.
	seen := map[trajKey]bool{}
	for _, r := range refs {
		k := trajKey{r.Taxi, r.Day}
		if seen[k] {
			t.Fatalf("duplicate trajectory %v in KNN result", k)
		}
		seen[k] = true
	}
}

func TestKNNReturnsAtMostK(t *testing.T) {
	w := getWorld(t)
	p := w.net.Bounds().Center()
	for _, k := range []int{1, 3, 10} {
		refs, err := KNN(w.st, p, k, Window{FromSec: 9 * 3600, ToSec: 10 * 3600, Day: AllDays})
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) > k {
			t.Fatalf("KNN(k=%d) returned %d", k, len(refs))
		}
	}
}

func TestKNNQuietWindowReturnsFew(t *testing.T) {
	w := getWorld(t)
	p := w.net.Bounds().Center()
	refs, err := KNN(w.st, p, 5, Window{FromSec: 1 * 3600, ToSec: 2 * 3600, Day: AllDays})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 0 {
		t.Fatalf("KNN at 01:00 should find nothing, got %d", len(refs))
	}
}

func TestKNNValidation(t *testing.T) {
	w := getWorld(t)
	p := w.net.Bounds().Center()
	if _, err := KNN(w.st, p, 0, Window{FromSec: 0, ToSec: 100}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KNN(w.st, p, 3, Window{FromSec: 100, ToSec: 0}); err == nil {
		t.Fatal("bad window should error")
	}
}

func TestKNNNearestIsGenuinelyNearest(t *testing.T) {
	w := getWorld(t)
	// Query point on a known busy segment: the nearest trajectory should
	// have distance ~0 (it drove over that segment).
	mt := &w.ds.Matched[0]
	v := mt.Visits[len(mt.Visits)/2]
	sec := int(v.EnterSec())
	p := w.net.Segment(v.Segment).Midpoint()
	refs, err := KNN(w.st, p, 1, Window{FromSec: sec - 300, ToSec: sec + 300, Day: mt.Day})
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 1 {
		t.Fatalf("KNN returned %d refs", len(refs))
	}
	if refs[0].Dist > 50 {
		t.Fatalf("nearest trajectory is %v m away, expected ~0", refs[0].Dist)
	}
}
