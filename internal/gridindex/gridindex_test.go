package gridindex

import (
	"math/rand"
	"sort"
	"testing"

	"streach/internal/geo"
	"streach/internal/roadnet"
)

func testNetwork(t testing.TB) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
		Rows:          8,
		Cols:          8,
		SpacingMeters: 800,
		LocalFraction: 0.4,
		Seed:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildValidations(t *testing.T) {
	n := testNetwork(t)
	if _, err := Build(roadnet.NewBuilder().Build(), 500); err == nil {
		t.Fatal("empty network should error")
	}
	if _, err := Build(n, 0); err == nil {
		t.Fatal("zero cell size should error")
	}
	g, err := Build(n, 500)
	if err != nil {
		t.Fatal(err)
	}
	if g.CellCount() < 4 {
		t.Fatalf("suspiciously few cells: %d", g.CellCount())
	}
}

func TestSearchMatchesRTree(t *testing.T) {
	n := testNetwork(t)
	g, err := Build(n, 400)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	origin := geo.Point{Lat: 22.5, Lng: 114.0}
	for i := 0; i < 100; i++ {
		a := geo.Offset(origin, rng.Float64()*6000, rng.Float64()*6000)
		b := geo.Offset(a, rng.Float64()*2000, rng.Float64()*2000)
		query := geo.NewMBR(a, b)
		got := g.Search(query, nil)
		want := n.SegmentsWithin(query, nil)
		sortIDs(got)
		sortIDs(want)
		if len(got) != len(want) {
			t.Fatalf("query %d: grid %d segments, rtree %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("query %d: result %d differs (%d vs %d)", i, j, got[j], want[j])
			}
		}
	}
}

func TestSnapPointMatchesNetworkSnap(t *testing.T) {
	n := testNetwork(t)
	g, err := Build(n, 400)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	origin := geo.Point{Lat: 22.5, Lng: 114.0}
	for i := 0; i < 200; i++ {
		p := geo.Offset(origin, rng.Float64()*6000, rng.Float64()*6000)
		gid, gdist, ok := g.SnapPoint(p)
		if !ok {
			t.Fatal("grid snap failed")
		}
		_, ndist, _, ok := n.SnapPoint(p)
		if !ok {
			t.Fatal("network snap failed")
		}
		// Both must find the same nearest distance (the segment itself may
		// differ when twins overlap).
		if diff := gdist - ndist; diff > 1 || diff < -1 {
			t.Fatalf("point %d: grid snapped %v m (seg %d), rtree %v m", i, gdist, gid, ndist)
		}
	}
}

func TestSearchOutsideBounds(t *testing.T) {
	n := testNetwork(t)
	g, err := Build(n, 500)
	if err != nil {
		t.Fatal(err)
	}
	far := geo.Point{Lat: 10, Lng: 10}
	if got := g.Search(geo.NewMBR(far, far), nil); len(got) != 0 {
		t.Fatalf("search outside bounds returned %d segments", len(got))
	}
	var empty geo.MBR
	if got := g.Search(empty, nil); len(got) != 0 {
		t.Fatal("empty query should return nothing")
	}
}

func TestSnapPointFarAway(t *testing.T) {
	n := testNetwork(t)
	g, err := Build(n, 500)
	if err != nil {
		t.Fatal(err)
	}
	// A point far outside still snaps to the closest boundary segment.
	far := geo.Offset(geo.Point{Lat: 22.5, Lng: 114.0}, -20000, -20000)
	id, dist, ok := g.SnapPoint(far)
	if !ok || id < 0 {
		t.Fatal("snap from far away should still succeed")
	}
	if dist < 20000 {
		t.Fatalf("far snap distance %v implausibly small", dist)
	}
}

func sortIDs(s []roadnet.SegmentID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// BenchmarkGridVsRTree compares point-snapping throughput between the
// SETI-style grid and the R-tree the ST-Index uses (thesis §5.1's
// structural comparison).
func BenchmarkGridVsRTree(b *testing.B) {
	n := testNetwork(b)
	g, err := Build(n, 400)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	origin := geo.Point{Lat: 22.5, Lng: 114.0}
	points := make([]geo.Point, 512)
	for i := range points {
		points[i] = geo.Offset(origin, rng.Float64()*6000, rng.Float64()*6000)
	}
	b.Run("grid-snap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.SnapPoint(points[i%len(points)])
		}
	})
	b.Run("rtree-snap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			n.SnapPoint(points[i%len(points)])
		}
	})
}
