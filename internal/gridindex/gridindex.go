// Package gridindex implements a SETI-style spatial grid index (Chakka
// et al. [7], discussed in thesis §5.1): space is partitioned into fixed
// cells and each cell lists the road segments whose MBRs intersect it.
// It answers the same segment-lookup queries as the R-tree used by the
// ST-Index and exists as the comparison point the related-work chapter
// discusses — see BenchmarkGridVsRTree.
package gridindex

import (
	"fmt"
	"math"

	"streach/internal/geo"
	"streach/internal/roadnet"
)

// Grid is a fixed-resolution spatial index over a road network.
type Grid struct {
	net        *roadnet.Network
	bounds     geo.MBR
	rows, cols int
	cellLat    float64 // cell height in degrees
	cellLng    float64 // cell width in degrees
	cells      [][]roadnet.SegmentID
}

// Build creates a grid whose cells are approximately cellMeters across.
func Build(net *roadnet.Network, cellMeters float64) (*Grid, error) {
	if net.NumSegments() == 0 {
		return nil, fmt.Errorf("gridindex: empty network")
	}
	if cellMeters <= 0 {
		return nil, fmt.Errorf("gridindex: cell size must be positive, got %v", cellMeters)
	}
	b := net.Bounds()
	heightM := geo.Distance(geo.Point{Lat: b.MinLat, Lng: b.MinLng}, geo.Point{Lat: b.MaxLat, Lng: b.MinLng})
	widthM := geo.Distance(geo.Point{Lat: b.MinLat, Lng: b.MinLng}, geo.Point{Lat: b.MinLat, Lng: b.MaxLng})
	rows := int(math.Ceil(heightM / cellMeters))
	cols := int(math.Ceil(widthM / cellMeters))
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	g := &Grid{
		net:     net,
		bounds:  b,
		rows:    rows,
		cols:    cols,
		cellLat: (b.MaxLat - b.MinLat) / float64(rows),
		cellLng: (b.MaxLng - b.MinLng) / float64(cols),
		cells:   make([][]roadnet.SegmentID, rows*cols),
	}
	if g.cellLat <= 0 || g.cellLng <= 0 {
		return nil, fmt.Errorf("gridindex: degenerate network bounds %+v", b)
	}
	for i := 0; i < net.NumSegments(); i++ {
		id := roadnet.SegmentID(i)
		box := net.Segment(id).Box
		r0, c0 := g.cellOf(geo.Point{Lat: box.MinLat, Lng: box.MinLng})
		r1, c1 := g.cellOf(geo.Point{Lat: box.MaxLat, Lng: box.MaxLng})
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				idx := r*g.cols + c
				g.cells[idx] = append(g.cells[idx], id)
			}
		}
	}
	return g, nil
}

// cellOf maps a point to its (row, col), clamped to the grid.
func (g *Grid) cellOf(p geo.Point) (int, int) {
	r := int((p.Lat - g.bounds.MinLat) / g.cellLat)
	c := int((p.Lng - g.bounds.MinLng) / g.cellLng)
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	return r, c
}

// Rows returns the grid's row count.
func (g *Grid) Rows() int { return g.rows }

// Cols returns the grid's column count.
func (g *Grid) Cols() int { return g.cols }

// CellCount returns the number of cells.
func (g *Grid) CellCount() int { return g.rows * g.cols }

// Search appends the IDs of segments whose MBRs intersect query,
// deduplicated (a segment may be listed in several cells).
func (g *Grid) Search(query geo.MBR, dst []roadnet.SegmentID) []roadnet.SegmentID {
	if query.Empty() || !query.Intersects(g.bounds) {
		return dst
	}
	r0, c0 := g.cellOf(geo.Point{Lat: query.MinLat, Lng: query.MinLng})
	r1, c1 := g.cellOf(geo.Point{Lat: query.MaxLat, Lng: query.MaxLng})
	seen := map[roadnet.SegmentID]bool{}
	for r := r0; r <= r1; r++ {
		for c := c0; c <= c1; c++ {
			for _, id := range g.cells[r*g.cols+c] {
				if seen[id] {
					continue
				}
				seen[id] = true
				if g.net.Segment(id).Box.Intersects(query) {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// SnapPoint returns the segment nearest to p by exact polyline projection,
// searching outward ring by ring. ok is false only for an empty grid.
func (g *Grid) SnapPoint(p geo.Point) (id roadnet.SegmentID, distMeters float64, ok bool) {
	best := roadnet.SegmentID(-1)
	bestDist := math.Inf(1)
	pr, pc := g.cellOf(p)
	// cellMin is a conservative lower bound on the distance from p to any
	// cell `ring` steps away, in metres.
	cellMin := math.Min(g.cellLat, g.cellLng) * 111_000
	maxRing := g.rows + g.cols
	for ring := 0; ring <= maxRing; ring++ {
		// Once a candidate exists, a further ring cannot beat it when the
		// ring's minimum possible distance already exceeds the best.
		if best >= 0 && float64(ring-1)*cellMin > bestDist {
			break
		}
		for r := pr - ring; r <= pr+ring; r++ {
			if r < 0 || r >= g.rows {
				continue
			}
			for c := pc - ring; c <= pc+ring; c++ {
				if c < 0 || c >= g.cols {
					continue
				}
				// Only the ring's border cells are new.
				if ring > 0 && r != pr-ring && r != pr+ring && c != pc-ring && c != pc+ring {
					continue
				}
				for _, segID := range g.cells[r*g.cols+c] {
					_, d, _ := g.net.Segment(segID).Shape.Project(p)
					if d < bestDist {
						best, bestDist = segID, d
					}
				}
			}
		}
	}
	if best < 0 {
		return -1, 0, false
	}
	return best, bestDist, true
}
