package router

import (
	"context"
	"sync"
	"testing"

	"streach/internal/conindex"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

var bg = context.Background()

type world struct {
	net *roadnet.Network
	con *conindex.Index
}

var (
	wOnce sync.Once
	w     *world
	wErr  error
)

func getWorld(t *testing.T) *world {
	t.Helper()
	wOnce.Do(func() {
		net, err := roadnet.Generate(roadnet.GenerateConfig{
			Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
			Rows:          8,
			Cols:          8,
			SpacingMeters: 900,
			LocalFraction: 0.4,
			Seed:          17,
		})
		if err != nil {
			wErr = err
			return
		}
		ds, err := traj.Simulate(net, traj.SimConfig{
			Taxis: 60, Days: 6, Profile: traj.DefaultSpeedProfile(), Seed: 18,
		})
		if err != nil {
			wErr = err
			return
		}
		con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: 300})
		if err != nil {
			wErr = err
			return
		}
		w = &world{net: net, con: con}
	})
	if wErr != nil {
		t.Fatal(wErr)
	}
	return w
}

// corners returns two far-apart segments.
func corners(w *world) (roadnet.SegmentID, roadnet.SegmentID) {
	b := w.net.Bounds()
	src, _, _, _ := w.net.SnapPoint(geo.Point{Lat: b.MinLat, Lng: b.MinLng})
	dst, _, _, _ := w.net.SnapPoint(geo.Point{Lat: b.MaxLat, Lng: b.MaxLng})
	return src, dst
}

func TestTimeDependentRouteIsValid(t *testing.T) {
	w := getWorld(t)
	r := New(w.net, w.con)
	src, dst := corners(w)
	route, err := r.TimeDependent(bg, src, dst, 11*3600)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(route); err != nil {
		t.Fatal(err)
	}
	if route.Path[0] != src || route.Path[len(route.Path)-1] != dst {
		t.Fatal("route must start at src and end at dst")
	}
	if route.TravelTimeSec <= 0 || route.DistanceMeters <= 0 {
		t.Fatalf("degenerate route: %+v", route)
	}
}

func TestRushHourSlowerThanNight(t *testing.T) {
	w := getWorld(t)
	r := New(w.net, w.con)
	src, dst := corners(w)
	night, err := r.TimeDependent(bg, src, dst, 3*3600)
	if err != nil {
		t.Fatal(err)
	}
	rush, err := r.TimeDependent(bg, src, dst, 7.5*3600)
	if err != nil {
		t.Fatal(err)
	}
	if rush.TravelTimeSec <= night.TravelTimeSec {
		t.Fatalf("rush-hour ETA (%v s) should exceed night ETA (%v s)",
			rush.TravelTimeSec, night.TravelTimeSec)
	}
}

func TestFreeFlowIsLowerBound(t *testing.T) {
	w := getWorld(t)
	r := New(w.net, w.con)
	src, dst := corners(w)
	ff, err := r.FreeFlow(bg, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []float64{3, 8, 12, 18} {
		td, err := r.TimeDependent(bg, src, dst, h*3600)
		if err != nil {
			t.Fatal(err)
		}
		// Mean observed speeds are below free flow, so the static ETA is
		// optimistic (allow a hair of slack for route differences).
		if td.TravelTimeSec < ff.TravelTimeSec*0.95 {
			t.Fatalf("time-dependent ETA at %02.0f:00 (%v) beats free flow (%v)",
				h, td.TravelTimeSec, ff.TravelTimeSec)
		}
	}
}

func TestSelfRoute(t *testing.T) {
	w := getWorld(t)
	r := New(w.net, w.con)
	route, err := r.TimeDependent(bg, 5, 5, 10*3600)
	if err != nil {
		t.Fatal(err)
	}
	if len(route.Path) != 1 || route.Path[0] != 5 {
		t.Fatalf("self route = %v", route.Path)
	}
	if route.TravelTimeSec <= 0 {
		t.Fatal("traversing the start segment takes time")
	}
}

func TestRouteValidation(t *testing.T) {
	w := getWorld(t)
	r := New(w.net, w.con)
	if _, err := r.TimeDependent(bg, -1, 5, 0); err == nil {
		t.Fatal("negative src should error")
	}
	if _, err := r.TimeDependent(bg, 0, roadnet.SegmentID(w.net.NumSegments()), 0); err == nil {
		t.Fatal("out-of-range dst should error")
	}
	if _, err := r.TimeDependent(bg, 0, 5, 90000); err == nil {
		t.Fatal("departure past midnight should error")
	}
	if err := r.Validate(&Route{}); err == nil {
		t.Fatal("empty route should fail validation")
	}
}

func TestETAProfileShape(t *testing.T) {
	w := getWorld(t)
	r := New(w.net, w.con)
	src, dst := corners(w)
	profile, err := r.ETAProfile(bg, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	// The profile must dip at night relative to the evening rush.
	if profile[18] <= profile[3] {
		t.Fatalf("ETA at 18:00 (%v) should exceed 03:00 (%v)", profile[18], profile[3])
	}
	for h, eta := range profile {
		if eta <= 0 {
			t.Fatalf("hour %d has non-positive ETA", h)
		}
	}
}

func TestMeanSpeedStatistics(t *testing.T) {
	w := getWorld(t)
	// Mean must lie within [min, max] wherever observations exist.
	checked := 0
	for slot := 0; slot < w.con.NumSlots(); slot += 11 {
		for seg := 0; seg < w.net.NumSegments(); seg += 13 {
			id := roadnet.SegmentID(seg)
			if w.con.Observations(id, slot) == 0 {
				continue
			}
			mean := w.con.MeanSpeed(id, slot)
			// Note: stored minima carry the Near safety factor (0.5x), so
			// compare against twice the stored minimum.
			lo := w.con.MinSpeed(id, slot) * 2
			hi := w.con.MaxSpeed(id, slot)
			if mean < lo-0.01 || mean > hi+0.01 {
				t.Fatalf("mean %v outside [%v, %v] at seg=%d slot=%d", mean, lo, hi, seg, slot)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no observed (segment, slot) pairs checked")
	}
}
