// Package router answers route queries (thesis §5.2) with time-dependent
// travel times derived from the trajectory data: each segment's traversal
// time depends on the mean observed speed in the Δt slot the mover enters
// it, so the same origin-destination pair gets different routes and ETAs
// at 03:00 and 18:00. A static free-flow router is included for the
// comparison the thesis's introduction draws.
package router

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"streach/internal/conindex"
	"streach/internal/roadnet"
)

// ctxCheckInterval is how many Dijkstra pops the route search runs
// between context checks.
const ctxCheckInterval = 256

// Router plans routes over a network with per-slot speed statistics.
type Router struct {
	net *roadnet.Network
	con *conindex.Index
}

// New wires a router over the network and the Con-Index speed statistics.
func New(net *roadnet.Network, con *conindex.Index) *Router {
	return &Router{net: net, con: con}
}

// Route is a planned journey.
type Route struct {
	// Path is the segment sequence, origin and destination inclusive.
	Path []roadnet.SegmentID
	// TravelTimeSec is the predicted door-to-door travel time.
	TravelTimeSec float64
	// DistanceMeters is the path length.
	DistanceMeters float64
}

// TimeDependent plans the fastest route from src to dst departing at
// departSec seconds after midnight, using mean observed speeds per slot.
// The traversal speed of each segment is taken from the slot in which it
// is entered (the usual FIFO approximation). The search checks ctx every
// ctxCheckInterval pops and returns its error on cancellation.
func (r *Router) TimeDependent(ctx context.Context, src, dst roadnet.SegmentID, departSec float64) (*Route, error) {
	return r.route(ctx, src, dst, departSec, func(seg roadnet.SegmentID, atSec float64) float64 {
		slot := int(atSec) / r.con.SlotSeconds()
		return r.con.MeanSpeed(seg, slot)
	})
}

// FreeFlow plans the static route at per-class free-flow speeds: the
// traditional time-invariant answer.
func (r *Router) FreeFlow(ctx context.Context, src, dst roadnet.SegmentID) (*Route, error) {
	return r.route(ctx, src, dst, 0, func(seg roadnet.SegmentID, _ float64) float64 {
		return r.net.Segment(seg).Class.FreeFlowSpeed()
	})
}

type routeItem struct {
	seg roadnet.SegmentID
	at  float64 // arrival time at the segment's entry, seconds of day
}

type routePQ []routeItem

func (q routePQ) Len() int            { return len(q) }
func (q routePQ) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q routePQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *routePQ) Push(x interface{}) { *q = append(*q, x.(routeItem)) }
func (q *routePQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func (r *Router) route(ctx context.Context, src, dst roadnet.SegmentID, departSec float64, speedAt func(roadnet.SegmentID, float64) float64) (*Route, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := r.net.NumSegments()
	if src < 0 || int(src) >= n || dst < 0 || int(dst) >= n {
		return nil, fmt.Errorf("router: segment out of range (src=%d dst=%d, %d segments)", src, dst, n)
	}
	if departSec < 0 || departSec >= 86400 {
		return nil, fmt.Errorf("router: departure %v is not a time of day", departSec)
	}
	arrive := map[roadnet.SegmentID]float64{src: departSec}
	prev := map[roadnet.SegmentID]roadnet.SegmentID{}
	pq := &routePQ{{src, departSec}}
	for pops := 0; pq.Len() > 0; pops++ {
		if pops%ctxCheckInterval == 0 && pops > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		it := heap.Pop(pq).(routeItem)
		if a, ok := arrive[it.seg]; !ok || it.at > a {
			continue
		}
		sp := speedAt(it.seg, it.at)
		if sp <= 0 {
			continue
		}
		exit := it.at + r.net.Segment(it.seg).Length/sp
		if it.seg == dst {
			path := reconstruct(prev, dst)
			var dist float64
			for _, s := range path {
				dist += r.net.Segment(s).Length
			}
			return &Route{Path: path, TravelTimeSec: exit - departSec, DistanceMeters: dist}, nil
		}
		succ := r.net.Outgoing(it.seg)
		rev := r.net.Segment(it.seg).Reverse
		for _, next := range succ {
			if next == rev && len(succ) > 1 {
				continue
			}
			if a, ok := arrive[next]; !ok || exit < a {
				arrive[next] = exit
				prev[next] = it.seg
				heap.Push(pq, routeItem{next, exit})
			}
		}
	}
	return nil, fmt.Errorf("router: no route from %d to %d", src, dst)
}

func reconstruct(prev map[roadnet.SegmentID]roadnet.SegmentID, dst roadnet.SegmentID) []roadnet.SegmentID {
	var rev []roadnet.SegmentID
	for at := dst; ; {
		rev = append(rev, at)
		p, ok := prev[at]
		if !ok {
			break
		}
		at = p
	}
	out := make([]roadnet.SegmentID, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// ETAProfile returns the time-dependent travel time for the same
// origin-destination pair at each hour of the day — the "ETA by time of
// day" curve applications plot.
func (r *Router) ETAProfile(ctx context.Context, src, dst roadnet.SegmentID) ([24]float64, error) {
	var out [24]float64
	for h := 0; h < 24; h++ {
		route, err := r.TimeDependent(ctx, src, dst, float64(h)*3600)
		if err != nil {
			return out, err
		}
		out[h] = route.TravelTimeSec
	}
	return out, nil
}

// validatePath reports whether the path is a connected forward walk.
// Exported for tests via Validate.
func (r *Router) validatePath(path []roadnet.SegmentID) error {
	for i := 1; i < len(path); i++ {
		connected := false
		for _, s := range r.net.Outgoing(path[i-1]) {
			if s == path[i] {
				connected = true
				break
			}
		}
		if !connected {
			return fmt.Errorf("router: path hop %d -> %d not adjacent", path[i-1], path[i])
		}
	}
	return nil
}

// Validate checks that a route's path is connected and its distance
// matches the summed segment lengths.
func (r *Router) Validate(route *Route) error {
	if len(route.Path) == 0 {
		return fmt.Errorf("router: empty path")
	}
	if err := r.validatePath(route.Path); err != nil {
		return err
	}
	var dist float64
	for _, s := range route.Path {
		dist += r.net.Segment(s).Length
	}
	if math.Abs(dist-route.DistanceMeters) > 1 {
		return fmt.Errorf("router: distance %v does not match path length %v", route.DistanceMeters, dist)
	}
	return nil
}
