package conindex

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// cancelAfter reports Canceled once Err has been polled n times — a
// deterministic mid-Dijkstra cancellation with no timing dependence.
type cancelAfter struct {
	context.Context
	remaining atomic.Int64
}

func cancelAfterN(n int) *cancelAfter {
	c := &cancelAfter{Context: context.Background()}
	c.remaining.Store(int64(n))
	return c
}

func (c *cancelAfter) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestRowMaterialisationCancellation: a cancelled context must abort a
// cold row's Dijkstra without poisoning the key — the next caller with a
// live context materialises the row normally.
func TestRowMaterialisationCancellation(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := idx.FarRowCtx(cancelled, 7, 130); !errors.Is(err, context.Canceled) {
		t.Fatalf("FarRowCtx with cancelled ctx = %v, want context.Canceled", err)
	}
	if m := idx.Stats().Materialised; m != 0 {
		t.Fatalf("aborted materialisation stored %d rows", m)
	}

	// Cancel mid-expansion: the first Err poll passes, a later one (at a
	// 32-pop checkpoint) fires. Either the expansion is small enough to
	// finish (fine) or it must abort with Canceled — never anything else.
	if _, err := idx.NearRowCtx(cancelAfterN(1), 9, 130); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-expansion cancel returned %v", err)
	}

	// A live context must now succeed and actually materialise.
	row, err := idx.FarRowCtx(context.Background(), 7, 130)
	if err != nil {
		t.Fatal(err)
	}
	if row.Len() == 0 {
		t.Fatal("materialised Far row is empty")
	}
	if m := idx.Stats().Materialised; m == 0 {
		t.Fatal("retry after cancellation did not materialise")
	}
}

// TestPrecomputeSlotsCancellation: a cancelled warm stops early with the
// context's error and leaves the index usable.
func TestPrecomputeSlotsCancellation(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := idx.PrecomputeSlotsCtx(cancelled, 130, 135, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("PrecomputeSlotsCtx with cancelled ctx = %v, want context.Canceled", err)
	}

	// A budgeted context lets some rows through, then stops: fewer rows
	// than a full warm, no error besides Canceled.
	partial := build(t, n, testDataset(t, n))
	err := partial.PrecomputeSlotsCtx(cancelAfterN(50), 130, 135, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("budgeted warm = %v, want context.Canceled", err)
	}
	full := build(t, n, testDataset(t, n))
	if err := full.PrecomputeSlotsCtx(context.Background(), 130, 135, 4); err != nil {
		t.Fatal(err)
	}
	if partial.CachedLists() >= full.CachedLists() {
		t.Fatalf("cancelled warm cached %d rows, full warm %d — cancellation did not stop early",
			partial.CachedLists(), full.CachedLists())
	}
}
