package conindex

import (
	"context"

	"streach/internal/roadnet"
)

// Pin is a batch-scoped view over the four adjacency tables: every row the
// pin fetches is memoised locally, so repeated lookups of the same
// (segment, slot) key — MQMB's overlap rule re-reading the row of a
// candidate's nearest region segment, or a shared batch plan touching the
// same working set for several queries — are served from a plain map owned
// by one goroutine instead of taking the table's RWMutex again.
//
// A Pin holds plain references to the immutable shared rows; it pins
// nothing against eviction (the tables never evict) and is NOT safe for
// concurrent use. Create one per query plan and drop it when the plan is
// done.
type Pin struct {
	x                   *Index
	near, far           map[int64]Row
	nearRev, farRev     map[int64]Row
	rowHits, rowFetched int64
}

// NewPin returns an empty pin over the index.
func (x *Index) NewPin() *Pin {
	return &Pin{x: x}
}

// PinStats reports the pin's activity: hits were served from the local
// memo without touching the shared tables, fetched went through the index
// (its own hit/materialise accounting applies there).
type PinStats struct {
	Hits, Fetched int64
}

// Stats snapshots the pin counters.
func (p *Pin) Stats() PinStats {
	return PinStats{Hits: p.rowHits, Fetched: p.rowFetched}
}

// row resolves one key through the local memo, falling back to fetch.
func (p *Pin) row(memo *map[int64]Row, key int64, fetch func() (Row, error)) (Row, error) {
	if r, ok := (*memo)[key]; ok {
		p.rowHits++
		return r, nil
	}
	r, err := fetch()
	if err != nil {
		return Row{}, err
	}
	if *memo == nil {
		*memo = map[int64]Row{}
	}
	(*memo)[key] = r
	p.rowFetched++
	return r, nil
}

// FarRow is FarRowCtx through the pin's memo.
func (p *Pin) FarRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % p.x.numSlots) + p.x.numSlots) % p.x.numSlots
	return p.row(&p.far, cacheKey(seg, slot), func() (Row, error) {
		return p.x.FarRowCtx(ctx, seg, slot)
	})
}

// NearRow is NearRowCtx through the pin's memo.
func (p *Pin) NearRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % p.x.numSlots) + p.x.numSlots) % p.x.numSlots
	return p.row(&p.near, cacheKey(seg, slot), func() (Row, error) {
		return p.x.NearRowCtx(ctx, seg, slot)
	})
}

// FarReverseRow is FarReverseRowCtx through the pin's memo.
func (p *Pin) FarReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % p.x.numSlots) + p.x.numSlots) % p.x.numSlots
	return p.row(&p.farRev, cacheKey(seg, slot), func() (Row, error) {
		return p.x.FarReverseRowCtx(ctx, seg, slot)
	})
}

// NearReverseRow is NearReverseRowCtx through the pin's memo.
func (p *Pin) NearReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % p.x.numSlots) + p.x.numSlots) % p.x.numSlots
	return p.row(&p.nearRev, cacheKey(seg, slot), func() (Row, error) {
		return p.x.NearReverseRowCtx(ctx, seg, slot)
	})
}
