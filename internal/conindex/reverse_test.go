package conindex

import (
	"testing"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

func TestReverseNearSubsetOfFar(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	slot := 10 * 3600 / 300
	for seg := 0; seg < n.NumSegments(); seg += 9 {
		id := roadnet.SegmentID(seg)
		far := map[roadnet.SegmentID]bool{}
		for _, s := range idx.FarReverse(id, slot) {
			far[s] = true
		}
		for _, s := range idx.NearReverse(id, slot) {
			if !far[s] {
				t.Fatalf("NearReverse(%d) contains %d missing from FarReverse", seg, s)
			}
		}
	}
}

func TestReverseFarIncludesSelfAndPredecessors(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	slot := 10 * 3600 / 300
	id := roadnet.SegmentID(5)
	set := map[roadnet.SegmentID]bool{}
	for _, s := range idx.FarReverse(id, slot) {
		set[s] = true
	}
	if !set[id] {
		t.Fatal("FarReverse should include the destination itself")
	}
	pred := n.Incoming(id)
	rev := n.Segment(id).Reverse
	for _, p := range pred {
		if p == rev && len(pred) > 1 {
			continue
		}
		if !set[p] {
			t.Fatalf("FarReverse should include immediate predecessor %d", p)
		}
	}
}

func TestReverseMirrorsForwardOnLine(t *testing.T) {
	// On a one-way chain A->B->C, Far(A) goes forward while
	// FarReverse(C) goes backward; the two sets, as journeys, mirror.
	b := roadnet.NewBuilder()
	p := geo.Point{Lat: 22.5, Lng: 114.0}
	prev := p
	for i := 0; i < 3; i++ {
		next := geo.Offset(p, float64(i+1)*500, 0)
		if _, err := b.AddRoad(geo.Polyline{prev, next}, roadnet.Primary, true); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	n := b.Build()
	ds := &traj.Dataset{Days: 1}
	idx, err := Build(n, ds, Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	fwd := idx.Far(0, 0)        // from the head of the chain
	rev := idx.FarReverse(2, 0) // into the tail of the chain
	if len(fwd) != 3 || len(rev) != 3 {
		t.Fatalf("expected full chain both ways, got fwd=%v rev=%v", fwd, rev)
	}
}

func TestReverseCached(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	a := idx.FarReverse(3, 50)
	b := idx.FarReverse(3, 50)
	if len(a) > 0 && &a[0] != &b[0] {
		t.Fatal("repeated FarReverse should return the memoised slice")
	}
	c := idx.NearReverse(3, 50)
	d := idx.NearReverse(3, 50)
	if len(c) > 0 && &c[0] != &d[0] {
		t.Fatal("repeated NearReverse should return the memoised slice")
	}
}

func TestReverseSlotWraps(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	a := idx.FarReverse(0, 5)
	b := idx.FarReverse(0, 5+idx.NumSlots())
	if len(a) != len(b) {
		t.Fatal("reverse slot index should wrap modulo a day")
	}
}
