package conindex

import (
	"bytes"
	"testing"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

func testNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
		Rows:          5,
		Cols:          5,
		SpacingMeters: 700,
		LocalFraction: 0.3,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testDataset(t *testing.T, n *roadnet.Network) *traj.Dataset {
	t.Helper()
	ds, err := traj.Simulate(n, traj.SimConfig{
		Taxis: 15, Days: 4, Profile: traj.DefaultSpeedProfile(), Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func build(t *testing.T, n *roadnet.Network, ds *traj.Dataset) *Index {
	t.Helper()
	idx, err := Build(n, ds, Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBuildValidations(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	if _, err := Build(roadnet.NewBuilder().Build(), ds, Config{}); err == nil {
		t.Fatal("empty network should error")
	}
	if _, err := Build(n, ds, Config{SlotSeconds: 7}); err == nil {
		t.Fatal("bad slot seconds should error")
	}
}

func TestSpeedExtremesOrdered(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	for slot := 0; slot < idx.NumSlots(); slot += 13 {
		for seg := 0; seg < n.NumSegments(); seg++ {
			lo := idx.MinSpeed(roadnet.SegmentID(seg), slot)
			hi := idx.MaxSpeed(roadnet.SegmentID(seg), slot)
			if lo <= 0 || hi <= 0 {
				t.Fatalf("speeds must be positive after fallback: seg=%d slot=%d lo=%v hi=%v", seg, slot, lo, hi)
			}
			if lo > hi {
				t.Fatalf("min speed exceeds max: seg=%d slot=%d lo=%v hi=%v", seg, slot, lo, hi)
			}
		}
	}
}

func TestNearSubsetOfFar(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	slot := 10 * 3600 / 300
	for seg := 0; seg < n.NumSegments(); seg += 7 {
		id := roadnet.SegmentID(seg)
		far := map[roadnet.SegmentID]bool{}
		for _, s := range idx.Far(id, slot) {
			far[s] = true
		}
		for _, s := range idx.Near(id, slot) {
			if !far[s] {
				t.Fatalf("Near(%d) contains %d missing from Far", seg, s)
			}
		}
	}
}

func TestFarIncludesSelfAndSuccessors(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	slot := 10 * 3600 / 300
	id := roadnet.SegmentID(0)
	far := idx.Far(id, slot)
	set := map[roadnet.SegmentID]bool{}
	for _, s := range far {
		set[s] = true
	}
	if !set[id] {
		t.Fatal("Far should include the start segment itself")
	}
	// At >= 0.2x free-flow fallback and 300 s budget, immediate successors
	// (at most ~1 km away) must be enterable.
	for _, s := range n.Outgoing(id) {
		if s == n.Segment(id).Reverse {
			continue
		}
		if !set[s] {
			t.Fatalf("Far should include immediate successor %d", s)
		}
	}
}

func TestFarGrowsWithSpeed(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := build(t, n, ds)
	// Rush hour (07:30) vs free night (03:00): observed max speeds are
	// lower in the rush slot, so the Far list should not be larger.
	rushSlot := int(7.5 * 3600 / 300)
	nightSlot := 3 * 3600 / 300
	larger, smaller := 0, 0
	for seg := 0; seg < n.NumSegments(); seg += 5 {
		id := roadnet.SegmentID(seg)
		r := len(idx.Far(id, rushSlot))
		f := len(idx.Far(id, nightSlot))
		if f > r {
			larger++
		}
		if f < r {
			smaller++
		}
	}
	if larger <= smaller {
		t.Fatalf("night Far lists should generally exceed rush-hour lists (larger=%d smaller=%d)", larger, smaller)
	}
}

func TestListsAreCached(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	if idx.CachedLists() != 0 {
		t.Fatal("fresh index should have no cached lists")
	}
	a := idx.Far(3, 100)
	if idx.CachedLists() != 1 {
		t.Fatalf("CachedLists = %d, want 1", idx.CachedLists())
	}
	b := idx.Far(3, 100)
	if &a[0] != &b[0] {
		t.Fatal("repeated Far should return the memoised slice")
	}
	idx.Near(3, 100)
	if idx.CachedLists() != 2 {
		t.Fatalf("CachedLists = %d, want 2", idx.CachedLists())
	}
}

func TestSlotWrapsAround(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	a := idx.Far(0, 5)
	b := idx.Far(0, 5+idx.NumSlots())
	if len(a) != len(b) {
		t.Fatal("slot index should wrap modulo a day")
	}
	c := idx.Far(0, -1)
	d := idx.Far(0, idx.NumSlots()-1)
	if len(c) != len(d) {
		t.Fatal("negative slot should wrap to end of day")
	}
}

func TestNearRequiresFullTraversal(t *testing.T) {
	// Hand-built line: 3 segments of 1 km, min speed fallback makes
	// traversal 1000 / (0.2 * 13.9) ~= 360 s > 300 s budget, so Near of a
	// never-observed network is just... empty (cannot even finish the
	// start segment), while Far (enter-only, fallback 13.9 m/s) reaches
	// several segments.
	b := roadnet.NewBuilder()
	p := geo.Point{Lat: 22.5, Lng: 114.0}
	prev := p
	for i := 0; i < 3; i++ {
		next := geo.Offset(p, float64(i+1)*1000, 0)
		if _, err := b.AddRoad(geo.Polyline{prev, next}, roadnet.Primary, false); err != nil {
			t.Fatal(err)
		}
		prev = next
	}
	n := b.Build()
	ds := &traj.Dataset{Days: 1}
	idx, err := Build(n, ds, Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	near := idx.Near(0, 0)
	if len(near) != 0 {
		t.Fatalf("Near at fallback min speed should be empty, got %v", near)
	}
	far := idx.Far(0, 0)
	if len(far) < 3 {
		t.Fatalf("Far at free-flow should span the line, got %v", far)
	}
}

func TestPrecomputeAllSmall(t *testing.T) {
	b := roadnet.NewBuilder()
	p := geo.Point{Lat: 22.5, Lng: 114.0}
	if _, err := b.AddRoad(geo.Polyline{p, geo.Offset(p, 500, 0)}, roadnet.Primary, false); err != nil {
		t.Fatal(err)
	}
	n := b.Build()
	ds := &traj.Dataset{Days: 1}
	idx, err := Build(n, ds, Config{SlotSeconds: 3600})
	if err != nil {
		t.Fatal(err)
	}
	count := idx.PrecomputeAll()
	want := 24 * n.NumSegments() * 2
	if count != want {
		t.Fatalf("PrecomputeAll = %d, want %d", count, want)
	}
	if idx.CachedLists() != want {
		t.Fatalf("CachedLists = %d, want %d", idx.CachedLists(), want)
	}
}

func TestObservedSpeedsBeatFallbacks(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := build(t, n, ds)
	// Find a (seg, slot) with known traffic and verify the stats bracket
	// the observed speed.
	mt := &ds.Matched[0]
	v := mt.Visits[len(mt.Visits)/2]
	slot := int(v.EnterSec()) / 300
	lo := idx.MinSpeed(v.Segment, slot)
	hi := idx.MaxSpeed(v.Segment, slot)
	// The Near safety factor halves the stored minimum, so check against
	// the doubled bound.
	if float64(v.Speed) < lo-1e-3 || float64(v.Speed) > hi+1e-3 {
		t.Fatalf("observed speed %v outside [%v, %v]", v.Speed, lo, hi)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	orig := build(t, n, ds)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(n, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SlotSeconds() != orig.SlotSeconds() || got.NumSlots() != orig.NumSlots() {
		t.Fatalf("meta mismatch after load")
	}
	// Spot-check statistics and derived lists.
	for slot := 0; slot < got.NumSlots(); slot += 37 {
		for seg := 0; seg < n.NumSegments(); seg += 19 {
			id := roadnet.SegmentID(seg)
			if got.MinSpeed(id, slot) != orig.MinSpeed(id, slot) ||
				got.MaxSpeed(id, slot) != orig.MaxSpeed(id, slot) ||
				got.MeanSpeed(id, slot) != orig.MeanSpeed(id, slot) ||
				got.Observations(id, slot) != orig.Observations(id, slot) {
				t.Fatalf("stats differ at seg=%d slot=%d", seg, slot)
			}
			a, b := orig.Far(id, slot), got.Far(id, slot)
			if len(a) != len(b) {
				t.Fatalf("Far list differs at seg=%d slot=%d", seg, slot)
			}
		}
	}
	// Reverse tables must also work on the loaded index.
	if len(got.FarReverse(0, 0)) == 0 {
		t.Fatal("loaded index reverse tables broken")
	}
}

func TestLoadRejectsCorrupt(t *testing.T) {
	n := testNetwork(t)
	if _, err := Load(n, bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic should error")
	}
	orig := build(t, n, testDataset(t, n))
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(n, bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated input should error")
	}
	// Wrong network size.
	other, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin: geo.Point{Lat: 22.5, Lng: 114.0}, Rows: 3, Cols: 3, SpacingMeters: 500, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(other, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("network mismatch should error")
	}
}
