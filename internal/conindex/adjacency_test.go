package conindex

import (
	"bytes"
	"context"
	"reflect"
	"sync"
	"testing"

	"streach/internal/roadnet"
)

// mustList unwraps a (list, error) expansion result in table literals;
// background-context expansions never fail.
func mustList(ids []roadnet.SegmentID, err error) []roadnet.SegmentID {
	if err != nil {
		panic(err)
	}
	return ids
}

// materialise a representative mix of rows across all four tables.
func warmSome(idx *Index) {
	slots := []int{0, 90, 132}
	for _, slot := range slots {
		for seg := 0; seg < idx.net.NumSegments(); seg += 3 {
			id := roadnet.SegmentID(seg)
			idx.Far(id, slot)
			idx.Near(id, slot)
			if seg%6 == 0 {
				idx.FarReverse(id, slot)
				idx.NearReverse(id, slot)
			}
		}
	}
}

func TestAdjacencySaveLoadRoundTrip(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	orig := build(t, n, ds)
	warmSome(orig)

	var buf bytes.Buffer
	if err := orig.SaveAdjacency(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh index over the same stats, adjacency restored from the blob.
	var stats bytes.Buffer
	if err := orig.Save(&stats); err != nil {
		t.Fatal(err)
	}
	got, err := Load(n, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.LoadAdjacency(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Stats().Loaded == 0 {
		t.Fatal("LoadAdjacency should count loaded rows")
	}
	if got.CachedLists() != orig.CachedLists() {
		t.Fatalf("restored %d forward rows, want %d", got.CachedLists(), orig.CachedLists())
	}

	// Every restored list must be identical to the original — and serving
	// them must not run any new expansion.
	m0 := got.Stats().Materialised
	for _, slot := range []int{0, 90, 132} {
		for seg := 0; seg < n.NumSegments(); seg += 3 {
			id := roadnet.SegmentID(seg)
			if !reflect.DeepEqual(orig.Far(id, slot), got.Far(id, slot)) {
				t.Fatalf("Far mismatch at seg=%d slot=%d", seg, slot)
			}
			if !reflect.DeepEqual(orig.Near(id, slot), got.Near(id, slot)) {
				t.Fatalf("Near mismatch at seg=%d slot=%d", seg, slot)
			}
			if seg%6 == 0 {
				if !reflect.DeepEqual(orig.FarReverse(id, slot), got.FarReverse(id, slot)) {
					t.Fatalf("FarReverse mismatch at seg=%d slot=%d", seg, slot)
				}
				if !reflect.DeepEqual(orig.NearReverse(id, slot), got.NearReverse(id, slot)) {
					t.Fatalf("NearReverse mismatch at seg=%d slot=%d", seg, slot)
				}
			}
		}
	}
	if m := got.Stats().Materialised - m0; m != 0 {
		t.Fatalf("restored rows should serve without expansions, ran %d", m)
	}
}

func TestAdjacencyRejectsMismatch(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	warmSome(idx)
	var buf bytes.Buffer
	if err := idx.SaveAdjacency(&buf); err != nil {
		t.Fatal(err)
	}

	if err := idx.LoadAdjacency(bytes.NewReader([]byte("XXXX0000"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if err := idx.LoadAdjacency(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("truncated blob should error")
	}
	// Wrong Δt.
	other, err := Build(n, testDataset(t, n), Config{SlotSeconds: 600})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadAdjacency(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("slot-seconds mismatch should error")
	}
}

// TestRowMatchesExpansion asserts the adaptive row form expands to
// exactly the Dijkstra list, per (segment, slot), for all four tables —
// the bitset path and the sparse path must be lossless.
func TestRowMatchesExpansion(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	sawSparse, sawDense := false, false
	for _, slot := range []int{0, 50, 132, 270} {
		for seg := 0; seg < n.NumSegments(); seg += 2 {
			id := roadnet.SegmentID(seg)
			for _, tc := range []struct {
				name string
				row  Row
				want []roadnet.SegmentID
			}{
				{"far", idx.FarRow(id, slot), mustList(idx.expand(context.Background(), id, slot, true))},
				{"near", idx.NearRow(id, slot), mustList(idx.expand(context.Background(), id, slot, false))},
				{"farRev", idx.FarReverseRow(id, slot), mustList(idx.expandReverse(context.Background(), id, slot, true))},
				{"nearRev", idx.NearReverseRow(id, slot), mustList(idx.expandReverse(context.Background(), id, slot, false))},
			} {
				if tc.row.bits != nil {
					sawDense = true
				} else if len(tc.row.ids) > 0 {
					sawSparse = true
				}
				if tc.row.Len() != len(tc.want) {
					t.Fatalf("%s seg=%d slot=%d: row has %d members, expansion %d",
						tc.name, seg, slot, tc.row.Len(), len(tc.want))
				}
				for _, s := range tc.want {
					if !tc.row.Has(s) {
						t.Fatalf("%s seg=%d slot=%d: row missing %d", tc.name, seg, slot, s)
					}
				}
				// AppendTo must yield the sorted expansion set.
				got := tc.row.AppendTo(nil)
				for i := 1; i < len(got); i++ {
					if got[i-1] >= got[i] {
						t.Fatalf("%s seg=%d slot=%d: AppendTo not strictly ascending", tc.name, seg, slot)
					}
				}
			}
		}
	}
	if !sawSparse || !sawDense {
		t.Fatalf("test should exercise both encodings (sparse=%v dense=%v)", sawSparse, sawDense)
	}
}

// TestSingleflightColdMiss asserts concurrent cold misses on one key run
// exactly one expansion.
func TestSingleflightColdMiss(t *testing.T) {
	n := testNetwork(t)
	idx := build(t, n, testDataset(t, n))
	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	lists := make([][]roadnet.SegmentID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			lists[g] = idx.Far(7, 130)
		}(g)
	}
	close(start)
	wg.Wait()
	if m := idx.Stats().Materialised; m != 1 {
		t.Fatalf("16 concurrent cold misses materialised %d rows, want 1", m)
	}
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(lists[0], lists[g]) {
			t.Fatalf("goroutine %d saw a different list", g)
		}
	}
}

func TestParallelPrecomputeMatchesSerial(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	serial := build(t, n, ds)
	serial.PrecomputeSlotsWorkers(130, 135, 1)
	parallel := build(t, n, ds)
	parallel.PrecomputeSlotsWorkers(130, 135, 8)
	if serial.CachedLists() != parallel.CachedLists() {
		t.Fatalf("serial warmed %d rows, parallel %d", serial.CachedLists(), parallel.CachedLists())
	}
	for slot := 130; slot <= 135; slot++ {
		for seg := 0; seg < n.NumSegments(); seg += 5 {
			id := roadnet.SegmentID(seg)
			if !reflect.DeepEqual(serial.Far(id, slot), parallel.Far(id, slot)) {
				t.Fatalf("Far mismatch at seg=%d slot=%d", seg, slot)
			}
			if !reflect.DeepEqual(serial.Near(id, slot), parallel.Near(id, slot)) {
				t.Fatalf("Near mismatch at seg=%d slot=%d", seg, slot)
			}
		}
	}
}
