package conindex

import (
	"sync"

	"streach/internal/roadnet"
)

// table is one of the four adjacency tables (forward/reverse × Near/Far):
// materialised rows keyed by (slot, segment), plus a decoded-slice memo
// for the legacy list API and a singleflight registry so concurrent cold
// misses on the same key run one Dijkstra instead of racing to compute
// identical lists.
type table struct {
	mu     sync.RWMutex
	rows   map[int64]Row
	lists  map[int64][]roadnet.SegmentID
	flight map[int64]*flightCall
	// bySlot indexes the materialised row keys by slot. A live speed
	// observation invalidates rows at exactly one slot; without this
	// index every invalidation would scan the whole rows map under the
	// write lock, which at ingest rates starves the read path.
	bySlot map[int]map[int64]struct{}
}

// flightCall is one in-progress row materialisation. row and err are
// written before done is closed; waiters read them only after <-done.
type flightCall struct {
	done chan struct{}
	row  Row
	err  error
}

func newTable() table {
	return table{
		rows:   map[int64]Row{},
		lists:  map[int64][]roadnet.SegmentID{},
		bySlot: map[int]map[int64]struct{}{},
	}
}

// index records key in the by-slot index. Caller holds t.mu.
func (t *table) index(key int64) {
	slot := int(key >> 32)
	m := t.bySlot[slot]
	if m == nil {
		m = map[int64]struct{}{}
		t.bySlot[slot] = m
	}
	m[key] = struct{}{}
}

// row returns the cached row for key, materialising it with compute on a
// cold miss. Concurrent cold misses on the same key block on a single
// computation (singleflight): exactly one caller runs the expansion, the
// rest wait for its result. When the computing caller aborts (its context
// was cancelled mid-Dijkstra), nothing is stored and each waiter retries
// with its own compute — one caller's cancellation never poisons another
// caller's lookup.
func (t *table) row(x *Index, key int64, compute func() ([]roadnet.SegmentID, error)) (Row, error) {
	for {
		t.mu.RLock()
		r, ok := t.rows[key]
		t.mu.RUnlock()
		if ok {
			x.stats.hits.Add(1)
			return r, nil
		}
		t.mu.Lock()
		if r, ok := t.rows[key]; ok {
			t.mu.Unlock()
			x.stats.hits.Add(1)
			return r, nil
		}
		if fc, ok := t.flight[key]; ok {
			t.mu.Unlock()
			<-fc.done
			if fc.err != nil {
				continue // the computing caller aborted: retry ourselves
			}
			x.stats.hits.Add(1)
			return fc.row, nil
		}
		fc := &flightCall{done: make(chan struct{})}
		if t.flight == nil {
			t.flight = map[int64]*flightCall{}
		}
		t.flight[key] = fc
		t.mu.Unlock()

		// Record the slot's invalidation generation before the expansion
		// reads any speed: if an ObserveSpeed lands on this slot
		// mid-compute, the row below was built from pre-update speeds and
		// must not be cached (the invalidation scan may already have run
		// and missed it). Waiters still get the computed row — their
		// query merely raced the ingest. The guard is per slot because an
		// expansion only reads its own slot's speeds; observations on
		// other slots cannot stale this row.
		slot := int(key >> 32)
		gen := x.slotGen[slot].Load()

		// Deregister and release waiters even if compute panics — a
		// poisoned flight entry would block every later lookup of this key
		// forever. On panic or error the row stays unmaterialised and
		// waiters recompute it themselves.
		stored := false
		func() {
			defer func() {
				t.mu.Lock()
				if stored && x.slotGen[slot].Load() == gen {
					t.rows[key] = fc.row
					t.index(key)
				} else if !stored && fc.err == nil {
					fc.err = errAborted
				}
				delete(t.flight, key)
				t.mu.Unlock()
				close(fc.done)
			}()
			var ids []roadnet.SegmentID
			ids, fc.err = compute()
			if fc.err == nil {
				fc.row = makeRow(ids, x.net.NumSegments())
				x.stats.materialised.Add(1)
				stored = true
			}
		}()
		return fc.row, fc.err
	}
}

// list returns the row expanded to the shared sorted-slice form, memoised
// per key (only the legacy list API pays for this; the bounding phase
// works on rows directly).
func (t *table) list(x *Index, key int64, compute func() ([]roadnet.SegmentID, error)) []roadnet.SegmentID {
	t.mu.RLock()
	l, ok := t.lists[key]
	t.mu.RUnlock()
	if ok {
		return l
	}
	r, err := t.row(x, key, compute)
	if err != nil {
		return nil
	}
	l = r.AppendTo(make([]roadnet.SegmentID, 0, r.Len()))
	t.mu.Lock()
	if prev, ok := t.lists[key]; ok {
		l = prev // another goroutine decoded first; share its slice
	} else {
		t.lists[key] = l
	}
	t.mu.Unlock()
	return l
}

// size returns how many rows are materialised.
func (t *table) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// invalidateSlot drops every materialised row at slot that the probe
// set can have influenced: the rows keyed by selves (a row always
// contains its own segment, but may be empty when nothing is reachable
// — the one case membership cannot witness), plus any row containing a
// probe segment. Decoded-slice memos go with their rows. Only the
// touched slot's rows are visited (bySlot), so an observation on a slot
// no query has materialised costs one map lookup.
func (t *table) invalidateSlot(slot int, selves []int64, probes []roadnet.SegmentID) {
	t.mu.Lock()
	keys := t.bySlot[slot]
	for key := range keys {
		r := t.rows[key]
		drop := false
		for i := 0; !drop && i < len(selves); i++ {
			drop = key == selves[i]
		}
		for i := 0; !drop && i < len(probes); i++ {
			drop = r.Has(probes[i])
		}
		if drop {
			delete(t.rows, key)
			delete(t.lists, key)
			delete(keys, key)
		}
	}
	if len(keys) == 0 {
		delete(t.bySlot, slot)
	}
	t.mu.Unlock()
}

// put installs a row directly (the adjacency-blob load path), dropping
// any decoded-slice memo so the list API cannot serve a stale decode of
// a replaced row.
func (t *table) put(key int64, r Row) {
	t.mu.Lock()
	t.rows[key] = r
	t.index(key)
	delete(t.lists, key)
	t.mu.Unlock()
}
