package conindex

import (
	"sync"

	"streach/internal/roadnet"
)

// table is one of the four adjacency tables (forward/reverse × Near/Far):
// materialised rows keyed by (slot, segment), plus a decoded-slice memo
// for the legacy list API and a singleflight registry so concurrent cold
// misses on the same key run one Dijkstra instead of racing to compute
// identical lists.
type table struct {
	mu     sync.RWMutex
	rows   map[int64]Row
	lists  map[int64][]roadnet.SegmentID
	flight map[int64]*flightCall
}

// flightCall is one in-progress row materialisation. row is written
// before done is closed; waiters read it only after <-done.
type flightCall struct {
	done chan struct{}
	row  Row
}

func newTable() table {
	return table{rows: map[int64]Row{}, lists: map[int64][]roadnet.SegmentID{}}
}

// row returns the cached row for key, materialising it with compute on a
// cold miss. Concurrent cold misses on the same key block on a single
// computation (singleflight): exactly one caller runs the expansion, the
// rest wait for its result.
func (t *table) row(x *Index, key int64, compute func() []roadnet.SegmentID) Row {
	t.mu.RLock()
	r, ok := t.rows[key]
	t.mu.RUnlock()
	if ok {
		x.stats.hits.Add(1)
		return r
	}
	t.mu.Lock()
	if r, ok := t.rows[key]; ok {
		t.mu.Unlock()
		x.stats.hits.Add(1)
		return r
	}
	if fc, ok := t.flight[key]; ok {
		t.mu.Unlock()
		<-fc.done
		x.stats.hits.Add(1)
		return fc.row
	}
	fc := &flightCall{done: make(chan struct{})}
	if t.flight == nil {
		t.flight = map[int64]*flightCall{}
	}
	t.flight[key] = fc
	t.mu.Unlock()

	// Deregister and release waiters even if compute panics — a poisoned
	// flight entry would block every later lookup of this key forever.
	// On panic the row stays unmaterialised (zero Row for waiters, which
	// is a valid empty row) and the next cold miss recomputes it.
	stored := false
	defer func() {
		t.mu.Lock()
		if stored {
			t.rows[key] = fc.row
		}
		delete(t.flight, key)
		t.mu.Unlock()
		close(fc.done)
	}()
	fc.row = makeRow(compute(), x.net.NumSegments())
	x.stats.materialised.Add(1)
	stored = true
	return fc.row
}

// list returns the row expanded to the shared sorted-slice form, memoised
// per key (only the legacy list API pays for this; the bounding phase
// works on rows directly).
func (t *table) list(x *Index, key int64, compute func() []roadnet.SegmentID) []roadnet.SegmentID {
	t.mu.RLock()
	l, ok := t.lists[key]
	t.mu.RUnlock()
	if ok {
		return l
	}
	r := t.row(x, key, compute)
	l = r.AppendTo(make([]roadnet.SegmentID, 0, r.Len()))
	t.mu.Lock()
	if prev, ok := t.lists[key]; ok {
		l = prev // another goroutine decoded first; share its slice
	} else {
		t.lists[key] = l
	}
	t.mu.Unlock()
	return l
}

// size returns how many rows are materialised.
func (t *table) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// put installs a row directly (the adjacency-blob load path), dropping
// any decoded-slice memo so the list API cannot serve a stale decode of
// a replaced row.
func (t *table) put(key int64, r Row) {
	t.mu.Lock()
	t.rows[key] = r
	delete(t.lists, key)
	t.mu.Unlock()
}
