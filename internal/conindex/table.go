package conindex

import (
	"sync"

	"streach/internal/roadnet"
)

// table is one of the four adjacency tables (forward/reverse × Near/Far):
// materialised rows keyed by (slot, segment), plus a decoded-slice memo
// for the legacy list API and a singleflight registry so concurrent cold
// misses on the same key run one Dijkstra instead of racing to compute
// identical lists.
type table struct {
	mu     sync.RWMutex
	rows   map[int64]Row
	lists  map[int64][]roadnet.SegmentID
	flight map[int64]*flightCall
}

// flightCall is one in-progress row materialisation. row and err are
// written before done is closed; waiters read them only after <-done.
type flightCall struct {
	done chan struct{}
	row  Row
	err  error
}

func newTable() table {
	return table{rows: map[int64]Row{}, lists: map[int64][]roadnet.SegmentID{}}
}

// row returns the cached row for key, materialising it with compute on a
// cold miss. Concurrent cold misses on the same key block on a single
// computation (singleflight): exactly one caller runs the expansion, the
// rest wait for its result. When the computing caller aborts (its context
// was cancelled mid-Dijkstra), nothing is stored and each waiter retries
// with its own compute — one caller's cancellation never poisons another
// caller's lookup.
func (t *table) row(x *Index, key int64, compute func() ([]roadnet.SegmentID, error)) (Row, error) {
	for {
		t.mu.RLock()
		r, ok := t.rows[key]
		t.mu.RUnlock()
		if ok {
			x.stats.hits.Add(1)
			return r, nil
		}
		t.mu.Lock()
		if r, ok := t.rows[key]; ok {
			t.mu.Unlock()
			x.stats.hits.Add(1)
			return r, nil
		}
		if fc, ok := t.flight[key]; ok {
			t.mu.Unlock()
			<-fc.done
			if fc.err != nil {
				continue // the computing caller aborted: retry ourselves
			}
			x.stats.hits.Add(1)
			return fc.row, nil
		}
		fc := &flightCall{done: make(chan struct{})}
		if t.flight == nil {
			t.flight = map[int64]*flightCall{}
		}
		t.flight[key] = fc
		t.mu.Unlock()

		// Deregister and release waiters even if compute panics — a
		// poisoned flight entry would block every later lookup of this key
		// forever. On panic or error the row stays unmaterialised and
		// waiters recompute it themselves.
		stored := false
		func() {
			defer func() {
				t.mu.Lock()
				if stored {
					t.rows[key] = fc.row
				} else if fc.err == nil {
					fc.err = errAborted
				}
				delete(t.flight, key)
				t.mu.Unlock()
				close(fc.done)
			}()
			var ids []roadnet.SegmentID
			ids, fc.err = compute()
			if fc.err == nil {
				fc.row = makeRow(ids, x.net.NumSegments())
				x.stats.materialised.Add(1)
				stored = true
			}
		}()
		return fc.row, fc.err
	}
}

// list returns the row expanded to the shared sorted-slice form, memoised
// per key (only the legacy list API pays for this; the bounding phase
// works on rows directly).
func (t *table) list(x *Index, key int64, compute func() ([]roadnet.SegmentID, error)) []roadnet.SegmentID {
	t.mu.RLock()
	l, ok := t.lists[key]
	t.mu.RUnlock()
	if ok {
		return l
	}
	r, err := t.row(x, key, compute)
	if err != nil {
		return nil
	}
	l = r.AppendTo(make([]roadnet.SegmentID, 0, r.Len()))
	t.mu.Lock()
	if prev, ok := t.lists[key]; ok {
		l = prev // another goroutine decoded first; share its slice
	} else {
		t.lists[key] = l
	}
	t.mu.Unlock()
	return l
}

// size returns how many rows are materialised.
func (t *table) size() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// put installs a row directly (the adjacency-blob load path), dropping
// any decoded-slice memo so the list API cannot serve a stale decode of
// a replaced row.
func (t *table) put(key int64, r Row) {
	t.mu.Lock()
	t.rows[key] = r
	delete(t.lists, key)
	t.mu.Unlock()
}
