package conindex

import (
	"testing"

	"streach/internal/roadnet"
	"streach/internal/traj"
)

// liveExtras is a deterministic batch of fresh-taxi visits covering
// observed and previously unobserved cells, with one sample below the
// speed floor (must be ignored by both paths).
func liveExtras(n *roadnet.Network, days int) []traj.MatchedTrajectory {
	var out []traj.MatchedTrajectory
	for i := 0; i < 200; i++ {
		enter := int32((i % 280) * 300 * 1000)
		speed := float32(2 + i%14) // i%14 < 1 never happens; floor case added below
		out = append(out, traj.MatchedTrajectory{
			Taxi: traj.TaxiID(500 + i%30),
			Day:  traj.Day(i % days),
			Visits: []traj.Visit{{
				Segment: roadnet.SegmentID((i * 11) % n.NumSegments()),
				EnterMs: enter, ExitMs: enter + 40_000, Speed: speed,
			}},
		})
	}
	// Below the default MinSpeedFloor: both Build and ObserveSpeed must
	// drop it.
	out = append(out, traj.MatchedTrajectory{
		Taxi: 501, Day: 0,
		Visits: []traj.Visit{{Segment: 1, EnterMs: 1000, ExitMs: 2000, Speed: 0.05}},
	})
	return out
}

// TestObserveSpeedMatchesOfflineRebuild pins the fold rule: feeding
// samples through ObserveSpeed leaves the min/max speed bounds (the
// statistics that decide reach/reverse/multi answers) bit-identical to
// an offline Build over the union of base and extra data. Sample counts
// and sums also match here because arrival order is the same.
func TestObserveSpeedMatchesOfflineRebuild(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := build(t, n, ds)

	extras := liveExtras(n, ds.Days)
	gen0 := live.InvalidationGen()
	for i := range extras {
		mt := &extras[i]
		for _, v := range mt.Visits {
			s0 := int(v.EnterMs) / 1000 / live.SlotSeconds()
			s1 := int(v.ExitMs) / 1000 / live.SlotSeconds()
			live.ObserveSpeed(v.Segment, s0, s1, float64(v.Speed))
		}
	}
	if live.InvalidationGen() == gen0 {
		t.Fatal("observations moved no bound — fixture too weak to test invalidation")
	}

	union := &traj.Dataset{
		BaseDate: ds.BaseDate, Days: ds.Days,
		Matched: append(append([]traj.MatchedTrajectory(nil), ds.Matched...),
			extras...),
	}
	offline := build(t, n, union)

	for k := range live.minSpeed {
		if live.minSpeed[k] != offline.minSpeed[k] {
			t.Fatalf("cell %d: live min %#x, offline rebuild %#x", k, live.minSpeed[k], offline.minSpeed[k])
		}
		if live.maxSpeed[k] != offline.maxSpeed[k] {
			t.Fatalf("cell %d: live max %#x, offline rebuild %#x", k, live.maxSpeed[k], offline.maxSpeed[k])
		}
		if live.cntSpeed[k] != offline.cntSpeed[k] {
			t.Fatalf("cell %d: live cnt %d, offline rebuild %d", k, live.cntSpeed[k], offline.cntSpeed[k])
		}
		if live.sumSpeed[k] != offline.sumSpeed[k] {
			t.Fatalf("cell %d: live sum %#x, offline rebuild %#x", k, live.sumSpeed[k], offline.sumSpeed[k])
		}
	}
}

// TestObserveSpeedInvalidatesCachedRows: a materialised adjacency row
// whose bounds move must be dropped and recomputed, not served stale.
func TestObserveSpeedInvalidatesCachedRows(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := build(t, n, ds)

	seg := roadnet.SegmentID(4)
	slot := 130
	// Materialise the forward near row for (seg, slot).
	live.Near(seg, slot)
	if live.Stats().Materialised == 0 {
		t.Fatal("no row materialised")
	}

	// A wildly fast sample on the segment moves its max bound, which can
	// only grow the near set of rows that reach it.
	if !live.ObserveSpeed(seg, slot, slot, 60) {
		t.Fatal("observation did not move a bound")
	}
	// The row must be rebuilt on next access (cache miss), reflecting the
	// new bound rather than returning the cached pre-observation row.
	st1 := live.Stats()
	live.Near(seg, slot)
	if got := live.Stats().Materialised - st1.Materialised; got == 0 {
		t.Fatal("row served from cache after an invalidating observation")
	}
}
