// Package conindex implements the Connection Index (thesis §3.2.2).
//
// For every road segment and Δt time slot, the Con-Index records two
// reachable-segment lists derived from historical trajectory speeds:
//
//   - Far(r, t) — the upper-bound list: every segment that could be
//     *entered* within one Δt when travelling at the maximum speed
//     observed on each road during slot t;
//   - Near(r, t) — the lower-bound list: every segment that can be fully
//     traversed within one Δt even at the minimum observed speed
//     (zero-speed records are dropped, per the thesis).
//
// The lists are produced by the modified incremental network expansion of
// Papadias et al. [21] with per-slot travel-time weights. Lists are
// materialised on demand and memoised, so memory stays proportional to
// the (segment, slot) pairs queries actually touch; PrecomputeAll builds
// every list eagerly for small configurations.
package conindex

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"streach/internal/roadnet"
	"streach/internal/traj"
)

// errAborted marks a singleflight computation that ended without a row or
// a specific error (compute panicked); waiters retry on it.
var errAborted = fmt.Errorf("conindex: row materialisation aborted")

// ctxCheckInterval is how many Dijkstra pops a materialisation runs
// between context checks: small enough that a cancelled query abandons an
// in-flight expansion within microseconds, large enough that the check is
// free on the happy path.
const ctxCheckInterval = 32

// Config controls Con-Index construction.
type Config struct {
	// SlotSeconds is the temporal granularity Δt (default 300).
	SlotSeconds int
	// MinSpeedFloor drops implausibly slow records (m/s, default 0.5);
	// the thesis removes 0-speed records when building Near lists.
	MinSpeedFloor float64
	// FallbackMinFraction sets the assumed minimum speed on segments with
	// no observations, as a fraction of free-flow speed (default 0.2).
	FallbackMinFraction float64
	// FallbackMaxFraction sets the assumed maximum speed on segments with
	// no observations, as a fraction of free-flow speed (default 1.0).
	FallbackMaxFraction float64
	// NearSafetyFactor scales the minimum speeds used for the Near
	// (lower-bound) tables, default 0.5. Observed per-slot minima are
	// sample minima over few observations and overestimate the true
	// worst-case speed; the Near region must only contain segments that
	// are reachable with near-certainty, so it is built at half the
	// observed minimum. Set to 1.0 to use raw minima (ablation).
	NearSafetyFactor float64
}

func (c Config) withDefaults() Config {
	if c.SlotSeconds <= 0 {
		c.SlotSeconds = 300
	}
	if c.MinSpeedFloor <= 0 {
		c.MinSpeedFloor = 0.5
	}
	if c.FallbackMinFraction <= 0 {
		c.FallbackMinFraction = 0.2
	}
	if c.FallbackMaxFraction <= 0 {
		c.FallbackMaxFraction = 1.0
	}
	if c.NearSafetyFactor <= 0 {
		c.NearSafetyFactor = 0.5
	}
	return c
}

// Index is the built Con-Index.
type Index struct {
	net      *roadnet.Network
	slotSec  int
	numSlots int
	// cfg keeps the floor/fallback/safety knobs live so streaming speed
	// observations (ObserveSpeed) can reproduce exactly what an offline
	// Build over the union of the data would have computed.
	cfg Config
	// minSpeed/maxSpeed are indexed [slot*numSegments + segment] and hold
	// math.Float32bits of the speed in m/s. They are read atomically: the
	// ingest path updates them in place while expansions run.
	minSpeed []uint32
	maxSpeed []uint32
	// sumSpeed (Float32bits) / cntSpeed accumulate per-slot means for
	// MeanSpeed (used by the time-dependent router).
	sumSpeed []uint32
	cntSpeed []uint32

	// obsMu serialises ObserveSpeed writers; readers stay lock-free.
	obsMu sync.Mutex
	// invGen is bumped after every speed change that can alter a row; it
	// feeds DataVersionKey so plan caches key on the Con-Index state.
	invGen atomic.Uint64
	// slotGen is invGen broken out per slot. An expansion only reads
	// speeds at its own slot, so a materialisation records slotGen[slot]
	// before its expansion reads any speed and the store step refuses to
	// install the row if that slot's generation moved — a row computed
	// from pre-ingest speeds can never outlive the invalidation that
	// should have killed it (waiters still receive the computed row:
	// their query raced the ingest, which is fine; caching it would not
	// be). Guarding per slot rather than globally matters under live
	// ingest: at thousands of observations/s a global generation moves
	// during nearly every expansion, so no row would ever cache and the
	// bounding phase degrades to one Dijkstra per row per query.
	slotGen []atomic.Uint64

	// The four adjacency tables: materialised Near/Far rows in adaptive
	// sparse-list/bitset encoding (see row.go), with singleflight cold
	// misses (see table.go).
	near, far       table
	nearRev, farRev table

	// stats counts adjacency-row activity across all four tables.
	stats statCounters

	// scratch pools Dijkstra working state so concurrent expansions never
	// serialize on a shared mutex: each expansion checks out its own
	// scratch and returns it when done.
	scratch sync.Pool
}

// statCounters are the live adjacency counters; snapshot with Stats().
type statCounters struct {
	hits         atomic.Int64
	materialised atomic.Int64
	loaded       atomic.Int64
}

// Stats is a snapshot of adjacency-row activity.
type Stats struct {
	// Hits counts row lookups served from the materialised cache
	// (including singleflight waiters that shared another caller's
	// expansion).
	Hits int64
	// Materialised counts rows built by running a Dijkstra expansion.
	Materialised int64
	// Loaded counts rows restored from a persisted adjacency blob.
	Loaded int64
}

// Stats snapshots the adjacency counters.
func (x *Index) Stats() Stats {
	return Stats{
		Hits:         x.stats.hits.Load(),
		Materialised: x.stats.materialised.Load(),
		Loaded:       x.stats.loaded.Load(),
	}
}

// Sub returns s - o, for per-query attribution of shared counters.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:         s.Hits - o.Hits,
		Materialised: s.Materialised - o.Materialised,
		Loaded:       s.Loaded - o.Loaded,
	}
}

// expScratch is the per-expansion Dijkstra working state. The stamp trick
// avoids clearing the n-sized arrays between expansions.
type expScratch struct {
	enterCost  []float64
	enterStamp []int32
	stamp      int32
	pq         entryPQ
}

// getScratch checks out scratch sized for the network.
func (x *Index) getScratch() *expScratch {
	sc, _ := x.scratch.Get().(*expScratch)
	if sc == nil {
		sc = &expScratch{}
	}
	n := x.net.NumSegments()
	if len(sc.enterCost) != n {
		sc.enterCost = make([]float64, n)
		sc.enterStamp = make([]int32, n)
		sc.stamp = 0
	}
	if sc.stamp == 1<<31-1 { // stamp wrap: clear instead of colliding
		sc.enterStamp = make([]int32, n)
		sc.stamp = 0
	}
	sc.stamp++
	sc.pq = sc.pq[:0]
	return sc
}

func (x *Index) putScratch(sc *expScratch) { x.scratch.Put(sc) }

// Build scans the dataset once to derive per-(segment, slot) speed
// extremes, then returns the index. List materialisation happens lazily.
func Build(net *roadnet.Network, ds *traj.Dataset, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if net.NumSegments() == 0 {
		return nil, fmt.Errorf("conindex: empty network")
	}
	if 86400%cfg.SlotSeconds != 0 {
		return nil, fmt.Errorf("conindex: slot seconds %d must divide 86400", cfg.SlotSeconds)
	}
	numSlots := 86400 / cfg.SlotSeconds
	n := net.NumSegments()
	idx := &Index{
		net:      net,
		slotSec:  cfg.SlotSeconds,
		numSlots: numSlots,
		cfg:      cfg,
		minSpeed: make([]uint32, numSlots*n),
		maxSpeed: make([]uint32, numSlots*n),
		sumSpeed: make([]uint32, numSlots*n),
		cntSpeed: make([]uint32, numSlots*n),
		slotGen:  make([]atomic.Uint64, numSlots),
		near:     newTable(),
		far:      newTable(),
		nearRev:  newTable(),
		farRev:   newTable(),
	}
	// Accumulate in plain float32 (construction is offline and
	// single-threaded), then publish as bits.
	minS := make([]float32, numSlots*n)
	maxS := make([]float32, numSlots*n)
	sumS := make([]float32, numSlots*n)
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		for _, v := range mt.Visits {
			if float64(v.Speed) < cfg.MinSpeedFloor {
				continue
			}
			s0 := int(v.EnterMs) / 1000 / cfg.SlotSeconds
			s1 := int(v.ExitMs) / 1000 / cfg.SlotSeconds
			for s := s0; s <= s1; s++ {
				if s < 0 || s >= numSlots {
					continue
				}
				k := s*n + int(v.Segment)
				sp := v.Speed
				if minS[k] == 0 || sp < minS[k] {
					minS[k] = sp
				}
				if sp > maxS[k] {
					maxS[k] = sp
				}
				sumS[k] += sp
				idx.cntSpeed[k]++
			}
		}
	}
	// Fallbacks for unobserved (segment, slot) pairs, then the Near-table
	// safety factor on the minima.
	for s := 0; s < numSlots; s++ {
		for seg := 0; seg < n; seg++ {
			k := s*n + seg
			ff := net.Segment(roadnet.SegmentID(seg)).Class.FreeFlowSpeed()
			if minS[k] == 0 {
				minS[k] = float32(ff * cfg.FallbackMinFraction)
			}
			if maxS[k] == 0 {
				maxS[k] = float32(ff * cfg.FallbackMaxFraction)
			}
			minS[k] *= float32(cfg.NearSafetyFactor)
		}
	}
	for k := range minS {
		idx.minSpeed[k] = math.Float32bits(minS[k])
		idx.maxSpeed[k] = math.Float32bits(maxS[k])
		idx.sumSpeed[k] = math.Float32bits(sumS[k])
	}
	return idx, nil
}

// SlotSeconds returns Δt.
func (x *Index) SlotSeconds() int { return x.slotSec }

// NumSlots returns the slots per day.
func (x *Index) NumSlots() int { return x.numSlots }

// loadSpeed atomically reads one speed cell (stored as Float32bits).
func loadSpeed(a []uint32, k int) float32 {
	return math.Float32frombits(atomic.LoadUint32(&a[k]))
}

// MinSpeed returns the slot's minimum observed (or fallback) speed on seg.
func (x *Index) MinSpeed(seg roadnet.SegmentID, slot int) float64 {
	return float64(loadSpeed(x.minSpeed, x.key(seg, slot)))
}

// MaxSpeed returns the slot's maximum observed (or fallback) speed on seg.
func (x *Index) MaxSpeed(seg roadnet.SegmentID, slot int) float64 {
	return float64(loadSpeed(x.maxSpeed, x.key(seg, slot)))
}

// MeanSpeed returns the slot's mean observed speed on seg, falling back
// to 70% of free-flow when the slot was never observed. Used by the
// time-dependent route queries.
func (x *Index) MeanSpeed(seg roadnet.SegmentID, slot int) float64 {
	k := x.key(seg, slot)
	if cnt := atomic.LoadUint32(&x.cntSpeed[k]); cnt > 0 {
		return float64(loadSpeed(x.sumSpeed, k)) / float64(cnt)
	}
	return 0.7 * x.net.Segment(seg).Class.FreeFlowSpeed()
}

// Observations returns how many speed samples the slot has for seg.
func (x *Index) Observations(seg roadnet.SegmentID, slot int) int {
	return int(atomic.LoadUint32(&x.cntSpeed[x.key(seg, slot)]))
}

func (x *Index) key(seg roadnet.SegmentID, slot int) int {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return slot*x.net.NumSegments() + int(seg)
}

func cacheKey(seg roadnet.SegmentID, slot int) int64 {
	return int64(slot)<<32 | int64(uint32(seg))
}

// FarRow returns F(r, t) as an adaptive bitset/list row (the bounding
// phase's native form): every segment enterable from seg within one Δt
// at the slot's maximum speeds (seg itself included). Rows are shared
// and immutable. Cold misses materialise the row once even under
// concurrency (singleflight).
func (x *Index) FarRow(seg roadnet.SegmentID, slot int) Row {
	r, _ := x.FarRowCtx(context.Background(), seg, slot)
	return r
}

// FarRowCtx is FarRow with a cancellable materialisation: a cold miss
// runs the travel-time Dijkstra under ctx and aborts (returning ctx's
// error) within one checkpoint interval of cancellation. Cached rows are
// returned regardless of ctx state — only new work is cancellable.
func (x *Index) FarRowCtx(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.far.row(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expand(ctx, seg, slot, true)
	})
}

// NearRow returns N(r, t) as an adaptive row: every segment fully
// traversable from seg within one Δt at the slot's minimum speeds.
func (x *Index) NearRow(seg roadnet.SegmentID, slot int) Row {
	r, _ := x.NearRowCtx(context.Background(), seg, slot)
	return r
}

// NearRowCtx is NearRow with a cancellable materialisation (see
// FarRowCtx).
func (x *Index) NearRowCtx(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.near.row(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expand(ctx, seg, slot, false)
	})
}

// Far returns F(r, t) as a sorted ID slice (seg itself included). The
// returned slice is shared; callers must not modify it.
func (x *Index) Far(seg roadnet.SegmentID, slot int) []roadnet.SegmentID {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.far.list(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expand(context.Background(), seg, slot, true)
	})
}

// Near returns N(r, t) as a sorted ID slice (seg itself included). The
// returned slice is shared; callers must not modify it.
func (x *Index) Near(seg roadnet.SegmentID, slot int) []roadnet.SegmentID {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.near.list(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expand(context.Background(), seg, slot, false)
	})
}

// expand runs a travel-time Dijkstra from seg bounded by Δt, checking ctx
// every ctxCheckInterval pops so a cancelled query abandons the expansion
// promptly.
//
// Far mode (upper bound): a segment is reached when it can be *entered*
// within the budget, travelling at per-slot maximum speeds, starting from
// the entry of seg at time 0 with seg itself free (the object may already
// be at seg's exit).
//
// Near mode (lower bound): a segment is reached when it can be *fully
// traversed* within the budget at per-slot minimum speeds, including
// traversing seg itself first.
func (x *Index) expand(ctx context.Context, seg roadnet.SegmentID, slot int, far bool) ([]roadnet.SegmentID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := x.net.NumSegments()
	if seg < 0 || int(seg) >= n {
		return nil, nil
	}
	budget := float64(x.slotSec)
	base := slot * n
	speeds := x.minSpeed
	if far {
		speeds = x.maxSpeed
	}

	sc := x.getScratch()
	defer x.putScratch(sc)
	stamp := sc.stamp
	pq := &sc.pq

	// enterCost[s]: earliest time s can be entered. Both modes enter the
	// start segment at time 0; Near must additionally finish traversing
	// segments (exit <= budget) while Far only needs to enter them.
	sc.enterCost[seg] = 0
	sc.enterStamp[seg] = stamp
	heap.Push(pq, entryItem{seg, 0})
	var out []roadnet.SegmentID
	for pops := 0; pq.Len() > 0; pops++ {
		if pops%ctxCheckInterval == 0 && pops > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		it := heap.Pop(pq).(entryItem)
		if sc.enterStamp[it.seg] == stamp && it.cost > sc.enterCost[it.seg] {
			continue // stale entry
		}
		sp := float64(loadSpeed(speeds, base+int(it.seg)))
		exit := budget + 1
		if sp > 0 {
			exit = it.cost + x.net.Segment(it.seg).Length/sp
		}
		if far {
			if it.cost > budget {
				continue
			}
			out = append(out, it.seg)
		} else {
			if exit > budget {
				continue // cannot finish this segment: prune the branch
			}
			out = append(out, it.seg)
		}
		if exit > budget {
			continue // successors cannot be entered in time
		}
		succ := x.net.Outgoing(it.seg)
		rev := x.net.Segment(it.seg).Reverse
		for _, next := range succ {
			if next == rev && len(succ) > 1 {
				continue
			}
			if sc.enterStamp[next] != stamp || exit < sc.enterCost[next] {
				sc.enterCost[next] = exit
				sc.enterStamp[next] = stamp
				heap.Push(pq, entryItem{next, exit})
			}
		}
	}
	return out, nil
}

// PrecomputeSlot materialises the Near and Far rows of every segment for
// one slot. This is the offline index-construction step of the thesis;
// queries against warmed slots are pure lookups.
func (x *Index) PrecomputeSlot(slot int) {
	x.PrecomputeSlots(slot, slot)
}

// PrecomputeSlots warms a slot range [lo, hi] inclusive (wrapping modulo
// the day) with a GOMAXPROCS-wide worker pool.
func (x *Index) PrecomputeSlots(lo, hi int) {
	x.PrecomputeSlotsWorkers(lo, hi, 0)
}

// PrecomputeSlotsWorkers warms [lo, hi] with an explicit worker count
// (0 = GOMAXPROCS, 1 = serial).
func (x *Index) PrecomputeSlotsWorkers(lo, hi, workers int) {
	_ = x.PrecomputeSlotsCtx(context.Background(), lo, hi, workers)
}

// PrecomputeSlotsCtx warms [lo, hi] with a bounded worker pool
// (workers 0 = GOMAXPROCS, 1 = serial), stopping early when ctx is
// cancelled and returning its error. Work items are (segment, slot)
// pairs, so even a single-slot warm parallelises across segments; the
// singleflight tables make concurrent warms and queries against the same
// keys safe and duplicate-free. Rows already warmed before cancellation
// stay warm.
func (x *Index) PrecomputeSlotsCtx(ctx context.Context, lo, hi, workers int) error {
	if hi < lo {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nSeg := x.net.NumSegments()
	total := (hi - lo + 1) * nSeg
	if workers > total {
		workers = total
	}
	warm := func(i int) error {
		slot := lo + i/nSeg
		seg := roadnet.SegmentID(i % nSeg)
		if _, err := x.FarRowCtx(ctx, seg, slot); err != nil {
			return err
		}
		_, err := x.NearRowCtx(ctx, seg, slot)
		return err
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := warm(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		failed  atomic.Bool
	)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total || failed.Load() {
					return
				}
				err := ctx.Err()
				if err == nil {
					err = warm(i)
				}
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return firstEr
	}
	return nil
}

type entryItem struct {
	seg  roadnet.SegmentID
	cost float64
}

type entryPQ []entryItem

func (q entryPQ) Len() int            { return len(q) }
func (q entryPQ) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q entryPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *entryPQ) Push(v interface{}) { *q = append(*q, v.(entryItem)) }
func (q *entryPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// PrecomputeAll materialises every (segment, slot) Near and Far row.
// Only sensible for small networks or coarse Δt; returns the number of
// lists built.
func (x *Index) PrecomputeAll() int {
	x.PrecomputeSlots(0, x.numSlots-1)
	return 2 * x.numSlots * x.net.NumSegments()
}

// CachedLists reports how many forward Near/Far rows are materialised.
func (x *Index) CachedLists() int {
	return x.near.size() + x.far.size()
}
