package conindex

import (
	"math"
	"sync/atomic"

	"streach/internal/roadnet"
)

// Streaming speed observations (DESIGN.md §13).
//
// The Con-Index is fully determined by its per-(segment, slot) speed
// statistics; the four adjacency tables are derived views. A live
// observation therefore has two jobs: fold the sample into the
// statistics exactly as an offline Build over the union of base and
// ingested data would have, and kill every materialised row the change
// can have altered.
//
// The fold rule reproduces Build bit-for-bit because min and max are
// order-independent and the Near safety factor commutes with min:
//
//   - cnt == 0: the stored min/max are fallbacks (free-flow fractions)
//     that Build only applies to unobserved cells, so the first real
//     sample replaces them outright: min = sp·safety, max = sp,
//     sum = sp, cnt = 1.
//   - cnt > 0: min = min(min, sp·safety), max = max(max, sp),
//     sum += sp, cnt++. (sum accumulates in arrival order, so MeanSpeed
//     — a route-query input only — can differ from an offline rebuild
//     in the last float32 ulp; the min/max bounds that decide
//     reach/reverse/multi answers cannot.)
//
// Samples below the configured floor are dropped entirely, mirroring
// Build's scan.

// SpeedSample is one live speed observation for ObserveSpeedBatch: a
// speed in m/s seen on Seg across every slot in [Slot0, Slot1].
type SpeedSample struct {
	Seg          roadnet.SegmentID
	Slot0, Slot1 int
	Speed        float64
}

// ObserveSpeed folds one live speed sample (m/s) into the statistics
// for every slot in [slot0, slot1] and invalidates the affected
// adjacency rows. It reports whether any min/max bound actually moved
// (pure sum/cnt updates change MeanSpeed but no cached row). Batches
// should go through ObserveSpeedBatch, which merges the invalidation
// scans.
func (x *Index) ObserveSpeed(seg roadnet.SegmentID, slot0, slot1 int, speed float64) bool {
	return x.ObserveSpeedBatch([]SpeedSample{{Seg: seg, Slot0: slot0, Slot1: slot1, Speed: speed}})
}

// ObserveSpeedBatch folds a batch of samples in arrival order (the fold
// result is identical to per-sample ObserveSpeed calls) and then
// invalidates affected adjacency rows with one merged scan per touched
// slot rather than one per sample. The merge is what keeps live ingest
// off the query path: each scan takes the tables' write locks, so at
// thousands of samples/s per-sample scanning would starve row lookups
// even with the by-slot index. Reports whether any bound moved.
func (x *Index) ObserveSpeedBatch(samples []SpeedSample) bool {
	var changed map[int][]roadnet.SegmentID
	for _, sm := range samples {
		if sm.Seg < 0 || int(sm.Seg) >= x.net.NumSegments() {
			continue
		}
		if sm.Speed < x.cfg.MinSpeedFloor {
			continue
		}
		s1 := sm.Slot1
		if s1 < sm.Slot0 {
			s1 = sm.Slot0
		}
		for s := sm.Slot0; s <= s1; s++ {
			if s < 0 || s >= x.numSlots {
				continue
			}
			if x.observeSlot(sm.Seg, s, float32(sm.Speed)) {
				if changed == nil {
					changed = map[int][]roadnet.SegmentID{}
				}
				changed[s] = append(changed[s], sm.Seg)
			}
		}
	}
	for slot, segs := range changed {
		x.invalidateRows(slot, segs)
	}
	return changed != nil
}

// observeSlot applies the fold rule to one cell under obsMu and reports
// whether a bound moved. The field writes are atomic stores (readers
// are lock-free); the slot's generation is bumped after the writes so
// any expansion at this slot that recorded the previous generation
// refuses to cache itself.
func (x *Index) observeSlot(seg roadnet.SegmentID, slot int, sp float32) bool {
	k := slot*x.net.NumSegments() + int(seg)
	spMin := sp * float32(x.cfg.NearSafetyFactor)
	x.obsMu.Lock()
	oldMin := math.Float32frombits(x.minSpeed[k])
	oldMax := math.Float32frombits(x.maxSpeed[k])
	cnt := x.cntSpeed[k]
	var newMin, newMax, newSum float32
	if cnt == 0 {
		newMin, newMax, newSum = spMin, sp, sp
	} else {
		newMin, newMax = oldMin, oldMax
		if spMin < newMin {
			newMin = spMin
		}
		if sp > newMax {
			newMax = sp
		}
		newSum = math.Float32frombits(x.sumSpeed[k]) + sp
	}
	atomic.StoreUint32(&x.minSpeed[k], math.Float32bits(newMin))
	atomic.StoreUint32(&x.maxSpeed[k], math.Float32bits(newMax))
	atomic.StoreUint32(&x.sumSpeed[k], math.Float32bits(newSum))
	atomic.StoreUint32(&x.cntSpeed[k], cnt+1)
	changed := newMin != oldMin || newMax != oldMax
	if changed {
		x.invGen.Add(1)
		x.slotGen[slot].Add(1)
	}
	x.obsMu.Unlock()
	return changed
}

// invalidateRows removes every materialised adjacency row the changed
// bounds at (segs, slot) can have influenced. Membership is the
// witness: an expansion only consults a segment's speed after entering
// it, and entering it puts either the segment or one of its graph
// neighbours in the row (forward rows via its predecessors, reverse
// rows via its successors), so probing {seg} ∪ In(seg) ∪ Out(seg)
// across all four tables is a conservative superset of the affected
// rows. The one case membership cannot witness — a row that is empty
// because its own segment was too slow to traverse — is covered by
// always dropping each changed segment's own (seg, slot) key. The
// probe sets of every changed segment are merged so the slot's rows are
// scanned once per batch, not once per sample.
func (x *Index) invalidateRows(slot int, segs []roadnet.SegmentID) {
	seen := make(map[roadnet.SegmentID]struct{}, len(segs)*4)
	probes := make([]roadnet.SegmentID, 0, len(segs)*4)
	add := func(s roadnet.SegmentID) {
		if _, ok := seen[s]; !ok {
			seen[s] = struct{}{}
			probes = append(probes, s)
		}
	}
	selfSeen := make(map[roadnet.SegmentID]struct{}, len(segs))
	selves := make([]int64, 0, len(segs))
	for _, seg := range segs {
		if _, ok := selfSeen[seg]; !ok {
			selfSeen[seg] = struct{}{}
			selves = append(selves, cacheKey(seg, slot))
		}
		add(seg)
		for _, p := range x.net.Incoming(seg) {
			add(p)
		}
		for _, p := range x.net.Outgoing(seg) {
			add(p)
		}
	}
	for _, t := range []*table{&x.near, &x.far, &x.nearRev, &x.farRev} {
		t.invalidateSlot(slot, selves, probes)
	}
}

// InvalidationGen exposes the invalidation generation for tests and
// cache keys.
func (x *Index) InvalidationGen() uint64 { return x.invGen.Load() }
