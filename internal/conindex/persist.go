package conindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/xerr"
)

// Con-Index persistence: the index is fully determined by its per-slot
// speed statistics (the Near/Far lists are derived views), so Save
// serializes just those arrays and Load rebuilds a lazy index over them.
//
// Format (little endian):
//
//	magic "CIDX" | version u16 | slotSec u32 | numSegments u32 |
//	then numSlots*numSegments x (min f32, max f32, sum f32, cnt u32) |
//	crc u32 (v2+, CRC-32C of every preceding byte incl. magic)
//
// v2 adds the trailing checksum so a flipped bit in the statistics is
// detected at load instead of skewing speed bounds (and with them query
// answers). v1 blobs still load, with a strict EOF check so a corrupted
// version field cannot silently downgrade a v2 file.
//
// The materialised adjacency rows are persisted separately (the blob is
// a warm cache, not part of the index's identity): see SaveAdjacency.
const (
	conMagic      = "CIDX"
	conVersion    = 2
	conVersionMin = 1
)

// Save writes the index's speed statistics.
func (x *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := storage.NewChecksum()
	tee := io.MultiWriter(bw, h)
	if _, err := io.WriteString(tee, conMagic); err != nil {
		return fmt.Errorf("conindex: write magic: %w", err)
	}
	var buf [16]byte
	binary.LittleEndian.PutUint16(buf[:2], conVersion)
	if _, err := tee.Write(buf[:2]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(x.slotSec))
	if _, err := tee.Write(buf[:4]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(x.net.NumSegments()))
	if _, err := tee.Write(buf[:4]); err != nil {
		return err
	}
	for i := range x.minSpeed {
		binary.LittleEndian.PutUint32(buf[0:4], atomic.LoadUint32(&x.minSpeed[i]))
		binary.LittleEndian.PutUint32(buf[4:8], atomic.LoadUint32(&x.maxSpeed[i]))
		binary.LittleEndian.PutUint32(buf[8:12], atomic.LoadUint32(&x.sumSpeed[i]))
		binary.LittleEndian.PutUint32(buf[12:16], atomic.LoadUint32(&x.cntSpeed[i]))
		if _, err := tee.Write(buf[:16]); err != nil {
			return fmt.Errorf("conindex: write stats %d: %w", i, err)
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], h.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return fmt.Errorf("conindex: write checksum: %w", err)
	}
	return bw.Flush()
}

// Load reopens a saved index over the same network, verifying the
// trailing checksum on v2 blobs before trusting any statistic.
func Load(net *roadnet.Network, r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	h := storage.NewChecksum()
	tee := io.TeeReader(br, h)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tee, magic); err != nil {
		return nil, fmt.Errorf("conindex: read magic: %w", err)
	}
	if string(magic) != conMagic {
		return nil, xerr.Markf(xerr.KindCorrupt, "conindex: bad magic %q", magic)
	}
	var buf [16]byte
	if _, err := io.ReadFull(tee, buf[:2]); err != nil {
		return nil, fmt.Errorf("conindex: read version: %w", err)
	}
	ver := binary.LittleEndian.Uint16(buf[:2])
	if ver < conVersionMin || ver > conVersion {
		return nil, fmt.Errorf("conindex: unsupported version %d", ver)
	}
	if _, err := io.ReadFull(tee, buf[:4]); err != nil {
		return nil, fmt.Errorf("conindex: read slot seconds: %w", err)
	}
	slotSec := int(binary.LittleEndian.Uint32(buf[:4]))
	if slotSec <= 0 || 86400%slotSec != 0 {
		return nil, fmt.Errorf("conindex: invalid slot seconds %d", slotSec)
	}
	if _, err := io.ReadFull(tee, buf[:4]); err != nil {
		return nil, fmt.Errorf("conindex: read segment count: %w", err)
	}
	numSeg := int(binary.LittleEndian.Uint32(buf[:4]))
	if numSeg != net.NumSegments() {
		return nil, fmt.Errorf("conindex: saved over %d segments, network has %d", numSeg, net.NumSegments())
	}
	numSlots := 86400 / slotSec
	total := numSlots * numSeg
	idx := &Index{
		net:      net,
		slotSec:  slotSec,
		numSlots: numSlots,
		// The floor/fallback/safety knobs are not serialized; reopened
		// indexes use the defaults, which is what every build path in
		// this repo configures. They only matter for live ObserveSpeed.
		cfg:      Config{SlotSeconds: slotSec}.withDefaults(),
		minSpeed: make([]uint32, total),
		maxSpeed: make([]uint32, total),
		sumSpeed: make([]uint32, total),
		cntSpeed: make([]uint32, total),
		slotGen:  make([]atomic.Uint64, numSlots),
		near:     newTable(),
		far:      newTable(),
		nearRev:  newTable(),
		farRev:   newTable(),
	}
	for i := 0; i < total; i++ {
		if _, err := io.ReadFull(tee, buf[:16]); err != nil {
			return nil, fmt.Errorf("conindex: read stats %d: %w", i, err)
		}
		idx.minSpeed[i] = binary.LittleEndian.Uint32(buf[0:4])
		idx.maxSpeed[i] = binary.LittleEndian.Uint32(buf[4:8])
		idx.sumSpeed[i] = binary.LittleEndian.Uint32(buf[8:12])
		idx.cntSpeed[i] = binary.LittleEndian.Uint32(buf[12:16])
	}
	if ver >= 2 {
		// The stored checksum is read from br directly: it is not part
		// of its own coverage.
		want := h.Sum32()
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("conindex: read checksum: %w", err)
		}
		if got := binary.LittleEndian.Uint32(buf[:4]); got != want {
			return nil, xerr.Markf(xerr.KindCorrupt, "conindex: checksum mismatch (stored %08x, computed %08x)", got, want)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, xerr.Markf(xerr.KindCorrupt, "conindex: trailing bytes after v%d blob", ver)
	}
	return idx, nil
}
