package conindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/xerr"
)

// Adjacency persistence: the materialised Near/Far rows of all four
// tables, so a reopened system answers cold queries from warmed
// adjacency instead of re-running travel-time Dijkstras. The blob is a
// derived cache — loading is optional and an absent or stale blob only
// costs lazy re-materialisation.
//
// Format (little endian), rows sorted by (table, slot, segment):
//
//	magic "CADJ" | version u16 | slotSec u32 | numSegments u32 |
//	numRows u32, then per row:
//	    table u8      0=far 1=near 2=farRev 3=nearRev
//	    slot u32 | seg u32
//	    enc u8        0=sparse sorted-ID list, 1=bitset
//	    sparse: count u32, count x u32 segment IDs
//	    bitset: nwords u32, nwords x u64 (trailing zero words trimmed)
//	then crc u32 (v2+, CRC-32C of every preceding byte incl. magic)
//
// The sparse/bitset choice mirrors the in-memory adaptive rows (and the
// v2 time-list format): dense rows ship as word arrays, sparse rows as
// ID lists, so blob size stays proportional to what was materialised.
//
// v2 adds the trailing checksum, and loading became transactional: rows
// are parsed and validated first, the checksum (or, on v1, a strict
// EOF) is verified, and only then is anything installed — a corrupt
// blob warms nothing instead of warming a prefix.
const (
	adjMagic      = "CADJ"
	adjVersion    = 2
	adjVersionMin = 1
)

const (
	adjEncSparse = 0
	adjEncBitset = 1
)

// adjTables returns the four tables in their fixed on-disk order.
func (x *Index) adjTables() []*table {
	return []*table{&x.far, &x.near, &x.farRev, &x.nearRev}
}

// SaveAdjacency writes every materialised row of all four adjacency
// tables. Safe to call concurrently with queries (tables are snapshotted
// under their read locks; rows are immutable).
func (x *Index) SaveAdjacency(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := storage.NewChecksum()
	tee := io.MultiWriter(bw, h)
	if _, err := io.WriteString(tee, adjMagic); err != nil {
		return fmt.Errorf("conindex: write adjacency magic: %w", err)
	}
	var buf [8]byte
	binary.LittleEndian.PutUint16(buf[:2], adjVersion)
	tee.Write(buf[:2])
	binary.LittleEndian.PutUint32(buf[:4], uint32(x.slotSec))
	tee.Write(buf[:4])
	binary.LittleEndian.PutUint32(buf[:4], uint32(x.net.NumSegments()))
	tee.Write(buf[:4])

	type snap struct {
		keys []int64
		rows map[int64]Row
	}
	snaps := make([]snap, 0, 4)
	numRows := 0
	for _, t := range x.adjTables() {
		t.mu.RLock()
		s := snap{keys: make([]int64, 0, len(t.rows)), rows: make(map[int64]Row, len(t.rows))}
		for k, r := range t.rows {
			s.keys = append(s.keys, k)
			s.rows[k] = r
		}
		t.mu.RUnlock()
		sort.Slice(s.keys, func(i, j int) bool { return s.keys[i] < s.keys[j] })
		numRows += len(s.keys)
		snaps = append(snaps, s)
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(numRows))
	if _, err := tee.Write(buf[:4]); err != nil {
		return err
	}
	for ti, s := range snaps {
		for _, k := range s.keys {
			if err := writeAdjRow(tee, uint8(ti), k, s.rows[k]); err != nil {
				return err
			}
		}
	}
	binary.LittleEndian.PutUint32(buf[:4], h.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return fmt.Errorf("conindex: write adjacency checksum: %w", err)
	}
	return bw.Flush()
}

func writeAdjRow(w io.Writer, tableID uint8, key int64, r Row) error {
	var buf [8]byte
	buf[0] = tableID
	if _, err := w.Write(buf[:1]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(buf[:4], uint32(key>>32)) // slot
	w.Write(buf[:4])
	binary.LittleEndian.PutUint32(buf[:4], uint32(key&0xffffffff)) // segment
	w.Write(buf[:4])
	if r.bits != nil {
		words := r.bits
		for len(words) > 0 && words[len(words)-1] == 0 {
			words = words[:len(words)-1]
		}
		buf[0] = adjEncBitset
		w.Write(buf[:1])
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(words)))
		w.Write(buf[:4])
		for _, wd := range words {
			binary.LittleEndian.PutUint64(buf[:8], wd)
			if _, err := w.Write(buf[:8]); err != nil {
				return err
			}
		}
		return nil
	}
	buf[0] = adjEncSparse
	w.Write(buf[:1])
	binary.LittleEndian.PutUint32(buf[:4], uint32(len(r.ids)))
	w.Write(buf[:4])
	for _, s := range r.ids {
		binary.LittleEndian.PutUint32(buf[:4], uint32(s))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
	}
	return nil
}

// LoadAdjacency restores rows persisted with SaveAdjacency into the
// index's tables, replacing any rows already materialised for the same
// keys. The blob must match the index's Δt and segment count. Nothing is
// installed until the whole blob has parsed, validated, and (v2)
// checksum-verified: a corrupt blob is rejected in full.
func (x *Index) LoadAdjacency(r io.Reader) error {
	br := bufio.NewReader(r)
	h := storage.NewChecksum()
	tee := io.TeeReader(br, h)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tee, magic); err != nil {
		return fmt.Errorf("conindex: read adjacency magic: %w", err)
	}
	if string(magic) != adjMagic {
		return fmt.Errorf("conindex: bad adjacency magic %q", magic)
	}
	var buf [8]byte
	if _, err := io.ReadFull(tee, buf[:2]); err != nil {
		return fmt.Errorf("conindex: read adjacency version: %w", err)
	}
	ver := binary.LittleEndian.Uint16(buf[:2])
	if ver < adjVersionMin || ver > adjVersion {
		return fmt.Errorf("conindex: unsupported adjacency version %d", ver)
	}
	if _, err := io.ReadFull(tee, buf[:4]); err != nil {
		return err
	}
	if got := int(binary.LittleEndian.Uint32(buf[:4])); got != x.slotSec {
		return fmt.Errorf("conindex: adjacency slot seconds %d, index has %d", got, x.slotSec)
	}
	if _, err := io.ReadFull(tee, buf[:4]); err != nil {
		return err
	}
	numSeg := x.net.NumSegments()
	if got := int(binary.LittleEndian.Uint32(buf[:4])); got != numSeg {
		return fmt.Errorf("conindex: adjacency over %d segments, network has %d", got, numSeg)
	}
	if _, err := io.ReadFull(tee, buf[:4]); err != nil {
		return err
	}
	numRows := int(binary.LittleEndian.Uint32(buf[:4]))
	tables := x.adjTables()
	maxWords := (numSeg + 63) / 64
	type pendingRow struct {
		tableID uint8
		key     int64
		row     Row
	}
	pending := make([]pendingRow, 0, numRows)
	for i := 0; i < numRows; i++ {
		hdr := make([]byte, 1+4+4+1+4)
		if _, err := io.ReadFull(tee, hdr); err != nil {
			return fmt.Errorf("conindex: read adjacency row %d: %w", i, err)
		}
		tableID := hdr[0]
		if int(tableID) >= len(tables) {
			return fmt.Errorf("conindex: adjacency row %d has bad table %d", i, tableID)
		}
		slot := int(binary.LittleEndian.Uint32(hdr[1:5]))
		seg := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if slot >= x.numSlots || seg >= numSeg {
			return fmt.Errorf("conindex: adjacency row %d out of range (slot %d, seg %d)", i, slot, seg)
		}
		enc := hdr[9]
		count := int(binary.LittleEndian.Uint32(hdr[10:14]))
		var row Row
		switch enc {
		case adjEncSparse:
			if count > numSeg {
				return fmt.Errorf("conindex: adjacency row %d sparse count %d too large", i, count)
			}
			ids := make([]roadnet.SegmentID, count)
			for j := 0; j < count; j++ {
				if _, err := io.ReadFull(tee, buf[:4]); err != nil {
					return fmt.Errorf("conindex: read adjacency row %d: %w", i, err)
				}
				id := binary.LittleEndian.Uint32(buf[:4])
				if int(id) >= numSeg {
					return fmt.Errorf("conindex: adjacency row %d member %d out of range", i, id)
				}
				// Row.Has binary-searches, so the list must be strictly
				// ascending; reject corrupt out-of-order rows.
				if j > 0 && roadnet.SegmentID(id) <= ids[j-1] {
					return fmt.Errorf("conindex: adjacency row %d members not strictly ascending", i)
				}
				ids[j] = roadnet.SegmentID(id)
			}
			row = rowFromIDs(ids, numSeg)
		case adjEncBitset:
			if count > maxWords {
				return fmt.Errorf("conindex: adjacency row %d bitset words %d too large", i, count)
			}
			words := make([]uint64, count)
			for j := 0; j < count; j++ {
				if _, err := io.ReadFull(tee, buf[:8]); err != nil {
					return fmt.Errorf("conindex: read adjacency row %d: %w", i, err)
				}
				words[j] = binary.LittleEndian.Uint64(buf[:8])
			}
			row = rowFromBits(words, numSeg)
		default:
			return fmt.Errorf("conindex: adjacency row %d has bad encoding %d", i, enc)
		}
		pending = append(pending, pendingRow{tableID: tableID, key: cacheKey(roadnet.SegmentID(seg), slot), row: row})
	}
	if ver >= 2 {
		// The stored checksum is read from br directly: it is not part
		// of its own coverage.
		want := h.Sum32()
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return fmt.Errorf("conindex: read adjacency checksum: %w", err)
		}
		if got := binary.LittleEndian.Uint32(buf[:4]); got != want {
			return xerr.Markf(xerr.KindCorrupt, "conindex: adjacency checksum mismatch (stored %08x, computed %08x)", got, want)
		}
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return xerr.Markf(xerr.KindCorrupt, "conindex: trailing bytes after v%d adjacency blob", ver)
	}
	for _, p := range pending {
		tables[p.tableID].put(p.key, p.row)
		x.stats.loaded.Add(1)
	}
	return nil
}
