package conindex

import (
	"context"
	"fmt"

	"streach/internal/bitset"
	"streach/internal/roadnet"
)

// Slice is a shard-local view of the Con-Index: it resolves adjacency
// rows only for the segments its shard owns and rejects everything else,
// so a mis-routed row fetch fails loudly instead of silently answering
// from another shard's data. Slices share the underlying index — the
// materialised tables, their singleflight registry, and the per-slot
// speed extremes — which is the single-process analogue of each shard
// holding its own partition of the tables while the network topology and
// speed statistics are replicated everywhere.
type Slice struct {
	x     *Index
	shard int
	owned bitset.Set

	// slotRanged, when true, additionally restricts the slice to
	// adjacency rows whose (normalised) slot falls in the inclusive
	// [slotLo, slotHi] range — the served range of a temporal shard.
	// Rows are fetched per (segment, slot), so unlike the ST-Index held
	// range no overhang is needed: the row router sends each fetch to
	// the slot's serving shard directly.
	slotRanged     bool
	slotLo, slotHi int
}

// Slice returns a shard-local view that serves adjacency rows only for
// the owned segments. shard is the owning shard's ordinal, used in error
// messages and metrics.
func (x *Index) Slice(shard int, owned bitset.Set) *Slice {
	return &Slice{x: x, shard: shard, owned: owned}
}

// SliceSlots returns a shard-local view restricted on both axes: rows
// resolve only for owned segments and only at slots inside [slotLo,
// slotHi]. owned may be nil for a pure temporal shard.
func (x *Index) SliceSlots(shard int, owned bitset.Set, slotLo, slotHi int) *Slice {
	return &Slice{x: x, shard: shard, owned: owned, slotRanged: true, slotLo: slotLo, slotHi: slotHi}
}

// Index returns the shared underlying index.
func (s *Slice) Index() *Index { return s.x }

// Shard returns the owning shard's ordinal.
func (s *Slice) Shard() int { return s.shard }

// Owns reports whether the slice serves rows for seg.
func (s *Slice) Owns(seg roadnet.SegmentID) bool {
	return seg >= 0 && int(seg) < s.x.net.NumSegments() && s.owned.Has(int(seg))
}

func (s *Slice) check(seg roadnet.SegmentID) error {
	if s.owned != nil && !s.Owns(seg) {
		return fmt.Errorf("conindex: segment %d is not owned by shard %d", seg, s.shard)
	}
	return nil
}

// checkSlot rejects row fetches outside a slot-ranged slice's served
// range, normalising the slot mod numSlots exactly as the row
// resolvers do, so a wrapped slot checks against the slot it actually
// reads.
func (s *Slice) checkSlot(slot int) error {
	if !s.slotRanged {
		return nil
	}
	n := s.x.numSlots
	slot = ((slot % n) + n) % n
	if slot < s.slotLo || slot > s.slotHi {
		return fmt.Errorf("conindex: slot %d is outside shard %d's served range [%d, %d]",
			slot, s.shard, s.slotLo, s.slotHi)
	}
	return nil
}

// FarRow resolves F(seg, slot) through the shard slice.
func (s *Slice) FarRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	if err := s.checkSlot(slot); err != nil {
		return Row{}, err
	}
	return s.x.FarRowCtx(ctx, seg, slot)
}

// NearRow resolves N(seg, slot) through the shard slice.
func (s *Slice) NearRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	if err := s.checkSlot(slot); err != nil {
		return Row{}, err
	}
	return s.x.NearRowCtx(ctx, seg, slot)
}

// FarReverseRow resolves the reverse Far row through the shard slice.
func (s *Slice) FarReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	if err := s.checkSlot(slot); err != nil {
		return Row{}, err
	}
	return s.x.FarReverseRowCtx(ctx, seg, slot)
}

// NearReverseRow resolves the reverse Near row through the shard slice.
func (s *Slice) NearReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	if err := s.checkSlot(slot); err != nil {
		return Row{}, err
	}
	return s.x.NearReverseRowCtx(ctx, seg, slot)
}
