package conindex

import (
	"context"
	"fmt"

	"streach/internal/bitset"
	"streach/internal/roadnet"
)

// Slice is a shard-local view of the Con-Index: it resolves adjacency
// rows only for the segments its shard owns and rejects everything else,
// so a mis-routed row fetch fails loudly instead of silently answering
// from another shard's data. Slices share the underlying index — the
// materialised tables, their singleflight registry, and the per-slot
// speed extremes — which is the single-process analogue of each shard
// holding its own partition of the tables while the network topology and
// speed statistics are replicated everywhere.
type Slice struct {
	x     *Index
	shard int
	owned bitset.Set
}

// Slice returns a shard-local view that serves adjacency rows only for
// the owned segments. shard is the owning shard's ordinal, used in error
// messages and metrics.
func (x *Index) Slice(shard int, owned bitset.Set) *Slice {
	return &Slice{x: x, shard: shard, owned: owned}
}

// Index returns the shared underlying index.
func (s *Slice) Index() *Index { return s.x }

// Shard returns the owning shard's ordinal.
func (s *Slice) Shard() int { return s.shard }

// Owns reports whether the slice serves rows for seg.
func (s *Slice) Owns(seg roadnet.SegmentID) bool {
	return seg >= 0 && int(seg) < s.x.net.NumSegments() && s.owned.Has(int(seg))
}

func (s *Slice) check(seg roadnet.SegmentID) error {
	if !s.Owns(seg) {
		return fmt.Errorf("conindex: segment %d is not owned by shard %d", seg, s.shard)
	}
	return nil
}

// FarRow resolves F(seg, slot) through the shard slice.
func (s *Slice) FarRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	return s.x.FarRowCtx(ctx, seg, slot)
}

// NearRow resolves N(seg, slot) through the shard slice.
func (s *Slice) NearRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	return s.x.NearRowCtx(ctx, seg, slot)
}

// FarReverseRow resolves the reverse Far row through the shard slice.
func (s *Slice) FarReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	return s.x.FarReverseRowCtx(ctx, seg, slot)
}

// NearReverseRow resolves the reverse Near row through the shard slice.
func (s *Slice) NearReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	if err := s.check(seg); err != nil {
		return Row{}, err
	}
	return s.x.NearReverseRowCtx(ctx, seg, slot)
}
