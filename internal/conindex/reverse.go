package conindex

import (
	"container/heap"
	"context"

	"streach/internal/roadnet"
)

// Reverse connection tables support reverse reachability queries ("from
// which segments can this destination be reached within Δt?"). They are
// the mirror image of the forward tables: the expansion runs over
// predecessor edges with the same per-slot speed extremes.
//
// FarReverse(r, t) is the upper bound — every segment from which r can be
// *entered* within one Δt at maximum speeds, assuming the mover starts at
// the candidate's entry and must traverse everything up to (excluding) r.
// NearReverse(r, t) is the lower bound at minimum speeds, requiring r
// itself to be fully traversed too.

// FarReverseRow returns the FarReverse list as an adaptive row (see
// FarRow).
func (x *Index) FarReverseRow(seg roadnet.SegmentID, slot int) Row {
	r, _ := x.FarReverseRowCtx(context.Background(), seg, slot)
	return r
}

// FarReverseRowCtx is FarReverseRow with a cancellable materialisation
// (see FarRowCtx).
func (x *Index) FarReverseRowCtx(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.farRev.row(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expandReverse(ctx, seg, slot, true)
	})
}

// NearReverseRow returns the NearReverse list as an adaptive row.
func (x *Index) NearReverseRow(seg roadnet.SegmentID, slot int) Row {
	r, _ := x.NearReverseRowCtx(context.Background(), seg, slot)
	return r
}

// NearReverseRowCtx is NearReverseRow with a cancellable materialisation
// (see FarRowCtx).
func (x *Index) NearReverseRowCtx(ctx context.Context, seg roadnet.SegmentID, slot int) (Row, error) {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.nearRev.row(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expandReverse(ctx, seg, slot, false)
	})
}

// FarReverse returns the segments from which seg is reachable within one
// Δt at the slot's maximum speeds (seg itself included), sorted by ID.
// The returned slice is shared; callers must not modify it.
func (x *Index) FarReverse(seg roadnet.SegmentID, slot int) []roadnet.SegmentID {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.farRev.list(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expandReverse(context.Background(), seg, slot, true)
	})
}

// NearReverse returns the segments from which seg is surely reachable
// within one Δt even at the slot's minimum speeds, sorted by ID.
func (x *Index) NearReverse(seg roadnet.SegmentID, slot int) []roadnet.SegmentID {
	slot = ((slot % x.numSlots) + x.numSlots) % x.numSlots
	return x.nearRev.list(x, cacheKey(seg, slot), func() ([]roadnet.SegmentID, error) {
		return x.expandReverse(context.Background(), seg, slot, false)
	})
}

// expandReverse runs the mirrored travel-time Dijkstra: cost[q] is the
// travel time from the *entry* of q to the *entry* of seg, i.e. the sum
// of traversal times of q and every intermediate segment, excluding seg.
// ctx is checked every ctxCheckInterval pops, same as the forward expand.
//
// Far mode: include q when cost[q] <= budget (the mover enters seg in
// time). Near mode: include q when cost[q] + time(seg) <= budget (the
// whole journey, including finishing seg, fits).
func (x *Index) expandReverse(ctx context.Context, seg roadnet.SegmentID, slot int, far bool) ([]roadnet.SegmentID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n := x.net.NumSegments()
	if seg < 0 || int(seg) >= n {
		return nil, nil
	}
	budget := float64(x.slotSec)
	base := slot * n
	speeds := x.minSpeed
	if far {
		speeds = x.maxSpeed
	}
	timeOf := func(s roadnet.SegmentID) float64 {
		sp := float64(loadSpeed(speeds, base+int(s)))
		if sp <= 0 {
			return budget + 1
		}
		return x.net.Segment(s).Length / sp
	}

	segTime := timeOf(seg)
	// In Near mode, if seg itself cannot be traversed in time, nothing —
	// not even seg — is surely reachable.
	if !far && segTime > budget {
		return nil, nil
	}
	effBudget := budget
	if !far {
		effBudget = budget - segTime
	}

	sc := x.getScratch()
	defer x.putScratch(sc)
	stamp := sc.stamp
	pq := &sc.pq
	sc.enterCost[seg] = 0
	sc.enterStamp[seg] = stamp
	heap.Push(pq, entryItem{seg, 0})
	var out []roadnet.SegmentID
	for pops := 0; pq.Len() > 0; pops++ {
		if pops%ctxCheckInterval == 0 && pops > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		it := heap.Pop(pq).(entryItem)
		if sc.enterStamp[it.seg] == stamp && it.cost > sc.enterCost[it.seg] {
			continue
		}
		if it.cost > effBudget {
			continue
		}
		out = append(out, it.seg)
		pred := x.net.Incoming(it.seg)
		rev := x.net.Segment(it.seg).Reverse
		for _, prev := range pred {
			if prev == rev && len(pred) > 1 {
				continue // mirror of the forward no-U-turn rule
			}
			c := it.cost + timeOf(prev)
			if c > effBudget {
				continue
			}
			if sc.enterStamp[prev] != stamp || c < sc.enterCost[prev] {
				sc.enterCost[prev] = c
				sc.enterStamp[prev] = stamp
				heap.Push(pq, entryItem{prev, c})
			}
		}
	}
	return out, nil
}
