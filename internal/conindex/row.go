package conindex

import (
	"math/bits"
	"sort"

	"streach/internal/bitset"
	"streach/internal/roadnet"
)

// Row is one materialised Near/Far list in adaptive encoding. Dense rows
// are stored as segment bitsets so the bounding phase can union whole
// rows word-by-word; sparse rows stay as sorted ID lists, which keeps
// memory (and the persisted adjacency blob) proportional to list size.
// The break-even point mirrors the v2 time-list format: a bitset costs
// numSegments/8 bytes, a sparse list 4 bytes per member, so bitsets win
// past numSegments/32 members.
//
// Rows are immutable once built and shared between callers.
type Row struct {
	ids  []roadnet.SegmentID // sorted ascending; nil when bits is used
	bits bitset.Set
	n    int
}

// rowSparseCutoff reports whether a list of n members over numSegments
// segments is smaller as a sorted list than as a bitset.
func rowSparse(n, numSegments int) bool { return n*32 < numSegments }

// makeRow builds a Row from an expansion list (any order, duplicates
// tolerated).
func makeRow(list []roadnet.SegmentID, numSegments int) Row {
	if len(list) == 0 {
		return Row{}
	}
	if rowSparse(len(list), numSegments) {
		ids := append([]roadnet.SegmentID(nil), list...)
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		// Dedupe in place (expansion lists are unique already; this is a
		// cheap invariant guard).
		out := ids[:1]
		for _, s := range ids[1:] {
			if s != out[len(out)-1] {
				out = append(out, s)
			}
		}
		return Row{ids: out, n: len(out)}
	}
	bs := bitset.New(numSegments)
	for _, s := range list {
		bs.Add(int(s))
	}
	return Row{bits: bs, n: bs.Count()}
}

// rowFromIDs builds a Row from a sorted, deduplicated ID list (the
// adjacency-blob decode path).
func rowFromIDs(ids []roadnet.SegmentID, numSegments int) Row {
	if len(ids) == 0 {
		return Row{}
	}
	if rowSparse(len(ids), numSegments) {
		return Row{ids: ids, n: len(ids)}
	}
	bs := bitset.New(numSegments)
	for _, s := range ids {
		bs.Add(int(s))
	}
	return Row{bits: bs, n: bs.Count()}
}

// rowFromBits builds a Row from bitset words (the adjacency-blob decode
// path); words may be trimmed short of the full segment count.
func rowFromBits(words []uint64, numSegments int) Row {
	n := 0
	for _, w := range words {
		n += bits.OnesCount64(w)
	}
	if n == 0 {
		return Row{}
	}
	if rowSparse(n, numSegments) {
		ids := make([]roadnet.SegmentID, 0, n)
		bitset.ForEach(words, func(i int) { ids = append(ids, roadnet.SegmentID(i)) })
		return Row{ids: ids, n: n}
	}
	bs := bitset.New(numSegments)
	copy(bs, words)
	return Row{bits: bs, n: n}
}

// Len returns the member count.
func (r Row) Len() int { return r.n }

// Has reports membership. Sparse rows binary-search; dense rows test one
// bit.
func (r Row) Has(s roadnet.SegmentID) bool {
	if r.bits != nil {
		return r.bits.Has(int(s))
	}
	i := sort.Search(len(r.ids), func(i int) bool { return r.ids[i] >= s })
	return i < len(r.ids) && r.ids[i] == s
}

// OrInto unions the row into dst, a bitset over the full segment space.
// Dense rows fold word-by-word; sparse rows set individual bits.
func (r Row) OrInto(dst bitset.Set) {
	if r.bits != nil {
		bitset.Or(dst, r.bits)
		return
	}
	for _, s := range r.ids {
		dst.Add(int(s))
	}
}

// ForEach calls fn for every member in ascending ID order.
func (r Row) ForEach(fn func(roadnet.SegmentID)) {
	if r.bits != nil {
		bitset.ForEach(r.bits, func(i int) { fn(roadnet.SegmentID(i)) })
		return
	}
	for _, s := range r.ids {
		fn(s)
	}
}

// AppendTo appends the members to dst in ascending ID order.
func (r Row) AppendTo(dst []roadnet.SegmentID) []roadnet.SegmentID {
	r.ForEach(func(s roadnet.SegmentID) { dst = append(dst, s) })
	return dst
}
