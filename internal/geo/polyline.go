package geo

import "math"

// Polyline is an ordered sequence of points describing a road segment's
// shape or a trajectory's path.
type Polyline []Point

// Length returns the total length of the polyline in metres.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl); i++ {
		total += Distance(pl[i-1], pl[i])
	}
	return total
}

// MBR returns the minimum bounding rectangle of the polyline.
func (pl Polyline) MBR() MBR {
	return MBROf(pl)
}

// PointAt returns the point located dist metres along the polyline from its
// start, clamped to the endpoints.
func (pl Polyline) PointAt(dist float64) Point {
	if len(pl) == 0 {
		return Point{}
	}
	if dist <= 0 {
		return pl[0]
	}
	remaining := dist
	for i := 1; i < len(pl); i++ {
		segLen := Distance(pl[i-1], pl[i])
		if remaining <= segLen && segLen > 0 {
			return Lerp(pl[i-1], pl[i], remaining/segLen)
		}
		remaining -= segLen
	}
	return pl[len(pl)-1]
}

// Project returns the closest point on the polyline to p, the distance from
// p to that point in metres, and the arc length from the polyline start to
// the projection in metres.
func (pl Polyline) Project(p Point) (closest Point, distMeters, alongMeters float64) {
	if len(pl) == 0 {
		return Point{}, math.Inf(1), 0
	}
	if len(pl) == 1 {
		return pl[0], Distance(p, pl[0]), 0
	}
	best := math.Inf(1)
	var bestPt Point
	var bestAlong float64
	var walked float64
	for i := 1; i < len(pl); i++ {
		a, b := pl[i-1], pl[i]
		cand, t := projectOnSegment(p, a, b)
		d := Distance(p, cand)
		segLen := Distance(a, b)
		if d < best {
			best = d
			bestPt = cand
			bestAlong = walked + t*segLen
		}
		walked += segLen
	}
	return bestPt, best, bestAlong
}

// projectOnSegment projects p onto the straight segment ab in a local
// planar frame, returning the projected point and the parameter t in [0,1].
func projectOnSegment(p, a, b Point) (Point, float64) {
	// Local equirectangular frame centred at a.
	cosLat := math.Cos(a.Lat * math.Pi / 180)
	ax, ay := 0.0, 0.0
	bx := (b.Lng - a.Lng) * cosLat
	by := b.Lat - a.Lat
	px := (p.Lng - a.Lng) * cosLat
	py := p.Lat - a.Lat

	dx, dy := bx-ax, by-ay
	lenSq := dx*dx + dy*dy
	if lenSq == 0 {
		return a, 0
	}
	t := (px*dx + py*dy) / lenSq
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Lerp(a, b, t), t
}

// Reverse returns a new polyline with the points in opposite order.
func (pl Polyline) Reverse() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}

// SplitAt splits the polyline at arc length dist metres from the start,
// returning the two halves. Both halves share the split point. When dist is
// outside (0, Length), one of the halves is the whole polyline and the
// other contains just the nearer endpoint.
func (pl Polyline) SplitAt(dist float64) (Polyline, Polyline) {
	if len(pl) < 2 {
		return pl, pl
	}
	total := pl.Length()
	if dist <= 0 {
		return Polyline{pl[0]}, pl
	}
	if dist >= total {
		return pl, Polyline{pl[len(pl)-1]}
	}
	remaining := dist
	first := Polyline{pl[0]}
	for i := 1; i < len(pl); i++ {
		segLen := Distance(pl[i-1], pl[i])
		if remaining < segLen {
			split := Lerp(pl[i-1], pl[i], remaining/segLen)
			first = append(first, split)
			second := make(Polyline, 0, len(pl)-i+1)
			second = append(second, split)
			second = append(second, pl[i:]...)
			return first, second
		}
		remaining -= segLen
		first = append(first, pl[i])
	}
	return first, Polyline{pl[len(pl)-1]}
}
