package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Shenzhen city centre, the paper's evaluation city.
var shenzhen = Point{Lat: 22.5431, Lng: 114.0579}

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // metres
		tol  float64 // relative tolerance
	}{
		{"same point", shenzhen, shenzhen, 0, 0},
		{"shenzhen to hongkong", shenzhen, Point{22.3193, 114.1694}, 27500, 0.05},
		{"one degree lat at equator", Point{0, 0}, Point{1, 0}, 111195, 0.001},
		{"one degree lng at equator", Point{0, 0}, Point{0, 1}, 111195, 0.001},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Haversine(tc.a, tc.b)
			if tc.want == 0 {
				if got != 0 {
					t.Fatalf("Haversine = %v, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-tc.want) / tc.want; rel > tc.tol {
				t.Fatalf("Haversine = %v, want %v (+-%.1f%%)", got, tc.want, tc.tol*100)
			}
		})
	}
}

func TestDistanceMatchesHaversineAtCityScale(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Offset(shenzhen, rng.Float64()*40000-20000, rng.Float64()*40000-20000)
		b := Offset(shenzhen, rng.Float64()*40000-20000, rng.Float64()*40000-20000)
		h := Haversine(a, b)
		e := Distance(a, b)
		if h < 1 {
			continue
		}
		if rel := math.Abs(h-e) / h; rel > 0.002 {
			t.Fatalf("equirectangular diverges: a=%v b=%v haversine=%v equirect=%v rel=%v", a, b, h, e, rel)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(dlat1, dlng1, dlat2, dlng2 float64) bool {
		a := Point{Lat: 22 + math.Mod(math.Abs(dlat1), 1), Lng: 114 + math.Mod(math.Abs(dlng1), 1)}
		b := Point{Lat: 22 + math.Mod(math.Abs(dlat2), 1), Lng: 114 + math.Mod(math.Abs(dlng2), 1)}
		return math.Abs(Distance(a, b)-Distance(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	for _, d := range []struct{ e, n float64 }{{100, 0}, {0, 100}, {-250, 400}, {1234, -987}} {
		p := Offset(shenzhen, d.e, d.n)
		want := math.Hypot(d.e, d.n)
		got := Distance(shenzhen, p)
		if math.Abs(got-want) > want*0.01+0.5 {
			t.Fatalf("Offset(%v,%v): distance %v, want ~%v", d.e, d.n, got, want)
		}
	}
}

func TestMBRBasics(t *testing.T) {
	var m MBR
	if !m.Empty() {
		t.Fatal("zero MBR should be empty")
	}
	if m.Contains(shenzhen) {
		t.Fatal("empty MBR should contain nothing")
	}
	m.Expand(shenzhen)
	if m.Empty() || !m.Contains(shenzhen) {
		t.Fatal("after Expand, MBR should contain the point")
	}
	p2 := Offset(shenzhen, 1000, 1000)
	m.Expand(p2)
	if !m.Contains(Lerp(shenzhen, p2, 0.5)) {
		t.Fatal("MBR should contain midpoint of its corners")
	}
	if m.Area() <= 0 {
		t.Fatal("non-degenerate MBR should have positive area")
	}
}

func TestMBRIntersects(t *testing.T) {
	a := NewMBR(Point{0, 0}, Point{2, 2})
	b := NewMBR(Point{1, 1}, Point{3, 3})
	c := NewMBR(Point{5, 5}, Point{6, 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Fatal("overlapping MBRs should intersect")
	}
	if a.Intersects(c) {
		t.Fatal("disjoint MBRs should not intersect")
	}
	var empty MBR
	if a.Intersects(empty) || empty.Intersects(a) {
		t.Fatal("empty MBR intersects nothing")
	}
	// Touching edges count as intersecting.
	d := NewMBR(Point{2, 2}, Point{4, 4})
	if !a.Intersects(d) {
		t.Fatal("edge-touching MBRs should intersect")
	}
}

func TestMBRContainsMBR(t *testing.T) {
	outer := NewMBR(Point{0, 0}, Point{10, 10})
	inner := NewMBR(Point{2, 2}, Point{3, 3})
	if !outer.ContainsMBR(inner) {
		t.Fatal("outer should contain inner")
	}
	if inner.ContainsMBR(outer) {
		t.Fatal("inner should not contain outer")
	}
	if !outer.ContainsMBR(outer) {
		t.Fatal("MBR should contain itself")
	}
}

func TestMBRUnionIntersection(t *testing.T) {
	a := NewMBR(Point{0, 0}, Point{2, 2})
	b := NewMBR(Point{1, 1}, Point{3, 3})
	u := a.Union(b)
	if !u.ContainsMBR(a) || !u.ContainsMBR(b) {
		t.Fatal("union must contain both inputs")
	}
	x := a.Intersection(b)
	if x.Empty() {
		t.Fatal("intersection of overlapping MBRs should be non-empty")
	}
	if x.MinLat != 1 || x.MaxLat != 2 {
		t.Fatalf("intersection lat range = [%v,%v], want [1,2]", x.MinLat, x.MaxLat)
	}
	c := NewMBR(Point{9, 9}, Point{10, 10})
	if !a.Intersection(c).Empty() {
		t.Fatal("intersection of disjoint MBRs should be empty")
	}
}

func TestMBRUnionProperties(t *testing.T) {
	f := func(a1, a2, b1, b2, c1, c2, d1, d2 float64) bool {
		norm := func(v float64) float64 { return math.Mod(math.Abs(v), 10) }
		a := NewMBR(Point{norm(a1), norm(a2)}, Point{norm(b1), norm(b2)})
		b := NewMBR(Point{norm(c1), norm(c2)}, Point{norm(d1), norm(d2)})
		u1 := a.Union(b)
		u2 := b.Union(a)
		return u1 == u2 && u1.ContainsMBR(a) && u1.ContainsMBR(b) &&
			u1.Area() >= a.Area() && u1.Area() >= b.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMBRBuffer(t *testing.T) {
	m := NewMBR(shenzhen, Offset(shenzhen, 1000, 1000))
	buf := m.Buffer(500)
	if !buf.ContainsMBR(m) {
		t.Fatal("buffered MBR must contain the original")
	}
	// The buffered edge should be ~500 m outside.
	d := Distance(Point{Lat: m.MinLat, Lng: m.MinLng}, Point{Lat: buf.MinLat, Lng: m.MinLng})
	if math.Abs(d-500) > 50 {
		t.Fatalf("buffer expanded by %v m, want ~500", d)
	}
}

func TestMBRDistanceTo(t *testing.T) {
	m := NewMBR(shenzhen, Offset(shenzhen, 1000, 1000))
	if d := m.DistanceTo(m.Center()); d != 0 {
		t.Fatalf("distance from inside point = %v, want 0", d)
	}
	outside := Offset(shenzhen, -300, 500)
	d := m.DistanceTo(outside)
	if math.Abs(d-300) > 15 {
		t.Fatalf("distance from outside point = %v, want ~300", d)
	}
}

func TestPolylineLength(t *testing.T) {
	pl := Polyline{
		shenzhen,
		Offset(shenzhen, 1000, 0),
		Offset(shenzhen, 1000, 1000),
	}
	got := pl.Length()
	if math.Abs(got-2000) > 20 {
		t.Fatalf("Length = %v, want ~2000", got)
	}
	if (Polyline{}).Length() != 0 || (Polyline{shenzhen}).Length() != 0 {
		t.Fatal("degenerate polylines have zero length")
	}
}

func TestPolylinePointAt(t *testing.T) {
	pl := Polyline{shenzhen, Offset(shenzhen, 1000, 0)}
	mid := pl.PointAt(500)
	if d := Distance(shenzhen, mid); math.Abs(d-500) > 10 {
		t.Fatalf("PointAt(500) is %v m from start, want ~500", d)
	}
	if pl.PointAt(-5) != pl[0] {
		t.Fatal("PointAt clamps below to start")
	}
	end := pl.PointAt(99999)
	if Distance(end, pl[1]) > 1 {
		t.Fatal("PointAt clamps above to end")
	}
}

func TestPolylineProject(t *testing.T) {
	pl := Polyline{shenzhen, Offset(shenzhen, 1000, 0)}
	// A point 200 m north of the 400 m mark.
	q := Offset(shenzhen, 400, 200)
	closest, dist, along := pl.Project(q)
	if math.Abs(dist-200) > 10 {
		t.Fatalf("Project distance = %v, want ~200", dist)
	}
	if math.Abs(along-400) > 10 {
		t.Fatalf("Project along = %v, want ~400", along)
	}
	if d := Distance(closest, Offset(shenzhen, 400, 0)); d > 10 {
		t.Fatalf("projected point off by %v m", d)
	}
}

func TestPolylineProjectBeyondEnds(t *testing.T) {
	pl := Polyline{shenzhen, Offset(shenzhen, 1000, 0)}
	before := Offset(shenzhen, -300, 0)
	_, dist, along := pl.Project(before)
	if math.Abs(dist-300) > 10 || along > 5 {
		t.Fatalf("projection before start: dist=%v along=%v", dist, along)
	}
	after := Offset(shenzhen, 1300, 0)
	_, dist, along = pl.Project(after)
	if math.Abs(dist-300) > 10 || math.Abs(along-1000) > 10 {
		t.Fatalf("projection past end: dist=%v along=%v", dist, along)
	}
}

func TestPolylineSplitAt(t *testing.T) {
	pl := Polyline{
		shenzhen,
		Offset(shenzhen, 1000, 0),
		Offset(shenzhen, 2000, 0),
	}
	a, b := pl.SplitAt(500)
	if math.Abs(a.Length()-500) > 10 {
		t.Fatalf("first half length = %v, want ~500", a.Length())
	}
	if math.Abs(b.Length()-1500) > 15 {
		t.Fatalf("second half length = %v, want ~1500", b.Length())
	}
	if a[len(a)-1] != b[0] {
		t.Fatal("halves must share the split point")
	}
	total := a.Length() + b.Length()
	if math.Abs(total-pl.Length()) > 1 {
		t.Fatalf("split halves length %v != original %v", total, pl.Length())
	}
}

func TestPolylineSplitAtVertex(t *testing.T) {
	pl := Polyline{shenzhen, Offset(shenzhen, 1000, 0), Offset(shenzhen, 2000, 0)}
	a, b := pl.SplitAt(pl.Length() / 2)
	if len(a) < 2 || len(b) < 2 {
		t.Fatalf("split at interior vertex gave halves of %d and %d points", len(a), len(b))
	}
}

func TestPolylineSplitPreservesLengthProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		n := 2 + rng.Intn(8)
		pl := make(Polyline, n)
		pl[0] = shenzhen
		for j := 1; j < n; j++ {
			pl[j] = Offset(pl[j-1], rng.Float64()*500+1, rng.Float64()*500+1)
		}
		total := pl.Length()
		dist := rng.Float64() * total
		a, b := pl.SplitAt(dist)
		if math.Abs(a.Length()+b.Length()-total) > total*0.001+0.1 {
			t.Fatalf("iteration %d: split lengths %v+%v != %v", i, a.Length(), b.Length(), total)
		}
	}
}

func TestPolylineReverse(t *testing.T) {
	pl := Polyline{shenzhen, Offset(shenzhen, 500, 0), Offset(shenzhen, 500, 700)}
	rev := pl.Reverse()
	if rev[0] != pl[2] || rev[2] != pl[0] {
		t.Fatal("Reverse should flip endpoints")
	}
	if math.Abs(rev.Length()-pl.Length()) > 1e-6 {
		t.Fatal("Reverse must preserve length")
	}
}

func TestPointValid(t *testing.T) {
	if !shenzhen.Valid() {
		t.Fatal("shenzhen should be valid")
	}
	for _, p := range []Point{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}} {
		if p.Valid() {
			t.Fatalf("%v should be invalid", p)
		}
	}
}
