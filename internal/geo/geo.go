// Package geo provides the geographic primitives used throughout the
// spatio-temporal reachability system: WGS-84 points, distance functions,
// minimum bounding rectangles (MBRs), and polyline utilities.
//
// All distances are in metres. Latitude and longitude are in decimal
// degrees. For the city-scale extents this system works with (tens of
// kilometres), the equirectangular approximation is accurate to well under
// 0.1% and is used on hot paths; Haversine is available where callers want
// the spherical formula.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the distance functions.
const EarthRadiusMeters = 6_371_000.0

// Point is a WGS-84 coordinate.
type Point struct {
	Lat float64 // latitude in decimal degrees
	Lng float64 // longitude in decimal degrees
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lng)
}

// Valid reports whether the point lies in the legal WGS-84 ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

// Haversine returns the great-circle distance between a and b in metres.
func Haversine(a, b Point) float64 {
	la1 := a.Lat * math.Pi / 180
	la2 := b.Lat * math.Pi / 180
	dla := (b.Lat - a.Lat) * math.Pi / 180
	dlo := (b.Lng - a.Lng) * math.Pi / 180
	s1 := math.Sin(dla / 2)
	s2 := math.Sin(dlo / 2)
	h := s1*s1 + math.Cos(la1)*math.Cos(la2)*s2*s2
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Distance returns the equirectangular-approximation distance between a and
// b in metres. It is within 0.1% of Haversine at city scale and roughly 3x
// cheaper, so it is the default on query hot paths.
func Distance(a, b Point) float64 {
	latMid := (a.Lat + b.Lat) / 2 * math.Pi / 180
	dx := (b.Lng - a.Lng) * math.Pi / 180 * math.Cos(latMid)
	dy := (b.Lat - a.Lat) * math.Pi / 180
	return EarthRadiusMeters * math.Sqrt(dx*dx+dy*dy)
}

// Offset returns the point reached from p by moving dEast metres east and
// dNorth metres north (small-displacement approximation).
func Offset(p Point, dEast, dNorth float64) Point {
	dLat := dNorth / EarthRadiusMeters * 180 / math.Pi
	dLng := dEast / (EarthRadiusMeters * math.Cos(p.Lat*math.Pi/180)) * 180 / math.Pi
	return Point{Lat: p.Lat + dLat, Lng: p.Lng + dLng}
}

// Lerp returns the point a fraction t of the way from a to b, with t
// clamped to [0, 1].
func Lerp(a, b Point, t float64) Point {
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*t,
		Lng: a.Lng + (b.Lng-a.Lng)*t,
	}
}

// MBR is a minimum bounding rectangle in latitude/longitude space.
// The zero value is an "empty" rectangle that contains nothing; extend it
// with Expand or ExpandMBR.
type MBR struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
	nonEmpty       bool
}

// NewMBR returns the MBR spanning the two corner points in either order.
func NewMBR(a, b Point) MBR {
	return MBR{
		MinLat:   math.Min(a.Lat, b.Lat),
		MinLng:   math.Min(a.Lng, b.Lng),
		MaxLat:   math.Max(a.Lat, b.Lat),
		MaxLng:   math.Max(a.Lng, b.Lng),
		nonEmpty: true,
	}
}

// MBROf returns the MBR covering all pts. It returns an empty MBR when pts
// is empty.
func MBROf(pts []Point) MBR {
	var m MBR
	for _, p := range pts {
		m.Expand(p)
	}
	return m
}

// Empty reports whether the rectangle contains no points at all.
func (m MBR) Empty() bool { return !m.nonEmpty }

// Expand grows the rectangle to include p.
func (m *MBR) Expand(p Point) {
	if !m.nonEmpty {
		*m = NewMBR(p, p)
		return
	}
	m.MinLat = math.Min(m.MinLat, p.Lat)
	m.MinLng = math.Min(m.MinLng, p.Lng)
	m.MaxLat = math.Max(m.MaxLat, p.Lat)
	m.MaxLng = math.Max(m.MaxLng, p.Lng)
}

// ExpandMBR grows the rectangle to include all of o.
func (m *MBR) ExpandMBR(o MBR) {
	if o.Empty() {
		return
	}
	m.Expand(Point{Lat: o.MinLat, Lng: o.MinLng})
	m.Expand(Point{Lat: o.MaxLat, Lng: o.MaxLng})
}

// Contains reports whether p lies inside or on the boundary of m.
func (m MBR) Contains(p Point) bool {
	return m.nonEmpty &&
		p.Lat >= m.MinLat && p.Lat <= m.MaxLat &&
		p.Lng >= m.MinLng && p.Lng <= m.MaxLng
}

// Intersects reports whether the two rectangles share any point.
func (m MBR) Intersects(o MBR) bool {
	if m.Empty() || o.Empty() {
		return false
	}
	return m.MinLat <= o.MaxLat && o.MinLat <= m.MaxLat &&
		m.MinLng <= o.MaxLng && o.MinLng <= m.MaxLng
}

// ContainsMBR reports whether o lies entirely within m.
func (m MBR) ContainsMBR(o MBR) bool {
	if m.Empty() || o.Empty() {
		return false
	}
	return o.MinLat >= m.MinLat && o.MaxLat <= m.MaxLat &&
		o.MinLng >= m.MinLng && o.MaxLng <= m.MaxLng
}

// Center returns the midpoint of the rectangle.
func (m MBR) Center() Point {
	return Point{Lat: (m.MinLat + m.MaxLat) / 2, Lng: (m.MinLng + m.MaxLng) / 2}
}

// Area returns the rectangle's area in square degrees. It is only used for
// R-tree split heuristics, where relative comparisons suffice.
func (m MBR) Area() float64 {
	if m.Empty() {
		return 0
	}
	return (m.MaxLat - m.MinLat) * (m.MaxLng - m.MinLng)
}

// Margin returns the rectangle's half-perimeter in degrees (an R* split
// heuristic quantity).
func (m MBR) Margin() float64 {
	if m.Empty() {
		return 0
	}
	return (m.MaxLat - m.MinLat) + (m.MaxLng - m.MinLng)
}

// Union returns the smallest MBR containing both m and o.
func (m MBR) Union(o MBR) MBR {
	out := m
	out.ExpandMBR(o)
	return out
}

// Intersection returns the overlapping region of m and o, or an empty MBR
// when they do not intersect.
func (m MBR) Intersection(o MBR) MBR {
	if !m.Intersects(o) {
		return MBR{}
	}
	return MBR{
		MinLat:   math.Max(m.MinLat, o.MinLat),
		MinLng:   math.Max(m.MinLng, o.MinLng),
		MaxLat:   math.Min(m.MaxLat, o.MaxLat),
		MaxLng:   math.Min(m.MaxLng, o.MaxLng),
		nonEmpty: true,
	}
}

// Enlargement returns how much m's area would grow to also cover o.
func (m MBR) Enlargement(o MBR) float64 {
	return m.Union(o).Area() - m.Area()
}

// Buffer returns m grown by approximately meters on every side.
func (m MBR) Buffer(meters float64) MBR {
	if m.Empty() {
		return m
	}
	dLat := meters / EarthRadiusMeters * 180 / math.Pi
	cosLat := math.Cos(m.Center().Lat * math.Pi / 180)
	if cosLat < 0.01 {
		cosLat = 0.01
	}
	dLng := meters / (EarthRadiusMeters * cosLat) * 180 / math.Pi
	return MBR{
		MinLat:   m.MinLat - dLat,
		MinLng:   m.MinLng - dLng,
		MaxLat:   m.MaxLat + dLat,
		MaxLng:   m.MaxLng + dLng,
		nonEmpty: true,
	}
}

// DistanceTo returns the distance in metres from p to the nearest point of
// the rectangle (zero when p is inside).
func (m MBR) DistanceTo(p Point) float64 {
	if m.Empty() {
		return math.Inf(1)
	}
	nearest := Point{
		Lat: clamp(p.Lat, m.MinLat, m.MaxLat),
		Lng: clamp(p.Lng, m.MinLng, m.MaxLng),
	}
	return Distance(p, nearest)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
