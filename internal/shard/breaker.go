package shard

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Per-shard circuit breakers: the overload-protection layer between the
// scatter-gather executor and a sick shard. A shard whose recent calls
// keep failing (errors, panics, budget expiries) trips its breaker open;
// while open, scatter and gather short-circuit the shard into the
// existing ShardError path — degraded coverage under partial-results,
// an immediate typed failure otherwise — instead of paying the budget
// timeout on every query. After a cooldown the breaker half-opens and
// admits exactly one probe call; the probe's outcome decides between
// closing (healthy again) and re-opening for another cooldown.
//
// The breaker's rolling outcome window doubles as the latency record
// hedged verification uses for its quantile trigger, so durations are
// recorded even while the state machine is disabled.

// ErrBreakerOpen is the cause on a ShardError for a shard that was
// short-circuited by its open circuit breaker rather than called.
var ErrBreakerOpen = errors.New("shard: circuit breaker open")

// BreakerConfig tunes the per-shard circuit breakers. The zero value
// leaves breakers disabled (every call passes through); enabling with
// zero fields uses the defaults noted per field.
type BreakerConfig struct {
	// Enabled turns the breaker state machine on.
	Enabled bool
	// Window is the rolling outcome window per shard (default 16).
	Window int
	// FailureRatio is the failure fraction over the window that trips
	// the breaker open (default 0.5).
	FailureRatio float64
	// MinSamples is the minimum outcomes in the window before the ratio
	// is trusted (default 4).
	MinSamples int
	// Cooldown is how long an open breaker rejects before half-opening
	// to probe (default 2s).
	Cooldown time.Duration
}

func (cfg BreakerConfig) withDefaults() BreakerConfig {
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.FailureRatio <= 0 {
		cfg.FailureRatio = 0.5
	}
	if cfg.MinSamples <= 0 {
		cfg.MinSamples = 4
	}
	if cfg.MinSamples > cfg.Window {
		cfg.MinSamples = cfg.Window
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 2 * time.Second
	}
	return cfg
}

// BreakerState is one breaker's position in the state machine.
type BreakerState int

const (
	// BreakerClosed: calls pass through; outcomes feed the window.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: one probe call is in (or awaiting) flight; all
	// other calls short-circuit.
	BreakerHalfOpen
	// BreakerOpen: every call short-circuits until the cooldown expires.
	BreakerOpen
)

// String names the state for health probes and metrics labels.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half_open"
	case BreakerOpen:
		return "open"
	}
	return "?"
}

type breakerOutcome struct {
	ok    bool
	durNS int64
}

// breaker is one shard's state machine plus rolling outcome window.
type breaker struct {
	mu       sync.Mutex
	state    BreakerState
	ring     []breakerOutcome
	idx, n   int
	openedAt time.Time
	probing  bool // a half-open probe slot is granted and unresolved
	opens    atomic.Int64
	shorts   atomic.Int64
}

func (b *breaker) reset() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.idx, b.n = 0, 0
	b.probing = false
	b.mu.Unlock()
}

// breakerTable holds every shard's breaker, shared by all cluster views
// like the fault and health tables.
type breakerTable struct {
	mu   sync.Mutex // guards cfg
	cfg  BreakerConfig
	brks []*breaker
}

func newBreakerTable(k int, cfg BreakerConfig) *breakerTable {
	t := &breakerTable{cfg: cfg.withDefaults(), brks: make([]*breaker, k)}
	for i := range t.brks {
		t.brks[i] = &breaker{}
	}
	return t
}

func (t *breakerTable) config() BreakerConfig {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg
}

// configure swaps the config and resets every breaker to closed with an
// empty window — old outcomes were judged under the old thresholds.
func (t *breakerTable) configure(cfg BreakerConfig) {
	cfg = cfg.withDefaults()
	t.mu.Lock()
	t.cfg = cfg
	t.mu.Unlock()
	for _, b := range t.brks {
		b.reset()
	}
}

// allow reports whether a call to the shard may proceed. probe marks the
// single half-open trial call; its outcome (record) or abandonment
// (cancel) must be reported to free the slot.
func (t *breakerTable) allow(sh int) (ok, probe bool) {
	cfg := t.config()
	if !cfg.Enabled {
		return true, false
	}
	b := t.brks[sh]
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if time.Since(b.openedAt) < cfg.Cooldown {
			b.shorts.Add(1)
			return false, false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, true
	case BreakerHalfOpen:
		if b.probing {
			b.shorts.Add(1)
			return false, false
		}
		b.probing = true
		return true, true
	}
	return true, false
}

// record feeds one genuine call outcome. Durations are recorded even
// with the state machine disabled — they are the latency window hedging
// triggers on. A probe outcome settles the half-open state: success
// closes the breaker (and forgets the sick window), failure re-opens it
// for another cooldown. Failures observed while not closed (in-flight
// stragglers from before the trip) don't re-trip; the probe decides.
func (t *breakerTable) record(sh int, ok bool, dur time.Duration, probe bool) {
	cfg := t.config()
	b := t.brks[sh]
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.ring) != cfg.Window {
		b.ring = make([]breakerOutcome, cfg.Window)
		b.idx, b.n = 0, 0
	}
	b.ring[b.idx] = breakerOutcome{ok: ok, durNS: int64(dur)}
	b.idx = (b.idx + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	if !cfg.Enabled {
		return
	}
	if probe {
		b.probing = false
		if ok {
			b.state = BreakerClosed
			b.idx, b.n = 0, 0
		} else {
			b.state = BreakerOpen
			b.openedAt = time.Now()
			b.opens.Add(1)
		}
		return
	}
	if b.state != BreakerClosed || ok {
		return
	}
	fails := 0
	for i := 0; i < b.n; i++ {
		if !b.ring[i].ok {
			fails++
		}
	}
	if b.n >= cfg.MinSamples && float64(fails)/float64(b.n) >= cfg.FailureRatio {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		b.opens.Add(1)
	}
}

// cancel releases a granted half-open probe slot without an outcome —
// the call was collaterally cancelled (caller context, fail-fast
// cancellation) and says nothing about the shard's health.
func (t *breakerTable) cancel(sh int, probe bool) {
	if !probe {
		return
	}
	b := t.brks[sh]
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

func (t *breakerTable) state(sh int) BreakerState {
	b := t.brks[sh]
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// successQuantile returns the q-quantile of the successful call
// durations in the shard's window, or 0 with fewer than min successes —
// the signal hedged verification triggers on.
func (t *breakerTable) successQuantile(sh int, q float64, min int) time.Duration {
	b := t.brks[sh]
	b.mu.Lock()
	durs := make([]int64, 0, b.n)
	for i := 0; i < b.n; i++ {
		if b.ring[i].ok {
			durs = append(durs, b.ring[i].durNS)
		}
	}
	b.mu.Unlock()
	if len(durs) < min {
		return 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	i := int(q * float64(len(durs)-1))
	return time.Duration(durs[i])
}

func (t *breakerTable) counters() (opens, shorts int64) {
	for _, b := range t.brks {
		opens += b.opens.Load()
		shorts += b.shorts.Load()
	}
	return opens, shorts
}

// ConfigureBreakers applies cfg to every shard's breaker, resetting them
// to closed. Shared by all views of the cluster.
func (c *Cluster) ConfigureBreakers(cfg BreakerConfig) { c.brk.configure(cfg) }

// BreakerConfigured returns the active breaker config.
func (c *Cluster) BreakerConfigured() BreakerConfig { return c.brk.config() }

// BreakerState reports one shard's breaker state.
func (c *Cluster) BreakerState(sh int) BreakerState { return c.brk.state(sh) }

// Resilience aggregates the cluster's self-protection counters.
type Resilience struct {
	// BreakerOpens counts closed/half-open → open transitions.
	BreakerOpens int64
	// BreakerShortCircuits counts calls rejected by an open breaker.
	BreakerShortCircuits int64
	// HedgesLaunched counts hedge attempts started.
	HedgesLaunched int64
	// HedgeWins counts hedges that finished before their primary.
	HedgeWins int64
}

// Resilience snapshots the cluster's self-protection counters.
func (c *Cluster) Resilience() Resilience {
	opens, shorts := c.brk.counters()
	return Resilience{
		BreakerOpens:         opens,
		BreakerShortCircuits: shorts,
		HedgesLaunched:       c.hedge.launched.Load(),
		HedgeWins:            c.hedge.wins.Load(),
	}
}
