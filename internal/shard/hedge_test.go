package shard

import (
	"runtime"
	"testing"
	"time"

	"streach/internal/core"
)

func hedgeDefaultsCheck(t *testing.T, k, wantOutstanding int) {
	t.Helper()
	cfg := HedgeConfig{Enabled: true}.withDefaults(k)
	if cfg.Trigger != 25*time.Millisecond {
		t.Fatalf("k=%d: trigger default = %v", k, cfg.Trigger)
	}
	if cfg.MaxOutstanding != wantOutstanding {
		t.Fatalf("k=%d: MaxOutstanding default = %d, want %d", k, cfg.MaxOutstanding, wantOutstanding)
	}
}

func TestHedgeDefaults(t *testing.T) {
	hedgeDefaultsCheck(t, 8, 4)
	hedgeDefaultsCheck(t, 1, 1) // never zero
}

// TestHedgeBudget: the cluster-wide hedge budget is a hard bound —
// acquires past MaxOutstanding fail until a slot is released.
func TestHedgeBudget(t *testing.T) {
	h := newHedgeState(4)
	h.configure(HedgeConfig{Enabled: true, MaxOutstanding: 2}, 4)
	if !h.tryAcquire() || !h.tryAcquire() {
		t.Fatal("budget refused a slot it had")
	}
	if h.tryAcquire() {
		t.Fatal("budget exceeded MaxOutstanding")
	}
	h.release()
	if !h.tryAcquire() {
		t.Fatal("released slot not reusable")
	}
}

// TestHedgeTriggerTracksQuantile: the effective trigger is the config
// floor until the shard's window holds enough successes, then 2× its
// p95 if that is larger.
func TestHedgeTriggerTracksQuantile(t *testing.T) {
	f := getFixture(t)
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := HedgeConfig{Enabled: true, Trigger: 10 * time.Millisecond}.withDefaults(4)
	if got := c.hedgeTrigger(0, cfg); got != 10*time.Millisecond {
		t.Fatalf("empty-window trigger = %v, want the 10ms floor", got)
	}
	for i := 0; i < 8; i++ {
		c.brk.record(0, true, 40*time.Millisecond, false)
	}
	if got := c.hedgeTrigger(0, cfg); got != 80*time.Millisecond {
		t.Fatalf("trigger with p95=40ms = %v, want 80ms", got)
	}
}

// TestHedgeHealsHungShard is the chaos half of the hedging contract: a
// scatter slice hung by an injected fault is overtaken by its hedge
// (which models a retry against a healthy replica and so skips the
// fault), the query succeeds without degradation, and the committed
// region is bit-identical to unsharded execution. The loser is reaped:
// no goroutine survives and every pooled scratch buffer comes back.
func TestHedgeHealsHungShard(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	eng, err := core.NewEngine(f.st, f.con, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	before := runtime.NumGoroutine()

	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.SetHedging(HedgeConfig{Enabled: true, Trigger: 2 * time.Millisecond})
	if err := c.InjectFault(1, FaultHang); err != nil {
		t.Fatal(err)
	}

	pl, err := c.PlanReach(bg, q)
	if err != nil {
		t.Fatalf("hedge did not heal the hung scatter: %v", err)
	}
	// The gather path is not hedged; clear the fault so ResultAt reads
	// the healthy committed values (the hang only afflicted the scatter).
	if err := c.InjectFault(1, FaultNone); err != nil {
		t.Fatal(err)
	}
	for _, prob := range probs {
		got, err := pl.ResultAt(bg, prob)
		if err != nil {
			t.Fatal(err)
		}
		if pl.Degraded() != nil {
			t.Fatalf("hedged answer degraded: %+v", pl.Degraded())
		}
		qq := q
		qq.Prob = prob
		want, err := eng.SQMB(bg, qq)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "hedged", got, want)
	}
	pl.Close()

	r := c.Resilience()
	if r.HedgesLaunched == 0 || r.HedgeWins == 0 {
		t.Fatalf("resilience = %+v, want launched and winning hedges", r)
	}
	for i, st := range c.ScratchStats() {
		if !st.Balanced() {
			t.Fatalf("engine %d scratch leaked after hedged scatter: %+v", i, st)
		}
	}

	// The cancelled primary (hung on the injected fault) must be reaped
	// before verifyShardHedged returns; nothing may linger.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines grew %d -> %d after hedged query; stacks:\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHedgeRaceIsDeterministic: with an aggressive trigger every shard
// hedges against a healthy primary; whichever attempt wins, the
// committed probabilities are a property of the data, so repeated runs
// and the unsharded engine agree bit-for-bit — and the losing attempts
// return their scratch. Run under -race in CI, this is also the
// data-race proof for the compute/commit split.
func TestHedgeRaceIsDeterministic(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	eng, err := core.NewEngine(f.st, f.con, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.SetHedging(HedgeConfig{Enabled: true, Trigger: time.Nanosecond, MaxOutstanding: 4})

	for round := 0; round < 3; round++ {
		pl, err := c.PlanReach(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, prob := range probs {
			got, err := pl.ResultAt(bg, prob)
			if err != nil {
				t.Fatal(err)
			}
			qq := q
			qq.Prob = prob
			want, err := eng.SQMB(bg, qq)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "hedge-race", got, want)
		}
		pl.Close()
	}
	for i, st := range c.ScratchStats() {
		if !st.Balanced() {
			t.Fatalf("engine %d scratch leaked across hedge races: %+v", i, st)
		}
	}
}
