// Package shard implements the sharded execution layer: a spatial
// partitioner that assigns road segments to K shards, and a Cluster that
// owns one query engine per shard over shard-local Con-Index/ST-Index
// slices and answers queries by scatter-gather — one logical plan is
// built once, shipped to every shard for the work it owns, and the
// per-shard partial regions are merged into an answer bit-identical to
// unsharded execution (see core.MergeRegions and DESIGN.md §10).
package shard

import (
	"fmt"
	"math"
	"sort"

	"streach/internal/bitset"
	"streach/internal/roadnet"
)

// Partition is a spatial assignment of every road segment to exactly one
// of K shards, plus the replicated boundary metadata every shard needs
// to reason about its edges: which segments have a neighbour in another
// shard. The assignment is grid-based — segment midpoints bucket into a
// serpentine-ordered cell grid, and contiguous cell runs are cut into K
// balanced groups — so each shard is a spatially coherent tile rather
// than a random scatter, keeping bounding-region row traffic local for
// queries whose regions fit inside one tile.
type Partition struct {
	k     int
	owner []int32
	owned []bitset.Set
	// boundary marks segments with at least one graph neighbour owned by
	// a different shard — the metadata replicated to every shard.
	boundary bitset.Set
	counts   []int
	bcounts  []int
}

// PartitionGrid builds a balanced grid partition of the network into k
// shards. k is clamped to the segment count; k <= 0 is an error. The
// partition is deterministic for a given network and k.
func PartitionGrid(net *roadnet.Network, k int) (*Partition, error) {
	if k <= 0 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", k)
	}
	n := net.NumSegments()
	if n == 0 {
		return nil, fmt.Errorf("shard: empty network")
	}
	if k > n {
		k = n
	}

	// Bucket segments by midpoint into a cell grid fine enough that the
	// balancing cut has slack (≈4 cells per shard along each run).
	g := int(math.Ceil(math.Sqrt(float64(4 * k))))
	if g < 1 {
		g = 1
	}
	b := net.Bounds()
	spanLat := b.MaxLat - b.MinLat
	spanLng := b.MaxLng - b.MinLng
	cellOf := func(seg roadnet.SegmentID) int {
		p := net.Segment(seg).Midpoint()
		row, col := 0, 0
		if spanLat > 0 {
			row = int(float64(g) * (p.Lat - b.MinLat) / spanLat)
		}
		if spanLng > 0 {
			col = int(float64(g) * (p.Lng - b.MinLng) / spanLng)
		}
		row, col = clamp(row, g-1), clamp(col, g-1)
		// Serpentine order keeps consecutive cells spatially adjacent, so
		// a contiguous cell run is a coherent tile.
		if row%2 == 1 {
			col = g - 1 - col
		}
		return row*g + col
	}

	cells := make([]int, n)
	order := make([]roadnet.SegmentID, n)
	for i := range order {
		order[i] = roadnet.SegmentID(i)
		cells[i] = cellOf(roadnet.SegmentID(i))
	}
	sort.Slice(order, func(i, j int) bool {
		ci, cj := cells[order[i]], cells[order[j]]
		if ci != cj {
			return ci < cj
		}
		return order[i] < order[j]
	})

	p := &Partition{
		k:        k,
		owner:    make([]int32, n),
		owned:    make([]bitset.Set, k),
		boundary: bitset.New(n),
		counts:   make([]int, k),
		bcounts:  make([]int, k),
	}
	for s := range p.owned {
		p.owned[s] = bitset.New(n)
	}
	// Cut the serpentine segment order into k balanced contiguous runs:
	// segment i of the order goes to shard i*k/n.
	for i, seg := range order {
		sh := i * k / n
		p.owner[seg] = int32(sh)
		p.owned[sh].Add(int(seg))
		p.counts[sh]++
	}
	// Boundary metadata: a segment whose incoming or outgoing neighbour
	// lives in another shard.
	for seg := 0; seg < n; seg++ {
		sh := p.owner[seg]
		cross := false
		for _, nb := range net.Outgoing(roadnet.SegmentID(seg)) {
			if p.owner[nb] != sh {
				cross = true
				break
			}
		}
		if !cross {
			for _, nb := range net.Incoming(roadnet.SegmentID(seg)) {
				if p.owner[nb] != sh {
					cross = true
					break
				}
			}
		}
		if cross {
			p.boundary.Add(seg)
			p.bcounts[sh]++
		}
	}
	return p, nil
}

func clamp(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// Shards returns the shard count K.
func (p *Partition) Shards() int { return p.k }

// Owner returns the shard owning seg.
func (p *Partition) Owner(seg roadnet.SegmentID) int { return int(p.owner[seg]) }

// Owned returns shard sh's membership bitset. Callers must not modify it.
func (p *Partition) Owned(sh int) bitset.Set { return p.owned[sh] }

// Boundary returns the cross-shard boundary bitset (segments with a
// neighbour in another shard). Callers must not modify it.
func (p *Partition) Boundary() bitset.Set { return p.boundary }

// Size returns how many segments shard sh owns.
func (p *Partition) Size(sh int) int { return p.counts[sh] }

// BoundarySize returns how many of shard sh's segments sit on a
// cross-shard boundary.
func (p *Partition) BoundarySize(sh int) int { return p.bcounts[sh] }
