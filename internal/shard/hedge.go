package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/core"
)

// Hedged scatter verification: when a shard's verify slice runs past a
// latency-quantile trigger, a hedge attempt races it over the same
// positions — modelling a retry against a healthy replica of the slice,
// so the hedge path skips the shard's injected fault. Both attempts
// compute into private buffers (core.VerifyPositions); the first
// success commits (core.CommitVerified) and cancels the loser, which
// must exit promptly and return its scratch. Probabilities are a
// property of the data, so whichever attempt wins, the committed values
// — and the final region — are bit-identical.
//
// Hedges draw from a cluster-wide budget (MaxOutstanding) so that under
// a genuine overload — every shard slow because the machine is slow —
// hedging cannot double the work and dig the hole deeper: once the
// budget is out, slices run unhedged and the per-shard budget still
// bounds them.

// HedgeConfig tunes hedged scatter verification. The zero value leaves
// hedging disabled; enabling with zero fields uses the defaults noted
// per field.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Trigger is the floor latency before a hedge may launch (default
	// 25ms). The effective trigger is the larger of this and 2× the
	// shard's p95 successful-call latency once enough samples exist.
	Trigger time.Duration
	// MaxOutstanding bounds concurrent hedges cluster-wide (default
	// half the shard count, at least 1).
	MaxOutstanding int
}

func (cfg HedgeConfig) withDefaults(k int) HedgeConfig {
	if cfg.Trigger <= 0 {
		cfg.Trigger = 25 * time.Millisecond
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = k / 2
		if cfg.MaxOutstanding < 1 {
			cfg.MaxOutstanding = 1
		}
	}
	return cfg
}

// hedgeState is the cluster-wide hedge budget and counters, shared by
// every view.
type hedgeState struct {
	mu          sync.Mutex
	cfg         HedgeConfig
	outstanding int
	launched    atomic.Int64
	wins        atomic.Int64
}

func newHedgeState(k int) *hedgeState {
	return &hedgeState{cfg: HedgeConfig{}.withDefaults(k)}
}

func (h *hedgeState) config() HedgeConfig {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cfg
}

func (h *hedgeState) configure(cfg HedgeConfig, k int) {
	h.mu.Lock()
	h.cfg = cfg.withDefaults(k)
	h.mu.Unlock()
}

// tryAcquire claims one hedge slot; callers that got one must release.
func (h *hedgeState) tryAcquire() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.outstanding >= h.cfg.MaxOutstanding {
		return false
	}
	h.outstanding++
	return true
}

func (h *hedgeState) release() {
	h.mu.Lock()
	h.outstanding--
	h.mu.Unlock()
}

// SetHedging applies cfg cluster-wide. Shared by all views.
func (c *Cluster) SetHedging(cfg HedgeConfig) { c.hedge.configure(cfg, c.part.Shards()) }

// HedgeConfigured returns the active hedge config.
func (c *Cluster) HedgeConfigured() HedgeConfig { return c.hedge.config() }

// hedgeTrigger picks the hedge launch latency for one shard: the config
// floor, or 2× the shard's recent p95 success latency when the window
// has enough samples to trust.
func (c *Cluster) hedgeTrigger(sh int, cfg HedgeConfig) time.Duration {
	if q := c.brk.successQuantile(sh, 0.95, 8); 2*q > cfg.Trigger {
		return 2 * q
	}
	return cfg.Trigger
}

// verifyShardHedged runs one shard's scatter slice, racing a hedge
// attempt against the primary if the trigger fires first and the hedge
// budget has a slot. Exactly one attempt commits; the loser is
// cancelled via its context and always reaped before return (no
// goroutine outlives this call). Half-open breaker probes never hedge —
// the probe must measure the primary path.
func (c *Cluster) verifyShardHedged(ctx context.Context, leaf *core.SharedPlan, sh int, eng *core.Engine, pos []int, probe bool) error {
	cfg := c.hedge.config()
	if !cfg.Enabled || probe {
		return c.verifyShard(ctx, leaf, sh, eng, pos)
	}
	if c.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.budget)
		defer cancel()
	}
	type attempt struct {
		vals   []float64
		err    error
		hedged bool
	}
	results := make(chan attempt, 2)
	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	t0 := time.Now()
	go func() {
		vals, err := c.verifyShardVals(primCtx, leaf, sh, eng, pos, false)
		results <- attempt{vals, err, false}
	}()
	timer := time.NewTimer(c.hedgeTrigger(sh, cfg))
	defer timer.Stop()
	var (
		timerC       <-chan time.Time = timer.C
		cancelHedge  context.CancelFunc
		outstanding                   = 1
		won, byHedge bool
		firstErr     error
	)
	for outstanding > 0 {
		select {
		case a := <-results:
			outstanding--
			switch {
			case a.err == nil && !won:
				won, byHedge = true, a.hedged
				leaf.CommitVerified(pos, a.vals)
				cancelPrim()
				if cancelHedge != nil {
					cancelHedge()
				}
			case a.err != nil && firstErr == nil:
				firstErr = a.err
			}
		case <-timerC:
			timerC = nil
			if won || !c.hedge.tryAcquire() {
				continue
			}
			c.hedge.launched.Add(1)
			var hctx context.Context
			hctx, cancelHedge = context.WithCancel(ctx)
			outstanding++
			go func() {
				vals, err := c.verifyShardVals(hctx, leaf, sh, eng, pos, true)
				results <- attempt{vals, err, true}
			}()
		}
	}
	if cancelHedge != nil {
		cancelHedge()
		c.hedge.release()
	}
	if !won {
		if firstErr == nil {
			firstErr = ctx.Err()
		}
		if firstErr == nil {
			firstErr = errors.New("shard: hedged verification produced no result")
		}
		return firstErr
	}
	if byHedge {
		c.hedge.wins.Add(1)
	}
	c.m.verified[sh].Add(int64(len(pos)))
	c.m.verifyNS[sh].Add(time.Since(t0).Nanoseconds())
	return nil
}
