package shard

import "fmt"

// SlotPartition is the temporal sharding dimension: the day's slot axis
// cut into k contiguous ranges balanced by observation density, so the
// rush-hour slots that concentrate real trajectory traffic spread across
// as many shard rows as the quiet night hours, not more.
//
// Each row t *serves* the inclusive slot range [lo_t, hi_t]: a query
// whose window starts in a served slot is answered entirely by that
// row's engines. Because one candidate's verification reads time lists
// across the whole window — segment reachability does not decompose
// over time sub-ranges — a row cannot serve only a window's prefix, so
// each row additionally *holds* an overhang of slots past its served
// range (default one hour's worth). A window that starts in row t and
// ends inside the held range stays on row t; a rarer window reaching
// beyond the overhang falls back to unsharded execution on the planner
// (counted, never wrong).
type SlotPartition struct {
	k        int
	numSlots int
	overhang int
	lo, hi   []int   // served ranges, inclusive, indexed by row
	owner    []int32 // slot -> serving row
	weight   []int64 // served density per row
}

// PartitionSlots cuts numSlots day slots into k contiguous served
// ranges whose cumulative density is as even as a contiguous cut
// allows. density is the per-slot observation weight (see
// stindex.SlotDensity); an all-zero density degrades to a uniform cut.
// overhang is the number of slots each row holds past its served range
// (capped at the end of the day); overhang < 0 selects the default of
// one hour's worth of slots (numSlots/24, min 1). k is clamped to
// [1, numSlots].
func PartitionSlots(density []int64, k, overhang int) (*SlotPartition, error) {
	numSlots := len(density)
	if numSlots == 0 {
		return nil, fmt.Errorf("shard: slot partition needs a non-empty density vector")
	}
	if k < 1 {
		k = 1
	}
	if k > numSlots {
		k = numSlots
	}
	if overhang < 0 {
		overhang = numSlots / 24
		if overhang < 1 {
			overhang = 1
		}
	}
	p := &SlotPartition{
		k:        k,
		numSlots: numSlots,
		overhang: overhang,
		lo:       make([]int, k),
		hi:       make([]int, k),
		owner:    make([]int32, numSlots),
		weight:   make([]int64, k),
	}
	var total int64
	for _, d := range density {
		if d < 0 {
			return nil, fmt.Errorf("shard: negative slot density %d", d)
		}
		total += d
	}
	if total == 0 {
		// No data yet (fresh system, pre-ingest): uniform cut.
		for t := 0; t < k; t++ {
			p.lo[t] = t * numSlots / k
			p.hi[t] = (t+1)*numSlots/k - 1
		}
	} else {
		// Greedy prefix cut: close row t once its cumulative share
		// reaches (t+1)/k of the total, keeping at least one slot for
		// every remaining row.
		row := 0
		var cum int64
		for s := 0; s < numSlots; s++ {
			cum += density[s]
			remainRows := k - row - 1
			remainSlots := numSlots - s - 1
			if row < k-1 && (remainSlots == remainRows ||
				(cum*int64(k) >= total*int64(row+1) && remainSlots >= remainRows)) {
				p.hi[row] = s
				row++
				p.lo[row] = s + 1
			}
		}
		p.hi[k-1] = numSlots - 1
	}
	for t := 0; t < k; t++ {
		for s := p.lo[t]; s <= p.hi[t]; s++ {
			p.owner[s] = int32(t)
			p.weight[t] += density[s]
		}
	}
	return p, nil
}

// Shards returns the number of slot ranges (rows).
func (p *SlotPartition) Shards() int { return p.k }

// NumSlots returns the slot-axis length the partition covers.
func (p *SlotPartition) NumSlots() int { return p.numSlots }

// Overhang returns the held-range overhang in slots.
func (p *SlotPartition) Overhang() int { return p.overhang }

// Served returns row t's served slot range, inclusive.
func (p *SlotPartition) Served(t int) (lo, hi int) { return p.lo[t], p.hi[t] }

// Held returns row t's held slot range: served plus the overhang,
// capped at the end of the day.
func (p *SlotPartition) Held(t int) (lo, hi int) {
	lo, hi = p.lo[t], p.hi[t]+p.overhang
	if hi >= p.numSlots {
		hi = p.numSlots - 1
	}
	return lo, hi
}

// OwnerOf returns the row serving slot (which must be in [0, numSlots)).
func (p *SlotPartition) OwnerOf(slot int) int { return int(p.owner[slot]) }

// Weight returns the summed density of row t's served range.
func (p *SlotPartition) Weight(t int) int64 { return p.weight[t] }
