package shard

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"streach/internal/conindex"
	"streach/internal/core"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
)

var bg = context.Background()

// probs are the four thresholds every equivalence case answers.
var probs = []float64{0.05, 0.2, 0.5, 0.9}

type fixture struct {
	net    *roadnet.Network
	ds     *traj.Dataset
	st     *stindex.Index
	con    *conindex.Index
	center geo.Point
	away   geo.Point
}

var (
	fixOnce sync.Once
	fix     *fixture
	fixErr  error
)

func getFixture(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		raw, err := roadnet.Generate(roadnet.GenerateConfig{
			Origin:        geo.Point{Lat: 22.50, Lng: 114.00},
			Rows:          10,
			Cols:          10,
			SpacingMeters: 1000,
			LocalFraction: 0.4,
			Seed:          21,
		})
		if err != nil {
			fixErr = err
			return
		}
		net, err := roadnet.Resegment(raw, 500)
		if err != nil {
			fixErr = err
			return
		}
		ds, err := traj.Simulate(net, traj.SimConfig{
			Taxis: 150, Days: 6, Profile: traj.DefaultSpeedProfile(), Seed: 22,
			DaySpeedJitter: 0.1,
		})
		if err != nil {
			fixErr = err
			return
		}
		st, err := stindex.Build(net, ds, stindex.Config{SlotSeconds: 300, PoolPages: 512})
		if err != nil {
			fixErr = err
			return
		}
		con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: 300})
		if err != nil {
			fixErr = err
			return
		}
		mid := net.Segment(roadnet.SegmentID(net.NumSegments() / 2)).Midpoint()
		away := net.Segment(roadnet.SegmentID(net.NumSegments() / 4)).Midpoint()
		fix = &fixture{net: net, ds: ds, st: st, con: con, center: mid, away: away}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fix
}

// sameResult asserts everything deterministic about two answers is
// bit-identical: segments, probabilities, starts, and the countable
// metrics — the acceptance contract of sharded execution.
func sameResult(t *testing.T, name string, got, want *core.Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Segments, want.Segments) {
		t.Fatalf("%s: segments differ (%d vs %d)", name, len(got.Segments), len(want.Segments))
	}
	if !reflect.DeepEqual(got.Starts, want.Starts) {
		t.Fatalf("%s: starts differ (%v vs %v)", name, got.Starts, want.Starts)
	}
	if len(got.Probability) != len(want.Probability) {
		t.Fatalf("%s: probability map sizes differ (%d vs %d)",
			name, len(got.Probability), len(want.Probability))
	}
	for s, p := range want.Probability {
		if gp, ok := got.Probability[s]; !ok || gp != p {
			t.Fatalf("%s: probability of %d = %v, want %v", name, s, got.Probability[s], p)
		}
	}
	if got.Metrics.Evaluated != want.Metrics.Evaluated {
		t.Fatalf("%s: evaluated %d, want %d", name, got.Metrics.Evaluated, want.Metrics.Evaluated)
	}
	if got.Metrics.MaxRegion != want.Metrics.MaxRegion || got.Metrics.MinRegion != want.Metrics.MinRegion {
		t.Fatalf("%s: regions (%d, %d), want (%d, %d)", name,
			got.Metrics.MaxRegion, got.Metrics.MinRegion, want.Metrics.MaxRegion, want.Metrics.MinRegion)
	}
	if got.Metrics.ResultSegments != want.Metrics.ResultSegments {
		t.Fatalf("%s: result segments %d, want %d", name, got.Metrics.ResultSegments, want.Metrics.ResultSegments)
	}
	if got.Metrics.RoadKm != want.Metrics.RoadKm {
		t.Fatalf("%s: road km %v, want %v", name, got.Metrics.RoadKm, want.Metrics.RoadKm)
	}
}

// TestClusterMatchesEngine pins the acceptance criterion: sharded
// results are bit-identical to unsharded across every algorithm at four
// thresholds — including a single-shard cluster, which must degenerate
// to exactly the unsharded answer.
func TestClusterMatchesEngine(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	mq := core.MultiQuery{
		Locations: []geo.Point{f.center, f.away},
		Start:     11 * time.Hour, Duration: 10 * time.Minute,
	}

	type algo struct {
		name string
		opts core.Options
		plan func(c *Cluster) (*Plan, error)
		ref  func(e *core.Engine, prob float64) (*core.Result, error)
	}
	algos := []algo{
		{"reach", core.Options{},
			func(c *Cluster) (*Plan, error) { return c.PlanReach(bg, q) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				qq := q
				qq.Prob = prob
				return e.SQMB(bg, qq)
			}},
		{"reach-verifyall", core.Options{VerifyAll: true},
			func(c *Cluster) (*Plan, error) { return c.PlanReach(bg, q) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				qq := q
				qq.Prob = prob
				return e.SQMB(bg, qq)
			}},
		{"reverse", core.Options{},
			func(c *Cluster) (*Plan, error) { return c.PlanReverse(bg, q) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				qq := q
				qq.Prob = prob
				return e.ReverseSQMB(bg, qq)
			}},
		{"multi", core.Options{},
			func(c *Cluster) (*Plan, error) { return c.PlanMulti(bg, mq) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				m := mq
				m.Prob = prob
				return e.MQMB(bg, m)
			}},
		{"multi-nooverlap", core.Options{NoOverlapFilter: true},
			func(c *Cluster) (*Plan, error) { return c.PlanMulti(bg, mq) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				m := mq
				m.Prob = prob
				return e.MQMB(bg, m)
			}},
		{"sequential", core.Options{},
			func(c *Cluster) (*Plan, error) { return c.PlanMultiSequential(bg, mq) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				m := mq
				m.Prob = prob
				return e.SQuerySequential(bg, m)
			}},
		{"es", core.Options{},
			func(c *Cluster) (*Plan, error) { return c.PlanReachES(bg, q) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				qq := q
				qq.Prob = prob
				return e.ES(bg, qq)
			}},
		{"reverse-es", core.Options{},
			func(c *Cluster) (*Plan, error) { return c.PlanReverseES(bg, q) },
			func(e *core.Engine, prob float64) (*core.Result, error) {
				qq := q
				qq.Prob = prob
				return e.ReverseES(bg, qq)
			}},
	}

	for _, k := range []int{1, 4} {
		for _, a := range algos {
			t.Run(a.name, func(t *testing.T) {
				eng, err := core.NewEngine(f.st, f.con, a.opts)
				if err != nil {
					t.Fatal(err)
				}
				c, err := NewCluster(f.st, f.con, a.opts, k)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := a.plan(c)
				if err != nil {
					t.Fatal(err)
				}
				defer pl.Close()
				if !pl.Sharded() {
					t.Fatalf("k=%d %s: plan fell back to unsharded", k, a.name)
				}
				for _, prob := range probs {
					got, err := pl.ResultAt(bg, prob)
					if err != nil {
						t.Fatal(err)
					}
					want, err := a.ref(eng, prob)
					if err != nil {
						t.Fatal(err)
					}
					sameResult(t, a.name, got, want)
				}
			})
		}
	}
}

// TestClusterEarlyStopFallback: the lazy EarlyStop wave cannot scatter;
// the cluster must fall back to planner-local execution and still answer
// bit-identically.
func TestClusterEarlyStopFallback(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	opts := core.Options{EarlyStop: true}
	eng, err := core.NewEngine(f.st, f.con, opts)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(f.st, f.con, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := c.PlanReach(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	if pl.Sharded() {
		t.Fatal("EarlyStop plan should not shard")
	}
	for _, prob := range probs {
		got, err := pl.ResultAt(bg, prob)
		if err != nil {
			t.Fatal(err)
		}
		qq := q
		qq.Prob = prob
		want, err := eng.SQMB(bg, qq)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, "earlystop", got, want)
	}
	if c.PlansFallback() == 0 {
		t.Fatal("fallback counter not incremented")
	}
}

// TestClusterStats: scatter verification must attribute candidates to
// the shards that own them, and bounding rows to the slices that served
// them.
func TestClusterStats(t *testing.T) {
	f := getFixture(t)
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	pl, err := c.PlanReach(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	if _, err := pl.ResultAt(bg, 0.2); err != nil {
		t.Fatal(err)
	}
	var rows, verified int64
	totalSegs := 0
	for _, s := range c.Stats() {
		rows += s.RowsFetched
		verified += s.CandidatesVerified
		totalSegs += s.Segments
	}
	if totalSegs != f.net.NumSegments() {
		t.Fatalf("partition covers %d segments, want %d", totalSegs, f.net.NumSegments())
	}
	if rows == 0 {
		t.Fatal("no Con-Index rows routed through shard slices")
	}
	if verified == 0 {
		t.Fatal("no candidates scatter-verified")
	}
	if c.PlansSharded() != 1 {
		t.Fatalf("PlansSharded = %d, want 1", c.PlansSharded())
	}
}
