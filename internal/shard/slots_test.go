package shard

import "testing"

func TestPartitionSlotsUniform(t *testing.T) {
	density := make([]int64, 288) // all zero: fresh system
	p, err := PartitionSlots(density, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 || p.NumSlots() != 288 {
		t.Fatalf("got %d shards over %d slots", p.Shards(), p.NumSlots())
	}
	if p.Overhang() != 12 { // 288/24 = one hour of 5-minute slots
		t.Fatalf("default overhang = %d, want 12", p.Overhang())
	}
	for tt := 0; tt < 4; tt++ {
		lo, hi := p.Served(tt)
		if lo != tt*72 || hi != tt*72+71 {
			t.Fatalf("row %d serves [%d,%d], want uniform [%d,%d]", tt, lo, hi, tt*72, tt*72+71)
		}
	}
}

func TestPartitionSlotsDensityBalance(t *testing.T) {
	// All weight concentrated in a morning rush block: the cut must
	// split the hot block across rows instead of handing it to one.
	density := make([]int64, 288)
	for s := 96; s < 120; s++ { // 8h-10h
		density[s] = 1000
	}
	p, err := PartitionSlots(density, 4, -1)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for tt := 0; tt < 4; tt++ {
		total += p.Weight(tt)
	}
	for tt := 0; tt < 4; tt++ {
		if w := p.Weight(tt); w < total/8 || w > total/2 {
			t.Fatalf("row %d weight %d of %d: hot block not balanced", tt, w, total)
		}
	}
}

func TestPartitionSlotsInvariants(t *testing.T) {
	density := []int64{5, 0, 0, 9, 1, 1, 1, 7, 0, 2, 2, 30}
	p, err := PartitionSlots(density, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Served ranges partition [0, numSlots): contiguous, non-overlapping,
	// covering, and OwnerOf agrees with them.
	next := 0
	for tt := 0; tt < p.Shards(); tt++ {
		lo, hi := p.Served(tt)
		if lo != next || hi < lo {
			t.Fatalf("row %d serves [%d,%d], expected to start at %d", tt, lo, hi, next)
		}
		for s := lo; s <= hi; s++ {
			if p.OwnerOf(s) != tt {
				t.Fatalf("OwnerOf(%d) = %d, want %d", s, p.OwnerOf(s), tt)
			}
		}
		hlo, hhi := p.Held(tt)
		if hlo != lo || hhi < hi || hhi > len(density)-1 || (hhi != len(density)-1 && hhi != hi+2) {
			t.Fatalf("row %d holds [%d,%d] for served [%d,%d], overhang 2", tt, hlo, hhi, lo, hi)
		}
		next = hi + 1
	}
	if next != len(density) {
		t.Fatalf("served ranges end at %d, want %d", next, len(density))
	}
}

func TestPartitionSlotsClampAndErrors(t *testing.T) {
	if _, err := PartitionSlots(nil, 2, 0); err == nil {
		t.Fatal("empty density accepted")
	}
	if _, err := PartitionSlots([]int64{1, -1}, 2, 0); err == nil {
		t.Fatal("negative density accepted")
	}
	// k above numSlots clamps: every row still serves at least one slot.
	p, err := PartitionSlots([]int64{3, 1}, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 2 {
		t.Fatalf("k not clamped: %d rows over 2 slots", p.Shards())
	}
	// k below 1 clamps to a single full-day row.
	p, err = PartitionSlots([]int64{3, 1, 2}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lo, hi := p.Served(0); p.Shards() != 1 || lo != 0 || hi != 2 {
		t.Fatalf("k=0 gave %d rows serving [%d,%d]", p.Shards(), lo, hi)
	}
}
