package shard

import (
	"testing"

	"streach/internal/roadnet"
)

func TestPartitionGridInvariants(t *testing.T) {
	f := getFixture(t)
	n := f.net.NumSegments()
	for _, k := range []int{1, 2, 4, 7, 16} {
		p, err := PartitionGrid(f.net, k)
		if err != nil {
			t.Fatal(err)
		}
		if p.Shards() != k {
			t.Fatalf("k=%d: Shards() = %d", k, p.Shards())
		}
		// Every segment owned exactly once, Owner consistent with Owned.
		total := 0
		for sh := 0; sh < k; sh++ {
			total += p.Size(sh)
		}
		if total != n {
			t.Fatalf("k=%d: partition covers %d of %d segments", k, total, n)
		}
		for seg := 0; seg < n; seg++ {
			sh := p.Owner(roadnet.SegmentID(seg))
			if sh < 0 || sh >= k {
				t.Fatalf("k=%d: segment %d owned by out-of-range shard %d", k, seg, sh)
			}
			if !p.Owned(sh).Has(seg) {
				t.Fatalf("k=%d: Owned(%d) misses segment %d", k, sh, seg)
			}
			for other := 0; other < k; other++ {
				if other != sh && p.Owned(other).Has(seg) {
					t.Fatalf("k=%d: segment %d owned by both %d and %d", k, seg, sh, other)
				}
			}
		}
		// Balance: no shard more than 2x the ideal share (the grid cut is
		// contiguous, not perfect, but must stay in the same league).
		ideal := n / k
		for sh := 0; sh < k; sh++ {
			if k > 1 && p.Size(sh) > 2*ideal+1 {
				t.Fatalf("k=%d: shard %d owns %d segments (ideal %d)", k, sh, p.Size(sh), ideal)
			}
		}
	}
}

func TestPartitionBoundary(t *testing.T) {
	f := getFixture(t)
	p, err := PartitionGrid(f.net, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute boundary membership independently and compare.
	n := f.net.NumSegments()
	boundary := 0
	for seg := 0; seg < n; seg++ {
		sh := p.Owner(roadnet.SegmentID(seg))
		cross := false
		for _, nb := range f.net.Outgoing(roadnet.SegmentID(seg)) {
			if p.Owner(nb) != sh {
				cross = true
			}
		}
		for _, nb := range f.net.Incoming(roadnet.SegmentID(seg)) {
			if p.Owner(nb) != sh {
				cross = true
			}
		}
		if cross != p.Boundary().Has(seg) {
			t.Fatalf("segment %d: boundary = %v, want %v", seg, p.Boundary().Has(seg), cross)
		}
		if cross {
			boundary++
		}
	}
	if boundary == 0 {
		t.Fatal("a 4-way partition of a connected city must have boundary segments")
	}
	perShard := 0
	for sh := 0; sh < 4; sh++ {
		perShard += p.BoundarySize(sh)
	}
	if perShard != boundary {
		t.Fatalf("per-shard boundary counts sum to %d, want %d", perShard, boundary)
	}
	// A single-shard partition has no boundary.
	p1, err := PartitionGrid(f.net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Boundary().Count() != 0 {
		t.Fatalf("k=1 partition has %d boundary segments", p1.Boundary().Count())
	}
}

func TestPartitionGridErrors(t *testing.T) {
	f := getFixture(t)
	if _, err := PartitionGrid(f.net, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	// k beyond the segment count clamps rather than erroring.
	p, err := PartitionGrid(f.net, f.net.NumSegments()+100)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != f.net.NumSegments() {
		t.Fatalf("clamped shards = %d, want %d", p.Shards(), f.net.NumSegments())
	}
}
