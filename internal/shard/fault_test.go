package shard

import (
	"context"
	"errors"
	"testing"
	"time"

	"streach/internal/core"
	"streach/internal/xerr"
)

// faultVariants are the three injected failure shapes of the acceptance
// criterion. The hang variant needs a per-shard budget to become a
// bounded failure instead of a stall.
var faultVariants = []struct {
	name   string
	kind   FaultKind
	budget time.Duration
	want   xerr.Kind
}{
	{"error", FaultError, 0, xerr.KindShardFailure},
	{"panic", FaultPanic, 0, xerr.KindShardFailure},
	{"hang", FaultHang, 50 * time.Millisecond, xerr.KindTimeout},
}

// TestFailFastTypedErrors pins default-mode chaos behaviour: with 1 of
// 4 shards injected to fail, planning returns a typed error — shard
// failure for the error and panic shapes, timeout for a hung shard
// bounded by the per-shard budget — that unwraps to the failing shard.
func TestFailFastTypedErrors(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	for _, v := range faultVariants {
		t.Run(v.name, func(t *testing.T) {
			c, err := NewCluster(f.st, f.con, core.Options{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			if v.budget > 0 {
				c = c.WithShardBudget(v.budget)
			}
			if err := c.InjectFault(1, v.kind); err != nil {
				t.Fatal(err)
			}
			pl, err := c.PlanReach(bg, q)
			if err == nil {
				pl.Close()
				t.Fatal("plan succeeded despite injected fault")
			}
			if got := xerr.KindOf(err); got != v.want {
				t.Fatalf("error kind = %v (%v), want %v", got, err, v.want)
			}
			var se *ShardError
			if !errors.As(err, &se) || se.Shard != 1 {
				t.Fatalf("error %v does not unwrap to ShardError{Shard: 1}", err)
			}
			// The failure is on the shard's health record.
			h := c.Health()[1]
			if h.Failures == 0 || h.LastError == "" {
				t.Fatalf("health not recorded: %+v", h)
			}
			// Clearing the fault heals the cluster.
			if err := c.InjectFault(1, FaultNone); err != nil {
				t.Fatal(err)
			}
			pl, err = c.PlanReach(bg, q)
			if err != nil {
				t.Fatalf("plan after clearing fault: %v", err)
			}
			if _, err := pl.ResultAt(bg, probs[0]); err != nil {
				t.Fatalf("result after clearing fault: %v", err)
			}
			pl.Close()
		})
	}
}

// TestDegradedMatchesHealthyPartialMerge pins the partial-results
// acceptance criterion: with 1 of 4 shards failing under
// WithPartialResults, the degraded answer's region is bit-identical to
// core.MergeRegions over the healthy shards' partials of an unfaulted
// plan, for every failure shape at four thresholds.
func TestDegradedMatchesHealthyPartialMerge(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}

	// The healthy reference cluster shares the same grid partition (the
	// partitioner is deterministic over the same network and k).
	healthyC, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	healthy, err := healthyC.PlanReach(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()

	for _, v := range faultVariants {
		t.Run(v.name, func(t *testing.T) {
			c, err := NewCluster(f.st, f.con, core.Options{}, 4)
			if err != nil {
				t.Fatal(err)
			}
			c = c.WithPartialResults(true)
			if v.budget > 0 {
				c = c.WithShardBudget(v.budget)
			}
			if err := c.InjectFault(1, v.kind); err != nil {
				t.Fatal(err)
			}
			pl, err := c.PlanReach(bg, q)
			if err != nil {
				t.Fatalf("partial-mode plan failed outright: %v", err)
			}
			defer pl.Close()
			for _, prob := range probs {
				got, err := pl.ResultAt(bg, prob)
				if err != nil {
					t.Fatalf("prob %v: %v", prob, err)
				}
				d := pl.Degraded()
				if d == nil {
					t.Fatalf("prob %v: no Degraded record", prob)
				}
				if len(d.MissingShards) != 1 || d.MissingShards[0] != 1 {
					t.Fatalf("prob %v: missing shards %v, want [1]", prob, d.MissingShards)
				}
				if d.Coverage <= 0 || d.Coverage >= 1 {
					t.Fatalf("prob %v: coverage %v, want in (0, 1)", prob, d.Coverage)
				}
				if len(d.Failures) != 1 || d.Failures[0].Shard != 1 {
					t.Fatalf("prob %v: failures %v", prob, d.Failures)
				}
				// Reference: the healthy plan's partials over the three
				// surviving shards, merged exactly as the gather does.
				var parts []*core.Result
				for sh := 0; sh < 4; sh++ {
					if sh == 1 {
						continue
					}
					part, err := healthy.p.PartialAt(bg, prob, healthyC.part.Owned(sh))
					if err != nil {
						t.Fatal(err)
					}
					parts = append(parts, part)
				}
				want := core.MergeRegions(true, parts...)
				if len(got.Segments) == 0 {
					t.Fatalf("prob %v: degraded answer is empty", prob)
				}
				sameRegionContent(t, v.name, got, want)
			}
		})
	}
}

// sameRegionContent asserts the merged region content — segments and
// per-segment probabilities — is bit-identical. Finalize-stamped
// attribution (starts, wall-clock metrics) is excluded: the reference
// merge is deliberately left unfinalized.
func sameRegionContent(t *testing.T, name string, got, want *core.Result) {
	t.Helper()
	if len(got.Segments) != len(want.Segments) {
		t.Fatalf("%s: segments differ (%d vs %d)", name, len(got.Segments), len(want.Segments))
	}
	for i, s := range want.Segments {
		if got.Segments[i] != s {
			t.Fatalf("%s: segment[%d] = %d, want %d", name, i, got.Segments[i], s)
		}
	}
	if len(got.Probability) != len(want.Probability) {
		t.Fatalf("%s: probability map sizes differ (%d vs %d)",
			name, len(got.Probability), len(want.Probability))
	}
	for s, p := range want.Probability {
		if gp, ok := got.Probability[s]; !ok || gp != p {
			t.Fatalf("%s: probability of %d = %v, want %v", name, s, got.Probability[s], p)
		}
	}
}

// TestDegradedGatherFault pins the gather-side hook: a fault injected
// after a healthy scatter degrades ResultAt (partial mode) or fails it
// typed (fail-fast), so long-lived plans still honour injection.
func TestDegradedGatherFault(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cp := c.WithPartialResults(true)
	pl, err := cp.PlanReach(bg, q) // healthy scatter
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	if _, err := pl.ResultAt(bg, probs[1]); err != nil {
		t.Fatal(err)
	}
	if pl.Degraded() != nil {
		t.Fatal("healthy gather reported degradation")
	}
	if err := c.InjectFault(2, FaultError); err != nil { // via the base view: shared table
		t.Fatal(err)
	}
	if _, err := pl.ResultAt(bg, probs[1]); err != nil {
		t.Fatalf("partial-mode gather failed outright: %v", err)
	}
	d := pl.Degraded()
	if d == nil || len(d.MissingShards) != 1 || d.MissingShards[0] != 2 {
		t.Fatalf("gather degradation = %+v, want missing shard 2", d)
	}

	// Fail-fast view of the same cluster: typed error.
	plFF, err := c.PlanReach(bg, q)
	if err == nil {
		// Scatter may or may not route work to shard 2; the gather must
		// fail either way.
		_, rerr := plFF.ResultAt(bg, probs[1])
		plFF.Close()
		err = rerr
	}
	if xerr.KindOf(err) != xerr.KindShardFailure {
		t.Fatalf("fail-fast error = %v, want shard-failure kind", err)
	}
}

// TestPartialModeCancellation: a caller cancellation in partial mode is
// still a cancellation, not a degraded answer built from zero shards.
func TestPartialModeCancellation(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c = c.WithPartialResults(true)
	ctx, cancel := context.WithCancel(bg)
	cancel()
	if _, err := c.PlanReach(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled plan error = %v, want context.Canceled", err)
	}
}
