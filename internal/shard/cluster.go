package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/conindex"
	"streach/internal/core"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/xerr"
)

// Cluster owns one core.Engine per shard over shard-local index slices
// and answers reachability queries by scatter-gather:
//
//   - plan: the planner engine (full-network view) builds a deferred
//     core.SharedPlan. Its bounding phase already executes sharded —
//     the planner's RowSource routes every Con-Index row fetch to the
//     slice of the shard owning the segment;
//   - scatter: each shard engine verifies the candidate positions it
//     owns against its own ST-Index slice, concurrently;
//   - gather: one mergeable partial region per shard (SharedPlan.
//     PartialAt) folds through core.MergeRegions and the plan's
//     Finalize into an answer bit-identical to unsharded execution.
//
// In-process, "shard-local slice" means an enforced ownership view over
// shared storage: each shard can only read the rows and time lists of
// its partition (plus the plan-shipped replicas: probe start-sets and
// bounding regions), so the execution paths are exactly the ones a
// multi-process deployment would exercise, while topology and speed
// statistics stay replicated as the partitioner intends.
type Cluster struct {
	part *Partition
	// slots is the temporal sharding dimension (nil: spatial-only). With
	// K slot rows and a gridK-way spatial partition the cluster runs
	// K·gridK shard engines; shard ordinal sh = row·gridK + grid, so the
	// spatial tables compose with the temporal ranges unchanged.
	slots     *SlotPartition
	gridK     int // spatial shards per slot row (= part.Shards())
	slotSec   int // ST-Index slot length, for window routing
	planner   *core.Engine
	engines   []*core.Engine
	conSlices []*conindex.Slice
	numSlots  int
	opts      core.Options
	m         *metrics
	faults    *faultTable   // injected per-shard faults (shared by views)
	hlth      *healthTable  // per-shard failure records (shared by views)
	brk       *breakerTable // per-shard circuit breakers (shared by views)
	hedge     *hedgeState   // hedge budget and counters (shared by views)
	partial   bool          // degrade instead of failing (view-local)
	budget    time.Duration // per-shard scatter/gather bound (view-local)
}

// metrics holds the cluster's per-shard activity counters, shared by
// every WithOptions view.
type metrics struct {
	rows         []atomic.Int64 // Con-Index rows routed to the shard's slice
	verified     []atomic.Int64 // candidates scatter-verified on the shard
	verifyNS     []atomic.Int64 // wall-clock the shard spent verifying
	plans        atomic.Int64   // sharded plans built
	fallback     atomic.Int64   // plans answered unsharded (EarlyStop + slot overflow)
	slotFallback atomic.Int64   // fallbacks caused by a window outliving its row's held range
}

// Stats is one shard's activity snapshot.
type Stats struct {
	// Shard is the shard ordinal.
	Shard int
	// Segments and BoundarySegments describe the spatial partition:
	// owned segments and how many of them border another shard.
	Segments, BoundarySegments int
	// SlotLo, SlotHi is the inclusive slot range the shard serves on the
	// temporal axis (the whole day on a spatial-only cluster).
	SlotLo, SlotHi int
	// RowsFetched counts Con-Index adjacency rows the bounding phase
	// routed through this shard's slice.
	RowsFetched int64
	// CandidatesVerified counts candidates scatter-verified on this
	// shard's ST-Index slice.
	CandidatesVerified int64
	// VerifyNS is the cumulative wall-clock the shard's engine spent in
	// scatter verification.
	VerifyNS int64
}

// NewCluster partitions the network into k shards and builds the
// per-shard engines and the planner. The indexes are the same ones an
// unsharded engine would use; every shard view shares their storage.
func NewCluster(st *stindex.Index, con *conindex.Index, opts core.Options, k int) (*Cluster, error) {
	return NewClusterSlots(st, con, opts, k, 1, -1)
}

// NewClusterSlots builds a hybrid grid × slots cluster: the network
// partitioned into gridK spatial shards, crossed with slotK temporal
// rows cut from the day's slot axis by observation density. slotK = 1
// degrades to the spatial-only cluster; gridK = 1 with slotK > 1 is
// pure temporal sharding. overhang is the held-range overhang in slots
// (-1: default, see PartitionSlots).
func NewClusterSlots(st *stindex.Index, con *conindex.Index, opts core.Options, gridK, slotK, overhang int) (*Cluster, error) {
	part, err := PartitionGrid(st.Network(), gridK)
	if err != nil {
		return nil, err
	}
	gridK = part.Shards() // clamped
	var slots *SlotPartition
	if slotK > 1 {
		slots, err = PartitionSlots(st.SlotDensity(), slotK, overhang)
		if err != nil {
			return nil, err
		}
	}
	rows := 1
	if slots != nil {
		rows = slots.Shards()
	}
	k := rows * gridK
	c := &Cluster{
		part:      part,
		slots:     slots,
		gridK:     gridK,
		slotSec:   st.SlotSeconds(),
		engines:   make([]*core.Engine, k),
		conSlices: make([]*conindex.Slice, k),
		numSlots:  con.NumSlots(),
		opts:      opts,
		m: &metrics{
			rows:     make([]atomic.Int64, k),
			verified: make([]atomic.Int64, k),
			verifyNS: make([]atomic.Int64, k),
		},
		faults: newFaultTable(),
		hlth:   newHealthTable(k),
		brk:    newBreakerTable(k, BreakerConfig{}),
		hedge:  newHedgeState(k),
	}
	for sh := 0; sh < k; sh++ {
		g := sh % gridK
		if slots == nil {
			c.conSlices[sh] = con.Slice(sh, part.Owned(g))
			eng, err := core.NewEngine(st.Slice(sh, part.Owned(g)), con, opts)
			if err != nil {
				return nil, err
			}
			c.engines[sh] = eng
			continue
		}
		row := sh / gridK
		servedLo, servedHi := slots.Served(row)
		heldLo, heldHi := slots.Held(row)
		// Con-Index rows are fetched per (segment, slot) and routed to
		// the slot's serving row, so the con slice enforces the served
		// range; ST time-list reads span a whole query window, so the
		// engine's ST slice holds the overhang too.
		c.conSlices[sh] = con.SliceSlots(sh, part.Owned(g), servedLo, servedHi)
		eng, err := core.NewEngine(st.SliceSlots(sh, part.Owned(g), heldLo, heldHi), con, opts)
		if err != nil {
			return nil, err
		}
		c.engines[sh] = eng
	}
	base, err := core.NewEngine(st, con, opts)
	if err != nil {
		return nil, err
	}
	c.planner = base.WithRowSource(func() core.RowSource { return c.newRowRouter() })
	return c, nil
}

// Shards returns the total shard count (slot rows × spatial shards).
func (c *Cluster) Shards() int { return len(c.engines) }

// SlotShards returns the temporal row count (1 on a spatial-only
// cluster).
func (c *Cluster) SlotShards() int {
	if c.slots == nil {
		return 1
	}
	return c.slots.Shards()
}

// GridShards returns the spatial shard count per slot row.
func (c *Cluster) GridShards() int { return c.gridK }

// SlotPartition returns the temporal partition (nil when spatial-only).
func (c *Cluster) SlotPartition() *SlotPartition { return c.slots }

// shardOf returns the shard ordinal serving (segment, slot): the slot's
// serving row crossed with the segment's spatial owner.
func (c *Cluster) shardOf(seg roadnet.SegmentID, slot int) int {
	g := c.part.Owner(seg)
	if c.slots == nil {
		return g
	}
	slot = ((slot % c.numSlots) + c.numSlots) % c.numSlots
	return c.slots.OwnerOf(slot)*c.gridK + g
}

// routeSlots picks the slot row serving a query window: the row whose
// served range contains the window's start slot, provided the whole
// window fits inside that row's held range. ok = false means no row
// holds the window — the caller falls back to unsharded execution.
func (c *Cluster) routeSlots(start, dur time.Duration) (row int, ok bool) {
	wlo := int(start.Seconds()) / c.slotSec
	whi := int((start + dur).Seconds()) / c.slotSec
	if whi >= c.numSlots {
		whi = c.numSlots - 1
	}
	if wlo < 0 || wlo >= c.numSlots {
		return 0, false // invalid window; the plan build will reject it
	}
	row = c.slots.OwnerOf(wlo)
	_, heldHi := c.slots.Held(row)
	return row, whi <= heldHi
}

// Partition returns the cluster's segment partition.
func (c *Cluster) Partition() *Partition { return c.part }

// Options returns the cluster's current engine options.
func (c *Cluster) Options() core.Options { return c.opts }

// WithOptions returns a cluster view with opts in place of the engine
// options — cheap, like core.Engine.WithOptions: the partition, index
// slices, and metrics are shared.
func (c *Cluster) WithOptions(opts core.Options) *Cluster {
	nc := *c
	nc.opts = opts
	nc.planner = c.planner.WithOptions(opts)
	nc.engines = make([]*core.Engine, len(c.engines))
	for i, e := range c.engines {
		nc.engines[i] = e.WithOptions(opts)
	}
	return &nc
}

// Stats snapshots every shard's activity.
func (c *Cluster) Stats() []Stats {
	out := make([]Stats, len(c.engines))
	for sh := range out {
		g := sh % c.gridK
		slotLo, slotHi := 0, c.numSlots-1
		if c.slots != nil {
			slotLo, slotHi = c.slots.Served(sh / c.gridK)
		}
		out[sh] = Stats{
			Shard:              sh,
			Segments:           c.part.Size(g),
			BoundarySegments:   c.part.BoundarySize(g),
			SlotLo:             slotLo,
			SlotHi:             slotHi,
			RowsFetched:        c.m.rows[sh].Load(),
			CandidatesVerified: c.m.verified[sh].Load(),
			VerifyNS:           c.m.verifyNS[sh].Load(),
		}
	}
	return out
}

// PlansSharded and PlansFallback report how many plans ran scatter-gather
// vs fell back to single-engine execution (EarlyStop policy, or a query
// window no slot row holds whole). PlansSlotFallback counts the subset
// of fallbacks caused by the slot routing.
func (c *Cluster) PlansSharded() int64      { return c.m.plans.Load() }
func (c *Cluster) PlansFallback() int64     { return c.m.fallback.Load() }
func (c *Cluster) PlansSlotFallback() int64 { return c.m.slotFallback.Load() }

// ScratchStats snapshots the scratch-pool counters of the planner
// (index 0 — shared with the base engine it is a view of) and every
// shard engine (index 1..k). With no query in flight each snapshot must
// be Balanced(), including after a shard failed or panicked mid-query;
// an imbalance is a leaked pooled region or bitset on some error path.
func (c *Cluster) ScratchStats() []core.ScratchStats {
	out := make([]core.ScratchStats, 0, 1+len(c.engines))
	out = append(out, c.planner.ScratchStats())
	for _, e := range c.engines {
		out = append(out, e.ScratchStats())
	}
	return out
}

// Plan is a sharded (or, for lazy policies, planner-local) shared plan;
// it satisfies the same plan surface the facade uses for single-engine
// execution, with ResultAt running the gather step.
type Plan struct {
	c       *Cluster
	p       *core.SharedPlan
	sharded bool
	// rowBase is the first shard ordinal of the slot row serving the
	// plan's window (0 on a spatial-only cluster): the scatter and
	// gather touch only shards [rowBase, rowBase+gridK).
	rowBase int
	// failed holds the shards lost at scatter time (partial-results mode
	// only; fail-fast scatters never produce a plan with losses).
	failed []*ShardError
	// degraded describes the loss behind the most recent ResultAt, nil
	// when the answer was complete. Plans are single-goroutine by the
	// facade's ownership contract, so a plain field suffices.
	degraded *Degraded
}

// plan builds one deferred plan via build, scatter-verifies it, and
// wraps it. The EarlyStop policy verifies lazily per threshold — a wave
// whose probes depend on neighbouring outcomes cannot be split by
// segment owner — so it plans eagerly on the planner instead (bounding
// still routes through the shard slices) and skips the scatter.
// A slot-sharded cluster routes on the query window first: the row
// whose served range contains the window's start slot answers it whole.
// A window no row holds (it outruns the row's held overhang) falls back
// to eager execution the same way — correct by construction, counted so
// operators see when the overhang is too small for their traffic.
func (c *Cluster) plan(ctx context.Context, start, dur time.Duration, build func(opts ...core.PlanOption) (*core.SharedPlan, error)) (*Plan, error) {
	rowBase := 0
	if c.slots != nil && !c.opts.EarlyStop {
		row, ok := c.routeSlots(start, dur)
		if !ok {
			c.m.slotFallback.Add(1)
			p, err := build()
			if err != nil {
				return nil, err
			}
			c.m.fallback.Add(1)
			return &Plan{c: c, p: p, sharded: false}, nil
		}
		rowBase = row * c.gridK
	}
	if c.opts.EarlyStop {
		p, err := build()
		if err != nil {
			return nil, err
		}
		c.m.fallback.Add(1)
		return &Plan{c: c, p: p, sharded: false}, nil
	}
	p, err := build(core.DeferVerification())
	if err != nil {
		return nil, err
	}
	failed, err := c.scatter(ctx, p, rowBase)
	if err != nil {
		p.Close()
		return nil, err
	}
	c.m.plans.Add(1)
	return &Plan{c: c, p: p, sharded: true, rowBase: rowBase, failed: failed}, nil
}

// PlanReach plans a forward s-query across the shards.
func (c *Cluster) PlanReach(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, q.Start, q.Duration, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReach(ctx, q, opts...)
	})
}

// PlanReverse plans a reverse s-query across the shards.
func (c *Cluster) PlanReverse(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, q.Start, q.Duration, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReverse(ctx, q, opts...)
	})
}

// PlanMulti plans an m-query (MQMB unified region) across the shards.
func (c *Cluster) PlanMulti(ctx context.Context, q core.MultiQuery) (*Plan, error) {
	return c.plan(ctx, q.Start, q.Duration, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanMulti(ctx, q, opts...)
	})
}

// PlanMultiSequential plans the sequential m-query baseline across the
// shards (each per-location child scatter-verifies independently).
func (c *Cluster) PlanMultiSequential(ctx context.Context, q core.MultiQuery) (*Plan, error) {
	return c.plan(ctx, q.Start, q.Duration, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanMultiSequential(ctx, q, opts...)
	})
}

// PlanReachES plans the exhaustive forward baseline across the shards.
func (c *Cluster) PlanReachES(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, q.Start, q.Duration, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReachES(ctx, q, opts...)
	})
}

// PlanReverseES plans the exhaustive reverse baseline across the shards.
func (c *Cluster) PlanReverseES(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, q.Start, q.Duration, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReverseES(ctx, q, opts...)
	})
}

// scatter ships the plan to the shards: every leaf plan's candidates are
// routed to their owners, each shard verifies its positions on its own
// engine concurrently, and the plan is sealed. A shard worker that
// errors, panics, or overruns the per-shard budget becomes a
// ShardError: in default (fail-fast) mode the first one cancels the
// surviving workers and fails the scatter with a typed error; in
// partial-results mode the loss is recorded and the surviving shards'
// work still seals the plan, returning the failures for the gather step
// to skip.
func (c *Cluster) scatter(ctx context.Context, p *core.SharedPlan, rowBase int) ([]*ShardError, error) {
	began := time.Now()
	leaves := []*core.SharedPlan{p}
	if kids := p.Children(); len(kids) > 0 {
		leaves = kids
	}
	// scatterCtx cancels the surviving workers once a failure has already
	// decided the query's fate (fail-fast mode only).
	scatterCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	var (
		mu      sync.Mutex
		failed  []*ShardError
		failSet = map[int]bool{}
	)
	// record classifies one worker error: collateral cancellations (the
	// caller's context ended, or fail-fast already cancelled the scatter)
	// are not the shard's failure and return nil; genuine failures are
	// recorded against the shard's health, once per scatter.
	record := func(sh int, err error) *ShardError {
		if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
			return nil
		}
		if errors.Is(err, context.Canceled) && scatterCtx.Err() != nil {
			return nil
		}
		se := &ShardError{Shard: sh, Err: err}
		c.hlth.record(sh, se)
		mu.Lock()
		defer mu.Unlock()
		if !failSet[sh] {
			failSet[sh] = true
			failed = append(failed, se)
		}
		return se
	}
	for _, leaf := range leaves {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !leaf.Deferred() {
			continue
		}
		cands := leaf.Candidates()
		if len(cands) == 0 {
			continue // nothing to verify (max region == min region)
		}
		// Exact-size position buckets: count per owner, then fill. On a
		// slot-sharded cluster every bucket lands inside the serving row
		// [rowBase, rowBase+gridK); the other rows stay untouched and
		// contribute nothing — the window pruning is the routing itself.
		k := len(c.engines)
		counts := make([]int, k)
		for _, s := range cands {
			counts[rowBase+c.part.Owner(s)]++
		}
		positions := make([][]int, k)
		for sh, n := range counts {
			if n > 0 {
				positions[sh] = make([]int, 0, n)
			}
		}
		for i, s := range cands {
			sh := rowBase + c.part.Owner(s)
			positions[sh] = append(positions[sh], i)
		}
		// shortCircuit records a breaker rejection: the shard was never
		// called, so its health record is untouched — the breaker opening
		// already counted the underlying failures.
		shortCircuit := func(sh int) *ShardError {
			se := &ShardError{Shard: sh, Err: ErrBreakerOpen}
			mu.Lock()
			defer mu.Unlock()
			if !failSet[sh] {
				failSet[sh] = true
				failed = append(failed, se)
			}
			return se
		}
		if runtime.GOMAXPROCS(0) == 1 {
			// No parallelism to win: verify the shards inline and skip the
			// goroutine fan-out (keeps single-CPU overhead down).
			for sh, pos := range positions {
				if len(pos) == 0 || failSet[sh] {
					continue
				}
				admit, probe := c.brk.allow(sh)
				if !admit {
					if se := shortCircuit(sh); !c.partial {
						return nil, shardFailure(ctx, se)
					}
					continue
				}
				began := time.Now()
				if err := c.verifyShardHedged(scatterCtx, leaf, sh, c.engines[sh], pos, probe); err != nil {
					if se := record(sh, err); se != nil {
						c.brk.record(sh, false, time.Since(began), probe)
						if !c.partial {
							return nil, shardFailure(ctx, se)
						}
					} else {
						c.brk.cancel(sh, probe)
					}
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				} else {
					c.brk.record(sh, true, time.Since(began), probe)
				}
			}
			continue
		}
		// Breaker gate first, before any worker launches: a fail-fast
		// short-circuit must not leave workers running, and a granted
		// half-open probe must be returned if the scatter aborts early.
		admitted := make([]bool, k)
		probes := make([]bool, k)
		for sh, pos := range positions {
			if len(pos) == 0 || failSet[sh] {
				continue
			}
			admit, probe := c.brk.allow(sh)
			if !admit {
				se := shortCircuit(sh)
				if !c.partial {
					for g := range admitted {
						if admitted[g] {
							c.brk.cancel(g, probes[g])
						}
					}
					return nil, shardFailure(ctx, se)
				}
				continue
			}
			admitted[sh], probes[sh] = true, probe
		}
		// Split the verification worker budget across the shards that
		// have work: each shard's VerifyOn runs its own verifyMany pool,
		// and without the split k concurrent pools would oversubscribe
		// the CPUs k-fold over what unsharded verification uses. Worker
		// count never changes results, only cost.
		active := 0
		for sh := range admitted {
			if admitted[sh] {
				active++
			}
		}
		if active == 0 {
			continue
		}
		budget := c.opts.VerifyWorkers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perShard := budget / active
		if perShard < 1 {
			perShard = 1
		}
		shardOpts := c.opts
		shardOpts.VerifyWorkers = perShard
		var (
			wg    sync.WaitGroup
			once  sync.Once
			fatal *ShardError
		)
		for sh, pos := range positions {
			if !admitted[sh] {
				continue
			}
			wg.Add(1)
			go func(sh int, pos []int, probe bool) {
				defer wg.Done()
				began := time.Now()
				if err := c.verifyShardHedged(scatterCtx, leaf, sh, c.engines[sh].WithOptions(shardOpts), pos, probe); err != nil {
					if se := record(sh, err); se != nil {
						c.brk.record(sh, false, time.Since(began), probe)
						if !c.partial {
							once.Do(func() {
								fatal = se
								cancelAll() // fail fast: stop the surviving workers
							})
						}
					} else {
						c.brk.cancel(sh, probe)
					}
				} else {
					c.brk.record(sh, true, time.Since(began), probe)
				}
			}(sh, pos, probes[sh])
		}
		wg.Wait()
		if fatal != nil {
			return nil, shardFailure(ctx, fatal)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	if c.partial && len(failed) == c.gridK {
		return nil, xerr.Mark(xerr.KindShardFailure,
			fmt.Errorf("shard: all %d shards failed: %w", len(failed), failed[0]))
	}
	sort.Slice(failed, func(i, j int) bool { return failed[i].Shard < failed[j].Shard })
	p.FinishVerification(time.Since(began))
	return failed, nil
}

// verifyShard runs one shard's verification slice with the cluster's
// failure policy applied: the shard's injected fault (if any) fires
// first, the per-shard budget bounds the work, and a panic anywhere
// inside verification is recovered into an error.
func (c *Cluster) verifyShard(ctx context.Context, leaf *core.SharedPlan, sh int, eng *core.Engine, pos []int) error {
	if c.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.budget)
		defer cancel()
	}
	t0 := time.Now()
	vals, err := c.verifyShardVals(ctx, leaf, sh, eng, pos, false)
	if err != nil {
		return err
	}
	leaf.CommitVerified(pos, vals)
	c.m.verified[sh].Add(int64(len(pos)))
	c.m.verifyNS[sh].Add(time.Since(t0).Nanoseconds())
	return nil
}

// verifyShardVals computes one shard's verification slice into a
// private buffer without committing it — the racing half of a hedged
// scatter. The hedge attempt models a retry against a healthy replica
// of the slice, so it skips the shard's injected fault (that is what
// lets a hedge heal a chaos-injected hang); everything else — panic
// recovery, context cancellation — applies to both attempts.
func (c *Cluster) verifyShardVals(ctx context.Context, leaf *core.SharedPlan, sh int, eng *core.Engine, pos []int, hedge bool) (vals []float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if !hedge {
		if err := c.injectedFault(ctx, sh); err != nil {
			return nil, err
		}
	} else if err := ctx.Err(); err != nil {
		return nil, err
	}
	return leaf.VerifyPositions(ctx, eng, pos)
}

// injectedFault fires the shard's injected fault, if any.
func (c *Cluster) injectedFault(ctx context.Context, sh int) error {
	switch c.faults.get(sh) {
	case FaultError:
		return errors.New("injected shard fault")
	case FaultPanic:
		panic(fmt.Sprintf("injected shard panic (shard %d)", sh))
	case FaultHang:
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// shardFailure types one fatal shard error for the facade: a budget
// expiry surfaces as a timeout, everything else as a shard failure. A
// caller context that has itself ended wins — that is not the shard's
// fault — and stays a bare context error.
func shardFailure(ctx context.Context, se *ShardError) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if errors.Is(se.Err, context.DeadlineExceeded) {
		return xerr.Mark(xerr.KindTimeout, se)
	}
	return xerr.Mark(xerr.KindShardFailure, se)
}

// ResultAt runs the gather step for one probability threshold: one
// mergeable partial region per shard, folded with core.MergeRegions and
// stamped by the plan's Finalize — bit-identical to ResultAt on an
// unsharded engine. Lazy (EarlyStop) plans answer directly from the
// planner.
//
// Shards lost at scatter time are skipped, and a shard failing its
// gather step (error, recovered panic, injected fault, budget expiry)
// is — in partial-results mode — added to the loss; either way the
// surviving partials merge and the loss is reported via Degraded. In
// fail-fast mode a gather failure fails the query with a typed error.
func (pl *Plan) ResultAt(ctx context.Context, prob float64) (*core.Result, error) {
	if !pl.sharded {
		return pl.p.ResultAt(ctx, prob)
	}
	if err := core.ValidateProb(prob); err != nil {
		return nil, err
	}
	pl.degraded = nil
	lo, hi := pl.rowBase, pl.rowBase+pl.c.gridK // the serving slot row
	missing := append([]*ShardError(nil), pl.failed...)
	failSet := make(map[int]bool, len(missing))
	for _, se := range missing {
		failSet[se.Shard] = true
	}
	parts := make([]*core.Result, 0, pl.c.gridK)
	for sh := lo; sh < hi; sh++ {
		if failSet[sh] {
			continue
		}
		admit, probe := pl.c.brk.allow(sh)
		if !admit {
			// Short-circuited by the open breaker: the shard was never
			// called, so its health record is untouched.
			se := &ShardError{Shard: sh, Err: ErrBreakerOpen}
			if !pl.c.partial {
				return nil, shardFailure(ctx, se)
			}
			failSet[sh] = true
			missing = append(missing, se)
			continue
		}
		began := time.Now()
		part, err := pl.partialOn(ctx, sh, prob)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil && errors.Is(err, ctxErr) {
				pl.c.brk.cancel(sh, probe)
				return nil, ctxErr
			}
			se := &ShardError{Shard: sh, Err: err}
			pl.c.hlth.record(sh, se)
			pl.c.brk.record(sh, false, time.Since(began), probe)
			if !pl.c.partial {
				return nil, shardFailure(ctx, se)
			}
			failSet[sh] = true
			missing = append(missing, se)
			continue
		}
		pl.c.brk.record(sh, true, time.Since(began), probe)
		parts = append(parts, part)
	}
	if len(parts) == 0 {
		err := errors.New("shard: no shard answered")
		if len(missing) > 0 {
			err = fmt.Errorf("shard: no shard answered: %w", missing[0])
		}
		return nil, xerr.Mark(xerr.KindShardFailure, err)
	}
	res := core.MergeRegions(true, parts...)
	pl.p.Finalize(res)
	if len(missing) > 0 {
		sort.Slice(missing, func(i, j int) bool { return missing[i].Shard < missing[j].Shard })
		d := &Degraded{Failures: missing}
		owned, total := 0, 0
		for sh := lo; sh < hi; sh++ {
			total += pl.c.part.Size(sh % pl.c.gridK)
			if failSet[sh] {
				d.MissingShards = append(d.MissingShards, sh)
			} else {
				owned += pl.c.part.Size(sh % pl.c.gridK)
			}
		}
		if total > 0 {
			d.Coverage = float64(owned) / float64(total)
		}
		pl.degraded = d
	}
	return res, nil
}

// partialOn gathers one shard's partial with the cluster's failure
// policy applied: injected fault first, per-shard budget, panic
// recovery.
func (pl *Plan) partialOn(ctx context.Context, sh int, prob float64) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if pl.c.budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, pl.c.budget)
		defer cancel()
	}
	if err := pl.c.injectedFault(ctx, sh); err != nil {
		return nil, err
	}
	return pl.p.PartialAt(ctx, prob, pl.c.part.Owned(sh%pl.c.gridK))
}

// Degraded reports the loss behind the plan's most recent ResultAt: nil
// for a complete answer, else the missing shards and surviving
// ownership coverage. The facade surfaces it on the result.
func (pl *Plan) Degraded() *Degraded { return pl.degraded }

// RowStats reports the plan's row-source activity (see
// core.SharedPlan.RowStats).
func (pl *Plan) RowStats() conindex.PinStats { return pl.p.RowStats() }

// Rebase resets the plan's cost attribution (see core.SharedPlan.Rebase).
func (pl *Plan) Rebase() { pl.p.Rebase() }

// Close releases the plan.
func (pl *Plan) Close() { pl.p.Close() }

// Sharded reports whether the plan ran scatter-gather (false: EarlyStop
// fallback on the planner).
func (pl *Plan) Sharded() bool { return pl.sharded }

// String names the cluster for logs.
func (c *Cluster) String() string {
	if c.slots != nil {
		return fmt.Sprintf("shard.Cluster(slots=%d, grid=%d)", c.slots.Shards(), c.gridK)
	}
	return fmt.Sprintf("shard.Cluster(k=%d)", c.part.Shards())
}
