package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/conindex"
	"streach/internal/core"
	"streach/internal/stindex"
)

// Cluster owns one core.Engine per shard over shard-local index slices
// and answers reachability queries by scatter-gather:
//
//   - plan: the planner engine (full-network view) builds a deferred
//     core.SharedPlan. Its bounding phase already executes sharded —
//     the planner's RowSource routes every Con-Index row fetch to the
//     slice of the shard owning the segment;
//   - scatter: each shard engine verifies the candidate positions it
//     owns against its own ST-Index slice, concurrently;
//   - gather: one mergeable partial region per shard (SharedPlan.
//     PartialAt) folds through core.MergeRegions and the plan's
//     Finalize into an answer bit-identical to unsharded execution.
//
// In-process, "shard-local slice" means an enforced ownership view over
// shared storage: each shard can only read the rows and time lists of
// its partition (plus the plan-shipped replicas: probe start-sets and
// bounding regions), so the execution paths are exactly the ones a
// multi-process deployment would exercise, while topology and speed
// statistics stay replicated as the partitioner intends.
type Cluster struct {
	part      *Partition
	planner   *core.Engine
	engines   []*core.Engine
	conSlices []*conindex.Slice
	numSlots  int
	opts      core.Options
	m         *metrics
}

// metrics holds the cluster's per-shard activity counters, shared by
// every WithOptions view.
type metrics struct {
	rows     []atomic.Int64 // Con-Index rows routed to the shard's slice
	verified []atomic.Int64 // candidates scatter-verified on the shard
	verifyNS []atomic.Int64 // wall-clock the shard spent verifying
	plans    atomic.Int64   // sharded plans built
	fallback atomic.Int64   // plans answered unsharded (EarlyStop)
}

// Stats is one shard's activity snapshot.
type Stats struct {
	// Shard is the shard ordinal.
	Shard int
	// Segments and BoundarySegments describe the partition: owned
	// segments and how many of them border another shard.
	Segments, BoundarySegments int
	// RowsFetched counts Con-Index adjacency rows the bounding phase
	// routed through this shard's slice.
	RowsFetched int64
	// CandidatesVerified counts candidates scatter-verified on this
	// shard's ST-Index slice.
	CandidatesVerified int64
	// VerifyNS is the cumulative wall-clock the shard's engine spent in
	// scatter verification.
	VerifyNS int64
}

// NewCluster partitions the network into k shards and builds the
// per-shard engines and the planner. The indexes are the same ones an
// unsharded engine would use; every shard view shares their storage.
func NewCluster(st *stindex.Index, con *conindex.Index, opts core.Options, k int) (*Cluster, error) {
	part, err := PartitionGrid(st.Network(), k)
	if err != nil {
		return nil, err
	}
	k = part.Shards() // clamped
	c := &Cluster{
		part:      part,
		engines:   make([]*core.Engine, k),
		conSlices: make([]*conindex.Slice, k),
		numSlots:  con.NumSlots(),
		opts:      opts,
		m: &metrics{
			rows:     make([]atomic.Int64, k),
			verified: make([]atomic.Int64, k),
			verifyNS: make([]atomic.Int64, k),
		},
	}
	for sh := 0; sh < k; sh++ {
		c.conSlices[sh] = con.Slice(sh, part.Owned(sh))
		eng, err := core.NewEngine(st.Slice(sh, part.Owned(sh)), con, opts)
		if err != nil {
			return nil, err
		}
		c.engines[sh] = eng
	}
	base, err := core.NewEngine(st, con, opts)
	if err != nil {
		return nil, err
	}
	c.planner = base.WithRowSource(func() core.RowSource { return c.newRowRouter() })
	return c, nil
}

// Shards returns the shard count.
func (c *Cluster) Shards() int { return c.part.Shards() }

// Partition returns the cluster's segment partition.
func (c *Cluster) Partition() *Partition { return c.part }

// Options returns the cluster's current engine options.
func (c *Cluster) Options() core.Options { return c.opts }

// WithOptions returns a cluster view with opts in place of the engine
// options — cheap, like core.Engine.WithOptions: the partition, index
// slices, and metrics are shared.
func (c *Cluster) WithOptions(opts core.Options) *Cluster {
	nc := *c
	nc.opts = opts
	nc.planner = c.planner.WithOptions(opts)
	nc.engines = make([]*core.Engine, len(c.engines))
	for i, e := range c.engines {
		nc.engines[i] = e.WithOptions(opts)
	}
	return &nc
}

// Stats snapshots every shard's activity.
func (c *Cluster) Stats() []Stats {
	out := make([]Stats, c.part.Shards())
	for sh := range out {
		out[sh] = Stats{
			Shard:              sh,
			Segments:           c.part.Size(sh),
			BoundarySegments:   c.part.BoundarySize(sh),
			RowsFetched:        c.m.rows[sh].Load(),
			CandidatesVerified: c.m.verified[sh].Load(),
			VerifyNS:           c.m.verifyNS[sh].Load(),
		}
	}
	return out
}

// PlansSharded and PlansFallback report how many plans ran scatter-gather
// vs fell back to single-engine execution (EarlyStop policy).
func (c *Cluster) PlansSharded() int64  { return c.m.plans.Load() }
func (c *Cluster) PlansFallback() int64 { return c.m.fallback.Load() }

// Plan is a sharded (or, for lazy policies, planner-local) shared plan;
// it satisfies the same plan surface the facade uses for single-engine
// execution, with ResultAt running the gather step.
type Plan struct {
	c       *Cluster
	p       *core.SharedPlan
	sharded bool
}

// plan builds one deferred plan via build, scatter-verifies it, and
// wraps it. The EarlyStop policy verifies lazily per threshold — a wave
// whose probes depend on neighbouring outcomes cannot be split by
// segment owner — so it plans eagerly on the planner instead (bounding
// still routes through the shard slices) and skips the scatter.
func (c *Cluster) plan(ctx context.Context, build func(opts ...core.PlanOption) (*core.SharedPlan, error)) (*Plan, error) {
	if c.opts.EarlyStop {
		p, err := build()
		if err != nil {
			return nil, err
		}
		c.m.fallback.Add(1)
		return &Plan{c: c, p: p, sharded: false}, nil
	}
	p, err := build(core.DeferVerification())
	if err != nil {
		return nil, err
	}
	if err := c.scatter(ctx, p); err != nil {
		p.Close()
		return nil, err
	}
	c.m.plans.Add(1)
	return &Plan{c: c, p: p, sharded: true}, nil
}

// PlanReach plans a forward s-query across the shards.
func (c *Cluster) PlanReach(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReach(ctx, q, opts...)
	})
}

// PlanReverse plans a reverse s-query across the shards.
func (c *Cluster) PlanReverse(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReverse(ctx, q, opts...)
	})
}

// PlanMulti plans an m-query (MQMB unified region) across the shards.
func (c *Cluster) PlanMulti(ctx context.Context, q core.MultiQuery) (*Plan, error) {
	return c.plan(ctx, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanMulti(ctx, q, opts...)
	})
}

// PlanMultiSequential plans the sequential m-query baseline across the
// shards (each per-location child scatter-verifies independently).
func (c *Cluster) PlanMultiSequential(ctx context.Context, q core.MultiQuery) (*Plan, error) {
	return c.plan(ctx, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanMultiSequential(ctx, q, opts...)
	})
}

// PlanReachES plans the exhaustive forward baseline across the shards.
func (c *Cluster) PlanReachES(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReachES(ctx, q, opts...)
	})
}

// PlanReverseES plans the exhaustive reverse baseline across the shards.
func (c *Cluster) PlanReverseES(ctx context.Context, q core.Query) (*Plan, error) {
	return c.plan(ctx, func(opts ...core.PlanOption) (*core.SharedPlan, error) {
		return c.planner.PlanReverseES(ctx, q, opts...)
	})
}

// scatter ships the plan to the shards: every leaf plan's candidates are
// routed to their owners, each shard verifies its positions on its own
// engine concurrently, and the plan is sealed.
func (c *Cluster) scatter(ctx context.Context, p *core.SharedPlan) error {
	began := time.Now()
	leaves := []*core.SharedPlan{p}
	if kids := p.Children(); len(kids) > 0 {
		leaves = kids
	}
	for _, leaf := range leaves {
		if !leaf.Deferred() {
			continue
		}
		cands := leaf.Candidates()
		if len(cands) == 0 {
			continue // nothing to verify (max region == min region)
		}
		// Exact-size position buckets: count per owner, then fill.
		k := c.part.Shards()
		counts := make([]int, k)
		for _, s := range cands {
			counts[c.part.Owner(s)]++
		}
		positions := make([][]int, k)
		for sh, n := range counts {
			if n > 0 {
				positions[sh] = make([]int, 0, n)
			}
		}
		for i, s := range cands {
			sh := c.part.Owner(s)
			positions[sh] = append(positions[sh], i)
		}
		if runtime.GOMAXPROCS(0) == 1 {
			// No parallelism to win: verify the shards inline and skip the
			// goroutine fan-out (keeps single-CPU overhead down).
			for sh, pos := range positions {
				if len(pos) == 0 {
					continue
				}
				t0 := time.Now()
				if err := leaf.VerifyOn(ctx, c.engines[sh], pos); err != nil {
					return err
				}
				c.m.verified[sh].Add(int64(len(pos)))
				c.m.verifyNS[sh].Add(time.Since(t0).Nanoseconds())
			}
			continue
		}
		// Split the verification worker budget across the shards that
		// have work: each shard's VerifyOn runs its own verifyMany pool,
		// and without the split k concurrent pools would oversubscribe
		// the CPUs k-fold over what unsharded verification uses. Worker
		// count never changes results, only cost.
		active := 0
		for _, pos := range positions {
			if len(pos) > 0 {
				active++
			}
		}
		budget := c.opts.VerifyWorkers
		if budget <= 0 {
			budget = runtime.GOMAXPROCS(0)
		}
		perShard := budget / active
		if perShard < 1 {
			perShard = 1
		}
		shardOpts := c.opts
		shardOpts.VerifyWorkers = perShard
		var (
			wg      sync.WaitGroup
			errOnce sync.Once
			firstEr error
		)
		for sh, pos := range positions {
			if len(pos) == 0 {
				continue
			}
			wg.Add(1)
			go func(sh int, pos []int) {
				defer wg.Done()
				t0 := time.Now()
				if err := leaf.VerifyOn(ctx, c.engines[sh].WithOptions(shardOpts), pos); err != nil {
					errOnce.Do(func() { firstEr = err })
					return
				}
				c.m.verified[sh].Add(int64(len(pos)))
				c.m.verifyNS[sh].Add(time.Since(t0).Nanoseconds())
			}(sh, pos)
		}
		wg.Wait()
		if firstEr != nil {
			return firstEr
		}
	}
	p.FinishVerification(time.Since(began))
	return nil
}

// ResultAt runs the gather step for one probability threshold: one
// mergeable partial region per shard, folded with core.MergeRegions and
// stamped by the plan's Finalize — bit-identical to ResultAt on an
// unsharded engine. Lazy (EarlyStop) plans answer directly from the
// planner.
func (pl *Plan) ResultAt(ctx context.Context, prob float64) (*core.Result, error) {
	if !pl.sharded {
		return pl.p.ResultAt(ctx, prob)
	}
	if err := core.ValidateProb(prob); err != nil {
		return nil, err
	}
	parts := make([]*core.Result, pl.c.part.Shards())
	for sh := range parts {
		part, err := pl.p.PartialAt(ctx, prob, pl.c.part.Owned(sh))
		if err != nil {
			return nil, err
		}
		parts[sh] = part
	}
	res := core.MergeRegions(true, parts...)
	pl.p.Finalize(res)
	return res, nil
}

// RowStats reports the plan's row-source activity (see
// core.SharedPlan.RowStats).
func (pl *Plan) RowStats() conindex.PinStats { return pl.p.RowStats() }

// Rebase resets the plan's cost attribution (see core.SharedPlan.Rebase).
func (pl *Plan) Rebase() { pl.p.Rebase() }

// Close releases the plan.
func (pl *Plan) Close() { pl.p.Close() }

// Sharded reports whether the plan ran scatter-gather (false: EarlyStop
// fallback on the planner).
func (pl *Plan) Sharded() bool { return pl.sharded }

// String names the cluster for logs.
func (c *Cluster) String() string {
	return fmt.Sprintf("shard.Cluster(k=%d)", c.part.Shards())
}
