package shard

import (
	"testing"
	"time"

	"streach/internal/conindex"
	"streach/internal/core"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/stindex"
	"streach/internal/traj"
)

// TestClusterZeroCandidates: a plan whose bounding phase yields no
// trace-back candidates (max region == min region) must scatter as a
// no-op — in particular the multi-core worker-budget split must not
// divide by the zero active-shard count — and still answer identically
// to the unsharded engine. A single-segment network guarantees the
// degenerate regions deterministically.
func TestClusterZeroCandidates(t *testing.T) {
	b := roadnet.NewBuilder()
	if _, err := b.AddRoad(geo.Polyline{
		{Lat: 22.50, Lng: 114.00},
		{Lat: 22.505, Lng: 114.00},
	}, roadnet.Secondary, true); err != nil {
		t.Fatal(err)
	}
	net := b.Build()
	ds := &traj.Dataset{
		BaseDate: time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC),
		Days:     2,
		Matched: []traj.MatchedTrajectory{
			{Taxi: 1, Day: 0, Visits: []traj.Visit{
				{Segment: 0, EnterMs: int32(11 * time.Hour / time.Millisecond), ExitMs: int32(11*time.Hour/time.Millisecond) + 60000, Speed: 8},
			}},
			{Taxi: 2, Day: 1, Visits: []traj.Visit{
				{Segment: 0, EnterMs: int32(11 * time.Hour / time.Millisecond), ExitMs: int32(11*time.Hour/time.Millisecond) + 60000, Speed: 8},
			}},
		},
	}
	st, err := stindex.Build(net, ds, stindex.Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	con, err := conindex.Build(net, ds, conindex.Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(st, con, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(st, con, core.Options{}, 4) // clamps to 1 segment -> 1 shard
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{
		Location: net.Segment(0).Midpoint(),
		Start:    11 * time.Hour,
		Duration: 10 * time.Minute,
	}
	pl, err := c.PlanReach(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	got, err := pl.ResultAt(bg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.Evaluated != 0 {
		t.Fatalf("expected a zero-candidate plan, evaluated %d", got.Metrics.Evaluated)
	}
	want, err := eng.SQMB(bg, core.Query{Location: q.Location, Start: q.Start, Duration: q.Duration, Prob: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "zero-candidates", got, want)
}
