package shard

import (
	"context"

	"streach/internal/conindex"
	"streach/internal/core"
	"streach/internal/roadnet"
)

// rowRouter is the cluster's sharded core.RowSource: every adjacency-row
// fetch of the bounding phase resolves through the Con-Index slice of
// the shard owning the segment, so one logical bounding-region search
// scatters its row traffic across the partition without the algorithms
// (SQMB, MQMB's overlap rule, the reverse pipeline) knowing. Rows are
// memoised locally with the same batch-scoped semantics as
// conindex.Pin — a plan that grows several regions over one working set,
// or MQMB re-reading a candidate's nearest-segment row, pays each shard
// round-trip once. One router per plan; not safe for concurrent use,
// exactly like a pin.
type rowRouter struct {
	c                   *Cluster
	far, near           map[int64]conindex.Row
	farRev, nearRev     map[int64]conindex.Row
	rowHits, rowFetched int64
}

func (c *Cluster) newRowRouter() core.RowSource {
	return &rowRouter{c: c}
}

func (r *rowRouter) key(seg roadnet.SegmentID, slot int) int64 {
	slot = ((slot % r.c.numSlots) + r.c.numSlots) % r.c.numSlots
	return int64(slot)<<32 | int64(uint32(seg))
}

// row resolves one key through the local memo, routing misses to the
// owning shard's slice and charging that shard's row counter.
func (r *rowRouter) row(memo *map[int64]conindex.Row, seg roadnet.SegmentID, slot int,
	fetch func(*conindex.Slice) (conindex.Row, error)) (conindex.Row, error) {
	k := r.key(seg, slot)
	if row, ok := (*memo)[k]; ok {
		r.rowHits++
		return row, nil
	}
	sh := r.c.shardOf(seg, slot)
	row, err := fetch(r.c.conSlices[sh])
	if err != nil {
		return conindex.Row{}, err
	}
	if *memo == nil {
		*memo = map[int64]conindex.Row{}
	}
	(*memo)[k] = row
	r.rowFetched++
	r.c.m.rows[sh].Add(1)
	return row, nil
}

func (r *rowRouter) FarRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error) {
	return r.row(&r.far, seg, slot, func(s *conindex.Slice) (conindex.Row, error) {
		return s.FarRow(ctx, seg, slot)
	})
}

func (r *rowRouter) NearRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error) {
	return r.row(&r.near, seg, slot, func(s *conindex.Slice) (conindex.Row, error) {
		return s.NearRow(ctx, seg, slot)
	})
}

func (r *rowRouter) FarReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error) {
	return r.row(&r.farRev, seg, slot, func(s *conindex.Slice) (conindex.Row, error) {
		return s.FarReverseRow(ctx, seg, slot)
	})
}

func (r *rowRouter) NearReverseRow(ctx context.Context, seg roadnet.SegmentID, slot int) (conindex.Row, error) {
	return r.row(&r.nearRev, seg, slot, func(s *conindex.Slice) (conindex.Row, error) {
		return s.NearReverseRow(ctx, seg, slot)
	})
}

// Stats mirrors conindex.Pin.Stats for the plan's RowStats accounting.
func (r *rowRouter) Stats() conindex.PinStats {
	return conindex.PinStats{Hits: r.rowHits, Fetched: r.rowFetched}
}
