package shard

import (
	"errors"
	"testing"
	"time"

	"streach/internal/core"
)

// tripTable returns an enabled 1-shard breaker table tripped open by
// recorded failures, for the state-machine tests below.
func tripTable(t *testing.T, cfg BreakerConfig) *breakerTable {
	t.Helper()
	cfg.Enabled = true
	tab := newBreakerTable(1, cfg)
	for i := 0; i < tab.config().MinSamples; i++ {
		tab.record(0, false, time.Millisecond, false)
	}
	if got := tab.state(0); got != BreakerOpen {
		t.Fatalf("breaker did not trip: state = %v", got)
	}
	return tab
}

func TestBreakerDefaults(t *testing.T) {
	cfg := BreakerConfig{Enabled: true}.withDefaults()
	if cfg.Window != 16 || cfg.FailureRatio != 0.5 || cfg.MinSamples != 4 || cfg.Cooldown != 2*time.Second {
		t.Fatalf("defaults = %+v", cfg)
	}
	// MinSamples can never exceed the window it is counted over.
	cfg = BreakerConfig{Window: 3, MinSamples: 10}.withDefaults()
	if cfg.MinSamples != 3 {
		t.Fatalf("MinSamples = %d, want clamped to window 3", cfg.MinSamples)
	}
}

// TestBreakerDisabledStillRecordsLatency: with the state machine off
// (the default), every call is admitted and failures never trip — but
// durations still land in the window, because the hedge trigger reads
// its latency quantile from there.
func TestBreakerDisabledStillRecordsLatency(t *testing.T) {
	tab := newBreakerTable(1, BreakerConfig{})
	for i := 0; i < 8; i++ {
		tab.record(0, false, time.Millisecond, false)
	}
	if ok, probe := tab.allow(0); !ok || probe {
		t.Fatalf("disabled allow = (%v, %v), want (true, false)", ok, probe)
	}
	if got := tab.state(0); got != BreakerClosed {
		t.Fatalf("disabled breaker state = %v, want closed", got)
	}
	for _, d := range []time.Duration{10, 20, 30, 40} {
		tab.record(0, true, d*time.Millisecond, false)
	}
	// Floor-rank quantile: p95 over 4 samples lands on index 2.
	if q := tab.successQuantile(0, 0.95, 4); q != 30*time.Millisecond {
		t.Fatalf("p95 of recorded successes = %v, want 30ms", q)
	}
	if q := tab.successQuantile(0, 1.0, 4); q != 40*time.Millisecond {
		t.Fatalf("max of recorded successes = %v, want 40ms", q)
	}
	if q := tab.successQuantile(0, 0.95, 5); q != 0 {
		t.Fatalf("quantile below min samples = %v, want 0", q)
	}
}

// TestBreakerTripAndShortCircuit: failures at the configured ratio trip
// the breaker open; while open (inside the cooldown) every call is
// rejected and counted as a short-circuit.
func TestBreakerTripAndShortCircuit(t *testing.T) {
	tab := newBreakerTable(1, BreakerConfig{Enabled: true, Window: 8, MinSamples: 4, Cooldown: time.Hour})
	// 2 ok + 1 fail: 3 samples, below MinSamples — must not trip.
	tab.record(0, true, time.Millisecond, false)
	tab.record(0, true, time.Millisecond, false)
	tab.record(0, false, time.Millisecond, false)
	if got := tab.state(0); got != BreakerClosed {
		t.Fatalf("tripped below MinSamples: %v", got)
	}
	// Fourth sample makes 2/4 = 0.5 >= default ratio: trips.
	tab.record(0, false, time.Millisecond, false)
	if got := tab.state(0); got != BreakerOpen {
		t.Fatalf("state = %v, want open at ratio 0.5", got)
	}
	for i := 0; i < 3; i++ {
		if ok, _ := tab.allow(0); ok {
			t.Fatal("open breaker admitted a call inside the cooldown")
		}
	}
	opens, shorts := tab.counters()
	if opens != 1 || shorts != 3 {
		t.Fatalf("counters = (%d opens, %d shorts), want (1, 3)", opens, shorts)
	}
}

// TestBreakerHalfOpenProbeCloses: past the cooldown exactly one probe
// is admitted (concurrent calls still short-circuit); a successful
// probe closes the breaker and forgets the sick window.
func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	tab := tripTable(t, BreakerConfig{Cooldown: 5 * time.Millisecond})
	time.Sleep(10 * time.Millisecond)
	ok, probe := tab.allow(0)
	if !ok || !probe {
		t.Fatalf("post-cooldown allow = (%v, %v), want probe grant", ok, probe)
	}
	if got := tab.state(0); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half_open", got)
	}
	// The probe slot is single-occupancy.
	if ok, _ := tab.allow(0); ok {
		t.Fatal("second call admitted while a probe is in flight")
	}
	tab.record(0, true, time.Millisecond, true)
	if got := tab.state(0); got != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", got)
	}
	// The pre-trip window of failures is gone: a single new failure must
	// not re-trip on stale outcomes.
	tab.record(0, false, time.Millisecond, false)
	if got := tab.state(0); got != BreakerClosed {
		t.Fatalf("stale window survived the close: %v", got)
	}
}

// TestBreakerProbeFailureReopens: a failed probe re-opens the breaker
// for another full cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	tab := tripTable(t, BreakerConfig{Cooldown: 5 * time.Millisecond})
	time.Sleep(10 * time.Millisecond)
	if ok, probe := tab.allow(0); !ok || !probe {
		t.Fatalf("probe not granted: (%v, %v)", ok, probe)
	}
	tab.record(0, false, time.Millisecond, true)
	if got := tab.state(0); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if ok, _ := tab.allow(0); ok {
		t.Fatal("re-opened breaker admitted a call before the new cooldown")
	}
	if opens, _ := tab.counters(); opens != 2 {
		t.Fatalf("opens = %d, want 2 (trip + failed probe)", opens)
	}
}

// TestBreakerCancelReleasesProbeSlot: a probe abandoned by collateral
// cancellation frees the slot — otherwise one cancelled probe would
// wedge the breaker half-open forever.
func TestBreakerCancelReleasesProbeSlot(t *testing.T) {
	tab := tripTable(t, BreakerConfig{Cooldown: 5 * time.Millisecond})
	time.Sleep(10 * time.Millisecond)
	if ok, probe := tab.allow(0); !ok || !probe {
		t.Fatalf("probe not granted: (%v, %v)", ok, probe)
	}
	tab.cancel(0, true)
	ok, probe := tab.allow(0)
	if !ok || !probe {
		t.Fatalf("allow after cancelled probe = (%v, %v), want a fresh probe grant", ok, probe)
	}
	// A non-probe cancel is a no-op on the slot.
	tab.cancel(0, false)
	if ok, _ := tab.allow(0); ok {
		t.Fatal("non-probe cancel released the probe slot")
	}
}

// TestBreakerConfigureResets: reconfiguring resets every breaker to
// closed with an empty window — outcomes judged under old thresholds
// don't carry over.
func TestBreakerConfigureResets(t *testing.T) {
	tab := tripTable(t, BreakerConfig{Cooldown: time.Hour})
	tab.configure(BreakerConfig{Enabled: true, Window: 8})
	if got := tab.state(0); got != BreakerClosed {
		t.Fatalf("state after configure = %v, want closed", got)
	}
	if q := tab.successQuantile(0, 0.5, 1); q != 0 {
		t.Fatalf("window survived configure: quantile = %v", q)
	}
}

// TestClusterBreakerShortCircuitsAndRecovers is the cluster-level
// acceptance flow: a repeatedly failing shard trips its breaker, open
// queries short-circuit into the degraded path without touching the
// shard, and once the fault clears the half-open probe re-admits it —
// with the healed answer bit-identical to unsharded execution.
func TestClusterBreakerShortCircuitsAndRecovers(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.ConfigureBreakers(BreakerConfig{
		Enabled: true, Window: 8, FailureRatio: 0.5, MinSamples: 2, Cooldown: 50 * time.Millisecond,
	})
	cp := c.WithPartialResults(true)
	if err := c.InjectFault(1, FaultError); err != nil {
		t.Fatal(err)
	}

	// Fail until the breaker trips (scatter + gather both record).
	query := func() *Degraded {
		t.Helper()
		pl, err := cp.PlanReach(bg, q)
		if err != nil {
			t.Fatal(err)
		}
		defer pl.Close()
		if _, err := pl.ResultAt(bg, 0.2); err != nil {
			t.Fatal(err)
		}
		return pl.Degraded()
	}
	for i := 0; i < 10 && c.BreakerState(1) != BreakerOpen; i++ {
		query()
	}
	if got := c.BreakerState(1); got != BreakerOpen {
		t.Fatalf("breaker never opened under sustained failures: %v", got)
	}
	failuresAtTrip := c.Health()[1].Failures

	// Open: the next query short-circuits shard 1 — degraded answer, no
	// new health failures (the shard was never called), counters move.
	d := query()
	if d == nil || len(d.MissingShards) != 1 || d.MissingShards[0] != 1 {
		t.Fatalf("short-circuited query degradation = %+v, want missing shard 1", d)
	}
	if got := c.Health()[1].Failures; got != failuresAtTrip {
		t.Fatalf("short-circuit recorded health failures: %d -> %d", failuresAtTrip, got)
	}
	r := c.Resilience()
	if r.BreakerOpens == 0 || r.BreakerShortCircuits == 0 {
		t.Fatalf("resilience counters = %+v", r)
	}
	if h := c.Health()[1]; h.Breaker != BreakerOpen {
		t.Fatalf("health breaker state = %v, want open", h.Breaker)
	}

	// Fault cleared + cooldown elapsed: the half-open probe heals the
	// shard and the answer is complete and bit-identical to unsharded.
	if err := c.InjectFault(1, FaultNone); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if d := query(); d != nil {
		t.Fatalf("post-recovery query still degraded: %+v", d)
	}
	if got := c.BreakerState(1); got != BreakerClosed {
		t.Fatalf("breaker after successful probe = %v, want closed", got)
	}
	eng, err := core.NewEngine(f.st, f.con, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := cp.PlanReach(bg, q)
	if err != nil {
		t.Fatal(err)
	}
	defer pl.Close()
	got, err := pl.ResultAt(bg, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	qq := q
	qq.Prob = 0.2
	want, err := eng.SQMB(bg, qq)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "healed", got, want)
}

// TestClusterBreakerFailFast: in default (fail-fast) mode an open
// breaker is an immediate typed ShardError carrying ErrBreakerOpen —
// the query does not pay the sick shard's budget.
func TestClusterBreakerFailFast(t *testing.T) {
	f := getFixture(t)
	q := core.Query{Location: f.center, Start: 11 * time.Hour, Duration: 10 * time.Minute}
	c, err := NewCluster(f.st, f.con, core.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.ConfigureBreakers(BreakerConfig{
		Enabled: true, Window: 8, FailureRatio: 0.5, MinSamples: 2, Cooldown: time.Hour,
	})
	if err := c.InjectFault(1, FaultError); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10 && c.BreakerState(1) != BreakerOpen; i++ {
		if pl, err := c.PlanReach(bg, q); err == nil {
			pl.Close()
		}
	}
	if got := c.BreakerState(1); got != BreakerOpen {
		t.Fatalf("breaker never opened: %v", got)
	}
	// Even with the fault cleared, the hour-long cooldown keeps the
	// breaker open: proof the rejection comes from the breaker, not the
	// fault.
	if err := c.InjectFault(1, FaultNone); err != nil {
		t.Fatal(err)
	}
	began := time.Now()
	pl, err := c.PlanReach(bg, q)
	if err == nil {
		pl.Close()
		t.Fatal("fail-fast plan succeeded through an open breaker")
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("error = %v, want ErrBreakerOpen cause", err)
	}
	if elapsed := time.Since(began); elapsed > time.Second {
		t.Fatalf("short-circuit took %v; it must not pay the shard's cost", elapsed)
	}
}
