package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FaultKind selects how an injected shard fault manifests — the three
// failure shapes a real shard process exhibits.
type FaultKind int

const (
	// FaultNone clears injection for the shard.
	FaultNone FaultKind = iota
	// FaultError makes the shard's verify/gather steps return an error.
	FaultError
	// FaultPanic makes them panic (recovered into a typed error).
	FaultPanic
	// FaultHang makes them block until their context is done — the
	// slow-shard shape a per-shard budget is meant to bound.
	FaultHang
)

// String names the kind (chaos-flag keyword).
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultPanic:
		return "panic"
	case FaultHang:
		return "hang"
	}
	return "?"
}

// ParseFaultKind parses a chaos-flag keyword.
func ParseFaultKind(s string) (FaultKind, error) {
	switch s {
	case "none":
		return FaultNone, nil
	case "error":
		return FaultError, nil
	case "panic":
		return FaultPanic, nil
	case "hang":
		return FaultHang, nil
	}
	return FaultNone, fmt.Errorf("shard: unknown fault kind %q", s)
}

// faultTable holds the injected per-shard faults, shared by every
// cluster view. The atomic active count keeps the healthy fast path to
// one load.
type faultTable struct {
	active atomic.Int32
	mu     sync.Mutex
	kinds  map[int]FaultKind
}

func newFaultTable() *faultTable { return &faultTable{kinds: map[int]FaultKind{}} }

func (t *faultTable) get(sh int) FaultKind {
	if t.active.Load() == 0 {
		return FaultNone
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.kinds[sh]
}

func (t *faultTable) set(sh int, k FaultKind) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if k == FaultNone {
		delete(t.kinds, sh)
	} else {
		t.kinds[sh] = k
	}
	t.active.Store(int32(len(t.kinds)))
}

// ShardError is one shard's failure within a scatter-gather query.
type ShardError struct {
	// Shard is the failing shard's ordinal.
	Shard int
	// Err is the underlying cause (error return, recovered panic, or
	// budget expiry).
	Err error
}

// Error implements error.
func (e *ShardError) Error() string { return fmt.Sprintf("shard %d: %v", e.Shard, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *ShardError) Unwrap() error { return e.Err }

// Degraded describes a partial-results answer: which shards did not
// contribute and how much of the network the answer still covers.
type Degraded struct {
	// MissingShards lists the shards whose partials are absent from the
	// merged region, ascending.
	MissingShards []int
	// Coverage is the fraction of network segments owned by the shards
	// that did contribute, in [0, 1].
	Coverage float64
	// Failures carries the per-shard causes, parallel to MissingShards.
	Failures []*ShardError
}

// Health is one shard's failure record.
type Health struct {
	// Shard is the shard ordinal.
	Shard int
	// Failures counts scatter/gather failures attributed to the shard.
	Failures int64
	// LastError is the most recent failure's message ("" when none).
	LastError string
	// Fault is the currently injected fault, FaultNone when healthy.
	Fault FaultKind
	// Breaker is the shard's circuit-breaker state (closed when
	// breakers are disabled).
	Breaker BreakerState
}

// healthTable accumulates per-shard failure records, shared by every
// cluster view.
type healthTable struct {
	failures []atomic.Int64
	mu       sync.Mutex
	lastErr  []string
}

func newHealthTable(k int) *healthTable {
	return &healthTable{failures: make([]atomic.Int64, k), lastErr: make([]string, k)}
}

func (h *healthTable) record(sh int, err error) {
	h.failures[sh].Add(1)
	h.mu.Lock()
	h.lastErr[sh] = err.Error()
	h.mu.Unlock()
}

// InjectFault injects (or, with FaultNone, clears) a fault on shard sh:
// every subsequent scatter verification and gather step touching the
// shard fails with the given shape. Shared by all views of the cluster.
func (c *Cluster) InjectFault(sh int, k FaultKind) error {
	if sh < 0 || sh >= c.part.Shards() {
		return fmt.Errorf("shard: no shard %d (cluster has %d)", sh, c.part.Shards())
	}
	c.faults.set(sh, k)
	return nil
}

// Health snapshots every shard's failure record.
func (c *Cluster) Health() []Health {
	out := make([]Health, c.part.Shards())
	c.hlth.mu.Lock()
	defer c.hlth.mu.Unlock()
	for sh := range out {
		out[sh] = Health{
			Shard:     sh,
			Failures:  c.hlth.failures[sh].Load(),
			LastError: c.hlth.lastErr[sh],
			Fault:     c.faults.get(sh),
			Breaker:   c.brk.state(sh),
		}
	}
	return out
}

// WithPartialResults returns a cluster view that degrades instead of
// failing: scatter-gather queries on the view tolerate shard failures,
// merging the surviving shards' partials and reporting the loss as
// Degraded metadata on the plan. The partition, engines, metrics,
// faults, and health are shared with the receiver.
func (c *Cluster) WithPartialResults(on bool) *Cluster {
	if c.partial == on {
		return c
	}
	nc := *c
	nc.partial = on
	return &nc
}

// WithShardBudget returns a cluster view whose per-shard scatter work
// is bounded by d: a shard that does not finish verifying inside d is
// treated as failed (timeout), instead of stalling the whole query.
// Zero removes the bound.
func (c *Cluster) WithShardBudget(d time.Duration) *Cluster {
	if c.budget == d {
		return c
	}
	nc := *c
	nc.budget = d
	return &nc
}
