package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"streach"
)

var (
	worldOnce sync.Once
	testWorld *World
	worldErr  error
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		testWorld, worldErr = BuildWorld(SmallConfig())
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return testWorld
}

func TestWorldSystemsCached(t *testing.T) {
	w := smallWorld(t)
	a, err := w.System(300)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.System(300)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("System(300) should be cached")
	}
	c, err := w.System(600)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different Δt must build a different system")
	}
}

func TestQueryLocationStable(t *testing.T) {
	w := smallWorld(t)
	a, err := w.QueryLocation()
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.QueryLocation()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("query location should be deterministic")
	}
}

func TestMultiQueryLocationsSpacing(t *testing.T) {
	w := smallWorld(t)
	locs, err := w.MultiQueryLocations(3, 11*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) != 3 {
		t.Fatalf("got %d locations", len(locs))
	}
	for i := 0; i < len(locs); i++ {
		for j := i + 1; j < len(locs); j++ {
			dLat := (locs[i].Lat - locs[j].Lat) * 111195
			dLng := (locs[i].Lng - locs[j].Lng) * 111195 * 0.92
			if dLat*dLat+dLng*dLng < 1500*1500*0.8 {
				t.Fatalf("locations %d and %d too close", i, j)
			}
		}
	}
	if _, err := w.MultiQueryLocations(0, 11*time.Hour); err == nil {
		t.Fatal("n=0 should error")
	}
}

func TestFig42SmallWorld(t *testing.T) {
	w := smallWorld(t)
	rows, err := Fig42(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Fig42 rows = %d", len(rows))
	}
	if rows[1].RoadKm < rows[0].RoadKm {
		t.Fatalf("L=10 region (%v km) should not be smaller than L=5 (%v km)", rows[1].RoadKm, rows[0].RoadKm)
	}
	var buf bytes.Buffer
	PrintFig42(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 4.2") {
		t.Fatal("printer should label the figure")
	}
}

func TestFig47SmallWorldCoarseOnly(t *testing.T) {
	// Restrict to the coarse granularities to keep the test fast: the
	// shape assertion is that results exist for each Δt.
	w := smallWorld(t)
	loc, err := w.QueryLocation()
	if err != nil {
		t.Fatal(err)
	}
	for _, dt := range []int{300, 600} {
		sys, err := w.System(dt)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Reach(streach.Query{
			Lat: loc.Lat, Lng: loc.Lng,
			Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics.MaxRegion == 0 {
			t.Fatalf("Δt=%ds produced an empty max region", dt)
		}
	}
}

func TestFig49UnionProperty(t *testing.T) {
	w := smallWorld(t)
	res, err := Fig49(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnionSegments == 0 {
		t.Fatal("s-query union is empty")
	}
	cover := float64(res.CoveredByM) / float64(res.UnionSegments)
	if cover < 0.7 {
		t.Fatalf("m-query covers only %.0f%% of the s-query union", cover*100)
	}
	var buf bytes.Buffer
	PrintFig49(&buf, res)
	if !strings.Contains(buf.String(), "m-query region") {
		t.Fatal("printer output missing")
	}
}

func TestTable41And42Print(t *testing.T) {
	w := smallWorld(t)
	var buf bytes.Buffer
	if err := Table41(&buf, w); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Road segments", "Number of taxis", "days"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Table 4.1 output missing %q:\n%s", want, buf.String())
		}
	}
	buf.Reset()
	Table42(&buf)
	if !strings.Contains(buf.String(), "Δt") {
		t.Fatal("Table 4.2 output missing Δt row")
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{1500 * time.Millisecond, "1.50s"},
		{25 * time.Millisecond, "25.0ms"},
		{300 * time.Microsecond, "300µs"},
	}
	for _, c := range cases {
		if got := fmtDur(c.d); got != c.want {
			t.Fatalf("fmtDur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestFig43SmallWorld(t *testing.T) {
	w := smallWorld(t)
	rows, err := Fig43(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Fig43 rows = %d, want 5", len(rows))
	}
	// Road length must be non-increasing in Prob.
	for i := 1; i < len(rows); i++ {
		if rows[i].RoadKm10 > rows[i-1].RoadKm10+1e-9 {
			t.Fatalf("road length rose with Prob: %v -> %v", rows[i-1].RoadKm10, rows[i].RoadKm10)
		}
	}
	var buf bytes.Buffer
	PrintFig43(&buf, rows)
	if !strings.Contains(buf.String(), "Fig 4.3") {
		t.Fatal("printer output missing")
	}
}

func TestFig44And46SmallWorld(t *testing.T) {
	w := smallWorld(t)
	rows44, err := Fig44(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows44) != 4 {
		t.Fatalf("Fig44 rows = %d", len(rows44))
	}
	for i := 1; i < len(rows44); i++ {
		if rows44[i].Segments > rows44[i-1].Segments {
			t.Fatalf("region grew with Prob at row %d", i)
		}
	}
	rows46, err := Fig46(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows46) != 4 {
		t.Fatalf("Fig46 rows = %d", len(rows46))
	}
	var buf bytes.Buffer
	PrintFig44(&buf, rows44)
	PrintFig46(&buf, rows46)
	if !strings.Contains(buf.String(), "Fig 4.4") || !strings.Contains(buf.String(), "Fig 4.6") {
		t.Fatal("printer output missing")
	}
}

func TestFig48bSmallWorld(t *testing.T) {
	w := smallWorld(t)
	rows, err := Fig48b(w, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("Fig48b rows = %d", len(rows))
	}
	if rows[0].Locations != 1 || rows[1].Locations != 2 {
		t.Fatalf("location counts wrong: %+v", rows)
	}
	var buf bytes.Buffer
	PrintFig48b(&buf, rows)
	if !strings.Contains(buf.String(), "4.8b") {
		t.Fatal("printer output missing")
	}
}
