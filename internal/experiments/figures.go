package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"streach"
)

// durations for Fig 4.1/4.8a sweeps: L in {5, 10, ..., 35} minutes.
var durationSweep = []time.Duration{
	5 * time.Minute, 10 * time.Minute, 15 * time.Minute, 20 * time.Minute,
	25 * time.Minute, 30 * time.Minute, 35 * time.Minute,
}

// probSweep for Fig 4.3/4.4: Prob in {20%, ..., 100%}.
var probSweep = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// Fig41Row is one point of Fig 4.1: effect of duration L on s-query
// processing time (a) and reachable road length (b).
type Fig41Row struct {
	L          time.Duration
	ES         time.Duration // baseline
	SQMB5      time.Duration // SQMB+TBS, Δt = 5 min
	SQMB10     time.Duration // SQMB+TBS, Δt = 10 min
	RoadKm5    float64
	RoadKm10   float64
	ESEval     int
	SQMB5Eval  int
	SQMB10Eval int
}

// Fig41 sweeps duration L with T=11:00, Prob=20% (Table 4.2 defaults).
func Fig41(w *World) ([]Fig41Row, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	sys5, err := w.System(300)
	if err != nil {
		return nil, err
	}
	sys10, err := w.System(600)
	if err != nil {
		return nil, err
	}
	// Index construction is offline in the thesis: warm the Con-Index
	// tables for the query window before timing.
	sys5.Warm(11*time.Hour, 35*time.Minute)
	sys10.Warm(11*time.Hour, 35*time.Minute)
	var rows []Fig41Row
	for _, L := range durationSweep {
		q := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: L, Prob: 0.2}
		es, err := timedReach(func() (*streach.Region, error) { return sys5.ReachES(q) })
		if err != nil {
			return nil, err
		}
		r5, err := timedReach(func() (*streach.Region, error) { return sys5.Reach(q) })
		if err != nil {
			return nil, err
		}
		r10, err := timedReach(func() (*streach.Region, error) { return sys10.Reach(q) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig41Row{
			L:  L,
			ES: es.Metrics.Elapsed, SQMB5: r5.Metrics.Elapsed, SQMB10: r10.Metrics.Elapsed,
			RoadKm5: r5.RoadKm, RoadKm10: r10.RoadKm,
			ESEval: es.Metrics.Evaluated, SQMB5Eval: r5.Metrics.Evaluated, SQMB10Eval: r10.Metrics.Evaluated,
		})
	}
	return rows, nil
}

// PrintFig41 renders the sweep like the paper's two panels.
func PrintFig41(out io.Writer, rows []Fig41Row) {
	fmt.Fprintln(out, "Fig 4.1 — effect of duration L (T=11:00, Prob=20%)")
	fmt.Fprintln(out, "   L(min)      ES    SQMB+TBS(5m)   SQMB+TBS(10m)   evalES  eval5  eval10   km(5m)  km(10m)")
	for _, r := range rows {
		fmt.Fprintf(out, "   %6.0f  %8s  %12s  %14s  %6d  %5d  %6d  %7.1f  %7.1f\n",
			r.L.Minutes(), fmtDur(r.ES), fmtDur(r.SQMB5), fmtDur(r.SQMB10),
			r.ESEval, r.SQMB5Eval, r.SQMB10Eval, r.RoadKm5, r.RoadKm10)
	}
}

// Fig42Region summarises an example Prob-reachable region (Fig 4.2).
type Fig42Region struct {
	L        time.Duration
	Segments int
	RoadKm   float64
	SpanKm   float64 // diagonal of the region bounding box
}

// Fig42 renders the two example regions (L = 5, 10 min; Prob = 20%).
func Fig42(w *World) ([]Fig42Region, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	sys.Warm(11*time.Hour, 10*time.Minute)
	var out []Fig42Region
	for _, L := range []time.Duration{5 * time.Minute, 10 * time.Minute} {
		region, err := sys.Reach(streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: L, Prob: 0.2})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig42Region{L: L, Segments: len(region.SegmentIDs), RoadKm: region.RoadKm, SpanKm: spanKm(region)})
	}
	return out, nil
}

// PrintFig42 renders the region summaries.
func PrintFig42(out io.Writer, rows []Fig42Region) {
	fmt.Fprintln(out, "Fig 4.2 — example Prob-reachable regions (Prob=20%)")
	for _, r := range rows {
		fmt.Fprintf(out, "   L=%2.0f min: %4d segments, %7.1f km road, %5.1f km span\n",
			r.L.Minutes(), r.Segments, r.RoadKm, r.SpanKm)
	}
}

// Fig43Row is one point of Fig 4.3: effect of probability Prob.
type Fig43Row struct {
	Prob     float64
	ES       time.Duration
	SQMB10   time.Duration // L = 10 min
	SQMB15   time.Duration // L = 15 min
	RoadKm10 float64
	RoadKm15 float64
	Eval10   int
	Eval15   int
}

// Fig43 sweeps Prob with T=11:00 fixed.
func Fig43(w *World) ([]Fig43Row, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	sys.Warm(11*time.Hour, 15*time.Minute)
	var rows []Fig43Row
	for _, p := range probSweep {
		q10 := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: p}
		q15 := q10
		q15.Duration = 15 * time.Minute
		es, err := timedReach(func() (*streach.Region, error) { return sys.ReachES(q10) })
		if err != nil {
			return nil, err
		}
		r10, err := timedReach(func() (*streach.Region, error) { return sys.Reach(q10) })
		if err != nil {
			return nil, err
		}
		r15, err := timedReach(func() (*streach.Region, error) { return sys.Reach(q15) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig43Row{
			Prob: p, ES: es.Metrics.Elapsed,
			SQMB10: r10.Metrics.Elapsed, SQMB15: r15.Metrics.Elapsed,
			RoadKm10: r10.RoadKm, RoadKm15: r15.RoadKm,
			Eval10: r10.Metrics.Evaluated, Eval15: r15.Metrics.Evaluated,
		})
	}
	return rows, nil
}

// PrintFig43 renders the Prob sweep.
func PrintFig43(out io.Writer, rows []Fig43Row) {
	fmt.Fprintln(out, "Fig 4.3 — effect of probability Prob (T=11:00)")
	fmt.Fprintln(out, "   Prob      ES   SQMB+TBS(L=10)  SQMB+TBS(L=15)   km(10)   km(15)")
	for _, r := range rows {
		fmt.Fprintf(out, "   %3.0f%%  %8s  %14s  %14s  %7.1f  %7.1f\n",
			r.Prob*100, fmtDur(r.ES), fmtDur(r.SQMB10), fmtDur(r.SQMB15), r.RoadKm10, r.RoadKm15)
	}
}

// Fig44 reuses the Prob sweep to emit region summaries like the paper's
// four map panels (Prob = 20/60/80/100%).
func Fig44(w *World) ([]Fig42Region, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	sys.Warm(11*time.Hour, 10*time.Minute)
	var out []Fig42Region
	for _, p := range []float64{0.2, 0.6, 0.8, 1.0} {
		region, err := sys.Reach(streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: p})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig42Region{
			L:        time.Duration(p * float64(time.Hour)), // reuse field: encodes Prob for printing
			Segments: len(region.SegmentIDs),
			RoadKm:   region.RoadKm,
			SpanKm:   spanKm(region),
		})
	}
	return out, nil
}

// PrintFig44 renders the Prob region summaries.
func PrintFig44(out io.Writer, rows []Fig42Region) {
	fmt.Fprintln(out, "Fig 4.4 — regions at Prob = 20/60/80/100% (L=10 min)")
	probs := []float64{20, 60, 80, 100}
	for i, r := range rows {
		fmt.Fprintf(out, "   Prob=%3.0f%%: %4d segments, %7.1f km road, %5.1f km span\n",
			probs[i], r.Segments, r.RoadKm, r.SpanKm)
	}
}

// Fig45Row is one point of Fig 4.5: effect of start time T.
type Fig45Row struct {
	Hour    int
	SQMB5m  time.Duration // L = 5 min
	SQMB10m time.Duration // L = 10 min
	Km5     float64
	Km10    float64
}

// Fig45 sweeps the start time over the day (L = 5 and 10 min, Prob=80%,
// matching the paper's visualisation settings).
func Fig45(w *World) ([]Fig45Row, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	var rows []Fig45Row
	for h := 0; h < 24; h++ {
		sys.Warm(time.Duration(h)*time.Hour, 10*time.Minute)
		q5 := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: time.Duration(h) * time.Hour, Duration: 5 * time.Minute, Prob: 0.2}
		q10 := q5
		q10.Duration = 10 * time.Minute
		r5, err := timedReach(func() (*streach.Region, error) { return sys.Reach(q5) })
		if err != nil {
			return nil, err
		}
		r10, err := timedReach(func() (*streach.Region, error) { return sys.Reach(q10) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig45Row{
			Hour: h, SQMB5m: r5.Metrics.Elapsed, SQMB10m: r10.Metrics.Elapsed,
			Km5: r5.RoadKm, Km10: r10.RoadKm,
		})
	}
	return rows, nil
}

// PrintFig45 renders the start-time sweep.
func PrintFig45(out io.Writer, rows []Fig45Row) {
	fmt.Fprintln(out, "Fig 4.5 — effect of start time T (Prob=20%)")
	fmt.Fprintln(out, "   T      SQMB(L=5)   SQMB(L=10)     km(5)    km(10)")
	for _, r := range rows {
		fmt.Fprintf(out, "   %02d:00  %9s  %11s  %8.1f  %8.1f\n",
			r.Hour, fmtDur(r.SQMB5m), fmtDur(r.SQMB10m), r.Km5, r.Km10)
	}
}

// Fig46 emits region summaries at T = 1am/6am/12pm/6pm (L=5 min,
// Prob=80%, the paper's Fig 4.6 settings).
func Fig46(w *World) ([]Fig42Region, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	var out []Fig42Region
	for _, h := range []int{1, 6, 12, 18} {
		sys.Warm(time.Duration(h)*time.Hour, 5*time.Minute)
		region, err := sys.Reach(streach.Query{
			Lat: loc.Lat, Lng: loc.Lng,
			Start: time.Duration(h) * time.Hour, Duration: 5 * time.Minute, Prob: 0.8,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig42Region{
			L:        time.Duration(h) * time.Hour, // encodes T for printing
			Segments: len(region.SegmentIDs),
			RoadKm:   region.RoadKm,
			SpanKm:   spanKm(region),
		})
	}
	return out, nil
}

// PrintFig46 renders the per-start-time regions.
func PrintFig46(out io.Writer, rows []Fig42Region) {
	fmt.Fprintln(out, "Fig 4.6 — regions at T = 01/06/12/18 h (L=5 min, Prob=80%)")
	for _, r := range rows {
		fmt.Fprintf(out, "   T=%02.0f:00: %4d segments, %7.1f km road, %5.1f km span\n",
			r.L.Hours(), r.Segments, r.RoadKm, r.SpanKm)
	}
}

// Fig47Row is one point of Fig 4.7: effect of the index granularity Δt.
type Fig47Row struct {
	DtMinutes int
	SQMB5m    time.Duration // L = 5 min
	SQMB10m   time.Duration // L = 10 min
	ES        time.Duration // reference
}

// Fig47 sweeps Δt in {1, 5, 10, 20} minutes, rebuilding the indexes.
func Fig47(w *World) ([]Fig47Row, error) {
	loc, err := w.QueryLocation()
	if err != nil {
		return nil, err
	}
	var rows []Fig47Row
	for _, dtMin := range []int{1, 5, 10, 20} {
		sys, err := w.System(dtMin * 60)
		if err != nil {
			return nil, err
		}
		sys.Warm(11*time.Hour, 10*time.Minute)
		q5 := streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 5 * time.Minute, Prob: 0.2}
		q10 := q5
		q10.Duration = 10 * time.Minute
		r5, err := timedReach(func() (*streach.Region, error) { return sys.Reach(q5) })
		if err != nil {
			return nil, err
		}
		r10, err := timedReach(func() (*streach.Region, error) { return sys.Reach(q10) })
		if err != nil {
			return nil, err
		}
		es, err := timedReach(func() (*streach.Region, error) { return sys.ReachES(q10) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig47Row{DtMinutes: dtMin, SQMB5m: r5.Metrics.Elapsed, SQMB10m: r10.Metrics.Elapsed, ES: es.Metrics.Elapsed})
	}
	return rows, nil
}

// PrintFig47 renders the Δt sweep.
func PrintFig47(out io.Writer, rows []Fig47Row) {
	fmt.Fprintln(out, "Fig 4.7 — processing time over Δt (T=11:00, Prob=20%)")
	fmt.Fprintln(out, "   Δt(min)  SQMB(L=5)  SQMB(L=10)        ES")
	for _, r := range rows {
		fmt.Fprintf(out, "   %7d  %9s  %10s  %8s\n", r.DtMinutes, fmtDur(r.SQMB5m), fmtDur(r.SQMB10m), fmtDur(r.ES))
	}
}

// Fig48aRow compares m-query vs sequential s-queries over duration
// (3 locations, Prob=20%).
type Fig48aRow struct {
	L     time.Duration
	MQMB  time.Duration
	SeqSQ time.Duration
}

// Fig48a sweeps duration for a 3-location m-query.
func Fig48a(w *World) ([]Fig48aRow, error) {
	locs, err := w.MultiQueryLocations(3, 11*time.Hour)
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	sys.Warm(11*time.Hour, 35*time.Minute)
	var rows []Fig48aRow
	for _, L := range durationSweep {
		m, err := timedReach(func() (*streach.Region, error) { return sys.ReachMulti(locs, 11*time.Hour, L, 0.2) })
		if err != nil {
			return nil, err
		}
		s, err := timedReach(func() (*streach.Region, error) { return sys.ReachMultiSequential(locs, 11*time.Hour, L, 0.2) })
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig48aRow{L: L, MQMB: m.Metrics.Elapsed, SeqSQ: s.Metrics.Elapsed})
	}
	return rows, nil
}

// PrintFig48a renders the duration comparison.
func PrintFig48a(out io.Writer, rows []Fig48aRow) {
	fmt.Fprintln(out, "Fig 4.8a — m-query vs sequential s-queries over duration (3 locations, Prob=20%)")
	fmt.Fprintln(out, "   L(min)    MQMB+TBS   nxSQMB+TBS")
	for _, r := range rows {
		fmt.Fprintf(out, "   %6.0f  %10s  %11s\n", r.L.Minutes(), fmtDur(r.MQMB), fmtDur(r.SeqSQ))
	}
}

// Fig48bRow compares m-query vs sequential s-queries over the number of
// locations (L=20 min, T=10:00, Prob=20%).
type Fig48bRow struct {
	Locations int
	MQMB      time.Duration
	SeqSQ     time.Duration
}

// Fig48b sweeps the location count 1..n.
func Fig48b(w *World, maxLocs int) ([]Fig48bRow, error) {
	locs, err := w.MultiQueryLocations(maxLocs, 10*time.Hour)
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	sys.Warm(10*time.Hour, 20*time.Minute)
	var rows []Fig48bRow
	for n := 1; n <= maxLocs; n++ {
		m, err := timedReach(func() (*streach.Region, error) { return sys.ReachMulti(locs[:n], 10*time.Hour, 20*time.Minute, 0.2) })
		if err != nil {
			return nil, err
		}
		s, err := timedReach(func() (*streach.Region, error) {
			return sys.ReachMultiSequential(locs[:n], 10*time.Hour, 20*time.Minute, 0.2)
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig48bRow{Locations: n, MQMB: m.Metrics.Elapsed, SeqSQ: s.Metrics.Elapsed})
	}
	return rows, nil
}

// PrintFig48b renders the location-count comparison.
func PrintFig48b(out io.Writer, rows []Fig48bRow) {
	fmt.Fprintln(out, "Fig 4.8b — m-query vs sequential s-queries over #locations (L=20 min, T=10:00)")
	fmt.Fprintln(out, "   #locs    MQMB+TBS   nxSQMB+TBS")
	for _, r := range rows {
		fmt.Fprintf(out, "   %5d  %10s  %11s\n", r.Locations, fmtDur(r.MQMB), fmtDur(r.SeqSQ))
	}
}

// Fig49Result verifies the union property of Fig 4.9: the 3-location
// m-query region covers the individual s-query regions.
type Fig49Result struct {
	MQuerySegments int
	SQuerySegments [3]int
	UnionSegments  int
	CoveredByM     int // union segments present in the m-query region
}

// Fig49 runs the 3-location experiment.
func Fig49(w *World) (*Fig49Result, error) {
	locs, err := w.MultiQueryLocations(3, 11*time.Hour)
	if err != nil {
		return nil, err
	}
	sys, err := w.System(300)
	if err != nil {
		return nil, err
	}
	m, err := sys.ReachMulti(locs, 11*time.Hour, 10*time.Minute, 0.2)
	if err != nil {
		return nil, err
	}
	out := &Fig49Result{MQuerySegments: len(m.SegmentIDs)}
	union := map[int32]bool{}
	for i, loc := range locs {
		r, err := sys.Reach(streach.Query{Lat: loc.Lat, Lng: loc.Lng, Start: 11 * time.Hour, Duration: 10 * time.Minute, Prob: 0.2})
		if err != nil {
			return nil, err
		}
		out.SQuerySegments[i] = len(r.SegmentIDs)
		for _, id := range r.SegmentIDs {
			union[id] = true
		}
	}
	out.UnionSegments = len(union)
	for id := range union {
		if m.Contains(id) {
			out.CoveredByM++
		}
	}
	return out, nil
}

// PrintFig49 renders the union check.
func PrintFig49(out io.Writer, r *Fig49Result) {
	fmt.Fprintln(out, "Fig 4.9 — m-query region vs union of s-query regions (3 locations)")
	fmt.Fprintf(out, "   s-query regions: %d / %d / %d segments; union %d\n",
		r.SQuerySegments[0], r.SQuerySegments[1], r.SQuerySegments[2], r.UnionSegments)
	fmt.Fprintf(out, "   m-query region: %d segments, covering %d/%d of the union (%.0f%%)\n",
		r.MQuerySegments, r.CoveredByM, r.UnionSegments,
		100*float64(r.CoveredByM)/float64(max(1, r.UnionSegments)))
}

// Table41 prints the dataset description.
func Table41(out io.Writer, w *World) error {
	sys, err := w.System(300)
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Fprintln(out, "Table 4.1 — dataset description (synthetic stand-in, see DESIGN.md)")
	fmt.Fprintf(out, "   City size:          %.0f square km (paper: 400 square miles)\n",
		float64(w.Cfg.CityRows)*w.Cfg.SpacingMeters*float64(w.Cfg.CityCols)*w.Cfg.SpacingMeters/1e6)
	fmt.Fprintf(out, "   Road segments:      %d (re-segmented at %.0f m)\n", st.Segments, w.Cfg.ResegmentMeters)
	fmt.Fprintf(out, "   Road length:        %.0f km\n", st.RoadKm)
	fmt.Fprintf(out, "   Duration:           %d days (paper: 30 days, Nov 2014)\n", st.Days)
	fmt.Fprintf(out, "   Number of taxis:    %d (paper: 21,385)\n", st.Taxis)
	fmt.Fprintf(out, "   Trajectories:       %d taxi-days\n", st.Trajectories)
	fmt.Fprintf(out, "   Segment visits:     %d (paper: 407,040,083 GPS records)\n", st.Visits)
	return nil
}

// Table42 prints the evaluation configuration grid.
func Table42(out io.Writer) {
	fmt.Fprintln(out, "Table 4.2 — evaluation configuration")
	fmt.Fprintln(out, "   duration L:        5..35 min (step 5)")
	fmt.Fprintln(out, "   probability Prob:  20%..100% (step 20)")
	fmt.Fprintln(out, "   start time T:      00:00..23:00 hourly")
	fmt.Fprintln(out, "   interval Δt:       1, 5, 10, 20 min")
	fmt.Fprintln(out, "   s-query:           ES, SQMB+TBS")
	fmt.Fprintln(out, "   m-query:           SQMB+TBS xN, MQMB+TBS")
}

// timedReach runs the query three times and returns the result with the
// minimum elapsed time, damping scheduler noise in the figures.
func timedReach(reach func() (*streach.Region, error)) (*streach.Region, error) {
	var best *streach.Region
	for i := 0; i < 3; i++ {
		r, err := reach()
		if err != nil {
			return nil, err
		}
		if best == nil || r.Metrics.Elapsed < best.Metrics.Elapsed {
			best = r
		}
	}
	return best, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func spanKm(r *streach.Region) float64 {
	minLat, minLng, maxLat, maxLng, ok := r.Bounds()
	if !ok {
		return 0
	}
	// Diagonal of the bounding box, in km.
	dLat := (maxLat - minLat) * 111.195
	dLng := (maxLng - minLng) * 111.195 * 0.92 // cos(22.5°)
	return math.Sqrt(dLat*dLat + dLng*dLng)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
