// Package experiments regenerates every table and figure of the thesis's
// evaluation chapter (Chapter 4) on the synthetic metropolis. Each
// figure has one function returning typed rows plus a printer, consumed
// by both the root-level benchmarks and `cmd/streach experiment`.
//
// Absolute numbers differ from the paper (their testbed was 194 GB of
// real Shenzhen GPS on server hardware; ours is a laptop-scale synthetic
// city), but the comparative shapes are expected to hold — see
// EXPERIMENTS.md for paper-vs-measured notes.
package experiments

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"streach"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

// Config sizes the experiment world. Defaults mirror the paper's setup
// at laptop scale: a ~12x12 km city, 500 m re-segmentation, a taxi fleet
// observed for 30 days, Δt = 5 min.
type Config struct {
	CityRows, CityCols int
	SpacingMeters      float64
	ResegmentMeters    float64
	Taxis              int
	Days               int
	Seed               int64
}

// DefaultConfig returns the standard experiment world.
func DefaultConfig() Config {
	return Config{
		CityRows: 12, CityCols: 12,
		SpacingMeters:   1000,
		ResegmentMeters: 500,
		Taxis:           400,
		Days:            30,
		Seed:            7,
	}
}

// SmallConfig returns a fast world for smoke tests.
func SmallConfig() Config {
	return Config{
		CityRows: 6, CityCols: 6,
		SpacingMeters:   900,
		ResegmentMeters: 450,
		Taxis:           40,
		Days:            6,
		Seed:            7,
	}
}

// World is a built experiment environment: one city and fleet, with
// systems (index pairs) built lazily per Δt.
type World struct {
	Cfg Config
	Net *roadnet.Network
	DS  *traj.Dataset

	mu      sync.Mutex
	systems map[int]*streach.System
}

// BuildWorld generates the city and simulates the fleet once.
func BuildWorld(cfg Config) (*World, error) {
	net, err := streach.BuildCity(streach.CityConfig{
		OriginLat: 22.45, OriginLng: 113.90,
		Rows: cfg.CityRows, Cols: cfg.CityCols,
		SpacingMeters:   cfg.SpacingMeters,
		LocalFraction:   0.4,
		ResegmentMeters: cfg.ResegmentMeters,
		Seed:            cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	ds, err := traj.Simulate(net, traj.SimConfig{
		Taxis:           cfg.Taxis,
		Days:            cfg.Days,
		Profile:         traj.DefaultSpeedProfile(),
		Seed:            cfg.Seed + 1,
		MeanTripMinutes: 18,
		MeanIdleMinutes: 14,
		DaySpeedJitter:  0.15,
	})
	if err != nil {
		return nil, err
	}
	return &World{Cfg: cfg, Net: net, DS: ds, systems: map[int]*streach.System{}}, nil
}

// System returns (building on first use) the system indexed at the given
// Δt granularity in seconds.
func (w *World) System(slotSec int) (*streach.System, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if s, ok := w.systems[slotSec]; ok {
		return s, nil
	}
	s, err := streach.NewSystemFromData(w.Net, w.DS, streach.IndexConfig{
		SlotSeconds: slotSec,
		PoolPages:   2048,
	})
	if err != nil {
		return nil, err
	}
	w.systems[slotSec] = s
	return s, nil
}

// QueryLocation returns the standard query origin: the busiest segment
// at 11:00, mirroring the paper's fixed downtown location
// s = (22.5311, 114.0550).
func (w *World) QueryLocation() (streach.Location, error) {
	sys, err := w.System(300)
	if err != nil {
		return streach.Location{}, err
	}
	return sys.BusiestLocation(11 * time.Hour), nil
}

// MultiQueryLocations returns up to n busy, mutually distant locations
// for m-query experiments.
func (w *World) MultiQueryLocations(n int, tod time.Duration) ([]streach.Location, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: need n > 0")
	}
	// Rank segments by distinct traffic days in the slot at tod.
	type busy struct {
		seg  roadnet.SegmentID
		days int
	}
	counts := map[roadnet.SegmentID]map[traj.Day]bool{}
	lo, hi := tod, tod+5*time.Minute
	for i := range w.DS.Matched {
		mt := &w.DS.Matched[i]
		for _, v := range mt.Visits {
			enter := time.Duration(v.EnterMs) * time.Millisecond
			if enter >= lo && enter < hi {
				if counts[v.Segment] == nil {
					counts[v.Segment] = map[traj.Day]bool{}
				}
				counts[v.Segment][mt.Day] = true
			}
		}
	}
	ranked := make([]busy, 0, len(counts))
	for seg, d := range counts {
		ranked = append(ranked, busy{seg, len(d)})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].days != ranked[j].days {
			return ranked[i].days > ranked[j].days
		}
		return ranked[i].seg < ranked[j].seg
	})
	const minSpacing = 1500.0 // metres between query locations
	var picked []geo.Point
	var out []streach.Location
	for _, b := range ranked {
		p := w.Net.Segment(b.seg).Midpoint()
		tooClose := false
		for _, q := range picked {
			if geo.Distance(p, q) < minSpacing {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		picked = append(picked, p)
		out = append(out, streach.Location{Lat: p.Lat, Lng: p.Lng})
		if len(out) == n {
			break
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("experiments: only found %d of %d distant busy locations", len(out), n)
	}
	return out, nil
}
