package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"streach/internal/geo"
)

var origin = geo.Point{Lat: 22.5, Lng: 114.0}

// randomItems scatters n small boxes across a ~20 km square.
func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		p := geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
		q := geo.Offset(p, rng.Float64()*200, rng.Float64()*200)
		items[i] = Item{ID: int64(i), Box: geo.NewMBR(p, q)}
	}
	return items
}

// bruteSearch is the oracle for Search.
func bruteSearch(items []Item, query geo.MBR) []int64 {
	var out []int64
	for _, it := range items {
		if it.Box.Intersects(query) {
			out = append(out, it.ID)
		}
	}
	return out
}

func sortIDs(ids []int64) []int64 {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree should be empty")
	}
	if got := tr.Search(geo.NewMBR(origin, origin), nil); len(got) != 0 {
		t.Fatal("search on empty tree should return nothing")
	}
	if got := tr.Nearest(origin, 3); len(got) != 0 {
		t.Fatal("nearest on empty tree should return nothing")
	}
	bl := BulkLoad(nil)
	if bl.Len() != 0 {
		t.Fatal("bulk load of nil should be empty")
	}
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(2000, 7)
	tr := BulkLoad(items)
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		a := geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
		b := geo.Offset(a, rng.Float64()*4000, rng.Float64()*4000)
		query := geo.NewMBR(a, b)
		got := sortIDs(tr.Search(query, nil))
		want := sortIDs(bruteSearch(items, query))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", i, len(got), len(want))
		}
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	items := randomItems(1500, 9)
	tr := New()
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Len() != len(items) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(items))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		a := geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
		b := geo.Offset(a, rng.Float64()*3000, rng.Float64()*3000)
		query := geo.NewMBR(a, b)
		got := sortIDs(tr.Search(query, nil))
		want := sortIDs(bruteSearch(items, query))
		if !equalIDs(got, want) {
			t.Fatalf("query %d: got %d ids, want %d", i, len(got), len(want))
		}
	}
}

func TestMixedBulkLoadThenInsert(t *testing.T) {
	base := randomItems(500, 11)
	tr := BulkLoad(base)
	extra := randomItems(500, 12)
	for i := range extra {
		extra[i].ID += 500
		tr.Insert(extra[i])
	}
	all := append(append([]Item(nil), base...), extra...)
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	query := tr.Bounds()
	got := sortIDs(tr.Search(query, nil))
	want := sortIDs(bruteSearch(all, query))
	if !equalIDs(got, want) {
		t.Fatalf("full-extent search: got %d, want %d", len(got), len(want))
	}
}

func TestSearchPoint(t *testing.T) {
	items := []Item{
		{ID: 1, Box: geo.NewMBR(origin, geo.Offset(origin, 1000, 1000))},
		{ID: 2, Box: geo.NewMBR(geo.Offset(origin, 2000, 2000), geo.Offset(origin, 3000, 3000))},
	}
	tr := BulkLoad(items)
	inside := geo.Offset(origin, 500, 500)
	got := tr.SearchPoint(inside, nil)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("SearchPoint inside box 1: got %v", got)
	}
	nowhere := geo.Offset(origin, 1500, 1500)
	if got := tr.SearchPoint(nowhere, nil); len(got) != 0 {
		t.Fatalf("SearchPoint in gap: got %v", got)
	}
}

func TestNearestOrdering(t *testing.T) {
	// Items on a line east of origin at 1 km spacing.
	var items []Item
	for i := 0; i < 10; i++ {
		p := geo.Offset(origin, float64(i+1)*1000, 0)
		items = append(items, Item{ID: int64(i), Box: geo.NewMBR(p, p)})
	}
	tr := BulkLoad(items)
	got := tr.Nearest(origin, 3)
	if len(got) != 3 {
		t.Fatalf("Nearest returned %d items, want 3", len(got))
	}
	for i, it := range got {
		if it.ID != int64(i) {
			t.Fatalf("Nearest[%d].ID = %d, want %d", i, it.ID, i)
		}
	}
}

func TestNearestMoreThanAvailable(t *testing.T) {
	items := randomItems(5, 13)
	tr := BulkLoad(items)
	got := tr.Nearest(origin, 50)
	if len(got) != 5 {
		t.Fatalf("Nearest returned %d, want all 5", len(got))
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	items := randomItems(800, 14)
	tr := BulkLoad(items)
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		p := geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
		got := tr.Nearest(p, 5)
		type distItem struct {
			d  float64
			id int64
		}
		all := make([]distItem, len(items))
		for i, it := range items {
			all[i] = distItem{it.Box.DistanceTo(p), it.ID}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		// Distances must match even if ties reorder IDs.
		for i := 0; i < 5; i++ {
			gd := got[i].Box.DistanceTo(p)
			if diff := gd - all[i].d; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: nearest[%d] dist %v, want %v", trial, i, gd, all[i].d)
			}
		}
	}
}

func TestNearestWithin(t *testing.T) {
	var items []Item
	for i := 0; i < 10; i++ {
		p := geo.Offset(origin, float64(i+1)*1000, 0)
		items = append(items, Item{ID: int64(i), Box: geo.NewMBR(p, p)})
	}
	tr := BulkLoad(items)
	got := tr.NearestWithin(origin, 3500, 0)
	if len(got) != 3 {
		t.Fatalf("NearestWithin(3500m) returned %d items, want 3", len(got))
	}
	got = tr.NearestWithin(origin, 3500, 2)
	if len(got) != 2 {
		t.Fatalf("NearestWithin limit 2 returned %d items", len(got))
	}
	if got := tr.NearestWithin(origin, 100, 0); len(got) != 0 {
		t.Fatalf("NearestWithin(100m) should be empty, got %d", len(got))
	}
}

func TestDepthGrowsLogarithmically(t *testing.T) {
	tr := BulkLoad(randomItems(5000, 16))
	d := tr.Depth()
	if d < 2 || d > 6 {
		t.Fatalf("depth %d for 5000 items looks wrong", d)
	}
}

func TestBoundsCoverEverything(t *testing.T) {
	items := randomItems(300, 17)
	tr := BulkLoad(items)
	b := tr.Bounds()
	for _, it := range items {
		if !b.ContainsMBR(it.Box) {
			t.Fatalf("tree bounds do not cover item %d", it.ID)
		}
	}
}

func TestDuplicateBoxes(t *testing.T) {
	// Many items sharing the exact same MBR must all be stored and found.
	box := geo.NewMBR(origin, geo.Offset(origin, 100, 100))
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Insert(Item{ID: int64(i), Box: box})
	}
	got := tr.Search(box, nil)
	if len(got) != 100 {
		t.Fatalf("found %d duplicates, want 100", len(got))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
