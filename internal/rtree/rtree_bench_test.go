package rtree

import (
	"math/rand"
	"testing"

	"streach/internal/geo"
)

func benchItems(n int) []Item {
	rng := rand.New(rand.NewSource(21))
	items := make([]Item, n)
	for i := range items {
		p := geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
		q := geo.Offset(p, rng.Float64()*300, rng.Float64()*300)
		items[i] = Item{ID: int64(i), Box: geo.NewMBR(p, q)}
	}
	return items
}

func BenchmarkBulkLoad(b *testing.B) {
	items := benchItems(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BulkLoad(items)
	}
}

func BenchmarkInsert(b *testing.B) {
	items := benchItems(10000)
	b.ReportAllocs()
	b.ResetTimer()
	tr := New()
	for i := 0; i < b.N; i++ {
		tr.Insert(items[i%len(items)])
	}
}

func BenchmarkSearchSmallWindow(b *testing.B) {
	tr := BulkLoad(benchItems(10000))
	rng := rand.New(rand.NewSource(22))
	queries := make([]geo.MBR, 256)
	for i := range queries {
		p := geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
		queries[i] = geo.NewMBR(p, geo.Offset(p, 800, 800))
	}
	var dst []int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Search(queries[i%len(queries)], dst[:0])
	}
}

func BenchmarkNearest(b *testing.B) {
	tr := BulkLoad(benchItems(10000))
	rng := rand.New(rand.NewSource(23))
	points := make([]geo.Point, 256)
	for i := range points {
		points[i] = geo.Offset(origin, rng.Float64()*20000, rng.Float64()*20000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Nearest(points[i%len(points)], 8)
	}
}
