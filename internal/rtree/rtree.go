// Package rtree implements the spatial index used by the ST-Index.
//
// The tree stores items keyed by their minimum bounding rectangle and
// supports rectangle range queries, point stabbing queries, and nearest-
// neighbour search. A bulk loader (Sort-Tile-Recursive) builds a packed
// tree from a static set, which matches the paper's setting: the
// re-segmented road network is fixed, so every temporal leaf can share the
// same spatial index structure (thesis §3.2.1).
package rtree

import (
	"container/heap"
	"fmt"
	"sort"

	"streach/internal/geo"
)

// Item is an entry in the tree: an opaque integer ID with a bounding box.
type Item struct {
	ID  int64
	Box geo.MBR
}

const (
	maxEntries = 16
	minEntries = maxEntries * 2 / 5 // R*-tree style 40% minimum fill
)

type node struct {
	box      geo.MBR
	leaf     bool
	items    []Item  // populated when leaf
	children []*node // populated when !leaf
}

// Tree is an R-tree. The zero value is an empty tree ready for Insert;
// BulkLoad builds a packed tree in one shot.
type Tree struct {
	root  *node
	count int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// BulkLoad builds a packed tree over items using Sort-Tile-Recursive
// packing. The input slice is not modified.
func BulkLoad(items []Item) *Tree {
	t := &Tree{count: len(items)}
	if len(items) == 0 {
		t.root = &node{leaf: true}
		return t
	}
	work := make([]Item, len(items))
	copy(work, items)

	leaves := strPack(work)
	level := leaves
	for len(level) > 1 {
		level = strPackNodes(level)
	}
	t.root = level[0]
	return t
}

// strPack tiles the items into leaf nodes: sort by lng, slice into vertical
// strips, then sort each strip by lat and cut into nodes.
func strPack(items []Item) []*node {
	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Center().Lng < items[j].Box.Center().Lng
	})
	numLeaves := (len(items) + maxEntries - 1) / maxEntries
	stripCount := intSqrtCeil(numLeaves)
	stripSize := ((len(items) + stripCount - 1) / stripCount)

	var leaves []*node
	for s := 0; s < len(items); s += stripSize {
		end := s + stripSize
		if end > len(items) {
			end = len(items)
		}
		strip := items[s:end]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].Box.Center().Lat < strip[j].Box.Center().Lat
		})
		for o := 0; o < len(strip); o += maxEntries {
			oe := o + maxEntries
			if oe > len(strip) {
				oe = len(strip)
			}
			n := &node{leaf: true, items: append([]Item(nil), strip[o:oe]...)}
			for _, it := range n.items {
				n.box.ExpandMBR(it.Box)
			}
			leaves = append(leaves, n)
		}
	}
	return leaves
}

func strPackNodes(level []*node) []*node {
	sort.Slice(level, func(i, j int) bool {
		return level[i].box.Center().Lng < level[j].box.Center().Lng
	})
	numParents := (len(level) + maxEntries - 1) / maxEntries
	stripCount := intSqrtCeil(numParents)
	stripSize := ((len(level) + stripCount - 1) / stripCount)

	var parents []*node
	for s := 0; s < len(level); s += stripSize {
		end := s + stripSize
		if end > len(level) {
			end = len(level)
		}
		strip := append([]*node(nil), level[s:end]...)
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].box.Center().Lat < strip[j].box.Center().Lat
		})
		for o := 0; o < len(strip); o += maxEntries {
			oe := o + maxEntries
			if oe > len(strip) {
				oe = len(strip)
			}
			p := &node{children: append([]*node(nil), strip[o:oe]...)}
			for _, c := range p.children {
				p.box.ExpandMBR(c.box)
			}
			parents = append(parents, p)
		}
	}
	return parents
}

func intSqrtCeil(n int) int {
	if n <= 1 {
		return 1
	}
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.count }

// Bounds returns the MBR covering every item in the tree.
func (t *Tree) Bounds() geo.MBR {
	if t.root == nil {
		return geo.MBR{}
	}
	return t.root.box
}

// Insert adds an item to the tree (quadratic-split R-tree insertion).
func (t *Tree) Insert(it Item) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	split := t.insert(t.root, it)
	if split != nil {
		newRoot := &node{children: []*node{t.root, split}}
		newRoot.box = t.root.box.Union(split.box)
		t.root = newRoot
	}
	t.count++
}

// insert descends to a leaf, adding it; returns a new sibling when the
// visited node had to split.
func (t *Tree) insert(n *node, it Item) *node {
	n.box.ExpandMBR(it.Box)
	if n.leaf {
		n.items = append(n.items, it)
		if len(n.items) > maxEntries {
			return splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n.children, it.Box)
	split := t.insert(n.children[best], it)
	if split != nil {
		n.children = append(n.children, split)
		if len(n.children) > maxEntries {
			return splitInternal(n)
		}
	}
	return nil
}

func chooseSubtree(children []*node, box geo.MBR) int {
	best := 0
	bestEnl := children[0].box.Enlargement(box)
	bestArea := children[0].box.Area()
	for i := 1; i < len(children); i++ {
		enl := children[i].box.Enlargement(box)
		area := children[i].box.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// splitLeaf splits an over-full leaf along its longer axis at the median,
// mutating n to hold the lower half and returning the upper half.
func splitLeaf(n *node) *node {
	byLng := n.box.MaxLng-n.box.MinLng > n.box.MaxLat-n.box.MinLat
	sort.Slice(n.items, func(i, j int) bool {
		if byLng {
			return n.items[i].Box.Center().Lng < n.items[j].Box.Center().Lng
		}
		return n.items[i].Box.Center().Lat < n.items[j].Box.Center().Lat
	})
	mid := len(n.items) / 2
	if mid < minEntries {
		mid = minEntries
	}
	sib := &node{leaf: true, items: append([]Item(nil), n.items[mid:]...)}
	n.items = n.items[:mid]
	n.box = geo.MBR{}
	for _, it := range n.items {
		n.box.ExpandMBR(it.Box)
	}
	for _, it := range sib.items {
		sib.box.ExpandMBR(it.Box)
	}
	return sib
}

func splitInternal(n *node) *node {
	byLng := n.box.MaxLng-n.box.MinLng > n.box.MaxLat-n.box.MinLat
	sort.Slice(n.children, func(i, j int) bool {
		if byLng {
			return n.children[i].box.Center().Lng < n.children[j].box.Center().Lng
		}
		return n.children[i].box.Center().Lat < n.children[j].box.Center().Lat
	})
	mid := len(n.children) / 2
	if mid < minEntries {
		mid = minEntries
	}
	sib := &node{children: append([]*node(nil), n.children[mid:]...)}
	n.children = n.children[:mid]
	n.box = geo.MBR{}
	for _, c := range n.children {
		n.box.ExpandMBR(c.box)
	}
	for _, c := range sib.children {
		sib.box.ExpandMBR(c.box)
	}
	return sib
}

// Search appends to dst the IDs of all items whose boxes intersect query,
// and returns the extended slice.
func (t *Tree) Search(query geo.MBR, dst []int64) []int64 {
	if t.root == nil {
		return dst
	}
	return searchNode(t.root, query, dst)
}

func searchNode(n *node, query geo.MBR, dst []int64) []int64 {
	if !n.box.Intersects(query) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.Box.Intersects(query) {
				dst = append(dst, it.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, query, dst)
	}
	return dst
}

// SearchPoint appends the IDs of all items whose boxes contain p.
func (t *Tree) SearchPoint(p geo.Point, dst []int64) []int64 {
	return t.Search(geo.NewMBR(p, p), dst)
}

// nnEntry is a priority-queue entry for best-first nearest-neighbour search.
type nnEntry struct {
	dist float64
	n    *node
	item *Item
}

type nnQueue []nnEntry

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Nearest returns the k items nearest to p (by box distance), closest
// first. It returns fewer when the tree holds fewer than k items.
func (t *Tree) Nearest(p geo.Point, k int) []Item {
	if t.root == nil || k <= 0 {
		return nil
	}
	q := &nnQueue{{dist: t.root.box.DistanceTo(p), n: t.root}}
	var out []Item
	for q.Len() > 0 && len(out) < k {
		e := heap.Pop(q).(nnEntry)
		switch {
		case e.item != nil:
			out = append(out, *e.item)
		case e.n.leaf:
			for i := range e.n.items {
				it := &e.n.items[i]
				heap.Push(q, nnEntry{dist: it.Box.DistanceTo(p), item: it})
			}
		default:
			for _, c := range e.n.children {
				heap.Push(q, nnEntry{dist: c.box.DistanceTo(p), n: c})
			}
		}
	}
	return out
}

// NearestWithin returns the items whose boxes are within radius metres of
// p, closest first, up to limit items (limit <= 0 means no limit).
func (t *Tree) NearestWithin(p geo.Point, radius float64, limit int) []Item {
	if t.root == nil {
		return nil
	}
	q := &nnQueue{{dist: t.root.box.DistanceTo(p), n: t.root}}
	var out []Item
	for q.Len() > 0 {
		e := heap.Pop(q).(nnEntry)
		if e.dist > radius {
			break
		}
		switch {
		case e.item != nil:
			out = append(out, *e.item)
			if limit > 0 && len(out) >= limit {
				return out
			}
		case e.n.leaf:
			for i := range e.n.items {
				it := &e.n.items[i]
				heap.Push(q, nnEntry{dist: it.Box.DistanceTo(p), item: it})
			}
		default:
			for _, c := range e.n.children {
				heap.Push(q, nnEntry{dist: c.box.DistanceTo(p), n: c})
			}
		}
	}
	return out
}

// Depth returns the height of the tree (1 for a lone leaf root).
func (t *Tree) Depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return d
}

// checkInvariants validates structural invariants; used by tests.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	n, err := checkNode(t.root, true)
	if err != nil {
		return err
	}
	if n != t.count {
		return fmt.Errorf("item count mismatch: tree says %d, traversal found %d", t.count, n)
	}
	return nil
}

func checkNode(n *node, isRoot bool) (int, error) {
	if n.leaf {
		if !isRoot && len(n.items) < 1 {
			return 0, fmt.Errorf("empty non-root leaf")
		}
		for _, it := range n.items {
			if !n.box.ContainsMBR(it.Box) && !it.Box.Empty() {
				return 0, fmt.Errorf("leaf box does not cover item %d", it.ID)
			}
		}
		return len(n.items), nil
	}
	if len(n.children) == 0 {
		return 0, fmt.Errorf("internal node with no children")
	}
	total := 0
	for _, c := range n.children {
		if !n.box.ContainsMBR(c.box) {
			return 0, fmt.Errorf("parent box does not cover child box")
		}
		cnt, err := checkNode(c, false)
		if err != nil {
			return 0, err
		}
		total += cnt
	}
	return total, nil
}
