package stindex

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/traj"
)

// Live delta layer (DESIGN.md §13).
//
// The base index is immutable after Build/LoadIndex: time lists live as
// blobs in the page store and the handle table locates them. Ingest
// appends land in an in-memory delta layer instead — per dirty
// (segment, slot) key, a day→taxi-bitset map — and reads merge base and
// delta on the fly. Compaction folds dirty keys back into freshly
// encoded blobs (the file is append-only, so old handles stay valid for
// in-flight readers) and atomically installs a new handle table, which
// bumps the index epoch.
//
// Concurrency discipline:
//
//   - handles is an atomic pointer to an immutable slice; readers load
//     it without locking.
//   - the delta map is guarded by mu. Readers decode the base blob
//     OUTSIDE the lock, then under RLock (a) re-check the handle they
//     decoded is still installed — if compaction swapped the table the
//     read retries — and (b) merge the delta and publish to the
//     decoded-list cache. Appends and the compaction install take the
//     write lock, so a cached value is always the CURRENT merge of the
//     handle table and delta map: a reader publishes it with no append
//     in flight, every append refreshes resident keys inside its
//     critical section (copy-on-write — never by mutating a published
//     list, which readers may still hold), and the install leaves
//     cached merges valid by construction (old base ∪ delta == new
//     base ∪ remaining delta). Refresh-instead-of-invalidate is what
//     keeps merged reads near base-read cost under live write load: at
//     thousands of appends/second, invalidation would evict keys
//     faster than queries re-warm them and every read would pay a cold
//     blob decode.
//   - per-entry seq numbers let compaction clear only entries unchanged
//     since its snapshot; appends that raced the fold stay pending and
//     re-fold next time (set-union is idempotent, so nothing is lost or
//     double-counted in the bitsets).
//
// dataVersion increments on every append batch and every install; epoch
// increments only on install. Plan caches and coalescers key on the
// version so a shared plan never outlives the data it was computed from.
type liveState struct {
	epoch   atomic.Uint64
	version atomic.Uint64
	handles atomic.Pointer[[]storage.BlobHandle]

	mu      sync.RWMutex
	entries map[int]*deltaEntry

	pending     atomic.Int64 // delta observations not yet compacted
	appended    atomic.Int64 // cumulative accepted observations
	compactions atomic.Uint64
	lastPauseNS atomic.Int64
	lastKeys    atomic.Int64

	// compactMu serialises compactions (and, at the facade layer, the
	// durable re-save that follows one).
	compactMu sync.Mutex
}

// deltaEntry is the pending delta for one (segment, slot) key.
type deltaEntry struct {
	seq  uint64           // bumped on every mutation; compaction clears only unchanged entries
	obs  int64            // distinct (day, taxi) bits held
	days map[int][]uint64 // day -> taxi bitset
}

func newLiveState(handles []storage.BlobHandle) *liveState {
	lv := &liveState{entries: make(map[int]*deltaEntry)}
	lv.handles.Store(&handles)
	return lv
}

// liveHandles returns the currently installed handle table.
func (x *Index) liveHandles() []storage.BlobHandle { return *x.live.handles.Load() }

// DeltaObs is one ingested observation: taxi was on seg during slot on
// day. The ingest layer expands a position report into one DeltaObs per
// overlapped slot, mirroring how Build expands visits.
type DeltaObs struct {
	Seg  roadnet.SegmentID
	Slot int
	Day  traj.Day
	Taxi traj.TaxiID
}

// Epoch returns the index epoch, bumped once per compaction install.
func (x *Index) Epoch() uint64 { return x.live.epoch.Load() }

// DataVersion returns the data version, bumped on every append batch and
// every compaction install. Anything caching derived results across
// requests must fold this into its key.
func (x *Index) DataVersion() uint64 { return x.live.version.Load() }

// DeltaStats snapshots the live-layer counters.
type DeltaStats struct {
	DirtyKeys        int   // (segment, slot) keys pending compaction
	PendingObs       int64 // delta observations not yet compacted
	AppendedObs      int64 // cumulative observations accepted
	Epoch            uint64
	DataVersion      uint64
	Compactions      uint64
	LastCompactKeys  int64
	LastCompactPause time.Duration
}

// DeltaStats snapshots the live delta layer.
func (x *Index) DeltaStats() DeltaStats {
	lv := x.live
	lv.mu.RLock()
	dirty := len(lv.entries)
	lv.mu.RUnlock()
	return DeltaStats{
		DirtyKeys:        dirty,
		PendingObs:       lv.pending.Load(),
		AppendedObs:      lv.appended.Load(),
		Epoch:            lv.epoch.Load(),
		DataVersion:      lv.version.Load(),
		Compactions:      lv.compactions.Load(),
		LastCompactKeys:  lv.lastKeys.Load(),
		LastCompactPause: time.Duration(lv.lastPauseNS.Load()),
	}
}

// AppendDelta applies a batch of observations to the delta layer. The
// whole batch is validated first — the same bounds Build enforces, plus
// day within the dataset's day range so that merged answers stay
// bit-identical to an offline rebuild over the union — and then applied
// atomically with respect to readers. Touched decoded-list cache keys
// are refreshed copy-on-write inside the critical section, so resident
// merges stay both warm and exact under sustained write load.
func (x *Index) AppendDelta(obs []DeltaObs) error {
	n := x.net.NumSegments()
	for _, o := range obs {
		if o.Seg < 0 || int(o.Seg) >= n {
			return fmt.Errorf("stindex: delta segment %d out of range [0,%d)", o.Seg, n)
		}
		if o.Slot < 0 || o.Slot >= x.numSlots {
			return fmt.Errorf("stindex: delta slot %d out of range [0,%d)", o.Slot, x.numSlots)
		}
		if o.Day < 0 || int(o.Day) >= x.days {
			return fmt.Errorf("stindex: delta day %d out of range [0,%d)", o.Day, x.days)
		}
		if o.Taxi < 0 || o.Taxi >= 1<<15 {
			return fmt.Errorf("stindex: delta taxi %d out of range [0,%d)", o.Taxi, 1<<15)
		}
	}
	if len(obs) == 0 {
		return nil
	}
	lv := x.live
	// adds collects the batch's bits per key for the cache refresh below
	// (duplicates and already-present bits are harmless: the refresh ORs).
	var adds map[int]map[int][]uint64
	if x.cache != nil {
		adds = make(map[int]map[int][]uint64)
	}
	lv.mu.Lock()
	for _, o := range obs {
		key := o.Slot*n + int(o.Seg)
		e := lv.entries[key]
		if e == nil {
			e = &deltaEntry{days: make(map[int][]uint64)}
			lv.entries[key] = e
		}
		w := e.days[int(o.Day)]
		wi, bit := int(o.Taxi)>>6, uint64(1)<<(uint(o.Taxi)&63)
		for len(w) <= wi {
			w = append(w, 0)
		}
		if w[wi]&bit == 0 {
			w[wi] |= bit
			e.obs++
			lv.pending.Add(1)
		}
		e.days[int(o.Day)] = w
		e.seq++
		if adds != nil {
			a := adds[key]
			if a == nil {
				a = make(map[int][]uint64)
				adds[key] = a
			}
			aw := a[int(o.Day)]
			for len(aw) <= wi {
				aw = append(aw, 0)
			}
			aw[wi] |= bit
			a[int(o.Day)] = aw
		}
	}
	// Refresh resident cache entries rather than invalidating them. Under
	// the write lock the cached value is exactly base ∪ delta-before-this-
	// batch (readers publish under RLock), so OR-ing the batch's bits into
	// a fresh copy keeps it exact; absent keys stay absent so write-only
	// traffic cannot flush read-hot entries.
	for key, a := range adds {
		if cached, ok := x.cache.peek(key); ok {
			x.cache.put(key, mergeDeltaBits(cached, a))
		}
	}
	lv.appended.Add(int64(len(obs)))
	lv.version.Add(1)
	lv.mu.Unlock()
	return nil
}

// readMerged is the slow path behind a decoded-list cache miss: decode
// the base blob outside the lock, then merge the pending delta (if any)
// under RLock and publish the result to the cache. If a compaction
// installed a new handle table between the unlocked decode and the
// locked merge, the read retries on the new table — the old merge could
// otherwise pair a stale base with an already-cleared delta.
func (x *Index) readMerged(key int, seg roadnet.SegmentID, slot int, read func(storage.BlobHandle) ([]byte, error)) (*TimeListBits, error) {
	lv := x.live
	for {
		h := (*lv.handles.Load())[key]
		base := emptyBits
		if !h.IsZero() {
			var err error
			if base, err = x.decodeHandle(h, read, seg, slot); err != nil {
				return nil, err
			}
		}
		lv.mu.RLock()
		if (*lv.handles.Load())[key] != h {
			lv.mu.RUnlock()
			continue
		}
		merged := base
		if e := lv.entries[key]; e != nil {
			merged = mergeDeltaBits(base, e.days)
		}
		if x.cache != nil && merged != emptyBits {
			x.cache.put(key, merged)
		}
		lv.mu.RUnlock()
		return merged, nil
	}
}

// mergeDeltaBits unions a base time list with a delta day map into a
// fresh TimeListBits. Day slices present only in the base are aliased
// (the base is immutable); days touched by the delta are copied, because
// the delta's words keep mutating under later appends.
func mergeDeltaBits(base *TimeListBits, days map[int][]uint64) *TimeListBits {
	if len(days) == 0 {
		return base
	}
	maxWord := len(base.DayMask) - 1
	for d := range days {
		if w := d >> 6; w > maxWord {
			maxWord = w
		}
	}
	out := &TimeListBits{DayMask: make([]uint64, maxWord+1)}
	copy(out.DayMask, base.DayMask)
	for d := range days {
		out.DayMask[d>>6] |= 1 << (uint(d) & 63)
	}
	baseAt := make(map[int]int, len(base.Days))
	for i, d := range base.Days {
		baseAt[int(d)] = i
	}
	for wi, w := range out.DayMask {
		for w != 0 {
			d := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			var merged []uint64
			bi, inBase := baseAt[d]
			dw, inDelta := days[d]
			switch {
			case inBase && inDelta:
				bw := base.Bits[bi]
				nw := len(bw)
				if len(dw) > nw {
					nw = len(dw)
				}
				merged = make([]uint64, nw)
				copy(merged, bw)
				for i, v := range dw {
					merged[i] |= v
				}
			case inDelta:
				merged = append([]uint64(nil), dw...)
			default:
				merged = base.Bits[bi]
			}
			out.Days = append(out.Days, traj.Day(d))
			out.Bits = append(out.Bits, merged)
		}
	}
	return out
}

// CompactStats reports one compaction.
type CompactStats struct {
	Keys         int           // dirty keys folded
	Remaining    int           // dirty keys rolled to the next cycle (budgeted folds)
	Observations int64         // delta observations folded
	Bytes        int64         // blob bytes appended
	Pause        time.Duration // handle-table install critical section
	Epoch        uint64        // epoch after the install
}

// CompactDeltas folds the whole pending delta layer; see
// CompactDeltasBudget.
func (x *Index) CompactDeltas() (CompactStats, error) {
	return x.CompactDeltasBudget(0)
}

// CompactDeltasBudget folds the pending delta layer into freshly encoded
// blobs and installs a new handle table (a new index epoch). The fold
// runs off the hot path: blob appends go to the append-only file while
// readers keep answering from the old handles, and only the table swap
// plus the seq-checked delta clear happen under the write lock — that
// critical section is the reported pause. Entries appended to during
// the fold survive the clear and re-fold next time.
//
// maxKeys > 0 bounds the cycle: only the maxKeys hottest dirty keys (by
// delta depth, ties broken by key for determinism) are folded and the
// rest roll to the next epoch, which is what keeps the install pause —
// proportional to the folded key count — flat under sustained write
// load. CompactStats.Remaining reports the rolled-over keys.
//
// The re-encode goes through the same adaptive encoder as Build, so a
// post-compaction blob is byte-identical to what an offline rebuild
// over the union of base and ingested trajectories would have written
// for that (segment, slot).
func (x *Index) CompactDeltasBudget(maxKeys int) (CompactStats, error) {
	lv := x.live
	lv.compactMu.Lock()
	defer lv.compactMu.Unlock()

	type snapEntry struct {
		seq  uint64
		obs  int64
		days map[int][]uint64
	}
	lv.mu.RLock()
	snaps := make(map[int]snapEntry, len(lv.entries))
	for key, e := range lv.entries {
		cp := make(map[int][]uint64, len(e.days))
		for d, w := range e.days {
			cp[d] = append([]uint64(nil), w...)
		}
		snaps[key] = snapEntry{seq: e.seq, obs: e.obs, days: cp}
	}
	lv.mu.RUnlock()
	if len(snaps) == 0 {
		return CompactStats{Epoch: lv.epoch.Load()}, nil
	}

	keys := make([]int, 0, len(snaps))
	for key := range snaps {
		keys = append(keys, key)
	}
	remaining := 0
	if maxKeys > 0 && len(keys) > maxKeys {
		// Hottest first: deep entries cost the most to merge at read time
		// and hold the most pending memory, so folding them buys the most
		// per unit of install pause.
		sort.Slice(keys, func(i, j int) bool {
			oi, oj := snaps[keys[i]].obs, snaps[keys[j]].obs
			if oi != oj {
				return oi > oj
			}
			return keys[i] < keys[j]
		})
		for _, key := range keys[maxKeys:] {
			delete(snaps, key)
		}
		remaining = len(keys) - maxKeys
		keys = keys[:maxKeys]
	}
	sort.Ints(keys)

	old := *lv.handles.Load()
	next := append([]storage.BlobHandle(nil), old...)
	reader := x.blob.NewReader()
	n := x.net.NumSegments()
	var appendedBytes, obsFolded int64
	for _, key := range keys {
		s := snaps[key]
		slot, seg := key/n, key%n
		base := emptyBits
		if h := old[key]; !h.IsZero() {
			var err error
			if base, err = x.decodeHandle(h, reader.Read, roadnet.SegmentID(seg), slot); err != nil {
				return CompactStats{}, fmt.Errorf("stindex: compact read: %w", err)
			}
		}
		run := tuplesFromBits(slot, seg, mergeDeltaBits(base, s.days))
		blob := encodeTimeListRunAdaptive(run)
		h, err := x.blob.Append(blob)
		if err != nil {
			return CompactStats{}, fmt.Errorf("stindex: compact write: %w", err)
		}
		next[key] = h
		appendedBytes += int64(len(blob))
		obsFolded += s.obs
	}

	began := time.Now()
	lv.mu.Lock()
	lv.handles.Store(&next)
	for key, s := range snaps {
		if e := lv.entries[key]; e != nil && e.seq == s.seq {
			lv.pending.Add(-e.obs)
			delete(lv.entries, key)
		}
	}
	lv.epoch.Add(1)
	lv.version.Add(1)
	lv.mu.Unlock()
	pause := time.Since(began)

	lv.compactions.Add(1)
	lv.lastPauseNS.Store(int64(pause))
	lv.lastKeys.Store(int64(len(keys)))
	lv.mu.RLock()
	remaining = len(lv.entries)
	lv.mu.RUnlock()
	return CompactStats{
		Keys:         len(keys),
		Remaining:    remaining,
		Observations: obsFolded,
		Bytes:        appendedBytes,
		Pause:        pause,
		Epoch:        lv.epoch.Load(),
	}, nil
}

// PendingDelta snapshots every observation still pending in the delta
// layer as replayable DeltaObs. A durable budgeted compaction writes
// this snapshot to the WAL (a "carry" record) before retiring the
// segments the folded-and-persisted keys came from: the rolled-over
// keys stay crash-durable without keeping every old segment alive.
func (x *Index) PendingDelta() []DeltaObs {
	lv := x.live
	n := x.net.NumSegments()
	lv.mu.RLock()
	defer lv.mu.RUnlock()
	var out []DeltaObs
	for key, e := range lv.entries {
		slot, seg := key/n, key%n
		for d, words := range e.days {
			for wi, w := range words {
				for w != 0 {
					taxi := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					out = append(out, DeltaObs{
						Seg:  roadnet.SegmentID(seg),
						Slot: slot,
						Day:  traj.Day(d),
						Taxi: traj.TaxiID(taxi),
					})
				}
			}
		}
	}
	return out
}

// tuplesFromBits rebuilds the sorted packed-tuple run Build would have
// produced for this (slot, seg) content, so compaction can reuse the
// exact adaptive encoder.
func tuplesFromBits(slot, seg int, b *TimeListBits) []uint64 {
	total := 0
	for _, words := range b.Bits {
		for _, w := range words {
			total += bits.OnesCount64(w)
		}
	}
	run := make([]uint64, 0, total)
	for i, d := range b.Days {
		for wi, w := range b.Bits[i] {
			for w != 0 {
				taxi := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				run = append(run, packTuple(slot, seg, int(d), taxi))
			}
		}
	}
	return run
}
