package stindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"streach/internal/btree"
	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/xerr"
)

// Index persistence: the time-list blobs already live in the page store
// (a file when built over storage.FileStore); SaveMeta serializes the
// remaining in-memory state — granularity, day range, blob tail, and the
// handle table — so the index can be reopened without rebuilding from
// trajectories.
//
// Meta format (little endian):
//
//	magic "STIX" | version u16 | slotSec u32 | days u32 |
//	baseDate unix s i64 | numSegments u32 | blob tail i64 |
//	pagesCRC u32 (v3+) |
//	numHandles u32 | numHandles x (offset i64, length i32) |
//	metaCRC u32 (v3+, CRC-32C of every preceding byte incl. magic)

// Version history: v1 indexes hold sorted-ID time-list blobs, v2 indexes
// hold bitset blobs (bits.go). Blobs are self-tagged, so v1 indexes load
// and decode transparently. v3 adds two CRC-32C checksums: pagesCRC over
// the page store's full contents (the time-list blobs) and a trailing
// metaCRC over the meta bytes themselves, so a flipped bit in either
// file is detected at load instead of surfacing as a wrong answer. v4
// narrows pagesCRC to the first `tail` bytes of the page store — the
// bytes this meta's handles can reach. The blob file is append-only, so
// a compaction that appended new blobs but crashed before installing its
// meta leaves bytes only beyond the old tail: a v4 meta still verifies
// and reopens over them (the WAL replays the unfolded rest), where a v3
// meta would declare the whole store corrupt and force a cold rebuild.
// New indexes are always saved as v4; v1-v3 metas still load (v3 with
// its whole-store check), and trailing garbage is rejected so a
// corrupted version field cannot silently downgrade a checksummed file.
const (
	metaMagic      = "STIX"
	metaVersion    = 4
	metaVersionMin = 1
)

// PagesChecksum computes the CRC-32C of the page store's full contents,
// read through the buffer pool so unflushed dirty pages are included —
// exactly the bytes a flush would persist. This is the v3 meta check.
func (x *Index) PagesChecksum() (uint32, error) {
	return x.PagesChecksumN(x.pool.NumPages() * storage.PageSize)
}

// PagesChecksumN computes the CRC-32C of the first limit bytes of the
// page store, read through the buffer pool. v4 metas record the checksum
// of the first Tail() bytes — everything their handles can reach — so
// blobs appended after the meta was saved (a compaction that crashed
// before its meta install) do not invalidate it.
func (x *Index) PagesChecksumN(limit int64) (uint32, error) {
	h := storage.NewChecksum()
	remain := limit
	n := x.pool.NumPages()
	for id := storage.PageID(0); int64(id) < n && remain > 0; id++ {
		page, err := x.pool.GetPage(id)
		if err != nil {
			return 0, fmt.Errorf("stindex: checksum page %d: %w", id, err)
		}
		if remain < int64(len(page)) {
			page = page[:remain]
		}
		h.Write(page)
		remain -= int64(len(page))
	}
	if remain > 0 {
		return 0, fmt.Errorf("stindex: page store holds %d bytes, checksum needs %d", n*storage.PageSize, limit)
	}
	return h.Sum32(), nil
}

// SaveMeta writes the index metadata. The page store must be flushed (or
// the index Closed) separately for the blobs to be durable. SaveMeta
// holds the compaction lock so the handle table, blob tail, and page
// contents it records are one consistent snapshot even while the live
// delta layer keeps accepting appends.
func (x *Index) SaveMeta(w io.Writer) error {
	x.live.compactMu.Lock()
	defer x.live.compactMu.Unlock()
	// v4: the checksum covers exactly the bytes the handle table can
	// reach, so later appends never invalidate this meta.
	pagesCRC, err := x.PagesChecksumN(x.blob.Tail())
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	h := storage.NewChecksum()
	tee := io.MultiWriter(bw, h)
	if _, err := io.WriteString(tee, metaMagic); err != nil {
		return fmt.Errorf("stindex: write meta magic: %w", err)
	}
	var buf [12]byte
	u16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(buf[:2], v)
		_, err := tee.Write(buf[:2])
		return err
	}
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		_, err := tee.Write(buf[:4])
		return err
	}
	u64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:8], v)
		_, err := tee.Write(buf[:8])
		return err
	}
	if err := u16(metaVersion); err != nil {
		return err
	}
	if err := u32(uint32(x.slotSec)); err != nil {
		return err
	}
	if err := u32(uint32(x.days)); err != nil {
		return err
	}
	if err := u64(uint64(x.baseDate.Unix())); err != nil {
		return err
	}
	if err := u32(uint32(x.net.NumSegments())); err != nil {
		return err
	}
	if err := u64(uint64(x.blob.Tail())); err != nil {
		return err
	}
	if err := u32(pagesCRC); err != nil {
		return err
	}
	handles := x.liveHandles()
	if err := u32(uint32(len(handles))); err != nil {
		return err
	}
	for _, hd := range handles {
		binary.LittleEndian.PutUint64(buf[:8], uint64(hd.Offset))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(hd.Length))
		if _, err := tee.Write(buf[:12]); err != nil {
			return fmt.Errorf("stindex: write handle: %w", err)
		}
	}
	// Trailing meta checksum, written outside the tee: it covers
	// everything before itself.
	binary.LittleEndian.PutUint32(buf[:4], h.Sum32())
	if _, err := bw.Write(buf[:4]); err != nil {
		return fmt.Errorf("stindex: write meta checksum: %w", err)
	}
	return bw.Flush()
}

// LoadIndex reopens a persisted index: net must be the same network it
// was built over (the network is deterministic from its generator config
// or its own codec), and cfg.Store must hold the original pages.
//
// v3 metas are verified end to end: the trailing meta checksum first,
// then the page store's contents against the recorded pages checksum. A
// mismatch returns an error (wrapped as corrupt data by the caller's
// taxonomy) — LoadIndex never installs an index over bytes it cannot
// vouch for.
func LoadIndex(net *roadnet.Network, cfg Config, meta io.Reader) (*Index, error) {
	cfg = cfg.withDefaults()
	br := bufio.NewReader(meta)
	h := storage.NewChecksum()
	tee := io.TeeReader(br, h)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tee, magic); err != nil {
		return nil, fmt.Errorf("stindex: read meta magic: %w", err)
	}
	if string(magic) != metaMagic {
		return nil, xerr.Markf(xerr.KindCorrupt, "stindex: bad meta magic %q", magic)
	}
	var buf [12]byte
	u16 := func() (uint16, error) {
		if _, err := io.ReadFull(tee, buf[:2]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(buf[:2]), nil
	}
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(tee, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(tee, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	ver, err := u16()
	if err != nil {
		return nil, fmt.Errorf("stindex: read meta version: %w", err)
	}
	if ver < metaVersionMin || ver > metaVersion {
		return nil, fmt.Errorf("stindex: unsupported meta version %d", ver)
	}
	slotSec, err := u32()
	if err != nil {
		return nil, err
	}
	days, err := u32()
	if err != nil {
		return nil, err
	}
	baseUnix, err := u64()
	if err != nil {
		return nil, err
	}
	numSeg, err := u32()
	if err != nil {
		return nil, err
	}
	if int(numSeg) != net.NumSegments() {
		return nil, fmt.Errorf("stindex: meta built over %d segments, network has %d", numSeg, net.NumSegments())
	}
	tail, err := u64()
	if err != nil {
		return nil, err
	}
	var pagesCRC uint32
	if ver >= 3 {
		if pagesCRC, err = u32(); err != nil {
			return nil, fmt.Errorf("stindex: read pages checksum: %w", err)
		}
	}
	numHandles, err := u32()
	if err != nil {
		return nil, err
	}
	if slotSec == 0 || 86400%int(slotSec) != 0 {
		return nil, fmt.Errorf("stindex: meta has invalid slot seconds %d", slotSec)
	}
	numSlots := 86400 / int(slotSec)
	if int(numHandles) != numSlots*int(numSeg) {
		return nil, fmt.Errorf("stindex: meta has %d handles, want %d", numHandles, numSlots*int(numSeg))
	}

	handles := make([]storage.BlobHandle, numHandles)
	for i := range handles {
		if _, err := io.ReadFull(tee, buf[:12]); err != nil {
			return nil, fmt.Errorf("stindex: read handle %d: %w", i, err)
		}
		handles[i] = storage.BlobHandle{
			Offset: int64(binary.LittleEndian.Uint64(buf[:8])),
			Length: int32(binary.LittleEndian.Uint32(buf[8:12])),
		}
	}
	if ver >= 3 {
		// The stored checksum is read from br directly: it is not part of
		// its own coverage.
		want := h.Sum32()
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("stindex: read meta checksum: %w", err)
		}
		if got := binary.LittleEndian.Uint32(buf[:4]); got != want {
			return nil, xerr.Markf(xerr.KindCorrupt, "stindex: meta checksum mismatch (stored %08x, computed %08x)", got, want)
		}
	}
	// Every version must end exactly here; trailing bytes mean the file
	// is not what its version field claims (e.g. a v3 meta whose version
	// field itself took the bit flip).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, xerr.Markf(xerr.KindCorrupt, "stindex: trailing bytes after v%d meta", ver)
	}

	pool, err := storage.NewBufferPool(cfg.Store, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		net:      net,
		slotSec:  int(slotSec),
		numSlots: numSlots,
		days:     int(days),
		baseDate: time.Unix(int64(baseUnix), 0).UTC(),
		temporal: btree.New(),
		pool:     pool,
		blob:     storage.ReopenBlobFile(pool, int64(tail)),
		live:     newLiveState(handles),
		cache:    newTLCache(cfg.TimeListCache),
	}
	for s := 0; s < numSlots; s++ {
		idx.temporal.Put(int64(s*int(slotSec)), int64(s))
	}
	switch {
	case ver >= 4:
		// v4 covers the first tail bytes only: blobs appended by a
		// compaction that crashed before its meta landed sit beyond the
		// tail and are unreachable garbage, not corruption.
		got, err := idx.PagesChecksumN(int64(tail))
		if err != nil {
			return nil, err
		}
		if got != pagesCRC {
			return nil, xerr.Markf(xerr.KindCorrupt, "stindex: page store checksum mismatch (stored %08x, computed %08x)", pagesCRC, got)
		}
	case ver == 3:
		got, err := idx.PagesChecksum()
		if err != nil {
			return nil, err
		}
		if got != pagesCRC {
			return nil, xerr.Markf(xerr.KindCorrupt, "stindex: page store checksum mismatch (stored %08x, computed %08x)", pagesCRC, got)
		}
	}
	return idx, nil
}
