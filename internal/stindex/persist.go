package stindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"streach/internal/btree"
	"streach/internal/roadnet"
	"streach/internal/storage"
)

// Index persistence: the time-list blobs already live in the page store
// (a file when built over storage.FileStore); SaveMeta serializes the
// remaining in-memory state — granularity, day range, blob tail, and the
// handle table — so the index can be reopened without rebuilding from
// trajectories.
//
// Meta format (little endian):
//
//	magic "STIX" | version u16 | slotSec u32 | days u32 |
//	baseDate unix s i64 | numSegments u32 | blob tail i64 |
//	numHandles u32 | numHandles x (offset i64, length i32)

// Version history: v1 indexes hold sorted-ID time-list blobs, v2 indexes
// hold bitset blobs (bits.go). Blobs are self-tagged, so v1 indexes load
// and decode transparently; new indexes are always saved as v2.
const (
	metaMagic      = "STIX"
	metaVersion    = 2
	metaVersionMin = 1
)

// SaveMeta writes the index metadata. The page store must be flushed (or
// the index Closed) separately for the blobs to be durable.
func (x *Index) SaveMeta(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(metaMagic); err != nil {
		return fmt.Errorf("stindex: write meta magic: %w", err)
	}
	var buf [12]byte
	u16 := func(v uint16) error {
		binary.LittleEndian.PutUint16(buf[:2], v)
		_, err := bw.Write(buf[:2])
		return err
	}
	u32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:4], v)
		_, err := bw.Write(buf[:4])
		return err
	}
	u64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(buf[:8], v)
		_, err := bw.Write(buf[:8])
		return err
	}
	if err := u16(metaVersion); err != nil {
		return err
	}
	if err := u32(uint32(x.slotSec)); err != nil {
		return err
	}
	if err := u32(uint32(x.days)); err != nil {
		return err
	}
	if err := u64(uint64(x.baseDate.Unix())); err != nil {
		return err
	}
	if err := u32(uint32(x.net.NumSegments())); err != nil {
		return err
	}
	if err := u64(uint64(x.blob.Tail())); err != nil {
		return err
	}
	if err := u32(uint32(len(x.handles))); err != nil {
		return err
	}
	for _, h := range x.handles {
		binary.LittleEndian.PutUint64(buf[:8], uint64(h.Offset))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(h.Length))
		if _, err := bw.Write(buf[:12]); err != nil {
			return fmt.Errorf("stindex: write handle: %w", err)
		}
	}
	return bw.Flush()
}

// LoadIndex reopens a persisted index: net must be the same network it
// was built over (the network is deterministic from its generator config
// or its own codec), and cfg.Store must hold the original pages.
func LoadIndex(net *roadnet.Network, cfg Config, meta io.Reader) (*Index, error) {
	cfg = cfg.withDefaults()
	br := bufio.NewReader(meta)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("stindex: read meta magic: %w", err)
	}
	if string(magic) != metaMagic {
		return nil, fmt.Errorf("stindex: bad meta magic %q", magic)
	}
	var buf [12]byte
	u16 := func() (uint16, error) {
		if _, err := io.ReadFull(br, buf[:2]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(buf[:2]), nil
	}
	u32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(buf[:4]), nil
	}
	u64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:8]), nil
	}
	ver, err := u16()
	if err != nil {
		return nil, fmt.Errorf("stindex: read meta version: %w", err)
	}
	if ver < metaVersionMin || ver > metaVersion {
		return nil, fmt.Errorf("stindex: unsupported meta version %d", ver)
	}
	slotSec, err := u32()
	if err != nil {
		return nil, err
	}
	days, err := u32()
	if err != nil {
		return nil, err
	}
	baseUnix, err := u64()
	if err != nil {
		return nil, err
	}
	numSeg, err := u32()
	if err != nil {
		return nil, err
	}
	if int(numSeg) != net.NumSegments() {
		return nil, fmt.Errorf("stindex: meta built over %d segments, network has %d", numSeg, net.NumSegments())
	}
	tail, err := u64()
	if err != nil {
		return nil, err
	}
	numHandles, err := u32()
	if err != nil {
		return nil, err
	}
	if slotSec == 0 || 86400%int(slotSec) != 0 {
		return nil, fmt.Errorf("stindex: meta has invalid slot seconds %d", slotSec)
	}
	numSlots := 86400 / int(slotSec)
	if int(numHandles) != numSlots*int(numSeg) {
		return nil, fmt.Errorf("stindex: meta has %d handles, want %d", numHandles, numSlots*int(numSeg))
	}

	pool, err := storage.NewBufferPool(cfg.Store, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		net:      net,
		slotSec:  int(slotSec),
		numSlots: numSlots,
		days:     int(days),
		baseDate: time.Unix(int64(baseUnix), 0).UTC(),
		temporal: btree.New(),
		pool:     pool,
		blob:     storage.ReopenBlobFile(pool, int64(tail)),
		handles:  make([]storage.BlobHandle, numHandles),
		cache:    newTLCache(cfg.TimeListCache),
	}
	for s := 0; s < numSlots; s++ {
		idx.temporal.Put(int64(s*int(slotSec)), int64(s))
	}
	for i := range idx.handles {
		if _, err := io.ReadFull(br, buf[:12]); err != nil {
			return nil, fmt.Errorf("stindex: read handle %d: %w", i, err)
		}
		idx.handles[i] = storage.BlobHandle{
			Offset: int64(binary.LittleEndian.Uint64(buf[:8])),
			Length: int32(binary.LittleEndian.Uint32(buf[8:12])),
		}
	}
	return idx, nil
}
