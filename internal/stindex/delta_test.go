package stindex

import (
	"bytes"
	"fmt"
	"math/bits"
	"reflect"
	"sync"
	"testing"

	"streach/internal/roadnet"
	"streach/internal/traj"
)

// deltaObsAsVisits converts delta observations into one-visit matched
// trajectories sitting wholly inside their slot, so an offline Build
// over base ∪ extras expands them to exactly the same (slot, seg, day,
// taxi) tuples AppendDelta recorded.
func deltaObsAsVisits(obs []DeltaObs, slotSec int) []traj.MatchedTrajectory {
	out := make([]traj.MatchedTrajectory, 0, len(obs))
	for _, o := range obs {
		ms := int32(o.Slot*slotSec*1000 + 1000)
		out = append(out, traj.MatchedTrajectory{
			Taxi: o.Taxi, Day: o.Day,
			Visits: []traj.Visit{{Segment: o.Seg, EnterMs: ms, ExitMs: ms + 2000, Speed: 9}},
		})
	}
	return out
}

// setBits flattens a TimeListBits into sorted (day, taxi) pairs for
// semantic comparison (merged copies may carry longer zero-padded word
// slices than a freshly decoded blob).
func setBits(b *TimeListBits) [][2]int {
	if b == nil {
		return nil
	}
	var out [][2]int
	for i, d := range b.Days {
		for wi, w := range b.Bits[i] {
			for w != 0 {
				taxi := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				out = append(out, [2]int{int(d), taxi})
			}
		}
	}
	return out
}

func testDeltaObs(idx *Index) []DeltaObs {
	// Fresh taxi IDs above the simulated fleet, spread over segments,
	// slots, and days, with repeats to exercise set-union idempotence.
	var obs []DeltaObs
	n := idx.Network().NumSegments()
	for i := 0; i < 300; i++ {
		o := DeltaObs{
			Seg:  roadnet.SegmentID((i * 7) % n),
			Slot: (100 + i*3) % idx.NumSlots(),
			Day:  traj.Day(i % idx.Days()),
			Taxi: traj.TaxiID(100 + i%40),
		}
		obs = append(obs, o, o)
	}
	return obs
}

func TestDeltaMergeMatchesOfflineRebuild(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := buildIndex(t, n, ds)
	defer live.Close()

	obs := testDeltaObs(live)
	if err := live.AppendDelta(obs); err != nil {
		t.Fatal(err)
	}
	st := live.DeltaStats()
	if st.DirtyKeys == 0 || st.PendingObs == 0 {
		t.Fatalf("delta stats after append: %+v", st)
	}
	if st.DataVersion == 0 {
		t.Fatal("append did not bump the data version")
	}
	if st.Epoch != 0 {
		t.Fatalf("epoch moved without a compaction: %d", st.Epoch)
	}

	union := &traj.Dataset{
		BaseDate: ds.BaseDate, Days: ds.Days,
		Matched: append(append([]traj.MatchedTrajectory(nil), ds.Matched...),
			deltaObsAsVisits(obs, live.SlotSeconds())...),
	}
	offline := buildIndex(t, n, union)
	defer offline.Close()

	compare := func(stage string) {
		t.Helper()
		for seg := 0; seg < n.NumSegments(); seg++ {
			for slot := 0; slot < live.NumSlots(); slot++ {
				got, err := live.TimeListBitsAt(roadnet.SegmentID(seg), slot)
				if err != nil {
					t.Fatal(err)
				}
				want, err := offline.TimeListBitsAt(roadnet.SegmentID(seg), slot)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(setBits(got), setBits(want)) {
					t.Fatalf("%s: (seg=%d slot=%d) merged content differs from offline rebuild", stage, seg, slot)
				}
			}
		}
	}
	compare("base+delta")

	cs, err := live.CompactDeltas()
	if err != nil {
		t.Fatal(err)
	}
	if cs.Keys != st.DirtyKeys || cs.Epoch != 1 {
		t.Fatalf("compaction stats: %+v (dirty keys were %d)", cs, st.DirtyKeys)
	}
	after := live.DeltaStats()
	if after.DirtyKeys != 0 || after.PendingObs != 0 {
		t.Fatalf("delta not drained by compaction: %+v", after)
	}
	compare("post-compaction")

	// The acceptance criterion is bit-identity of the persisted form:
	// every blob the compaction wrote must be byte-identical to the blob
	// an offline rebuild over the union writes for the same key.
	liveHandles, offHandles := live.liveHandles(), offline.liveHandles()
	lr, or := live.blob.NewReader(), offline.blob.NewReader()
	for key := range liveHandles {
		lh, oh := liveHandles[key], offHandles[key]
		if lh.IsZero() != oh.IsZero() {
			t.Fatalf("key %d: handle presence differs (live zero=%v offline zero=%v)", key, lh.IsZero(), oh.IsZero())
		}
		if lh.IsZero() {
			continue
		}
		lb, err := lr.Read(lh)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := or.Read(oh)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(lb, ob) {
			t.Fatalf("key %d: compacted blob differs from offline rebuild (%d vs %d bytes)", key, len(lb), len(ob))
		}
	}
}

func TestDeltaAppendValidation(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()

	bad := []DeltaObs{
		{Seg: roadnet.SegmentID(n.NumSegments()), Slot: 0, Day: 0, Taxi: 1},
		{Seg: 0, Slot: idx.NumSlots(), Day: 0, Taxi: 1},
		{Seg: 0, Slot: 0, Day: traj.Day(idx.Days()), Taxi: 1},
		{Seg: 0, Slot: 0, Day: 0, Taxi: 1 << 15},
	}
	for i, o := range bad {
		if err := idx.AppendDelta([]DeltaObs{o}); err == nil {
			t.Fatalf("bad obs %d accepted: %+v", i, o)
		}
	}
	// A rejected batch must leave no trace.
	if st := idx.DeltaStats(); st.DirtyKeys != 0 || st.DataVersion != 0 {
		t.Fatalf("rejected batches mutated the delta layer: %+v", st)
	}
}

// TestDeltaConcurrentAppendReadCompact races appenders, readers, and a
// compactor (run under -race). The final content must be the union of
// everything appended, regardless of how appends interleaved with
// compaction installs.
func TestDeltaConcurrentAppendReadCompact(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := buildIndex(t, n, ds)
	defer live.Close()

	const appenders = 4
	var appendWG, auxWG sync.WaitGroup
	all := make([][]DeltaObs, appenders)
	for a := 0; a < appenders; a++ {
		// Disjoint taxi ranges per appender keep the oracle trivial.
		var obs []DeltaObs
		for i := 0; i < 200; i++ {
			obs = append(obs, DeltaObs{
				Seg:  roadnet.SegmentID((a*31 + i*5) % n.NumSegments()),
				Slot: (50 + a + i*2) % live.NumSlots(),
				Day:  traj.Day(i % live.Days()),
				Taxi: traj.TaxiID(200 + a*50 + i%50),
			})
		}
		all[a] = obs
	}
	for a := 0; a < appenders; a++ {
		appendWG.Add(1)
		go func(obs []DeltaObs) {
			defer appendWG.Done()
			for i := 0; i < len(obs); i += 20 {
				if err := live.AppendDelta(obs[i : i+20]); err != nil {
					t.Error(err)
					return
				}
			}
		}(all[a])
	}
	stop := make(chan struct{})
	auxWG.Add(2)
	go func() { // reader
		defer auxWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			seg := roadnet.SegmentID(i % n.NumSegments())
			if _, err := live.TimeListBitsAt(seg, (50+i)%live.NumSlots()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // compactor
		defer auxWG.Done()
		for i := 0; i < 5; i++ {
			if _, err := live.CompactDeltas(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	appendWG.Wait()
	close(stop)
	auxWG.Wait()

	// One final compaction folds whatever raced the earlier ones.
	if _, err := live.CompactDeltas(); err != nil {
		t.Fatal(err)
	}
	if st := live.DeltaStats(); st.DirtyKeys != 0 || st.PendingObs != 0 {
		t.Fatalf("delta not drained: %+v", st)
	}

	union := &traj.Dataset{BaseDate: ds.BaseDate, Days: ds.Days,
		Matched: append([]traj.MatchedTrajectory(nil), ds.Matched...)}
	for _, obs := range all {
		union.Matched = append(union.Matched, deltaObsAsVisits(obs, live.SlotSeconds())...)
	}
	offline := buildIndex(t, n, union)
	defer offline.Close()
	for seg := 0; seg < n.NumSegments(); seg++ {
		for slot := 0; slot < live.NumSlots(); slot++ {
			got, err := live.TimeListBitsAt(roadnet.SegmentID(seg), slot)
			if err != nil {
				t.Fatal(err)
			}
			want, err := offline.TimeListBitsAt(roadnet.SegmentID(seg), slot)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(setBits(got), setBits(want)) {
				t.Fatalf("(seg=%d slot=%d) racy appends lost or invented content", seg, slot)
			}
		}
	}
}

// TestDeltaEpochSwapKeepsReadersConsistent pins the retry loop in
// readMerged: a read never pairs a stale base with an already-cleared
// delta, so at every instant a (seg, slot) read returns either the
// pre-append, post-append, or post-compaction content — never a subset.
func TestDeltaEpochSwapKeepsReadersConsistent(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := buildIndex(t, n, ds)
	defer live.Close()

	seg, slot := roadnet.SegmentID(3), 110
	key := fmt.Sprintf("seg=%d slot=%d", seg, slot)
	base, err := live.TimeListBitsAt(seg, slot)
	if err != nil {
		t.Fatal(err)
	}
	baseCount := len(setBits(base))
	obs := []DeltaObs{{Seg: seg, Slot: slot, Day: 1, Taxi: 300}}
	if err := live.AppendDelta(obs); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			b, err := live.TimeListBitsAt(seg, slot)
			if err != nil {
				t.Error(err)
				return
			}
			if got := len(setBits(b)); got != baseCount+1 {
				t.Errorf("%s: read %d observations mid-swap, want %d", key, got, baseCount+1)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		if _, err := live.CompactDeltas(); err != nil {
			t.Fatal(err)
		}
		// Re-dirty the key so every iteration swaps with a pending delta.
		if err := live.AppendDelta([]DeltaObs{{Seg: seg, Slot: slot, Day: 1, Taxi: 300}}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDeltaAppendRefreshesCachedReads pins the copy-on-write cache
// refresh: a key resident in the decoded-list cache before an append
// must serve the appended observation on the next read as a cache HIT
// (refreshed, not invalidated), and the list published before the
// append must not have been mutated in place — readers may still hold
// it.
func TestDeltaAppendRefreshesCachedReads(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := buildIndex(t, n, ds)
	defer live.Close()

	seg, slot := roadnet.SegmentID(3), 110
	before, err := live.TimeListBitsAt(seg, slot) // warms the cache
	if err != nil {
		t.Fatal(err)
	}
	beforeSet := setBits(before)

	st0 := live.CacheStats()
	if err := live.AppendDelta([]DeltaObs{{Seg: seg, Slot: slot, Day: 1, Taxi: 310}}); err != nil {
		t.Fatal(err)
	}
	after, err := live.TimeListBitsAt(seg, slot)
	if err != nil {
		t.Fatal(err)
	}
	st1 := live.CacheStats()
	if st1.Misses != st0.Misses {
		t.Fatalf("append evicted the key: post-append read was a cold miss (%+v -> %+v)", st0, st1)
	}
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("post-append read was not a cache hit (%+v -> %+v)", st0, st1)
	}
	if got := len(setBits(after)); got != len(beforeSet)+1 {
		t.Fatalf("refreshed read has %d observations, want %d", got, len(beforeSet)+1)
	}
	if !reflect.DeepEqual(setBits(before), beforeSet) {
		t.Fatal("append mutated a published time list in place")
	}
	// A key NOT resident stays absent: write-only traffic must not be
	// able to flush read-hot entries through the refresh path.
	cold := roadnet.SegmentID(7)
	res0 := live.CacheLen()
	if err := live.AppendDelta([]DeltaObs{{Seg: cold, Slot: 5, Day: 0, Taxi: 311}}); err != nil {
		t.Fatal(err)
	}
	if live.CacheLen() != res0 {
		t.Fatal("append to an uncached key changed cache residency")
	}
}

// TestDeltaBudgetedCompactionConverges checks the incremental fold:
// each budgeted cycle folds at most maxKeys keys (the hottest first, so
// per-cycle folded observations are non-increasing), Remaining reports
// the rolled-over keys honestly, repeated cycles drain the delta, and
// the converged index reads identically to a full one-shot compaction
// of the same delta on a twin index.
func TestDeltaBudgetedCompactionConverges(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	live := buildIndex(t, n, ds)
	defer live.Close()
	twin := buildIndex(t, n, ds)
	defer twin.Close()

	obs := testDeltaObs(live)
	if err := live.AppendDelta(obs); err != nil {
		t.Fatal(err)
	}
	if err := twin.AppendDelta(obs); err != nil {
		t.Fatal(err)
	}

	dirty0 := live.DeltaStats().DirtyKeys
	budget := dirty0 / 4
	if budget < 1 {
		t.Fatalf("test dataset too small: %d dirty keys", dirty0)
	}

	var cycles int
	var lastFullObs int64 = 1 << 62
	var epoch uint64
	remaining := dirty0
	for {
		cs, err := live.CompactDeltasBudget(budget)
		if err != nil {
			t.Fatal(err)
		}
		cycles++
		if cs.Keys > budget {
			t.Fatalf("cycle %d folded %d keys, budget %d", cycles, cs.Keys, budget)
		}
		if want := remaining - cs.Keys; cs.Remaining != want {
			t.Fatalf("cycle %d: Remaining = %d, want %d (had %d, folded %d)",
				cycles, cs.Remaining, want, remaining, cs.Keys)
		}
		if cs.Epoch != epoch+1 {
			t.Fatalf("cycle %d: epoch %d, want %d", cycles, cs.Epoch, epoch+1)
		}
		epoch = cs.Epoch
		if cs.Keys == budget {
			// Hottest-first selection: a full cycle's folded observation
			// count never increases from the previous full cycle's.
			if cs.Observations > lastFullObs {
				t.Fatalf("cycle %d folded %d observations, previous full cycle folded %d: not hottest-first",
					cycles, cs.Observations, lastFullObs)
			}
			lastFullObs = cs.Observations
		}
		remaining = cs.Remaining
		if remaining > 0 {
			if pend := live.PendingDelta(); len(pend) == 0 {
				t.Fatalf("cycle %d: %d keys remaining but PendingDelta is empty", cycles, remaining)
			}
		}
		if remaining == 0 {
			break
		}
	}
	if cycles < 3 {
		t.Fatalf("budget %d over %d dirty keys converged in %d cycles, want >= 3 (budget not binding)",
			budget, dirty0, cycles)
	}
	if st := live.DeltaStats(); st.DirtyKeys != 0 || st.PendingObs != 0 {
		t.Fatalf("delta not drained after convergence: %+v", st)
	}

	// The twin folds everything in one cycle; reads must agree bit for bit.
	if _, err := twin.CompactDeltas(); err != nil {
		t.Fatal(err)
	}
	for seg := 0; seg < n.NumSegments(); seg++ {
		for slot := 0; slot < live.NumSlots(); slot++ {
			got, err := live.TimeListBitsAt(roadnet.SegmentID(seg), slot)
			if err != nil {
				t.Fatal(err)
			}
			want, err := twin.TimeListBitsAt(roadnet.SegmentID(seg), slot)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(setBits(got), setBits(want)) {
				t.Fatalf("(seg=%d slot=%d) budgeted convergence differs from one-shot compaction", seg, slot)
			}
		}
	}
}
