package stindex

import (
	"testing"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

func testNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
		Rows:          5,
		Cols:          5,
		SpacingMeters: 700,
		LocalFraction: 0.3,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func testDataset(t *testing.T, n *roadnet.Network) *traj.Dataset {
	t.Helper()
	ds, err := traj.Simulate(n, traj.SimConfig{
		Taxis: 12, Days: 4, Profile: traj.DefaultSpeedProfile(), Seed: 5,
		ActiveStartSec: 9 * 3600, ActiveEndSec: 11 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func buildIndex(t *testing.T, n *roadnet.Network, ds *traj.Dataset) *Index {
	t.Helper()
	idx, err := Build(n, ds, Config{SlotSeconds: 300})
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestBuildValidations(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	if _, err := Build(roadnet.NewBuilder().Build(), ds, Config{}); err == nil {
		t.Fatal("empty network should error")
	}
	if _, err := Build(n, &traj.Dataset{}, Config{}); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := Build(n, ds, Config{SlotSeconds: 7}); err == nil {
		t.Fatal("slot not dividing 86400 should error")
	}
}

func TestTimeListsMatchDataset(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()

	// Oracle: recompute (seg, slot, day) -> taxis from the raw dataset.
	type key struct {
		seg  roadnet.SegmentID
		slot int
		day  traj.Day
	}
	oracle := map[key]map[traj.TaxiID]bool{}
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		for _, v := range mt.Visits {
			s0 := int(v.EnterMs) / 1000 / 300
			s1 := int(v.ExitMs) / 1000 / 300
			for s := s0; s <= s1 && s < idx.NumSlots(); s++ {
				k := key{v.Segment, s, mt.Day}
				if oracle[k] == nil {
					oracle[k] = map[traj.TaxiID]bool{}
				}
				oracle[k][mt.Taxi] = true
			}
		}
	}
	checked := 0
	for k, want := range oracle {
		tl, err := idx.TimeListAt(k.seg, k.slot)
		if err != nil {
			t.Fatal(err)
		}
		got := tl.TaxisOn(k.day)
		if len(got) != len(want) {
			t.Fatalf("time list (seg=%d slot=%d day=%d): %d taxis, want %d",
				k.seg, k.slot, k.day, len(got), len(want))
		}
		for _, taxi := range got {
			if !want[taxi] {
				t.Fatalf("time list has unexpected taxi %d", taxi)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("oracle was empty; test is vacuous")
	}
}

func TestTimeListEmptyForQuietSlot(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n) // active 09:00-11:00 only
	idx := buildIndex(t, n, ds)
	defer idx.Close()
	// 03:00 should be silent everywhere.
	slot := 3 * 3600 / 300
	for seg := 0; seg < n.NumSegments(); seg++ {
		tl, err := idx.TimeListAt(roadnet.SegmentID(seg), slot)
		if err != nil {
			t.Fatal(err)
		}
		if len(tl.Days) != 0 {
			t.Fatalf("segment %d has traffic at 03:00", seg)
		}
	}
}

func TestTimeListOutOfRangeInputs(t *testing.T) {
	n := testNetwork(t)
	idx := buildIndex(t, n, testDataset(t, n))
	defer idx.Close()
	for _, tc := range []struct {
		seg  roadnet.SegmentID
		slot int
	}{{-1, 0}, {0, -1}, {0, 1 << 20}, {roadnet.SegmentID(n.NumSegments()), 0}} {
		tl, err := idx.TimeListAt(tc.seg, tc.slot)
		if err != nil {
			t.Fatal(err)
		}
		if len(tl.Days) != 0 {
			t.Fatal("out-of-range lookup should be empty, not panic")
		}
	}
}

func TestSlotOf(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()
	base := ds.BaseDate
	cases := []struct {
		t    time.Time
		want int
	}{
		{base, 0},
		{base.Add(299 * time.Second), 0},
		{base.Add(300 * time.Second), 1},
		{base.Add(9 * time.Hour), 9 * 12},
		{base.AddDate(0, 0, 2).Add(9 * time.Hour), 9 * 12}, // day wraps
	}
	for _, c := range cases {
		if got := idx.SlotOf(c.t); got != c.want {
			t.Fatalf("SlotOf(%v) = %d, want %d", c.t, got, c.want)
		}
	}
}

func TestDayOf(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()
	if d := idx.DayOf(ds.BaseDate.Add(5 * time.Hour)); d != 0 {
		t.Fatalf("DayOf day0 = %d", d)
	}
	if d := idx.DayOf(ds.BaseDate.AddDate(0, 0, 3).Add(time.Hour)); d != 3 {
		t.Fatalf("DayOf day3 = %d", d)
	}
}

func TestSnapLocation(t *testing.T) {
	n := testNetwork(t)
	idx := buildIndex(t, n, testDataset(t, n))
	defer idx.Close()
	seg := n.Segment(3)
	p := geo.Offset(seg.Midpoint(), 20, 20)
	id, ok := idx.SnapLocation(p)
	if !ok {
		t.Fatal("snap failed")
	}
	if d := geo.Distance(n.Segment(id).Midpoint(), p); d > 2000 {
		t.Fatalf("snapped to a segment %v m away", d)
	}
}

func TestIOAccountingThroughPool(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	// Disable the decoded-list cache so every read exercises the pool.
	idx, err := Build(n, ds, Config{SlotSeconds: 300, TimeListCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if st := idx.Pool().Stats(); st.Reads != 0 || st.Hits != 0 {
		t.Fatalf("build should reset stats, got %v", st)
	}
	// First read misses, repeated read hits.
	mt := &ds.Matched[0]
	v := mt.Visits[0]
	slot := idx.SlotOf(v.Enter(ds.DayStart(mt.Day)))
	if _, err := idx.TimeListAt(v.Segment, slot); err != nil {
		t.Fatal(err)
	}
	st1 := idx.Pool().Stats()
	if st1.Misses == 0 {
		t.Fatalf("first read should miss, got %v", st1)
	}
	if _, err := idx.TimeListAt(v.Segment, slot); err != nil {
		t.Fatal(err)
	}
	st2 := idx.Pool().Stats()
	if st2.Hits <= st1.Hits {
		t.Fatalf("second read should hit, got %v -> %v", st1, st2)
	}
}

func TestDecodedCacheShieldsPool(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds) // decoded cache on by default
	defer idx.Close()
	mt := &ds.Matched[0]
	v := mt.Visits[0]
	slot := idx.SlotOf(v.Enter(ds.DayStart(mt.Day)))
	if _, err := idx.TimeListBitsAt(v.Segment, slot); err != nil {
		t.Fatal(err)
	}
	c1 := idx.CacheStats()
	if c1.Misses == 0 {
		t.Fatalf("first read should miss the decoded cache, got %+v", c1)
	}
	io1 := idx.Pool().Stats()
	if _, err := idx.TimeListBitsAt(v.Segment, slot); err != nil {
		t.Fatal(err)
	}
	c2 := idx.CacheStats()
	if c2.Hits <= c1.Hits {
		t.Fatalf("second read should hit the decoded cache, got %+v -> %+v", c1, c2)
	}
	if io2 := idx.Pool().Stats(); io2 != io1 {
		t.Fatalf("decoded cache hit should not touch the pool: %v -> %v", io1, io2)
	}
	if idx.CacheLen() == 0 {
		t.Fatal("cache should hold the decoded list")
	}
}

func TestBuildDeterministic(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	a := buildIndex(t, n, ds)
	defer a.Close()
	b := buildIndex(t, n, ds)
	defer b.Close()
	// Same handles imply identical serialized layout.
	ah, bh := a.liveHandles(), b.liveHandles()
	for i := range ah {
		if ah[i] != bh[i] {
			t.Fatalf("handle %d differs between builds", i)
		}
	}
}

func TestEncodeDecodeTimeList(t *testing.T) {
	// Tuples for (slot 0, seg 0): day 0 taxi 9; day 2 taxis 1, 5 (with a
	// duplicate to exercise dedup).
	run := []uint64{
		packTuple(0, 0, 0, 9),
		packTuple(0, 0, 2, 1),
		packTuple(0, 0, 2, 1),
		packTuple(0, 0, 2, 5),
	}
	blob := encodeTimeListRun(run)
	tl, err := decodeTimeList(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Days) != 2 || tl.Days[0] != 0 || tl.Days[1] != 2 {
		t.Fatalf("days = %v", tl.Days)
	}
	if got := tl.TaxisOn(2); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Fatalf("taxis on day 2 = %v, want [1 5]", got)
	}
	if got := tl.TaxisOn(7); got != nil {
		t.Fatal("absent day should be nil")
	}
	// Truncated blobs must error, not panic.
	for cut := 3; cut < len(blob)-1; cut += 3 {
		if _, err := decodeTimeList(blob[:cut]); err == nil {
			// Cuts that land exactly on a record boundary decode fine as a
			// shorter list only if the header count matches; with count
			// fixed this must error.
			t.Fatalf("truncation at %d should error", cut)
		}
	}
}
