package stindex

import (
	"math/rand"
	"reflect"
	"testing"

	"streach/internal/roadnet"
)

// randomRun builds a sorted, deduplicated packed-tuple run for one
// (slot, segment) pair.
func randomRun(rng *rand.Rand, slot, seg, maxDay, maxTaxi, n int) []uint64 {
	if n > maxDay*maxTaxi {
		n = maxDay * maxTaxi // can't draw more distinct tuples than exist
	}
	seen := map[uint64]bool{}
	var run []uint64
	for len(run) < n {
		t := packTuple(slot, seg, rng.Intn(maxDay), rng.Intn(maxTaxi))
		if seen[t] {
			continue
		}
		seen[t] = true
		run = append(run, t)
	}
	sortTuples(run)
	return run
}

func sortTuples(run []uint64) {
	for i := 1; i < len(run); i++ {
		for j := i; j > 0 && run[j] < run[j-1]; j-- {
			run[j], run[j-1] = run[j-1], run[j]
		}
	}
}

func TestBitsCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		run := randomRun(rng, 3, 9, 1+rng.Intn(120), 1+rng.Intn(400), 1+rng.Intn(80))
		// Reference decode: the legacy encoder over the same run.
		legacy, err := decodeTimeList(encodeTimeListRun(run))
		if err != nil {
			t.Fatal(err)
		}
		bits, err := decodeTimeListBits(encodeTimeListBitsRun(run))
		if err != nil {
			t.Fatal(err)
		}
		got := bits.TimeList()
		if !reflect.DeepEqual(got.Days, legacy.Days) {
			t.Fatalf("trial %d: days %v != %v", trial, got.Days, legacy.Days)
		}
		if !reflect.DeepEqual(got.Taxis, legacy.Taxis) {
			t.Fatalf("trial %d: taxis %v != %v", trial, got.Taxis, legacy.Taxis)
		}
		// The day mask must agree with the day list.
		for _, d := range bits.Days {
			if bits.DayMask[int(d)>>6]&(1<<(uint(d)&63)) == 0 {
				t.Fatalf("trial %d: day %d missing from mask", trial, d)
			}
		}
	}
}

func TestAdaptiveEncodingPicksSmaller(t *testing.T) {
	// Sparse: one high-ID taxi on one day — the u32 list wins.
	sparse := []uint64{packTuple(0, 0, 3, 500)}
	if blob := encodeTimeListRunAdaptive(sparse); isBitsBlob(blob) {
		t.Fatalf("sparse run should stay in list form, got %d-byte bitset blob", len(blob))
	}
	// Dense: 60 low-ID taxis on one day — the bitset wins.
	var dense []uint64
	for taxi := 0; taxi < 60; taxi++ {
		dense = append(dense, packTuple(0, 0, 3, taxi))
	}
	if blob := encodeTimeListRunAdaptive(dense); !isBitsBlob(blob) {
		t.Fatalf("dense run should be bitset-encoded, got %d-byte list blob", len(blob))
	}
	// Both decode to the same lists through the bitset path.
	for _, run := range [][]uint64{sparse, dense} {
		a, err := decodeTimeListBits(encodeTimeListRunAdaptive(run))
		if err != nil {
			t.Fatal(err)
		}
		b, err := decodeTimeListBits(encodeTimeListBitsRun(run))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.TimeList(), b.TimeList()) {
			t.Fatal("adaptive and bitset decodes differ")
		}
	}
}

func TestBitsDecodeLegacyBlob(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	run := randomRun(rng, 1, 2, 30, 250, 40)
	legacyBlob := encodeTimeListRun(run)
	bits, err := decodeTimeListBits(legacyBlob)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := decodeTimeList(legacyBlob)
	if err != nil {
		t.Fatal(err)
	}
	got := bits.TimeList()
	if !reflect.DeepEqual(got.Days, legacy.Days) || !reflect.DeepEqual(got.Taxis, legacy.Taxis) {
		t.Fatal("legacy blob decoded through the bitset path differs")
	}
}

func TestBitsEmptyBlob(t *testing.T) {
	b, err := decodeTimeListBits(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Days) != 0 || len(b.Bits) != 0 {
		t.Fatal("empty blob should decode to an empty list")
	}
}

func TestMultiWordDayMask(t *testing.T) {
	run := []uint64{
		packTuple(0, 0, 2, 5),
		packTuple(0, 0, 2, 70),
		packTuple(0, 0, 65, 1),
	}
	b, err := decodeTimeListBits(encodeTimeListBitsRun(run))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Days) != 2 || b.Days[0] != 2 || b.Days[1] != 65 {
		t.Fatalf("days = %v, want [2 65]", b.Days)
	}
	if got := b.Bits[0]; got[0]&(1<<5) == 0 || got[1]&(1<<6) == 0 {
		t.Fatalf("day 2 bitset wrong: %v", got)
	}
	if got := b.Bits[1]; got[0]&(1<<1) == 0 {
		t.Fatalf("day 65 bitset wrong: %v", got)
	}
	if len(b.DayMask) != 2 || b.DayMask[0] != 1<<2 || b.DayMask[1] != 1<<1 {
		t.Fatalf("day mask = %v", b.DayMask)
	}
}

func TestBitsIntersect(t *testing.T) {
	cases := []struct {
		a, b []uint64
		want bool
	}{
		{nil, nil, false},
		{[]uint64{1}, nil, false},
		{[]uint64{0b101}, []uint64{0b010}, false},
		{[]uint64{0b101}, []uint64{0b100}, true},
		{[]uint64{0, 1 << 9}, []uint64{0, 1 << 9}, true},
		{[]uint64{0, 1 << 9}, []uint64{1 << 9}, false}, // different words
	}
	for i, c := range cases {
		if got := BitsIntersect(c.a, c.b); got != c.want {
			t.Fatalf("case %d: BitsIntersect = %v, want %v", i, got, c.want)
		}
	}
}

func TestOrBits(t *testing.T) {
	dst := OrBits(nil, []uint64{0b01, 0, 1 << 63})
	dst = OrBits(dst, []uint64{0b10})
	if dst[0] != 0b11 || dst[2] != 1<<63 {
		t.Fatalf("OrBits = %v", dst)
	}
}

func TestTimeListsRangeMatchesTimeListAt(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()

	lo, hi := 9*12, 9*12+11 // the simulated active window, 09:00–10:00
	for seg := 0; seg < n.NumSegments(); seg++ {
		lists, err := idx.TimeListsRange(roadnet.SegmentID(seg), lo, hi, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(lists) != hi-lo+1 {
			t.Fatalf("range returned %d lists, want %d", len(lists), hi-lo+1)
		}
		for s := lo; s <= hi; s++ {
			single, err := idx.TimeListAt(roadnet.SegmentID(seg), s)
			if err != nil {
				t.Fatal(err)
			}
			batch := lists[s-lo].TimeList()
			if !reflect.DeepEqual(batch.Days, single.Days) || !reflect.DeepEqual(batch.Taxis, single.Taxis) {
				t.Fatalf("seg %d slot %d: range decode differs from single decode", seg, s)
			}
		}
	}
	// Out-of-range slots decode as empty, matching TimeListAt.
	lists, err := idx.TimeListsRange(0, idx.NumSlots()-1, idx.NumSlots()+1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lists) != 3 || len(lists[1].Days) != 0 || len(lists[2].Days) != 0 {
		t.Fatalf("out-of-range slots should be empty, got %d lists", len(lists))
	}
}
