package stindex

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"streach/internal/bitset"
	"streach/internal/traj"
)

// Bitset time-list encoding (blob format v2, see DESIGN.md §Performance).
//
// The legacy (v1) encoding stores each day's taxis as a sorted u32 list,
// which forces the verification inner loop into a per-day merge scan. The
// v2 encoding stores the same information as bitsets so that probe
// intersections become word-AND loops:
//
//	[0]=0xB2 [1]=0xFE                    two-byte marker (impossible as a
//	                                     v1 prefix: v1 byte 1 is the high
//	                                     byte of a <512 day count)
//	u16 numDays                          popcount of the day mask
//	u16 maskWords, maskWords x u64      day-presence bitmask
//	per present day, ascending:
//	    u16 nwords, nwords x u64        taxi bitset, sized to the day's
//	                                     highest taxi ID
//
// Taxi bitsets are sized per day, so the format needs no global taxi
// bound; intersecting two bitsets only scans min(len) words because the
// missing high words are implicitly zero.

const (
	bitsMarker0 = 0xB2
	bitsMarker1 = 0xFE
)

// TimeListBits is the decoded bitset form of one (segment, slot) time
// list: a day-presence bitmask plus per-day taxi bitsets. Instances
// returned by the index may be shared (cached); callers must not modify
// them.
type TimeListBits struct {
	// DayMask has bit d set when day d has traffic.
	DayMask []uint64
	// Days lists the present days ascending (the set bits of DayMask).
	Days []traj.Day
	// Bits is parallel to Days: the day's taxi bitset (bit t = taxi t).
	Bits [][]uint64
}

// TimeList expands the bitsets into the legacy sorted-ID representation.
func (b *TimeListBits) TimeList() *TimeList {
	tl := &TimeList{
		Days:  append([]traj.Day(nil), b.Days...),
		Taxis: make([][]traj.TaxiID, len(b.Bits)),
	}
	for i, words := range b.Bits {
		n := 0
		for _, w := range words {
			n += bits.OnesCount64(w)
		}
		taxis := make([]traj.TaxiID, 0, n)
		for wi, w := range words {
			for w != 0 {
				taxis = append(taxis, traj.TaxiID(wi<<6+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
		tl.Taxis[i] = taxis
	}
	return tl
}

// BitsIntersect reports whether two taxi bitsets share a set bit. Words
// beyond the shorter slice are implicitly zero.
func BitsIntersect(a, b []uint64) bool { return bitset.Intersects(a, b) }

// OrBits folds src into dst, growing dst as needed, and returns dst.
func OrBits(dst, src []uint64) []uint64 { return bitset.OrGrow(dst, src) }

// encodeTimeListRunAdaptive picks between the two encodings for the
// run. Dense lists (the ones probe verification spends its time on) win
// as bitsets; sparse lists — a handful of taxis with high IDs — stay as
// sorted u32 lists, which keeps blob sizes and therefore cold-read page
// I/O near parity with the v1 index. The sparse form must earn its keep:
// decoding it costs a bitset conversion on every cache miss, so it is
// chosen only when clearly smaller (below 2/3 of the bitset bytes), not
// merely a few bytes ahead. The decoder dispatches per blob, so the two
// formats coexist freely.
func encodeTimeListRunAdaptive(run []uint64) []byte {
	bits := encodeTimeListBitsRun(run)
	legacy := encodeTimeListRun(run)
	if 3*len(legacy) < 2*len(bits) {
		return legacy
	}
	return bits
}

// encodeTimeListBitsRun serializes one sorted, deduplicated (slot,
// segment) run of packed tuples in the v2 bitset format.
func encodeTimeListBitsRun(run []uint64) []byte {
	// Pass 1: day mask and per-day max taxi (tuples are sorted, so the
	// last tuple of each day's group carries its maximum taxi ID).
	var dayMask [8]uint64    // days < 512
	var dayWords [512]uint16 // taxi bitset words needed per day
	maxWord := 0
	numDays := 0
	size := 2 + 2 + 2
	for i, t := range run {
		if i > 0 && t == run[i-1] {
			continue
		}
		_, _, d, taxi := unpackTuple(t)
		w := d >> 6
		if dayMask[w]&(1<<(uint(d)&63)) == 0 {
			dayMask[w] |= 1 << (uint(d) & 63)
			numDays++
			size += 2
		}
		if w > maxWord {
			maxWord = w
		}
		if nw := uint16(taxi>>6 + 1); nw > dayWords[d] {
			size += 8 * int(nw-dayWords[d])
			dayWords[d] = nw
		}
	}
	maskWords := maxWord + 1
	size += 8 * maskWords
	out := make([]byte, 0, size)
	out = append(out, bitsMarker0, bitsMarker1)
	var tmp [8]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(numDays))
	out = append(out, tmp[:2]...)
	binary.LittleEndian.PutUint16(tmp[:2], uint16(maskWords))
	out = append(out, tmp[:2]...)
	for i := 0; i < maskWords; i++ {
		binary.LittleEndian.PutUint64(tmp[:8], dayMask[i])
		out = append(out, tmp[:8]...)
	}
	// Pass 2: per-day taxi bitsets, in ascending day order (= run order).
	i := 0
	scratch := make([]uint64, 0, 8)
	for i < len(run) {
		if i > 0 && run[i] == run[i-1] {
			i++
			continue
		}
		_, _, day, _ := unpackTuple(run[i])
		nw := int(dayWords[day])
		scratch = scratch[:0]
		for len(scratch) < nw {
			scratch = append(scratch, 0)
		}
		for i < len(run) {
			if i > 0 && run[i] == run[i-1] {
				i++
				continue
			}
			_, _, d, taxi := unpackTuple(run[i])
			if d != day {
				break
			}
			scratch[taxi>>6] |= 1 << (uint(taxi) & 63)
			i++
		}
		binary.LittleEndian.PutUint16(tmp[:2], uint16(nw))
		out = append(out, tmp[:2]...)
		for _, w := range scratch {
			binary.LittleEndian.PutUint64(tmp[:8], w)
			out = append(out, tmp[:8]...)
		}
	}
	return out
}

// isBitsBlob reports whether the blob carries the v2 marker.
func isBitsBlob(blob []byte) bool {
	return len(blob) >= 2 && blob[0] == bitsMarker0 && blob[1] == bitsMarker1
}

// decodeTimeListBits decodes either blob format into the bitset form.
// Legacy/sparse (v1) blobs are converted on the fly, so indexes
// persisted before the bitset encoding keep working. Both paths carve
// the per-day word slices out of one backing allocation: a decode is a
// handful of allocations regardless of day count, which is what keeps
// cold-cache probes (and the first query after OpenSystem) cheap.
func decodeTimeListBits(blob []byte) (*TimeListBits, error) {
	if len(blob) < 2 {
		return &TimeListBits{}, nil
	}
	if !isBitsBlob(blob) {
		return bitsFromV1Blob(blob)
	}
	if len(blob) < 6 {
		return nil, fmt.Errorf("stindex: truncated bitset time list header")
	}
	numDays := int(binary.LittleEndian.Uint16(blob[2:4]))
	maskWords := int(binary.LittleEndian.Uint16(blob[4:6]))
	off := 6
	if off+8*maskWords > len(blob) {
		return nil, fmt.Errorf("stindex: truncated bitset day mask")
	}
	b := &TimeListBits{
		DayMask: make([]uint64, maskWords),
		Days:    make([]traj.Day, 0, numDays),
		Bits:    make([][]uint64, numDays),
	}
	for i := 0; i < maskWords; i++ {
		b.DayMask[i] = binary.LittleEndian.Uint64(blob[off : off+8])
		off += 8
	}
	got := 0
	for wi, w := range b.DayMask {
		for w != 0 {
			b.Days = append(b.Days, traj.Day(wi<<6+bits.TrailingZeros64(w)))
			w &= w - 1
			got++
		}
	}
	if got != numDays {
		return nil, fmt.Errorf("stindex: bitset day count %d does not match mask popcount %d", numDays, got)
	}
	// Pass 1 over the entry headers: total words, for one backing array.
	total := 0
	scan := off
	for i := 0; i < numDays; i++ {
		if scan+2 > len(blob) {
			return nil, fmt.Errorf("stindex: truncated bitset entry header at day %d", i)
		}
		nw := int(binary.LittleEndian.Uint16(blob[scan : scan+2]))
		if scan+2+8*nw > len(blob) {
			return nil, fmt.Errorf("stindex: truncated bitset entry at day %d", i)
		}
		scan += 2 + 8*nw
		total += nw
	}
	backing := make([]uint64, total)
	used := 0
	for i := 0; i < numDays; i++ {
		nw := int(binary.LittleEndian.Uint16(blob[off : off+2]))
		off += 2
		words := backing[used : used+nw : used+nw]
		used += nw
		for j := 0; j < nw; j++ {
			words[j] = binary.LittleEndian.Uint64(blob[off : off+8])
			off += 8
		}
		b.Bits[i] = words
	}
	return b, nil
}

// bitsFromV1Blob converts a legacy/sparse (v1) blob — per day, a sorted
// u32 taxi list — straight to bitset form without materialising the
// intermediate TimeList.
func bitsFromV1Blob(blob []byte) (*TimeListBits, error) {
	numDays := int(binary.LittleEndian.Uint16(blob[:2]))
	b := &TimeListBits{
		Days: make([]traj.Day, 0, numDays),
		Bits: make([][]uint64, numDays),
	}
	// Pass 1: validate framing; per-day word need (taxis are sorted, so
	// each day's last entry is its maximum); day mask extent.
	total := 0
	maxWord := 0
	off := 2
	for i := 0; i < numDays; i++ {
		if off+4 > len(blob) {
			return nil, fmt.Errorf("stindex: truncated time list header at day %d", i)
		}
		day := int(binary.LittleEndian.Uint16(blob[off : off+2]))
		cnt := int(binary.LittleEndian.Uint16(blob[off+2 : off+4]))
		off += 4
		if off+4*cnt > len(blob) {
			return nil, fmt.Errorf("stindex: truncated time list entries at day %d", i)
		}
		if cnt > 0 {
			last := int(binary.LittleEndian.Uint32(blob[off+4*(cnt-1) : off+4*cnt]))
			total += last>>6 + 1
		}
		if w := day >> 6; w > maxWord {
			maxWord = w
		}
		off += 4 * cnt
	}
	if numDays > 0 {
		b.DayMask = make([]uint64, maxWord+1)
	}
	backing := make([]uint64, total)
	used := 0
	off = 2
	for i := 0; i < numDays; i++ {
		day := int(binary.LittleEndian.Uint16(blob[off : off+2]))
		cnt := int(binary.LittleEndian.Uint16(blob[off+2 : off+4]))
		off += 4
		b.DayMask[day>>6] |= 1 << (uint(day) & 63)
		b.Days = append(b.Days, traj.Day(day))
		var words []uint64
		if cnt > 0 {
			last := int(binary.LittleEndian.Uint32(blob[off+4*(cnt-1) : off+4*cnt]))
			nw := last>>6 + 1
			words = backing[used : used+nw : used+nw]
			used += nw
			for j := 0; j < cnt; j++ {
				t := binary.LittleEndian.Uint32(blob[off : off+4])
				if int(t>>6) >= nw {
					return nil, fmt.Errorf("stindex: unsorted time list entries at day %d", i)
				}
				words[t>>6] |= 1 << (t & 63)
				off += 4
			}
		}
		b.Bits[i] = words
	}
	return b, nil
}

