package stindex

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// CacheStats counts decoded time-list cache activity. Hits skip both the
// buffer pool and blob decoding entirely.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// Sub returns the delta s - o, used to attribute cache activity to one
// query.
func (s CacheStats) Sub(o CacheStats) CacheStats {
	return CacheStats{Hits: s.Hits - o.Hits, Misses: s.Misses - o.Misses}
}

// tlCache is a small LRU of decoded TimeListBits keyed by
// slot*numSegments+segment. It sits above the buffer pool: a hit costs a
// map lookup, a miss costs a (buffered) blob read plus a decode. The
// cached values are shared and immutable — the index never mutates a list
// after Build.
type tlCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // of *tlEntry, front = most recent
	entries  map[int]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type tlEntry struct {
	key  int
	bits *TimeListBits
}

func newTLCache(capacity int) *tlCache {
	if capacity <= 0 {
		return nil // disabled
	}
	return &tlCache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[int]*list.Element, capacity),
	}
}

// get returns the cached decode, counting a hit or miss.
func (c *tlCache) get(key int) (*TimeListBits, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(el)
		b := el.Value.(*tlEntry).bits
		c.mu.Unlock()
		c.hits.Add(1)
		return b, true
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put inserts a decode, evicting the LRU entry when over capacity.
func (c *tlCache) put(key int, b *TimeListBits) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*tlEntry).bits = b
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.lru.PushFront(&tlEntry{key: key, bits: b})
	for c.lru.Len() > c.capacity {
		tail := c.lru.Back()
		delete(c.entries, tail.Value.(*tlEntry).key)
		c.lru.Remove(tail)
	}
	c.mu.Unlock()
}

// peek returns the cached decode without counting a hit or promoting
// the entry. Ingest appends use it to refresh resident merges in place
// (copy-on-write) instead of invalidating them — under live write load
// an invalidation storm would turn every read into a cold miss.
func (c *tlCache) peek(key int) (*TimeListBits, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*tlEntry).bits, true
	}
	return nil, false
}

// stats snapshots the counters.
func (c *tlCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// len reports the resident entry count.
func (c *tlCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
