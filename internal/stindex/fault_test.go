package stindex

import (
	"bytes"
	"errors"
	"testing"

	"streach/internal/storage"
	"streach/internal/traj"
	"streach/internal/xerr"
)

// The ST-Index persistence tests reuse the exported storage.FaultStore
// as their chaos harness: the same scenario spec a `serve -chaos`
// deployment would use drives reads through the page store at load
// time, when the buffer pool is cold and every page fetch hits the
// store.

// savedIndex builds an index over a MemStore, persists its meta to a
// buffer, flushes the pages, and returns both so tests can reload the
// same bytes through an arbitrary Store wrapper.
func savedIndex(t *testing.T) (*traj.Dataset, *storage.MemStore, []byte) {
	t.Helper()
	n := testNetwork(t)
	ds := testDataset(t, n)
	mem := storage.NewMemStore()
	idx, err := Build(n, ds, Config{SlotSeconds: 300, Store: mem})
	if err != nil {
		t.Fatal(err)
	}
	var meta bytes.Buffer
	if err := idx.SaveMeta(&meta); err != nil {
		t.Fatal(err)
	}
	if err := idx.Pool().Flush(); err != nil {
		t.Fatal(err)
	}
	return ds, mem, meta.Bytes()
}

// TestLoadOverFaultStoreDetectsCorruption: a single bit flipped by the
// fault layer in any page read during load must trip the v3 page-store
// checksum — the load fails typed CorruptData instead of serving a
// silently wrong index.
func TestLoadOverFaultStoreDetectsCorruption(t *testing.T) {
	_, mem, meta := savedIndex(t)
	n := testNetwork(t)
	for seed := int64(0); seed < 4; seed++ {
		fs := storage.NewFaultStore(mem, storage.Scenario{
			Seed:  seed,
			Rules: []storage.FaultRule{{Op: storage.OpRead, Mode: storage.ModeCorrupt, Count: 1}},
		})
		_, err := LoadIndex(n, Config{Store: fs}, bytes.NewReader(meta))
		if err == nil {
			t.Fatalf("seed %d: load over a corrupting store should fail", seed)
		}
		if xerr.KindOf(err) != xerr.KindCorrupt {
			t.Fatalf("seed %d: kind = %v, want KindCorrupt (%v)", seed, xerr.KindOf(err), err)
		}
		if fs.Injected() != 1 {
			t.Fatalf("seed %d: %d faults injected, want 1", seed, fs.Injected())
		}
	}
}

// TestLoadOverFaultStoreErrorPropagates: an injected read error aborts
// the load with the sentinel intact, and clearing the scenario (the
// transient fault healing) lets the identical bytes load cleanly.
func TestLoadOverFaultStoreErrorPropagates(t *testing.T) {
	ds, mem, meta := savedIndex(t)
	n := testNetwork(t)
	fs := storage.NewFaultStore(mem, storage.Scenario{
		Rules: []storage.FaultRule{{Op: storage.OpRead, Mode: storage.ModeError}},
	})
	if _, err := LoadIndex(n, Config{Store: fs}, bytes.NewReader(meta)); err == nil {
		t.Fatal("load over an erring store should fail")
	} else if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("error should wrap storage.ErrInjected, got: %v", err)
	}

	fs.Clear()
	idx, err := LoadIndex(n, Config{Store: fs}, bytes.NewReader(meta))
	if err != nil {
		t.Fatalf("load after Clear(): %v", err)
	}
	defer idx.Close()
	mt := &ds.Matched[0]
	v := mt.Visits[0]
	slot := idx.SlotOf(v.Enter(ds.DayStart(mt.Day)))
	tl, err := idx.TimeListAt(v.Segment, slot)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Days) == 0 {
		t.Fatal("healed index answers an empty time list for a visited slot")
	}
}

// TestLoadOverFaultStoreLatencyIsHarmless: latency injection delays but
// does not alter — the loaded index is fully usable.
func TestLoadOverFaultStoreLatencyIsHarmless(t *testing.T) {
	_, mem, meta := savedIndex(t)
	n := testNetwork(t)
	sc, err := storage.ParseScenario("read:latencyx2=1ms")
	if err != nil {
		t.Fatal(err)
	}
	fs := storage.NewFaultStore(mem, sc)
	idx, err := LoadIndex(n, Config{Store: fs}, bytes.NewReader(meta))
	if err != nil {
		t.Fatalf("load under latency injection: %v", err)
	}
	defer idx.Close()
	if fs.Injected() == 0 {
		t.Fatal("latency rule never fired")
	}
}
