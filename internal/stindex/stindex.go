// Package stindex implements the Spatio-Temporal Index (thesis §3.2.1).
//
// The ST-Index has three levels:
//
//  1. a temporal B+tree over fixed Δt time slots of the day;
//  2. a spatial R-tree over the re-segmented road network — the network is
//     static, so a single R-tree is shared by every temporal leaf, exactly
//     as the thesis observes;
//  3. per-(segment, slot) *time lists*: for each date in the dataset, the
//     IDs of the trajectories that traversed the segment during the slot.
//
// Time lists live on disk as bitset-encoded blobs (bits.go) behind a
// buffer pool; reading one is the unit of I/O the evaluation charges
// queries for. A decoded-list LRU (cache.go) sits above the pool so hot
// (segment, slot) pairs skip page access and decoding entirely, and
// TimeListsRange batches a probe window's reads so shared pages are
// fetched once per probe. See DESIGN.md §2–3.
package stindex

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"streach/internal/bitset"
	"streach/internal/btree"
	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/traj"
)

// Config controls index construction.
type Config struct {
	// SlotSeconds is the temporal granularity Δt (default 300 s = 5 min).
	SlotSeconds int
	// PoolPages is the buffer pool capacity in pages (default 256).
	PoolPages int
	// TimeListCache is the decoded time-list LRU capacity in entries
	// (default 8192, negative disables). The cache sits above the buffer
	// pool: repeated probes of hot (segment, slot) pairs skip page access
	// and blob decoding entirely.
	TimeListCache int
	// Store is the page backend; nil means a fresh in-memory store.
	Store storage.Store
}

func (c Config) withDefaults() Config {
	if c.SlotSeconds <= 0 {
		c.SlotSeconds = 300
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 256
	}
	if c.TimeListCache == 0 {
		c.TimeListCache = 8192
	}
	if c.Store == nil {
		c.Store = storage.NewMemStore()
	}
	return c
}

// TimeList is the decoded per-day content of one (segment, slot) entry:
// for each day that has traffic, the sorted taxi IDs observed.
type TimeList struct {
	Days  []traj.Day
	Taxis [][]traj.TaxiID // parallel to Days
}

// TaxisOn returns the taxi IDs for a day (nil when the day has none).
func (tl *TimeList) TaxisOn(day traj.Day) []traj.TaxiID {
	for i, d := range tl.Days {
		if d == day {
			return tl.Taxis[i]
		}
	}
	return nil
}

// Index is the built ST-Index.
type Index struct {
	net      *roadnet.Network
	slotSec  int
	numSlots int
	days     int
	baseDate time.Time

	temporal *btree.Tree // slot start second -> slot index
	pool     *storage.BufferPool
	blob     *storage.BlobFile
	// live holds the installed handle table
	// (handles[slot*numSegments + segment] locates the time list blob)
	// plus the ingest delta layer and epoch counters (delta.go). Shared
	// by every Slice of this index, so deltas and epoch swaps are
	// visible to all shards at once.
	live *liveState
	// cache holds decoded time lists (nil when disabled).
	cache *tlCache

	// owned, when non-nil, makes this a shard slice: time lists resolve
	// only for the owned segments and any other access is an error, so a
	// shard engine cannot silently answer from data its partition does
	// not hold. shard is the owning shard's ordinal for error messages.
	owned bitset.Set
	shard int

	// slotRanged, when true, additionally restricts the slice to the
	// inclusive slot range [slotLo, slotHi]: a temporally sharded engine
	// may only read time lists inside its held range, so a mis-routed
	// query window fails loudly instead of answering from slots the
	// shard does not serve.
	slotRanged     bool
	slotLo, slotHi int
}

// Slice returns a shard-local view of the index that serves time lists
// only for the owned segments. The slice shares the underlying storage —
// buffer pool, blob file, decoded-list cache, R-tree — with the root
// index and every sibling slice; only ownership enforcement differs,
// which is the single-process analogue of a shard holding its own
// partition of the time lists. Close the root index, not its slices.
func (x *Index) Slice(shard int, owned bitset.Set) *Index {
	cp := *x
	cp.owned = owned
	cp.shard = shard
	return &cp
}

// SliceSlots returns a shard-local view restricted on both axes: time
// lists resolve only for the owned segments AND only for slots inside
// the inclusive [slotLo, slotHi] range. This is the ownership test of
// the temporal sharding dimension — a slot shard's held range covers
// its served range plus an overhang so a whole query window routed to
// the shard stays on its slice. owned may be nil to restrict on the
// slot axis alone (pure temporal sharding, no spatial partition).
func (x *Index) SliceSlots(shard int, owned bitset.Set, slotLo, slotHi int) *Index {
	cp := *x
	cp.owned = owned
	cp.shard = shard
	cp.slotRanged = true
	cp.slotLo, cp.slotHi = slotLo, slotHi
	return &cp
}

// checkOwned rejects reads outside a slice's partition.
func (x *Index) checkOwned(seg roadnet.SegmentID) error {
	if x.owned != nil && seg >= 0 && int(seg) < x.net.NumSegments() && !x.owned.Has(int(seg)) {
		return fmt.Errorf("stindex: segment %d is not owned by shard %d", seg, x.shard)
	}
	return nil
}

// checkSlotRange rejects reads whose (clamped) slot range leaves a
// slot-ranged slice's held range. Slots outside [0, numSlots) are
// served as empty lists by the read paths and are not an ownership
// violation, so only the in-bounds part of [lo, hi] is checked.
func (x *Index) checkSlotRange(lo, hi int) error {
	if !x.slotRanged {
		return nil
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= x.numSlots {
		hi = x.numSlots - 1
	}
	if lo > hi {
		return nil // fully out of bounds: reads yield empty lists
	}
	if lo < x.slotLo || hi > x.slotHi {
		return fmt.Errorf("stindex: slots [%d, %d] are outside shard %d's held range [%d, %d]",
			lo, hi, x.shard, x.slotLo, x.slotHi)
	}
	return nil
}

// SlotDensity returns the per-slot observation density of the installed
// handle table: for each slot, the summed byte length of every
// segment's time-list blob. Blob bytes are proportional to encoded
// (day, taxi) observations, which makes the vector the balancing
// weight PartitionSlots uses to cut the day into even-load ranges.
func (x *Index) SlotDensity() []int64 {
	handles := x.liveHandles()
	nseg := x.net.NumSegments()
	density := make([]int64, x.numSlots)
	for slot := 0; slot < x.numSlots; slot++ {
		row := handles[slot*nseg : (slot+1)*nseg]
		var sum int64
		for i := range row {
			sum += int64(row[i].Length)
		}
		density[slot] = sum
	}
	return density
}

// Build constructs the ST-Index over the dataset. Every visit contributes
// its taxi ID to the time lists of each slot it overlaps.
func Build(net *roadnet.Network, ds *traj.Dataset, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if net.NumSegments() == 0 {
		return nil, fmt.Errorf("stindex: empty network")
	}
	if ds.Days <= 0 {
		return nil, fmt.Errorf("stindex: dataset has no days")
	}
	if 86400%cfg.SlotSeconds != 0 {
		return nil, fmt.Errorf("stindex: slot seconds %d must divide 86400", cfg.SlotSeconds)
	}
	numSlots := 86400 / cfg.SlotSeconds
	pool, err := storage.NewBufferPool(cfg.Store, cfg.PoolPages)
	if err != nil {
		return nil, err
	}
	handles := make([]storage.BlobHandle, numSlots*net.NumSegments())
	idx := &Index{
		net:      net,
		slotSec:  cfg.SlotSeconds,
		numSlots: numSlots,
		days:     ds.Days,
		baseDate: ds.BaseDate,
		temporal: btree.New(),
		pool:     pool,
		blob:     storage.NewBlobFile(pool),
		live:     newLiveState(handles),
		cache:    newTLCache(cfg.TimeListCache),
	}
	for s := 0; s < numSlots; s++ {
		idx.temporal.Put(int64(s*cfg.SlotSeconds), int64(s))
	}

	// Accumulate (slot, segment, day, taxi) tuples packed into uint64s,
	// then sort and deduplicate. This keeps construction memory at ~8
	// bytes per tuple, which matters for multi-million-visit datasets.
	// Layout (high to low): slot 18b | segment 22b | day 9b | taxi 15b —
	// sorting the packed value groups tuples exactly in the order the
	// serializer needs.
	if net.NumSegments() >= 1<<22 {
		return nil, fmt.Errorf("stindex: network too large (%d segments, max %d)", net.NumSegments(), 1<<22-1)
	}
	if ds.Days >= 1<<9 {
		return nil, fmt.Errorf("stindex: too many days (%d, max %d)", ds.Days, 1<<9-1)
	}
	var tuples []uint64
	maxTaxi := traj.TaxiID(0)
	for i := range ds.Matched {
		mt := &ds.Matched[i]
		if mt.Taxi > maxTaxi {
			maxTaxi = mt.Taxi
		}
		for _, v := range mt.Visits {
			s0 := int(v.EnterMs) / 1000 / cfg.SlotSeconds
			s1 := int(v.ExitMs) / 1000 / cfg.SlotSeconds
			for s := s0; s <= s1; s++ {
				if s < 0 || s >= numSlots {
					continue // visit ran past midnight
				}
				tuples = append(tuples, packTuple(s, int(v.Segment), int(mt.Day), int(mt.Taxi)))
			}
		}
	}
	if maxTaxi >= 1<<15 {
		return nil, fmt.Errorf("stindex: taxi ID %d too large (max %d)", maxTaxi, 1<<15-1)
	}
	sort.Slice(tuples, func(i, j int) bool { return tuples[i] < tuples[j] })

	// Serialize each (slot, segment) run to the blob file.
	for i := 0; i < len(tuples); {
		if i > 0 && tuples[i] == tuples[i-1] {
			i++ // duplicate tuple
			continue
		}
		slot, seg, _, _ := unpackTuple(tuples[i])
		j := i
		for j < len(tuples) {
			s2, g2, _, _ := unpackTuple(tuples[j])
			if s2 != slot || g2 != seg {
				break
			}
			j++
		}
		blob := encodeTimeListRunAdaptive(tuples[i:j])
		h, err := idx.blob.Append(blob)
		if err != nil {
			return nil, fmt.Errorf("stindex: write time list: %w", err)
		}
		handles[slot*net.NumSegments()+seg] = h
		i = j
	}
	// Construction happens offline: flush, drop the cache so queries start
	// cold, and zero the I/O counters.
	if err := pool.Invalidate(); err != nil {
		return nil, err
	}
	pool.ResetStats()
	return idx, nil
}

// packTuple packs (slot, segment, day, taxi) so that numeric order equals
// (slot, segment, day, taxi) lexicographic order.
func packTuple(slot, seg, day, taxi int) uint64 {
	return uint64(slot)<<46 | uint64(seg)<<24 | uint64(day)<<15 | uint64(taxi)
}

func unpackTuple(t uint64) (slot, seg, day, taxi int) {
	return int(t >> 46), int(t >> 24 & (1<<22 - 1)), int(t >> 15 & (1<<9 - 1)), int(t & (1<<15 - 1))
}

// encodeTimeListRun serializes one sorted, deduplicated (slot, segment)
// run of packed tuples as:
//
//	u16 numDays, then per day: u16 day, u16 count, count x u32 taxi
func encodeTimeListRun(run []uint64) []byte {
	// Count distinct days first.
	numDays := 0
	prevDay := -1
	for i, t := range run {
		if i > 0 && t == run[i-1] {
			continue
		}
		_, _, d, _ := unpackTuple(t)
		if d != prevDay {
			numDays++
			prevDay = d
		}
	}
	out := make([]byte, 0, 2+len(run)*4+numDays*4)
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(numDays))
	out = append(out, tmp[:2]...)
	i := 0
	for i < len(run) {
		if i > 0 && run[i] == run[i-1] {
			i++
			continue
		}
		_, _, day, _ := unpackTuple(run[i])
		// Collect this day's distinct taxis (already sorted by packing).
		start := len(out)
		binary.LittleEndian.PutUint16(tmp[:2], uint16(day))
		out = append(out, tmp[:2]...)
		out = append(out, 0, 0) // count placeholder
		count := 0
		for i < len(run) {
			if i > 0 && run[i] == run[i-1] {
				i++
				continue
			}
			_, _, d, taxi := unpackTuple(run[i])
			if d != day {
				break
			}
			binary.LittleEndian.PutUint32(tmp[:4], uint32(taxi))
			out = append(out, tmp[:4]...)
			count++
			i++
		}
		binary.LittleEndian.PutUint16(out[start+2:start+4], uint16(count))
	}
	return out
}

func decodeTimeList(blob []byte) (*TimeList, error) {
	if len(blob) < 2 {
		return &TimeList{}, nil
	}
	n := int(binary.LittleEndian.Uint16(blob[:2]))
	tl := &TimeList{Days: make([]traj.Day, 0, n), Taxis: make([][]traj.TaxiID, 0, n)}
	off := 2
	for i := 0; i < n; i++ {
		if off+4 > len(blob) {
			return nil, fmt.Errorf("stindex: truncated time list header at day %d", i)
		}
		day := traj.Day(binary.LittleEndian.Uint16(blob[off : off+2]))
		cnt := int(binary.LittleEndian.Uint16(blob[off+2 : off+4]))
		off += 4
		if off+4*cnt > len(blob) {
			return nil, fmt.Errorf("stindex: truncated time list entries at day %d", i)
		}
		taxis := make([]traj.TaxiID, cnt)
		for j := 0; j < cnt; j++ {
			taxis[j] = traj.TaxiID(binary.LittleEndian.Uint32(blob[off : off+4]))
			off += 4
		}
		tl.Days = append(tl.Days, day)
		tl.Taxis = append(tl.Taxis, taxis)
	}
	return tl, nil
}

// SlotSeconds returns the temporal granularity Δt.
func (x *Index) SlotSeconds() int { return x.slotSec }

// NumSlots returns the number of slots per day.
func (x *Index) NumSlots() int { return x.numSlots }

// Days returns the number of dataset days m.
func (x *Index) Days() int { return x.days }

// BaseDate returns midnight of day 0.
func (x *Index) BaseDate() time.Time { return x.baseDate }

// Network returns the indexed road network (the shared spatial level).
func (x *Index) Network() *roadnet.Network { return x.net }

// Pool exposes the buffer pool for I/O accounting.
func (x *Index) Pool() *storage.BufferPool { return x.pool }

// SlotOf maps a time to its slot index via the temporal B+tree.
func (x *Index) SlotOf(t time.Time) int {
	sec := int64(traj.SecondsOfDay(x.baseDate, t))
	_, slot, ok := x.temporal.Floor(sec)
	if !ok {
		return 0
	}
	return int(slot)
}

// DayOf maps a time to its dataset day index (may be out of range for
// times outside the dataset).
func (x *Index) DayOf(t time.Time) traj.Day {
	return traj.Day(int(t.Sub(x.baseDate).Hours()) / 24)
}

// SnapLocation finds the road segment a query location lies on, using the
// spatial R-tree (thesis: "identify the start road segment r0 in the
// R-tree from ST-Index").
func (x *Index) SnapLocation(p geo.Point) (roadnet.SegmentID, bool) {
	id, _, _, ok := x.net.SnapPoint(p)
	return id, ok
}

// emptyBits is the shared decode of an absent time list.
var emptyBits = &TimeListBits{}

// TimeListAt reads the time list for (segment, slot) from disk through
// the buffer pool (and the decoded-list cache) in the legacy sorted-ID
// representation. A TimeList with no days means no traffic.
func (x *Index) TimeListAt(seg roadnet.SegmentID, slot int) (*TimeList, error) {
	b, err := x.TimeListBitsAt(seg, slot)
	if err != nil {
		return nil, err
	}
	return b.TimeList(), nil
}

// TimeListBitsAt reads the time list for (segment, slot) in bitset form,
// through the decoded-list cache. The returned value is shared; callers
// must not modify it.
func (x *Index) TimeListBitsAt(seg roadnet.SegmentID, slot int) (*TimeListBits, error) {
	if slot < 0 || slot >= x.numSlots || seg < 0 || int(seg) >= x.net.NumSegments() {
		return emptyBits, nil
	}
	if err := x.checkOwned(seg); err != nil {
		return nil, err
	}
	if err := x.checkSlotRange(slot, slot); err != nil {
		return nil, err
	}
	key := slot*x.net.NumSegments() + int(seg)
	if x.live.pending.Load() == 0 && x.liveHandles()[key].IsZero() {
		return emptyBits, nil // nothing to read; keep the cache for real lists
	}
	if x.cache != nil {
		if b, ok := x.cache.get(key); ok {
			return b, nil
		}
	}
	return x.readMerged(key, seg, slot, x.blob.Read)
}

// TimeListsRange reads the time lists of (segment, lo..hi inclusive) in
// one batch, appending to dst and returning it: dst[i] covers slot lo+i
// and is never nil. Cache misses share a single batch blob reader, so
// every buffer-pool page the window touches is pinned once per call
// instead of once per slot — the fetch pattern probe verification uses.
func (x *Index) TimeListsRange(seg roadnet.SegmentID, loSlot, hiSlot int, dst []*TimeListBits) ([]*TimeListBits, error) {
	if seg < 0 || int(seg) >= x.net.NumSegments() {
		for s := loSlot; s <= hiSlot; s++ {
			dst = append(dst, emptyBits)
		}
		return dst, nil
	}
	if err := x.checkOwned(seg); err != nil {
		return nil, err
	}
	if err := x.checkSlotRange(loSlot, hiSlot); err != nil {
		return nil, err
	}
	var reader *storage.BlobReader
	deltaEmpty := x.live.pending.Load() == 0
	handles := x.liveHandles()
	for s := loSlot; s <= hiSlot; s++ {
		if s < 0 || s >= x.numSlots {
			dst = append(dst, emptyBits)
			continue
		}
		key := s*x.net.NumSegments() + int(seg)
		if deltaEmpty && handles[key].IsZero() {
			dst = append(dst, emptyBits)
			continue
		}
		if x.cache != nil {
			if b, ok := x.cache.get(key); ok {
				dst = append(dst, b)
				continue
			}
		}
		if reader == nil {
			reader = x.blob.NewReader()
		}
		b, err := x.readMerged(key, seg, s, reader.Read)
		if err != nil {
			return nil, err
		}
		dst = append(dst, b)
	}
	return dst, nil
}

// decodeHandle reads and decodes one blob via the given read function.
func (x *Index) decodeHandle(h storage.BlobHandle, read func(storage.BlobHandle) ([]byte, error), seg roadnet.SegmentID, slot int) (*TimeListBits, error) {
	if h.IsZero() {
		return emptyBits, nil
	}
	blob, err := read(h)
	if err != nil {
		return nil, fmt.Errorf("stindex: read time list seg=%d slot=%d: %w", seg, slot, err)
	}
	return decodeTimeListBits(blob)
}

// CacheStats snapshots the decoded time-list cache counters.
func (x *Index) CacheStats() CacheStats { return x.cache.stats() }

// CacheLen reports how many decoded time lists are resident.
func (x *Index) CacheLen() int { return x.cache.len() }

// Close flushes and closes the underlying storage.
func (x *Index) Close() error { return x.pool.Close() }
