package stindex

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"streach/internal/roadnet"
	"streach/internal/storage"
	"streach/internal/traj"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	dir := t.TempDir()
	pagePath := filepath.Join(dir, "pages.db")
	metaPath := filepath.Join(dir, "index.meta")

	// Build over a file store and persist.
	fs, err := storage.OpenFileStore(pagePath)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(n, ds, Config{SlotSeconds: 300, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	metaFile, err := os.Create(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.SaveMeta(metaFile); err != nil {
		t.Fatal(err)
	}
	if err := metaFile.Close(); err != nil {
		t.Fatal(err)
	}
	// Record some ground truth before closing.
	mt := &ds.Matched[0]
	v := mt.Visits[0]
	slot := idx.SlotOf(v.Enter(ds.DayStart(mt.Day)))
	want, err := idx.TimeListAt(v.Segment, slot)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen in a "new process".
	fs2, err := storage.OpenFileStore(pagePath)
	if err != nil {
		t.Fatal(err)
	}
	metaIn, err := os.Open(metaPath)
	if err != nil {
		t.Fatal(err)
	}
	defer metaIn.Close()
	idx2, err := LoadIndex(n, Config{Store: fs2}, metaIn)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()

	if idx2.SlotSeconds() != 300 || idx2.Days() != ds.Days {
		t.Fatalf("reloaded meta wrong: slot=%d days=%d", idx2.SlotSeconds(), idx2.Days())
	}
	if !idx2.BaseDate().Equal(ds.BaseDate) {
		t.Fatalf("base date %v, want %v", idx2.BaseDate(), ds.BaseDate)
	}
	got, err := idx2.TimeListAt(v.Segment, slot)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Days) != len(want.Days) {
		t.Fatalf("reloaded time list has %d days, want %d", len(got.Days), len(want.Days))
	}
	for i := range want.Days {
		if got.Days[i] != want.Days[i] || len(got.Taxis[i]) != len(want.Taxis[i]) {
			t.Fatalf("reloaded time list differs at day index %d", i)
		}
	}

	// Full sweep: every (segment, slot) list must decode after reload.
	for seg := 0; seg < n.NumSegments(); seg += 17 {
		for s := 0; s < idx2.NumSlots(); s += 31 {
			if _, err := idx2.TimeListAt(roadnet.SegmentID(seg), s); err != nil {
				t.Fatalf("reload read seg=%d slot=%d: %v", seg, s, err)
			}
		}
	}
}

func TestLoadRejectsCorruptMeta(t *testing.T) {
	n := testNetwork(t)
	if _, err := LoadIndex(n, Config{}, bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Fatal("bad magic should error")
	}
	if _, err := LoadIndex(n, Config{}, bytes.NewReader(nil)); err == nil {
		t.Fatal("empty meta should error")
	}
	// Valid header but truncated handles.
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()
	var buf bytes.Buffer
	if err := idx.SaveMeta(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := LoadIndex(n, Config{}, bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated meta should error")
	}
}

func TestLoadRejectsWrongNetwork(t *testing.T) {
	n := testNetwork(t)
	ds := testDataset(t, n)
	idx := buildIndex(t, n, ds)
	defer idx.Close()
	var buf bytes.Buffer
	if err := idx.SaveMeta(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin: n.Bounds().Center(), Rows: 3, Cols: 3, SpacingMeters: 500, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(other, Config{}, bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("meta over a different network should be rejected")
	}
}

func TestSaveLoadPreservesProbeSemantics(t *testing.T) {
	// The per-day taxi sets drive reachability probabilities; a reload
	// must reproduce them exactly for a sample of (segment, slot) pairs.
	n := testNetwork(t)
	ds := testDataset(t, n)
	dir := t.TempDir()
	fs, err := storage.OpenFileStore(filepath.Join(dir, "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := Build(n, ds, Config{SlotSeconds: 300, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.SaveMeta(&buf); err != nil {
		t.Fatal(err)
	}
	type sample struct {
		seg  roadnet.SegmentID
		slot int
		sets map[traj.Day]int
	}
	var samples []sample
	for i := 0; i < 10 && i < len(ds.Matched); i++ {
		mt := &ds.Matched[i]
		v := mt.Visits[len(mt.Visits)/3]
		slot := idx.SlotOf(v.Enter(ds.DayStart(mt.Day)))
		sets, err := daySets(idx, v.Segment, slot, slot+2)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[traj.Day]int{}
		for d, s := range sets {
			counts[d] = len(s)
		}
		samples = append(samples, sample{v.Segment, slot, counts})
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := storage.OpenFileStore(filepath.Join(dir, "p.db"))
	if err != nil {
		t.Fatal(err)
	}
	idx2, err := LoadIndex(n, Config{Store: fs2}, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	for i, s := range samples {
		sets, err := daySets(idx2, s.seg, s.slot, s.slot+2)
		if err != nil {
			t.Fatal(err)
		}
		if len(sets) != len(s.sets) {
			t.Fatalf("sample %d: %d days after reload, want %d", i, len(sets), len(s.sets))
		}
		for d, cnt := range s.sets {
			if len(sets[d]) != cnt {
				t.Fatalf("sample %d day %d: %d taxis, want %d", i, d, len(sets[d]), cnt)
			}
		}
	}
}

// daySets merges a slot window's per-day taxi sets via TimeListsRange —
// the digest the round-trip test compares before and after reload.
func daySets(idx *Index, seg roadnet.SegmentID, lo, hi int) (map[traj.Day]map[traj.TaxiID]bool, error) {
	lists, err := idx.TimeListsRange(seg, lo, hi, nil)
	if err != nil {
		return nil, err
	}
	out := map[traj.Day]map[traj.TaxiID]bool{}
	for _, b := range lists {
		tl := b.TimeList()
		for i, d := range tl.Days {
			if out[d] == nil {
				out[d] = map[traj.TaxiID]bool{}
			}
			for _, taxi := range tl.Taxis[i] {
				out[d][taxi] = true
			}
		}
	}
	return out, nil
}
