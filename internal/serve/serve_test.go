package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streach"
)

var (
	sysOnce sync.Once
	testSys *streach.System
	sysErr  error
)

// system builds one small world shared by all server tests.
func system(t *testing.T) *streach.System {
	t.Helper()
	sysOnce.Do(func() {
		testSys, sysErr = streach.NewSystem(streach.CityConfig{
			OriginLat: 22.50, OriginLng: 114.00,
			Rows: 8, Cols: 8,
			SpacingMeters:   900,
			LocalFraction:   0.4,
			ResegmentMeters: 450,
			Seed:            61,
		}, streach.FleetConfig{Taxis: 80, Days: 6, Seed: 62}, streach.DefaultIndexConfig())
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return testSys
}

func server(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	srv := New(system(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return out
}

func TestHealthz(t *testing.T) {
	ts := server(t, Config{})
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" {
		t.Fatalf("healthz = %v", out)
	}
	if out["segments"].(float64) <= 0 {
		t.Fatalf("healthz should report the network size: %v", out)
	}
}

func TestReachEndToEnd(t *testing.T) {
	ts := server(t, Config{})
	// No lat/lng: the server picks the busiest segment, so the smoke
	// query needs no world knowledge.
	out := getJSON(t, ts.URL+"/v1/reach?start=11h&dur=10m&prob=0.2", http.StatusOK)
	segs, ok := out["segments"].([]any)
	if !ok || len(segs) == 0 {
		t.Fatalf("reach returned no segments: %v", out)
	}
	metrics, ok := out["metrics"].(map[string]any)
	if !ok || metrics["evaluated"].(float64) <= 0 {
		t.Fatalf("reach metrics missing: %v", out)
	}

	// The same query through the exhaustive baseline must answer too.
	es := getJSON(t, ts.URL+"/v1/reach?start=11h&dur=10m&prob=0.2&alg=es", http.StatusOK)
	if len(es["segments"].([]any)) == 0 {
		t.Fatal("exhaustive reach returned no segments")
	}
}

func TestReachPostMulti(t *testing.T) {
	ts := server(t, Config{})
	sys := system(t)
	loc := sys.BusiestLocation(11 * time.Hour)
	body := fmt.Sprintf(`{
		"locations": [
			{"Lat": %f, "Lng": %f},
			{"Lat": %f, "Lng": %f}
		],
		"start": "11h", "dur": "10m", "prob": 0.2
	}`, loc.Lat, loc.Lng, loc.Lat+0.01, loc.Lng+0.01)
	resp, err := http.Post(ts.URL+"/v1/reach", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST multi = %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out["segments"].([]any)) == 0 {
		t.Fatal("multi reach returned no segments")
	}
}

func TestGeoJSONNegotiation(t *testing.T) {
	ts := server(t, Config{})
	for _, tc := range []struct {
		name, url, accept string
	}{
		{"format-param", ts.URL + "/v1/reach?format=geojson", ""},
		{"accept-header", ts.URL + "/v1/reach", "application/geo+json"},
	} {
		req, _ := http.NewRequest(http.MethodGet, tc.url, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var fc struct {
			Type     string `json:"type"`
			Features []any  `json:"features"`
		}
		err = json.NewDecoder(resp.Body).Decode(&fc)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/geo+json" {
			t.Fatalf("%s: Content-Type = %q", tc.name, ct)
		}
		if fc.Type != "FeatureCollection" || len(fc.Features) == 0 {
			t.Fatalf("%s: not a FeatureCollection with features", tc.name)
		}
	}
}

func TestRouteEndToEnd(t *testing.T) {
	ts := server(t, Config{})
	sys := system(t)
	from := sys.BusiestLocation(8 * time.Hour)
	to := streach.Location{Lat: from.Lat + 0.02, Lng: from.Lng + 0.02}
	url := fmt.Sprintf("%s/v1/route?from_lat=%f&from_lng=%f&to_lat=%f&to_lng=%f&depart=8h",
		ts.URL, from.Lat, from.Lng, to.Lat, to.Lng)
	out := getJSON(t, url, http.StatusOK)
	if len(out["segments"].([]any)) == 0 {
		t.Fatalf("route returned no path: %v", out)
	}
	if out["travel_time_ms"].(float64) <= 0 {
		t.Fatalf("route has no travel time: %v", out)
	}
	// Free-flow must answer the same pair.
	ff := getJSON(t, url+"&alg=freeflow", http.StatusOK)
	if len(ff["segments"].([]any)) == 0 {
		t.Fatal("free-flow route returned no path")
	}
}

// TestDeadlinePropagation drives a query whose 1 ns deadline expires
// before the first checkpoint: the server must answer 504, proving the
// HTTP deadline reaches the engine's context rather than being decorative.
func TestDeadlinePropagation(t *testing.T) {
	ts := server(t, Config{})
	out := getJSON(t, ts.URL+"/v1/reach?start=11h&dur=10m&prob=0.2&timeout=1ns", http.StatusGatewayTimeout)
	if !strings.Contains(out["error"].(string), "deadline") {
		t.Fatalf("want a deadline error, got %v", out)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	ts := server(t, Config{})
	getJSON(t, ts.URL+"/v1/reach?start=11h&dur=5m&prob=0.2", http.StatusOK)
	out := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	if out["requests_total"].(float64) < 1 {
		t.Fatalf("metrics should count requests: %v", out)
	}
	if out["segments_evaluated"].(float64) <= 0 {
		t.Fatalf("metrics should accumulate evaluated segments: %v", out)
	}
}

func TestBadRequests(t *testing.T) {
	ts := server(t, Config{})
	for _, url := range []string{
		"/v1/reach?lat=22.5",                // lng missing
		"/v1/reach?start=noon",              // unparsable duration
		"/v1/reach?timeout=-1s",             // non-positive timeout
		"/v1/reach?alg=quantum",             // unknown algorithm
		"/v1/reach?alg=freeflow",            // algorithm/kind mismatch
		"/v1/reach?alg=seq&reverse=1",       // sequential has no reverse
		"/v1/route?from_lat=1&from_lng=1",   // destination missing
		"/v1/reach?prob=2&lat=22.5&lng=114", // prob out of range
	} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 400/404", url, resp.StatusCode)
		}
	}
}

// TestAdmissionControl: with every admission slot held, query endpoints
// answer 429 with a Retry-After hint; releasing a slot admits again.
// The semaphore is filled directly so the test is deterministic.
func TestAdmissionControl(t *testing.T) {
	srv := New(system(t), Config{MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	if !srv.acquire() || !srv.acquire() {
		t.Fatal("could not fill the admission semaphore")
	}
	resp, err := http.Get(ts.URL + "/v1/reach?start=11h&dur=5m&prob=0.2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 is missing the Retry-After header")
	}
	// Health and metrics stay reachable under saturation.
	getJSON(t, ts.URL+"/healthz", http.StatusOK)
	getJSON(t, ts.URL+"/metrics", http.StatusOK)

	srv.release()
	getJSON(t, ts.URL+"/v1/reach?start=11h&dur=5m&prob=0.2", http.StatusOK)
	srv.release()

	out := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	if out["admission_rejected_total"].(float64) < 1 {
		t.Fatalf("rejection not counted: %v", out)
	}
}

// TestCoalescerSharesExecution: a follower that arrives while a leader's
// identical query is in flight shares the leader's answer; the query
// executes once.
func TestCoalescerSharesExecution(t *testing.T) {
	c := newCoalescer()
	block := make(chan struct{})
	execs := 0
	want := &streach.Region{SegmentIDs: []int32{1, 2, 3}}
	exec := func() (*streach.Region, error) {
		execs++
		<-block
		return want, nil
	}

	type res struct {
		region *streach.Region
		shared bool
		err    error
	}
	results := make(chan res, 2)
	run := func() {
		r, shared, err := c.do(context.Background(), "k", exec)
		results <- res{r, shared, err}
	}
	go run()
	// Wait for the leader to register, then attach a follower and wait
	// until it is counted before releasing the leader — fully
	// deterministic, no sleeps in the happy path.
	waitFor(t, func() bool { c.mu.Lock(); defer c.mu.Unlock(); return len(c.inflight) == 1 })
	var fe *flightEntry
	c.mu.Lock()
	fe = c.inflight["k"]
	c.mu.Unlock()
	go run()
	waitFor(t, func() bool { return fe.waiters.Load() == 1 })
	close(block)

	a, b := <-results, <-results
	for _, r := range []res{a, b} {
		if r.err != nil || r.region != want {
			t.Fatalf("coalesced result = %+v", r)
		}
	}
	if execs != 1 {
		t.Fatalf("query executed %d times, want 1", execs)
	}
	if a.shared == b.shared {
		t.Fatalf("exactly one caller should be the leader (shared: %v, %v)", a.shared, b.shared)
	}
}

// TestCoalescerLeaderDeadlineDoesNotPoisonFollower: when the leader dies
// of its own context, a live follower retries instead of inheriting the
// leader's deadline error.
func TestCoalescerLeaderDeadlineDoesNotPoisonFollower(t *testing.T) {
	c := newCoalescer()
	block := make(chan struct{})
	calls := 0
	want := &streach.Region{SegmentIDs: []int32{7}}
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _, err := c.do(context.Background(), "k", func() (*streach.Region, error) {
			calls++
			<-block
			return nil, context.DeadlineExceeded // the leader's own deadline
		})
		if err == nil {
			t.Error("leader should surface its deadline error")
		}
	}()
	waitFor(t, func() bool { c.mu.Lock(); defer c.mu.Unlock(); return len(c.inflight) == 1 })
	c.mu.Lock()
	fe := c.inflight["k"]
	c.mu.Unlock()

	followerDone := make(chan struct{})
	go func() {
		defer close(followerDone)
		region, _, err := c.do(context.Background(), "k", func() (*streach.Region, error) {
			calls++
			return want, nil // the follower's retry succeeds
		})
		if err != nil || region != want {
			t.Errorf("follower retry = %v, %v", region, err)
		}
	}()
	waitFor(t, func() bool { return fe.waiters.Load() == 1 })
	close(block)
	<-leaderDone
	<-followerDone
	if calls != 2 {
		t.Fatalf("exec ran %d times, want 2 (leader + follower retry)", calls)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedEndToEnd: concurrent identical HTTP queries all answer
// correctly (whether or not they overlapped enough to coalesce), and the
// coalescing counter is exposed on /metrics.
func TestCoalescedEndToEnd(t *testing.T) {
	ts := server(t, Config{})
	url := ts.URL + "/v1/reach?start=11h&dur=10m&prob=0.2"
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPrometheusMetrics: after a query, the Prometheus rendering exposes
// the per-endpoint latency histogram, the batch-sharing counters, and the
// cumulative counters, in text exposition format.
func TestPrometheusMetrics(t *testing.T) {
	ts := server(t, Config{})
	getJSON(t, ts.URL+"/v1/reach?start=11h&dur=5m&prob=0.2", http.StatusOK)

	resp, err := http.Get(ts.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body := new(strings.Builder)
	if _, err := io.Copy(body, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := body.String()
	for _, want := range []string{
		`streach_request_duration_seconds_bucket{endpoint="reach",le="+Inf"}`,
		`streach_request_duration_seconds_count{endpoint="reach"}`,
		"streach_batch_groups_total",
		"streach_requests_total",
		"# TYPE streach_request_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
	// The reach histogram must have observed at least one request.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `streach_request_duration_seconds_count{endpoint="reach"}`) {
			var n int
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil || n < 1 {
				t.Fatalf("reach histogram count line %q", line)
			}
		}
	}
}

// TestExplicitOriginIsNotBusiestFallback: lat=0&lng=0 is a real
// coordinate (snapped to the nearest — south-west corner — segment),
// not the "no location" busiest-segment default, so the two answers
// must differ.
func TestExplicitOriginIsNotBusiestFallback(t *testing.T) {
	ts := server(t, Config{})
	zero := getJSON(t, ts.URL+"/v1/reach?lat=0&lng=0", http.StatusOK)
	busy := getJSON(t, ts.URL+"/v1/reach", http.StatusOK)
	if fmt.Sprint(zero["segments"]) == fmt.Sprint(busy["segments"]) {
		t.Fatal("explicit (0,0) answered the busiest-segment fallback query")
	}
}

// TestAlgorithmParamAliases: GET accepts both ?alg= and ?algorithm=
// (the JSON body's field name).
func TestAlgorithmParamAliases(t *testing.T) {
	ts := server(t, Config{})
	a := getJSON(t, ts.URL+"/v1/reach?algorithm=exhaustive", http.StatusOK)
	b := getJSON(t, ts.URL+"/v1/reach?alg=exhaustive", http.StatusOK)
	if len(a["segments"].([]any)) != len(b["segments"].([]any)) {
		t.Fatal("alg= and algorithm= dispatched differently")
	}
}

// TestShardedServing: a server over a sharded system answers the same
// bytes as one over an unsharded system, reports its shard count on
// /healthz, and exposes per-shard metrics on /metrics/prometheus.
func TestShardedServing(t *testing.T) {
	base := system(t)
	idx := streach.DefaultIndexConfig()
	idx.Shards = 2
	sharded, err := streach.NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	ts := server(t, Config{})
	tsSharded := httptest.NewServer(New(sharded, Config{}).Handler())
	t.Cleanup(tsSharded.Close)

	hz := getJSON(t, tsSharded.URL+"/healthz", http.StatusOK)
	if got := hz["shards"].(float64); got != 2 {
		t.Fatalf("healthz shards = %v, want 2", got)
	}
	if hz := getJSON(t, ts.URL+"/healthz", http.StatusOK); hz["shards"].(float64) != 1 {
		t.Fatalf("unsharded healthz shards = %v, want 1", hz["shards"])
	}

	const q = "/v1/reach?start=11h&dur=10m&prob=0.2&format=geojson"
	fetch := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body)
		}
		return string(body)
	}
	if got, want := fetch(tsSharded.URL+q), fetch(ts.URL+q); got != want {
		t.Fatal("sharded GeoJSON differs from unsharded")
	}

	resp, err := http.Get(tsSharded.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"streach_shards 2",
		`streach_shard_segments{shard="0"}`,
		`streach_shard_segments{shard="1"}`,
		`streach_shard_candidates_verified_total{shard="0"}`,
		"streach_plan_cache_",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q", want)
		}
	}
	// The reach query's scatter work must land in the per-shard counters.
	var verified float64
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "streach_shard_candidates_verified_total{") {
			var v float64
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &v); err == nil {
				verified += v
			}
		}
	}
	if verified == 0 {
		t.Fatal("no candidates attributed to any shard")
	}
}
