package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"streach"
)

// Live ingestion over HTTP (DESIGN.md §13): POST /v1/ingest accepts
// batches of position updates and feeds them to the system's live
// writer, behind the same per-client quota and admission gates as the
// query endpoints; POST /v1/ingest/compact folds the accumulated delta
// layer into a new index epoch. Both answer 503 on a system whose
// operator did not enable ingest (`streach serve -ingest`).

// ingestUpdate is the JSON wire form of one position update.
type ingestUpdate struct {
	Taxi     int32   `json:"taxi"`
	Day      int     `json:"day"`
	Seg      int32   `json:"seg"`
	EnterMs  int32   `json:"enter_ms"`
	ExitMs   int32   `json:"exit_ms"`
	SpeedMps float32 `json:"speed_mps"`
}

type ingestPayload struct {
	Updates []ingestUpdate `json:"updates"`
}

// maxIngestBatch bounds one POST body: larger batches should be split
// by the client (the CLI replayer does), keeping a single request from
// monopolising the queue.
const maxIngestBatch = 65536

// handleIngest accepts one batch of live updates. The write path is
// deliberately non-blocking: a full ingest queue answers a typed 429
// with Retry-After (the same backpressure contract as query admission)
// instead of parking the HTTP handler on the queue — ingest latency
// must not leak into the connection pool. ?wait=1 additionally blocks
// until the batch is folded into the indexes (visible to queries),
// which the smoke tests use to avoid sleeps.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.recordError(http.StatusMethodNotAllowed)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.sys.IngestEnabled() {
		s.recordError(http.StatusServiceUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":      "live ingest is not enabled on this server",
			"code":       streach.InvalidRequest.String(),
			"request_id": RequestID(r.Context()),
		})
		return
	}
	var p ingestPayload
	if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
		s.badRequest(w, r, "bad JSON body: %v", err)
		return
	}
	if len(p.Updates) == 0 {
		s.badRequest(w, r, "no updates in batch")
		return
	}
	if len(p.Updates) > maxIngestBatch {
		s.badRequest(w, r, "batch of %d exceeds the %d-update limit", len(p.Updates), maxIngestBatch)
		return
	}
	if !s.allowClient(w, r) {
		return
	}
	if !s.acquire() {
		s.reject(w, r)
		return
	}
	defer s.release()

	began := time.Now()
	updates := make([]streach.IngestUpdate, len(p.Updates))
	for i, u := range p.Updates {
		updates[i] = streach.IngestUpdate{
			TaxiID:    u.Taxi,
			Day:       u.Day,
			SegmentID: u.Seg,
			EnterMs:   u.EnterMs,
			ExitMs:    u.ExitMs,
			SpeedMps:  u.SpeedMps,
		}
	}
	accepted, err := s.sys.TryIngest(updates)
	s.vars.Add("ingest_accepted_total", int64(accepted))
	if err != nil {
		s.vars.Add("ingest_rejected_total", int64(len(updates)-accepted))
		if errors.Is(err, streach.ErrIngestBackpressure) {
			// Partial admission is reported honestly: the client retries
			// only the tail.
			s.recordError(http.StatusTooManyRequests)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error":      "ingest queue full; retry the remainder",
				"code":       streach.Overloaded.String(),
				"accepted":   accepted,
				"request_id": RequestID(r.Context()),
			})
			return
		}
		s.httpError(w, r, err)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		if err := s.sys.FlushIngest(r.Context()); err != nil {
			s.httpError(w, r, err)
			return
		}
	}
	s.vars.Add("ingest_batches_total", 1)
	s.observe("ingest", time.Since(began))
	ist := s.sys.IngestStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"accepted":     accepted,
		"epoch":        ist.Epoch,
		"data_version": ist.DataVersion,
		"pending_obs":  ist.PendingObs,
		"queue_len":    ist.QueueLen,
	})
}

// handleIngestCompact folds the delta layer into freshly encoded blobs
// and installs a new index epoch. In-flight queries finish on the epoch
// they started with; the reported pause is the handle-table install
// critical section, not the fold.
func (s *Server) handleIngestCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		s.recordError(http.StatusMethodNotAllowed)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if !s.sys.IngestEnabled() {
		s.recordError(http.StatusServiceUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":      "live ingest is not enabled on this server",
			"code":       streach.InvalidRequest.String(),
			"request_id": RequestID(r.Context()),
		})
		return
	}
	if !s.allowClient(w, r) {
		return
	}
	// ?keys=N bounds the fold to the N hottest dirty keys (incremental
	// compaction); the rest roll to the next call or background cycle.
	maxKeys := 0
	if v := r.URL.Query().Get("keys"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.recordError(http.StatusBadRequest)
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":      fmt.Sprintf("invalid keys parameter %q", v),
				"code":       streach.InvalidRequest.String(),
				"request_id": RequestID(r.Context()),
			})
			return
		}
		maxKeys = n
	}
	res, err := s.sys.CompactIngestN(r.Context(), maxKeys)
	if err != nil {
		s.httpError(w, r, err)
		return
	}
	s.vars.Add("ingest_compactions_total", 1)
	writeJSON(w, http.StatusOK, map[string]any{
		"keys":         res.Keys,
		"observations": res.Observations,
		"bytes":        res.Bytes,
		"pause_ms":     float64(res.Pause) / float64(time.Millisecond),
		"epoch":        res.Epoch,
		"durable":      res.Durable,
		"remaining":    res.Remaining,
		"carried_obs":  res.CarriedObs,
	})
}
