package serve

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"streach"
)

// --- AIMD limiter ---

func TestLimiterDefaults(t *testing.T) {
	l := newLimiter(64, 0, false)
	if l.min != 16 || l.max != 64 || l.limit != 64 {
		t.Fatalf("limiter = min %v max %v limit %v, want 16/64/64", l.min, l.max, l.limit)
	}
	// The floor is at least 1 and never above the ceiling.
	if l := newLimiter(2, 0, false); l.min != 1 {
		t.Fatalf("min = %v, want 1", l.min)
	}
	if l := newLimiter(4, 9, false); l.min != 4 {
		t.Fatalf("min = %v, want clamped to max 4", l.min)
	}
}

// TestLimiterAIMD: deadline failures multiply the limit down (rate
// limited to one decrease per window), comfortable completions add a
// fractional slot back, and the floor holds.
func TestLimiterAIMD(t *testing.T) {
	l := newLimiter(10, 2, false)
	deadline := time.Second

	ok, _ := l.admit()
	if !ok {
		t.Fatal("fresh limiter rejected")
	}
	l.release(deadline, deadline, true) // deadline hit: congestion
	if lim, _ := l.snapshot(); lim != 7 {
		t.Fatalf("limit after decrease = %v, want 7", lim)
	}

	// A second congestion signal inside the rate-limit window is the
	// same burst, not a second collapse.
	l.admit()
	l.release(deadline, deadline, true)
	if lim, _ := l.snapshot(); lim != 7 {
		t.Fatalf("limit after rate-limited decrease = %v, want still 7", lim)
	}

	// Near-deadline latency counts as congestion too (past the window).
	l.mu.Lock()
	l.lastDecrease = time.Now().Add(-decreaseEvery)
	l.mu.Unlock()
	l.admit()
	l.release(800*time.Millisecond, deadline, false) // headroom 0.8 >= 0.75
	lim, _ := l.snapshot()
	if math.Abs(lim-4.9) > 1e-9 {
		t.Fatalf("limit after latency decrease = %v, want 4.9", lim)
	}

	// Comfortable completions grow additively: +1/limit per completion.
	l.admit()
	l.release(10*time.Millisecond, deadline, false)
	if grown, _ := l.snapshot(); grown <= lim || grown > 5.2 {
		t.Fatalf("limit after increase = %v, want slightly above %v", grown, lim)
	}

	// The floor holds under sustained congestion.
	for i := 0; i < 10; i++ {
		l.mu.Lock()
		l.lastDecrease = time.Now().Add(-decreaseEvery)
		l.mu.Unlock()
		l.admit()
		l.release(deadline, deadline, true)
	}
	if lim, _ := l.snapshot(); lim != 2 {
		t.Fatalf("limit under sustained congestion = %v, want the floor 2", lim)
	}
}

// TestLimiterStatic: StaticAdmission restores the old fixed-gate
// behaviour — outcomes never move the limit.
func TestLimiterStatic(t *testing.T) {
	l := newLimiter(4, 0, true)
	l.admit()
	l.release(time.Second, time.Second, true)
	if lim, _ := l.snapshot(); lim != 4 {
		t.Fatalf("static limit moved: %v", lim)
	}
}

// TestLimiterBrownoutLevels: occupancy of the current limit picks the
// brownout rung a request enters under.
func TestLimiterBrownoutLevels(t *testing.T) {
	l := newLimiter(10, 1, true)
	var levels []int
	for i := 0; i < 10; i++ {
		ok, level := l.admit()
		if !ok {
			t.Fatalf("admit %d rejected below the limit", i)
		}
		levels = append(levels, level)
	}
	// Occupancy 0.1..0.5 → level 0; 0.6..0.8 → shed work; 0.9, 1.0 →
	// forced partial.
	want := []int{0, 0, 0, 0, 0, brownoutShedWork, brownoutShedWork, brownoutShedWork, brownoutForcePartial, brownoutForcePartial}
	for i := range want {
		if levels[i] != want[i] {
			t.Fatalf("levels = %v, want %v", levels, want)
		}
	}
	if ok, _ := l.admit(); ok {
		t.Fatal("admitted past the limit")
	}
}

// TestLimiterRetryAfter: the 429 Retry-After tracks the observed
// latency EWMA scaled by occupancy, clamped to [1s, 30s] and rounded up
// to whole seconds.
func TestLimiterRetryAfter(t *testing.T) {
	l := newLimiter(4, 0, false)
	if got := l.retryAfter(); got != time.Second {
		t.Fatalf("no-data retryAfter = %v, want the 1s floor", got)
	}
	l.admit()
	l.release(5*time.Second, 0, false) // deadline 0: feeds EWMA only
	if got := l.retryAfter(); got != 5*time.Second {
		t.Fatalf("retryAfter with 5s EWMA = %v, want 5s", got)
	}
	l.mu.Lock()
	l.ewmaNS = float64(2 * time.Minute)
	l.mu.Unlock()
	if got := l.retryAfter(); got != 30*time.Second {
		t.Fatalf("retryAfter = %v, want the 30s cap", got)
	}
	l.mu.Lock()
	l.ewmaNS = float64(1500 * time.Millisecond)
	l.mu.Unlock()
	if got := l.retryAfter(); got != 2*time.Second {
		t.Fatalf("retryAfter = %v, want 1.5s rounded up to 2s", got)
	}
}

// --- per-client quotas ---

func TestQuotaBucket(t *testing.T) {
	q := newQuotas(10, 2)
	now := time.Now()
	if ok, _ := q.allow("a", now); !ok {
		t.Fatal("first request rejected")
	}
	if ok, _ := q.allow("a", now); !ok {
		t.Fatal("burst capacity not honoured")
	}
	ok, retry := q.allow("a", now)
	if ok {
		t.Fatal("dry bucket admitted")
	}
	if retry != 100*time.Millisecond {
		t.Fatalf("retry = %v, want 100ms at 10 rps", retry)
	}
	// Tokens accrue with time, capped at the burst.
	if ok, _ := q.allow("a", now.Add(150*time.Millisecond)); !ok {
		t.Fatal("refilled bucket rejected")
	}
	// Other clients are unaffected.
	if ok, _ := q.allow("b", now); !ok {
		t.Fatal("independent client rejected")
	}
}

func TestQuotaDefaultBurst(t *testing.T) {
	if q := newQuotas(5, 0); q.burst != 10 {
		t.Fatalf("burst = %v, want 2x rate", q.burst)
	}
	if q := newQuotas(0.1, 0); q.burst != 1 {
		t.Fatalf("burst = %v, want floor 1", q.burst)
	}
}

// TestQuotaTableBounded: the client table is LRU-bounded, so an
// address-spraying client cannot grow it without limit.
func TestQuotaTableBounded(t *testing.T) {
	q := newQuotas(1, 1)
	now := time.Now()
	for i := 0; i < quotaTableCap+100; i++ {
		q.allow(fmt.Sprintf("peer:%d", i), now)
	}
	if n := len(q.table); n > quotaTableCap {
		t.Fatalf("quota table grew to %d, cap %d", n, quotaTableCap)
	}
	if q.order.Len() != len(q.table) {
		t.Fatalf("LRU list (%d) out of sync with table (%d)", q.order.Len(), len(q.table))
	}
}

func TestClientKey(t *testing.T) {
	r := httptest.NewRequest(http.MethodGet, "/v1/reach", nil)
	r.RemoteAddr = "10.1.2.3:4444"
	if got := clientKey(r); got != "peer:10.1.2.3" {
		t.Fatalf("peer key = %q", got)
	}
	r.Header.Set("X-API-Key", "team-alpha_1")
	if got := clientKey(r); got != "key:team-alpha_1" {
		t.Fatalf("api key = %q", got)
	}
	// Hostile header values fall back to the peer address.
	r.Header.Set("X-API-Key", "evil key with spaces that is way too long to be allowed anywhere near a log line")
	if got := clientKey(r); got != "peer:10.1.2.3" {
		t.Fatalf("unsafe api key = %q, want peer fallback", got)
	}
}

// TestQuotaHTTP: a client that exhausts its bucket gets a typed 429 —
// Retry-After header, machine-readable code, request ID — while other
// clients' traffic is untouched.
func TestQuotaHTTP(t *testing.T) {
	ts := server(t, Config{ClientRPS: 0.001, ClientBurst: 2})
	get := func(key string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/reach?start=11h&dur=10m&prob=0.2", nil)
		req.Header.Set("X-API-Key", key)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for i := 0; i < 2; i++ {
		resp := get("alice")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d inside the burst = %d", i, resp.StatusCode)
		}
	}
	resp := get("alice")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", resp.Header.Get("Retry-After"))
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"code":"overloaded"`) || !strings.Contains(string(body), `"request_id"`) {
		t.Fatalf("429 body not typed: %s", body)
	}
	// Alice's exhaustion is not Bob's problem.
	bob := get("bob")
	io.Copy(io.Discard, bob.Body)
	bob.Body.Close()
	if bob.StatusCode != http.StatusOK {
		t.Fatalf("independent client = %d, want 200", bob.StatusCode)
	}
}

// TestServeOverloadChaos is the acceptance scenario end to end: 1 of 4
// shards hung, open-loop load at several times the admission limit.
// Every response must be a 200 (degraded where the hung shard owned
// work) or a typed 429 — never an untyped 5xx — with p99 within twice
// the deadline budget; the hung shard's breaker opens under the
// failures and, once the fault clears, the half-open probe re-admits it
// and answers are whole again. Afterwards every scratch pool balances:
// shed and degraded queries drained their partial plans back.
func TestServeOverloadChaos(t *testing.T) {
	sys := shardedSystem(t)
	defer clearFaults(t, sys)
	sys.SetShardBudget(100 * time.Millisecond)
	defer sys.SetShardBudget(0)
	sys.ConfigureBreakers(streach.BreakerConfig{
		Enabled: true, Window: 8, FailureRatio: 0.5, MinSamples: 2, Cooldown: 300 * time.Millisecond,
	})
	defer sys.ConfigureBreakers(streach.BreakerConfig{})

	const deadline = 2 * time.Second
	srv := New(sys, Config{DefaultTimeout: deadline, MaxInFlight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := sys.InjectShardFault(1, streach.ShardFaultHang); err != nil {
		t.Fatal(err)
	}

	// Open-loop flood at 4x the admission limit. Distinct probabilities
	// defeat singleflight coalescing, so every request is real load.
	const workers, perWorker = 8, 10
	var (
		mu        sync.Mutex
		statuses  = map[int]int{}
		latencies []time.Duration
		degraded  int
		bad       []string
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				prob := 0.10 + 0.01*float64(w*perWorker+i)
				url := fmt.Sprintf("%s/v1/reach?start=11h&dur=10m&prob=%.2f&partial=true", ts.URL, prob)
				began := time.Now()
				resp, err := http.Get(url)
				lat := time.Since(began)
				if err != nil {
					mu.Lock()
					bad = append(bad, err.Error())
					mu.Unlock()
					continue
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				latencies = append(latencies, lat)
				switch resp.StatusCode {
				case http.StatusOK:
					if strings.Contains(string(body), `"degraded":true`) {
						degraded++
					}
				case http.StatusTooManyRequests:
					if resp.Header.Get("Retry-After") == "" || !strings.Contains(string(body), `"code"`) {
						bad = append(bad, fmt.Sprintf("untyped 429: %s", body))
					}
				default:
					bad = append(bad, fmt.Sprintf("status %d: %s", resp.StatusCode, body))
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	if len(bad) > 0 {
		t.Fatalf("%d responses outside the 200/typed-429 contract; first: %s", len(bad), bad[0])
	}
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded under overload: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("flood at 4x the limit never saw a 429: %v", statuses)
	}
	if degraded == 0 {
		t.Fatal("no answer was degraded despite the hung shard")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if p99 := latencies[len(latencies)*99/100]; p99 > 2*deadline {
		t.Fatalf("p99 latency %v exceeds 2x the %v deadline budget", p99, deadline)
	}
	rs := sys.ResilienceStats()
	if rs.BreakerOpens == 0 {
		t.Fatalf("breaker never opened under the hung shard: %+v", rs)
	}
	if rs.BreakerShortCircuits == 0 {
		t.Fatalf("open breaker never short-circuited: %+v", rs)
	}

	// The self-protection state is observable where operators look.
	resp, err := http.Get(ts.URL + "/metrics/prometheus")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"streach_breaker_state", "streach_breaker_opens_total",
		"streach_admission_limit", "streach_admission_inflight",
		"streach_admission_rejected_total",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("prometheus exposition missing %s", want)
		}
	}

	// Fault cleared + cooldown elapsed: the half-open probe re-admits
	// the shard and answers are whole again.
	clearFaults(t, sys)
	time.Sleep(350 * time.Millisecond)
	recovered := false
	for i := 0; i < 10 && !recovered; i++ {
		out := getJSON(t, ts.URL+reachPath+"&partial=true", http.StatusOK)
		recovered = out["degraded"] == nil && sys.ShardHealth()[1].Breaker == "closed"
		if !recovered {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !recovered {
		t.Fatalf("breaker did not recover after the fault cleared: %+v", sys.ShardHealth()[1])
	}

	// Scratch-drain regression (run after Close so no background warm is
	// mid-checkout): every pooled region and bitset came back, including
	// from budget-expired, short-circuited, and shed queries.
	srv.Close()
	for i, st := range sys.ScratchStats() {
		if !st.Balanced() {
			t.Fatalf("scratch pool %d leaked across the overload flood: %+v", i, st)
		}
	}
}
