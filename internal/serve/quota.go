package serve

import (
	"container/list"
	"net"
	"net/http"
	"sync"
	"time"
)

// Per-client token-bucket quotas, the fairness layer in front of global
// admission: one overeager client exhausts its own bucket and gets 429s
// while everyone else's traffic still fits under the concurrency limit.
// Clients are keyed by X-API-Key when present, else by peer host. The
// table is LRU-bounded so an address-spraying client cannot grow it
// without limit; evicting an idle client merely refills its bucket on
// return, which errs in the client's favour.

const quotaTableCap = 4096

type quotas struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	table map[string]*quotaBucket
	order *list.List // front = most recently used
}

type quotaBucket struct {
	key    string
	tokens float64
	last   time.Time
	elem   *list.Element
}

func newQuotas(rate float64, burst int) *quotas {
	b := float64(burst)
	if b <= 0 {
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	return &quotas{rate: rate, burst: b, table: map[string]*quotaBucket{}, order: list.New()}
}

// allow spends one token from the client's bucket. When the bucket is
// dry, retry reports how long until the next token accrues.
func (q *quotas) allow(key string, now time.Time) (ok bool, retry time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.table[key]
	if b == nil {
		b = &quotaBucket{key: key, tokens: q.burst, last: now}
		b.elem = q.order.PushFront(b)
		q.table[key] = b
		if q.order.Len() > quotaTableCap {
			oldest := q.order.Back()
			q.order.Remove(oldest)
			delete(q.table, oldest.Value.(*quotaBucket).key)
		}
	} else {
		q.order.MoveToFront(b.elem)
		b.tokens += now.Sub(b.last).Seconds() * q.rate
		if b.tokens > q.burst {
			b.tokens = q.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rate
	return false, time.Duration(need * float64(time.Second))
}

// clientKey identifies the requesting client: the API key when sent,
// else the peer host (sanitized like request IDs, so hostile header
// values can't pollute logs or metrics).
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		if safe := sanitizeRequestID(k); safe != "" {
			return "key:" + safe
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "peer:" + host
}
