package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"regexp"
	"runtime"
	"sync"
	"testing"
	"time"

	"streach"
)

var (
	shardedOnce sync.Once
	shardedSys  *streach.System
	shardedErr  error
)

// shardedSystem builds a dedicated 4-shard system for the chaos serving
// tests (the shared fixture stays unsharded and uninjected).
func shardedSystem(t *testing.T) *streach.System {
	t.Helper()
	base := system(t)
	shardedOnce.Do(func() {
		idx := streach.DefaultIndexConfig()
		idx.PlanCache = -1
		idx.Shards = 4
		shardedSys, shardedErr = streach.NewSystemFromData(base.Network(), base.Dataset(), idx)
	})
	if shardedErr != nil {
		t.Fatal(shardedErr)
	}
	return shardedSys
}

func clearFaults(t *testing.T, sys *streach.System) {
	t.Helper()
	for sh := 0; sh < sys.Shards(); sh++ {
		if err := sys.InjectShardFault(sh, streach.ShardFaultNone); err != nil {
			t.Fatal(err)
		}
	}
}

const reachPath = "/v1/reach?start=11h&dur=10m&prob=0.2"

// TestRequestIDGeneratedAndEchoed: every response carries X-Request-ID —
// generated when the client sent none (or sent garbage), echoed when the
// client's is plain — and error bodies carry the same ID plus the typed
// code.
func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	ts := server(t, Config{})
	hexID := regexp.MustCompile(`^[0-9a-f]{16}$`)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); !hexID.MatchString(rid) {
		t.Fatalf("generated request ID = %q, want 16 hex chars", rid)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); rid != "client-id-42" {
		t.Fatalf("client request ID not echoed: %q", rid)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "evil id with spaces and a very long tail that nobody should be allowed to log")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rid := resp.Header.Get("X-Request-ID"); !hexID.MatchString(rid) {
		t.Fatalf("unsafe client ID should be replaced, got %q", rid)
	}

	// Error bodies are attributable: request_id and typed code.
	out := getJSON(t, ts.URL+"/v1/reach?start=11h&dur=10m&prob=7", http.StatusBadRequest)
	if out["code"] != "invalid_request" {
		t.Fatalf("error code = %v, want invalid_request", out["code"])
	}
	if rid, _ := out["request_id"].(string); !hexID.MatchString(rid) {
		t.Fatalf("error body request_id = %v", out["request_id"])
	}
}

// TestPanicRecoveryMiddleware: a panicking handler becomes a typed 500,
// not a dead connection.
func TestPanicRecoveryMiddleware(t *testing.T) {
	s := New(system(t), Config{})
	h := s.middleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	out := getJSON(t, ts.URL+"/boom", http.StatusInternalServerError)
	if out["code"] != "internal" {
		t.Fatalf("panic response = %v, want code internal", out)
	}
	if out["request_id"] == "" {
		t.Fatalf("panic response missing request_id: %v", out)
	}
}

// TestServeChaosDegraded pins the serving half of the chaos acceptance
// criterion: with 1 of 4 shards fault-injected, the same query answers
// 200 + "degraded": true under ?partial=true and a typed 5xx without
// it, and /healthz reports the degraded shard.
func TestServeChaosDegraded(t *testing.T) {
	sys := shardedSystem(t)
	defer clearFaults(t, sys)
	ts := httptest.NewServer(New(sys, Config{}).Handler())
	defer ts.Close()

	// Healthy first: 200, no degradation.
	out := getJSON(t, ts.URL+reachPath, http.StatusOK)
	if out["degraded"] != nil {
		t.Fatalf("healthy answer reports degradation: %v", out["degraded"])
	}

	if err := sys.InjectShardFault(1, streach.ShardFaultError); err != nil {
		t.Fatal(err)
	}

	// Default mode: typed shard failure, 502.
	out = getJSON(t, ts.URL+reachPath, http.StatusBadGateway)
	if out["code"] != "shard_failure" {
		t.Fatalf("fail-fast error = %v, want code shard_failure", out)
	}

	// Partial mode: 200 with degraded metadata.
	out = getJSON(t, ts.URL+reachPath+"&partial=true", http.StatusOK)
	if out["degraded"] != true {
		t.Fatalf("partial answer not degraded: %v", out)
	}
	missing, _ := out["missing_shards"].([]any)
	if len(missing) != 1 || missing[0].(float64) != 1 {
		t.Fatalf("missing_shards = %v, want [1]", out["missing_shards"])
	}
	cov, _ := out["coverage"].(float64)
	if cov <= 0 || cov >= 1 {
		t.Fatalf("coverage = %v, want in (0, 1)", out["coverage"])
	}
	if segs, _ := out["segments"].([]any); len(segs) == 0 {
		t.Fatalf("degraded answer is empty: %v", out)
	}

	// The probe shows the injected shard.
	hz := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if hz["status"] != "degraded" || hz["degraded"] != true {
		t.Fatalf("healthz = %v, want degraded", hz)
	}
	states, _ := hz["shard_health"].([]any)
	if len(states) != 4 {
		t.Fatalf("shard_health = %v", hz["shard_health"])
	}
	s1 := states[1].(map[string]any)
	if s1["fault"] != "error" || s1["degraded"] != true {
		t.Fatalf("shard 1 health = %v", s1)
	}

	// Hang + per-query shard budget is out of HTTP reach, but the hang
	// fault bounded by the server's request deadline still answers typed.
	if err := sys.InjectShardFault(1, streach.ShardFaultHang); err != nil {
		t.Fatal(err)
	}
	out = getJSON(t, ts.URL+reachPath+"&timeout=100ms", http.StatusGatewayTimeout)
	if out["code"] != "timeout" {
		t.Fatalf("hang error = %v, want code timeout", out)
	}
}

// TestServeGoroutineHygiene: graceful shutdown, coalesced-query leader
// deadline expiry, and mid-query client cancellation all leave no
// goroutines behind (run under -race in CI).
func TestServeGoroutineHygiene(t *testing.T) {
	sys := system(t)
	runtime.GC()
	time.Sleep(10 * time.Millisecond)
	before := runtime.NumGoroutine()

	func() {
		srv := New(sys, Config{})
		ts := httptest.NewServer(srv.Handler())
		defer srv.Close()
		defer ts.Close()

		// Plain traffic.
		for i := 0; i < 3; i++ {
			resp, err := http.Get(ts.URL + reachPath)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}

		// Coalesced burst whose leader's deadline expires mid-query:
		// followers must not wait forever on a dead leader.
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := http.Get(ts.URL + reachPath + "&timeout=2ms")
				if err == nil {
					resp.Body.Close()
				}
			}()
		}
		wg.Wait()

		// Mid-query client cancellation.
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+reachPath, nil)
		go func() {
			time.Sleep(2 * time.Millisecond)
			cancel()
		}()
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	http.DefaultClient.CloseIdleConnections()

	deadline := time.Now().Add(3 * time.Second)
	var now int
	for {
		runtime.GC()
		now = runtime.NumGoroutine()
		if now <= before {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines grew %d -> %d after serve shutdown; stacks:\n%s", before, now, buf[:n])
}
