// Package serve exposes a built streach.System over HTTP: JSON (or
// GeoJSON) reachability and route queries on /v1/reach and /v1/route, a
// /healthz probe, and metrics on /metrics (expvar JSON) and
// /metrics/prometheus (text exposition format with per-endpoint latency
// histograms and batch-sharing counters).
//
// Every request runs under a deadline: the server derives a per-request
// context from Config.DefaultTimeout (clients may lower — never raise
// past Config.MaxTimeout — it with a ?timeout= parameter), and that
// context rides System.Do all the way into the engine's cancellation
// checkpoints. A client that disconnects or a deadline that expires
// stops the query mid-flight instead of burning the worker pool on an
// answer nobody will read.
//
// Three traffic-shaping layers sit in front of the engine. Per-client
// token-bucket quotas (Config.ClientRPS) fence off overeager clients
// first. Adaptive admission bounds the in-flight query count with an
// AIMD limiter that starts at Config.MaxInFlight and converges on what
// the engine sustains within its deadlines (admission.go); occupancy
// drives a brownout ladder — shed prefetch work, force aggressive
// partial semantics for opted-in clients, and finally reject with 429 +
// an honest Retry-After derived from the limiter state. Singleflight
// coalescing merges concurrent identical queries into one execution
// (coalesce.go), the serving-layer mirror of DoBatch's group-and-plan
// scheduler: a burst of duplicate-heavy traffic reaches the engine once
// per distinct query.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"streach"
)

// Config tunes the server. The zero value serves with 10 s request
// deadlines capped at 30 s and up to 64 in-flight queries.
type Config struct {
	// DefaultTimeout is the per-request query deadline when the client
	// does not send ?timeout= (default 10 s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 30 s).
	MaxTimeout time.Duration
	// MaxInFlight is the ceiling on concurrently admitted query
	// requests — the AIMD limiter's starting point and maximum; excess
	// requests are rejected immediately with 429 and a Retry-After
	// header instead of queueing behind a saturated engine. 0 means the
	// default (64); negative disables admission control.
	MaxInFlight int
	// MinInFlight is the AIMD limiter's floor: overload can shrink the
	// admitted concurrency down to this but never below. 0 means
	// MaxInFlight/4, at least 1.
	MinInFlight int
	// StaticAdmission disables AIMD adaptation: the in-flight bound
	// stays fixed at MaxInFlight, as before adaptive admission.
	StaticAdmission bool
	// ClientRPS, when positive, enforces a per-client token-bucket
	// quota of this many requests per second (keyed by X-API-Key, else
	// peer host) in front of global admission. 0 disables quotas.
	ClientRPS float64
	// ClientBurst is the quota bucket depth (default 2×ClientRPS, at
	// least 1).
	ClientBurst int
	// AccessLog, when set, receives one line per request (method, URI,
	// status, latency, request ID) plus panic reports. nil disables
	// access logging.
	AccessLog *log.Logger
}

func (c Config) withDefaults() Config {
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 64
	}
	return c
}

// Server answers HTTP queries over one built system.
type Server struct {
	sys *streach.System
	cfg Config
	// vars accumulates the existing query Metrics counters across
	// requests in an expvar.Map (not globally published, so multiple
	// servers in one process — tests — don't collide); /metrics renders
	// its canonical expvar JSON.
	vars expvar.Map
	// lim is the adaptive admission gate: one slot per in-flight query
	// request, AIMD-adjusted between MinInFlight and MaxInFlight (nil =
	// unlimited).
	lim *aimdLimiter
	// quota is the per-client token-bucket table (nil = no quotas).
	quota *quotas
	// flights coalesces concurrent identical queries into one execution.
	flights *coalescer
	// hist holds the per-endpoint latency histograms the Prometheus
	// rendering of /metrics exposes.
	hist map[string]*histogram
	// Background prefetch lifecycle: warmBusy keeps at most one warm in
	// flight, baseCtx/stop and wg bound it to the server's lifetime so
	// Close leaves no goroutine behind.
	warmBusy atomic.Bool
	baseCtx  context.Context
	stop     context.CancelFunc
	wg       sync.WaitGroup
}

// New wraps a built system in a server. Call Close when done to stop
// background prefetch work.
func New(sys *streach.System, cfg Config) *Server {
	s := &Server{sys: sys, cfg: cfg.withDefaults(), flights: newCoalescer()}
	s.vars.Init()
	if s.cfg.MaxInFlight > 0 {
		s.lim = newLimiter(s.cfg.MaxInFlight, s.cfg.MinInFlight, s.cfg.StaticAdmission)
	}
	if s.cfg.ClientRPS > 0 {
		s.quota = newQuotas(s.cfg.ClientRPS, s.cfg.ClientBurst)
	}
	s.hist = make(map[string]*histogram, len(endpoints))
	for _, ep := range endpoints {
		s.hist[ep] = newHistogram()
	}
	s.baseCtx, s.stop = context.WithCancel(context.Background())
	return s
}

// Close stops the server's background work (prefetch warms) and waits
// for it to exit. Idempotent.
func (s *Server) Close() {
	s.stop()
	s.wg.Wait()
}

// Handler returns the route table, wrapped in the request-ID /
// access-log / panic-recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics/prometheus", s.handlePrometheus)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/v1/reach", s.handleReach)
	mux.HandleFunc("/v1/route", s.handleRoute)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/ingest/compact", s.handleIngestCompact)
	return s.middleware(mux)
}

// admit claims an admission slot; level is the brownout rung the
// request enters under (0 = none), !ok means the limiter is full.
func (s *Server) admit() (ok bool, level int) {
	if s.lim == nil {
		return true, 0
	}
	return s.lim.admit()
}

// acquire claims an admission slot without brownout context; false
// means the server is saturated. Paired with release.
func (s *Server) acquire() bool {
	ok, _ := s.admit()
	return ok
}

// release returns an acquire'd slot without latency feedback.
func (s *Server) release() {
	if s.lim != nil {
		s.lim.releaseIdle()
	}
}

// finish returns an admitted request's slot with its outcome, feeding
// the AIMD limiter: deadline failures shrink the admitted concurrency,
// comfortable completions grow it back.
func (s *Server) finish(lat, deadline time.Duration, err error) {
	if s.lim == nil {
		return
	}
	deadlineHit := err != nil &&
		(errors.Is(err, context.DeadlineExceeded) || streach.CodeOf(err) == streach.Timeout)
	s.lim.release(lat, deadline, deadlineHit)
}

// reject answers a saturated-server request: 429 with a Retry-After
// derived from the limiter state (how long until a slot plausibly
// frees), so well-behaved clients back off for about the right time
// instead of a fixed guess.
func (s *Server) reject(w http.ResponseWriter, r *http.Request) {
	s.vars.Add("admission_rejected_total", 1)
	retry := time.Second
	if s.lim != nil {
		retry = s.lim.retryAfter()
	}
	s.rejectWith(w, r, retry, "server at capacity; retry later")
}

// rejectQuota answers a client that exhausted its token bucket.
func (s *Server) rejectQuota(w http.ResponseWriter, r *http.Request, retry time.Duration) {
	s.vars.Add("quota_rejections_total", 1)
	if retry < time.Second {
		retry = time.Second
	}
	s.rejectWith(w, r, retry, "client quota exceeded; retry later")
}

func (s *Server) rejectWith(w http.ResponseWriter, r *http.Request, retry time.Duration, msg string) {
	s.recordError(http.StatusTooManyRequests)
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":      msg,
		"code":       streach.Overloaded.String(),
		"request_id": RequestID(r.Context()),
	})
}

// allowClient enforces the per-client quota; a false return has already
// written the 429.
func (s *Server) allowClient(w http.ResponseWriter, r *http.Request) bool {
	if s.quota == nil {
		return true
	}
	ok, retry := s.quota.allow(clientKey(r), time.Now())
	if !ok {
		s.rejectQuota(w, r, retry)
	}
	return ok
}

// maybePrefetch warms the Con-Index window following an answered query
// in the background — the cheapest work there is, and therefore the
// first thing the brownout ladder sheds. At most one warm runs at a
// time, bounded to the server's lifetime (Close).
func (s *Server) maybePrefetch(start, dur time.Duration, level int) {
	if level >= brownoutShedWork {
		s.vars.Add("brownout_warm_shed_total", 1)
		return
	}
	if !s.warmBusy.CompareAndSwap(false, true) {
		return
	}
	slot := time.Duration(s.sys.Stats().SlotSeconds) * time.Second
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer s.warmBusy.Store(false)
		if s.sys.WarmCtx(s.baseCtx, start+dur, slot) == nil {
			s.vars.Add("prefetch_warms_total", 1)
		}
	}()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sys.Stats()
	resp := map[string]any{
		"status":       "ok",
		"segments":     st.Segments,
		"road_km":      st.RoadKm,
		"taxis":        st.Taxis,
		"days":         st.Days,
		"slot_seconds": st.SlotSeconds,
		"shards":       s.sys.Shards(),
		"slot_shards":  s.sys.SlotShards(),
	}
	// Durability state: "ok" while the ingest WAL is keeping up,
	// "degraded" while appends are failing (updates stay live but are
	// not crash-durable), "none" without a WAL-backed ingest writer.
	ist := s.sys.IngestStats()
	switch {
	case ist.DurabilityDegraded:
		resp["durability"] = "degraded"
		resp["durability_error"] = ist.WALLastError
		resp["status"] = "degraded"
	case ist.WALEnabled:
		resp["durability"] = "ok"
	default:
		resp["durability"] = "none"
	}
	// On a sharded system the probe also reports per-shard failure
	// state, so a cluster running degraded (injected fault, repeated
	// scatter failures) is visible before it costs a query.
	if hs := s.sys.ShardHealth(); hs != nil {
		degraded := false
		shardStates := make([]map[string]any, len(hs))
		for i, h := range hs {
			if h.Degraded() {
				degraded = true
			}
			shardStates[i] = map[string]any{
				"shard":      h.Shard,
				"failures":   h.Failures,
				"last_error": h.LastError,
				"fault":      h.Fault,
				"breaker":    h.Breaker,
				"degraded":   h.Degraded(),
			}
		}
		resp["degraded"] = degraded
		resp["shard_health"] = shardStates
		if degraded {
			resp["status"] = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, s.vars.String())
}

// handlePrometheus renders the same counters — plus the per-endpoint
// latency histograms and batch-sharing counters — in the Prometheus text
// exposition format (dependency-free; see prometheus.go).
func (s *Server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writePrometheus(w)
}

// record folds one answered query's Metrics into the cumulative counters.
func (s *Server) record(kind string, m streach.Metrics) {
	s.vars.Add("requests_total", 1)
	s.vars.Add("requests_"+kind, 1)
	s.vars.Add("segments_evaluated", int64(m.Evaluated))
	s.vars.Add("page_reads", m.PageReads)
	s.vars.Add("page_hits", m.PageHits)
	s.vars.Add("tlcache_hits", m.TLCacheHits)
	s.vars.Add("tlcache_misses", m.TLCacheMisses)
	s.vars.Add("con_rows_materialised", m.ConMaterialised)
	s.vars.Add("con_row_hits", m.ConHits)
	s.vars.Add("elapsed_ns", int64(m.Elapsed))
	s.vars.Add("bound_ns", int64(m.Bound))
	s.vars.Add("verify_ns", int64(m.Verify))
}

// recordShared counts a request answered from a coalesced execution: the
// engine-cost counters stay with the leader that actually paid them.
func (s *Server) recordShared(kind string) {
	s.vars.Add("requests_total", 1)
	s.vars.Add("requests_"+kind, 1)
	s.vars.Add("coalesced_total", 1)
}

// observe feeds one answered request into its endpoint's latency
// histogram.
func (s *Server) observe(kind string, d time.Duration) {
	if h, ok := s.hist[kind]; ok {
		h.observe(d)
	}
}

func (s *Server) recordError(status int) {
	s.vars.Add("errors_total", 1)
	s.vars.Add("errors_"+strconv.Itoa(status), 1)
}

// statusOf maps a query failure to an HTTP status: context sentinels
// and the location-snap miss first (a missing road is 404, not the 400
// its InvalidRequest marking would suggest), then the typed streach
// error taxonomy, then the legacy message heuristics for errors that
// predate it.
func statusOf(err error) int {
	switch {
	case errors.Is(err, context.Canceled):
		// The client went away; the status is for the log line only.
		return 499
	case strings.Contains(err.Error(), "no road"):
		return http.StatusNotFound
	}
	switch streach.CodeOf(err) {
	case streach.InvalidRequest:
		return http.StatusBadRequest
	case streach.Timeout:
		return http.StatusGatewayTimeout
	case streach.Overloaded:
		return http.StatusTooManyRequests
	case streach.ShardFailure:
		return http.StatusBadGateway
	case streach.CorruptData, streach.Internal:
		return http.StatusInternalServerError
	}
	switch {
	case strings.Contains(err.Error(), "must be"),
		strings.Contains(err.Error(), "needs"),
		strings.Contains(err.Error(), "does not answer"),
		strings.Contains(err.Error(), "has no multi-location"):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// httpError answers a failed query: typed status, and an error body
// carrying the machine-readable code and the request ID.
func (s *Server) httpError(w http.ResponseWriter, r *http.Request, err error) {
	status := statusOf(err)
	s.recordError(status)
	writeJSON(w, status, map[string]any{
		"error":      err.Error(),
		"code":       streach.CodeOf(err).String(),
		"request_id": RequestID(r.Context()),
	})
}

func (s *Server) badRequest(w http.ResponseWriter, r *http.Request, format string, args ...any) {
	s.recordError(http.StatusBadRequest)
	writeJSON(w, http.StatusBadRequest, map[string]any{
		"error":      fmt.Sprintf(format, args...),
		"code":       streach.InvalidRequest.String(),
		"request_id": RequestID(r.Context()),
	})
}

// queryCtx derives the per-request deadline context: the default server
// timeout, or the client's ?timeout= capped at MaxTimeout. The cap
// applies only to client-requested timeouts — the operator's configured
// default is honoured as-is. The effective timeout is returned too: it
// is the deadline budget the AIMD limiter measures headroom against.
func (s *Server) queryCtx(r *http.Request) (context.Context, context.CancelFunc, time.Duration, error) {
	timeout := s.cfg.DefaultTimeout
	if v := r.URL.Query().Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("bad timeout %q: %v", v, err)
		}
		if d <= 0 {
			return nil, nil, 0, fmt.Errorf("timeout must be positive, got %v", d)
		}
		if d > s.cfg.MaxTimeout {
			d = s.cfg.MaxTimeout
		}
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, timeout, nil
}

// reachPayload is the POST body of /v1/reach; GET requests carry the
// same fields as URL parameters. Lat/Lng are pointers so an explicit
// lat=0&lng=0 (a real coordinate) is distinguishable from an absent
// location.
type reachPayload struct {
	Locations []streach.Location `json:"locations"`
	Lat       *float64           `json:"lat"`
	Lng       *float64           `json:"lng"`
	Start     string             `json:"start"`
	Duration  string             `json:"dur"`
	Prob      float64            `json:"prob"`
	Algorithm string             `json:"algorithm"`
	Reverse   bool               `json:"reverse"`
	Partial   bool               `json:"partial"`
}

// handleReach answers reachability queries. GET parameters (or the POST
// JSON body): lat, lng (or locations for multi), start (Go duration
// since midnight, e.g. 11h or 11h30m), dur, prob, alg — "algorithm" in
// the JSON body — (auto|bounded|exhaustive|sequential), reverse,
// timeout, format (geojson). Omitting lat/lng asks the busiest segment
// at the start time, which makes smoke tests self-contained.
func (s *Server) handleReach(w http.ResponseWriter, r *http.Request) {
	var p reachPayload
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query()
		if q.Get("lat") != "" || q.Get("lng") != "" {
			lat, lng, err := parseFloatPair(q.Get("lat"), q.Get("lng"))
			if err != nil {
				s.badRequest(w, r, "%v", err)
				return
			}
			p.Lat, p.Lng = &lat, &lng
		}
		p.Start = q.Get("start")
		p.Duration = q.Get("dur")
		if v := q.Get("prob"); v != "" {
			var err error
			if p.Prob, err = strconv.ParseFloat(v, 64); err != nil {
				s.badRequest(w, r, "bad prob %q", v)
				return
			}
		}
		if p.Algorithm = q.Get("alg"); p.Algorithm == "" {
			p.Algorithm = q.Get("algorithm")
		}
		p.Reverse = q.Get("reverse") == "true" || q.Get("reverse") == "1"
		p.Partial = q.Get("partial") == "true" || q.Get("partial") == "1"
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&p); err != nil {
			s.badRequest(w, r, "bad JSON body: %v", err)
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		s.recordError(http.StatusMethodNotAllowed)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	start, err := parseDurationDefault(p.Start, 11*time.Hour)
	if err != nil {
		s.badRequest(w, r, "bad start: %v", err)
		return
	}
	dur, err := parseDurationDefault(p.Duration, 10*time.Minute)
	if err != nil {
		s.badRequest(w, r, "bad dur: %v", err)
		return
	}
	if p.Prob == 0 {
		p.Prob = 0.2
	}

	req := streach.Request{Start: start, Duration: dur, Prob: p.Prob}
	kind := "reach"
	switch {
	case len(p.Locations) > 1:
		req.Kind = streach.KindMulti
		req.Locations = p.Locations
		kind = "multi"
	case len(p.Locations) == 1:
		req.Kind = streach.KindReach
		req.Locations = p.Locations
	case p.Lat != nil && p.Lng != nil:
		req.Kind = streach.KindReach
		req.Locations = []streach.Location{{Lat: *p.Lat, Lng: *p.Lng}}
	case p.Lat != nil || p.Lng != nil:
		s.badRequest(w, r, "lat/lng must be given together")
		return
	default:
		// No location given: query the busiest segment at the start time.
		req.Kind = streach.KindReach
		req.Locations = []streach.Location{s.sys.BusiestLocation(start)}
	}
	if p.Reverse {
		if req.Kind == streach.KindMulti {
			s.badRequest(w, r, "reverse multi-location queries are not supported")
			return
		}
		req.Kind = streach.KindReverse
		kind = "reverse"
	}

	var opts []streach.Option
	if p.Algorithm != "" {
		alg, err := parseAlgorithm(p.Algorithm)
		if err != nil {
			s.badRequest(w, r, "%v", err)
			return
		}
		opts = append(opts, streach.WithAlgorithm(alg))
	}
	if p.Partial {
		opts = append(opts, streach.WithPartialResults(true))
	}

	if !s.allowClient(w, r) {
		return
	}
	ctx, cancel, timeout, err := s.queryCtx(r)
	if err != nil {
		s.badRequest(w, r, "%v", err)
		return
	}
	defer cancel()

	ok, level := s.admit()
	if !ok {
		s.reject(w, r)
		return
	}
	// Brownout level 2 forces aggressive partial semantics for clients
	// that opted in: a tight per-shard budget skips a slow shard instead
	// of waiting for it, trading coverage for bounded latency. The
	// forced flag joins the coalesce key — a budgeted answer must not be
	// shared with un-browned-out duplicates.
	forced := false
	if level >= brownoutForcePartial && p.Partial {
		forced = true
		s.vars.Add("brownout_forced_partial_total", 1)
		opts = append(opts, streach.WithShardBudget(timeout/4))
	}

	began := time.Now()
	var qerr error
	defer func() { s.finish(time.Since(began), timeout, qerr) }()
	key := s.coalesceKey(req, p.Algorithm, p.Partial)
	if forced {
		key += "|browned"
	}
	region, shared, err := s.flights.do(ctx, key, func() (*streach.Region, error) {
		return s.sys.Do(ctx, req, opts...)
	})
	if err != nil {
		qerr = err
		s.httpError(w, r, err)
		return
	}
	if shared {
		s.recordShared(kind)
	} else {
		s.record(kind, region.Metrics)
	}
	s.observe(kind, time.Since(began))
	s.maybePrefetch(start, dur, level)

	if wantsGeoJSON(r) {
		gj, err := region.GeoJSON()
		if err != nil {
			s.httpError(w, r, err)
			return
		}
		w.Header().Set("Content-Type", "application/geo+json")
		fmt.Fprint(w, gj)
		return
	}
	writeJSON(w, http.StatusOK, regionResponse(region))
}

// handleRoute answers route queries. GET parameters: from_lat, from_lng,
// to_lat, to_lng, depart (Go duration since midnight), alg
// (auto|freeflow), timeout.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", "GET")
		s.recordError(http.StatusMethodNotAllowed)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	if q.Get("from_lat") == "" || q.Get("to_lat") == "" {
		s.badRequest(w, r, "route needs from_lat/from_lng and to_lat/to_lng")
		return
	}
	fromLat, fromLng, err := parseFloatPair(q.Get("from_lat"), q.Get("from_lng"))
	if err != nil {
		s.badRequest(w, r, "from: %v", err)
		return
	}
	toLat, toLng, err := parseFloatPair(q.Get("to_lat"), q.Get("to_lng"))
	if err != nil {
		s.badRequest(w, r, "to: %v", err)
		return
	}
	depart, err := parseDurationDefault(q.Get("depart"), 8*time.Hour)
	if err != nil {
		s.badRequest(w, r, "bad depart: %v", err)
		return
	}
	var opts []streach.Option
	if alg := q.Get("alg"); alg != "" {
		a, err := parseAlgorithm(alg)
		if err != nil {
			s.badRequest(w, r, "%v", err)
			return
		}
		opts = append(opts, streach.WithAlgorithm(a))
	}

	if !s.allowClient(w, r) {
		return
	}
	ctx, cancel, timeout, err := s.queryCtx(r)
	if err != nil {
		s.badRequest(w, r, "%v", err)
		return
	}
	defer cancel()

	if ok, _ := s.admit(); !ok {
		s.reject(w, r)
		return
	}

	req := streach.RouteRequest(
		streach.Location{Lat: fromLat, Lng: fromLng},
		streach.Location{Lat: toLat, Lng: toLng},
		depart,
	)
	began := time.Now()
	var qerr error
	defer func() { s.finish(time.Since(began), timeout, qerr) }()
	region, shared, err := s.flights.do(ctx, s.coalesceKey(req, q.Get("alg"), false), func() (*streach.Region, error) {
		return s.sys.Do(ctx, req, opts...)
	})
	if err != nil {
		qerr = err
		s.httpError(w, r, err)
		return
	}
	if shared {
		s.recordShared("route")
	} else {
		s.record("route", region.Metrics)
	}
	s.observe("route", time.Since(began))
	writeJSON(w, http.StatusOK, map[string]any{
		"segments":       region.Route.SegmentIDs,
		"travel_time_ms": region.Route.TravelTime.Milliseconds(),
		"distance_km":    region.Route.DistanceKm,
	})
}

// coalesceKey canonicalises everything that determines a query's answer
// — kind, algorithm, the system's result-affecting engine options,
// locations, start, window, and probability — so only truly identical
// in-flight queries share an execution. The response format and timeout
// are deliberately absent: they shape the reply, not the answer. This
// mirrors streach's batch groupKey except that Prob is included, because
// the coalescer shares whole answers, not plans — keep the two in step
// when Request grows a field. The option bits are constant per server
// today (HTTP exposes no per-query ablation toggles), but folding them
// in keeps the key honest if that ever changes, exactly as the group-key
// fix did for batches.
// The system's live data version joins the key too: an ingest append or
// a compaction must stop new requests from latching onto an in-flight
// execution that started over the older data.
func (s *Server) coalesceKey(req streach.Request, alg string, partial bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%s|%t|%s|%s|%d|%d|%x", int(req.Kind), strings.ToLower(alg), partial,
		s.sys.DataVersionKey(),
		streach.OptionKeyBits(s.sys.Engine().Options()),
		req.Start, req.Duration, math.Float64bits(req.Prob))
	for _, l := range req.Locations {
		fmt.Fprintf(&b, "|%x,%x", math.Float64bits(l.Lat), math.Float64bits(l.Lng))
	}
	return b.String()
}

// regionResponse is the default JSON shape of a reachability answer.
// A partial-results answer additionally carries "degraded": true with
// the missing shards and the coverage fraction.
func regionResponse(region *streach.Region) map[string]any {
	m := region.Metrics
	resp := map[string]any{
		"segments":      region.SegmentIDs,
		"probabilities": region.Probabilities,
		"road_km":       region.RoadKm,
		"metrics": map[string]any{
			"elapsed_ms":    float64(m.Elapsed) / float64(time.Millisecond),
			"bound_ms":      float64(m.Bound) / float64(time.Millisecond),
			"verify_ms":     float64(m.Verify) / float64(time.Millisecond),
			"evaluated":     m.Evaluated,
			"page_reads":    m.PageReads,
			"page_hits":     m.PageHits,
			"max_region":    m.MaxRegion,
			"min_region":    m.MinRegion,
			"road_segments": m.RoadSegments,
		},
	}
	if d := region.Degraded; d != nil {
		resp["degraded"] = true
		resp["missing_shards"] = d.MissingShards
		resp["coverage"] = d.Coverage
	}
	return resp
}

func wantsGeoJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "geojson" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "geo+json")
}

func parseAlgorithm(s string) (streach.Algorithm, error) {
	switch strings.ToLower(s) {
	case "", "auto":
		return streach.AlgoAuto, nil
	case "bounded", "sqmb", "mqmb":
		return streach.AlgoBounded, nil
	case "exhaustive", "es":
		return streach.AlgoExhaustive, nil
	case "sequential", "seq":
		return streach.AlgoSequential, nil
	case "freeflow":
		return streach.AlgoFreeFlow, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func parseDurationDefault(s string, def time.Duration) (time.Duration, error) {
	if s == "" {
		return def, nil
	}
	return time.ParseDuration(s)
}

// parseFloatPair parses a lat/lng pair where both or neither must be
// present; absent yields (0, 0).
func parseFloatPair(a, b string) (float64, float64, error) {
	if a == "" && b == "" {
		return 0, 0, nil
	}
	if a == "" || b == "" {
		return 0, 0, fmt.Errorf("lat/lng must be given together")
	}
	x, err := strconv.ParseFloat(a, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad coordinate %q", a)
	}
	y, err := strconv.ParseFloat(b, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad coordinate %q", b)
	}
	return x, y, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
