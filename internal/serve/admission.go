package serve

import (
	"sync"
	"time"
)

// Adaptive admission: an AIMD concurrency limiter replaces the old
// static in-flight semaphore. The limit starts at Config.MaxInFlight
// (the ceiling) and adapts to the engine's observed behaviour: a
// request that blows (or gets close to) its deadline multiplies the
// limit down, a request that finishes with comfortable headroom adds a
// fractional slot back — the classic AIMD shape that converges on the
// concurrency the engine can actually sustain within its deadlines.
//
// Occupancy of the current limit drives a brownout ladder, shedding the
// cheapest work first:
//
//	level 1 (occupancy ≥ 0.55): shed prefetch/warm background work
//	level 2 (occupancy ≥ 0.85): force aggressive partial semantics for
//	        queries that opted in with ?partial=true (tight per-shard
//	        budget: a slow shard is skipped, not waited for)
//	level 3 (occupancy = 1):    reject with 429 and an honest
//	        Retry-After derived from the limiter state
const (
	brownoutShedWork     = 1
	brownoutForcePartial = 2

	brownoutShedOcc    = 0.55
	brownoutPartialOcc = 0.85

	// decreaseEvery rate-limits multiplicative decreases so one burst of
	// concurrent deadline failures counts as one congestion signal, not
	// a collapse to the floor.
	decreaseEvery = 100 * time.Millisecond
)

// aimdLimiter is the adaptive admission gate. All methods are safe for
// concurrent use.
type aimdLimiter struct {
	mu           sync.Mutex
	limit        float64 // current concurrency limit, in [min, max]
	min, max     float64
	inflight     int
	ewmaNS       float64 // EWMA of observed request latency
	lastDecrease time.Time
	static       bool // adaptation off: behave as the old fixed gate
}

func newLimiter(max, min int, static bool) *aimdLimiter {
	if min <= 0 {
		min = max / 4
	}
	if min < 1 {
		min = 1
	}
	if min > max {
		min = max
	}
	return &aimdLimiter{limit: float64(max), min: float64(min), max: float64(max), static: static}
}

// admit claims a slot. level is the brownout rung the request enters
// under (0 = none); !ok means the limit is full and the request must be
// rejected.
func (l *aimdLimiter) admit() (ok bool, level int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if float64(l.inflight+1) > l.limit {
		return false, 0
	}
	l.inflight++
	occ := float64(l.inflight) / l.limit
	switch {
	case occ >= brownoutPartialOcc:
		level = brownoutForcePartial
	case occ >= brownoutShedOcc:
		level = brownoutShedWork
	}
	return true, level
}

// release returns the slot and feeds the request's outcome back into
// the limit: a deadline failure (or latency past 3/4 of the deadline)
// is a congestion signal and multiplies the limit down; a completion
// under half the deadline adds 1/limit back (one whole slot per limit's
// worth of comfortable completions).
func (l *aimdLimiter) release(lat, deadline time.Duration, deadlineHit bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inflight--
	if l.ewmaNS == 0 {
		l.ewmaNS = float64(lat)
	} else {
		l.ewmaNS = 0.8*l.ewmaNS + 0.2*float64(lat)
	}
	if l.static || deadline <= 0 {
		return
	}
	headroom := float64(lat) / float64(deadline)
	switch {
	case deadlineHit || headroom >= 0.75:
		if time.Since(l.lastDecrease) >= decreaseEvery {
			l.limit *= 0.7
			if l.limit < l.min {
				l.limit = l.min
			}
			l.lastDecrease = time.Now()
		}
	case headroom <= 0.5:
		l.limit += 1 / l.limit
		if l.limit > l.max {
			l.limit = l.max
		}
	}
}

// releaseIdle returns the slot without latency feedback (legacy acquire
// paths and callers that never ran a query).
func (l *aimdLimiter) releaseIdle() {
	l.mu.Lock()
	l.inflight--
	l.mu.Unlock()
}

// snapshot reports the current limit and occupancy for metrics.
func (l *aimdLimiter) snapshot() (limit float64, inflight int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limit, l.inflight
}

// retryAfter derives an honest 429 Retry-After from the limiter state:
// with every slot busy, one slot frees per average latency per limit's
// worth of work, so a full occupancy's drain time is about one EWMA
// latency; deeper overload (inflight pinned at a shrunken limit) scales
// it up. Clamped to [1s, 30s] — the header has second granularity.
func (l *aimdLimiter) retryAfter() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := time.Second
	if l.ewmaNS > 0 && l.limit > 0 {
		occ := float64(l.inflight) / l.limit
		if occ < 1 {
			occ = 1
		}
		d = time.Duration(l.ewmaNS * occ)
	}
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	// Round up to whole seconds: Retry-After carries integer seconds and
	// rounding down would invite clients back early.
	return (d + time.Second - 1) / time.Second * time.Second
}
