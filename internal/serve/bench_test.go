package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"streach"
)

var (
	benchOnce sync.Once
	benchSys  *streach.System
	benchErr  error
)

func benchSystem(b *testing.B) *streach.System {
	b.Helper()
	benchOnce.Do(func() {
		benchSys, benchErr = streach.NewSystem(streach.CityConfig{
			OriginLat: 22.50, OriginLng: 114.00,
			Rows: 8, Cols: 8,
			SpacingMeters:   900,
			LocalFraction:   0.4,
			ResegmentMeters: 450,
			Seed:            61,
		}, streach.FleetConfig{Taxis: 80, Days: 6, Seed: 62}, streach.DefaultIndexConfig())
		if benchErr == nil {
			benchSys.Warm(11*time.Hour, 10*time.Minute)
		}
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys
}

// BenchmarkServeConcurrentDuplicates measures the serving layer under a
// duplicate-heavy concurrent burst: every in-flight client asks the same
// query, so the singleflight coalescer should collapse the burst onto a
// handful of engine executions. The distinct sub-benchmark is the
// contrast: every client sweeps a different probability, so nothing
// coalesces and each request pays for its own execution.
func BenchmarkServeConcurrentDuplicates(b *testing.B) {
	ts := httptest.NewServer(New(benchSystem(b), Config{}).Handler())
	defer ts.Close()

	get := func(b *testing.B, url string) {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d for %s", resp.StatusCode, url)
		}
	}
	// Warm every probability once so distinct vs duplicate compares query
	// execution, not cold caches.
	for p := 1; p <= 9; p++ {
		get(b, fmt.Sprintf("%s/v1/reach?start=11h&dur=10m&prob=0.%d", ts.URL, p))
	}

	b.Run("duplicates", func(b *testing.B) {
		url := ts.URL + "/v1/reach?start=11h&dur=10m&prob=0.2"
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				get(b, url)
			}
		})
	})
	b.Run("distinct", func(b *testing.B) {
		var ctr atomic.Int64
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				p := 1 + int(ctr.Add(1))%9
				get(b, fmt.Sprintf("%s/v1/reach?start=11h&dur=10m&prob=0.%d", ts.URL, p))
			}
		})
	})
}
