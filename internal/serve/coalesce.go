package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"streach"
)

// coalescer merges concurrent identical queries into one execution
// (singleflight): the first caller of a key becomes the leader and runs
// the query; callers that arrive while it is in flight wait for — and
// share — its answer. Under a burst of duplicate-heavy HTTP traffic the
// engine therefore sees each distinct query once per burst, the serving-
// layer mirror of DoBatch's group-and-plan scheduler.
//
// Answers are shared as pointers: a Region is read-only after Do returns,
// so leader and followers may serialise it concurrently.
type coalescer struct {
	mu       sync.Mutex
	inflight map[string]*flightEntry
}

// flightEntry is one in-flight query execution. region and err are
// written before done is closed; waiters read them only after <-done.
type flightEntry struct {
	done    chan struct{}
	waiters atomic.Int64
	region  *streach.Region
	err     error
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: map[string]*flightEntry{}}
}

// do runs exec once per key among concurrent callers, returning the
// shared answer and whether this caller rode another's execution. Two
// escape hatches keep one caller's context from poisoning another's:
// a waiter whose own ctx ends stops waiting and returns its ctx error,
// and a waiter whose leader failed with a context error (the leader's
// deadline, not the waiter's) retries — becoming the new leader if
// nobody beat it to the key.
func (c *coalescer) do(ctx context.Context, key string, exec func() (*streach.Region, error)) (region *streach.Region, shared bool, err error) {
	for {
		c.mu.Lock()
		if fe, ok := c.inflight[key]; ok {
			fe.waiters.Add(1)
			c.mu.Unlock()
			select {
			case <-fe.done:
				if isContextErr(fe.err) && ctx.Err() == nil {
					continue
				}
				return fe.region, true, fe.err
			case <-ctx.Done():
				return nil, true, ctx.Err()
			}
		}
		fe := &flightEntry{done: make(chan struct{})}
		c.inflight[key] = fe
		c.mu.Unlock()

		fe.region, fe.err = exec()
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(fe.done)
		return fe.region, false, fe.err
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
