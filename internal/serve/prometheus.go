package serve

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"streach"
)

// latencyBounds are the request-duration histogram bucket upper bounds in
// seconds (Prometheus `le` label values).
var latencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a dependency-free fixed-bucket latency histogram. Buckets
// store per-interval counts (cumulated at render time, as the Prometheus
// text format requires); all fields are atomics, so observation is
// lock-free under concurrent handlers.
type histogram struct {
	counts []atomic.Int64 // len(latencyBounds)+1; the last is +Inf
	sumNS  atomic.Int64
	n      atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latencyBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	h.counts[sort.SearchFloat64s(latencyBounds, d.Seconds())].Add(1)
	h.sumNS.Add(int64(d))
	h.n.Add(1)
}

// endpoints is the fixed label set of the per-endpoint histograms,
// matching the kind strings record() uses.
var endpoints = []string{"reach", "reverse", "multi", "route", "ingest"}

// writePrometheus renders the server's metrics in the Prometheus text
// exposition format: per-endpoint latency histograms, the batch-sharing
// and coalescing counters, and every cumulative expvar counter /metrics
// already serves as JSON.
func (s *Server) writePrometheus(w io.Writer) {
	fmt.Fprint(w, "# HELP streach_request_duration_seconds Query latency by endpoint.\n")
	fmt.Fprint(w, "# TYPE streach_request_duration_seconds histogram\n")
	for _, ep := range endpoints {
		h := s.hist[ep]
		var cum int64
		for i, b := range latencyBounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "streach_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				ep, strconv.FormatFloat(b, 'g', -1, 64), cum)
		}
		cum += h.counts[len(latencyBounds)].Load()
		fmt.Fprintf(w, "streach_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, cum)
		fmt.Fprintf(w, "streach_request_duration_seconds_sum{endpoint=%q} %g\n", ep, float64(h.sumNS.Load())/1e9)
		fmt.Fprintf(w, "streach_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.n.Load())
	}

	sh := s.sys.SharingStats()
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("streach_batch_groups_total",
		"DoBatch request groups that shared one plan.", sh.BatchGroups)
	counter("streach_batch_queries_coalesced_total",
		"Batch queries answered from another query's plan.", sh.QueriesCoalesced)
	counter("streach_batch_probe_sets_shared_total",
		"Probe start-set materialisations avoided by batch sharing.", sh.ProbeSetsShared)
	counter("streach_batch_con_rows_shared_total",
		"Con-Index row resolutions avoided by batch sharing.", sh.ConRowsShared)
	counter("streach_plan_cache_hits_total",
		"Queries answered from a cached cross-batch shared plan.", sh.PlanCacheHits)
	counter("streach_plan_cache_misses_total",
		"Plan-cache lookups that built a fresh plan.", sh.PlanCacheMisses)
	// Gauge aliases of the plan-cache counters plus the warm-plan count:
	// dashboards graphing cache effectiveness alongside the warm pipeline
	// read all three from one family.
	planGauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	planGauge("streach_plan_cache_hits",
		"Queries answered from a cached cross-batch shared plan.", sh.PlanCacheHits)
	planGauge("streach_plan_cache_misses",
		"Plan-cache lookups that built a fresh plan.", sh.PlanCacheMisses)
	planGauge("streach_plans_warmed",
		"Plans built proactively by the warm-plan pipeline (neither hits nor misses).", sh.PlansWarmed)

	// Sharded execution: one gauge/counter set per shard, labelled by
	// ordinal, so a scrape shows partition balance and where the
	// scatter-gather work actually lands. Absent on unsharded systems.
	if shards := s.sys.ShardStats(); len(shards) > 0 {
		fmt.Fprintf(w, "# HELP streach_shards Shard count of the sharded execution layer.\n")
		fmt.Fprintf(w, "# TYPE streach_shards gauge\nstreach_shards %d\n", len(shards))
		shardMetric := func(name, help, typ string, value func(streach.ShardStat) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
			for _, st := range shards {
				fmt.Fprintf(w, "%s{shard=\"%d\"} %g\n", name, st.Shard, value(st))
			}
		}
		shardMetric("streach_shard_segments",
			"Road segments owned by the shard's partition.", "gauge",
			func(st streach.ShardStat) float64 { return float64(st.Segments) })
		shardMetric("streach_shard_boundary_segments",
			"Owned segments bordering another shard (replicated metadata).", "gauge",
			func(st streach.ShardStat) float64 { return float64(st.BoundarySegments) })
		shardMetric("streach_shard_con_rows_total",
			"Con-Index adjacency rows routed through the shard's slice.", "counter",
			func(st streach.ShardStat) float64 { return float64(st.RowsFetched) })
		shardMetric("streach_shard_candidates_verified_total",
			"Candidates scatter-verified on the shard's ST-Index slice.", "counter",
			func(st streach.ShardStat) float64 { return float64(st.CandidatesVerified) })
		shardMetric("streach_shard_verify_seconds_total",
			"Wall-clock the shard spent in scatter verification.", "counter",
			func(st streach.ShardStat) float64 { return st.Verify.Seconds() })

		// Temporal sharding: the row layout (served slot ranges) and the
		// fallback counter. slot_shards stays 1 and the ranges span the
		// whole day on spatially-sharded systems, so dashboards need no
		// mode-specific queries.
		fmt.Fprintf(w, "# HELP streach_slot_shards Temporal shard rows of the sharded execution layer.\n")
		fmt.Fprintf(w, "# TYPE streach_slot_shards gauge\nstreach_slot_shards %d\n", s.sys.SlotShards())
		shardMetric("streach_shard_slot_lo",
			"First slot of the inclusive slot range the shard's row serves.", "gauge",
			func(st streach.ShardStat) float64 { return float64(st.SlotLo) })
		shardMetric("streach_shard_slot_hi",
			"Last slot of the inclusive slot range the shard's row serves.", "gauge",
			func(st streach.ShardStat) float64 { return float64(st.SlotHi) })
		counter("streach_plans_slot_fallback_total",
			"Sharded queries whose window outgrew its row's held slot range and ran unsharded.",
			s.sys.PlansSlotFallback())

		// Overload self-protection: per-shard breaker state plus the
		// cluster-wide hedge/breaker counters.
		if hs := s.sys.ShardHealth(); len(hs) > 0 {
			fmt.Fprintf(w, "# HELP streach_breaker_state Circuit-breaker state per shard (0=closed, 1=half_open, 2=open).\n")
			fmt.Fprintf(w, "# TYPE streach_breaker_state gauge\n")
			for _, h := range hs {
				v := 0
				switch h.Breaker {
				case "half_open":
					v = 1
				case "open":
					v = 2
				}
				fmt.Fprintf(w, "streach_breaker_state{shard=\"%d\"} %d\n", h.Shard, v)
			}
		}
		rs := s.sys.ResilienceStats()
		counter("streach_breaker_opens_total",
			"Circuit-breaker trips (closed/half-open to open).", rs.BreakerOpens)
		counter("streach_breaker_short_circuits_total",
			"Shard calls rejected by an open breaker.", rs.BreakerShortCircuits)
		counter("streach_hedges_total",
			"Hedged shard verification attempts launched.", rs.HedgesLaunched)
		counter("streach_hedge_wins_total",
			"Hedge attempts that finished before their primary.", rs.HedgeWins)
	}

	// Live ingestion: the index epoch, the delta layer's depth, and the
	// compaction history, so a dashboard sees delta depth grow between
	// compactions and the epoch step when one lands. Always rendered —
	// a frozen system just shows epoch 0 and an empty delta.
	ist := s.sys.IngestStats()
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("streach_index_epoch",
		"ST-Index epoch, bumped once per delta compaction.", float64(ist.Epoch))
	gauge("streach_index_data_version",
		"Live data version, bumped per ingest append batch and compaction.", float64(ist.DataVersion))
	gauge("streach_ingest_delta_dirty_keys",
		"(segment, slot) keys holding uncompacted delta observations.", float64(ist.DirtyKeys))
	gauge("streach_ingest_delta_pending_obs",
		"Delta observations not yet folded by a compaction.", float64(ist.PendingObs))
	gauge("streach_ingest_queue_len",
		"Updates waiting in the ingest queue.", float64(ist.QueueLen))
	gauge("streach_ingest_pending_speed_samples",
		"Con-Index speed samples buffered for the next fold (flush/compaction/cap).",
		float64(ist.PendingSpeedSamples))
	counter("streach_ingest_applied_total",
		"Live updates folded into the indexes.", ist.Applied)
	counter("streach_ingest_dropped_total",
		"Live updates rejected during apply (out-of-range fields).", ist.Dropped)
	counter("streach_ingest_backpressure_total",
		"Live updates refused at the queue (backpressure).", ist.Rejected)
	counter("streach_ingest_wal_errors_total",
		"WAL append failures (updates stayed live but not durable).", ist.WALErrors)
	degraded := 0.0
	if ist.DurabilityDegraded {
		degraded = 1
	}
	gauge("streach_durability_degraded",
		"1 while WAL appends are failing: accepted updates are live but not crash-durable.", degraded)
	gauge("streach_ingest_wal_segments",
		"Live WAL segment files awaiting retirement by a durable compaction.", float64(ist.WALSegments))
	counter("streach_ingest_compactions_total",
		"Delta compactions installed.", int64(ist.Compactions))
	counter("streach_ingest_background_compactions_total",
		"Incremental compaction cycles run by the background loop.", ist.BackgroundCompactions)
	counter("streach_ingest_background_compact_errors_total",
		"Background compaction cycles that failed (retried with backoff).", ist.BackgroundCompactErrs)
	gauge("streach_ingest_last_compact_pause_seconds",
		"Handle-table install pause of the last compaction.", ist.LastCompactPause.Seconds())

	// Adaptive admission: the live limit and occupancy, so dashboards see
	// the brownout ladder move before clients see 429s.
	if s.lim != nil {
		limit, inflight := s.lim.snapshot()
		fmt.Fprintf(w, "# HELP streach_admission_limit Current AIMD admission limit.\n")
		fmt.Fprintf(w, "# TYPE streach_admission_limit gauge\nstreach_admission_limit %g\n", limit)
		fmt.Fprintf(w, "# HELP streach_admission_inflight Admitted requests currently in flight.\n")
		fmt.Fprintf(w, "# TYPE streach_admission_inflight gauge\nstreach_admission_inflight %d\n", inflight)
	}

	// The cumulative expvar counters, one Prometheus counter each.
	var names []string
	vals := map[string]int64{}
	s.vars.Do(func(kv expvar.KeyValue) {
		if iv, ok := kv.Value.(*expvar.Int); ok {
			names = append(names, kv.Key)
			vals[kv.Key] = iv.Value()
		}
	})
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE streach_%s counter\nstreach_%s %d\n", name, name, vals[name])
	}
}
