package serve

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"runtime/debug"
	"time"

	"streach"
)

// Request identity and the outer middleware: every request gets an
// X-Request-ID (the client's, sanitised, or a fresh one), echoed on the
// response, included in error bodies and access-log lines, so a chaos
// failure seen by a client is attributable to one server-side log line.
// The same wrapper recovers handler panics into typed 500s — a panicking
// query must not take the serving process down.

type ctxKey int

const requestIDKey ctxKey = iota

// RequestID returns the request's ID ("" outside a server request).
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// newRequestID mints a 16-hex-char random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in serious trouble;
		// serve a constant rather than panicking in the ID path.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only if it is short and
// plain (letters, digits, dot, dash, underscore): anything else — header
// injection, log forgery, a 4 KB vanity string — is discarded and
// replaced with a generated ID.
func sanitizeRequestID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return ""
		}
	}
	return s
}

// statusWriter records the response status and whether anything was
// written, so the access log and the panic recovery know where the
// response stands.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(p)
}

// middleware is the outermost wrapper: request ID, access log, panic
// recovery.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rid := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if rid == "" {
			rid = newRequestID()
		}
		w.Header().Set("X-Request-ID", rid)
		r = r.WithContext(context.WithValue(r.Context(), requestIDKey, rid))
		sw := &statusWriter{ResponseWriter: w}
		began := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.vars.Add("panics_recovered_total", 1)
				s.logf("panic serving %s %s rid=%s: %v\n%s", r.Method, r.URL.Path, rid, p, debug.Stack())
				if !sw.wrote {
					s.recordError(http.StatusInternalServerError)
					writeJSON(sw, http.StatusInternalServerError, map[string]any{
						"error":      fmt.Sprintf("internal error: %v", p),
						"code":       streach.Internal.String(),
						"request_id": rid,
					})
				}
			}
			status := sw.status
			if !sw.wrote {
				status = http.StatusOK
			}
			s.logf("%s %s %d %s rid=%s", r.Method, r.URL.RequestURI(), status,
				time.Since(began).Round(time.Microsecond), rid)
		}()
		next.ServeHTTP(sw, r)
	})
}

// logf writes to the configured access logger; a nil logger disables
// logging (the test default).
func (s *Server) logf(format string, args ...any) {
	if s.cfg.AccessLog != nil {
		s.cfg.AccessLog.Printf(format, args...)
	}
}
