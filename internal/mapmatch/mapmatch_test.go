package mapmatch

import (
	"testing"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

func testNetwork(t *testing.T) *roadnet.Network {
	t.Helper()
	n, err := roadnet.Generate(roadnet.GenerateConfig{
		Origin:        geo.Point{Lat: 22.5, Lng: 114.0},
		Rows:          6,
		Cols:          6,
		SpacingMeters: 800,
		LocalFraction: 0.4,
		Seed:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// groundTruth simulates one taxi-day and synthesizes its raw GPS stream.
func groundTruth(t *testing.T, n *roadnet.Network, noise float64) (*traj.MatchedTrajectory, *traj.Trajectory) {
	t.Helper()
	ds, err := traj.Simulate(n, traj.SimConfig{
		Taxis: 1, Days: 1, Profile: traj.FlatSpeedProfile(), Seed: 7,
		ActiveStartSec: 9 * 3600, ActiveEndSec: 10 * 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Matched) == 0 {
		t.Fatal("simulation produced nothing")
	}
	mt := &ds.Matched[0]
	raw := traj.RawFromMatched(n, mt, ds.DayStart(mt.Day), 30*time.Second, noise, 11)
	return mt, raw
}

func TestMatchRecoversGroundTruth(t *testing.T) {
	n := testNetwork(t)
	truth, raw := groundTruth(t, n, 10)
	m := New(n, DefaultConfig())
	got, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visits) == 0 {
		t.Fatal("matcher returned no visits")
	}
	// Count how many ground-truth visits appear in the matched output
	// (same segment or its twin; GPS cannot always disambiguate direction
	// on two-way roads).
	matched := map[roadnet.SegmentID]bool{}
	for _, v := range got.Visits {
		matched[v.Segment] = true
	}
	hit := 0
	for _, v := range truth.Visits {
		tw := n.Segment(v.Segment).Reverse
		if matched[v.Segment] || (tw >= 0 && matched[tw]) {
			hit++
		}
	}
	recall := float64(hit) / float64(len(truth.Visits))
	if recall < 0.8 {
		t.Fatalf("matcher recall %.2f too low (%d of %d ground-truth visits)", recall, hit, len(truth.Visits))
	}
}

func TestMatchOutputIsConnected(t *testing.T) {
	n := testNetwork(t)
	_, raw := groundTruth(t, n, 15)
	m := New(n, DefaultConfig())
	got, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got.Visits); i++ {
		prev, cur := got.Visits[i-1], got.Visits[i]
		if cur.EnterMs-prev.ExitMs > 1000 {
			continue // trip gap
		}
		connected := prev.Segment == cur.Segment
		for _, s := range n.Outgoing(prev.Segment) {
			if s == cur.Segment {
				connected = true
			}
		}
		if !connected {
			t.Fatalf("visit %d: %d -> %d not adjacent", i, prev.Segment, cur.Segment)
		}
	}
}

func TestMatchHighNoiseStillWorks(t *testing.T) {
	n := testNetwork(t)
	truth, raw := groundTruth(t, n, 40)
	m := New(n, DefaultConfig())
	got, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visits) < len(truth.Visits)/3 {
		t.Fatalf("high-noise match collapsed: %d visits vs truth %d", len(got.Visits), len(truth.Visits))
	}
}

func TestMatchEmptyTrajectory(t *testing.T) {
	n := testNetwork(t)
	m := New(n, DefaultConfig())
	got, err := m.Match(&traj.Trajectory{Taxi: 1, Day: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visits) != 0 {
		t.Fatal("empty trajectory should match to nothing")
	}
}

func TestMatchDropsOffRoadPoints(t *testing.T) {
	n := testNetwork(t)
	m := New(n, DefaultConfig())
	// A point far outside the city.
	far := geo.Offset(geo.Point{Lat: 22.5, Lng: 114.0}, -50000, -50000)
	tr := &traj.Trajectory{Taxi: 1, Day: 0, Points: []traj.GPSPoint{
		{Pos: far, Time: time.Date(2014, 11, 1, 9, 0, 0, 0, time.UTC), Speed: 5},
	}}
	got, err := m.Match(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visits) != 0 {
		t.Fatal("an off-road point should produce no visits")
	}
}

func TestMatchSplitsAtTimeGaps(t *testing.T) {
	n := testNetwork(t)
	m := New(n, DefaultConfig())
	base := time.Date(2014, 11, 1, 9, 0, 0, 0, time.UTC)
	// Two points on one road, a huge gap, two points on a distant road.
	segA := n.Segment(0)
	pA := segA.Midpoint()
	farSeg := n.Segment(roadnet.SegmentID(n.NumSegments() - 1))
	pB := farSeg.Midpoint()
	tr := &traj.Trajectory{Taxi: 1, Day: 0, Points: []traj.GPSPoint{
		{Pos: pA, Time: base, Speed: 5},
		{Pos: pA, Time: base.Add(30 * time.Second), Speed: 5},
		{Pos: pB, Time: base.Add(30 * time.Minute), Speed: 5},
		{Pos: pB, Time: base.Add(30*time.Minute + 30*time.Second), Speed: 5},
	}}
	got, err := m.Match(tr)
	if err != nil {
		t.Fatal(err)
	}
	// The output must not contain a fabricated route between the two
	// clusters: total visits should be small (a couple per cluster).
	if len(got.Visits) > 6 {
		t.Fatalf("gap should split trips, got %d visits (route fabricated?)", len(got.Visits))
	}
}

func TestMatchRejectsInvalidTrajectory(t *testing.T) {
	n := testNetwork(t)
	m := New(n, DefaultConfig())
	now := time.Now()
	tr := &traj.Trajectory{Points: []traj.GPSPoint{
		{Pos: geo.Point{Lat: 22.5, Lng: 114}, Time: now},
		{Pos: geo.Point{Lat: 22.5, Lng: 114}, Time: now.Add(-time.Hour)},
	}}
	if _, err := m.Match(tr); err == nil {
		t.Fatal("invalid trajectory should error")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	n := testNetwork(t)
	m := New(n, Config{}) // all zero: defaults must kick in
	_, raw := groundTruth(t, n, 10)
	got, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Visits) == 0 {
		t.Fatal("zero-config matcher should still work via defaults")
	}
}

func TestMatchPreservesIdentity(t *testing.T) {
	n := testNetwork(t)
	_, raw := groundTruth(t, n, 10)
	raw.Taxi = 42
	raw.Day = 7
	m := New(n, DefaultConfig())
	got, err := m.Match(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Taxi != 42 || got.Day != 7 {
		t.Fatalf("identity lost: taxi=%d day=%d", got.Taxi, got.Day)
	}
}
