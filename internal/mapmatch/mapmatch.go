// Package mapmatch projects raw GPS trajectories onto the road network
// (the pre-processing map-matching step, thesis §3.1). The paper uses the
// interactive-voting map matcher of Yuan et al. [29]; this implementation
// substitutes the standard HMM formulation (Gaussian emission over GPS
// error, route-vs-geodesic transition plausibility, Viterbi decoding),
// which satisfies the same contract: raw (lat, lng, t, speed) points in,
// a connected sequence of (segment, enter, exit, speed) visits out.
package mapmatch

import (
	"fmt"
	"math"
	"time"

	"streach/internal/geo"
	"streach/internal/roadnet"
	"streach/internal/traj"
)

// Config tunes the matcher.
type Config struct {
	// SigmaMeters is the GPS error standard deviation (emission model).
	SigmaMeters float64
	// CandidateRadius bounds the candidate search around each point.
	CandidateRadius float64
	// MaxCandidates caps candidates per point.
	MaxCandidates int
	// Beta scales the transition penalty on |routeDist - geodesicDist|.
	Beta float64
	// TripGap splits a trajectory into independent trips when consecutive
	// points are further apart in time.
	TripGap time.Duration
}

// DefaultConfig returns settings suitable for ~30 s, ~15 m-noise GPS data.
func DefaultConfig() Config {
	return Config{
		SigmaMeters:     20,
		CandidateRadius: 120,
		MaxCandidates:   6,
		Beta:            0.015,
		TripGap:         3 * time.Minute,
	}
}

// Matcher matches raw trajectories onto a fixed network.
type Matcher struct {
	net *roadnet.Network
	cfg Config
}

// New returns a matcher over the network.
func New(net *roadnet.Network, cfg Config) *Matcher {
	if cfg.SigmaMeters <= 0 {
		cfg.SigmaMeters = 20
	}
	if cfg.CandidateRadius <= 0 {
		cfg.CandidateRadius = 120
	}
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = 6
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 0.015
	}
	if cfg.TripGap <= 0 {
		cfg.TripGap = 3 * time.Minute
	}
	return &Matcher{net: net, cfg: cfg}
}

// candidate is one (segment, projection) hypothesis for a GPS point.
type candidate struct {
	seg   roadnet.SegmentID
	dist  float64 // projection distance, metres
	along float64 // arc length along the segment, metres
}

// Match projects tr onto the network. Points with no candidate within
// CandidateRadius are dropped; time gaps larger than TripGap split the
// output into independent trips concatenated in one MatchedTrajectory.
func (m *Matcher) Match(tr *traj.Trajectory) (*traj.MatchedTrajectory, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("mapmatch: %w", err)
	}
	out := &traj.MatchedTrajectory{Taxi: tr.Taxi, Day: tr.Day}
	var trip []traj.GPSPoint
	flush := func() error {
		if len(trip) == 0 {
			return nil
		}
		visits, err := m.matchTrip(trip)
		if err != nil {
			return err
		}
		out.Visits = append(out.Visits, visits...)
		trip = trip[:0]
		return nil
	}
	for i, p := range tr.Points {
		if i > 0 && p.Time.Sub(tr.Points[i-1].Time) > m.cfg.TripGap {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		trip = append(trip, p)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// matchTrip runs Viterbi over one gap-free run of points.
func (m *Matcher) matchTrip(pts []traj.GPSPoint) ([]traj.Visit, error) {
	// Candidate generation; skip points with no nearby road.
	type step struct {
		pt    traj.GPSPoint
		cands []candidate
	}
	var steps []step
	for _, p := range pts {
		cands := m.candidates(p.Pos)
		if len(cands) == 0 {
			continue
		}
		steps = append(steps, step{pt: p, cands: cands})
	}
	if len(steps) == 0 {
		return nil, nil
	}

	// Viterbi.
	const minLog = -1e18
	prevScore := make([]float64, len(steps[0].cands))
	for i, c := range steps[0].cands {
		prevScore[i] = m.emission(c.dist)
	}
	back := make([][]int, len(steps)) // back[t][j] = best predecessor index
	for t := 1; t < len(steps); t++ {
		cur := steps[t]
		prev := steps[t-1]
		gc := geo.Distance(prev.pt.Pos, cur.pt.Pos)
		// Route distances from every previous candidate to every current
		// candidate, via one bounded expansion per previous candidate.
		routeDist := m.routeDistances(prev.cands, cur.cands, gc)
		score := make([]float64, len(cur.cands))
		back[t] = make([]int, len(cur.cands))
		for j, cj := range cur.cands {
			best := minLog
			bestI := 0
			for i := range prev.cands {
				rd := routeDist[i][j]
				tr := m.transition(gc, rd)
				if s := prevScore[i] + tr; s > best {
					best = s
					bestI = i
				}
			}
			score[j] = best + m.emission(cj.dist)
			back[t][j] = bestI
		}
		prevScore = score
	}

	// Backtrack the best candidate chain.
	bestJ := 0
	for j := 1; j < len(prevScore); j++ {
		if prevScore[j] > prevScore[bestJ] {
			bestJ = j
		}
	}
	chain := make([]candidate, len(steps))
	times := make([]time.Time, len(steps))
	speeds := make([]float64, len(steps))
	j := bestJ
	for t := len(steps) - 1; t >= 0; t-- {
		chain[t] = steps[t].cands[j]
		times[t] = steps[t].pt.Time
		speeds[t] = steps[t].pt.Speed
		if t > 0 {
			j = back[t][j]
		}
	}
	return m.chainToVisits(chain, times, speeds), nil
}

// candidates returns candidate segments for a GPS point, ordered by exact
// projection distance.
func (m *Matcher) candidates(p geo.Point) []candidate {
	ids := m.net.CandidatesNear(p, m.cfg.CandidateRadius, m.cfg.MaxCandidates*3)
	var out []candidate
	for _, id := range ids {
		seg := m.net.Segment(id)
		_, d, along := seg.Shape.Project(p)
		if d > m.cfg.CandidateRadius {
			continue
		}
		out = append(out, candidate{seg: id, dist: d, along: along})
	}
	// Partial selection sort: keep the MaxCandidates closest.
	for i := 0; i < len(out) && i < m.cfg.MaxCandidates; i++ {
		min := i
		for k := i + 1; k < len(out); k++ {
			if out[k].dist < out[min].dist {
				min = k
			}
		}
		out[i], out[min] = out[min], out[i]
	}
	if len(out) > m.cfg.MaxCandidates {
		out = out[:m.cfg.MaxCandidates]
	}
	return out
}

// emission is the log emission probability for a projection distance.
func (m *Matcher) emission(dist float64) float64 {
	z := dist / m.cfg.SigmaMeters
	return -0.5 * z * z
}

// transition is the log transition probability given the geodesic distance
// between points and the route distance between candidates.
func (m *Matcher) transition(gc, route float64) float64 {
	if math.IsInf(route, 1) {
		return -1e18
	}
	return -m.cfg.Beta * math.Abs(route-gc)
}

// routeDistances returns route[i][j]: the on-network distance from
// prev.cands[i] to cur.cands[j], measured between projection points.
func (m *Matcher) routeDistances(prev, cur []candidate, gc float64) [][]float64 {
	budget := gc*4 + 1000
	out := make([][]float64, len(prev))
	// Index current candidates by segment for O(1) hit tests.
	curBySeg := map[roadnet.SegmentID][]int{}
	for j, c := range cur {
		curBySeg[c.seg] = append(curBySeg[c.seg], j)
	}
	for i, pc := range prev {
		row := make([]float64, len(cur))
		for j := range row {
			row[j] = math.Inf(1)
		}
		// Same segment, moving forward: direct along-segment distance.
		for _, j := range curBySeg[pc.seg] {
			if cur[j].along >= pc.along {
				row[j] = cur[j].along - pc.along
			}
		}
		// Expand over successors. Expansion costs count whole segments;
		// adjust ends by the projections' offsets.
		segLen := m.net.Segment(pc.seg).Length
		remainder := segLen - pc.along // metres left on the source segment
		m.net.Expand(pc.seg, budget+segLen, m.net.DistanceWeight(), func(id roadnet.SegmentID, cost float64) bool {
			if id == pc.seg {
				return true
			}
			// cost includes the full source segment and the full target
			// segment; replace them with the partial lengths.
			for _, j := range curBySeg[id] {
				d := cost - segLen + remainder - m.net.Segment(id).Length + cur[j].along
				if d < 0 {
					d = 0
				}
				if d < row[j] {
					row[j] = d
				}
			}
			return true
		})
		out[i] = row
	}
	return out
}

// chainToVisits converts a matched candidate chain into connected segment
// visits, routing between consecutive candidates and splitting each leg's
// time across its segments proportionally to length. Visit times are
// stored relative to the UTC midnight of the chain's first point.
func (m *Matcher) chainToVisits(chain []candidate, times []time.Time, speeds []float64) []traj.Visit {
	dayStart := times[0].UTC().Truncate(24 * time.Hour)
	toMs := func(t time.Time) int32 { return int32(t.Sub(dayStart).Milliseconds()) }
	var visits []traj.Visit
	appendVisit := func(seg roadnet.SegmentID, enter, exit time.Time, speed float64) {
		// Merge with the previous visit when it is the same segment.
		if n := len(visits); n > 0 && visits[n-1].Segment == seg {
			if ms := toMs(exit); ms > visits[n-1].ExitMs {
				visits[n-1].ExitMs = ms
			}
			return
		}
		visits = append(visits, traj.Visit{Segment: seg, EnterMs: toMs(enter), ExitMs: toMs(exit), Speed: float32(speed)})
	}

	appendVisit(chain[0].seg, times[0], times[0], speeds[0])
	for t := 1; t < len(chain); t++ {
		a, b := chain[t-1], chain[t]
		legStart, legEnd := times[t-1], times[t]
		speed := (speeds[t-1] + speeds[t]) / 2
		if a.seg == b.seg {
			appendVisit(a.seg, legStart, legEnd, speed)
			continue
		}
		path, _, ok := m.net.ShortestPath(a.seg, b.seg, m.net.DistanceWeight())
		if !ok || len(path) == 0 {
			// Disconnected hypothesis (shouldn't survive Viterbi, but GPS
			// outages can cause it): restart at b.
			appendVisit(b.seg, legEnd, legEnd, speed)
			continue
		}
		// Length-proportional time split across the leg's segments.
		var totalLen float64
		for _, s := range path {
			totalLen += m.net.Segment(s).Length
		}
		if totalLen <= 0 {
			totalLen = 1
		}
		legDur := legEnd.Sub(legStart)
		cursor := legStart
		for _, s := range path {
			frac := m.net.Segment(s).Length / totalLen
			segDur := time.Duration(float64(legDur) * frac)
			exit := cursor.Add(segDur)
			appendVisit(s, cursor, exit, speed)
			cursor = exit
		}
	}
	return visits
}
