package streach

import (
	"context"
	"errors"
	"fmt"

	"streach/internal/xerr"
)

// ErrorCode classifies a query failure. Codes are coarse on purpose:
// they are the contract the serving layer maps to HTTP statuses and the
// axis operators alert on, while the wrapped error keeps the detail.
type ErrorCode int

const (
	// CodeUnknown is the zero value: the error carries no
	// classification (foreign errors, raw context errors).
	CodeUnknown ErrorCode = iota
	// InvalidRequest: the request itself can never succeed — bad
	// probability or window, missing locations, no road near the query
	// point, an algorithm/kind pairing that does not exist.
	InvalidRequest
	// Timeout: a deadline expired — the caller's context, a
	// WithDeadlineBudget, or a per-shard budget.
	Timeout
	// Overloaded: the system shed the request under admission control.
	Overloaded
	// ShardFailure: one or more shards of a scatter-gather query
	// failed (error, panic, or injected fault) and the query was not
	// running in partial-results mode.
	ShardFailure
	// CorruptData: persisted or in-flight index data failed validation
	// (checksum mismatch, undecodable blob).
	CorruptData
	// Internal: an invariant was violated — a recovered panic or a bug.
	Internal
)

// String names the code for logs and error bodies.
func (c ErrorCode) String() string {
	switch c {
	case InvalidRequest:
		return "invalid_request"
	case Timeout:
		return "timeout"
	case Overloaded:
		return "overloaded"
	case ShardFailure:
		return "shard_failure"
	case CorruptData:
		return "corrupt_data"
	case Internal:
		return "internal"
	}
	return "unknown"
}

// Error is the typed failure Do and DoBatch return: a code for
// dispatch, the operation that failed, and the underlying cause for
// detail. errors.Is/As see through it (Unwrap), so existing checks
// against context.DeadlineExceeded or sentinel errors keep working.
type Error struct {
	// Code classifies the failure.
	Code ErrorCode
	// Op is the failing operation ("reach", "multi", "do", ...).
	Op string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *Error) Error() string {
	if e.Err != nil {
		return e.Err.Error()
	}
	return fmt.Sprintf("streach: %s: %s", e.Op, e.Code)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// CodeOf extracts the ErrorCode from any error: a *streach.Error
// anywhere in the chain wins, then an internal classification mark,
// then the context sentinels. Unclassifiable errors report CodeUnknown.
func CodeOf(err error) ErrorCode {
	if err == nil {
		return CodeUnknown
	}
	var e *Error
	if errors.As(err, &e) {
		return e.Code
	}
	if c := codeOfKind(xerr.KindOf(err)); c != CodeUnknown {
		return c
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return Timeout
	}
	return CodeUnknown
}

// codeOfKind translates the internal packages' classification marks
// into public codes.
func codeOfKind(k xerr.Kind) ErrorCode {
	switch k {
	case xerr.KindInvalid:
		return InvalidRequest
	case xerr.KindTimeout:
		return Timeout
	case xerr.KindOverloaded:
		return Overloaded
	case xerr.KindShardFailure:
		return ShardFailure
	case xerr.KindCorrupt:
		return CorruptData
	case xerr.KindInternal:
		return Internal
	}
	return CodeUnknown
}

// wrapError classifies err and wraps it into a *Error at the API
// boundary. Raw context errors pass through unwrapped — DoBatch
// documents that unfinished requests carry ctx.Err() itself, and a
// cancelled caller wants the sentinel, not a taxonomy entry. An error
// that is already a *Error passes through untouched.
func wrapError(op string, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	if err == context.Canceled || err == context.DeadlineExceeded {
		return err
	}
	code := codeOfKind(xerr.KindOf(err))
	if code == CodeUnknown {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			code = Timeout
		case errors.Is(err, context.Canceled):
			// A wrapped cancellation (not the bare sentinel) is still a
			// cancellation; leave it unclassified rather than inventing
			// a code.
			return err
		default:
			code = Internal
		}
	}
	return &Error{Code: code, Op: op, Err: err}
}

// errInvalid builds a typed InvalidRequest error directly (facade-level
// request validation).
func errInvalid(op, format string, args ...any) error {
	return &Error{Code: InvalidRequest, Op: op, Err: fmt.Errorf(format, args...)}
}
