package streach

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

var (
	cacheSysOnce sync.Once
	cacheSys     *System
	cacheSysErr  error
)

// cacheSystem is a dedicated system with the cross-batch plan cache on
// (the shared fixture disables it — see smallSystem).
func cacheSystem(t *testing.T) *System {
	t.Helper()
	base := smallSystem(t)
	cacheSysOnce.Do(func() {
		idx := DefaultIndexConfig()
		idx.PlanCache = 8
		cacheSys, cacheSysErr = NewSystemFromData(base.Network(), base.Dataset(), idx)
	})
	if cacheSysErr != nil {
		t.Fatal(cacheSysErr)
	}
	return cacheSys
}

// TestPlanCacheCrossBatch: a second batch with the same group key must
// ride the first batch's plan — counted as a cache hit — and still
// answer bit-identically to independent execution.
func TestPlanCacheCrossBatch(t *testing.T) {
	s := cacheSystem(t)
	loc := s.BusiestLocation(11 * time.Hour)
	var reqs []Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.1+0.1*float64(i)))
	}
	before := s.SharingStats()
	first := s.DoBatch(context.Background(), reqs)
	second := s.DoBatch(context.Background(), reqs)
	after := s.SharingStats()
	if after.PlanCacheHits <= before.PlanCacheHits {
		t.Fatalf("no plan-cache hit across batches: %+v -> %+v", before, after)
	}
	// The cached answers must match both the first batch and independent
	// execution.
	independent := s.DoBatch(context.Background(), reqs, WithBatchSharing(false))
	for i := range reqs {
		for _, r := range []BatchResult{first[i], second[i], independent[i]} {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
		}
		if !reflect.DeepEqual(second[i].Region.SegmentIDs, independent[i].Region.SegmentIDs) ||
			!reflect.DeepEqual(second[i].Region.Probabilities, independent[i].Region.Probabilities) {
			t.Fatalf("request %d: cached answer differs from independent execution", i)
		}
	}
}

// TestPlanCacheDoPath: single Do calls share plans across calls too.
func TestPlanCacheDoPath(t *testing.T) {
	s := cacheSystem(t)
	loc := s.BusiestLocation(11 * time.Hour)
	req := ReverseRequest(loc, 11*time.Hour+5*time.Minute, 10*time.Minute, 0.2)
	before := s.SharingStats()
	want, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	after := s.SharingStats()
	if after.PlanCacheHits <= before.PlanCacheHits {
		t.Fatalf("repeat Do missed the plan cache: %+v -> %+v", before, after)
	}
	if !reflect.DeepEqual(got.SegmentIDs, want.SegmentIDs) || !reflect.DeepEqual(got.Probabilities, want.Probabilities) {
		t.Fatal("cached answer differs")
	}
}

// TestGroupKeyFoldsEngineOptions is the regression test for the
// group-key bug: requests that differ in a result-affecting per-query
// option (VerifyAll, EarlyStop, NoVisitedSet, NoOverlapFilter) must not
// share a plan — in a batch group or across the plan cache — while
// cost-only options (VerifyWorkers) still share.
func TestGroupKeyFoldsEngineOptions(t *testing.T) {
	req := ReachRequest(Location{Lat: 22.5, Lng: 114.0}, 11*time.Hour, 10*time.Minute, 0.2)
	base := queryOptions{}
	keyOf := func(qo queryOptions) string { return groupKey(req, qo) }

	va := base
	va.engine.VerifyAll = true
	es := base
	es.engine.EarlyStop = true
	nv := base
	nv.engine.NoVisitedSet = true
	nf := base
	nf.engine.NoOverlapFilter = true
	for name, qo := range map[string]queryOptions{
		"verify-all": va, "early-stop": es, "no-visited": nv, "no-overlap": nf,
	} {
		if keyOf(qo) == keyOf(base) {
			t.Fatalf("%s: option not folded into the group key", name)
		}
	}
	vw := base
	vw.engine.VerifyWorkers = 7
	if keyOf(vw) != keyOf(base) {
		t.Fatal("VerifyWorkers changed the group key; it only affects cost, not results")
	}
}

// TestGroupKeyOptionsEndToEnd: with the cache on, a VerifyAll query
// right after a default query must not reuse the default plan — the two
// answers differ in which segments carry verified probabilities.
func TestGroupKeyOptionsEndToEnd(t *testing.T) {
	s := cacheSystem(t)
	loc := s.BusiestLocation(11 * time.Hour)
	req := ReachRequest(loc, 11*time.Hour+10*time.Minute, 10*time.Minute, 0.05)
	def, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.Do(context.Background(), req, WithVerifyAll(true))
	if err != nil {
		t.Fatal(err)
	}
	// Independent executions as ground truth.
	wantDef, err := s.Do(context.Background(), req, WithBatchSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	wantAll, err := s.Do(context.Background(), req, WithVerifyAll(true), WithBatchSharing(false))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.Probabilities, wantDef.Probabilities) {
		t.Fatal("default-policy answer corrupted by option-crossing plan share")
	}
	if !reflect.DeepEqual(all.Probabilities, wantAll.Probabilities) {
		t.Fatal("VerifyAll answer corrupted by option-crossing plan share")
	}
	unverifiedDef := 0
	for _, p := range wantDef.Probabilities {
		if p < 0 {
			unverifiedDef++
		}
	}
	for _, p := range wantAll.Probabilities {
		if p < 0 {
			t.Fatal("VerifyAll result carries unverified segments; the policies were not distinguished")
		}
	}
	if unverifiedDef == 0 {
		t.Skip("default policy verified everything on this world; option split not observable")
	}
}

// TestPlanCacheInvalidation: Close and re-sharding flush the cache.
func TestPlanCacheInvalidation(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = 8
	s, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	loc := base.BusiestLocation(11 * time.Hour)
	if _, err := s.Do(context.Background(), ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)); err != nil {
		t.Fatal(err)
	}
	if s.plans.len() == 0 {
		t.Fatal("plan not parked in the cache")
	}
	if err := s.Shard(2); err != nil {
		t.Fatal(err)
	}
	if s.plans.len() != 0 {
		t.Fatal("re-sharding must flush the plan cache")
	}
	if _, err := s.Do(context.Background(), ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)); err != nil {
		t.Fatal(err)
	}
	if s.plans.len() == 0 {
		t.Fatal("sharded plan not parked in the cache")
	}
}

// TestPlanCacheEviction: the LRU respects its capacity.
func TestPlanCacheEviction(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = 2
	s, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	loc := base.BusiestLocation(11 * time.Hour)
	for i := 0; i < 4; i++ {
		req := ReachRequest(loc, 11*time.Hour+time.Duration(i)*5*time.Minute, 10*time.Minute, 0.2)
		if _, err := s.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.plans.len(); got > 2 {
		t.Fatalf("cache holds %d plans, capacity 2", got)
	}
}

// TestPlanCacheGrow: EnableWarmPlanning must grow the cache to hold
// what it warms — warming N shapes into a smaller LRU would evict its
// own work.
func TestPlanCacheGrow(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = 2
	s, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	loc := base.BusiestLocation(11 * time.Hour)
	for i := 0; i < 4; i++ {
		req := ReachRequest(loc, 11*time.Hour+time.Duration(i)*5*time.Minute, 10*time.Minute, 0.2)
		if _, err := s.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	s.plans.clear()
	s.EnableWarmPlanning(8)
	s.warmWG.Wait()
	if got := s.plans.len(); got != 4 {
		t.Fatalf("grown cache holds %d plans after warming 4 shapes, want 4", got)
	}
	// grow never shrinks.
	s.plans.grow(1)
	s.plans.mu.Lock()
	cap := s.plans.cap
	s.plans.mu.Unlock()
	if cap != 8 {
		t.Fatalf("cap = %d after grow(1), want 8", cap)
	}
}
