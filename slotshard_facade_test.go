package streach

import (
	"context"
	"sync"
	"testing"
	"time"
)

var (
	slotShardedOnce sync.Once
	slotShardedSys  *System
	hybridSys       *System
	slotShardedErr  error
)

// slotShardedSystems builds the temporal-sharding fixtures over the
// shared world: a pure temporal K=4 system (one spatial shard, four
// slot rows) and a hybrid 2 grid x 2 slots system. Plan cache off so
// every Do really runs the routed path.
func slotShardedSystems(t *testing.T) (pure, hybrid *System) {
	t.Helper()
	base := smallSystem(t)
	slotShardedOnce.Do(func() {
		idx := DefaultIndexConfig()
		idx.PlanCache = -1
		idx.SlotShards = 4
		slotShardedSys, slotShardedErr = NewSystemFromData(base.Network(), base.Dataset(), idx)
		if slotShardedErr != nil {
			return
		}
		idx = DefaultIndexConfig()
		idx.PlanCache = -1
		idx.Shards = 2
		idx.SlotShards = 2
		hybridSys, slotShardedErr = NewSystemFromData(base.Network(), base.Dataset(), idx)
	})
	if slotShardedErr != nil {
		t.Fatal(slotShardedErr)
	}
	return slotShardedSys, hybridSys
}

// TestSlotShardedEquivalence pins the tentpole acceptance criterion:
// slot-sharded (pure temporal and hybrid grid x slots) answers every
// request kind and algorithm bit-identically to unsharded execution at
// four thresholds. K=1 (the trivial partition) is covered by Shard's
// delegation test below.
func TestSlotShardedEquivalence(t *testing.T) {
	base := smallSystem(t)
	pure, hybrid := slotShardedSystems(t)
	if pure.Shards() != 4 || pure.SlotShards() != 4 {
		t.Fatalf("pure temporal: Shards=%d SlotShards=%d, want 4/4", pure.Shards(), pure.SlotShards())
	}
	if hybrid.Shards() != 4 || hybrid.SlotShards() != 2 {
		t.Fatalf("hybrid: Shards=%d SlotShards=%d, want 4/2", hybrid.Shards(), hybrid.SlotShards())
	}
	loc := base.BusiestLocation(11 * time.Hour)
	multi := []Location{loc, {Lat: loc.Lat + 0.01, Lng: loc.Lng + 0.01}}

	cases := []struct {
		name string
		req  Request
		opts []Option
	}{
		{"reach", ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0), nil},
		{"reach-es", ReachRequest(loc, 11*time.Hour, 8*time.Minute, 0), []Option{WithAlgorithm(AlgoExhaustive)}},
		{"reach-verifyall", ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0), []Option{WithVerifyAll(true)}},
		{"reverse", ReverseRequest(loc, 11*time.Hour, 10*time.Minute, 0), nil},
		{"reverse-es", ReverseRequest(loc, 11*time.Hour, 8*time.Minute, 0), []Option{WithAlgorithm(AlgoExhaustive)}},
		{"multi", MultiRequest(multi, 11*time.Hour, 10*time.Minute, 0), nil},
		{"multi-seq", MultiRequest(multi, 11*time.Hour, 10*time.Minute, 0), []Option{WithAlgorithm(AlgoSequential)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, prob := range []float64{0.05, 0.2, 0.5, 0.9} {
				req := tc.req
				req.Prob = prob
				want, err := base.Do(context.Background(), req, tc.opts...)
				if err != nil {
					t.Fatal(err)
				}
				for name, sys := range map[string]*System{"temporal": pure, "hybrid": hybrid} {
					got, err := sys.Do(context.Background(), req, tc.opts...)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					sameRegion(t, tc.name+"/"+name, got, want)
				}
			}
		})
	}
}

// TestSlotShardsTrivial: slotK=1 is exactly Shard(k), and ShardSlots
// with both dimensions trivial restores single-engine execution.
func TestSlotShardsTrivial(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	loc := base.BusiestLocation(11 * time.Hour)
	req := ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)
	want, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ShardSlots(3, 1); err != nil {
		t.Fatal(err)
	}
	if sys.Shards() != 3 || sys.SlotShards() != 1 {
		t.Fatalf("ShardSlots(3,1): Shards=%d SlotShards=%d", sys.Shards(), sys.SlotShards())
	}
	got, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "slotk1", got, want)
	if err := sys.ShardSlots(1, 1); err != nil {
		t.Fatal(err)
	}
	if sys.Shards() != 1 || sys.SlotShards() != 1 {
		t.Fatalf("ShardSlots(1,1): Shards=%d SlotShards=%d", sys.Shards(), sys.SlotShards())
	}
	got, err = sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "unsharded-again", got, want)
}

// TestSlotShardStatsCoverage: the served slot ranges must partition the
// whole day, and hybrid ordinals must report their row's range.
func TestSlotShardStatsCoverage(t *testing.T) {
	pure, hybrid := slotShardedSystems(t)
	numSlots := 24 * 3600 / pure.Stats().SlotSeconds
	next := 0
	for _, st := range pure.ShardStats() {
		if st.SlotLo != next || st.SlotHi < st.SlotLo {
			t.Fatalf("shard %d serves slots [%d,%d], expected to start at %d", st.Shard, st.SlotLo, st.SlotHi, next)
		}
		next = st.SlotHi + 1
	}
	if next != numSlots {
		t.Fatalf("served ranges end at %d, want %d", next, numSlots)
	}
	// Hybrid: the two grid shards of one row share its slot range.
	stats := hybrid.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("hybrid ShardStats len = %d, want 4", len(stats))
	}
	for row := 0; row < 2; row++ {
		a, b := stats[row*2], stats[row*2+1]
		if a.SlotLo != b.SlotLo || a.SlotHi != b.SlotHi {
			t.Fatalf("row %d grid shards disagree on slot range: [%d,%d] vs [%d,%d]",
				row, a.SlotLo, a.SlotHi, b.SlotLo, b.SlotHi)
		}
	}
}

// TestSlotWindowPruning pins the scatter-pruning contract: a query
// whose window lies entirely inside one row's served range must verify
// only on that row's shards — the other rows see no work at all.
func TestSlotWindowPruning(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	idx.SlotShards = 4
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	stats := sys.ShardStats()
	slotSec := sys.Stats().SlotSeconds
	// Aim a short window at the middle of row 2's served range.
	target := 2
	mid := (stats[target].SlotLo + stats[target].SlotHi) / 2
	start := time.Duration(mid*slotSec) * time.Second
	loc := base.BusiestLocation(start)
	if _, err := sys.Do(context.Background(), ReachRequest(loc, start, 5*time.Minute, 0.2)); err != nil {
		t.Fatal(err)
	}
	for _, st := range sys.ShardStats() {
		if st.Shard == target {
			if st.CandidatesVerified == 0 {
				t.Fatalf("serving row %d verified nothing", target)
			}
			continue
		}
		if st.CandidatesVerified != 0 {
			t.Fatalf("shard %d (slots [%d,%d]) verified %d candidates for a window owned by row %d",
				st.Shard, st.SlotLo, st.SlotHi, st.CandidatesVerified, target)
		}
	}
	if n := sys.PlansSlotFallback(); n != 0 {
		t.Fatalf("in-range window fell back %d times", n)
	}
}

// TestSlotWindowFallback: a window outgrowing its row's held range runs
// unsharded — counted, and still bit-identical.
func TestSlotWindowFallback(t *testing.T) {
	base := smallSystem(t)
	idx := DefaultIndexConfig()
	idx.PlanCache = -1
	idx.SlotShards = 4
	sys, err := NewSystemFromData(base.Network(), base.Dataset(), idx)
	if err != nil {
		t.Fatal(err)
	}
	stats := sys.ShardStats()
	slotSec := sys.Stats().SlotSeconds
	// Start at the last served slot of row 0 with a window reaching well
	// past the one-hour overhang: must route to fallback.
	start := time.Duration(stats[0].SlotHi*slotSec) * time.Second
	dur := 90 * time.Minute
	loc := base.BusiestLocation(start)
	req := ReachRequest(loc, start, dur, 0.2)
	want, err := base.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "fallback", got, want)
	if n := sys.PlansSlotFallback(); n != 1 {
		t.Fatalf("PlansSlotFallback = %d, want 1", n)
	}
}

// TestOpenSystemSlotSharded: a reopened save directory honours
// IndexConfig.SlotShards and answers bit-identically.
func TestOpenSystemSlotSharded(t *testing.T) {
	base := smallSystem(t)
	dir := t.TempDir()
	if err := base.Save(dir); err != nil {
		t.Fatal(err)
	}
	idx := DefaultIndexConfig()
	idx.Shards = 2
	idx.SlotShards = 2
	reopened, err := OpenSystem(dir, idx)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Shards() != 4 || reopened.SlotShards() != 2 {
		t.Fatalf("reopened Shards=%d SlotShards=%d, want 4/2", reopened.Shards(), reopened.SlotShards())
	}
	loc := base.BusiestLocation(11 * time.Hour)
	req := ReachRequest(loc, 11*time.Hour, 10*time.Minute, 0.2)
	want, err := base.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, "reopened-slot-sharded", got, want)
}
